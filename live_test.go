package bingo_test

import (
	"sync"
	"testing"

	bingo "github.com/bingo-rw/bingo"
)

func TestConcurrentEngineEndToEnd(t *testing.T) {
	const nV = 128
	edges := make([]bingo.Edge, 0, nV)
	for i := 0; i < nV; i++ {
		edges = append(edges, bingo.Edge{Src: bingo.VertexID(i), Dst: bingo.VertexID((i + 1) % nV), Weight: 2})
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	ce := eng.Concurrent()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: churn chord edges
		defer wg.Done()
		for i := 0; i < 500; i++ {
			u := bingo.VertexID(i % nV)
			d := bingo.VertexID((i + 9) % nV)
			if err := ce.Insert(u, d, 5); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if err := ce.Delete(u, d); err != nil {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // batch writer
		defer wg.Done()
		for i := 0; i < 50; i++ {
			u := bingo.VertexID((i * 3) % nV)
			if _, err := ce.ApplyBatch([]bingo.Update{
				bingo.Insert(u, bingo.VertexID((i+40)%nV), 7),
				bingo.Delete(u, bingo.VertexID((i+40)%nV)),
			}); err != nil {
				t.Errorf("ApplyBatch: %v", err)
				return
			}
		}
	}()
	r := bingo.NewRand(5)
	for q := 0; q < 200; q++ {
		path := ce.Walk(bingo.VertexID(q%nV), 20, r)
		if len(path) != 21 {
			t.Fatalf("walk %d returned %d hops, want 21 (ring never dead-ends)", q, len(path)-1)
		}
	}
	wg.Wait()

	if err := ce.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if n := ce.NumEdges(); n != nV {
		t.Fatalf("NumEdges = %d, want %d (all churn cancels)", n, nV)
	}
	res := ce.DeepWalk(bingo.WalkOptions{Length: 10, Workers: 2, Seed: 1})
	if res.Steps != int64(nV*10) {
		t.Fatalf("DeepWalk steps %d, want %d", res.Steps, nV*10)
	}
}

func TestLiveWalkerServe(t *testing.T) {
	eng, err := bingo.FromEdges([]bingo.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lw := eng.Concurrent().Serve(bingo.LiveOptions{Walkers: 2, WalkLength: 8, Seed: 2})
	if err := lw.Feed([]bingo.Update{bingo.Insert(0, 2, 3)}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	for i := 0; i < 20; i++ {
		path, err := lw.Query(bingo.VertexID(i%4), 0)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if len(path) != 9 {
			t.Fatalf("path length %d, want 9", len(path))
		}
	}
	if err := lw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := lw.Stats()
	if st.Queries != 20 || st.Updates != 1 || st.Batches != 1 {
		t.Fatalf("stats %+v, want 20 queries / 1 batch / 1 update", st)
	}
}

func TestShardedLiveWalkerServe(t *testing.T) {
	const nV = 96
	edges := make([]bingo.Edge, 0, nV)
	for i := 0; i < nV; i++ {
		edges = append(edges, bingo.Edge{Src: bingo.VertexID(i), Dst: bingo.VertexID((i + 1) % nV), Weight: 2})
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := eng.ServeSharded(4, bingo.ShardedOptions{WalkersPerShard: 2, WalkLength: 12, Seed: 3})
	if err != nil {
		t.Fatalf("ServeSharded: %v", err)
	}
	if sw.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", sw.Shards())
	}

	// Ring queries are deterministic and cross shard boundaries.
	for i := 0; i < 30; i++ {
		start := bingo.VertexID((i * 11) % nV)
		path, err := sw.Query(start, 0)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if len(path) != 13 {
			t.Fatalf("path length %d, want 13", len(path))
		}
		for j, v := range path {
			if want := bingo.VertexID((int(start) + j) % nV); v != want {
				t.Fatalf("path[%d] = %d, want %d", j, v, want)
			}
		}
	}

	// Feed growth-inducing updates (vertex IDs beyond the snapshot space),
	// sync, and walk into the grown region.
	if err := sw.Feed([]bingo.Update{
		bingo.Insert(0, bingo.VertexID(5000), 1e9),
		bingo.Insert(bingo.VertexID(5000), 1, 1),
	}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if err := sw.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	path, err := sw.Query(0, 2)
	if err != nil {
		t.Fatalf("Query after growth: %v", err)
	}
	if len(path) != 3 || path[1] != 5000 {
		t.Fatalf("growth walk path %v, want 0→5000→1 (weight 1e9 dominates)", path)
	}

	// Bulk kernel through the sharded runtime.
	res, bulk, err := sw.DeepWalk(bingo.WalkOptions{Length: 8, Seed: 5, Starts: mkStarts(nV)})
	if err != nil {
		t.Fatalf("DeepWalk: %v", err)
	}
	if res.Walkers != nV || res.Steps != int64(nV*8) {
		t.Fatalf("bulk %d walkers / %d steps, want %d / %d", res.Walkers, res.Steps, nV, nV*8)
	}
	if bulk.Transfers == 0 {
		t.Fatal("bulk walks across 4 shards must transfer")
	}

	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := sw.Stats()
	if st.Queries != 31 || st.Updates != 2 || st.Dropped != 0 {
		t.Fatalf("stats %+v, want 31 queries / 2 updates / 0 dropped", st)
	}
	if st.Transfers == 0 || st.TransferRatio() <= 0 {
		t.Fatalf("stats %+v: no transfer telemetry", st)
	}
	if _, err := sw.Query(0, 1); err == nil {
		t.Fatal("Query after Close must fail")
	}
}

func mkStarts(n int) []bingo.VertexID {
	s := make([]bingo.VertexID, n)
	for i := range s {
		s[i] = bingo.VertexID(i)
	}
	return s
}
