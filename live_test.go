package bingo_test

import (
	"sync"
	"testing"

	bingo "github.com/bingo-rw/bingo"
)

func TestConcurrentEngineEndToEnd(t *testing.T) {
	const nV = 128
	edges := make([]bingo.Edge, 0, nV)
	for i := 0; i < nV; i++ {
		edges = append(edges, bingo.Edge{Src: bingo.VertexID(i), Dst: bingo.VertexID((i + 1) % nV), Weight: 2})
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	ce := eng.Concurrent()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: churn chord edges
		defer wg.Done()
		for i := 0; i < 500; i++ {
			u := bingo.VertexID(i % nV)
			d := bingo.VertexID((i + 9) % nV)
			if err := ce.Insert(u, d, 5); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if err := ce.Delete(u, d); err != nil {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // batch writer
		defer wg.Done()
		for i := 0; i < 50; i++ {
			u := bingo.VertexID((i * 3) % nV)
			if _, err := ce.ApplyBatch([]bingo.Update{
				bingo.Insert(u, bingo.VertexID((i+40)%nV), 7),
				bingo.Delete(u, bingo.VertexID((i+40)%nV)),
			}); err != nil {
				t.Errorf("ApplyBatch: %v", err)
				return
			}
		}
	}()
	r := bingo.NewRand(5)
	for q := 0; q < 200; q++ {
		path := ce.Walk(bingo.VertexID(q%nV), 20, r)
		if len(path) != 21 {
			t.Fatalf("walk %d returned %d hops, want 21 (ring never dead-ends)", q, len(path)-1)
		}
	}
	wg.Wait()

	if err := ce.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if n := ce.NumEdges(); n != nV {
		t.Fatalf("NumEdges = %d, want %d (all churn cancels)", n, nV)
	}
	res := ce.DeepWalk(bingo.WalkOptions{Length: 10, Workers: 2, Seed: 1})
	if res.Steps != int64(nV*10) {
		t.Fatalf("DeepWalk steps %d, want %d", res.Steps, nV*10)
	}
}

func TestLiveWalkerServe(t *testing.T) {
	eng, err := bingo.FromEdges([]bingo.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lw := eng.Concurrent().Serve(bingo.LiveOptions{Walkers: 2, WalkLength: 8, Seed: 2})
	if err := lw.Feed([]bingo.Update{bingo.Insert(0, 2, 3)}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	for i := 0; i < 20; i++ {
		path, err := lw.Query(bingo.VertexID(i%4), 0)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if len(path) != 9 {
			t.Fatalf("path length %d, want 9", len(path))
		}
	}
	if err := lw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := lw.Stats()
	if st.Queries != 20 || st.Updates != 1 || st.Batches != 1 {
		t.Fatalf("stats %+v, want 20 queries / 1 batch / 1 update", st)
	}
}
