package bingo

// This file is the public face of the standing walk corpus
// (internal/walk.CorpusService): instead of re-walking per query, the
// engine maintains K walks × L steps per vertex continuously valid under
// the update feed — edge updates dirty only the walk suffixes that
// passed through the touched vertex, and a refresh loop resamples
// exactly those — and serves queries as corpus slices under a
// bounded-staleness guarantee. See DESIGN.md, "Standing walk corpus".

import (
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/walk"
)

// CorpusOptions configure ServeCorpus. The zero value selects all
// defaults.
type CorpusOptions struct {
	// Walks is K, the standing walks maintained per vertex (default 2).
	Walks int
	// WalkLength is L, each standing walk's step budget (default 80; at
	// most 65535 — positions must fit the walk index's packed postings).
	WalkLength int
	// Seed makes the corpus and regrow RNG streams reproducible.
	Seed uint64
	// StalenessBound is the maximum update events a corpus-served query
	// may trail the feed by before falling back to a fresh walk (0 =
	// default 4096; negative disables the fallback).
	StalenessBound int
	// RefreshInterval is the coalescing window between the first touch
	// and the refresh that repairs it — longer windows batch more churn
	// into one resample cycle (default 2ms).
	RefreshInterval time.Duration
	// RefreshWorkers bounds the sharded refresh's concurrent regrow
	// queries (default GOMAXPROCS).
	RefreshWorkers int
	// CreditWindow bounds fed-but-unrefreshed touch events before Feed
	// blocks — the corpus-side credited backpressure (0 = default 16384,
	// negative disables).
	CreditWindow int
	// WalkersPerShard sizes the sharded backend's walker crews (shards >
	// 1 only; default max(1, GOMAXPROCS / shards)).
	WalkersPerShard int
	// HubCache tunes the hub-view caches of the backend (sharded) or the
	// regrow kernel (unsharded).
	HubCache HubCacheOptions
	// Kernel selects the stepping-kernel mode: "sparse", "dense", or ""
	// (the corpus default — dense; a regrow batch is a bulk frontier).
	Kernel string
	// Concurrency tunes the per-shard concurrency wrappers (zero value =
	// defaults).
	Concurrency ConcurrentConfig
}

// CorpusStats snapshots a CorpusWalker's counters.
type CorpusStats struct {
	// Queries counts Query calls; CorpusServed those answered from the
	// standing corpus; StaleServed the corpus-served subset lagging the
	// feed within the bound; Fallbacks those served as fresh walks (bound
	// blown, vertex outside the maintained space, or length beyond L).
	Queries, CorpusServed, StaleServed, Fallbacks int64
	// Refreshes counts refresh cycles; Resamples walks truncated and
	// regrown; ResampledSteps the suffix hops sampled doing it;
	// FullWalkEquivalentSteps the hops a per-update full recompute of
	// every affected walk would have sampled instead.
	Refreshes, Resamples, ResampledSteps int64
	FullWalkEquivalentSteps              int64
	// RefreshLagMs is the maximum observed touch-to-refresh latency.
	RefreshLagMs int64
	// FedEvents is the query watermark (update events accepted);
	// CorpusWatermark the fed events fully incorporated; AppliedStamp
	// the backend shards' summed applied-update ack stamps at the last
	// refresh (sharded only) — the bounded-staleness evidence.
	FedEvents, CorpusWatermark, AppliedStamp int64
	// Walks is the corpus size (K × vertices).
	Walks int64
}

// Amplification is ResampledSteps per full-recompute-equivalent step:
// below 1 the incremental corpus out-amortizes re-walking (the bench
// evidence gates on < 0.2, i.e. ≥ 5× fewer kernel steps).
func (s CorpusStats) Amplification() float64 {
	if s.FullWalkEquivalentSteps == 0 {
		return 0
	}
	return float64(s.ResampledSteps) / float64(s.FullWalkEquivalentSteps)
}

// CorpusWalker serves walk queries from a standing corpus maintained
// under the update feed. Queries inside the staleness bound are corpus
// slices (no walking at all); the refresh loop keeps the corpus valid by
// resampling only dirtied suffixes.
type CorpusWalker struct {
	corpus    *walk.CorpusService
	floatMode bool
}

// ServeCorpus snapshots the engine's graph, builds the serving backend
// (an unsharded concurrent engine, or a shards-way sharded live service
// for shards > 1), grows the initial corpus, and starts the refresh
// loop. The original Engine remains usable but further mutations to it
// are not reflected — feed them through the returned walker.
func (e *Engine) ServeCorpus(shards int, o CorpusOptions) (*CorpusWalker, error) {
	kernel, err := walk.ParseKernelMode(o.Kernel)
	if err != nil {
		return nil, err
	}
	cfg := walk.CorpusConfig{
		WalksPerVertex:  o.Walks,
		WalkLength:      o.WalkLength,
		Seed:            o.Seed,
		StalenessBound:  int64(o.StalenessBound),
		RefreshInterval: o.RefreshInterval,
		RefreshWorkers:  o.RefreshWorkers,
		CreditWindow:    o.CreditWindow,
		Cache:           o.HubCache.spec(),
		Kernel:          kernel,
	}
	floatMode := e.s.Config().FloatBias
	g := e.s.Snapshot()
	if shards <= 1 {
		s, err := core.NewFromCSR(g, e.s.Config())
		if err != nil {
			return nil, err
		}
		ce := concurrent.Wrap(s, concurrent.Config{
			Stripes:        o.Concurrency.Stripes,
			MaxStepRetries: o.Concurrency.MaxStepRetries,
			Workers:        o.Concurrency.Workers,
		})
		corpus, err := walk.NewCorpusService(ce, cfg)
		if err != nil {
			return nil, err
		}
		return &CorpusWalker{corpus: corpus, floatMode: floatMode}, nil
	}
	plan := walk.NewShardPlan(g.NumVertices(), shards)
	engines, err := walk.BootstrapShards(g, plan, func() (walk.LiveEngine, error) {
		s, err := core.New(g.NumVertices(), e.s.Config())
		if err != nil {
			return nil, err
		}
		return concurrent.Wrap(s, concurrent.Config{
			Stripes:        o.Concurrency.Stripes,
			MaxStepRetries: o.Concurrency.MaxStepRetries,
			Workers:        o.Concurrency.Workers,
		}), nil
	})
	if err != nil {
		return nil, err
	}
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: o.WalkersPerShard,
		WalkLength:      o.WalkLength,
		Seed:            o.Seed,
		Cache:           o.HubCache.spec(),
		Kernel:          kernel,
	})
	if err != nil {
		return nil, err
	}
	corpus, err := walk.NewShardedCorpusService(svc, g.NumVertices(), cfg)
	if err != nil {
		svc.Close()
		return nil, err
	}
	return &CorpusWalker{corpus: corpus, floatMode: floatMode}, nil
}

// Query returns a walk of up to length steps from start (<= 0 selects
// the standing length): a corpus slice inside the staleness bound, a
// fresh walk past it.
func (cw *CorpusWalker) Query(start VertexID, length int) ([]VertexID, error) {
	return cw.corpus.Query(start, length)
}

// Feed applies updates through the backend and enqueues their touches
// for suffix resampling. It blocks while the touch-event credit window
// is full and fails with an error after Close.
func (cw *CorpusWalker) Feed(ups []Update) error {
	internal, err := toInternalUpdates(cw.floatMode, ups)
	if err != nil {
		return err
	}
	return cw.corpus.Feed(internal)
}

// Sync forces a refresh cycle and blocks until the corpus has
// incorporated every Feed accepted before the call.
func (cw *CorpusWalker) Sync() error { return cw.corpus.Sync() }

// Stats snapshots the corpus counters.
func (cw *CorpusWalker) Stats() CorpusStats {
	st := cw.corpus.Stats()
	return CorpusStats{
		Queries:                 st.Queries,
		CorpusServed:            st.CorpusServed,
		StaleServed:             st.StaleServed,
		Fallbacks:               st.Fallbacks,
		Refreshes:               st.Refreshes,
		Resamples:               st.Resamples,
		ResampledSteps:          st.ResampledSteps,
		FullWalkEquivalentSteps: st.FullWalkSteps,
		RefreshLagMs:            st.RefreshLagMs,
		FedEvents:               st.FedEvents,
		CorpusWatermark:         st.CorpusWatermark,
		AppliedStamp:            st.AppliedStamp,
		Walks:                   st.Walks,
	}
}

// ServiceStats snapshots the backend service counters with the corpus
// tallies riding in the Corpus field (backend counters are zero for an
// unsharded corpus).
func (cw *CorpusWalker) ServiceStats() ShardedLiveStats {
	return fromShardedStats(cw.corpus.ShardedStats())
}

func fromCorpusTallies(t fabric.CorpusTallies) CorpusStats {
	return CorpusStats{
		Resamples:               t.Resamples,
		ResampledSteps:          t.ResampledSteps,
		FullWalkEquivalentSteps: t.FullWalkSteps,
		RefreshLagMs:            t.RefreshLagMs,
		StaleServed:             t.StaleServed,
		Fallbacks:               t.Fallbacks,
	}
}

// Close drains the touch queue through a final refresh, stops the
// refresh loop and the backend, and returns the first error observed.
// Idempotent.
func (cw *CorpusWalker) Close() error { return cw.corpus.Close() }
