package bingo

// This file exposes one testing.B benchmark per table/figure of the
// paper's evaluation, each running the corresponding internal/bench
// experiment at reduced scale, plus micro-benchmarks of the engine's three
// primitive operations (the empirical Table 1). Full-scale runs go through
// cmd/bingobench; see EXPERIMENTS.md for recorded results.

import (
	"io"
	"testing"

	"github.com/bingo-rw/bingo/internal/baseline"
	"github.com/bingo-rw/bingo/internal/bench"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// benchOptions is the reduced-scale configuration used by the testing.B
// wrappers; it keeps each iteration under a second on a laptop core.
func benchOptions() bench.Options {
	o := bench.DefaultOptions(io.Discard)
	o.Scale = 0.002
	o.MaxEdges = 100_000
	o.BatchSize = 2_000
	o.Rounds = 3
	o.WalkLength = 20
	o.MaxWalkers = 500
	o.Datasets = []string{"AM", "GO"}
	return o
}

func runExperiment(b *testing.B, name string, mutate func(*bench.Options)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		if mutate != nil {
			mutate(&o)
		}
		if err := bench.Run(name, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Complexity(b *testing.B)   { runExperiment(b, "table1", nil) }
func BenchmarkTable2Datasets(b *testing.B)     { runExperiment(b, "table2", nil) }
func BenchmarkTable4Conversions(b *testing.B)  { runExperiment(b, "table4", nil) }
func BenchmarkFig9GroupRatios(b *testing.B)    { runExperiment(b, "fig9", nil) }
func BenchmarkFig11Memory(b *testing.B)        { runExperiment(b, "fig11", nil) }
func BenchmarkFig12Throughput(b *testing.B)    { runExperiment(b, "fig12", nil) }
func BenchmarkFig13Breakdown(b *testing.B)     { runExperiment(b, "fig13", nil) }
func BenchmarkFig14FloatBias(b *testing.B)     { runExperiment(b, "fig14", nil) }
func BenchmarkFig15aBatchSize(b *testing.B)    { runExperiment(b, "fig15a", nil) }
func BenchmarkFig15bWalkLength(b *testing.B)   { runExperiment(b, "fig15b", nil) }
func BenchmarkFig15cDistribution(b *testing.B) { runExperiment(b, "fig15c", nil) }
func BenchmarkFig16Piecewise(b *testing.B)     { runExperiment(b, "fig16", nil) }
func BenchmarkAblation(b *testing.B)           { runExperiment(b, "ablation", nil) }

// BenchmarkTable3 runs the headline grid one (app × system) cell at a time
// so `-bench Table3` reports a per-cell figure.
func BenchmarkTable3(b *testing.B) {
	for _, sys := range []string{"Bingo", "KnightKing", "RebuildITS", "FlowWalker"} {
		b.Run(sys, func(b *testing.B) {
			runExperiment(b, "table3", func(o *bench.Options) {
				o.Systems = []string{sys}
				o.Apps = []string{"DeepWalk"}
				o.Datasets = []string{"AM"}
			})
		})
	}
}

// --- engine primitive micro-benchmarks (empirical Table 1 rows) ---------

func benchGraph(b *testing.B, v int, e int64) *graph.CSR {
	b.Helper()
	edges := gen.RMAT(v, e, gen.DefaultRMAT, 7)
	gen.AssignBiases(edges, v, gen.BiasConfig{Kind: gen.BiasDegree})
	g, err := graph.FromEdges(v, edges)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBingoSample(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	s, err := core.NewFromCSR(g, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(graph.VertexID(i%20000), r)
	}
}

func BenchmarkBingoStreamingInsertDelete(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	s, err := core.NewFromCSR(g, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.VertexID(r.Intn(20000))
		dst := graph.VertexID(r.Intn(20000))
		if err := s.Insert(u, dst, uint64(1+r.Intn(1000))); err != nil {
			b.Fatal(err)
		}
		if err := s.Delete(u, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBingoBatch(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	w, err := gen.BuildWorkload(g, gen.UpdMixed, 10000, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.NewFromCSR(w.Initial, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		ups := append([]graph.Update(nil), w.Updates...)
		b.StartTimer()
		if _, err := s.ApplyBatch(ups); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(w.Updates)), "updates/op")
}

func BenchmarkEngineSampleComparison(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	engines := map[string]walk.Engine{}
	s, err := core.NewFromCSR(g, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	engines["Bingo"] = s
	engines["KnightKing"] = baseline.NewKnightKing(g)
	engines["RebuildITS"] = baseline.NewRebuildITS(g)
	engines["FlowWalker"] = baseline.NewFlowWalker(g)
	for _, name := range []string{"Bingo", "KnightKing", "RebuildITS", "FlowWalker"} {
		e := engines[name]
		b.Run(name, func(b *testing.B) {
			r := xrand.New(1)
			for i := 0; i < b.N; i++ {
				e.Sample(graph.VertexID(i%20000), r)
			}
		})
	}
}

func BenchmarkDeepWalk80(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	s, err := core.NewFromCSR(g, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	starts := make([]graph.VertexID, 1000)
	for i := range starts {
		starts[i] = graph.VertexID(i * 20)
	}
	cfg := walk.Config{Length: 80, Starts: starts, Seed: 5}
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res := walk.DeepWalk(s, cfg)
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
}
