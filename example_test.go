package bingo_test

import (
	"fmt"

	bingo "github.com/bingo-rw/bingo"
)

// The package-level example walks through the full lifecycle: build,
// sample, update, walk.
func Example() {
	eng, err := bingo.FromEdges([]bingo.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 2, Weight: 4},
		{Src: 0, Dst: 3, Weight: 3},
		{Src: 1, Dst: 0, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1},
		{Src: 3, Dst: 0, Weight: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", eng.NumEdges())

	// O(K) streaming updates.
	if err := eng.Insert(0, 4, 8); err != nil {
		panic(err)
	}
	if err := eng.Delete(0, 1); err != nil {
		panic(err)
	}
	fmt.Println("degree of 0:", eng.Degree(0))

	// O(1) biased sampling.
	r := bingo.NewRand(1)
	if v, ok := eng.Sample(0, r); ok {
		fmt.Println("sampled a neighbor:", v <= 4)
	}
	// Output:
	// edges: 6
	// degree of 0: 3
	// sampled a neighbor: true
}

func ExampleEngine_ApplyBatch() {
	eng, _ := bingo.New(8)
	res, err := eng.ApplyBatch([]bingo.Update{
		bingo.Insert(0, 1, 5),
		bingo.Insert(0, 2, 3),
		bingo.Delete(0, 7), // not live: counted, skipped
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("inserted=%d deleted=%d notFound=%d\n", res.Inserted, res.Deleted, res.NotFound)
	// Output:
	// inserted=2 deleted=0 notFound=1
}

func ExampleEngine_DeepWalk() {
	eng, _ := bingo.FromEdges([]bingo.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1},
	})
	res := eng.DeepWalk(bingo.WalkOptions{Length: 10, Seed: 42})
	fmt.Printf("%d walkers, %d steps\n", res.Walkers, res.Steps)
	// Output:
	// 3 walkers, 30 steps
}

func ExampleEngine_PPR() {
	// A star: PPR from the hub concentrates visits on the hub's wheel.
	var edges []bingo.Edge
	for leaf := bingo.VertexID(1); leaf <= 4; leaf++ {
		edges = append(edges,
			bingo.Edge{Src: 0, Dst: leaf, Weight: 1},
			bingo.Edge{Src: leaf, Dst: 0, Weight: 1})
	}
	eng, _ := bingo.FromEdges(edges)
	starts := make([]bingo.VertexID, 2000) // all walks from the hub
	res := eng.PPR(bingo.WalkOptions{Starts: starts, Seed: 7, CountVisits: true})
	fmt.Println("hub visited most:", res.Visits[0] > res.Visits[1])
	// Output:
	// hub visited most: true
}

func ExampleEngine_UpdateWeight() {
	eng, _ := bingo.FromEdges([]bingo.Edge{{Src: 0, Dst: 1, Weight: 5}})
	if err := eng.UpdateWeight(0, 1, 9); err != nil {
		panic(err)
	}
	fmt.Println("still one edge:", eng.NumEdges())
	// Output:
	// still one edge: 1
}

func ExampleWithFloatWeights() {
	eng, err := bingo.FromEdges([]bingo.Edge{
		{Src: 0, Dst: 1, Weight: 0.554},
		{Src: 0, Dst: 2, Weight: 0.726},
	}, bingo.WithFloatWeights(0)) // 0 = auto amortization factor λ
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", eng.NumEdges())
	// Output:
	// edges: 2
}
