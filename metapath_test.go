package bingo

import "testing"

func TestPublicMetaPath(t *testing.T) {
	// Bipartite user(0-4)/item(5-9) graph.
	var edges []Edge
	r := NewRand(6)
	for u := VertexID(0); u < 5; u++ {
		for k := 0; k < 3; k++ {
			item := VertexID(5 + r.Intn(5))
			edges = append(edges, Edge{Src: u, Dst: item, Weight: 1},
				Edge{Src: item, Dst: u, Weight: 1})
		}
	}
	eng, err := FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	labels := func(v VertexID) uint8 {
		if v < 5 {
			return 0
		}
		return 1
	}
	res := eng.MetaPath(labels, []uint8{0, 1}, WalkOptions{Length: 10, Seed: 2, CountVisits: true})
	if res.Steps == 0 {
		t.Fatal("no metapath steps")
	}
	// Walks start only from users; item starts contribute zero steps but
	// still count as walkers.
	if res.Walkers != eng.NumVertices() {
		t.Errorf("walkers %d, want %d", res.Walkers, eng.NumVertices())
	}
	// User→item alternation: roughly equal visits to both sides.
	var users, items int64
	for v, c := range res.Visits {
		if labels(VertexID(v)) == 0 {
			users += c
		} else {
			items += c
		}
	}
	if users == 0 || items == 0 {
		t.Errorf("alternation broken: users %d, items %d", users, items)
	}
}
