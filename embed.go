package bingo

import (
	"github.com/bingo-rw/bingo/internal/embed"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
)

// EmbedOptions configure SkipGram-negative-sampling training over a walk
// corpus (the paper's §2.2 representation-learning pipeline).
type EmbedOptions struct {
	// Dim is the embedding dimension (default 64).
	Dim int
	// Window is the maximum SkipGram context distance (default 5).
	Window int
	// Negatives is the negative-sample count per positive (default 5).
	Negatives int
	// Rate is the initial learning rate (default 0.025).
	Rate float64
	// Epochs is the number of passes over the corpus (default 1).
	Epochs int
	// Seed drives initialization and negative sampling.
	Seed uint64
}

// Embedding holds trained vertex embeddings.
type Embedding struct {
	m        *embed.Model
	appeared []bool
}

// Vector returns v's embedding (aliases internal storage; do not mutate).
func (e *Embedding) Vector(v VertexID) []float32 { return e.m.Vector(v) }

// Similarity returns the cosine similarity of two vertices.
func (e *Embedding) Similarity(a, b VertexID) float64 { return e.m.Similarity(a, b) }

// Similar is a nearest-neighbor query result.
type Similar struct {
	Vertex VertexID
	Score  float64
}

// MostSimilar returns the k vertices most similar to v among those that
// appeared in the training corpus.
func (e *Embedding) MostSimilar(v VertexID, k int) []Similar {
	ns := e.m.MostSimilar(v, k, func(u graph.VertexID) bool { return e.appeared[u] })
	out := make([]Similar, len(ns))
	for i, n := range ns {
		out[i] = Similar{Vertex: n.Vertex, Score: n.Score}
	}
	return out
}

// TrainEmbeddings generates a DeepWalk corpus with the given walk options
// and fits SGNS embeddings to it — the paper's end-to-end graph-learning
// pipeline (walks → sentences → SkipGram). On dynamic graphs, call it again
// after updates to refresh the representation.
func (e *Engine) TrainEmbeddings(wo WalkOptions, eo EmbedOptions) (*Embedding, error) {
	var corpus [][]graph.VertexID
	appeared := make([]bool, e.NumVertices())
	walk.DeepWalkPaths(e.s, wo.internal(), func(p []graph.VertexID) {
		cp := append([]graph.VertexID(nil), p...)
		corpus = append(corpus, cp)
		for _, v := range cp {
			appeared[v] = true
		}
	})
	m, err := embed.Train(corpus, e.NumVertices(), embed.Config{
		Dim: eo.Dim, Window: eo.Window, Negatives: eo.Negatives,
		Rate: eo.Rate, Epochs: eo.Epochs, Seed: eo.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Embedding{m: m, appeared: appeared}, nil
}
