package bingo

import "testing"

func TestTrainEmbeddings(t *testing.T) {
	// Two disconnected cliques must embed into separable clusters.
	var edges []Edge
	r := NewRand(5)
	for c := 0; c < 2; c++ {
		base := VertexID(c * 10)
		for i := 0; i < 120; i++ {
			u := base + VertexID(r.Intn(10))
			v := base + VertexID(r.Intn(10))
			if u != v {
				edges = append(edges, Edge{Src: u, Dst: v, Weight: 1})
			}
		}
	}
	eng, err := FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := eng.TrainEmbeddings(
		WalkOptions{Length: 20, Seed: 3},
		EmbedOptions{Dim: 16, Epochs: 4, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Vector(0)) != 16 {
		t.Fatal("vector dim wrong")
	}
	intra := emb.Similarity(0, 5)
	inter := emb.Similarity(0, 15)
	if intra <= inter {
		t.Errorf("intra-clique similarity %.3f <= inter-clique %.3f", intra, inter)
	}
	top := emb.MostSimilar(0, 5)
	if len(top) != 5 {
		t.Fatalf("MostSimilar returned %d", len(top))
	}
	for _, s := range top {
		if s.Vertex >= 10 {
			t.Errorf("cross-clique vertex %d in top-5 (score %.3f)", s.Vertex, s.Score)
		}
	}
}

func TestTrainEmbeddingsEmptyGraph(t *testing.T) {
	eng, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrainEmbeddings(WalkOptions{Length: 5}, EmbedOptions{}); err == nil {
		t.Error("embedding an edgeless graph should fail (no usable walks)")
	}
}
