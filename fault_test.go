// The failover acceptance harness: a replicated two-daemon session
// (replication factor 2 over the TCP fabric) ingests a hub-skewed growth
// tape while one `bingowalk -shard-serve` process is killed with SIGKILL
// mid-tape and later restarted on the same address. The session must
// complete — promoted replica serving, walkers re-routed, the restarted
// daemon re-primed from live snapshots — and the surviving state must
// match a sequential replay edge-for-edge, with a ≥1e5-draw chi-square
// over the served sampling distribution. It is the process-boundary
// extension of internal/walk's chaos-fabric failover differential, and
// the body of `make fault-smoke`.
package bingo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	ftRingN   = 400 // initial ring the engine snapshot bootstraps
	ftVertMax = 800 // tape references IDs up to here (growth-inducing)
	ftTapeLen = 6000
	ftHubs    = 8      // tape sources skew toward this many hub vertices
	ftShards  = 2      // two daemons, every block on both (R = 2)
	ftSamples = 120000 // ≥ 1e5 chi-square draws after the failover
	ftVictim  = 1
)

// buildHubTape is buildDistTape with hub skew: half the inserts leave
// one of a few hub vertices, so the killed daemon takes hot adjacency
// state (large hub rows mid-mutation) down with it — the worst case for
// snapshot re-priming. The unique-live-pair invariant still holds, so
// any valid replay agrees edge-for-edge.
func buildHubTape(n, numVertices, hubs int, seed uint64) []Update {
	r := xrand.New(seed)
	type pair struct{ src, dst VertexID }
	live := make([]pair, 0, n)
	liveAt := make(map[pair]int, n)
	tape := make([]Update, 0, n)
	pick := func() pair {
		src := VertexID(r.Intn(numVertices))
		if r.Float64() < 0.5 {
			src = VertexID(r.Intn(hubs) * (numVertices / hubs)) // spread hubs across blocks
		}
		return pair{src, VertexID(r.Intn(numVertices))}
	}
	for len(tape) < n {
		roll := r.Float64()
		switch {
		case roll < 0.25 && len(live) > 8:
			i := r.Intn(len(live))
			p := live[i]
			last := len(live) - 1
			live[i] = live[last]
			liveAt[live[i]] = i
			live = live[:last]
			delete(liveAt, p)
			tape = append(tape, Delete(p.src, p.dst))
		case roll < 0.30:
			p := pick()
			if _, ok := liveAt[p]; ok {
				continue
			}
			tape = append(tape, Delete(p.src, p.dst))
		default:
			p := pick()
			if _, ok := liveAt[p]; ok {
				continue
			}
			liveAt[p] = len(live)
			live = append(live, p)
			tape = append(tape, Insert(p.src, p.dst, float64(1+r.Intn(1000))))
		}
	}
	return tape
}

func TestFaultKillDaemonMidTape(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs shard-daemon processes, draws 120k samples over TCP")
	}
	bin := buildDaemonBinary(t)
	addrs := make([]string, ftShards)
	daemons := make([]*shardDaemon, ftShards)
	for i := 0; i < ftShards; i++ {
		daemons[i] = spawnShardDaemonAt(t, bin, i, ftShards, "127.0.0.1:0")
		addrs[i] = daemons[i].addr
	}

	ring := make([]Edge, ftRingN)
	for i := range ring {
		ring[i] = Edge{Src: VertexID(i), Dst: VertexID((i + 1) % ftRingN), Weight: 1}
	}
	eng, err := FromEdges(ring)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := eng.ServeRemote(addrs, RemoteOptions{WalkLength: 16, Seed: 0xFA57, Replication: 2})
	if err != nil {
		t.Fatalf("ServeRemote: %v", err)
	}

	tape := buildHubTape(ftTapeLen, ftVertMax, ftHubs, 0xFA17)
	feed := func(part []Update) {
		const chunk = 64
		for lo := 0; lo < len(part); lo += chunk {
			hi := lo + chunk
			if hi > len(part) {
				hi = len(part)
			}
			if err := rw.Feed(part[lo:hi]); err != nil {
				t.Fatalf("Feed: %v", err)
			}
		}
	}

	// Query walkers cross process boundaries (and the failover) for the
	// whole run; under replication every query must still complete.
	qdone := make(chan struct{})
	var walkers sync.WaitGroup
	for q := 0; q < 2; q++ {
		walkers.Add(1)
		go func(seed uint64) {
			defer walkers.Done()
			r := xrand.New(seed)
			for n := 0; ; n++ {
				if n >= 16 {
					select {
					case <-qdone:
						return
					default:
					}
				}
				start := VertexID(r.Intn(ftVertMax))
				path, err := rw.Query(start, 16)
				if err != nil {
					t.Errorf("Query during failover: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
			}
		}(0xFACE + uint64(q))
	}

	third := len(tape) / 3
	feed(tape[:third])
	if err := rw.Sync(); err != nil {
		t.Fatalf("Sync before kill: %v", err)
	}

	// kill -9: no shutdown handshake, no flush — the daemon's engine
	// state and in-flight walkers are simply gone.
	daemons[ftVictim].kill(t)
	feed(tape[third : 2*third])

	// The replacement binds the dead daemon's address; the coordinator's
	// background redial finds it and re-primes it from shard 0's
	// snapshots before putting it back in rotation.
	daemons[ftVictim] = spawnShardDaemonAt(t, bin, ftVictim, ftShards, daemons[ftVictim].addr)
	deadline := time.Now().Add(60 * time.Second)
	for rw.Stats().Failover.Rejoins == 0 {
		if time.Now().After(deadline) {
			pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			t.Fatalf("rejoin did not complete; failover tallies %+v", rw.Stats().Failover)
		}
		time.Sleep(20 * time.Millisecond)
	}

	feed(tape[2*third:])
	close(qdone)
	walkers.Wait()
	if err := rw.Sync(); err != nil {
		t.Fatalf("Sync after rejoin: %v", err)
	}
	st := rw.Stats()
	t.Logf("failover tallies %+v, backpressure %+v", st.Failover, st.Backpressure)
	if st.Failover.Deaths == 0 || st.Failover.Rejoins == 0 {
		t.Fatalf("failover tallies %+v: want at least one death and one completed rejoin", st.Failover)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d sub-batches across the failover", st.Dropped)
	}

	// Sequential ground truth: ring + tape, one goroutine, streaming
	// path, over a space pre-sized to the tape's maximum.
	seqUps := make([]Update, 0, ftRingN+ftTapeLen)
	for _, e := range ring {
		seqUps = append(seqUps, Insert(e.Src, e.Dst, e.Weight))
	}
	seqUps = append(seqUps, tape...)
	internal, err := toInternalUpdates(false, seqUps)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.New(ftVertMax, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ApplyUpdatesStreaming(internal); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}

	// Chi-square the post-failover served distribution on the hottest
	// hubs: every draw is a full round trip through whichever daemon owns
	// the vertex after the rejoin.
	type cand struct {
		u graph.VertexID
		d int
	}
	var cands []cand
	for u := 0; u < ftVertMax; u++ {
		if d := seq.Degree(graph.VertexID(u)); d >= 4 {
			cands = append(cands, cand{graph.VertexID(u), d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
	if len(cands) > 8 {
		cands = cands[:8]
	}
	if len(cands) == 0 {
		t.Fatal("no test vertices with degree ≥ 4 — tape generator broken")
	}
	perVertex := ftSamples / len(cands)
	for _, c := range cands {
		slotProbs := seq.VertexProbabilities(c.u)
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range slotProbs {
			probByDst[seq.Neighbor(c.u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		var obsMu sync.Mutex
		var drawers sync.WaitGroup
		const par = 16
		for g := 0; g < par; g++ {
			n := perVertex / par
			if g < perVertex%par {
				n++
			}
			drawers.Add(1)
			go func(n int) {
				defer drawers.Done()
				local := make([]int64, len(dsts))
				for i := 0; i < n; i++ {
					path, err := rw.Query(c.u, 1)
					if err != nil {
						t.Errorf("vertex %d: Query: %v", c.u, err)
						return
					}
					if len(path) != 2 {
						t.Errorf("vertex %d: degree %d but draw returned path %v", c.u, c.d, path)
						return
					}
					slot, ok := index[path[1]]
					if !ok {
						t.Errorf("vertex %d: sampled %d, not a live neighbor", c.u, path[1])
						return
					}
					local[slot]++
				}
				obsMu.Lock()
				for i, v := range local {
					observed[i] += v
				}
				obsMu.Unlock()
			}(n)
		}
		drawers.Wait()
		if t.Failed() {
			t.FailNow()
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("vertex %d: chi-square: %v", c.u, err)
		}
		if p < 1e-4 {
			t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — post-failover distribution diverges from sequential replay",
				c.u, c.d, stat, p)
		}
	}

	// Edge-for-edge: the ownership-filtered union of the daemons' dumps
	// vs the sequential replay.
	shardEdges, err := rw.svc.DumpEdges()
	if err != nil {
		t.Fatalf("DumpEdges: %v", err)
	}
	var got []dsEdge
	for _, es := range shardEdges {
		for _, e := range es {
			got = append(got, dsEdge{src: e.Src, dst: e.Dst, bias: e.Bias})
		}
	}
	want := dsFlatten(nil, seq.Snapshot())
	dsSort(got)
	dsSort(want)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	if err := rw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, d := range daemons {
		d.wait(t)
	}
}

// shardDaemon is one spawned `bingowalk -shard-serve` process the fault
// harness can SIGKILL and replace.
type shardDaemon struct {
	addr   string
	shard  int
	cmd    *daemonCmd
	killed bool
}

// spawnShardDaemonAt starts a daemon on the given address (":0" for
// kernel-assigned) and scrapes the announced listen address — the fixed-
// address variant spawnShardDaemon does not need, so a replacement can
// bind exactly where its predecessor died.
func spawnShardDaemonAt(t *testing.T, bin string, shard, shards int, addr string) *shardDaemon {
	t.Helper()
	cmd := startDaemonCmd(t, bin,
		"-shard-serve", "-addr", addr,
		"-shard", fmt.Sprintf("%d/%d", shard, shards),
		"-sessions", "1",
		"-workers", "2")
	got := cmd.scrapeListenAddr(t, shard)
	return &shardDaemon{addr: got, shard: shard, cmd: cmd}
}

// kill SIGKILLs the daemon — no shutdown handshake — and reaps it.
func (d *shardDaemon) kill(t *testing.T) {
	t.Helper()
	d.killed = true
	d.cmd.kill()
}

// wait asserts a clean exit (for daemons the test did not kill).
func (d *shardDaemon) wait(t *testing.T) {
	t.Helper()
	if d.killed {
		return
	}
	if err := d.cmd.waitFor(30 * time.Second); err != nil {
		t.Errorf("shard daemon %d: %v", d.shard, err)
	}
}

// daemonCmd wraps one spawned daemon process with address scraping and
// kill/wait plumbing.
type daemonCmd struct {
	cmd    *exec.Cmd
	stdout io.ReadCloser
	reaped bool
	mu     sync.Mutex
}

func startDaemonCmd(t *testing.T, bin string, args ...string) *daemonCmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	d := &daemonCmd{cmd: cmd, stdout: stdout}
	t.Cleanup(func() {
		d.mu.Lock()
		reaped := d.reaped
		d.mu.Unlock()
		if !reaped {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

// scrapeListenAddr reads stdout until the daemon announces its listen
// address, then keeps the pipe drained in the background.
func (d *daemonCmd) scrapeListenAddr(t *testing.T, shard int) string {
	t.Helper()
	sc := bufio.NewScanner(d.stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.LastIndex(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		d.kill()
		t.Fatalf("shard daemon %d never announced a listen address", shard)
	}
	go io.Copy(io.Discard, d.stdout)
	return addr
}

// kill SIGKILLs and reaps the process.
func (d *daemonCmd) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
	d.mu.Lock()
	d.reaped = true
	d.mu.Unlock()
}

// waitFor blocks for a clean exit up to the timeout.
func (d *daemonCmd) waitFor(timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	var err error
	select {
	case err = <-done:
	case <-time.After(timeout):
		d.cmd.Process.Kill()
		<-done
		err = fmt.Errorf("did not exit after session close")
	}
	d.mu.Lock()
	d.reaped = true
	d.mu.Unlock()
	return err
}
