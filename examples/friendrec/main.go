// Friendrec: the paper's §1 friend-recommendation scenario — "in friend
// recommendation of social media, one uses random walks to generate the
// node embeddings for the final recommendation" — run end to end on a
// dynamic graph: walks → SkipGram embeddings → nearest neighbors, then the
// graph changes and the refreshed embeddings change the recommendations.
package main

import (
	"fmt"
	"log"

	bingo "github.com/bingo-rw/bingo"
)

const (
	groupSize = 25
	groups    = 4
	n         = groupSize * groups
)

func group(v bingo.VertexID) int { return int(v) / groupSize }

func main() {
	r := bingo.NewRand(99)

	// A small social network of four friend groups.
	var edges []bingo.Edge
	for i := 0; i < 40*n; i++ {
		g := r.Intn(groups)
		u := bingo.VertexID(g*groupSize + r.Intn(groupSize))
		v := bingo.VertexID(g*groupSize + r.Intn(groupSize))
		if u == v {
			continue
		}
		edges = append(edges, bingo.Edge{Src: u, Dst: v, Weight: 1})
	}
	// Sparse cross-group acquaintances.
	for i := 0; i < n/2; i++ {
		u := bingo.VertexID(r.Intn(n))
		v := bingo.VertexID(r.Intn(n))
		if u != v {
			edges = append(edges, bingo.Edge{Src: u, Dst: v, Weight: 1})
		}
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d follows\n", eng.NumVertices(), eng.NumEdges())

	train := func(seed uint64) *bingo.Embedding {
		emb, err := eng.TrainEmbeddings(
			bingo.WalkOptions{Length: 40, Seed: seed},
			bingo.EmbedOptions{Dim: 32, Epochs: 3, Seed: seed},
		)
		if err != nil {
			log.Fatal(err)
		}
		return emb
	}

	user := bingo.VertexID(7) // a group-0 member
	emb := train(1)
	fmt.Printf("recommendations for user %d (group 0):\n", user)
	sameGroup := 0
	for _, rec := range emb.MostSimilar(user, 5) {
		fmt.Printf("  user %-4d (group %d, score %.3f)\n", rec.Vertex, group(rec.Vertex), rec.Score)
		if group(rec.Vertex) == 0 {
			sameGroup++
		}
	}
	fmt.Printf("  → %d/5 from the user's own group\n\n", sameGroup)

	// The user migrates: heavy new interaction with group 3, old ties
	// decay. Streamed live into the engine.
	fmt.Printf("user %d starts interacting with group 3...\n", user)
	for i := 0; i < 60; i++ {
		v := bingo.VertexID(3*groupSize + r.Intn(groupSize))
		if err := eng.Insert(user, v, 4); err != nil {
			log.Fatal(err)
		}
		if err := eng.Insert(v, user, 4); err != nil {
			log.Fatal(err)
		}
	}

	emb = train(2)
	fmt.Printf("refreshed recommendations for user %d:\n", user)
	newGroup := 0
	for _, rec := range emb.MostSimilar(user, 5) {
		fmt.Printf("  user %-4d (group %d, score %.3f)\n", rec.Vertex, group(rec.Vertex), rec.Score)
		if group(rec.Vertex) == 3 {
			newGroup++
		}
	}
	fmt.Printf("  → %d/5 now from group 3: the embedding followed the graph\n", newGroup)
}
