// Pprdynamic: personalized PageRank on an evolving graph. PPR ranks
// vertices by visit frequency across many terminating walks (§1); on a
// dynamic graph the ranking must track structural change without a full
// rebuild. This example also demonstrates float weights (§4.3): edge
// weights here are fractional affinity scores.
package main

import (
	"fmt"
	"log"
	"sort"

	bingo "github.com/bingo-rw/bingo"
)

const n = 500

func main() {
	r := bingo.NewRand(11)

	// A two-community graph with a weak bridge; affinities in (0, 1].
	var edges []bingo.Edge
	community := func(v int) int { return v / (n / 2) }
	for i := 0; i < 6000; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		w := 0.1 + 0.9*r.Float64()
		if community(u) != community(v) {
			if !r.Coin(0.03) {
				continue // few inter-community links
			}
			w *= 0.2
		}
		edges = append(edges, bingo.Edge{Src: bingo.VertexID(u), Dst: bingo.VertexID(v), Weight: w})
	}
	eng, err := bingo.FromEdges(edges, bingo.WithFloatWeights(0))
	if err != nil {
		log.Fatal(err)
	}
	source := bingo.VertexID(3) // a community-0 member
	fmt.Printf("graph: %d vertices, %d edges (float weights)\n", eng.NumVertices(), eng.NumEdges())

	before := pprTop(eng, source, 5)
	fmt.Printf("PPR top-5 for vertex %d before rewiring: %v\n", source, before)
	crossBefore := crossMass(eng, source, community)
	fmt.Printf("  mass in the other community: %.1f%%\n", crossBefore*100)

	// Rewire: the source builds strong ties into community 1 — a user
	// changing interests. Applied as one batch.
	var batch []bingo.Update
	for i := 0; i < 40; i++ {
		dst := bingo.VertexID(n/2 + r.Intn(n/2))
		batch = append(batch, bingo.Insert(source, dst, 0.95))
	}
	if _, err := eng.ApplyBatch(batch); err != nil {
		log.Fatal(err)
	}

	after := pprTop(eng, source, 5)
	fmt.Printf("PPR top-5 after rewiring: %v\n", after)
	crossAfter := crossMass(eng, source, community)
	fmt.Printf("  mass in the other community: %.1f%% (was %.1f%%)\n",
		crossAfter*100, crossBefore*100)
	if crossAfter <= crossBefore {
		fmt.Println("  (unexpected: rewiring should shift PPR mass)")
	} else {
		fmt.Println("  → the ranking followed the structural change, no rebuild needed")
	}
}

func pprVisits(eng *bingo.Engine, source bingo.VertexID) []int64 {
	starts := make([]bingo.VertexID, 4000)
	for i := range starts {
		starts[i] = source
	}
	res := eng.PPR(bingo.WalkOptions{Starts: starts, Seed: 5, CountVisits: true})
	return res.Visits
}

func pprTop(eng *bingo.Engine, source bingo.VertexID, k int) []bingo.VertexID {
	visits := pprVisits(eng, source)
	type vc struct {
		v bingo.VertexID
		c int64
	}
	var all []vc
	for v, c := range visits {
		if bingo.VertexID(v) != source && c > 0 {
			all = append(all, vc{bingo.VertexID(v), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	out := make([]bingo.VertexID, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].v)
	}
	return out
}

func crossMass(eng *bingo.Engine, source bingo.VertexID, community func(int) int) float64 {
	visits := pprVisits(eng, source)
	var total, cross int64
	home := community(int(source))
	for v, c := range visits {
		total += c
		if community(v) != home {
			cross += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cross) / float64(total)
}
