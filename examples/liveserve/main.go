// Liveserve: walk-while-ingest serving, the production scenario the
// concurrent engine exists for. A recommendation service answers walk
// queries ("give me a personalized trail from this user") from a walker
// pool while the interaction stream keeps mutating the graph — no
// update/walk phasing, no stop-the-world ingestion.
//
// Contrast with examples/fraudstream, which interleaves updates and walks
// sequentially: here both genuinely overlap through Engine.Concurrent()
// and Serve().
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	bingo "github.com/bingo-rw/bingo"
)

const (
	users    = 3000
	items    = 2000
	nVerts   = users + items
	queries  = 4000
	clients  = 4
	feedSize = 128
	rounds   = 60
)

func item(i int) bingo.VertexID { return bingo.VertexID(users + i%items) }

func main() {
	r := bingo.NewRand(7)

	// Bootstrap: a bipartite-ish interaction graph (users→items→users).
	var edges []bingo.Edge
	for i := 0; i < 20000; i++ {
		u := bingo.VertexID(r.Intn(users))
		it := item(r.Intn(items))
		w := float64(1 + r.Intn(50))
		edges = append(edges, bingo.Edge{Src: u, Dst: it, Weight: w})
		edges = append(edges, bingo.Edge{Src: it, Dst: u, Weight: w / 2})
	}
	eng, err := bingo.FromEdges(edges, bingo.WithFloatWeights(0))
	if err != nil {
		log.Fatal(err)
	}

	// Upgrade to the concurrent engine and start serving.
	svc := eng.Concurrent().Serve(bingo.LiveOptions{
		Walkers:    4,
		WalkLength: 16,
		Seed:       7,
	})

	t0 := time.Now()

	// The interaction stream: fresh clicks arrive in bursts while queries
	// are in flight.
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		fr := bingo.NewRand(99)
		for round := 0; round < rounds; round++ {
			batch := make([]bingo.Update, 0, feedSize)
			for i := 0; i < feedSize; i++ {
				u := bingo.VertexID(fr.Intn(users))
				batch = append(batch, bingo.Insert(u, item(fr.Intn(items)), float64(1+fr.Intn(20))))
			}
			if err := svc.Feed(batch); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Query clients: each asks for walk trails from random users and
	// tallies the items its trails visit (the recommendation signal).
	recs := make([]int64, items)
	var mu sync.Mutex
	var cl sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl.Add(1)
		go func(c int) {
			defer cl.Done()
			qr := bingo.NewRand(uint64(c) + 1)
			local := make([]int64, items)
			for q := 0; q < queries/clients; q++ {
				path, err := svc.Query(bingo.VertexID(qr.Intn(users)), 0)
				if err != nil {
					log.Fatal(err)
				}
				for _, v := range path {
					if int(v) >= users {
						local[int(v)-users]++
					}
				}
			}
			mu.Lock()
			for i, n := range local {
				recs[i] += n
			}
			mu.Unlock()
		}(c)
	}
	cl.Wait()
	feeder.Wait()
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}

	elapsed := time.Since(t0)
	st := svc.Stats()
	fmt.Printf("served %d walk queries (%d steps) while ingesting %d updates in %d batches\n",
		st.Queries, st.Steps, st.Updates, st.Batches)
	fmt.Printf("wall time %v — %.0f queries/s concurrent with %.0f updates/s\n",
		elapsed.Round(time.Millisecond),
		float64(st.Queries)/elapsed.Seconds(), float64(st.Updates)/elapsed.Seconds())

	best, bestN := 0, int64(0)
	for i, n := range recs {
		if n > bestN {
			best, bestN = i, n
		}
	}
	fmt.Printf("hottest item across live trails: item %d (%d visits)\n", best, bestN)
}
