// Distserve: the shard fabric crossing a real process boundary. The same
// "who to follow" serving scenario as examples/shardserve, but each shard
// engine lives in its *own operating-system process*: the program forks
// itself into N shard daemons (bingo.ServeShard over the TCP fabric),
// then drives queries, a growing follow stream, and a bulk DeepWalk
// through Engine.ServeRemote — one machine's lock domains become N
// processes' address spaces, with the API unchanged.
//
// Walker state (current vertex, hops left, the RNG stream itself) moves
// between the processes as gob frames over loopback TCP; graph data never
// does. New users signing up mid-flight grow each daemon's vertex space
// independently, exercising total block-cyclic ownership across the wire.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"
	"sync"

	bingo "github.com/bingo-rw/bingo"
)

const (
	seedUsers = 3000 // users present at launch
	newUsers  = 900  // users who sign up while serving (vertex-space growth)
	shards    = 3
	queries   = 3000
	clients   = 4
	feedSize  = 96
	rounds    = 60
)

var (
	daemonSpec = flag.String("shard", "", "internal: run as shard daemon K/N")
	daemonAddr = flag.String("addr", "127.0.0.1:0", "internal: daemon listen address")
)

func main() {
	flag.Parse()
	if *daemonSpec != "" {
		runDaemon(*daemonSpec, *daemonAddr)
		return
	}

	// Fork one shard daemon per partition slot and scrape the loopback
	// addresses they bind.
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]string, shards)
	waits := make([]func() error, shards)
	for i := 0; i < shards; i++ {
		addrs[i], waits[i] = spawnDaemon(self, i)
	}
	fmt.Printf("spawned %d shard daemons: %s\n", shards, strings.Join(addrs, ", "))

	// Bootstrap: a follow graph among the launch-day users, snapshotted
	// and shipped shard-by-shard over the fabric by ServeRemote.
	r := bingo.NewRand(21)
	var edges []bingo.Edge
	for i := 0; i < 6*seedUsers; i++ {
		u := bingo.VertexID(r.Intn(seedUsers))
		v := bingo.VertexID(r.Intn(seedUsers))
		if u == v {
			continue
		}
		edges = append(edges, bingo.Edge{Src: u, Dst: v, Weight: float64(1 + r.Intn(9))})
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		log.Fatal(err)
	}
	rw, err := eng.ServeRemote(addrs, bingo.RemoteOptions{WalkLength: 20, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session open: %d daemons bootstrapped with %d edges\n", rw.Shards(), len(edges))

	// The follow stream: existing users follow each other, and brand-new
	// user IDs sign up mid-flight (growth on whichever daemon owns them).
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		fr := bingo.NewRand(77)
		nextUser := bingo.VertexID(seedUsers)
		for round := 0; round < rounds; round++ {
			batch := make([]bingo.Update, 0, feedSize)
			for len(batch) < feedSize {
				if fr.Coin(0.15) && int(nextUser) < seedUsers+newUsers {
					// A signup: the new user follows someone and gains a
					// follower — two edges touching an unseen vertex ID.
					known := bingo.VertexID(fr.Intn(seedUsers))
					batch = append(batch,
						bingo.Insert(nextUser, known, 1),
						bingo.Insert(known, nextUser, float64(1+fr.Intn(9))))
					nextUser++
					continue
				}
				u := bingo.VertexID(fr.Intn(seedUsers))
				v := bingo.VertexID(fr.Intn(seedUsers))
				if u == v {
					continue
				}
				batch = append(batch, bingo.Insert(u, v, float64(1+fr.Intn(9))))
			}
			if err := rw.Feed(batch); err != nil {
				log.Printf("feed: %v", err)
				return
			}
		}
	}()

	// The client fleet: recommendation walks, each one hopping between
	// daemon processes whenever it crosses a partition boundary.
	var fleet sync.WaitGroup
	for c := 0; c < clients; c++ {
		fleet.Add(1)
		go func(seed uint64) {
			defer fleet.Done()
			cr := bingo.NewRand(seed)
			for q := 0; q < queries/clients; q++ {
				start := bingo.VertexID(cr.Intn(seedUsers + newUsers))
				if _, err := rw.Query(start, 20); err != nil {
					log.Printf("query: %v", err)
					return
				}
			}
		}(uint64(c) + 100)
	}
	fleet.Wait()
	feeder.Wait()
	if err := rw.Sync(); err != nil {
		log.Fatalf("sync: %v", err)
	}

	// A bulk DeepWalk across the daemons while the session is still live:
	// one transferable walker per launch-day user.
	starts := make([]bingo.VertexID, 2000)
	for i := range starts {
		starts[i] = bingo.VertexID(i % seedUsers)
	}
	res, ts, err := rw.DeepWalk(bingo.WalkOptions{Length: 10, Starts: starts, Seed: 9})
	if err != nil {
		log.Fatalf("deepwalk: %v", err)
	}

	st := rw.Stats()
	fmt.Printf("served %d queries (%d steps) and ingested %d updates\n", st.Queries, st.Steps, st.Updates)
	fmt.Printf("walker transfer: %d cross-process hand-offs, %d local steps (ratio %.3f)\n",
		st.Transfers, st.Local, st.TransferRatio())
	fmt.Printf("bulk DeepWalk: %d walkers, %d steps (transfer ratio %.3f)\n",
		res.Walkers, res.Steps, ts.TransferRatio())
	fmt.Printf("vertex space grew %d → %d across the daemons\n", seedUsers, rw.NumVertices())

	if err := rw.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	for i, wait := range waits {
		if err := wait(); err != nil {
			log.Fatalf("daemon %d: %v", i, err)
		}
	}
	fmt.Println("session closed; all daemons exited cleanly")
}

// runDaemon is the forked child: host one shard until the parent closes
// the session.
func runDaemon(spec, addr string) {
	var k, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &k, &n); err != nil {
		log.Fatalf("bad -shard %q", spec)
	}
	st, err := bingo.ServeShard(addr, k, n, bingo.ShardServeOptions{
		Walkers:  2,
		OnListen: func(a string) { fmt.Printf("listening on %s\n", a) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "shard %d/%d done: %d steps, %d updates, %d edges over %d vertices\n",
		k, n, st.Steps, st.Updates, st.Edges, st.Vertices)
}

// spawnDaemon forks this binary as shard daemon i and scrapes its bound
// address from stdout.
func spawnDaemon(self string, i int) (string, func() error) {
	cmd := exec.Command(self, "-shard", fmt.Sprintf("%d/%d", i, shards), "-addr", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if idx := strings.LastIndex(line, "listening on "); idx >= 0 {
			go io.Copy(io.Discard, stdout)
			return strings.TrimSpace(line[idx+len("listening on "):]), cmd.Wait
		}
	}
	log.Fatalf("daemon %d never announced its address", i)
	return "", nil
}
