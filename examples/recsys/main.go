// Recsys: the paper's product-recommendation scenario — "certain graph
// systems, such as product recommendations, could require updating the
// graph daily with a large volume of updates" (§1).
//
// A user–product co-interaction graph ingests a day's worth of events
// through the high-throughput batched path (§5.2), then regenerates a
// node2vec walk corpus (the input to SkipGram-style embedding training) for
// the affected neighborhoods.
package main

import (
	"fmt"
	"log"

	bingo "github.com/bingo-rw/bingo"
)

const (
	users    = 3000
	products = 1000
)

// product vertex IDs start after user IDs.
func productID(p int) bingo.VertexID { return bingo.VertexID(users + p) }

func main() {
	r := bingo.NewRand(7)

	// Week-zero interactions: clicks (weight 1), purchases (weight 8).
	var edges []bingo.Edge
	for i := 0; i < 30000; i++ {
		u := bingo.VertexID(r.Intn(users))
		p := productID(r.Intn(products))
		w := 1.0
		if r.Coin(0.15) {
			w = 8 // purchase
		}
		edges = append(edges, bingo.Edge{Src: u, Dst: p, Weight: w},
			bingo.Edge{Src: p, Dst: u, Weight: w})
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog graph: %d vertices, %d edges, %0.1f MB\n",
		eng.NumVertices(), eng.NumEdges(), float64(eng.Memory())/1e6)

	// Nightly batch: 20k new events plus churn (stale edges deleted).
	for day := 1; day <= 3; day++ {
		var batch []bingo.Update
		for i := 0; i < 20000; i++ {
			u := bingo.VertexID(r.Intn(users))
			p := productID(r.Intn(products))
			w := 1.0
			if r.Coin(0.15) {
				w = 8
			}
			batch = append(batch, bingo.Insert(u, p, w), bingo.Insert(p, u, w))
		}
		for i := 0; i < 5000; i++ { // churn: forget old interactions
			u := bingo.VertexID(r.Intn(users))
			p := productID(r.Intn(products))
			batch = append(batch, bingo.Delete(u, p), bingo.Delete(p, u))
		}
		res, err := eng.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d batch: +%d −%d (%d deletes skipped, edge not live)\n",
			day, res.Inserted, res.Deleted, res.NotFound)

		// Regenerate the walk corpus: node2vec with the paper's p=0.5,
		// q=2 from a sample of users.
		starts := make([]bingo.VertexID, 2000)
		for i := range starts {
			starts[i] = bingo.VertexID(r.Intn(users))
		}
		corpus := eng.Node2Vec(bingo.WalkOptions{
			Length: 80, Starts: starts, Seed: uint64(day), P: 0.5, Q: 2,
			CountVisits: true,
		})
		fmt.Printf("  corpus: %d walks, %d hops\n", corpus.Walkers, corpus.Steps)

		// The most-visited products are tonight's trending candidates.
		best, bestVisits := bingo.VertexID(0), int64(0)
		for v := users; v < users+products; v++ {
			if corpus.Visits[v] > bestVisits {
				best, bestVisits = bingo.VertexID(v), corpus.Visits[v]
			}
		}
		fmt.Printf("  trending product: #%d (%d corpus visits)\n", int(best)-users, bestVisits)
	}
}
