// Shardserve: partitioned live serving with walker transfer — the
// supplement §9.1 multi-device topology as a CPU service. A social
// platform's "who to follow" walks are served by four shard engines, each
// owning a block-cyclic slice of the user space, while the follow stream
// keeps mutating the graph AND new users keep signing up: vertex IDs the
// partition has never seen arrive mid-flight, exercising the re-derived
// ownership that makes sharding safe under live growth.
//
// Contrast with examples/liveserve, where one engine (one lock domain)
// absorbs all walkers and the whole feed: here each shard has its own
// engine, walker crew, and ingester, and a walk hops between shards only
// when it crosses a partition boundary — the transfer ratio printed at the
// end is the price of scale the paper argues is cheap.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	bingo "github.com/bingo-rw/bingo"
)

const (
	seedUsers = 4000 // users present at launch
	newUsers  = 1200 // users who sign up while serving (vertex-space growth)
	shards    = 4
	queries   = 6000
	clients   = 4
	feedSize  = 96
	rounds    = 80
)

func main() {
	r := bingo.NewRand(21)

	// Bootstrap: a follow graph among the launch-day users.
	var edges []bingo.Edge
	for i := 0; i < 6*seedUsers; i++ {
		u := bingo.VertexID(r.Intn(seedUsers))
		v := bingo.VertexID(r.Intn(seedUsers))
		if u == v {
			continue
		}
		edges = append(edges, bingo.Edge{Src: u, Dst: v, Weight: float64(1 + r.Intn(9))})
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		log.Fatal(err)
	}

	// Partition into shard engines and start the sharded serving runtime.
	svc, err := eng.ServeSharded(shards, bingo.ShardedOptions{
		WalkersPerShard: 2,
		WalkLength:      20,
		Seed:            21,
	})
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()

	// The follow stream: existing users follow each other, and every round
	// a few *new* users sign up — IDs beyond the partitioned space, owned
	// by whichever shard the block-cyclic plan wraps them onto.
	var signups atomic.Int64
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		fr := bingo.NewRand(99)
		nextNew := seedUsers
		for round := 0; round < rounds; round++ {
			batch := make([]bingo.Update, 0, feedSize+8)
			for i := 0; i < feedSize; i++ {
				u := bingo.VertexID(fr.Intn(seedUsers))
				v := bingo.VertexID(fr.Intn(seedUsers))
				if u == v {
					continue
				}
				batch = append(batch, bingo.Insert(u, v, float64(1+fr.Intn(9))))
			}
			for i := 0; i < newUsers/rounds; i++ {
				nu := bingo.VertexID(nextNew)
				nextNew++
				signups.Add(1)
				// The newcomer follows a few accounts and gets followed back
				// by one — wiring the grown region into live walks.
				for f := 0; f < 3; f++ {
					batch = append(batch, bingo.Insert(nu, bingo.VertexID(fr.Intn(seedUsers)), 5))
				}
				batch = append(batch, bingo.Insert(bingo.VertexID(fr.Intn(seedUsers)), nu, 8))
			}
			if err := svc.Feed(batch); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Query clients: follow-recommendation trails from random users,
	// tallying which accounts the walks surface.
	reach := make(map[bingo.VertexID]int64)
	var mu sync.Mutex
	var cl sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl.Add(1)
		go func(c int) {
			defer cl.Done()
			qr := bingo.NewRand(uint64(c) + 7)
			local := make(map[bingo.VertexID]int64)
			for q := 0; q < queries/clients; q++ {
				path, err := svc.Query(bingo.VertexID(qr.Intn(seedUsers)), 0)
				if err != nil {
					log.Fatal(err)
				}
				for _, v := range path[1:] {
					local[v]++
				}
			}
			mu.Lock()
			for v, n := range local {
				reach[v] += n
			}
			mu.Unlock()
		}(c)
	}
	cl.Wait()
	feeder.Wait()
	if err := svc.Sync(); err != nil {
		log.Fatal(err)
	}

	// One bulk refresh over everything, concurrently shard-parallel.
	bulkStarts := make([]bingo.VertexID, seedUsers)
	for i := range bulkStarts {
		bulkStarts[i] = bingo.VertexID(i)
	}
	bulkRes, bulkStats, err := svc.DeepWalk(bingo.WalkOptions{Length: 12, Seed: 5, Starts: bulkStarts})
	if err != nil {
		log.Fatal(err)
	}

	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	st := svc.Stats()

	fmt.Printf("served %d walk queries (%d steps) while ingesting %d updates in %d batches\n",
		st.Queries, st.Steps, st.Updates, st.Batches)
	fmt.Printf("wall time %v — %.0f queries/s concurrent with %.0f updates/s across %d shards\n",
		elapsed.Round(time.Millisecond),
		float64(st.Queries)/elapsed.Seconds(), float64(st.Updates)/elapsed.Seconds(), svc.Shards())
	fmt.Printf("walker transfer: %d cross-shard hand-offs vs %d local steps (ratio %.3f)\n",
		st.Transfers, st.Local, st.TransferRatio())
	fmt.Printf("bulk refresh: %d walkers, %d steps, transfer ratio %.3f\n",
		bulkRes.Walkers, bulkRes.Steps, bulkStats.TransferRatio())

	var newReach int64
	var hot bingo.VertexID
	var hotN int64
	for v, n := range reach {
		if int(v) >= seedUsers {
			newReach += n
		}
		if n > hotN {
			hot, hotN = v, n
		}
	}
	fmt.Printf("%d signups joined mid-flight; live trails reached grown vertices %d times\n",
		signups.Load(), newReach)
	fmt.Printf("most-recommended account: user %d (%d trail visits)\n", hot, hotN)
}
