// Quickstart: build a small weighted graph, sample neighbors in O(1),
// apply streaming updates in O(K), and run a DeepWalk — the one-minute tour
// of the public API.
package main

import (
	"fmt"
	"log"

	bingo "github.com/bingo-rw/bingo"
)

func main() {
	// The paper's running example: vertex 2 has neighbors 1, 4, 5 with
	// biases 5, 4, 3 (Figure 4).
	eng, err := bingo.FromEdges([]bingo.Edge{
		{Src: 2, Dst: 1, Weight: 5},
		{Src: 2, Dst: 4, Weight: 4},
		{Src: 2, Dst: 5, Weight: 3},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 4, Dst: 2, Weight: 2},
		{Src: 5, Dst: 4, Weight: 5},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Biased sampling: neighbor 1 should win ~5/12 of draws.
	r := bingo.NewRand(7)
	counts := map[bingo.VertexID]int{}
	for i := 0; i < 12000; i++ {
		v, _ := eng.Sample(2, r)
		counts[v]++
	}
	fmt.Println("samples from vertex 2 (weights 5:4:3):")
	weights := map[bingo.VertexID]int{1: 5, 4: 4, 5: 3}
	for _, dst := range []bingo.VertexID{1, 4, 5} {
		fmt.Printf("  → %d: %5d draws (expect ≈%d)\n", dst, counts[dst], 12000*weights[dst]/12)
	}

	// Dynamic updates, exactly the events of the paper's Figure 1.
	if err := eng.Insert(2, 3, 3); err != nil {
		log.Fatal(err)
	}
	if err := eng.Delete(2, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after insert (2,3,3) and delete (2,1): degree(2) = %d, edges = %d\n",
		eng.Degree(2), eng.NumEdges())

	// An 80-step DeepWalk from every vertex.
	res := eng.DeepWalk(bingo.WalkOptions{Length: 80, Seed: 1, CountVisits: true})
	fmt.Printf("DeepWalk: %d walkers took %d steps\n", res.Walkers, res.Steps)
	fmt.Printf("engine memory: %d bytes\n", eng.Memory())
}
