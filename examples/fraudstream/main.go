// Fraudstream: the paper's motivating fraud-detection scenario (§1). A
// transaction graph changes constantly; updates must be visible to the
// random-walk layer immediately, or "malicious users could commit a series
// of illicit activities".
//
// This example streams transactions into the engine one at a time (the
// low-latency path) and, after every burst, launches short random walks
// from a watched account; a sudden concentration of walk visits on a new
// counterparty is the anomaly signal.
package main

import (
	"fmt"
	"log"
	"sort"

	bingo "github.com/bingo-rw/bingo"
)

const (
	accounts = 2000
	watched  = bingo.VertexID(17)
	mule     = bingo.VertexID(1999)
)

func main() {
	r := bingo.NewRand(2024)

	// Bootstrap: a background economy of random transactions.
	var edges []bingo.Edge
	for i := 0; i < 12000; i++ {
		src := bingo.VertexID(r.Intn(accounts))
		dst := bingo.VertexID(r.Intn(accounts))
		if src == dst {
			continue
		}
		amount := float64(1 + r.Intn(100))
		edges = append(edges, bingo.Edge{Src: src, Dst: dst, Weight: amount})
	}
	eng, err := bingo.FromEdges(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped %d accounts, %d transactions\n", eng.NumVertices(), eng.NumEdges())

	baseline := walkProfile(eng, watched)
	fmt.Printf("baseline: top counterparty of account %d holds %.1f%% of walk visits\n",
		watched, top1Share(baseline)*100)

	// Streaming phase: normal traffic interleaved with a fraud pattern —
	// the watched account suddenly funnels large amounts to a mule.
	for burst := 1; burst <= 5; burst++ {
		for i := 0; i < 200; i++ { // normal background traffic
			src := bingo.VertexID(r.Intn(accounts))
			dst := bingo.VertexID(r.Intn(accounts))
			if src == dst {
				continue
			}
			if err := eng.Insert(src, dst, float64(1+r.Intn(100))); err != nil {
				log.Fatal(err)
			}
		}
		// The fraud: repeated, growing transfers watched → mule. Each
		// insert is visible to sampling immediately (O(K) streaming).
		for i := 0; i < burst*4; i++ {
			if err := eng.Insert(watched, mule, float64(500*burst)); err != nil {
				log.Fatal(err)
			}
		}
		profile := walkProfile(eng, watched)
		share := profile[mule]
		flag := ""
		if share > 0.2 { // far above any organic counterparty share
			flag = "  ← ALERT: funnel pattern"
		}
		fmt.Printf("burst %d: mule share of walk visits = %4.1f%%%s\n", burst, share*100, flag)
	}
}

// walkProfile runs many short walks from src and returns each vertex's
// share of first-hop-weighted visits.
func walkProfile(eng *bingo.Engine, src bingo.VertexID) map[bingo.VertexID]float64 {
	starts := make([]bingo.VertexID, 2000)
	for i := range starts {
		starts[i] = src
	}
	res := eng.PPR(bingo.WalkOptions{Starts: starts, Seed: 99, TermProb: 0.3, CountVisits: true})
	total := float64(res.Steps)
	out := map[bingo.VertexID]float64{}
	if total == 0 {
		return out
	}
	for v, c := range res.Visits {
		if bingo.VertexID(v) != src && c > 0 {
			out[bingo.VertexID(v)] = float64(c) / total
		}
	}
	return out
}

func top1Share(profile map[bingo.VertexID]float64) float64 {
	var shares []float64
	for _, s := range profile {
		shares = append(shares, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	if len(shares) == 0 {
		return 0
	}
	return shares[0]
}
