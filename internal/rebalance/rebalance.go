// Package rebalance is the heat-aware shard rebalancer: it watches
// per-shard load (walk steps served, per ownership block, flowing back on
// ingest-barrier acks), decides when the hottest shard carries more than
// its fair share, and plans block-granular ownership migrations toward
// the coldest shard. The package is pure policy plus the watch loop — the
// *mechanism* (heat barriers, the Offer/Block/Commit migration protocol
// over the shard fabric) lives behind the Controller interface, which the
// walk coordinator implements for both the in-process and the TCP
// fabric. Keeping the policy mechanism-free is what makes it unit-testable
// against scripted heat tapes without spinning up a serving runtime.
//
// Why block granularity: the ShardPlan's block-cyclic base map balances
// *ID ranges*, not degree mass or traffic. Skewed growth (scale-free
// graphs grow hubs, and hubs attract walkers) piles the hot blocks onto
// whichever shard their IDs hash to; moving whole blocks keeps the
// ownership function total and cheap (base map + small overlay) while
// still letting the hottest few thousand vertices migrate away from a
// drowning shard. This is the partition-maintenance-under-drift half of
// streaming-walk systems (Wharf's compaction under churn is the storage
// analogue); the paper's own multi-GPU sharding (supplement §9.1) keeps
// the partition static because its workloads are static.
package rebalance

import (
	"time"

	"github.com/bingo-rw/bingo/internal/obs"
)

// Watch-loop instrumentation: phase durations (the heat barrier sweep
// and each serial migration) plus a cycle counter, resolved once at
// package init. The loop is interval-paced, so recording is cheap by
// construction; the histograms are what /metrics needs to show where a
// rebalancing cycle's time actually goes.
var (
	cycles    = obs.C("bingo_rebalance_cycles_total")
	heatNs    = obs.H("bingo_rebalance_heat_seconds")
	migrateNs = obs.H("bingo_rebalance_migrate_seconds")
)

// Default policy knobs.
const (
	// DefaultInterval is the heat-check period.
	DefaultInterval = 500 * time.Millisecond
	// DefaultImbalance triggers rebalancing when the hottest shard's step
	// share exceeds this multiple of the fair share 1/N.
	DefaultImbalance = 1.3
	// DefaultMaxMovesPerCycle bounds migrations per heat check; moves are
	// executed serially, so this also bounds the per-cycle stall budget.
	DefaultMaxMovesPerCycle = 4
	// DefaultMinCycleSteps is the minimum step delta per cycle below
	// which the sample is considered noise and no move is planned.
	DefaultMinCycleSteps = 2048
	// DefaultCooldown is how many cycles a moved block is pinned before
	// it may move again (anti-thrash).
	DefaultCooldown = 2
)

// Options parameterize the rebalancer. The zero value of every field
// selects its default; On is the explicit enable switch the serving
// runtimes check before starting the watch loop.
type Options struct {
	// On enables the rebalancer.
	On bool
	// Interval is the heat-check period.
	Interval time.Duration
	// Imbalance is the trigger ratio: rebalance when the hottest shard's
	// share of the cycle's steps exceeds Imbalance × (1/shards).
	Imbalance float64
	// MaxMovesPerCycle bounds migrations per heat check.
	MaxMovesPerCycle int
	// MinCycleSteps is the minimum per-cycle step delta worth acting on.
	MinCycleSteps int64
	// Cooldown is how many cycles a moved block is pinned.
	Cooldown int
}

// WithDefaults resolves zero fields to the package defaults.
func (o Options) WithDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.Imbalance <= 1 {
		o.Imbalance = DefaultImbalance
	}
	if o.MaxMovesPerCycle <= 0 {
		o.MaxMovesPerCycle = DefaultMaxMovesPerCycle
	}
	if o.MinCycleSteps <= 0 {
		o.MinCycleSteps = DefaultMinCycleSteps
	}
	if o.Cooldown <= 0 {
		o.Cooldown = DefaultCooldown
	}
	return o
}

// BlockSample is one ownership block's heat within a shard report:
// cumulative steps served at the block's vertices and, on the block's
// owner, its live edge count.
type BlockSample struct {
	Block uint64
	Steps int64
	Edges int64
}

// ShardHeat is one shard's cumulative heat report for a cycle.
type ShardHeat struct {
	// Shard is the reporting shard.
	Shard int
	// Steps is the node's cumulative sampled-hop count.
	Steps int64
	// Blocks are the node's per-block samples (cumulative). A block may
	// appear in several shards' reports — remote-view hits serve a
	// block's hops away from its owner — and the planner sums them.
	Blocks []BlockSample
}

// Move is one planned ownership migration.
type Move struct {
	Block    uint64
	From, To int
}

// Controller is the serving-runtime mechanism the watch loop drives. The
// walk coordinator implements it over both shard fabrics.
type Controller interface {
	// Shards returns the partition count.
	Shards() int
	// Heat drives a heat barrier through the ingest streams and returns
	// every shard's report.
	Heat() ([]ShardHeat, error)
	// BlockOwner returns block b's current owner under the live plan.
	BlockOwner(b uint64) int
	// Migrate executes one live block migration, blocking until the
	// recipient has installed the block (or the session died).
	Migrate(m Move) error
}

// Planner turns successive cumulative heat reports into migration plans.
// It keeps cross-cycle state — previous counters for differencing, and
// per-block cooldowns — so one Planner must observe every cycle of its
// session, in order.
type Planner struct {
	opts      Options
	prevShard []int64
	prevBlock map[uint64]int64
	cool      map[uint64]int
}

// NewPlanner builds a planner for a session.
func NewPlanner(opts Options) *Planner {
	return &Planner{
		opts:      opts.WithDefaults(),
		prevBlock: map[uint64]int64{},
		cool:      map[uint64]int{},
	}
}

// Plan differences the cycle's reports against the previous cycle and
// greedily plans moves of the hottest blocks off the hottest shard onto
// the coldest, while that actually lowers the projected maximum. owner
// resolves a block's current owner (the live plan — reports can lag a
// move the coordinator already committed).
func (pl *Planner) Plan(heat []ShardHeat, shards int, owner func(uint64) int) []Move {
	if shards < 2 {
		return nil
	}
	for b := range pl.cool {
		if pl.cool[b]--; pl.cool[b] <= 0 {
			delete(pl.cool, b)
		}
	}
	if len(pl.prevShard) < shards {
		pl.prevShard = append(pl.prevShard, make([]int64, shards-len(pl.prevShard))...)
	}

	// Per-shard and per-block step deltas for the cycle. Block samples
	// sum across reports first (a block's hops can be served on several
	// nodes via remote views), then difference against the previous sum.
	load := make([]int64, shards)
	var total int64
	curBlock := map[uint64]int64{}
	edges := map[uint64]int64{}
	for _, h := range heat {
		if h.Shard < 0 || h.Shard >= shards {
			continue
		}
		d := h.Steps - pl.prevShard[h.Shard]
		pl.prevShard[h.Shard] = h.Steps
		if d < 0 {
			d = 0
		}
		load[h.Shard] = d
		total += d
		for _, b := range h.Blocks {
			curBlock[b.Block] += b.Steps
			if b.Edges > 0 {
				edges[b.Block] = b.Edges
			}
		}
	}
	blockDelta := map[uint64]int64{}
	for b, cum := range curBlock {
		if d := cum - pl.prevBlock[b]; d > 0 {
			blockDelta[b] = d
		}
		pl.prevBlock[b] = cum
	}
	if total < pl.opts.MinCycleSteps {
		return nil
	}
	fair := float64(total) / float64(shards)

	// One donor per cycle: the shard that was hottest when the cycle was
	// sampled sheds blocks; the projected loads pick each move's
	// recipient. Re-electing a new hotspot mid-cycle would chase the
	// projection's own artifacts (a just-landed block making its
	// recipient "hot") into chained speculative moves — the next cycle's
	// real measurements handle whatever remains.
	h := 0
	for i := 1; i < shards; i++ {
		if load[i] > load[h] {
			h = i
		}
	}
	var moves []Move
	for len(moves) < pl.opts.MaxMovesPerCycle {
		if float64(load[h]) <= pl.opts.Imbalance*fair {
			return moves
		}
		c := 0
		for i := 1; i < shards; i++ {
			if load[i] < load[c] {
				c = i
			}
		}
		// Hottest movable block currently owned by the hot shard: skip
		// cooling blocks, empty blocks (nothing to ship), and any block
		// so hot that relocating it would just move the hotspot.
		best, bestSteps := uint64(0), int64(-1)
		for b, d := range blockDelta {
			if owner(b) != h || pl.cool[b] > 0 || edges[b] == 0 {
				continue
			}
			if load[c]+d >= load[h] {
				continue
			}
			if d > bestSteps || (d == bestSteps && b < best) {
				best, bestSteps = b, d
			}
		}
		if bestSteps <= 0 {
			return moves
		}
		load[h] -= bestSteps
		load[c] += bestSteps
		delete(blockDelta, best)
		pl.cool[best] = pl.opts.Cooldown + 1
		moves = append(moves, Move{Block: best, From: h, To: c})
	}
	return moves
}

// Run is the watch loop: every Interval it drives a heat barrier through
// the controller, plans, and executes the planned migrations serially. It
// returns the number of completed migrations when stop closes or the
// controller errors (a dead session ends the loop; onErr, if non-nil,
// observes every error first).
func Run(ctrl Controller, opts Options, stop <-chan struct{}, onErr func(error)) int {
	opts = opts.WithDefaults()
	pl := NewPlanner(opts)
	tick := time.NewTicker(opts.Interval)
	defer tick.Stop()
	done := 0
	for {
		select {
		case <-stop:
			return done
		case <-tick.C:
		}
		cycles.Inc()
		t0 := time.Now()
		heat, err := ctrl.Heat()
		heatNs.ObserveSince(t0)
		if err != nil {
			if onErr != nil {
				onErr(err)
			}
			return done
		}
		for _, m := range pl.Plan(heat, ctrl.Shards(), ctrl.BlockOwner) {
			select {
			case <-stop:
				return done
			default:
			}
			t1 := time.Now()
			err := ctrl.Migrate(m)
			migrateNs.ObserveSince(t1)
			if err != nil {
				if onErr != nil {
					onErr(err)
				}
				return done
			}
			done++
		}
	}
}
