package rebalance

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// mkHeat builds one cycle's reports from per-shard step totals and
// per-block (owner, steps) samples. Counters are cumulative, as the
// fabric delivers them.
func mkHeat(shardSteps []int64, blocks map[uint64][2]int64, owner func(uint64) int) []ShardHeat {
	out := make([]ShardHeat, len(shardSteps))
	for i := range out {
		out[i] = ShardHeat{Shard: i, Steps: shardSteps[i]}
	}
	for b, se := range blocks {
		o := owner(b)
		out[o].Blocks = append(out[o].Blocks, BlockSample{Block: b, Steps: se[0], Edges: se[1]})
	}
	return out
}

func baseOwner(shards int) func(uint64) int {
	return func(b uint64) int { return int(b % uint64(shards)) }
}

// TestPlannerBalancedDoesNothing: an even load plans no moves, and a
// cycle below the noise floor plans no moves no matter how skewed.
func TestPlannerBalancedDoesNothing(t *testing.T) {
	pl := NewPlanner(Options{MinCycleSteps: 1000})
	owner := baseOwner(4)
	heat := mkHeat([]int64{5000, 5100, 4900, 5000},
		map[uint64][2]int64{0: {5000, 10}, 1: {5100, 10}, 2: {4900, 10}, 3: {5000, 10}}, owner)
	if moves := pl.Plan(heat, 4, owner); len(moves) != 0 {
		t.Fatalf("balanced load planned %v", moves)
	}
	pl2 := NewPlanner(Options{MinCycleSteps: 1000})
	tiny := mkHeat([]int64{900, 0, 0, 0}, map[uint64][2]int64{0: {900, 10}}, owner)
	if moves := pl2.Plan(tiny, 4, owner); len(moves) != 0 {
		t.Fatalf("sub-noise cycle planned %v", moves)
	}
}

// TestPlannerMovesHotBlockToColdest: a hot shard whose heat is
// concentrated in one block sheds that block to the coldest shard.
func TestPlannerMovesHotBlockToColdest(t *testing.T) {
	pl := NewPlanner(Options{MinCycleSteps: 100})
	owner := baseOwner(4)
	// Shard 0 serves 12k steps, 10k of them in block 4 (owned by 0);
	// shard 2 is coldest.
	heat := mkHeat([]int64{12000, 3000, 1000, 2000},
		map[uint64][2]int64{
			4: {10000, 500}, // hot block on shard 0
			0: {2000, 300},
			1: {3000, 200}, 2: {1000, 100}, 3: {2000, 100},
		}, owner)
	moves := pl.Plan(heat, 4, owner)
	if len(moves) != 1 {
		t.Fatalf("want 1 move, got %v", moves)
	}
	if moves[0] != (Move{Block: 4, From: 0, To: 2}) {
		t.Fatalf("move %+v, want block 4: 0 → 2", moves[0])
	}
}

// TestPlannerDifferencesCumulativeCounters: the second cycle must act on
// deltas, not lifetime totals — a shard that *was* hot but went idle
// must not keep shedding blocks.
func TestPlannerDifferencesCumulativeCounters(t *testing.T) {
	pl := NewPlanner(Options{MinCycleSteps: 100, Cooldown: 1})
	owner := baseOwner(2)
	c1 := mkHeat([]int64{10000, 1000}, map[uint64][2]int64{0: {9000, 100}, 2: {1000, 50}, 1: {1000, 50}}, owner)
	if moves := pl.Plan(c1, 2, owner); len(moves) != 1 {
		t.Fatalf("cycle 1: want a move, got %v", moves)
	}
	// Cycle 2: cumulative counters unchanged → zero delta → no moves.
	if moves := pl.Plan(c1, 2, owner); len(moves) != 0 {
		t.Fatalf("cycle 2 (idle): planned %v from stale cumulative heat", moves)
	}
	// Cycle 3: shard 1 is now the hot one by delta, although shard 0
	// still leads the lifetime totals.
	c3 := mkHeat([]int64{10500, 9000}, map[uint64][2]int64{1: {8000, 80}, 3: {2000, 40}, 0: {9400, 100}}, owner)
	moves := pl.Plan(c3, 2, owner)
	if len(moves) != 1 || moves[0].From != 1 {
		t.Fatalf("cycle 3: want a move off shard 1, got %v", moves)
	}
}

// TestPlannerCooldownPreventsThrash: a just-moved block may not move
// again for Cooldown cycles even if it stays hot at its new home.
func TestPlannerCooldownPreventsThrash(t *testing.T) {
	pl := NewPlanner(Options{MinCycleSteps: 100, Cooldown: 2})
	shards := 2
	over := map[uint64]int{}
	owner := func(b uint64) int {
		if o, ok := over[b]; ok {
			return o
		}
		return int(b % uint64(shards))
	}
	c1 := mkHeat([]int64{10000, 500}, map[uint64][2]int64{0: {9000, 100}, 1: {500, 60}}, owner)
	moves := pl.Plan(c1, shards, owner)
	if len(moves) != 1 || moves[0].Block != 0 {
		t.Fatalf("cycle 1: %v", moves)
	}
	over[0] = moves[0].To
	// The block stays just as hot at its new home: without the cooldown
	// it would bounce straight back.
	c2 := mkHeat([]int64{11000, 10000}, map[uint64][2]int64{0: {18500, 100}}, owner)
	if moves := pl.Plan(c2, shards, owner); len(moves) != 0 {
		t.Fatalf("cooldown violated: %v", moves)
	}
}

// TestPlannerSkipsMoveThatJustRelocatesHotspot: when a single block IS
// the load, parking it on the coldest shard would leave the imbalance
// identical — the planner must decline.
func TestPlannerSkipsMoveThatJustRelocatesHotspot(t *testing.T) {
	pl := NewPlanner(Options{MinCycleSteps: 100})
	owner := baseOwner(2)
	heat := mkHeat([]int64{10000, 0}, map[uint64][2]int64{0: {10000, 100}}, owner)
	if moves := pl.Plan(heat, 2, owner); len(moves) != 0 {
		t.Fatalf("pointless relocation planned: %v", moves)
	}
}

// TestPlannerCapsMovesPerCycle bounds the per-cycle migration budget.
func TestPlannerCapsMovesPerCycle(t *testing.T) {
	pl := NewPlanner(Options{MinCycleSteps: 100, MaxMovesPerCycle: 2, Imbalance: 1.01})
	owner := baseOwner(4)
	blocks := map[uint64][2]int64{}
	var steps int64
	for b := uint64(0); b < 40; b += 4 { // ten blocks, all owned by shard 0
		blocks[b] = [2]int64{1000, 50}
		steps += 1000
	}
	heat := mkHeat([]int64{steps, 0, 0, 0}, blocks, owner)
	if moves := pl.Plan(heat, 4, owner); len(moves) != 2 {
		t.Fatalf("cap ignored: %d moves", len(moves))
	}
}

// fakeController scripts a controller for the Run loop.
type fakeController struct {
	mu     sync.Mutex
	shards int
	heat   [][]ShardHeat // successive cycles; last repeats
	cycle  int
	moves  []Move
	err    error
}

func (f *fakeController) Shards() int { return f.shards }
func (f *fakeController) Heat() ([]ShardHeat, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	i := f.cycle
	if i >= len(f.heat) {
		i = len(f.heat) - 1
	}
	f.cycle++
	return f.heat[i], nil
}
func (f *fakeController) BlockOwner(b uint64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := len(f.moves) - 1; i >= 0; i-- {
		if f.moves[i].Block == b {
			return f.moves[i].To
		}
	}
	return int(b % uint64(f.shards))
}
func (f *fakeController) Migrate(m Move) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.moves = append(f.moves, m)
	return nil
}

// TestRunLoopExecutesPlannedMoves drives the watch loop against a
// scripted imbalance and checks the migration fires, then the loop
// stops cleanly.
func TestRunLoopExecutesPlannedMoves(t *testing.T) {
	owner := baseOwner(2)
	hot := mkHeat([]int64{9000, 500}, map[uint64][2]int64{0: {8000, 90}, 2: {1000, 30}, 1: {500, 20}}, owner)
	fc := &fakeController{shards: 2, heat: [][]ShardHeat{hot}}
	stop := make(chan struct{})
	doneCh := make(chan int, 1)
	go func() {
		doneCh <- Run(fc, Options{Interval: 5 * time.Millisecond, MinCycleSteps: 100}, stop, nil)
	}()
	deadline := time.After(5 * time.Second)
	for {
		fc.mu.Lock()
		n := len(fc.moves)
		fc.mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no migration fired")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	if n := <-doneCh; n < 1 {
		t.Fatalf("Run reported %d migrations", n)
	}
	if fc.moves[0].From != 0 {
		t.Fatalf("move off shard %d, want 0", fc.moves[0].From)
	}
}

// TestRunLoopStopsOnControllerError: a dead session ends the loop.
func TestRunLoopStopsOnControllerError(t *testing.T) {
	fc := &fakeController{shards: 2, heat: [][]ShardHeat{nil}, err: errors.New("session down")}
	var got error
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		n = Run(fc, Options{Interval: time.Millisecond}, nil, func(err error) { got = err })
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on controller error")
	}
	if got == nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, got)
	}
}
