// Package stats provides the statistical machinery used to validate every
// sampler in this repository against Theorem 4.1 of the paper (sampling
// probabilities must be preserved exactly by the radix factorization):
// chi-square goodness-of-fit tests, KL divergence, and summary statistics.
package stats

import (
	"errors"
	"math"
)

// ChiSquareGOF computes Pearson's chi-square statistic for observed counts
// against expected probabilities, and its p-value. Bins whose expected
// count falls below minExpected (use 5 for the classical rule) are merged
// into their neighbor to keep the chi-square approximation sound.
//
// It returns an error if the inputs are inconsistent or fewer than two
// effective bins remain.
func ChiSquareGOF(observed []int64, probs []float64, minExpected float64) (stat, p float64, err error) {
	if len(observed) != len(probs) {
		return 0, 0, errors.New("stats: observed/probs length mismatch")
	}
	var n int64
	var psum float64
	for i, o := range observed {
		if o < 0 {
			return 0, 0, errors.New("stats: negative observed count")
		}
		if probs[i] < 0 {
			return 0, 0, errors.New("stats: negative probability")
		}
		n += o
		psum += probs[i]
	}
	if n == 0 {
		return 0, 0, errors.New("stats: no observations")
	}
	if math.Abs(psum-1) > 1e-6 {
		return 0, 0, errors.New("stats: probabilities do not sum to 1")
	}

	// Merge small-expectation bins left to right.
	var mo []float64
	var me []float64
	accO, accE := 0.0, 0.0
	for i := range observed {
		accO += float64(observed[i])
		accE += probs[i] * float64(n)
		if accE >= minExpected {
			mo = append(mo, accO)
			me = append(me, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 || accO > 0 { // fold the tail into the last bin
		if len(mo) == 0 {
			mo = append(mo, accO)
			me = append(me, accE)
		} else {
			mo[len(mo)-1] += accO
			me[len(me)-1] += accE
		}
	}
	if len(mo) < 2 {
		return 0, 1, nil // a single bin always fits trivially
	}

	stat = 0
	for i := range mo {
		d := mo[i] - me[i]
		stat += d * d / me[i]
	}
	df := float64(len(mo) - 1)
	p = ChiSquareSurvival(stat, df)
	return stat, p, nil
}

// ChiSquareSurvival returns P(X >= stat) for a chi-square distribution
// with df degrees of freedom, i.e. the p-value of the test statistic.
func ChiSquareSurvival(stat, df float64) float64 {
	if stat <= 0 {
		return 1
	}
	return regIncGammaQ(df/2, stat/2)
}

// regIncGammaQ is the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), computed by the series expansion for x < a+1 and
// the continued fraction otherwise (Numerical Recipes, gammp/gammq).
func regIncGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeriesP(a, x)
	default:
		return gammaContinuedQ(a, x)
	}
}

const (
	gammaEps     = 3e-14
	gammaMaxIter = 500
	gammaTiny    = 1e-300
)

func gammaSeriesP(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedQ(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaTiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaTiny {
			d = gammaTiny
		}
		c = b + an/c
		if math.Abs(c) < gammaTiny {
			c = gammaTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KLDivergence returns the Kullback-Leibler divergence D(p‖q) in nats.
// Zero p-mass terms contribute zero; a zero q with non-zero p yields +Inf.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: length mismatch")
	}
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d
}

// Normalize converts counts into an empirical probability vector.
func Normalize(counts []int64) []float64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	out := make([]float64, len(counts))
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

// Summary holds basic descriptive statistics of a float64 sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes descriptive statistics. The input slice is not
// modified. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	insertionSortOrStd(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	s.Mean = sum / float64(s.N)
	variance := sumSq/float64(s.N) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(idx)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func insertionSortOrStd(xs []float64) {
	// Small inputs dominate in tests; fall back to an O(n log n) heap
	// sort for large ones to keep worst-case behavior sane.
	if len(xs) <= 64 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	heapSort(xs)
}

func heapSort(xs []float64) {
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDown(xs, 0, end)
	}
}

func siftDown(xs []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && xs[child+1] > xs[child] {
			child++
		}
		if xs[root] >= xs[child] {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}
