package stats

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		stat, df, want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{9.488, 4, 0.05},
		{6.635, 1, 0.01},
		{23.685, 14, 0.05},
		{0, 5, 1.0},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.stat, c.df)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("ChiSquareSurvival(%v, %v) = %v, want ~%v", c.stat, c.df, got, c.want)
		}
	}
}

func TestChiSquareGOFUniformFits(t *testing.T) {
	r := xrand.New(1)
	const bins, draws = 16, 64000
	obs := make([]int64, bins)
	probs := make([]float64, bins)
	for i := range probs {
		probs[i] = 1.0 / bins
	}
	for i := 0; i < draws; i++ {
		obs[r.Intn(bins)]++
	}
	_, p, err := ChiSquareGOF(obs, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("uniform sample rejected: p = %g", p)
	}
}

func TestChiSquareGOFDetectsBias(t *testing.T) {
	// Observed heavily skewed vs claimed uniform must be rejected.
	obs := []int64{9000, 1000, 1000, 1000}
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	_, p, err := ChiSquareGOF(obs, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("blatant bias not detected: p = %g", p)
	}
}

func TestChiSquareGOFMergesSmallBins(t *testing.T) {
	// Many tiny-probability bins must not blow up the test.
	probs := make([]float64, 100)
	obs := make([]int64, 100)
	probs[0] = 0.99
	obs[0] = 990
	rest := 0.01 / 99
	for i := 1; i < 100; i++ {
		probs[i] = rest
		if i == 1 {
			obs[i] = 10
		}
	}
	_, p, err := ChiSquareGOF(obs, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("merged-bin uniformish sample rejected: p = %g", p)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, _, err := ChiSquareGOF([]int64{1}, []float64{0.5, 0.5}, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareGOF([]int64{1, 1}, []float64{0.9, 0.9}, 5); err == nil {
		t.Error("non-normalized probabilities accepted")
	}
	if _, _, err := ChiSquareGOF([]int64{0, 0}, []float64{0.5, 0.5}, 5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := ChiSquareGOF([]int64{-1, 2}, []float64{0.5, 0.5}, 5); err == nil {
		t.Error("negative count accepted")
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d := KLDivergence(p, p); d != 0 {
		t.Errorf("D(p||p) = %v, want 0", d)
	}
	q := []float64{0.9, 0.1}
	d := KLDivergence(p, q)
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", d, want)
	}
	if !math.IsInf(KLDivergence([]float64{1, 0}, []float64{0, 1}), 1) {
		t.Error("KL with zero q-mass should be +Inf")
	}
	if KLDivergence([]float64{0, 1}, []float64{0.5, 0.5}) < 0 {
		t.Error("KL must be non-negative")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]int64{1, 3, 0})
	want := []float64{0.25, 0.75, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	zero := Normalize([]int64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("Normalize of zero counts should be zeros")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Error("empty summary not zero")
	}
}

func TestSummarizeLargeUsesHeapSort(t *testing.T) {
	r := xrand.New(4)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	s := Summarize(xs)
	if s.P50 < 0.45 || s.P50 > 0.55 {
		t.Errorf("median of uniform sample = %v", s.P50)
	}
	if s.P95 < 0.93 || s.P95 > 0.97 {
		t.Errorf("p95 of uniform sample = %v", s.P95)
	}
	// Original input must be untouched (Summarize copies).
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		t.Error("input corrupted")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if p := percentile(sorted, 0.5); p != 5 {
		t.Errorf("percentile(0.5) = %v, want 5", p)
	}
	if p := percentile(sorted, 1.0); p != 10 {
		t.Errorf("percentile(1.0) = %v, want 10", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("percentile(nil) = %v, want 0", p)
	}
}

func TestRegIncGammaEdgeCases(t *testing.T) {
	if !math.IsNaN(regIncGammaQ(-1, 1)) {
		t.Error("negative a should be NaN")
	}
	if !math.IsNaN(regIncGammaQ(1, -1)) {
		t.Error("negative x should be NaN")
	}
	if regIncGammaQ(3, 0) != 1 {
		t.Error("Q(a, 0) must be 1")
	}
	// Q(1, x) = exp(-x) exactly.
	for _, x := range []float64{0.1, 1, 3, 10} {
		if got, want := regIncGammaQ(1, x), math.Exp(-x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Q(1,%v) = %v, want %v", x, got, want)
		}
	}
}
