// Package bitutil provides the bit-manipulation primitives behind Bingo's
// radix-based bias factorization: extracting the power-of-two sub-biases of
// an integer bias, counting them, and generalizing from radix base 2 to any
// base B = 2^b (supplement §9.2 of the paper).
//
// All functions are small, allocation-free, and wrap math/bits where a
// hardware instruction exists.
package bitutil

import "math/bits"

// PopCount returns the number of set bits in w, i.e. the number of base-2
// radix groups the bias w contributes a sub-bias to (the paper's t = popc(w)).
func PopCount(w uint64) int { return bits.OnesCount64(w) }

// BitLen returns the number of bits needed to represent w; zero for w == 0.
// For base-2 factorization this is the number of candidate groups K for a
// vertex whose maximum bias is w.
func BitLen(w uint64) int { return bits.Len64(w) }

// Bit reports whether bit k of w is set.
func Bit(w uint64, k int) bool { return w>>uint(k)&1 == 1 }

// LowestSetBit returns the index of the least significant set bit of w.
// It returns -1 for w == 0.
func LowestSetBit(w uint64) int {
	if w == 0 {
		return -1
	}
	return bits.TrailingZeros64(w)
}

// HighestSetBit returns the index of the most significant set bit of w.
// It returns -1 for w == 0.
func HighestSetBit(w uint64) int {
	if w == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(w)
}

// Decompose appends the base-2 sub-biases of w (Equation 3 of the paper:
// D(w) = {2^k | w AND 2^k != 0}) to dst and returns the extended slice.
// The sub-biases are appended in increasing order.
func Decompose(w uint64, dst []uint64) []uint64 {
	for w != 0 {
		low := w & -w // lowest set bit as a value
		dst = append(dst, low)
		w &^= low
	}
	return dst
}

// DecomposeBits appends the set-bit positions of w to dst in increasing
// order and returns the extended slice. Positions are the group indices p_k
// the edge belongs to.
func DecomposeBits(w uint64, dst []int) []int {
	for w != 0 {
		k := bits.TrailingZeros64(w)
		dst = append(dst, k)
		w &^= 1 << uint(k)
	}
	return dst
}

// Digit returns digit j of w in base 2^b, i.e. (w >> (b*j)) & (2^b - 1).
// For b == 1 this is the bit at position j.
func Digit(w uint64, j, b int) uint64 {
	shift := uint(b * j)
	if shift >= 64 {
		return 0
	}
	return w >> shift & (1<<uint(b) - 1)
}

// NumDigits returns the number of base-2^b digits needed to represent w;
// zero for w == 0.
func NumDigits(w uint64, b int) int {
	if w == 0 {
		return 0
	}
	return (BitLen(w) + b - 1) / b
}

// DigitValue reconstructs the sub-bias contributed by digit j with value v
// in base 2^b: v * (2^b)^j. The caller guarantees no overflow.
func DigitValue(v uint64, j, b int) uint64 {
	return v << uint(b*j)
}

// IsPow2 reports whether w is a power of two (w must be non-zero).
func IsPow2(w uint64) bool { return w != 0 && w&(w-1) == 0 }

// NextPow2 returns the smallest power of two >= w, with NextPow2(0) == 1.
func NextPow2(w uint64) uint64 {
	if w <= 1 {
		return 1
	}
	return 1 << uint(bits.Len64(w-1))
}

// CeilLog2 returns ceil(log2(w)) for w >= 1.
func CeilLog2(w uint64) int {
	if w <= 1 {
		return 0
	}
	return bits.Len64(w - 1)
}
