package bitutil

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestPopCount(t *testing.T) {
	cases := []struct {
		w    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {5, 2}, {255, 8},
		{1 << 63, 1}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := PopCount(c.w); got != c.want {
			t.Errorf("PopCount(%d) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		w    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := BitLen(c.w); got != c.want {
			t.Errorf("BitLen(%d) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestBit(t *testing.T) {
	w := uint64(0b1011)
	want := []bool{true, true, false, true, false}
	for k, b := range want {
		if Bit(w, k) != b {
			t.Errorf("Bit(%b, %d) = %v, want %v", w, k, Bit(w, k), b)
		}
	}
}

func TestLowestHighestSetBit(t *testing.T) {
	if LowestSetBit(0) != -1 || HighestSetBit(0) != -1 {
		t.Fatal("zero should yield -1 for both bit queries")
	}
	cases := []struct {
		w      uint64
		lo, hi int
	}{
		{1, 0, 0}, {2, 1, 1}, {6, 1, 2}, {0b101000, 3, 5}, {1 << 63, 63, 63},
	}
	for _, c := range cases {
		if got := LowestSetBit(c.w); got != c.lo {
			t.Errorf("LowestSetBit(%b) = %d, want %d", c.w, got, c.lo)
		}
		if got := HighestSetBit(c.w); got != c.hi {
			t.Errorf("HighestSetBit(%b) = %d, want %d", c.w, got, c.hi)
		}
	}
}

// TestDecomposeSumsToOriginal checks Equation 3/4 of the paper: the
// sub-biases of w must sum back to w exactly (bias mass is preserved).
func TestDecomposeSumsToOriginal(t *testing.T) {
	f := func(w uint64) bool {
		var sum uint64
		for _, s := range Decompose(w, nil) {
			if !IsPow2(s) {
				return false
			}
			sum += s
		}
		return sum == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecomposeBitsMatchesDecompose(t *testing.T) {
	f := func(w uint64) bool {
		vals := Decompose(w, nil)
		ks := DecomposeBits(w, nil)
		if len(vals) != len(ks) || len(ks) != PopCount(w) {
			return false
		}
		for i := range ks {
			if vals[i] != 1<<uint(ks[i]) {
				return false
			}
		}
		// Increasing order.
		for i := 1; i < len(ks); i++ {
			if ks[i] <= ks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecomposeAppendsToDst(t *testing.T) {
	dst := []uint64{99}
	dst = Decompose(5, dst)
	if len(dst) != 3 || dst[0] != 99 || dst[1] != 1 || dst[2] != 4 {
		t.Errorf("Decompose append misbehaved: %v", dst)
	}
}

// TestDigitReconstruction checks the base-2^b generalization: summing
// DigitValue over all digits reconstructs w for every base.
func TestDigitReconstruction(t *testing.T) {
	for _, b := range []int{1, 2, 3, 4, 8, 16} {
		f := func(w uint64) bool {
			n := NumDigits(w, b)
			var sum uint64
			for j := 0; j < n; j++ {
				sum += DigitValue(Digit(w, j, b), j, b)
			}
			if sum != w {
				return false
			}
			// Digits above n must be zero.
			return n == 0 || Digit(w, n, b) == 0 || b*n >= 64
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("base 2^%d: %v", b, err)
		}
	}
}

func TestDigitBase2MatchesBit(t *testing.T) {
	f := func(w uint64) bool {
		for k := 0; k < 64; k++ {
			if (Digit(w, k, 1) == 1) != Bit(w, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumDigits(t *testing.T) {
	cases := []struct {
		w    uint64
		b    int
		want int
	}{
		{0, 4, 0}, {1, 4, 1}, {15, 4, 1}, {16, 4, 2}, {255, 4, 2}, {256, 4, 3},
		{7, 1, 3}, {8, 1, 4},
	}
	for _, c := range cases {
		if got := NumDigits(c.w, c.b); got != c.want {
			t.Errorf("NumDigits(%d, %d) = %d, want %d", c.w, c.b, got, c.want)
		}
	}
}

func TestPow2Helpers(t *testing.T) {
	if !IsPow2(1) || !IsPow2(64) || IsPow2(0) || IsPow2(12) {
		t.Error("IsPow2 misclassified")
	}
	cases := []struct{ w, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.w); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.w, got, c.want)
		}
	}
	if CeilLog2(1) != 0 || CeilLog2(2) != 1 || CeilLog2(3) != 2 || CeilLog2(1024) != 10 {
		t.Error("CeilLog2 wrong")
	}
}

func TestHighestSetBitMatchesStdlib(t *testing.T) {
	f := func(w uint64) bool {
		if w == 0 {
			return HighestSetBit(w) == -1
		}
		return HighestSetBit(w) == bits.Len64(w)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecomposeBits(b *testing.B) {
	buf := make([]int, 0, 64)
	for i := 0; i < b.N; i++ {
		buf = DecomposeBits(uint64(i)*2654435761, buf[:0])
	}
	_ = buf
}
