package sampling

import "github.com/bingo-rw/bingo/internal/xrand"

// This file implements single-item weighted reservoir sampling (A-Chao),
// the algorithm behind the FlowWalker baseline: one pass over the
// candidates, no auxiliary structure, O(d) time per sample. FlowWalker's
// appeal on dynamic graphs is that updates cost nothing; its weakness —
// reproduced in Figure 16 — is that every single walk step pays O(d).

// Reservoir draws index i with probability weights[i]/Σweights in a single
// pass. It returns -1 if the total weight is zero or the slice is empty.
func Reservoir(weights []float64, r *xrand.RNG) int {
	chosen := -1
	total := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		total += w
		// Replace the current choice with probability w/total: a
		// straightforward induction shows every prefix item then holds
		// the reservoir with probability proportional to its weight.
		if r.Float64()*total < w {
			chosen = i
		}
	}
	return chosen
}

// ReservoirFunc is Reservoir over a virtual array: n candidates whose
// weights are produced by weight(i). Engines use it to sample directly off
// adjacency rows without materializing a weight slice.
func ReservoirFunc(n int, weight func(i int) float64, r *xrand.RNG) int {
	chosen := -1
	total := 0.0
	for i := 0; i < n; i++ {
		w := weight(i)
		if w <= 0 {
			continue
		}
		total += w
		if r.Float64()*total < w {
			chosen = i
		}
	}
	return chosen
}

// ReservoirU64 is ReservoirFunc for integer weights, avoiding per-candidate
// float conversion error concerns for exact biases.
func ReservoirU64(n int, weight func(i int) uint64, r *xrand.RNG) int {
	chosen := -1
	var total uint64
	for i := 0; i < n; i++ {
		w := weight(i)
		if w == 0 {
			continue
		}
		total += w
		if r.Uint64n(total) < w {
			chosen = i
		}
	}
	return chosen
}
