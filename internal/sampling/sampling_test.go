package sampling

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// checkDistribution samples `draws` times via sample() over n candidates
// with the given weights and chi-square-tests the empirical frequencies.
func checkDistribution(t *testing.T, name string, weights []float64, draws int, sample func(r *xrand.RNG) int) {
	t.Helper()
	r := xrand.New(12345)
	counts := make([]int64, len(weights))
	for i := 0; i < draws; i++ {
		idx := sample(r)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("%s: sample out of range: %d", name, idx)
		}
		if weights[idx] == 0 {
			t.Fatalf("%s: sampled zero-weight candidate %d", name, idx)
		}
		counts[idx]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	probs := make([]float64, len(weights))
	for i, w := range weights {
		probs[i] = w / total
	}
	_, p, err := stats.ChiSquareGOF(counts, probs, 5)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if p < 1e-5 {
		t.Errorf("%s: distribution rejected, p = %g (counts %v)", name, p, counts)
	}
}

var testWeightSets = map[string][]float64{
	"simple":    {5, 4, 3},
	"paper-fig": {5, 4, 3}, // vertex 2 of the running example
	"skewed":    {1000, 1, 1, 1, 1},
	"withZeros": {0, 10, 0, 5, 0, 1},
	"uniform":   {2, 2, 2, 2},
	"single":    {7},
	"tiny":      {1e-9, 2e-9, 3e-9},
	"huge":      {1e12, 2e12, 3e12},
}

func TestAliasDistribution(t *testing.T) {
	for name, ws := range testWeightSets {
		tab := NewAlias(ws)
		checkDistribution(t, "alias/"+name, ws, 100000, tab.Sample)
	}
}

func TestITSDistribution(t *testing.T) {
	for name, ws := range testWeightSets {
		p := NewPrefix(ws)
		checkDistribution(t, "its/"+name, ws, 100000, p.Sample)
	}
}

func TestRejectionDistribution(t *testing.T) {
	for name, ws := range testWeightSets {
		s := NewRejection(ws)
		checkDistribution(t, "rejection/"+name, ws, 100000, s.Sample)
	}
}

func TestReservoirDistribution(t *testing.T) {
	for name, ws := range testWeightSets {
		ws := ws
		checkDistribution(t, "reservoir/"+name, ws, 100000, func(r *xrand.RNG) int {
			return Reservoir(ws, r)
		})
	}
}

func TestReservoirU64Distribution(t *testing.T) {
	ws := []uint64{5, 4, 3, 0, 8}
	f := []float64{5, 4, 3, 0, 8}
	checkDistribution(t, "reservoirU64", f, 100000, func(r *xrand.RNG) int {
		return ReservoirU64(len(ws), func(i int) uint64 { return ws[i] }, r)
	})
}

func TestAliasRebuildReuse(t *testing.T) {
	var tab AliasTable
	tab.Build([]float64{1, 2, 3})
	if tab.N() != 3 || math.Abs(tab.Total()-6) > 1e-12 {
		t.Fatalf("bad table: n=%d total=%v", tab.N(), tab.Total())
	}
	// Rebuild smaller, then larger; distribution must be correct each time.
	tab.Build([]float64{10, 1})
	checkDistribution(t, "alias/rebuild-small", []float64{10, 1}, 50000, tab.Sample)
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i + 1)
	}
	tab.Build(big)
	checkDistribution(t, "alias/rebuild-big", big, 200000, tab.Sample)
}

func TestAliasEmpty(t *testing.T) {
	var tab AliasTable
	tab.Build(nil)
	if !tab.Empty() {
		t.Error("nil-weight table should be empty")
	}
	tab.Build([]float64{0, 0})
	if !tab.Empty() {
		t.Error("zero-weight table should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("Sample on empty table did not panic")
		}
	}()
	tab.Sample(xrand.New(1))
}

func TestAliasNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative weight did not panic")
		}
	}()
	NewAlias([]float64{1, -1})
}

func TestITSZeroWeightNeverSampled(t *testing.T) {
	ws := []float64{0, 0, 1, 0, 0}
	p := NewPrefix(ws)
	r := xrand.New(2)
	for i := 0; i < 10000; i++ {
		if got := p.Sample(r); got != 2 {
			t.Fatalf("sampled zero-weight index %d", got)
		}
	}
}

func TestITSBuildU64(t *testing.T) {
	var p Prefix
	p.BuildU64([]uint64{5, 4, 3})
	checkDistribution(t, "its/u64", []float64{5, 4, 3}, 100000, p.Sample)
}

func TestRejectionDynamicUpdates(t *testing.T) {
	s := NewRejection([]float64{5, 4, 3})
	s.Append(8)
	checkDistribution(t, "rejection/after-append", []float64{5, 4, 3, 8}, 100000, s.Sample)
	// Delete index 0 (weight 5): last element swaps in.
	s.SwapDelete(0)
	checkDistribution(t, "rejection/after-delete", []float64{8, 4, 3}, 100000, s.Sample)
	if !s.maxStale {
		// weight 5 was not max (8 was appended), so staleness depends on
		// which value was removed; removing 5 when max is 8 keeps bound.
		t.Log("bound not stale, as expected when non-max deleted")
	}
	// Delete the max; bound becomes conservative but sampling stays exact.
	s.SwapDelete(0) // removes 8, swaps 3 in
	checkDistribution(t, "rejection/after-max-delete", []float64{3, 4}, 100000, s.Sample)
	s.TightenBound()
	if s.max != 4 {
		t.Errorf("TightenBound: max = %v, want 4", s.max)
	}
}

func TestRejectionExpectedIterations(t *testing.T) {
	s := NewRejection([]float64{10, 1, 1})
	want := 3.0 * 10 / 12
	if got := s.ExpectedIterations(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedIterations = %v, want %v", got, want)
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := xrand.New(1)
	if Reservoir(nil, r) != -1 {
		t.Error("empty reservoir should return -1")
	}
	if Reservoir([]float64{0, 0}, r) != -1 {
		t.Error("zero-weight reservoir should return -1")
	}
	if ReservoirU64(0, nil, r) != -1 {
		t.Error("empty U64 reservoir should return -1")
	}
}

func TestAliasBucketInvariant(t *testing.T) {
	// Structural invariant of Vose construction: all probs in [0,1],
	// aliases in range.
	r := xrand.New(77)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = r.Float64() * 100
		}
		tab := NewAlias(ws)
		for i := 0; i < tab.N(); i++ {
			if tab.prob[i] < 0 || tab.prob[i] > 1+1e-9 {
				t.Fatalf("prob[%d] = %v out of [0,1]", i, tab.prob[i])
			}
			if tab.alias[i] < 0 || int(tab.alias[i]) >= n {
				t.Fatalf("alias[%d] = %d out of range", i, tab.alias[i])
			}
		}
	}
}

// TestExactProbabilityReconstruction verifies that the alias table encodes
// exactly the input distribution: summing bucket contributions per index
// recovers weight[i]/total.
func TestExactProbabilityReconstruction(t *testing.T) {
	ws := []float64{5, 4, 3, 8, 1}
	tab := NewAlias(ws)
	n := tab.N()
	got := make([]float64, n)
	for i := 0; i < n; i++ {
		got[i] += tab.prob[i] / float64(n)
		got[int(tab.alias[i])] += (1 - tab.prob[i]) / float64(n)
	}
	total := 0.0
	for _, w := range ws {
		total += w
	}
	for i, w := range ws {
		if math.Abs(got[i]-w/total) > 1e-12 {
			t.Errorf("index %d: encoded prob %v, want %v", i, got[i], w/total)
		}
	}
}

func TestFootprints(t *testing.T) {
	tab := NewAlias([]float64{1, 2, 3})
	if tab.Footprint() <= 0 {
		t.Error("alias footprint should be positive")
	}
	p := NewPrefix([]float64{1, 2, 3})
	if p.Footprint() != 24 {
		t.Errorf("prefix footprint = %d, want 24", p.Footprint())
	}
	s := NewRejection([]float64{1, 2, 3})
	if s.Footprint() != 24 {
		t.Errorf("rejection footprint = %d, want 24", s.Footprint())
	}
}

func BenchmarkAliasSample(b *testing.B) {
	ws := make([]float64, 1024)
	r := xrand.New(1)
	for i := range ws {
		ws[i] = r.Float64()*100 + 1
	}
	tab := NewAlias(ws)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= tab.Sample(r)
	}
	_ = sink
}

func BenchmarkITSSample(b *testing.B) {
	ws := make([]float64, 1024)
	r := xrand.New(1)
	for i := range ws {
		ws[i] = r.Float64()*100 + 1
	}
	p := NewPrefix(ws)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= p.Sample(r)
	}
	_ = sink
}

func BenchmarkReservoirSample(b *testing.B) {
	ws := make([]float64, 1024)
	r := xrand.New(1)
	for i := range ws {
		ws[i] = r.Float64()*100 + 1
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= Reservoir(ws, r)
	}
	_ = sink
}

func BenchmarkAliasBuild(b *testing.B) {
	ws := make([]float64, 1024)
	r := xrand.New(1)
	for i := range ws {
		ws[i] = r.Float64()*100 + 1
	}
	var tab AliasTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Build(ws)
	}
}

func TestAccessors(t *testing.T) {
	p := NewPrefix([]float64{1, 2})
	if p.N() != 2 || p.Total() != 3 || p.Empty() {
		t.Errorf("prefix accessors: N=%d Total=%v Empty=%v", p.N(), p.Total(), p.Empty())
	}
	var pe Prefix
	pe.Build(nil)
	if !pe.Empty() || pe.Total() != 0 {
		t.Error("empty prefix accessors wrong")
	}
	rj := NewRejection([]float64{2, 4})
	if rj.N() != 2 || rj.Total() != 6 {
		t.Errorf("rejection accessors: N=%d Total=%v", rj.N(), rj.Total())
	}
	var re Rejection
	re.Build(nil)
	if re.ExpectedIterations() != 0 {
		t.Error("empty rejection ExpectedIterations should be 0")
	}
}

func TestReservoirFunc(t *testing.T) {
	ws := []float64{5, 0, 3}
	checkDistribution(t, "reservoirFunc", ws, 60000, func(r *xrand.RNG) int {
		return ReservoirFunc(len(ws), func(i int) float64 { return ws[i] }, r)
	})
	r := xrand.New(1)
	if ReservoirFunc(0, nil, r) != -1 {
		t.Error("empty ReservoirFunc should return -1")
	}
}
