package sampling

import (
	"sort"

	"github.com/bingo-rw/bingo/internal/xrand"
)

// Prefix implements inverse transform sampling (ITS, paper §2.3): an array
// of cumulative weights sampled by binary search. Sampling is O(log n);
// construction is O(n). The zero value is empty; (re)build with Build.
type Prefix struct {
	cum []float64 // cum[i] = sum of weights[0..i]
}

// Build (re)constructs the CDF array from weights, reusing storage.
func (p *Prefix) Build(weights []float64) {
	p.cum = grow(p.cum, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("sampling: negative weight")
		}
		sum += w
		p.cum[i] = sum
	}
}

// BuildU64 is Build for integer weights, used by engines whose biases are
// uint64 (exact for totals below 2^53).
func (p *Prefix) BuildU64(weights []uint64) {
	p.cum = grow(p.cum, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += float64(w)
		p.cum[i] = sum
	}
}

// NewPrefix builds a fresh ITS sampler from weights.
func NewPrefix(weights []float64) *Prefix {
	var p Prefix
	p.Build(weights)
	return &p
}

// N returns the number of candidates.
func (p *Prefix) N() int { return len(p.cum) }

// Total returns the total weight.
func (p *Prefix) Total() float64 {
	if len(p.cum) == 0 {
		return 0
	}
	return p.cum[len(p.cum)-1]
}

// Empty reports whether no mass is sampleable.
func (p *Prefix) Empty() bool { return len(p.cum) == 0 || p.Total() == 0 }

// Sample draws index i with probability weight[i]/Total via binary search
// over the CDF. It panics if the sampler is empty.
func (p *Prefix) Sample(r *xrand.RNG) int {
	total := p.Total()
	if total == 0 {
		panic("sampling: Sample on empty ITS sampler")
	}
	x := r.Float64() * total
	// Find the first index with cum[i] > x. Zero-weight candidates have
	// cum[i] == cum[i-1] and can never be returned because x < cum[i]
	// fails for them.
	i := sort.SearchFloat64s(p.cum, x)
	// sort.SearchFloat64s returns the first i with cum[i] >= x; when x
	// lands exactly on a boundary we must step past zero-weight runs.
	for i < len(p.cum)-1 && p.cum[i] <= x {
		i++
	}
	return i
}

// Footprint returns the bytes held by the CDF array.
func (p *Prefix) Footprint() int64 { return int64(cap(p.cum)) * 8 }
