// Package sampling implements the classical Monte Carlo sampling methods the
// paper builds on and compares against (§2.3): the alias method, inverse
// transform sampling (ITS), rejection sampling, and single-pass weighted
// reservoir sampling.
//
// These are the substrates of the whole repository: Bingo's inter-group
// stage uses the alias table; the KnightKing baseline uses per-vertex alias
// tables; the gSampler stand-in uses ITS; FlowWalker uses the weighted
// reservoir; and Table 1's complexity comparison microbenchmarks each of
// them directly.
package sampling

import (
	"github.com/bingo-rw/bingo/internal/xrand"
)

// AliasTable samples an index in [0, n) with probability proportional to
// the weight supplied at build time, in O(1) per sample. Construction is
// O(n) (Vose's algorithm). The zero value is an empty table; (re)build it
// with Build.
//
// Build reuses the table's internal storage, because Bingo rebuilds a small
// inter-group alias table after every streaming update (paper §4.2) and
// that path must not allocate.
type AliasTable struct {
	prob  []float64 // acceptance threshold of each bucket, scaled to [0,1]
	alias []int32   // fallback index of each bucket
	total float64   // sum of weights

	small, large []int32 // build-time scratch, kept to avoid reallocation
}

// Build (re)constructs the table from weights. Negative weights panic;
// all-zero or empty weights produce a table that reports Empty() == true.
func (t *AliasTable) Build(weights []float64) {
	n := len(weights)
	t.prob = grow(t.prob, n)
	t.alias = growInt32(t.alias, n)
	t.small = t.small[:0]
	t.large = t.large[:0]

	t.total = 0
	for _, w := range weights {
		if w < 0 {
			panic("sampling: negative weight")
		}
		t.total += w
	}
	if n == 0 || t.total == 0 {
		t.prob = t.prob[:0]
		t.alias = t.alias[:0]
		return
	}

	// Scale each weight to mean 1 and split into small/large worklists.
	scale := float64(n) / t.total
	for i, w := range weights {
		t.prob[i] = w * scale
		t.alias[i] = int32(i)
		if t.prob[i] < 1 {
			t.small = append(t.small, int32(i))
		} else {
			t.large = append(t.large, int32(i))
		}
	}
	for len(t.small) > 0 && len(t.large) > 0 {
		s := t.small[len(t.small)-1]
		t.small = t.small[:len(t.small)-1]
		l := t.large[len(t.large)-1]
		// Bucket s keeps probability prob[s] for itself; the remainder
		// of the bucket is donated by l.
		t.alias[s] = l
		t.prob[l] -= 1 - t.prob[s]
		if t.prob[l] < 1 {
			t.large = t.large[:len(t.large)-1]
			t.small = append(t.small, l)
		}
	}
	// Numerical leftovers: everything remaining fills its own bucket.
	for _, i := range t.small {
		t.prob[i] = 1
	}
	for _, i := range t.large {
		t.prob[i] = 1
	}
	t.small = t.small[:0]
	t.large = t.large[:0]
}

// NewAlias builds a fresh table from weights.
func NewAlias(weights []float64) *AliasTable {
	var t AliasTable
	t.Build(weights)
	return &t
}

// Empty reports whether the table has no sampleable mass.
func (t *AliasTable) Empty() bool { return len(t.prob) == 0 }

// N returns the number of buckets.
func (t *AliasTable) N() int { return len(t.prob) }

// Total returns the sum of weights the table was built from.
func (t *AliasTable) Total() float64 { return t.total }

// Sample draws an index with probability weight[i]/Total in O(1).
// It panics if the table is empty.
func (t *AliasTable) Sample(r *xrand.RNG) int {
	n := len(t.prob)
	if n == 0 {
		panic("sampling: Sample on empty alias table")
	}
	i := r.Intn(n)
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Footprint returns the bytes held by the table (including scratch).
func (t *AliasTable) Footprint() int64 {
	return int64(cap(t.prob))*8 + int64(cap(t.alias))*4 +
		int64(cap(t.small))*4 + int64(cap(t.large))*4
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
