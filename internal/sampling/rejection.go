package sampling

import "github.com/bingo-rw/bingo/internal/xrand"

// Rejection implements classic rejection sampling (paper §2.3): pick a
// candidate uniformly, accept with probability weight/maxWeight. Updates
// are O(1) (append / swap-delete) but sampling cost is the paper's
// O(d·max(w)/Σw) expectation, which is what Bingo's factorization avoids.
//
// The zero value is empty. Unlike AliasTable and Prefix, Rejection supports
// in-place dynamic updates, because that is its selling point in Table 1.
type Rejection struct {
	weights []float64
	max     float64
	total   float64
	// maxStale marks that max may exceed the true maximum after a
	// deletion; the bound stays correct (sampling remains unbiased, only
	// slower), and is tightened on the next rebuild.
	maxStale bool
}

// NewRejection builds a rejection sampler over weights.
func NewRejection(weights []float64) *Rejection {
	var s Rejection
	s.Build(weights)
	return &s
}

// Build (re)constructs the sampler, reusing storage.
func (s *Rejection) Build(weights []float64) {
	s.weights = grow(s.weights, len(weights))
	copy(s.weights, weights)
	s.max, s.total = 0, 0
	for _, w := range weights {
		if w < 0 {
			panic("sampling: negative weight")
		}
		if w > s.max {
			s.max = w
		}
		s.total += w
	}
	s.maxStale = false
}

// N returns the number of candidates.
func (s *Rejection) N() int { return len(s.weights) }

// Total returns the total weight.
func (s *Rejection) Total() float64 { return s.total }

// Empty reports whether no mass is sampleable.
func (s *Rejection) Empty() bool { return len(s.weights) == 0 || s.total == 0 }

// Append adds a candidate with the given weight in O(1).
func (s *Rejection) Append(w float64) {
	if w < 0 {
		panic("sampling: negative weight")
	}
	s.weights = append(s.weights, w)
	if w > s.max {
		s.max = w
	}
	s.total += w
}

// SwapDelete removes candidate i in O(1) by swapping the last candidate
// into its slot, mirroring how every dynamic engine in this repository
// deletes adjacency entries.
func (s *Rejection) SwapDelete(i int) {
	w := s.weights[i]
	last := len(s.weights) - 1
	s.weights[i] = s.weights[last]
	s.weights = s.weights[:last]
	s.total -= w
	if w == s.max {
		s.maxStale = true // bound now conservative; still correct
	}
}

// Sample draws index i with probability weight[i]/Total. Expected cost is
// O(n·max/Σw) iterations. It panics if the sampler is empty.
func (s *Rejection) Sample(r *xrand.RNG) int {
	if s.Empty() {
		panic("sampling: Sample on empty rejection sampler")
	}
	n := len(s.weights)
	for {
		i := r.Intn(n)
		if r.Float64()*s.max < s.weights[i] {
			return i
		}
	}
}

// TightenBound recomputes the exact maximum in O(n). Engines call it during
// batch rebuilds to restore the optimal rejection rate after deletions.
func (s *Rejection) TightenBound() {
	if !s.maxStale {
		return
	}
	s.max = 0
	for _, w := range s.weights {
		if w > s.max {
			s.max = w
		}
	}
	s.maxStale = false
}

// ExpectedIterations returns the expected number of proposal rounds per
// sample, n·max/Σw — the quantity Table 1 reports for rejection sampling.
func (s *Rejection) ExpectedIterations() float64 {
	if s.Empty() {
		return 0
	}
	return float64(len(s.weights)) * s.max / s.total
}

// Footprint returns the bytes held by the sampler.
func (s *Rejection) Footprint() int64 { return int64(cap(s.weights)) * 8 }
