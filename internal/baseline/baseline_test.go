package baseline

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// engines under test, constructed fresh per case.
func makeEngines(g *graph.CSR) map[string]walk.Dynamic {
	return map[string]walk.Dynamic{
		"knightking": NewKnightKing(g),
		"rebuildits": NewRebuildITS(g),
		"flowwalker": NewFlowWalker(g),
	}
}

func exampleGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.FromEdges(8, []graph.Edge{
		{Src: 2, Dst: 1, Bias: 5},
		{Src: 2, Dst: 4, Bias: 4},
		{Src: 2, Dst: 5, Bias: 3},
		{Src: 0, Dst: 1, Bias: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkDist(t *testing.T, name string, e walk.Engine, u graph.VertexID, want map[graph.VertexID]float64, draws int) {
	t.Helper()
	r := xrand.New(777)
	counts := map[graph.VertexID]int64{}
	for i := 0; i < draws; i++ {
		v, ok := e.Sample(u, r)
		if !ok {
			t.Fatalf("%s: no sample from %d", name, u)
		}
		counts[v]++
	}
	var obs []int64
	var probs []float64
	for dst, p := range want {
		obs = append(obs, counts[dst])
		probs = append(probs, p)
		delete(counts, dst)
	}
	if len(counts) != 0 {
		t.Fatalf("%s: unexpected destinations %v", name, counts)
	}
	_, p, err := stats.ChiSquareGOF(obs, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-5 {
		t.Errorf("%s: distribution rejected, p = %g", name, p)
	}
}

func TestBaselineDistributions(t *testing.T) {
	g := exampleGraph(t)
	for name, e := range makeEngines(g) {
		checkDist(t, name, e, 2, map[graph.VertexID]float64{
			1: 5.0 / 12, 4: 4.0 / 12, 5: 3.0 / 12,
		}, 100000)
	}
}

func TestBaselineStreamingUpdates(t *testing.T) {
	g := exampleGraph(t)
	for name, e := range makeEngines(g) {
		if err := e.InsertEdge(2, 3, 3, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := e.DeleteEdge(2, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Degree(2) != 3 {
			t.Fatalf("%s: degree %d, want 3", name, e.Degree(2))
		}
		if e.HasEdge(2, 1) || !e.HasEdge(2, 3) {
			t.Fatalf("%s: adjacency wrong after updates", name)
		}
		checkDist(t, name, e, 2, map[graph.VertexID]float64{
			4: 0.4, 5: 0.3, 3: 0.3,
		}, 100000)
	}
}

func TestBaselineDeleteErrors(t *testing.T) {
	g := exampleGraph(t)
	for name, e := range makeEngines(g) {
		if err := e.DeleteEdge(2, 7); err == nil {
			t.Errorf("%s: deleting absent edge succeeded", name)
		}
		if err := e.DeleteEdge(99, 0); err == nil {
			t.Errorf("%s: deleting from absent vertex succeeded", name)
		}
	}
}

func TestBaselineBatchUpdates(t *testing.T) {
	g := exampleGraph(t)
	for name, e := range makeEngines(g) {
		err := e.ApplyUpdates([]graph.Update{
			{Op: graph.OpInsert, Src: 2, Dst: 3, Bias: 3},
			{Op: graph.OpDelete, Src: 2, Dst: 1},
			{Op: graph.OpDelete, Src: 2, Dst: 7}, // tolerated miss
			{Op: graph.OpInsert, Src: 6, Dst: 0, Bias: 9},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkDist(t, name, e, 2, map[graph.VertexID]float64{
			4: 0.4, 5: 0.3, 3: 0.3,
		}, 80000)
		checkDist(t, name, e, 6, map[graph.VertexID]float64{0: 1}, 100)
	}
}

func TestBaselineVertexGrowth(t *testing.T) {
	g := exampleGraph(t)
	for name, e := range makeEngines(g) {
		if err := e.InsertEdge(20, 21, 4, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.NumVertices() < 22 {
			t.Errorf("%s: vertex space %d", name, e.NumVertices())
		}
		if !e.HasEdge(20, 21) {
			t.Errorf("%s: edge on grown vertex missing", name)
		}
		if d, ok := e.Sample(20, xrand.New(1)); !ok || d != 21 {
			t.Errorf("%s: sample from grown vertex = %d, %v", name, d, ok)
		}
	}
}

func TestBaselineEmptyVertex(t *testing.T) {
	g := exampleGraph(t)
	r := xrand.New(1)
	for name, e := range makeEngines(g) {
		if _, ok := e.Sample(7, r); ok {
			t.Errorf("%s: sampled from empty vertex", name)
		}
		if _, ok := e.Sample(500, r); ok {
			t.Errorf("%s: sampled from out-of-range vertex", name)
		}
		if e.Degree(500) != 0 || e.HasEdge(500, 0) {
			t.Errorf("%s: out-of-range queries wrong", name)
		}
	}
}

func TestBaselineFootprintOrdering(t *testing.T) {
	// FlowWalker must be lightest (adjacency only); the others carry an
	// 8-byte-per-edge structure on top.
	edges := gen.RMAT(500, 8000, gen.DefaultRMAT, 4)
	gen.AssignBiases(edges, 500, gen.BiasConfig{Kind: gen.BiasDegree})
	g, err := graph.FromEdges(500, edges)
	if err != nil {
		t.Fatal(err)
	}
	fw := NewFlowWalker(g).Footprint()
	kk := NewKnightKing(g).Footprint()
	its := NewRebuildITS(g).Footprint()
	if fw >= kk {
		t.Errorf("FlowWalker %d >= KnightKing %d", fw, kk)
	}
	if fw >= its {
		t.Errorf("FlowWalker %d >= RebuildITS %d", fw, its)
	}
}

func TestBaselineChurnConsistency(t *testing.T) {
	// Randomized updates: all engines must agree on per-destination mass
	// at the end (they share the same tolerant semantics).
	edges := gen.RMAT(120, 1500, gen.DefaultRMAT, 8)
	gen.AssignBiases(edges, 120, gen.BiasConfig{Kind: gen.BiasDegree})
	g, err := graph.FromEdges(120, edges)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gen.BuildWorkload(g, gen.UpdMixed, 100, 5, 66)
	if err != nil {
		t.Fatal(err)
	}
	engines := makeEngines(w.Initial)
	for _, b := range w.Batches() {
		for name, e := range engines {
			if err := e.ApplyUpdates(b); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	ref := engines["flowwalker"].(*FlowWalker)
	for name, e := range engines {
		if name == "flowwalker" {
			continue
		}
		for u := graph.VertexID(0); int(u) < 120; u++ {
			if e.Degree(u) != ref.Degree(u) {
				t.Fatalf("%s: vertex %d degree %d vs %d", name, u, e.Degree(u), ref.Degree(u))
			}
		}
	}
}

func BenchmarkBaselineSample(b *testing.B) {
	edges := gen.RMAT(2000, 40000, gen.DefaultRMAT, 4)
	gen.AssignBiases(edges, 2000, gen.BiasConfig{Kind: gen.BiasDegree})
	g, _ := graph.FromEdges(2000, edges)
	engines := map[string]walk.Engine{
		"knightking": NewKnightKing(g),
		"rebuildits": NewRebuildITS(g),
		"flowwalker": NewFlowWalker(g),
	}
	for name, e := range engines {
		b.Run(name, func(b *testing.B) {
			r := xrand.New(1)
			for i := 0; i < b.N; i++ {
				e.Sample(graph.VertexID(i%2000), r)
			}
		})
	}
}
