// Package baseline implements the three comparison systems of the paper's
// evaluation (§6.2), all behind the same walk.Dynamic interface as Bingo:
//
//   - KnightKing: per-vertex alias tables (Vose), O(1) sampling, O(d)
//     rebuild of a touched vertex per update — the CPU state of the art the
//     paper compares against.
//   - RebuildITS: per-vertex inverse-transform (CDF) arrays with O(log d)
//     sampling, reconstructed for touched vertices each update round — the
//     stand-in for gSampler, which the paper adapts by "reload[ing] or
//     reconstruct[ing] the corresponding structure after each round of
//     updates".
//   - FlowWalker: no auxiliary structure at all; every step runs a
//     single-pass weighted reservoir over the adjacency row (O(d) per
//     step), and updates only touch the adjacency — reproducing its
//     fast-update / slow-sampling trade-off (Figure 16).
//
// All three own a dynamic adjacency store (internal/adj), so their memory
// columns are directly comparable with Bingo's.
package baseline

import (
	"fmt"

	"github.com/bingo-rw/bingo/internal/adj"
	"github.com/bingo-rw/bingo/internal/graph"
)

// errNotFound wraps deletion misses uniformly across baselines.
func errNotFound(u, dst graph.VertexID) error {
	return fmt.Errorf("baseline: edge (%d,%d) not found", u, dst)
}

// loadAdj materializes a CSR snapshot into a dynamic adjacency store.
// The baselines consume integer biases only, matching the integer-bias
// experiments; the float-bias study (Figure 14) compares Bingo against
// itself.
func loadAdj(g *graph.CSR) *adj.Lists {
	l := adj.New(g.NumVertices(), false, 0)
	for u := 0; u < g.NumVertices(); u++ {
		vid := graph.VertexID(u)
		dsts := g.Neighbors(vid)
		biases := g.Biases(vid)
		l.Grow(vid, len(dsts))
		for i := range dsts {
			l.Append(vid, dsts[i], biases[i], 0)
		}
	}
	return l
}

// applyAdjUpdates applies a batch to an adjacency store and returns the set
// of touched vertices. Deletions of missing edges are skipped (the same
// tolerant semantics as Bingo's ApplyBatch).
func applyAdjUpdates(l *adj.Lists, ups []graph.Update) map[graph.VertexID]struct{} {
	touched := make(map[graph.VertexID]struct{})
	for _, up := range ups {
		l.EnsureVertex(up.Src)
		l.EnsureVertex(up.Dst)
		switch up.Op {
		case graph.OpInsert:
			l.Append(up.Src, up.Dst, up.Bias, 0)
			touched[up.Src] = struct{}{}
		case graph.OpDelete:
			if i := l.Find(up.Src, up.Dst); i >= 0 {
				l.SwapDelete(up.Src, i)
				touched[up.Src] = struct{}{}
			}
		}
	}
	return touched
}
