package baseline

import (
	"github.com/bingo-rw/bingo/internal/adj"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/sampling"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// RebuildITS is the gSampler stand-in (see DESIGN.md §1): per-vertex
// cumulative-distribution arrays sampled by binary search (O(log d)),
// reconstructed for every touched vertex after each round of updates —
// exactly how the paper adapts gSampler, which supports only static
// snapshots. Its memory is the CDF array (8 bytes/edge) plus the adjacency;
// the real gSampler's matrix workspaces are larger still, so our memory
// column is a lower bound for it (recorded in EXPERIMENTS.md).
type RebuildITS struct {
	lists    *adj.Lists
	prefixes []sampling.Prefix
}

// NewRebuildITS builds the engine from a snapshot.
func NewRebuildITS(g *graph.CSR) *RebuildITS {
	e := &RebuildITS{
		lists:    loadAdj(g),
		prefixes: make([]sampling.Prefix, g.NumVertices()),
	}
	for u := range e.prefixes {
		e.rebuild(graph.VertexID(u))
	}
	return e
}

func (e *RebuildITS) rebuild(u graph.VertexID) {
	e.prefixes[u].BuildU64(e.lists.BiasRow(u))
}

func (e *RebuildITS) ensure(u graph.VertexID) {
	e.lists.EnsureVertex(u)
	for int(u) >= len(e.prefixes) {
		e.prefixes = append(e.prefixes, sampling.Prefix{})
	}
}

// NumVertices returns the vertex-ID space size.
func (e *RebuildITS) NumVertices() int { return len(e.prefixes) }

// Degree returns u's out-degree.
func (e *RebuildITS) Degree(u graph.VertexID) int {
	if int(u) >= len(e.prefixes) {
		return 0
	}
	return e.lists.Degree(u)
}

// HasEdge reports edge existence in O(1) expected.
func (e *RebuildITS) HasEdge(u, dst graph.VertexID) bool {
	if int(u) >= len(e.prefixes) {
		return false
	}
	return e.lists.HasEdge(u, dst)
}

// Sample draws a biased neighbor in O(log d) via binary search on the CDF.
func (e *RebuildITS) Sample(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) {
	if int(u) >= len(e.prefixes) || e.prefixes[u].Empty() {
		return 0, false
	}
	return e.lists.Dst(u, int32(e.prefixes[u].Sample(r))), true
}

// InsertEdge appends the edge and rebuilds u's CDF (O(d)).
func (e *RebuildITS) InsertEdge(u, dst graph.VertexID, bias uint64, fbias float64) error {
	_ = fbias
	e.ensure(u)
	e.ensure(dst)
	e.lists.Append(u, dst, bias, 0)
	e.rebuild(u)
	return nil
}

// DeleteEdge removes the edge and rebuilds u's CDF (O(d)).
func (e *RebuildITS) DeleteEdge(u, dst graph.VertexID) error {
	if int(u) >= len(e.prefixes) {
		return errNotFound(u, dst)
	}
	i := e.lists.Find(u, dst)
	if i < 0 {
		return errNotFound(u, dst)
	}
	e.lists.SwapDelete(u, i)
	e.rebuild(u)
	return nil
}

// ApplyUpdates ingests a batch, then reconstructs every vertex's CDF — the
// full per-round reconstruction the paper applies to gSampler, which has no
// incremental path (§6.2).
func (e *RebuildITS) ApplyUpdates(ups []graph.Update) error {
	for _, up := range ups {
		e.ensure(up.Src)
		e.ensure(up.Dst)
	}
	applyAdjUpdates(e.lists, ups)
	for u := range e.prefixes {
		e.rebuild(graph.VertexID(u))
	}
	return nil
}

// Footprint returns adjacency plus CDF bytes.
func (e *RebuildITS) Footprint() int64 {
	total := e.lists.Footprint()
	for u := range e.prefixes {
		total += e.prefixes[u].Footprint()
	}
	return total
}
