package baseline

import (
	"github.com/bingo-rw/bingo/internal/adj"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/sampling"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// FlowWalker models the reservoir-sampling GPU framework: it maintains no
// sampling structure whatsoever — every step performs a single-pass
// weighted reservoir over the adjacency row. Updates are therefore nearly
// free ("it simply reloads the new graph after updates", §6.4), while
// sampling costs O(d) per step, the complexity wall the paper demonstrates
// on Twitter-scale degrees (Figure 16(b): Bingo is 218.7× faster).
type FlowWalker struct {
	lists *adj.Lists
}

// NewFlowWalker builds the engine from a snapshot.
func NewFlowWalker(g *graph.CSR) *FlowWalker {
	return &FlowWalker{lists: loadAdj(g)}
}

// NumVertices returns the vertex-ID space size.
func (e *FlowWalker) NumVertices() int { return e.lists.NumVertices() }

// Degree returns u's out-degree.
func (e *FlowWalker) Degree(u graph.VertexID) int {
	if int(u) >= e.lists.NumVertices() {
		return 0
	}
	return e.lists.Degree(u)
}

// HasEdge reports edge existence in O(1) expected.
func (e *FlowWalker) HasEdge(u, dst graph.VertexID) bool {
	if int(u) >= e.lists.NumVertices() {
		return false
	}
	return e.lists.HasEdge(u, dst)
}

// Sample draws a biased neighbor by weighted reservoir in O(d).
func (e *FlowWalker) Sample(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) {
	if int(u) >= e.lists.NumVertices() {
		return 0, false
	}
	row := e.lists.BiasRow(u)
	i := sampling.ReservoirU64(len(row), func(k int) uint64 { return row[k] }, r)
	if i < 0 {
		return 0, false
	}
	return e.lists.Dst(u, int32(i)), true
}

// InsertEdge appends the edge; no structure to maintain.
func (e *FlowWalker) InsertEdge(u, dst graph.VertexID, bias uint64, fbias float64) error {
	_ = fbias
	e.lists.EnsureVertex(u)
	e.lists.EnsureVertex(dst)
	e.lists.Append(u, dst, bias, 0)
	return nil
}

// DeleteEdge removes the edge; no structure to maintain.
func (e *FlowWalker) DeleteEdge(u, dst graph.VertexID) error {
	if int(u) >= e.lists.NumVertices() {
		return errNotFound(u, dst)
	}
	i := e.lists.Find(u, dst)
	if i < 0 {
		return errNotFound(u, dst)
	}
	e.lists.SwapDelete(u, i)
	return nil
}

// ApplyUpdates ingests a batch directly into the adjacency (the "reload").
func (e *FlowWalker) ApplyUpdates(ups []graph.Update) error {
	applyAdjUpdates(e.lists, ups)
	return nil
}

// Footprint returns adjacency bytes only — FlowWalker's headline advantage.
func (e *FlowWalker) Footprint() int64 { return e.lists.Footprint() }
