package baseline

import (
	"github.com/bingo-rw/bingo/internal/adj"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/sampling"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// KnightKing models the paper's CPU state of the art: per-vertex alias
// tables giving O(1) static sampling. The cost it pays on dynamic graphs —
// the cost Bingo's factorization removes — is the O(d) alias-table rebuild
// of every touched vertex on every update (Table 1's Alias row).
type KnightKing struct {
	lists  *adj.Lists
	tables []sampling.AliasTable
	wbuf   []float64 // rebuild scratch
}

// NewKnightKing builds the engine from a snapshot.
func NewKnightKing(g *graph.CSR) *KnightKing {
	e := &KnightKing{
		lists:  loadAdj(g),
		tables: make([]sampling.AliasTable, g.NumVertices()),
	}
	for u := range e.tables {
		e.rebuild(graph.VertexID(u))
	}
	return e
}

// rebuild reconstructs u's alias table from its bias row in O(d).
func (e *KnightKing) rebuild(u graph.VertexID) {
	row := e.lists.BiasRow(u)
	if cap(e.wbuf) < len(row) {
		e.wbuf = make([]float64, len(row))
	}
	w := e.wbuf[:len(row)]
	for i, b := range row {
		w[i] = float64(b)
	}
	e.tables[u].Build(w)
}

func (e *KnightKing) ensure(u graph.VertexID) {
	e.lists.EnsureVertex(u)
	for int(u) >= len(e.tables) {
		e.tables = append(e.tables, sampling.AliasTable{})
	}
}

// NumVertices returns the vertex-ID space size.
func (e *KnightKing) NumVertices() int { return len(e.tables) }

// Degree returns u's out-degree.
func (e *KnightKing) Degree(u graph.VertexID) int {
	if int(u) >= len(e.tables) {
		return 0
	}
	return e.lists.Degree(u)
}

// HasEdge reports edge existence in O(1) expected.
func (e *KnightKing) HasEdge(u, dst graph.VertexID) bool {
	if int(u) >= len(e.tables) {
		return false
	}
	return e.lists.HasEdge(u, dst)
}

// Sample draws a biased neighbor in O(1) via the alias table.
func (e *KnightKing) Sample(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) {
	if int(u) >= len(e.tables) || e.tables[u].Empty() {
		return 0, false
	}
	return e.lists.Dst(u, int32(e.tables[u].Sample(r))), true
}

// InsertEdge appends the edge and rebuilds u's alias table (O(d)).
func (e *KnightKing) InsertEdge(u, dst graph.VertexID, bias uint64, fbias float64) error {
	_ = fbias // baselines evaluate integer biases (see package doc)
	e.ensure(u)
	e.ensure(dst)
	e.lists.Append(u, dst, bias, 0)
	e.rebuild(u)
	return nil
}

// DeleteEdge removes the edge and rebuilds u's alias table (O(d)).
func (e *KnightKing) DeleteEdge(u, dst graph.VertexID) error {
	if int(u) >= len(e.tables) {
		return errNotFound(u, dst)
	}
	i := e.lists.Find(u, dst)
	if i < 0 {
		return errNotFound(u, dst)
	}
	e.lists.SwapDelete(u, i)
	e.rebuild(u)
	return nil
}

// ApplyUpdates ingests a batch: adjacency first, then a full alias-table
// reconstruction. KnightKing only supports static snapshots, so the paper
// adapts it by "reload[ing] or reconstruct[ing] the corresponding structure
// after each round of updates" (§6.2) — the whole structure, which is the
// O(E)-per-round cost Bingo's O(K)-per-update factorization eliminates.
func (e *KnightKing) ApplyUpdates(ups []graph.Update) error {
	for _, up := range ups {
		e.ensure(up.Src)
		e.ensure(up.Dst)
	}
	applyAdjUpdates(e.lists, ups)
	for u := range e.tables {
		e.rebuild(graph.VertexID(u))
	}
	return nil
}

// Footprint returns adjacency plus alias-table bytes.
func (e *KnightKing) Footprint() int64 {
	total := e.lists.Footprint()
	for u := range e.tables {
		total += e.tables[u].Footprint()
	}
	return total
}
