package gen

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
)

func TestRMATBasicProperties(t *testing.T) {
	edges := RMAT(1000, 5000, DefaultRMAT, 1)
	if len(edges) != 5000 {
		t.Fatalf("edge count %d, want 5000", len(edges))
	}
	seen := map[uint64]bool{}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("self loop generated")
		}
		if e.Src >= 1000 || e.Dst >= 1000 {
			t.Fatal("vertex out of range")
		}
		key := uint64(e.Src)<<32 | uint64(e.Dst)
		if seen[key] {
			t.Fatal("duplicate edge generated")
		}
		seen[key] = true
	}
}

func TestRMATDeterminism(t *testing.T) {
	a := RMAT(500, 2000, DefaultRMAT, 7)
	b := RMAT(500, 2000, DefaultRMAT, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := RMAT(500, 2000, DefaultRMAT, 8)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff < len(a)/2 {
		t.Error("different seeds produced nearly identical graphs")
	}
}

func TestRMATSkew(t *testing.T) {
	// R-MAT with the default parameters must produce a skewed in-degree
	// distribution: the max degree should far exceed the average.
	edges := RMAT(2000, 20000, DefaultRMAT, 3)
	deg := make([]int, 2000)
	for _, e := range edges {
		deg[e.Dst]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(len(edges)) / 2000
	if float64(maxDeg) < 5*avg {
		t.Errorf("max degree %d not skewed vs avg %.1f", maxDeg, avg)
	}
}

func TestRMATSaturationClamp(t *testing.T) {
	// Requesting more edges than half the dense graph must clamp, not hang.
	edges := RMAT(16, 1000, DefaultRMAT, 1)
	if len(edges) > 16*15/2 {
		t.Errorf("generated %d edges, above clamp", len(edges))
	}
}

func TestAssignBiasesDegree(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 1, Dst: 0}}
	AssignBiases(edges, 3, BiasConfig{Kind: BiasDegree})
	// deg(1) = 2, deg(0) = 1.
	if edges[0].Bias != 2 || edges[1].Bias != 2 || edges[2].Bias != 1 {
		t.Errorf("degree biases wrong: %+v", edges)
	}
}

func TestAssignBiasesDistributions(t *testing.T) {
	edges := RMAT(200, 3000, DefaultRMAT, 5)
	for _, kind := range []BiasKind{BiasUniform, BiasGauss, BiasPowerLaw} {
		AssignBiases(edges, 200, BiasConfig{Kind: kind, Max: 256, Seed: 9})
		var min, max uint64 = 1 << 62, 0
		for _, e := range edges {
			if e.Bias < 1 {
				t.Fatalf("%v produced bias < 1", kind)
			}
			if e.Bias < min {
				min = e.Bias
			}
			if e.Bias > max {
				max = e.Bias
			}
		}
		if kind == BiasUniform && max > 256 {
			t.Errorf("uniform bias above Max: %d", max)
		}
		if kind == BiasPowerLaw && max > 256 {
			t.Errorf("power-law bias above Max: %d", max)
		}
		if max == min {
			t.Errorf("%v produced constant biases", kind)
		}
	}
}

func TestAssignBiasesFloat(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	AssignBiases(edges, 2, BiasConfig{Kind: BiasUniform, Float: true, Seed: 4})
	for _, e := range edges {
		if e.FBias < 0 || e.FBias >= 1 {
			t.Errorf("FBias %v out of [0,1)", e.FBias)
		}
	}
	AssignBiases(edges, 2, BiasConfig{Kind: BiasUniform, Seed: 4})
	for _, e := range edges {
		if e.FBias != 0 {
			t.Error("FBias not cleared in integer mode")
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	edges := make([]graph.Edge, 50000)
	AssignBiases(edges, 1, BiasConfig{Kind: BiasPowerLaw, Max: 1024, Alpha: 2.0, Seed: 2})
	small, large := 0, 0
	for _, e := range edges {
		if e.Bias <= 4 {
			small++
		}
		if e.Bias >= 512 {
			large++
		}
	}
	if small < 30*large {
		t.Errorf("power law not heavy at the head: small=%d large=%d", small, large)
	}
}

func TestDatasetRegistry(t *testing.T) {
	if len(Datasets) != 5 {
		t.Fatalf("want 5 datasets, got %d", len(Datasets))
	}
	d, err := DatasetByAbbr("LJ")
	if err != nil || d.Name != "LiveJournal" {
		t.Errorf("DatasetByAbbr(LJ) = %+v, %v", d, err)
	}
	if _, err := DatasetByAbbr("XX"); err == nil {
		t.Error("unknown abbr accepted")
	}
}

func TestDatasetGenerate(t *testing.T) {
	d := Datasets[0] // Amazon
	g, err := d.Generate(0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantV := int(float64(d.PaperV) * 0.002)
	if g.NumVertices() != wantV {
		t.Errorf("vertices %d, want %d", g.NumVertices(), wantV)
	}
	wantE := int64(float64(d.PaperE) * 0.002)
	if g.NumEdges() != wantE {
		t.Errorf("edges %d, want %d", g.NumEdges(), wantE)
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, b := range g.Biases(uint32(u)) {
			if b == 0 {
				t.Fatal("zero bias assigned")
			}
		}
	}
}

func TestDatasetGenerateBadScale(t *testing.T) {
	if _, err := Datasets[0].Generate(0, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Datasets[0].Generate(1.5, 1); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func buildTestWorkload(t *testing.T, kind UpdateKind) *Workload {
	t.Helper()
	edges := RMAT(300, 4000, DefaultRMAT, 11)
	AssignBiases(edges, 300, BiasConfig{Kind: BiasDegree})
	g, err := graph.FromEdges(300, edges)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWorkload(g, kind, 100, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorkloadInsertion(t *testing.T) {
	w := buildTestWorkload(t, UpdInsertion)
	if len(w.Updates) != 1000 {
		t.Fatalf("updates %d, want 1000", len(w.Updates))
	}
	if w.Initial.NumEdges() != 3000 {
		t.Errorf("initial edges %d, want 3000 (A = E - 10*BS)", w.Initial.NumEdges())
	}
	for _, u := range w.Updates {
		if u.Op != graph.OpInsert {
			t.Fatal("non-insert in insertion stream")
		}
		if u.Bias == 0 {
			t.Fatal("insert with zero bias")
		}
	}
	// Inserted edges must be distinct from initial (they come from set B).
	init := map[[2]uint32]bool{}
	for _, e := range w.Initial.Edges() {
		init[[2]uint32{e.Src, e.Dst}] = true
	}
	for _, u := range w.Updates {
		if init[[2]uint32{u.Src, u.Dst}] {
			t.Fatal("inserted edge already in initial snapshot")
		}
	}
}

func TestBuildWorkloadDeletion(t *testing.T) {
	w := buildTestWorkload(t, UpdDeletion)
	live := map[[2]uint32]int{}
	for _, e := range w.Initial.Edges() {
		live[[2]uint32{e.Src, e.Dst}]++
	}
	for i, u := range w.Updates {
		if u.Op != graph.OpDelete {
			t.Fatal("non-delete in deletion stream")
		}
		k := [2]uint32{u.Src, u.Dst}
		if live[k] == 0 {
			t.Fatalf("update %d deletes non-live edge %v", i, k)
		}
		live[k]--
	}
}

func TestBuildWorkloadMixed(t *testing.T) {
	w := buildTestWorkload(t, UpdMixed)
	ins, del := 0, 0
	live := map[[2]uint32]int{}
	for _, e := range w.Initial.Edges() {
		live[[2]uint32{e.Src, e.Dst}]++
	}
	for i, u := range w.Updates {
		k := [2]uint32{u.Src, u.Dst}
		switch u.Op {
		case graph.OpInsert:
			ins++
			live[k]++
		case graph.OpDelete:
			del++
			if live[k] == 0 {
				t.Fatalf("update %d deletes non-live edge %v", i, k)
			}
			live[k]--
		}
	}
	if ins == 0 || del == 0 {
		t.Errorf("mixed stream not mixed: %d inserts, %d deletes", ins, del)
	}
	if ins+del != 1000 {
		t.Errorf("total events %d, want 1000", ins+del)
	}
}

func TestBuildWorkloadBatches(t *testing.T) {
	w := buildTestWorkload(t, UpdMixed)
	batches := w.Batches()
	if len(batches) != 10 {
		t.Fatalf("batches %d, want 10", len(batches))
	}
	for _, b := range batches {
		if len(b) != 100 {
			t.Errorf("batch size %d, want 100", len(b))
		}
	}
}

func TestBuildWorkloadClampsBatchSize(t *testing.T) {
	edges := RMAT(50, 200, DefaultRMAT, 1)
	AssignBiases(edges, 50, BiasConfig{Kind: BiasDegree})
	g, _ := graph.FromEdges(50, edges)
	w, err := BuildWorkload(g, UpdMixed, 1000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.BatchSize*w.Rounds > 100 {
		t.Errorf("batch size not clamped: %d×%d on 200 edges", w.BatchSize, w.Rounds)
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1, Bias: 1}})
	if _, err := BuildWorkload(g, UpdMixed, 0, 10, 1); err == nil {
		t.Error("batchSize 0 accepted")
	}
	if _, err := BuildWorkload(g, UpdMixed, 10, 0, 1); err == nil {
		t.Error("rounds 0 accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if UpdInsertion.String() != "Insertion" || UpdDeletion.String() != "Deletion" || UpdMixed.String() != "Mixed" {
		t.Error("UpdateKind strings wrong")
	}
	if BiasDegree.String() != "degree" || BiasPowerLaw.String() != "power-law" {
		t.Error("BiasKind strings wrong")
	}
}
