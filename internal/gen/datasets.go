package gen

import (
	"fmt"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Dataset describes one of the paper's Table 2 graphs. Generated instances
// are R-MAT graphs with PaperV·scale vertices and PaperE·scale edges.
type Dataset struct {
	Name string
	Abbr string
	// PaperV and PaperE are the vertex/edge counts reported in Table 2.
	PaperV, PaperE int64
}

// Datasets lists the paper's five evaluation graphs in Table 2 order.
var Datasets = []Dataset{
	{Name: "Amazon", Abbr: "AM", PaperV: 403_400, PaperE: 3_400_000},
	{Name: "Google", Abbr: "GO", PaperV: 875_700, PaperE: 5_100_000},
	{Name: "Citation", Abbr: "CT", PaperV: 3_800_000, PaperE: 16_500_000},
	{Name: "LiveJournal", Abbr: "LJ", PaperV: 4_800_000, PaperE: 68_500_000},
	{Name: "Twitter", Abbr: "TW", PaperV: 41_700_000, PaperE: 1_468_400_000},
}

// DatasetByAbbr returns the dataset with the given abbreviation.
func DatasetByAbbr(abbr string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Abbr == abbr {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", abbr)
}

// Generate materializes the dataset at the given scale with the paper's
// default degree-derived biases. Scale 1.0 reproduces the paper's sizes;
// the repository default is 0.01 (see DESIGN.md).
func (d Dataset) Generate(scale float64, seed uint64) (*graph.CSR, error) {
	return d.GenerateBias(scale, seed, BiasConfig{Kind: BiasDegree, Seed: seed})
}

// GenerateBias is Generate with an explicit bias configuration.
func (d Dataset) GenerateBias(scale float64, seed uint64, bias BiasConfig) (*graph.CSR, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("gen: scale %v out of (0, 1]", scale)
	}
	v := int(float64(d.PaperV) * scale)
	if v < 16 {
		v = 16
	}
	e := int64(float64(d.PaperE) * scale)
	if e < 32 {
		e = 32
	}
	edges := RMAT(v, e, DefaultRMAT, seed^uint64(d.PaperV))
	AssignBiases(edges, v, bias)
	return graph.FromEdges(v, edges)
}

// UpdateKind selects one of the paper's three dynamic-update situations.
type UpdateKind uint8

const (
	// UpdInsertion generates insertions only.
	UpdInsertion UpdateKind = iota
	// UpdDeletion generates deletions only.
	UpdDeletion
	// UpdMixed generates an equal mix of insertions and deletions.
	UpdMixed
)

func (k UpdateKind) String() string {
	switch k {
	case UpdInsertion:
		return "Insertion"
	case UpdDeletion:
		return "Deletion"
	case UpdMixed:
		return "Mixed"
	default:
		return fmt.Sprintf("UpdateKind(%d)", uint8(k))
	}
}

// Workload is a dynamic-graph benchmark instance per §6.1: an initial
// snapshot (set A) plus a stream of updates drawn by the paper's three-step
// protocol.
type Workload struct {
	Initial *graph.CSR
	Updates []graph.Update
	// Rounds × BatchSize == len(Updates); the evaluation workflow applies
	// one batch then runs the application, for Rounds rounds.
	BatchSize int
	Rounds    int
}

// Batches returns the update stream split into Rounds batches.
func (w *Workload) Batches() [][]graph.Update {
	out := make([][]graph.Update, 0, w.Rounds)
	for i := 0; i < len(w.Updates); i += w.BatchSize {
		end := i + w.BatchSize
		if end > len(w.Updates) {
			end = len(w.Updates)
		}
		out = append(out, w.Updates[i:end])
	}
	return out
}

// BuildWorkload implements the paper's dynamic-update generation: (i) split
// the edges into set A (all but rounds·batchSize edges) and set B
// (rounds·batchSize edges) at random; (ii) draw rounds·batchSize events —
// an insertion takes an unused edge from B, a deletion removes a random
// live edge from A; (iii) the initial snapshot contains exactly set A.
// Insert-only and delete-only streams force the respective event kind.
//
// If the graph has too few edges to reserve set B (or to survive
// delete-only streams), batchSize is reduced proportionally.
func BuildWorkload(g *graph.CSR, kind UpdateKind, batchSize, rounds int, seed uint64) (*Workload, error) {
	if batchSize <= 0 || rounds <= 0 {
		return nil, fmt.Errorf("gen: batchSize %d / rounds %d must be positive", batchSize, rounds)
	}
	edges := g.Edges()
	total := batchSize * rounds
	// Keep at least half the edges in the initial snapshot, and make sure
	// delete-heavy streams cannot drain it.
	if total > len(edges)/2 {
		batchSize = len(edges) / 2 / rounds
		if batchSize == 0 {
			batchSize = 1
		}
		total = batchSize * rounds
	}

	r := xrand.New(seed ^ 0x5eed)
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	setB := edges[:total]
	setA := append([]graph.Edge(nil), edges[total:]...)

	initial, err := graph.FromEdges(g.NumVertices(), setA)
	if err != nil {
		return nil, err
	}

	ups := make([]graph.Update, 0, total)
	bNext := 0
	for len(ups) < total {
		var doInsert bool
		switch kind {
		case UpdInsertion:
			doInsert = true
		case UpdDeletion:
			doInsert = false
		case UpdMixed:
			doInsert = r.Coin(0.5)
		default:
			return nil, fmt.Errorf("gen: unknown update kind %v", kind)
		}
		if doInsert && bNext >= len(setB) {
			doInsert = false // B exhausted: fall back to deletion
		}
		if !doInsert && len(setA) == 0 {
			doInsert = true // A drained: fall back to insertion
			if bNext >= len(setB) {
				break // nothing left to do at all
			}
		}
		if doInsert {
			e := setB[bNext]
			bNext++
			ups = append(ups, graph.Update{Op: graph.OpInsert, Src: e.Src, Dst: e.Dst, Bias: e.Bias, FBias: e.FBias})
			setA = append(setA, e)
		} else {
			i := r.Intn(len(setA))
			e := setA[i]
			setA[i] = setA[len(setA)-1]
			setA = setA[:len(setA)-1]
			ups = append(ups, graph.Update{Op: graph.OpDelete, Src: e.Src, Dst: e.Dst})
		}
	}
	return &Workload{Initial: initial, Updates: ups, BatchSize: batchSize, Rounds: rounds}, nil
}
