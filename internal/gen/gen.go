// Package gen generates the workloads of the paper's evaluation: R-MAT
// graphs standing in for the five real-world datasets (Table 2), bias
// assignments (degree-derived power law by default, plus the uniform /
// Gaussian / power-law distributions of Figures 9 and 15(c)), and the
// dynamic update streams of §6.1.
//
// Real KONECT/SNAP downloads are unavailable offline, so each dataset is
// reproduced as an R-MAT graph with the paper's vertex and edge counts
// multiplied by a scale factor. R-MAT with the standard (0.57, 0.19, 0.19,
// 0.05) parameters yields the skewed degree distributions that drive every
// effect the paper measures (hub vertices with large K, dense low-order bit
// groups, sparse high-order groups). See DESIGN.md §1 for the substitution
// argument.
package gen

import (
	"fmt"
	"math"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// RMATParams are the recursive quadrant probabilities of the R-MAT model.
type RMATParams struct {
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities per recursion level to
	// avoid the artificial staircase degree distribution of pure R-MAT.
	Noise float64
}

// DefaultRMAT is the standard parameterization used across the graph
// benchmarking literature (Graph500, paper reference [5]).
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.1}

// RMAT generates numEdges distinct directed edges (no self loops) over
// [0, numVertices). Biases are left zero; assign them with a BiasAssigner.
// Generation is deterministic for a given seed.
func RMAT(numVertices int, numEdges int64, p RMATParams, seed uint64) []graph.Edge {
	if numVertices < 2 {
		panic("gen: RMAT needs at least 2 vertices")
	}
	maxPossible := int64(numVertices) * int64(numVertices-1)
	if numEdges > maxPossible/2 {
		// Dedup would stall near saturation; fall back to dense pick.
		numEdges = maxPossible / 2
	}
	r := xrand.New(seed)
	levels := 0
	for 1<<levels < numVertices {
		levels++
	}
	seen := make(map[uint64]struct{}, numEdges)
	edges := make([]graph.Edge, 0, numEdges)
	for int64(len(edges)) < numEdges {
		src, dst := rmatPick(r, levels, numVertices, p)
		if src == dst {
			continue
		}
		key := uint64(src)<<32 | uint64(dst)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{Src: uint32(src), Dst: uint32(dst)})
	}
	return edges
}

func rmatPick(r *xrand.RNG, levels, numVertices int, p RMATParams) (src, dst int) {
	for {
		src, dst = 0, 0
		for l := 0; l < levels; l++ {
			a, b, c := p.A, p.B, p.C
			if p.Noise > 0 {
				// Multiplicative noise, renormalized.
				na := a * (1 - p.Noise + 2*p.Noise*r.Float64())
				nb := b * (1 - p.Noise + 2*p.Noise*r.Float64())
				nc := c * (1 - p.Noise + 2*p.Noise*r.Float64())
				nd := p.D * (1 - p.Noise + 2*p.Noise*r.Float64())
				sum := na + nb + nc + nd
				a, b, c = na/sum, nb/sum, nc/sum
			}
			x := r.Float64()
			half := 1 << (levels - l - 1)
			switch {
			case x < a:
				// top-left: nothing to add
			case x < a+b:
				dst += half
			case x < a+b+c:
				src += half
			default:
				src += half
				dst += half
			}
		}
		if src < numVertices && dst < numVertices {
			return src, dst
		}
	}
}

// BiasKind selects a bias distribution.
type BiasKind uint8

const (
	// BiasDegree assigns each edge the out-degree of its destination
	// (minimum 1) — the paper's default ("based on the degree of
	// vertices, which naturally follow power law").
	BiasDegree BiasKind = iota
	// BiasUniform draws integer biases uniformly from [1, Max].
	BiasUniform
	// BiasGauss draws from a normal with Mean and Std, clamped to >= 1.
	BiasGauss
	// BiasPowerLaw draws from a discrete power law over [1, Max] with
	// exponent Alpha (via inverse-CDF of the continuous Pareto).
	BiasPowerLaw
)

func (k BiasKind) String() string {
	switch k {
	case BiasDegree:
		return "degree"
	case BiasUniform:
		return "uniform"
	case BiasGauss:
		return "gauss"
	case BiasPowerLaw:
		return "power-law"
	default:
		return fmt.Sprintf("BiasKind(%d)", uint8(k))
	}
}

// BiasConfig parameterizes bias assignment.
type BiasConfig struct {
	Kind  BiasKind
	Max   uint64  // BiasUniform / BiasPowerLaw upper bound (default 1024)
	Mean  float64 // BiasGauss mean (default 64)
	Std   float64 // BiasGauss std (default 16)
	Alpha float64 // BiasPowerLaw exponent (default 2.0)
	// Float, when set, additionally assigns a uniform fractional part in
	// [0, 1) to every edge (the Figure 14 float-bias workload).
	Float bool
	Seed  uint64
}

func (c BiasConfig) withDefaults() BiasConfig {
	if c.Max == 0 {
		c.Max = 1024
	}
	if c.Mean == 0 {
		c.Mean = 64
	}
	if c.Std == 0 {
		c.Std = 16
	}
	if c.Alpha == 0 {
		c.Alpha = 2.0
	}
	return c
}

// AssignBiases rewrites the Bias (and, in float mode, FBias) of every edge
// in place according to cfg.
func AssignBiases(edges []graph.Edge, numVertices int, cfg BiasConfig) {
	cfg = cfg.withDefaults()
	r := xrand.New(cfg.Seed ^ 0xb1a5)
	var deg []uint32
	if cfg.Kind == BiasDegree {
		deg = make([]uint32, numVertices)
		for _, e := range edges {
			deg[e.Dst]++
		}
	}
	for i := range edges {
		switch cfg.Kind {
		case BiasDegree:
			b := uint64(deg[edges[i].Dst])
			if b == 0 {
				b = 1
			}
			edges[i].Bias = b
		case BiasUniform:
			edges[i].Bias = 1 + r.Uint64n(cfg.Max)
		case BiasGauss:
			v := cfg.Mean + cfg.Std*r.NormFloat64()
			if v < 1 {
				v = 1
			}
			edges[i].Bias = uint64(v)
		case BiasPowerLaw:
			edges[i].Bias = powerLaw(r, cfg.Max, cfg.Alpha)
		default:
			panic("gen: unknown bias kind")
		}
		if cfg.Float {
			edges[i].FBias = r.Float64()
		} else {
			edges[i].FBias = 0
		}
	}
}

// powerLaw draws from a discrete power law on [1, max] with exponent alpha
// via inverse transform of the continuous Pareto, then floors.
func powerLaw(r *xrand.RNG, max uint64, alpha float64) uint64 {
	u := r.Float64()
	// x = ((max^(1-a) - 1) * u + 1)^(1/(1-a)) for a != 1.
	oneMinus := 1 - alpha
	x := math.Pow((math.Pow(float64(max), oneMinus)-1)*u+1, 1/oneMinus)
	b := uint64(x)
	if b < 1 {
		b = 1
	}
	if b > max {
		b = max
	}
	return b
}
