// Package embed implements SkipGram-with-negative-sampling (SGNS) training
// over random-walk corpora — the downstream consumer the paper's walks
// exist for (§2.2: walk paths "are treated as sentences and used in the
// SkipGram model to learn the latent representation"; §1: friend
// recommendation "uses random walks to generate the node embeddings").
//
// The trainer is deliberately the classic word2vec recipe transplanted to
// vertices: a unigram^(3/4) negative-sampling distribution (drawn, fittingly,
// through this repository's own alias sampler), a linearly decaying learning
// rate, and a shrinking context window. It is single-threaded and meant for
// validating the walk layer end to end and powering examples, not for
// competing with optimized embedding systems.
package embed

import (
	"fmt"
	"math"
	"sort"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/sampling"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Config parameterizes SGNS training.
type Config struct {
	// Dim is the embedding dimension (default 64).
	Dim int
	// Window is the maximum context distance (default 5); the effective
	// window per center is drawn uniformly from [1, Window], as in
	// word2vec.
	Window int
	// Negatives is the number of negative samples per positive pair
	// (default 5).
	Negatives int
	// Rate is the initial learning rate (default 0.025), decayed
	// linearly to Rate/100 across training.
	Rate float64
	// Epochs is the number of passes over the corpus (default 1).
	Epochs int
	// Seed drives initialization and sampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Rate <= 0 {
		c.Rate = 0.025
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	return c
}

// Model holds trained vertex embeddings.
type Model struct {
	dim  int
	vecs []float32 // input embeddings, numVertices × dim
	n    int
}

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.dim }

// NumVertices returns the vertex count the model covers.
func (m *Model) NumVertices() int { return m.n }

// Vector returns the embedding of v. The slice aliases model storage; do
// not mutate it.
func (m *Model) Vector(v graph.VertexID) []float32 {
	return m.vecs[int(v)*m.dim : (int(v)+1)*m.dim]
}

// Similarity returns the cosine similarity of two vertices' embeddings,
// zero when either embedding has zero norm.
func (m *Model) Similarity(a, b graph.VertexID) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	var dot, na, nb float64
	for i := range va {
		dot += float64(va[i]) * float64(vb[i])
		na += float64(va[i]) * float64(va[i])
		nb += float64(vb[i]) * float64(vb[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Neighbor is a similarity query result.
type Neighbor struct {
	Vertex graph.VertexID
	Score  float64
}

// MostSimilar returns the k vertices most cosine-similar to v (excluding v
// itself and vertices that never appeared in the corpus).
func (m *Model) MostSimilar(v graph.VertexID, k int, appeared func(graph.VertexID) bool) []Neighbor {
	out := make([]Neighbor, 0, k+1)
	for u := 0; u < m.n; u++ {
		uid := graph.VertexID(u)
		if uid == v || (appeared != nil && !appeared(uid)) {
			continue
		}
		out = append(out, Neighbor{uid, m.Similarity(v, uid)})
		if len(out) > 4*k && len(out) > 64 {
			sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
			out = out[:k]
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Vertex < out[j].Vertex
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// sigmoid table, word2vec-style: precomputed over [-maxExp, maxExp].
const (
	expTableSize = 1000
	maxExp       = 6.0
)

var expTable = func() [expTableSize]float32 {
	var t [expTableSize]float32
	for i := range t {
		x := (float64(i)/expTableSize*2 - 1) * maxExp
		e := math.Exp(x)
		t[i] = float32(e / (e + 1))
	}
	return t
}()

func sigmoid(x float32) float32 {
	switch {
	case x >= maxExp:
		return 1
	case x <= -maxExp:
		return 0
	default:
		return expTable[int((float64(x)+maxExp)/(2*maxExp)*expTableSize)%expTableSize]
	}
}

// Train fits SGNS embeddings to a corpus of walks over numVertices
// vertices. Walks shorter than two vertices are skipped. It returns an
// error on an empty corpus.
func Train(corpus [][]graph.VertexID, numVertices int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if numVertices <= 0 {
		return nil, fmt.Errorf("embed: no vertices")
	}

	// Vertex frequencies → unigram^0.75 negative-sampling distribution,
	// materialized as an alias table (O(1) negatives).
	freq := make([]float64, numVertices)
	var pairsApprox int64
	usable := 0
	for _, walkPath := range corpus {
		if len(walkPath) < 2 {
			continue
		}
		usable++
		for _, v := range walkPath {
			if int(v) >= numVertices {
				return nil, fmt.Errorf("embed: corpus vertex %d outside space %d", v, numVertices)
			}
			freq[v]++
		}
		pairsApprox += int64(len(walkPath)) * int64(cfg.Window)
	}
	if usable == 0 {
		return nil, fmt.Errorf("embed: corpus has no usable walks")
	}
	for v := range freq {
		if freq[v] > 0 {
			freq[v] = math.Pow(freq[v], 0.75)
		}
	}
	negTable := sampling.NewAlias(freq)

	r := xrand.New(cfg.Seed ^ 0xe4be)
	m := &Model{dim: cfg.Dim, n: numVertices, vecs: make([]float32, numVertices*cfg.Dim)}
	ctxVecs := make([]float32, numVertices*cfg.Dim)
	// Only vertices that appear in the corpus get (random) initial
	// vectors; absent vertices keep zero vectors so similarity queries
	// against them are well-defined zeros.
	for v := range freq {
		if freq[v] == 0 {
			continue
		}
		vec := m.vecs[v*cfg.Dim : (v+1)*cfg.Dim]
		for i := range vec {
			vec[i] = (float32(r.Float64()) - 0.5) / float32(cfg.Dim)
		}
	}

	totalSteps := pairsApprox * int64(cfg.Epochs)
	if totalSteps == 0 {
		totalSteps = 1
	}
	var step int64
	grad := make([]float32, cfg.Dim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, walkPath := range corpus {
			if len(walkPath) < 2 {
				continue
			}
			for ci, center := range walkPath {
				// Linear learning-rate decay with a floor at 1%.
				alpha := float32(cfg.Rate * (1 - float64(step)/float64(totalSteps+1)))
				if alpha < float32(cfg.Rate)/100 {
					alpha = float32(cfg.Rate) / 100
				}
				win := 1 + r.Intn(cfg.Window)
				lo, hi := ci-win, ci+win
				if lo < 0 {
					lo = 0
				}
				if hi >= len(walkPath) {
					hi = len(walkPath) - 1
				}
				cv := m.Vector(center)
				for pos := lo; pos <= hi; pos++ {
					if pos == ci {
						continue
					}
					step++
					target := walkPath[pos]
					for i := range grad {
						grad[i] = 0
					}
					// One positive + Negatives negatives.
					for s := 0; s <= cfg.Negatives; s++ {
						var label float32
						var out graph.VertexID
						if s == 0 {
							out, label = target, 1
						} else {
							out = graph.VertexID(negTable.Sample(r))
							if out == target {
								continue
							}
							label = 0
						}
						ov := ctxVecs[int(out)*cfg.Dim : (int(out)+1)*cfg.Dim]
						var dot float32
						for i := range cv {
							dot += cv[i] * ov[i]
						}
						g := (label - sigmoid(dot)) * alpha
						for i := range cv {
							grad[i] += g * ov[i]
							ov[i] += g * cv[i]
						}
					}
					for i := range cv {
						cv[i] += grad[i]
					}
				}
			}
		}
	}
	return m, nil
}
