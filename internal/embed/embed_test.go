package embed

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Dim != 64 || c.Window != 5 || c.Negatives != 5 || c.Epochs != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 0, Config{}); err == nil {
		t.Error("no vertices accepted")
	}
	if _, err := Train([][]graph.VertexID{{1}}, 4, Config{}); err == nil {
		t.Error("corpus of singleton walks accepted")
	}
	if _, err := Train([][]graph.VertexID{{0, 9}}, 4, Config{}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(float64(s)-0.5) > 0.01 {
		t.Errorf("sigmoid(0) = %v", s)
	}
	if sigmoid(10) != 1 || sigmoid(-10) != 0 {
		t.Error("saturation wrong")
	}
	if sigmoid(2) <= sigmoid(1) || sigmoid(-1) <= sigmoid(-2) {
		t.Error("not monotone")
	}
}

func TestModelAccessors(t *testing.T) {
	corpus := [][]graph.VertexID{{0, 1, 0, 1}, {1, 0, 1, 0}}
	m, err := Train(corpus, 3, Config{Dim: 8, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 8 || m.NumVertices() != 3 {
		t.Error("accessors wrong")
	}
	if len(m.Vector(1)) != 8 {
		t.Error("vector length wrong")
	}
	if s := m.Similarity(0, 0); math.Abs(s-1) > 1e-5 {
		t.Errorf("self-similarity %v, want 1", s)
	}
	// Vertex 2 never appears: zero vector → zero similarity.
	if s := m.Similarity(0, 2); s != 0 {
		t.Errorf("similarity with untrained vertex %v, want 0", s)
	}
}

// TestCommunitiesSeparate is the end-to-end validation: DeepWalk corpora
// from a two-community graph must yield embeddings where intra-community
// similarity exceeds inter-community similarity — the paper's §1 embedding
// use case, through the full Bingo → walk → SGNS pipeline.
func TestCommunitiesSeparate(t *testing.T) {
	const half = 20
	s, err := core.New(2*half, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	addClique := func(lo int) {
		for i := 0; i < 6*half; i++ {
			u := graph.VertexID(lo + r.Intn(half))
			v := graph.VertexID(lo + r.Intn(half))
			if u != v {
				if err := s.Insert(u, v, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addClique(0)
	addClique(half)
	// A couple of weak bridges so walks can cross occasionally.
	if err := s.Insert(0, half, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(half, 0, 1); err != nil {
		t.Fatal(err)
	}

	var corpus [][]graph.VertexID
	starts := make([]graph.VertexID, 0, 2*half*10)
	for rep := 0; rep < 10; rep++ {
		for v := 0; v < 2*half; v++ {
			starts = append(starts, graph.VertexID(v))
		}
	}
	walk.DeepWalkPaths(s, walk.Config{Length: 30, Starts: starts, Seed: 9}, func(p []graph.VertexID) {
		corpus = append(corpus, append([]graph.VertexID(nil), p...))
	})

	m, err := Train(corpus, 2*half, Config{Dim: 32, Epochs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for a := 0; a < 2*half; a += 3 {
		for b := a + 1; b < 2*half; b += 3 {
			sim := m.Similarity(graph.VertexID(a), graph.VertexID(b))
			if (a < half) == (b < half) {
				intra += sim
				nIntra++
			} else {
				inter += sim
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter+0.1 {
		t.Errorf("communities not separated: intra %.3f vs inter %.3f", intra, inter)
	}
}

func TestMostSimilar(t *testing.T) {
	// Two tight pairs: (0,1) co-occur, (2,3) co-occur.
	var corpus [][]graph.VertexID
	for i := 0; i < 200; i++ {
		corpus = append(corpus, []graph.VertexID{0, 1, 0, 1, 0, 1})
		corpus = append(corpus, []graph.VertexID{2, 3, 2, 3, 2, 3})
	}
	m, err := Train(corpus, 4, Config{Dim: 16, Epochs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	top := m.MostSimilar(0, 1, nil)
	if len(top) != 1 || top[0].Vertex != 1 {
		t.Errorf("MostSimilar(0) = %+v, want vertex 1", top)
	}
	top = m.MostSimilar(2, 1, nil)
	if len(top) != 1 || top[0].Vertex != 3 {
		t.Errorf("MostSimilar(2) = %+v, want vertex 3", top)
	}
	// The appeared filter excludes candidates.
	top = m.MostSimilar(0, 2, func(v graph.VertexID) bool { return v != 1 })
	for _, n := range top {
		if n.Vertex == 1 {
			t.Error("filtered vertex returned")
		}
	}
}

func TestTrainDeterminism(t *testing.T) {
	corpus := [][]graph.VertexID{{0, 1, 2, 1}, {2, 1, 0, 1}}
	a, err := Train(corpus, 3, Config{Dim: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(corpus, 3, Config{Dim: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.vecs {
		if a.vecs[i] != b.vecs[i] {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}
