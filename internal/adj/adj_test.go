package adj

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestAppendAndAccess(t *testing.T) {
	l := New(3, false, 0)
	if l.NumVertices() != 3 || l.NumEdges() != 0 {
		t.Fatal("bad initial state")
	}
	i := l.Append(0, 1, 5, 0)
	j := l.Append(0, 2, 4, 0)
	if i != 0 || j != 1 {
		t.Errorf("slots = %d,%d want 0,1", i, j)
	}
	if l.Degree(0) != 2 || l.NumEdges() != 2 {
		t.Error("degree/edge count wrong")
	}
	if l.Dst(0, 0) != 1 || l.Bias(0, 0) != 5 || l.Dst(0, 1) != 2 || l.Bias(0, 1) != 4 {
		t.Error("stored values wrong")
	}
	if l.Rem(0, 0) != 0 {
		t.Error("rem should be 0 outside float mode")
	}
}

func TestFloatMode(t *testing.T) {
	l := New(2, true, 0)
	l.Append(0, 1, 5, 0.54)
	if l.Rem(0, 0) != 0.54 {
		t.Errorf("rem = %v, want 0.54", l.Rem(0, 0))
	}
	if !l.FloatMode() {
		t.Error("FloatMode false")
	}
	if l.RemRow(0)[0] != 0.54 {
		t.Error("RemRow wrong")
	}
	l.SetBias(0, 0, 7, 0.26)
	if l.Bias(0, 0) != 7 || l.Rem(0, 0) != 0.26 {
		t.Error("SetBias did not update both parts")
	}
}

func TestFindWithAndWithoutIndex(t *testing.T) {
	l := New(1, false, 4) // low threshold to force promotion
	for d := uint32(1); d <= 3; d++ {
		l.Append(0, d, uint64(d), 0)
	}
	if l.idx[0] != nil {
		t.Fatal("index built too early")
	}
	if l.Find(0, 2) != 1 || l.Find(0, 9) != -1 {
		t.Error("linear Find wrong")
	}
	for d := uint32(4); d <= 10; d++ {
		l.Append(0, d, uint64(d), 0)
	}
	if l.idx[0] == nil {
		t.Fatal("index not promoted past threshold")
	}
	for d := uint32(1); d <= 10; d++ {
		got := l.Find(0, d)
		if got < 0 || l.Dst(0, got) != d {
			t.Errorf("indexed Find(%d) = %d", d, got)
		}
	}
	if l.Find(0, 99) != -1 {
		t.Error("found absent edge")
	}
	if !l.HasEdge(0, 5) || l.HasEdge(0, 99) {
		t.Error("HasEdge wrong")
	}
}

func TestSwapDelete(t *testing.T) {
	l := New(1, false, 2)
	for d := uint32(10); d < 15; d++ {
		l.Append(0, d, uint64(d), 0)
	}
	// Delete middle slot 1 (dst 11): last (14) moves in.
	moved := l.SwapDelete(0, 1)
	if moved != 4 {
		t.Errorf("moved = %d, want 4", moved)
	}
	if l.Dst(0, 1) != 14 || l.Degree(0) != 4 {
		t.Error("swap-delete result wrong")
	}
	if l.Find(0, 11) != -1 {
		t.Error("deleted edge still findable")
	}
	if got := l.Find(0, 14); got != 1 {
		t.Errorf("moved edge findable at %d, want 1", got)
	}
	// Delete the (new) last slot: no move.
	moved = l.SwapDelete(0, int32(l.Degree(0)-1))
	if moved != -1 {
		t.Errorf("tail delete moved = %d, want -1", moved)
	}
}

func TestSwapDeletePanicsOutOfRange(t *testing.T) {
	l := New(1, false, 0)
	l.Append(0, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range SwapDelete did not panic")
		}
	}()
	l.SwapDelete(0, 5)
}

func TestEnsureVertex(t *testing.T) {
	l := New(1, true, 0)
	l.EnsureVertex(5)
	if l.NumVertices() != 6 {
		t.Errorf("NumVertices = %d, want 6", l.NumVertices())
	}
	l.Append(5, 0, 3, 0.5)
	if l.Dst(5, 0) != 0 {
		t.Error("append to grown vertex failed")
	}
}

func TestDuplicateEdges(t *testing.T) {
	l := New(1, false, 2)
	l.Append(0, 7, 1, 0)
	l.Append(0, 7, 2, 0)
	l.Append(0, 7, 3, 0)
	if l.Degree(0) != 3 {
		t.Fatal("duplicates not stored")
	}
	// Delete them one at a time via Find; all must eventually disappear.
	for k := 0; k < 3; k++ {
		i := l.Find(0, 7)
		if i < 0 {
			t.Fatalf("dup %d not found", k)
		}
		l.SwapDelete(0, i)
	}
	if l.Find(0, 7) != -1 || l.Degree(0) != 0 {
		t.Error("duplicate deletion incomplete")
	}
}

func TestGrowPreservesData(t *testing.T) {
	l := New(1, true, 0)
	l.Append(0, 1, 5, 0.25)
	l.Grow(0, 1000)
	if l.Dst(0, 0) != 1 || l.Bias(0, 0) != 5 || l.Rem(0, 0) != 0.25 {
		t.Error("Grow lost data")
	}
	if cap(l.dst[0]) < 1001 {
		t.Error("Grow did not reserve")
	}
}

func TestFootprintGrows(t *testing.T) {
	l := New(10, false, 0)
	base := l.Footprint()
	for i := 0; i < 100; i++ {
		l.Append(0, uint32(i), 1, 0)
	}
	if l.Footprint() <= base {
		t.Error("footprint did not grow with edges")
	}
}

// TestRandomizedAgainstModel drives Lists with random ops and compares
// against a simple map-based multiset model.
func TestRandomizedAgainstModel(t *testing.T) {
	r := xrand.New(2024)
	const V = 8
	l := New(V, false, 4)
	type edge struct {
		dst  uint32
		bias uint64
	}
	model := make([]map[edge]int, V) // multiset per vertex
	for i := range model {
		model[i] = map[edge]int{}
	}
	for op := 0; op < 30000; op++ {
		u := uint32(r.Intn(V))
		if l.Degree(u) == 0 || r.Float64() < 0.55 {
			d := uint32(r.Intn(V))
			b := uint64(1 + r.Intn(100))
			l.Append(u, d, b, 0)
			model[u][edge{d, b}]++
		} else {
			i := int32(r.Intn(l.Degree(u)))
			e := edge{l.Dst(u, i), l.Bias(u, i)}
			l.SwapDelete(u, i)
			model[u][e]--
			if model[u][e] == 0 {
				delete(model[u], e)
			}
		}
	}
	var total int64
	for u := 0; u < V; u++ {
		got := map[edge]int{}
		for i := 0; i < l.Degree(uint32(u)); i++ {
			e := edge{l.Dst(uint32(u), int32(i)), l.Bias(uint32(u), int32(i))}
			got[e]++
			total++
		}
		for e, n := range model[u] {
			if got[e] != n {
				t.Fatalf("vertex %d edge %+v: count %d, model %d", u, e, got[e], n)
			}
		}
		if len(got) != len(model[u]) {
			t.Fatalf("vertex %d has extra edges", u)
		}
		// Every model edge must be findable; every findable edge must
		// exist in the model.
		for e := range model[u] {
			if l.Find(uint32(u), e.dst) < 0 {
				t.Fatalf("vertex %d: cannot find dst %d", u, e.dst)
			}
		}
	}
	if total != l.NumEdges() {
		t.Errorf("NumEdges = %d, counted %d", l.NumEdges(), total)
	}
}

func BenchmarkAppendDelete(b *testing.B) {
	l := New(1, false, 0)
	for i := 0; i < 1000; i++ {
		l.Append(0, uint32(i), 1, 0)
	}
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(0, uint32(i), 1, 0)
		l.SwapDelete(0, int32(r.Intn(l.Degree(0))))
	}
}
