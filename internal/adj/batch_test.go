package adj

import "testing"

// Tests for the 2-phase-delete compaction primitives (Unindex/Move/
// Truncate) that back core's batched deletion.

func buildRow(t *testing.T, n int) *Lists {
	t.Helper()
	l := New(1, true, 4)
	for i := 0; i < n; i++ {
		l.Append(0, uint32(100+i), uint64(i+1), float32(i)/10)
	}
	return l
}

func TestUnindexMoveTruncate(t *testing.T) {
	l := buildRow(t, 10)
	// Delete slots {0, 8, 9}: unindex them, move survivor slot 7 → 0,
	// truncate to 7.
	for _, s := range []int32{0, 8, 9} {
		l.Unindex(0, s)
	}
	l.Move(0, 7, 0)
	l.Truncate(0, 7)
	if l.Degree(0) != 7 || l.NumEdges() != 7 {
		t.Fatalf("degree %d edges %d", l.Degree(0), l.NumEdges())
	}
	if l.Dst(0, 0) != 107 || l.Bias(0, 0) != 8 || l.Rem(0, 0) != 0.7 {
		t.Error("moved slot content wrong")
	}
	// Deleted destinations are gone; moved one is findable at its new slot.
	for _, dst := range []uint32{100, 108, 109} {
		if l.Find(0, dst) != -1 {
			t.Errorf("deleted dst %d still findable", dst)
		}
	}
	if got := l.Find(0, 107); got != 0 {
		t.Errorf("moved dst found at %d, want 0", got)
	}
	for i := int32(1); i < 7; i++ {
		if l.Find(0, l.Dst(0, i)) != i {
			t.Errorf("slot %d not findable after compaction", i)
		}
	}
}

func TestMoveSameSlotNoop(t *testing.T) {
	l := buildRow(t, 3)
	l.Move(0, 1, 1)
	if l.Dst(0, 1) != 101 {
		t.Error("self-move corrupted slot")
	}
}

func TestTruncateWholeRow(t *testing.T) {
	l := buildRow(t, 5)
	for i := int32(0); i < 5; i++ {
		l.Unindex(0, i)
	}
	l.Truncate(0, 0)
	if l.Degree(0) != 0 || l.NumEdges() != 0 {
		t.Error("row not emptied")
	}
	// Row must be reusable.
	l.Append(0, 7, 1, 0)
	if l.Find(0, 7) < 0 {
		t.Error("row unusable after full truncation")
	}
}

func TestTruncatePanicsAboveDegree(t *testing.T) {
	l := buildRow(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("Truncate above degree did not panic")
		}
	}()
	l.Truncate(0, 5)
}

func TestRowAccessors(t *testing.T) {
	l := buildRow(t, 4)
	if len(l.DstRow(0)) != 4 || l.DstRow(0)[2] != 102 {
		t.Error("DstRow wrong")
	}
	if len(l.BiasRow(0)) != 4 || l.BiasRow(0)[3] != 4 {
		t.Error("BiasRow wrong")
	}
	if len(l.RemRow(0)) != 4 {
		t.Error("RemRow wrong")
	}
	li := New(1, false, 0)
	if li.RemRow(0) != nil {
		t.Error("RemRow should be nil outside float mode")
	}
}

func TestGrowGeometric(t *testing.T) {
	// Repeated small Grow calls must not trigger per-call copies: capacity
	// should at least double when it grows.
	l := New(1, false, 0)
	for i := 0; i < 100; i++ {
		l.Append(0, uint32(i), 1, 0)
	}
	c0 := cap(l.dst[0])
	l.Grow(0, c0+1) // force one growth
	c1 := cap(l.dst[0])
	if c1 < 2*c0 {
		t.Errorf("growth not geometric: %d -> %d", c0, c1)
	}
	// A no-op grow keeps capacity.
	l.Grow(0, 1)
	if cap(l.dst[0]) != c1 {
		t.Error("no-op Grow reallocated")
	}
}
