// Package adj implements the dynamic adjacency store shared by every engine
// in this repository. It is the Go analogue of the Hornet dynamic-array GPU
// graph container the paper builds on (supplement §9.1): per-vertex growable
// arrays with O(1) append, O(1) swap-delete, and O(1) expected edge lookup.
//
// The store deliberately keeps destination, bias, and fractional-bias
// columns in separate slices (structure-of-arrays), matching both the GPU
// layout of the original system and Go's cache behaviour for the
// scan-dominated baselines (FlowWalker's reservoir pass touches only the
// bias column).
//
// Vertices whose degree exceeds a threshold get an open-addressing index
// (internal/ihash) mapping destination → slot, so edge deletion and
// node2vec's O(1) edge-existence test stay constant-time on hubs while
// low-degree vertices avoid the index's fixed overhead (a linear scan of a
// handful of destinations is both faster and smaller).
package adj

import (
	"fmt"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/ihash"
)

// DefaultIndexThreshold is the degree at which a vertex's row is promoted
// to hash-indexed lookup.
const DefaultIndexThreshold = 16

// Lists is a dynamic adjacency store. Use New to create one.
type Lists struct {
	dst  [][]uint32
	bias [][]uint64
	rem  [][]float32 // nil unless float mode
	idx  []*ihash.Map

	floatMode bool
	threshold int
	edges     int64
}

// New creates a store with numVertices vertices and no edges. If floatMode
// is set, each edge additionally carries a float32 fractional bias
// (the paper's §4.3 decimal part). indexThreshold <= 0 selects
// DefaultIndexThreshold.
func New(numVertices int, floatMode bool, indexThreshold int) *Lists {
	if indexThreshold <= 0 {
		indexThreshold = DefaultIndexThreshold
	}
	l := &Lists{
		dst:       make([][]uint32, numVertices),
		bias:      make([][]uint64, numVertices),
		idx:       make([]*ihash.Map, numVertices),
		floatMode: floatMode,
		threshold: indexThreshold,
	}
	if floatMode {
		l.rem = make([][]float32, numVertices)
	}
	return l
}

// NumVertices returns the current vertex-ID space size.
func (l *Lists) NumVertices() int { return len(l.dst) }

// NumEdges returns the live edge count. It is maintained atomically so
// batch workers operating on disjoint rows can update it concurrently.
func (l *Lists) NumEdges() int64 { return atomic.LoadInt64(&l.edges) }

// FloatMode reports whether fractional biases are stored.
func (l *Lists) FloatMode() bool { return l.floatMode }

// EnsureVertex grows the vertex-ID space so that v is addressable.
func (l *Lists) EnsureVertex(v uint32) {
	for int(v) >= len(l.dst) {
		l.dst = append(l.dst, nil)
		l.bias = append(l.bias, nil)
		l.idx = append(l.idx, nil)
		if l.floatMode {
			l.rem = append(l.rem, nil)
		}
	}
}

// Degree returns the out-degree of u.
func (l *Lists) Degree(u uint32) int { return len(l.dst[u]) }

// Dst returns the destination stored at slot i of u's row.
func (l *Lists) Dst(u uint32, i int32) uint32 { return l.dst[u][i] }

// Bias returns the integer bias at slot i of u's row.
func (l *Lists) Bias(u uint32, i int32) uint64 { return l.bias[u][i] }

// Rem returns the fractional bias at slot i of u's row (0 outside float
// mode).
func (l *Lists) Rem(u uint32, i int32) float32 {
	if !l.floatMode {
		return 0
	}
	return l.rem[u][i]
}

// DstRow exposes u's destination column. Callers must not mutate or retain
// it across updates; it is provided for scan-heavy baselines.
func (l *Lists) DstRow(u uint32) []uint32 { return l.dst[u] }

// BiasRow exposes u's bias column under the same contract as DstRow.
func (l *Lists) BiasRow(u uint32) []uint64 { return l.bias[u] }

// RemRow exposes u's fractional-bias column (nil outside float mode).
func (l *Lists) RemRow(u uint32) []float32 {
	if !l.floatMode {
		return nil
	}
	return l.rem[u]
}

// Append adds an edge u→dst and returns its slot index. Duplicate edges are
// allowed (multigraph semantics, required by the paper's batched updates).
func (l *Lists) Append(u, dst uint32, bias uint64, rem float32) int32 {
	i := int32(len(l.dst[u]))
	l.dst[u] = append(l.dst[u], dst)
	l.bias[u] = append(l.bias[u], bias)
	if l.floatMode {
		l.rem[u] = append(l.rem[u], rem)
	}
	atomic.AddInt64(&l.edges, 1)
	if m := l.idx[u]; m != nil {
		m.Add(dst, i)
	} else if len(l.dst[u]) > l.threshold {
		l.buildIndex(u)
	}
	return i
}

func (l *Lists) buildIndex(u uint32) {
	m := &ihash.Map{}
	for i, d := range l.dst[u] {
		m.Add(d, int32(i))
	}
	l.idx[u] = m
}

// Find returns the slot of some edge u→dst, or -1 if none exists. With
// duplicate edges the choice is unspecified.
func (l *Lists) Find(u, dst uint32) int32 {
	if m := l.idx[u]; m != nil {
		return m.FindAny(dst)
	}
	for i, d := range l.dst[u] {
		if d == dst {
			return int32(i)
		}
	}
	return -1
}

// HasEdge reports whether at least one edge u→dst exists.
func (l *Lists) HasEdge(u, dst uint32) bool { return l.Find(u, dst) >= 0 }

// SwapDelete removes slot i of u's row by moving the last slot into it.
// It returns the slot that was moved into position i (the previous last
// index), or -1 if i was itself the last slot. Callers that maintain
// per-slot side structures (Bingo's groups) use the return value to
// re-point them.
func (l *Lists) SwapDelete(u uint32, i int32) int32 {
	row := l.dst[u]
	last := int32(len(row) - 1)
	if i < 0 || i > last {
		panic(fmt.Sprintf("adj: SwapDelete slot %d out of range (degree %d)", i, len(row)))
	}
	if m := l.idx[u]; m != nil {
		m.Remove(row[i], i)
		if i != last {
			m.Replace(row[last], last, i)
		}
	}
	if i != last {
		l.dst[u][i] = row[last]
		l.bias[u][i] = l.bias[u][last]
		if l.floatMode {
			l.rem[u][i] = l.rem[u][last]
		}
	}
	l.dst[u] = row[:last]
	l.bias[u] = l.bias[u][:last]
	if l.floatMode {
		l.rem[u] = l.rem[u][:last]
	}
	atomic.AddInt64(&l.edges, -1)
	if i == last {
		return -1
	}
	return last
}

// The three methods below are the batch-compaction primitives used by the
// 2-phase parallel delete-and-swap (paper §5.2 / Figure 10(b)): callers
// first Unindex every condemned slot, then Move tail survivors into front
// holes, then Truncate the row.

// Unindex removes slot i's lookup entry without touching the columns.
// Slot i is condemned: it must subsequently be either overwritten by Move
// or dropped by Truncate.
func (l *Lists) Unindex(u uint32, i int32) {
	if m := l.idx[u]; m != nil {
		m.Remove(l.dst[u][i], i)
	}
}

// Move copies slot from into slot to and re-points from's lookup entry.
// Slot to must already be unindexed.
func (l *Lists) Move(u uint32, from, to int32) {
	if from == to {
		return
	}
	if m := l.idx[u]; m != nil {
		m.Replace(l.dst[u][from], from, to)
	}
	l.dst[u][to] = l.dst[u][from]
	l.bias[u][to] = l.bias[u][from]
	if l.floatMode {
		l.rem[u][to] = l.rem[u][from]
	}
}

// Truncate drops every slot >= n of u's row. All dropped slots must have
// been unindexed or moved beforehand.
func (l *Lists) Truncate(u uint32, n int) {
	cur := len(l.dst[u])
	if n > cur {
		panic(fmt.Sprintf("adj: Truncate to %d above degree %d", n, cur))
	}
	atomic.AddInt64(&l.edges, -int64(cur-n))
	l.dst[u] = l.dst[u][:n]
	l.bias[u] = l.bias[u][:n]
	if l.floatMode {
		l.rem[u] = l.rem[u][:n]
	}
}

// SetBias rewrites the bias at slot i. The slot's destination is unchanged.
func (l *Lists) SetBias(u uint32, i int32, bias uint64, rem float32) {
	l.bias[u][i] = bias
	if l.floatMode {
		l.rem[u][i] = rem
	}
}

// Grow reserves capacity for extra edges on u's row, used by batch
// ingestion to avoid repeated reallocation. Reservation is geometric
// (at least double the current capacity) so that successive small batches
// against a hub vertex stay amortized O(1) per edge instead of copying the
// whole row every round.
func (l *Lists) Grow(u uint32, extra int) {
	need := len(l.dst[u]) + extra
	if cap(l.dst[u]) >= need {
		return
	}
	if min := 2 * cap(l.dst[u]); need < min {
		need = min
	}
	nd := make([]uint32, len(l.dst[u]), need)
	copy(nd, l.dst[u])
	l.dst[u] = nd
	nb := make([]uint64, len(l.bias[u]), need)
	copy(nb, l.bias[u])
	l.bias[u] = nb
	if l.floatMode {
		nr := make([]float32, len(l.rem[u]), need)
		copy(nr, l.rem[u])
		l.rem[u] = nr
	}
}

// Footprint returns the bytes held by the store, including hash indices.
func (l *Lists) Footprint() int64 {
	var b int64
	for u := range l.dst {
		b += int64(cap(l.dst[u]))*4 + int64(cap(l.bias[u]))*8
		if l.floatMode {
			b += int64(cap(l.rem[u])) * 4
		}
		if l.idx[u] != nil {
			b += l.idx[u].Footprint()
		}
	}
	// Slice headers.
	b += int64(len(l.dst)) * 24 * 2
	if l.floatMode {
		b += int64(len(l.dst)) * 24
	}
	b += int64(len(l.idx)) * 8
	return b
}
