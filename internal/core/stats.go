package core

import (
	"github.com/bingo-rw/bingo/internal/graph"
)

// GroupStats aggregates group-structure statistics across all vertices,
// feeding Figures 9 (group element ratios) and 11 (adaptive-representation
// memory breakdown).
type GroupStats struct {
	// Groups counts groups by representation kind.
	Groups [NumKinds]int64
	// Bytes attributes group storage (member lists, inverted indices,
	// hash indices) to the representation kind holding it.
	Bytes [NumKinds]int64
	// PosElements[j] is the number of sub-biases stored at digit position
	// j across the graph (Figure 9's per-group element counts).
	PosElements []int64
	// PosVertices[j] is the number of vertices with at least one neighbor
	// in digit position j; Figure 9's "group element ratio" for position j
	// is PosElements[j] / Σ_v degree(v) over those vertices. We report
	// the simpler graph-wide ratio PosElements[j]/TotalEdges·avgFanout.
	PosVertices []int64
	// Elements is the total sub-bias count Σ_i popc(w_i) (t·d in §4.4).
	Elements int64
	// DecimalMembers counts decimal-group members (float mode).
	DecimalMembers int64
	// AliasBytes is the total inter-group alias table storage.
	AliasBytes int64
}

// CollectGroupStats scans every vertex's groups.
func (s *Sampler) CollectGroupStats() GroupStats {
	var gs GroupStats
	for u := range s.vx {
		vx := &s.vx[u]
		for i := range vx.groups {
			g := &vx.groups[i]
			gs.Groups[g.kind]++
			gs.Bytes[g.kind] += g.footprint() + groupStructSize
			j, _ := decodeGID(g.gid, s.cfg.RadixBits)
			for len(gs.PosElements) <= j {
				gs.PosElements = append(gs.PosElements, 0)
				gs.PosVertices = append(gs.PosVertices, 0)
			}
			gs.PosElements[j] += int64(g.count)
			gs.PosVertices[j]++
			gs.Elements += int64(g.count)
		}
		gs.DecimalMembers += int64(s.vx[u].dec.count())
		gs.AliasBytes += vx.inter.Footprint() + int64(cap(vx.slots))*2 + int64(cap(vx.wts))*8
	}
	return gs
}

// GroupElementRatios returns, for each digit position j, the average over
// vertices of |G_j|/d — Figure 9's y-axis. Vertices with zero degree are
// skipped.
func (s *Sampler) GroupElementRatios() []float64 {
	var sums []float64
	var vertices int64
	for u := range s.vx {
		d := s.adjs.Degree(graph.VertexID(u))
		if d == 0 {
			continue
		}
		vertices++
		vx := &s.vx[u]
		for i := range vx.groups {
			g := &vx.groups[i]
			j, _ := decodeGID(g.gid, s.cfg.RadixBits)
			for len(sums) <= j {
				sums = append(sums, 0)
			}
			sums[j] += float64(g.count) / float64(d)
		}
	}
	if vertices == 0 {
		return nil
	}
	out := make([]float64, len(sums))
	for j := range sums {
		out[j] = sums[j] / float64(vertices)
	}
	return out
}

// KindSavings compares, for the groups currently held in one
// representation, their actual storage (GA) against what the same groups
// would cost under the all-regular baseline (BS): struct header + 4·count
// member list + 4·degree inverted index. This is the per-panel quantity of
// Figure 11(b)–(d).
type KindSavings struct {
	BS, GA int64
}

// AdaptiveSavings returns per-kind BS-vs-GA storage for the current state.
func (s *Sampler) AdaptiveSavings() [NumKinds]KindSavings {
	var out [NumKinds]KindSavings
	for u := range s.vx {
		d := int64(s.adjs.Degree(graph.VertexID(u)))
		vx := &s.vx[u]
		for i := range vx.groups {
			g := &vx.groups[i]
			bs := groupStructSize + 4*int64(g.count) + 4*d
			out[g.kind].BS += bs
			out[g.kind].GA += groupStructSize + g.footprint()
		}
	}
	return out
}

// FootprintBreakdown splits Footprint into the quantities Figure 11
// reports: adjacency storage, per-kind group storage, alias tables, and
// decimal groups.
type FootprintBreakdown struct {
	Adjacency int64
	Kind      [NumKinds]int64
	Alias     int64
	Decimal   int64
	VertexHdr int64
	Total     int64
}

// CollectFootprint computes the Figure 11 memory breakdown.
func (s *Sampler) CollectFootprint() FootprintBreakdown {
	var fb FootprintBreakdown
	fb.Adjacency = s.adjs.Footprint()
	gs := s.CollectGroupStats()
	fb.Kind = gs.Bytes
	fb.Alias = gs.AliasBytes
	for u := range s.vx {
		fb.Decimal += s.vx[u].dec.footprint()
	}
	fb.VertexHdr = int64(len(s.vx)) * vertexStructSize
	fb.Total = fb.Adjacency + fb.Alias + fb.Decimal + fb.VertexHdr
	for _, b := range fb.Kind {
		fb.Total += b
	}
	return fb
}
