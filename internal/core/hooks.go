package core

import (
	"fmt"

	"github.com/bingo-rw/bingo/internal/graph"
)

// This file exports the narrow hooks internal/concurrent needs to layer
// striped-lock concurrency control on top of the sampler without widening
// the rest of the core API. The contract is the one ApplyBatch already
// relies on internally: all mutable state of an update on vertex u is
// confined to u's row (adjacency columns, groups, inter-group alias), and
// the only cross-vertex state — the live-edge counter, the conversion
// counters, and the phase timers — is maintained atomically. An external
// orchestrator that (a) serializes all operations touching the same source
// vertex and (b) excludes every operation while the vertex-ID space grows
// therefore gets linearizable per-vertex semantics.

// Scratch is reusable per-worker staging state for ApplyVertexUpdates; it
// corresponds to one batch worker's scratch in ApplyBatch. A Scratch must
// not be used by two goroutines at once.
type Scratch struct {
	sc *batchScratch
}

// NewScratch allocates an empty Scratch.
func NewScratch() *Scratch { return &Scratch{sc: newBatchScratch()} }

// EnsureVertexSpace grows the vertex-ID space to hold at least n vertices.
// It mutates the sampler's top-level slices and therefore must not run
// concurrently with any other operation (the concurrent wrapper performs it
// under a full stop-the-world acquisition).
func (s *Sampler) EnsureVertexSpace(n int) {
	if n > 0 {
		s.ensureVertex(graph.VertexID(n - 1))
	}
}

// ValidateUpdates performs ApplyBatch's pre-mutation validation pass —
// zero-bias and float-weight checks — without mutating anything, and
// returns the largest vertex ID the batch references. It reads only
// immutable sampler state (config, λ) and is safe to call without locks.
func (s *Sampler) ValidateUpdates(ups []graph.Update) (maxV graph.VertexID, err error) {
	for i := range ups {
		up := &ups[i]
		if up.Src > maxV {
			maxV = up.Src
		}
		if up.Dst > maxV {
			maxV = up.Dst
		}
		if up.Op == graph.OpInsert {
			if s.cfg.FloatBias {
				w := float64(up.Bias) + up.FBias
				if w <= 0 {
					return maxV, fmt.Errorf("%w: batch insert (%d,%d)", ErrZeroBias, up.Src, up.Dst)
				}
				if err := checkFloatWeight(w, s.lambda); err != nil {
					return maxV, fmt.Errorf("batch insert (%d,%d): %w", up.Src, up.Dst, err)
				}
				// λ-underflow leaves no integer digits and a remainder that
				// rounds to zero in float32 — the edge would carry no mass.
				if ib, rem := splitFloatBias(w, s.lambda); ib == 0 && rem == 0 {
					return maxV, fmt.Errorf("%w: batch insert (%d,%d) weight %v underflows λ=%v", ErrZeroBias, up.Src, up.Dst, w, s.lambda)
				}
			} else if up.Bias == 0 {
				return maxV, fmt.Errorf("%w: batch insert (%d,%d)", ErrZeroBias, up.Src, up.Dst)
			}
		}
	}
	return maxV, nil
}

// AppendRowUpdates appends insert updates reconstructing u's current row
// to buf, in adjacency order: feeding them to an engine that holds no
// edges of u rebuilds exactly the row (same multiset, same order, same
// weights — float-mode weights are exported in unscaled user units like
// Snapshot's, so λ scaling round-trips). It reads the same structures
// Sample reads; the caller must exclude concurrent mutation of u's row
// (the concurrent wrapper calls it quiescent). This is the per-vertex
// half of block extraction: shard-ownership migration ships a vertex
// range as the updates this hook emits.
func (s *Sampler) AppendRowUpdates(u graph.VertexID, buf []graph.Update) []graph.Update {
	if int(u) >= len(s.vx) {
		return buf
	}
	d := s.adjs.Degree(u)
	for i := int32(0); i < int32(d); i++ {
		up := graph.Update{Op: graph.OpInsert, Src: u, Dst: s.adjs.Dst(u, i)}
		if s.cfg.FloatBias {
			w := (float64(s.adjs.Bias(u, i)) + float64(s.adjs.Rem(u, i))) / s.lambda
			up.Bias = uint64(w)
			up.FBias = w - float64(up.Bias)
		} else {
			up.Bias = s.adjs.Bias(u, i)
		}
		buf = append(buf, up)
	}
	return buf
}

// ApplyVertexUpdates applies one vertex's slice of a batch — every op must
// have Src == u — through the §5.2 per-vertex workflow (insert → delete →
// rebuild, one inter-group alias rebuild). The ops must already have passed
// ValidateUpdates and the vertex space must already cover u and every
// destination. The caller is responsible for serializing all access to u's
// row; distinct vertices may be processed concurrently.
func (s *Sampler) ApplyVertexUpdates(u graph.VertexID, ops []graph.Update, sc *Scratch) BatchResult {
	return s.applyVertexBatch(u, ops, sc.sc)
}

// FlushScratch folds the conversion statistics a Scratch accumulated into
// the sampler's Table 4 counters and resets them. Safe to call from
// multiple workers concurrently (the merge is atomic).
func (s *Sampler) FlushScratch(sc *Scratch) {
	s.cc.merge(&sc.sc.cc)
	sc.sc.cc = convCounters{}
}
