// Package core implements the paper's primary contribution: radix-based
// bias factorization for constant-time sampling with constant-time(-ish)
// updates on dynamically changing graphs.
//
// Every edge bias w is decomposed into power-of-two sub-biases by its binary
// representation (Equation 3); sub-biases at the same bit position k form
// group p_k with total weight W(p_k) = count_k · 2^k (Equation 4). Sampling
// is hierarchical (§4.1): an alias table across groups (O(1)), then uniform
// sampling inside the chosen group (O(1)), which is unbiased because every
// member of group p_k contributes exactly 2^k. Updates touch only the O(K)
// groups a bias participates in (K = log2(max bias)), not the O(d) neighbor
// set the alias method would rebuild.
//
// The package also implements:
//
//   - the adaptive group representation of §5.1 (dense / one-element /
//     sparse / regular groups, Equation 9 with α = 40, β = 10), which trades
//     the naive O(d·K) memory for rejection sampling inside dense groups;
//   - floating-point biases per §4.3 (amortization factor λ, a decimal
//     group holding fractional remainders);
//   - batched updates per §5.2 (per-source reordering, insert → delete →
//     rebuild per vertex, the 2-phase parallel delete-and-swap, and group
//     type conversions deferred to the rebuild step);
//   - arbitrary radix bases 2^b per supplement §9.2, implemented by
//     flattening the inter-subgroup hierarchy: each (digit position j,
//     digit value v) pair is its own unbiased group with weight
//     count · v · 2^(b·j); for b = 1 this degenerates to the paper's
//     base-2 layout.
//
// The Sampler is the system of record for the graph: it owns the dynamic
// adjacency store (internal/adj, the Hornet analogue), exactly as Bingo
// stores graph and metadata together on the GPU.
package core

import (
	"errors"
	"fmt"
	"runtime"
)

// Default adaptive-representation thresholds (paper Equation 9: "we set
// α = 40 and β = 10 in our design for the optimal performance").
const (
	DefaultAlphaPct = 40.0
	DefaultBetaPct  = 10.0
)

// demoteHysteresis scales a threshold for leaving a representation, so a
// group oscillating around a boundary does not convert on every update.
// Streaming conversions are therefore amortized O(1); batch rebuilds use the
// exact Equation 9 classification, as the paper prescribes.
const demoteHysteresis = 0.75

// Config parameterizes a Sampler. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// RadixBits is b in radix base B = 2^b. The paper evaluates b = 1
	// (binary factorization); larger bases reduce the group count at the
	// cost of intra-group subgrouping (supplement §9.2). Valid range 1..8.
	RadixBits int

	// Adaptive enables the §5.1 group-adaptive representation. Disabling
	// it forces every group to the regular representation — the "BS"
	// baseline of Figures 11 and 13.
	Adaptive bool

	// AlphaPct and BetaPct are the Equation 9 thresholds (percent).
	AlphaPct, BetaPct float64

	// FloatBias enables §4.3 floating-point biases: Insert and batch
	// updates interpret FBias, scale by Lambda, and maintain the decimal
	// group.
	FloatBias bool

	// Lambda is the §4.3 amortization factor. Zero selects an automatic
	// power of two targeting W_D/(W_I+W_D) < 1/d on the initial snapshot.
	Lambda float64

	// IndexThreshold is the adjacency-row degree at which hash-indexed
	// edge lookup is enabled; zero selects adj.DefaultIndexThreshold.
	IndexThreshold int

	// Workers bounds batch-update parallelism; zero selects GOMAXPROCS.
	Workers int

	// Instrument enables per-phase timing of batched updates
	// (insert/delete vs rebuild), the breakdown Figure 13 reports.
	// It adds two clock reads per touched vertex per batch.
	Instrument bool
}

// DefaultConfig returns the paper's evaluated configuration: binary radix,
// adaptive groups, α = 40, β = 10, integer biases.
func DefaultConfig() Config {
	return Config{
		RadixBits: 1,
		Adaptive:  true,
		AlphaPct:  DefaultAlphaPct,
		BetaPct:   DefaultBetaPct,
	}
}

// normalized fills zero fields with defaults and validates ranges.
func (c Config) normalized() (Config, error) {
	if c.RadixBits == 0 {
		c.RadixBits = 1
	}
	if c.RadixBits < 1 || c.RadixBits > 8 {
		return c, fmt.Errorf("core: RadixBits %d out of [1,8]", c.RadixBits)
	}
	if c.AlphaPct == 0 {
		c.AlphaPct = DefaultAlphaPct
	}
	if c.BetaPct == 0 {
		c.BetaPct = DefaultBetaPct
	}
	if c.AlphaPct <= 0 || c.AlphaPct > 100 || c.BetaPct <= 0 || c.BetaPct >= c.AlphaPct {
		return c, fmt.Errorf("core: thresholds α=%v β=%v invalid", c.AlphaPct, c.BetaPct)
	}
	if c.Lambda < 0 {
		return c, fmt.Errorf("core: negative Lambda %v", c.Lambda)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// Errors returned by Sampler operations.
var (
	// ErrEdgeNotFound reports a deletion of an edge that is not live.
	ErrEdgeNotFound = errors.New("core: edge not found")
	// ErrZeroBias reports an insertion whose bias carries no mass.
	ErrZeroBias = errors.New("core: edge bias is zero")
	// ErrVertexRange reports a vertex outside the sampler's ID space.
	ErrVertexRange = errors.New("core: vertex out of range")
)

// GroupKind identifies a group representation (paper Equation 9).
type GroupKind uint8

const (
	// KindEmpty marks an unused group slot.
	KindEmpty GroupKind = iota
	// KindDense keeps only a member count; intra-group sampling rejects
	// over the raw neighbor list.
	KindDense
	// KindOne stores the single member inline.
	KindOne
	// KindSparse keeps a member list plus a compact hash inverted index.
	KindSparse
	// KindRegular keeps a member list plus a full d-sized inverted index.
	KindRegular
)

// NumKinds is the number of GroupKind values, for conversion matrices.
const NumKinds = 5

func (k GroupKind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindDense:
		return "dense"
	case KindOne:
		return "one-element"
	case KindSparse:
		return "sparse"
	case KindRegular:
		return "regular"
	default:
		return fmt.Sprintf("GroupKind(%d)", uint8(k))
	}
}

// classify applies Equation 9 exactly: dense if |G|/d > α%, else
// one-element if |G| == 1, else sparse if |G|/d < β%, else regular.
func classify(count int32, d int, alphaPct, betaPct float64) GroupKind {
	if count == 0 {
		return KindEmpty
	}
	ratio := float64(count) * 100 / float64(d)
	switch {
	case ratio > alphaPct:
		return KindDense
	case count == 1:
		return KindOne
	case ratio < betaPct:
		return KindSparse
	default:
		return KindRegular
	}
}

// wantConvert decides whether a group currently using representation cur
// should convert under streaming updates. Promotions happen at the exact
// Equation 9 boundary; demotions out of dense (and promotions out of
// sparse) apply hysteresis so boundary oscillation cannot cause O(d)
// conversions per O(1) update.
func wantConvert(cur GroupKind, count int32, d int, alphaPct, betaPct float64) (GroupKind, bool) {
	target := classify(count, d, alphaPct, betaPct)
	if target == cur {
		return cur, false
	}
	ratio := 0.0
	if d > 0 {
		ratio = float64(count) * 100 / float64(d)
	}
	switch {
	case cur == KindDense && target != KindEmpty:
		// Stay dense until the ratio falls well below α.
		if ratio > alphaPct*demoteHysteresis {
			return cur, false
		}
	case cur == KindSparse && target == KindRegular:
		// Stay sparse until the ratio rises well above β.
		if ratio < betaPct/demoteHysteresis {
			return cur, false
		}
	case cur == KindRegular && target == KindSparse:
		// Stay regular until the ratio falls well below β.
		if ratio > betaPct*demoteHysteresis {
			return cur, false
		}
	}
	return target, target != cur
}
