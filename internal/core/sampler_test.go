package core

import (
	"errors"
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// runningExample builds the paper's running example graph (Figure 1,
// snapshot 1): we exercise vertex 2, which has edges (2,1,5), (2,4,4),
// (2,5,3).
func runningExample(t *testing.T, cfg Config) *Sampler {
	t.Helper()
	edges := []graph.Edge{
		{Src: 2, Dst: 1, Bias: 5},
		{Src: 2, Dst: 4, Bias: 4},
		{Src: 2, Dst: 5, Bias: 3},
		{Src: 0, Dst: 1, Bias: 5},
		{Src: 1, Dst: 2, Bias: 4},
		{Src: 4, Dst: 3, Bias: 3},
		{Src: 5, Dst: 4, Bias: 5},
		{Src: 3, Dst: 6, Bias: 6},
		{Src: 6, Dst: 7, Bias: 2},
	}
	g, err := graph.FromEdges(8, edges)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFromCSR(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkVertexDistribution samples from u and chi-square-tests against the
// expected per-destination distribution.
func checkVertexDistribution(t *testing.T, s *Sampler, u graph.VertexID, want map[graph.VertexID]float64, draws int) {
	t.Helper()
	r := xrand.New(4242)
	counts := map[graph.VertexID]int64{}
	for i := 0; i < draws; i++ {
		v, ok := s.Sample(u, r)
		if !ok {
			t.Fatalf("Sample(%d) returned no neighbor", u)
		}
		counts[v]++
	}
	var obs []int64
	var probs []float64
	for dst, p := range want {
		obs = append(obs, counts[dst])
		probs = append(probs, p)
		delete(counts, dst)
	}
	if len(counts) != 0 {
		t.Fatalf("sampled unexpected destinations: %v", counts)
	}
	_, p, err := stats.ChiSquareGOF(obs, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-5 {
		t.Errorf("vertex %d distribution rejected: p = %g", u, p)
	}
}

func TestRunningExampleGroups(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Vertex 2: biases 5 (101b), 4 (100b), 3 (011b). Groups per the
	// paper's Figure 4: 2^0 = {slots 0,2}, 2^1 = {slot 2}, 2^2 =
	// {slots 0,1}, with weights 2, 2, 8.
	vx := &s.vx[2]
	if len(vx.groups) != 3 {
		t.Fatalf("vertex 2 has %d groups, want 3", len(vx.groups))
	}
	wantCounts := map[int16]int32{0: 2, 1: 1, 2: 2}
	wantWeights := map[int16]float64{0: 2, 1: 2, 2: 8}
	for i := range vx.groups {
		g := &vx.groups[i]
		if g.count != wantCounts[g.gid] {
			t.Errorf("group %d count %d, want %d", g.gid, g.count, wantCounts[g.gid])
		}
		if w := g.weight(1); w != wantWeights[g.gid] {
			t.Errorf("group %d weight %v, want %v", g.gid, w, wantWeights[g.gid])
		}
	}
	if total := s.TotalBias(2); total != 12 {
		t.Errorf("total bias %v, want 12", total)
	}
}

func TestRunningExampleDistribution(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	// Equation 2: P(1)=5/12, P(4)=4/12, P(5)=3/12.
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 5.0 / 12, 4: 4.0 / 12, 5: 3.0 / 12,
	}, 120000)
}

func TestInsertionRunningExample(t *testing.T) {
	// Paper Figure 5: insert edge (2,3,3); bias 3 = 2^0 + 2^1.
	s := runningExample(t, DefaultConfig())
	if err := s.Insert(2, 3, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Degree(2) != 4 {
		t.Fatalf("degree %d, want 4", s.Degree(2))
	}
	if total := s.TotalBias(2); total != 15 {
		t.Errorf("total bias %v, want 15", total)
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 5.0 / 15, 4: 4.0 / 15, 5: 3.0 / 15, 3: 3.0 / 15,
	}, 120000)
}

func TestDeletionRunningExample(t *testing.T) {
	// Paper Figure 6: delete edge (2,1,5), which contributes to groups
	// 2^0 and 2^2.
	s := runningExample(t, DefaultConfig())
	if err := s.Delete(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Degree(2) != 2 {
		t.Fatalf("degree %d, want 2", s.Degree(2))
	}
	if s.HasEdge(2, 1) {
		t.Error("deleted edge still present")
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		4: 4.0 / 7, 5: 3.0 / 7,
	}, 120000)
}

func TestEventSequenceFromFigure1(t *testing.T) {
	// Figure 1's two events: insert (2,3,3) then delete (2,1,5).
	s := runningExample(t, DefaultConfig())
	if err := s.Insert(2, 3, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		4: 4.0 / 10, 5: 3.0 / 10, 3: 3.0 / 10,
	}, 120000)
}

func TestSampleEmptyVertex(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	r := xrand.New(1)
	if _, ok := s.Sample(7, r); ok {
		t.Error("vertex with no out-edges sampled something")
	}
	if _, ok := s.Sample(900, r); ok {
		t.Error("out-of-range vertex sampled something")
	}
}

func TestDeleteErrors(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	err := s.Delete(2, 7)
	if !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("deleting absent edge: err = %v", err)
	}
	err = s.Delete(100, 0)
	if !errors.Is(err, ErrVertexRange) {
		t.Errorf("deleting from absent vertex: err = %v", err)
	}
}

func TestInsertErrors(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if err := s.Insert(0, 1, 0); !errors.Is(err, ErrZeroBias) {
		t.Errorf("zero bias accepted: %v", err)
	}
	s2, _ := New(4, DefaultConfig())
	if err := s2.InsertFloat(0, 1, 0.5); err == nil {
		t.Error("InsertFloat accepted on integer sampler")
	}
}

func TestInsertGrowsVertexSpace(t *testing.T) {
	s, err := New(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(5, 9, 7); err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() < 10 {
		t.Errorf("vertex space %d, want >= 10", s.NumVertices())
	}
	if !s.HasEdge(5, 9) {
		t.Error("edge to grown vertex missing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEdges(t *testing.T) {
	s, _ := New(3, DefaultConfig())
	if err := s.Insert(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 2 {
		t.Fatalf("degree %d, want 2 (multigraph)", s.Degree(0))
	}
	// Combined mass on dst 1 is 6; it is the only destination.
	checkVertexDistribution(t, s, 0, map[graph.VertexID]float64{1: 1}, 1000)
	if err := s.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 1 {
		t.Error("duplicate deletion removed both")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRadixBases(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4} {
		cfg := DefaultConfig()
		cfg.RadixBits = bits
		s := runningExample(t, cfg)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
			1: 5.0 / 12, 4: 4.0 / 12, 5: 3.0 / 12,
		}, 60000)
		// Update under the wider base too.
		if err := s.Insert(2, 3, 3); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(2, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("bits=%d after updates: %v", bits, err)
		}
		checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
			4: 0.4, 5: 0.3, 3: 0.3,
		}, 60000)
	}
}

func TestBaselineModeAllRegular(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Adaptive = false
	s := runningExample(t, cfg)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	gs := s.CollectGroupStats()
	for k := KindDense; k <= KindSparse; k++ {
		if k != KindRegular && gs.Groups[k] != 0 {
			t.Errorf("baseline mode has %d %v groups", gs.Groups[k], k)
		}
	}
	if gs.Groups[KindRegular] == 0 {
		t.Error("baseline mode has no regular groups")
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 5.0 / 12, 4: 4.0 / 12, 5: 3.0 / 12,
	}, 60000)
}

func TestAdaptiveUsesAllKinds(t *testing.T) {
	// A vertex with many neighbors and a skewed bias mix should produce
	// dense low bits, a one-element top bit, and sparse/regular middles.
	s, _ := New(600, DefaultConfig())
	r := xrand.New(5)
	for i := 1; i < 500; i++ {
		bias := uint64(1 + r.Intn(64))
		if err := s.Insert(0, graph.VertexID(i), bias); err != nil {
			t.Fatal(err)
		}
	}
	// One giant-bias edge for a one-element group.
	if err := s.Insert(0, 599, 1<<30); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	gs := s.CollectGroupStats()
	if gs.Groups[KindDense] == 0 {
		t.Error("no dense groups on dense low bits")
	}
	if gs.Groups[KindOne] == 0 {
		t.Error("no one-element group for the 2^30 bias")
	}
	if gs.Groups[KindSparse]+gs.Groups[KindRegular] == 0 {
		t.Error("no sparse/regular groups at all")
	}
}

func TestDistributionMatchesVertexProbabilities(t *testing.T) {
	s, _ := New(64, DefaultConfig())
	r := xrand.New(17)
	for i := 1; i < 40; i++ {
		if err := s.Insert(0, graph.VertexID(i), uint64(1+r.Intn(1000))); err != nil {
			t.Fatal(err)
		}
	}
	probs := s.VertexProbabilities(0)
	sum := 0.0
	for slot, p := range probs {
		bias := float64(s.adjs.Bias(0, slot))
		want := bias / s.TotalBias(0)
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("slot %d encoded prob %v, want %v", slot, p, want)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestPowerOfTwoBiases(t *testing.T) {
	// All-power-of-two biases exercise single-membership edges.
	s, _ := New(10, DefaultConfig())
	for i, b := range []uint64{1, 2, 4, 8, 16} {
		if err := s.Insert(0, graph.VertexID(i+1), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkVertexDistribution(t, s, 0, map[graph.VertexID]float64{
		1: 1.0 / 31, 2: 2.0 / 31, 3: 4.0 / 31, 4: 8.0 / 31, 5: 16.0 / 31,
	}, 120000)
}

func TestUniformBiasSingleGroup(t *testing.T) {
	// Identical biases collapse into popcount(bias) groups, all "dense".
	s, _ := New(20, DefaultConfig())
	for i := 1; i <= 10; i++ {
		if err := s.Insert(0, graph.VertexID(i), 6); err != nil { // 110b
			t.Fatal(err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	vx := &s.vx[0]
	if len(vx.groups) != 2 {
		t.Fatalf("groups %d, want 2", len(vx.groups))
	}
	for i := range vx.groups {
		if vx.groups[i].kind != KindDense {
			t.Errorf("group %d kind %v, want dense", vx.groups[i].gid, vx.groups[i].kind)
		}
	}
	want := map[graph.VertexID]float64{}
	for i := 1; i <= 10; i++ {
		want[graph.VertexID(i)] = 0.1
	}
	checkVertexDistribution(t, s, 0, want, 100000)
}

func TestSampleSlot(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	r := xrand.New(3)
	for i := 0; i < 100; i++ {
		slot, ok := s.SampleSlot(2, r)
		if !ok || slot < 0 || int(slot) >= s.Degree(2) {
			t.Fatalf("SampleSlot = %d, %v", slot, ok)
		}
	}
	if _, ok := s.SampleSlot(7, r); ok {
		t.Error("SampleSlot on empty vertex succeeded")
	}
}

func TestIncrementalMatchesFreshBuild(t *testing.T) {
	// Build a sampler incrementally, build another from the final CSR;
	// their encoded distributions must agree exactly.
	r := xrand.New(23)
	type edge struct {
		src, dst graph.VertexID
		bias     uint64
	}
	var live []edge
	inc, _ := New(32, DefaultConfig())
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || r.Float64() < 0.6 {
			e := edge{graph.VertexID(r.Intn(32)), graph.VertexID(r.Intn(32)), uint64(1 + r.Intn(500))}
			if err := inc.Insert(e.src, e.dst, e.bias); err != nil {
				t.Fatal(err)
			}
			live = append(live, e)
		} else {
			i := r.Intn(len(live))
			e := live[i]
			if err := inc.Delete(e.src, e.dst); err != nil {
				t.Fatal(err)
			}
			// Our delete removes an arbitrary instance of (src,dst);
			// remove a matching one from the model (bias may differ if
			// duplicates exist, so match on endpoints only and fix up
			// by re-syncing biases below via per-dst mass).
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if err := inc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Compare per-vertex per-destination mass, not per-edge (duplicate
	// deletion picks arbitrary instances).
	for u := graph.VertexID(0); u < 32; u++ {
		gotMass := map[graph.VertexID]float64{}
		for slot, p := range inc.VertexProbabilities(u) {
			gotMass[inc.Neighbor(u, slot)] += p * inc.TotalBias(u)
		}
		wantTotal := 0.0
		for i := 0; i < inc.Degree(u); i++ {
			wantTotal += float64(inc.adjs.Bias(u, int32(i)))
		}
		if wantTotal == 0 {
			continue
		}
		if math.Abs(wantTotal-inc.TotalBias(u)) > 1e-6*wantTotal {
			t.Errorf("vertex %d total %v, adjacency says %v", u, inc.TotalBias(u), wantTotal)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{RadixBits: 9},
		{RadixBits: -1},
		{RadixBits: 1, AlphaPct: 150},
		{RadixBits: 1, AlphaPct: 10, BetaPct: 20},
		{RadixBits: 1, Lambda: -2},
	}
	for i, cfg := range bad {
		if _, err := New(2, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(2, DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestZeroBiasCSRRejected(t *testing.T) {
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1, Bias: 0}})
	if _, err := NewFromCSR(g, DefaultConfig()); !errors.Is(err, ErrZeroBias) {
		t.Errorf("zero-bias CSR: err = %v", err)
	}
}

func TestFootprintTracksStructures(t *testing.T) {
	s, _ := New(100, DefaultConfig())
	base := s.Footprint()
	r := xrand.New(2)
	for i := 0; i < 500; i++ {
		if err := s.Insert(graph.VertexID(r.Intn(100)), graph.VertexID(r.Intn(100)), uint64(1+r.Intn(1000))); err != nil {
			t.Fatal(err)
		}
	}
	grown := s.Footprint()
	if grown <= base {
		t.Error("footprint did not grow")
	}
	fb := s.CollectFootprint()
	if fb.Total <= 0 || fb.Adjacency <= 0 {
		t.Error("breakdown not populated")
	}
}

func TestConversionStatsRecorded(t *testing.T) {
	s, _ := New(300, DefaultConfig())
	r := xrand.New(7)
	for i := 0; i < 2000; i++ {
		u := graph.VertexID(r.Intn(4))
		if s.Degree(u) > 0 && r.Float64() < 0.4 {
			dst := s.Neighbor(u, int32(r.Intn(s.Degree(u))))
			if err := s.Delete(u, dst); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.Insert(u, graph.VertexID(r.Intn(300)), uint64(1+r.Intn(256))); err != nil {
				t.Fatal(err)
			}
		}
	}
	conv, touches := s.ConversionStats()
	var anyConv, anyTouch int64
	for i := range conv {
		for j := range conv[i] {
			anyConv += conv[i][j]
		}
		anyTouch += touches[i]
	}
	if anyTouch == 0 {
		t.Error("no group touches recorded")
	}
	if anyConv == 0 {
		t.Error("no conversions recorded under heavy churn")
	}
	s.ResetConversionStats()
	conv, touches = s.ConversionStats()
	for i := range conv {
		if touches[i] != 0 {
			t.Error("reset did not clear touches")
		}
	}
}
