package core

import (
	"fmt"
	"math"

	"github.com/bingo-rw/bingo/internal/xrand"
)

// decGroup is the §4.3 decimal group of one vertex: the neighbor indices
// whose scaled bias λ·w has a non-zero fractional remainder, each weighted
// by that remainder (stored in the adjacency rem column). Unlike the radix
// groups it is internally *biased*, so intra-group sampling uses rejection
// bounded by 1.0 (remainders live in [0, 1)), with an exact linear CDF
// fallback after too many rejections. The paper keeps this group's selection
// probability below 1/d by choosing λ, so the rejection cost is amortized
// away; the fallback bounds the worst case.
type decGroup struct {
	list []int32
	inv  []int32 // inv[neighborIdx] = pos in list, -1 otherwise
	sum  float64 // total remainder mass (recomputed at batch rebuilds)
}

// rejectionCap bounds rejection rounds before the exact fallback scan.
const rejectionCap = 32

func (dg *decGroup) count() int32 { return int32(len(dg.list)) }

// growInv extends the inverted index to degree d.
func (dg *decGroup) growInv(d int) {
	for len(dg.inv) < d {
		dg.inv = append(dg.inv, -1)
	}
}

func (dg *decGroup) shrinkInv(d int) {
	if len(dg.inv) > d {
		dg.inv = dg.inv[:d]
	}
}

// add registers member idx with remainder rem (no-op for rem == 0).
func (dg *decGroup) add(idx int32, rem float32) {
	if rem == 0 {
		return
	}
	dg.inv[idx] = int32(len(dg.list))
	dg.list = append(dg.list, idx)
	dg.sum += float64(rem)
}

// remove drops member idx (no-op if idx has no remainder mass).
func (dg *decGroup) remove(idx int32, rem float32) {
	pos := dg.inv[idx]
	if pos < 0 {
		if rem != 0 {
			panic(fmt.Sprintf("core: decimal member %d with rem %v missing", idx, rem))
		}
		return
	}
	last := int32(len(dg.list) - 1)
	tail := dg.list[last]
	if pos != last {
		dg.list[pos] = tail
		dg.inv[tail] = pos
	}
	dg.inv[idx] = -1
	dg.list = dg.list[:last]
	dg.sum -= float64(rem)
	if dg.sum < 0 {
		dg.sum = 0
	}
}

// rename re-points member old to new after an adjacency swap.
func (dg *decGroup) rename(old, new int32) {
	pos := dg.inv[old]
	if pos < 0 {
		return // no remainder mass: not a member
	}
	dg.list[pos] = new
	dg.inv[new] = pos
	dg.inv[old] = -1
}

// sample draws a member with probability rem_i / sum: rejection bounded by
// 1.0 for up to rejectionCap rounds, then an exact CDF scan.
func (dg *decGroup) sample(r *xrand.RNG, remRow []float32) int32 {
	n := len(dg.list)
	if n == 0 {
		panic("core: sample from empty decimal group")
	}
	for round := 0; round < rejectionCap; round++ {
		idx := dg.list[r.Intn(n)]
		if float64(remRow[idx]) > r.Float64() {
			return idx
		}
	}
	// Exact fallback: linear inverse-CDF over the member remainders.
	x := r.Float64() * dg.sum
	acc := 0.0
	for _, idx := range dg.list {
		acc += float64(remRow[idx])
		if x < acc {
			return idx
		}
	}
	return dg.list[n-1] // numerical tail
}

// recompute rebuilds sum from the rem column, killing incremental
// floating-point drift. Called during batch rebuilds.
func (dg *decGroup) recompute(remRow []float32) {
	s := 0.0
	for _, idx := range dg.list {
		s += float64(remRow[idx])
	}
	dg.sum = s
}

func (dg *decGroup) footprint() int64 {
	return int64(cap(dg.list))*4 + int64(cap(dg.inv))*4
}

// maxScaledBias bounds λ·w so the uint64 conversion is always defined and
// group weights stay exact in float64.
const maxScaledBias = float64(1 << 62)

// splitFloatBias converts a user-facing float bias into the scaled integer
// part and fractional remainder: w → (⌊λ·w⌋, λ·w - ⌊λ·w⌋). The caller must
// have validated the weight with checkFloatWeight.
func splitFloatBias(w, lambda float64) (uint64, float32) {
	scaled := w * lambda
	ip := uint64(scaled)
	return ip, float32(scaled - float64(ip))
}

// checkFloatWeight validates a float-mode weight against λ overflow. NaN
// is rejected here because it slips past the callers' w <= 0 guards (every
// NaN comparison is false) and would make the uint64 conversion in
// splitFloatBias undefined.
func checkFloatWeight(w, lambda float64) error {
	if math.IsNaN(w) {
		return fmt.Errorf("core: weight is NaN")
	}
	if w*lambda >= maxScaledBias {
		return fmt.Errorf("core: weight %v overflows λ=%v scaling (max %g)", w, lambda, maxScaledBias/lambda)
	}
	return nil
}
