package core

import (
	"math"
	"sort"
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Differential test (§5.2 batched path vs §4.2 streaming path): replaying
// the same random tape through ApplyUpdates (chunked batches) and
// ApplyUpdatesStreaming must produce identical live edge sets and
// statistically indistinguishable sampling distributions. Tapes keep at
// most one live instance per (src,dst) pair so deletions are unambiguous
// between the two paths' duplicate-resolution policies.

type diffPair struct{ src, dst graph.VertexID }

func buildDiffTape(n, numVertices int, floatMode bool, seed uint64) []graph.Update {
	r := xrand.New(seed)
	live := make([]diffPair, 0, n)
	liveAt := make(map[diffPair]int, n)
	tape := make([]graph.Update, 0, n)
	for len(tape) < n {
		roll := r.Float64()
		switch {
		case roll < 0.30 && len(live) > 4:
			i := r.Intn(len(live))
			p := live[i]
			last := len(live) - 1
			live[i] = live[last]
			liveAt[live[i]] = i
			live = live[:last]
			delete(liveAt, p)
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
		case roll < 0.35:
			p := diffPair{graph.VertexID(r.Intn(numVertices)), graph.VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
		default:
			p := diffPair{graph.VertexID(r.Intn(numVertices)), graph.VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			up := graph.Update{Op: graph.OpInsert, Src: p.src, Dst: p.dst, Bias: uint64(1 + r.Intn(500))}
			if floatMode {
				up.FBias = r.Float64() * 0.999
			}
			liveAt[p] = len(live)
			live = append(live, p)
			tape = append(tape, up)
		}
	}
	return tape
}

type diffEdge struct {
	src, dst graph.VertexID
	bias     uint64
	fbias    float64
}

func sortedEdges(t *testing.T, s *Sampler) []diffEdge {
	t.Helper()
	g := s.Snapshot()
	out := make([]diffEdge, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		vid := graph.VertexID(u)
		dsts := g.Neighbors(vid)
		biases := g.Biases(vid)
		fb := g.FBiases(vid)
		for i := range dsts {
			e := diffEdge{src: vid, dst: dsts[i], bias: biases[i]}
			if fb != nil {
				e.fbias = fb[i]
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.bias < b.bias
	})
	return out
}

// probsByDst folds a vertex's exact slot distribution onto destinations
// (pairs are unique, so this is a bijection).
func probsByDst(s *Sampler, u graph.VertexID) map[graph.VertexID]float64 {
	out := map[graph.VertexID]float64{}
	for slot, p := range s.VertexProbabilities(u) {
		out[s.Neighbor(u, slot)] += p
	}
	return out
}

func TestBatchedVsStreamingDifferential(t *testing.T) {
	const (
		nV      = 400
		tapeLen = 6000
		chunk   = 113 // deliberately not a divisor of the tape length
	)
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"integer", DefaultConfig},
		{"integer-baseline", func() Config {
			c := DefaultConfig()
			c.Adaptive = false
			return c
		}},
		{"float", func() Config {
			c := DefaultConfig()
			c.FloatBias = true
			c.Lambda = 2048
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			tape := buildDiffTape(tapeLen, nV, cfg.FloatBias, 0xD1FF+uint64(len(tc.name)))

			batched, err := New(nV, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(tape); lo += chunk {
				hi := lo + chunk
				if hi > len(tape) {
					hi = len(tape)
				}
				if err := batched.ApplyUpdates(append([]graph.Update(nil), tape[lo:hi]...)); err != nil {
					t.Fatalf("batched chunk [%d,%d): %v", lo, hi, err)
				}
			}

			streaming, err := New(nV, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := streaming.ApplyUpdatesStreaming(tape); err != nil {
				t.Fatalf("streaming replay: %v", err)
			}

			if err := batched.CheckInvariants(); err != nil {
				t.Fatalf("batched invariants: %v", err)
			}
			if err := streaming.CheckInvariants(); err != nil {
				t.Fatalf("streaming invariants: %v", err)
			}

			// Identical live edge sets.
			be, se := sortedEdges(t, batched), sortedEdges(t, streaming)
			if len(be) != len(se) {
				t.Fatalf("edge count: batched %d, streaming %d", len(be), len(se))
			}
			for i := range be {
				if be[i] != se[i] {
					t.Fatalf("edge multiset diverges at %d: batched %+v, streaming %+v", i, be[i], se[i])
				}
			}

			// Exact per-vertex distributions agree.
			for u := 0; u < nV; u++ {
				vid := graph.VertexID(u)
				bp, sp := probsByDst(batched, vid), probsByDst(streaming, vid)
				if len(bp) != len(sp) {
					t.Fatalf("vertex %d: support size %d vs %d", u, len(bp), len(sp))
				}
				for d, p := range sp {
					if math.Abs(bp[d]-p) > 1e-9 {
						t.Fatalf("vertex %d → %d: batched prob %v, streaming %v", u, d, bp[d], p)
					}
				}
			}

			// Empirical check: the batched engine's draws fit the streaming
			// engine's exact distribution on the busiest vertices.
			type cand struct {
				u graph.VertexID
				d int
			}
			var cands []cand
			for u := 0; u < nV; u++ {
				if d := streaming.Degree(graph.VertexID(u)); d >= 4 {
					cands = append(cands, cand{graph.VertexID(u), d})
				}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
			if len(cands) > 4 {
				cands = cands[:4]
			}
			r := xrand.New(0xE0)
			for _, c := range cands {
				sp := probsByDst(streaming, c.u)
				dsts := make([]graph.VertexID, 0, len(sp))
				for d := range sp {
					dsts = append(dsts, d)
				}
				sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
				probs := make([]float64, len(dsts))
				index := make(map[graph.VertexID]int, len(dsts))
				for i, d := range dsts {
					probs[i] = sp[d]
					index[d] = i
				}
				observed := make([]int64, len(dsts))
				const draws = 30000
				for i := 0; i < draws; i++ {
					v, ok := batched.Sample(c.u, r)
					if !ok {
						t.Fatalf("vertex %d: Sample failed", c.u)
					}
					observed[index[v]]++
				}
				stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
				if err != nil {
					t.Fatalf("vertex %d: chi-square: %v", c.u, err)
				}
				if p < 1e-4 {
					t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — batched draws diverge from streaming distribution", c.u, c.d, stat, p)
				}
			}
		})
	}
}
