package core

import (
	"math/bits"

	"github.com/bingo-rw/bingo/internal/bitutil"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// VertexView is an immutable snapshot of one vertex's full sampling state:
// its adjacency columns, every non-empty radix group (kind, count, member
// list), the decimal group, and the inter-group weights as a cumulative
// distribution. A view samples with exactly the engine's probabilities —
// stage (i) picks a group by weight, stage (ii) picks a member by the
// group's own discipline — but touches no engine state doing it, so any
// number of goroutines may sample one view concurrently, in this process
// or (the fields are plain serializable data, so a view survives a gob
// frame) in another one.
//
// Views are the unit of the hub caches layered above the engine: a walker
// crew keeps hot vertices' views and samples lock-free, and a shard serves
// hub hops for vertices it does not own from views its peers shipped over
// the fabric. Both layers depend on knowing when a view went stale, so a
// view is *versioned*: Epoch carries the extracting concurrent engine's
// view stamp — the global generation packed with the vertex's own seqlock
// version (stamped by the wrapper; the core sampler has no versions) —
// and remote carriers stamp Applied with the owner's cumulative
// applied-update count. A view whose version no longer validates must be
// dropped, never sampled.
type VertexView struct {
	// Vertex is the viewed vertex's ID.
	Vertex graph.VertexID
	// Epoch is the extracting engine's view stamp at extraction:
	// generation<<32 | per-vertex version (version even = stable). Zero
	// on views extracted outside a version domain.
	Epoch uint64
	// Applied is the extracting node's cumulative applied-update count at
	// extraction — the watermark remote caches validate against. Zero
	// unless a shard node stamped it.
	Applied int64
	// RadixBits is the radix width the group IDs decode under.
	RadixBits int
	// Dsts is the adjacency destination column (Dsts[i] is neighbor i).
	Dsts []graph.VertexID
	// Bias is the integer bias column (dense groups reject over it).
	Bias []uint64
	// Rem is the float-mode remainder column (nil in integer mode).
	Rem []float32
	// Groups are the non-empty radix groups, in inter-table slot order:
	// Groups[i] pairs with Cum[i].
	Groups []ViewGroup
	// Cum is the cumulative inter-group weight: Cum[i] is the total mass
	// of slots 0..i, so Cum[len(Cum)-1] is the vertex's total mass. When
	// Dec is set, the final entry belongs to the decimal group.
	Cum []float64
	// Dec reports whether the last Cum slot is the decimal group.
	Dec bool
	// DecList is the decimal group's member list (float mode only).
	DecList []int32
	// DecSum is the decimal group's total remainder mass.
	DecSum float64

	// AliasCut/AliasIdx are a slot-level alias table (Vose) over the
	// adjacency columns, built once at extraction. A draw consumes one
	// RNG word x: the high 128-bit-multiply reduction x·n/2⁶⁴ picks
	// column i uniformly, and the product's low word — uniform and
	// independent of i — accepts i when below AliasCut[i] (the stay
	// probability in fixed-point 2⁶⁴ths), else falls to AliasIdx[i]. The
	// table encodes exactly the two-stage probabilities (slot mass is
	// the bias column plus, in float mode, the remainder column) to
	// within 2⁻⁶⁴ per cut, but a draw costs O(1) — one RNG word, one
	// multiply, one compare — instead of a group scan plus rejection.
	// Views are the unit of the hub caches, where one extraction serves
	// thousands of draws, so the O(degree) build amortizes to nothing;
	// Sample/SampleBatch use the table whenever it is present and fall
	// back to the group walk otherwise (e.g. a view deserialized from an
	// older peer).
	AliasCut []uint64
	AliasIdx []int32
}

// ViewGroup is one radix group inside a view: enough of the group's
// representation to sample a member uniformly, nothing an update path
// would need (no inverted indices — views are never mutated).
type ViewGroup struct {
	GID   int16
	Kind  GroupKind
	Count int32
	One   int32   // KindOne member
	List  []int32 // KindSparse / KindRegular member list
}

// ViewOf extracts an immutable view of u's sampling state. It reads the
// same structures Sample reads and nothing else, so it is safe under
// exactly the conditions Sample is safe (no concurrent mutation of u's
// row — the concurrent wrapper calls it under the vertex's stripe read
// lock). A vertex outside the current space, or one with no sampleable
// mass, yields a view whose Sample reports ok=false.
func (s *Sampler) ViewOf(u graph.VertexID) VertexView {
	vw := VertexView{Vertex: u, RadixBits: s.cfg.RadixBits}
	if int(u) >= len(s.vx) {
		return vw
	}
	vx := &s.vx[u]
	if vx.dirty {
		panic("core: ViewOf during unfinished batch update")
	}
	if len(vx.slots) == 0 {
		return vw
	}
	vw.Dsts = append([]graph.VertexID(nil), s.adjs.DstRow(u)...)
	vw.Bias = append([]uint64(nil), s.adjs.BiasRow(u)...)
	if s.cfg.FloatBias {
		vw.Rem = append([]float32(nil), s.adjs.RemRow(u)...)
	}
	cum := 0.0
	for si, gi := range vx.slots {
		cum += vx.wts[si]
		vw.Cum = append(vw.Cum, cum)
		if gi < 0 {
			// The decimal group; rebuildInter appends it last, so the
			// final Cum entry is its slot.
			vw.Dec = true
			vw.DecList = append([]int32(nil), vx.dec.list...)
			vw.DecSum = vx.dec.sum
			continue
		}
		g := &vx.groups[gi]
		vg := ViewGroup{GID: g.gid, Kind: g.kind, Count: g.count, One: g.one}
		if len(g.list) > 0 {
			vg.List = append([]int32(nil), g.list...)
		}
		vw.Groups = append(vw.Groups, vg)
	}
	vw.buildAlias()
	return vw
}

// Degree returns the viewed vertex's out-degree at extraction time.
func (vw *VertexView) Degree() int { return len(vw.Dsts) }

// Total returns the view's total sampling mass.
func (vw *VertexView) Total() float64 {
	if len(vw.Cum) == 0 {
		return 0
	}
	return vw.Cum[len(vw.Cum)-1]
}

// buildAlias constructs the slot-level Vose alias table from the view's
// columns (slot weight = bias plus, in float mode, the remainder). Called
// once at extraction; draws then cost O(1) instead of a group scan plus
// rejection. The table encodes exactly bias/Σbias — Vose's construction
// preserves each column's scaled mass to float rounding, and the
// fixed-point cut quantizes each stay probability by at most 2⁻⁶⁴.
func (vw *VertexView) buildAlias() {
	n := len(vw.Dsts)
	if n == 0 {
		return
	}
	total := vw.Total()
	if total <= 0 {
		return
	}
	cut := make([]uint64, n)
	alias := make([]int32, n)
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		w := float64(vw.Bias[i])
		if vw.Rem != nil {
			w += float64(vw.Rem[i])
		}
		s := w * float64(n) / total
		scaled[i] = s
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		cut[s] = fixCut(scaled[s])
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers on either list hold (to rounding) exactly mass 1.
	for _, i := range large {
		cut[i], alias[i] = ^uint64(0), i
	}
	for _, i := range small {
		cut[i], alias[i] = ^uint64(0), i
	}
	vw.AliasCut, vw.AliasIdx = cut, alias
}

// fixCut converts a stay probability in [0,1) to fixed-point 2⁶⁴ths.
func fixCut(p float64) uint64 {
	if p >= 1 {
		return ^uint64(0)
	}
	if p <= 0 {
		return 0
	}
	return uint64(p * (1 << 63) * 2)
}

// Sample draws a neighbor with probability bias/Σbias from the snapshot —
// through the O(1) alias table when the view carries one, else the
// engine's two-stage draw replayed against frozen state. It is safe
// for concurrent use by any number of goroutines (each with its own RNG)
// and never allocates.
func (vw *VertexView) Sample(r *xrand.RNG) (graph.VertexID, bool) {
	n := len(vw.Cum)
	if n == 0 {
		return 0, false
	}
	total := vw.Cum[n-1]
	if total <= 0 {
		return 0, false
	}
	if ac := vw.AliasCut; len(ac) == len(vw.Dsts) {
		hi, lo := bits.Mul64(r.Uint64(), uint64(len(ac)))
		i := int(hi)
		if lo >= ac[i] {
			i = int(vw.AliasIdx[i])
		}
		return vw.Dsts[i], true
	}
	slot := 0
	if n > 1 {
		x := r.Float64() * total
		for slot < n-1 && x >= vw.Cum[slot] {
			slot++
		}
	}
	var idx int32
	if vw.Dec && slot == n-1 {
		idx = vw.sampleDec(r)
	} else {
		idx = vw.Groups[slot].sample(r, vw.Bias, vw.RadixBits)
	}
	return vw.Dsts[idx], true
}

// SampleBatch draws one neighbor per slot from the snapshot — slot i is
// drawn with rs[i], so every walker parked on this vertex keeps its own
// deterministic stream — in a single pass that hoists the total mass and
// bounds checks out of the per-draw loop. Each slot consumes its stream
// exactly as a per-slot Sample call would, which is what lets the frontier
// kernel's dense mode batch draws for co-located walkers without
// perturbing any walker's stream. Returns false (drawing nothing) when
// the view has no sampleable mass. len(dst) must be at least len(rs).
func (vw *VertexView) SampleBatch(rs []*xrand.RNG, dst []graph.VertexID) bool {
	n := len(vw.Cum)
	if n == 0 {
		return false
	}
	total := vw.Cum[n-1]
	if total <= 0 {
		return false
	}
	if ac := vw.AliasCut; len(ac) == len(vw.Dsts) {
		ai := vw.AliasIdx
		dsts := vw.Dsts
		d := uint64(len(ac))
		for i, r := range rs {
			hi, lo := bits.Mul64(r.Uint64(), d)
			j := int(hi)
			if lo >= ac[j] {
				j = int(ai[j])
			}
			dst[i] = dsts[j]
		}
		return true
	}
	for i, r := range rs {
		slot := 0
		if n > 1 {
			x := r.Float64() * total
			for slot < n-1 && x >= vw.Cum[slot] {
				slot++
			}
		}
		var idx int32
		if vw.Dec && slot == n-1 {
			idx = vw.sampleDec(r)
		} else {
			idx = vw.Groups[slot].sample(r, vw.Bias, vw.RadixBits)
		}
		dst[i] = vw.Dsts[idx]
	}
	return true
}

// SampleBatchOne draws len(dst) neighbors from the snapshot consuming a
// single stream — the batch form callers use when per-walker stream
// identity is already waived (a cached-view hit in the frontier kernel:
// the dense contract there is distributional exactness, not
// draw-for-draw parity). One stream keeps the generator state hot in the
// draw loop instead of paying a scattered state-line fetch per slot.
// Returns false (drawing nothing) when the view has no sampleable mass.
func (vw *VertexView) SampleBatchOne(r *xrand.RNG, dst []graph.VertexID) bool {
	n := len(vw.Cum)
	if n == 0 {
		return false
	}
	total := vw.Cum[n-1]
	if total <= 0 {
		return false
	}
	if ac := vw.AliasCut; len(ac) == len(vw.Dsts) {
		ai := vw.AliasIdx
		dsts := vw.Dsts
		d := uint64(len(ac))
		for i := range dst {
			hi, lo := bits.Mul64(r.Uint64(), d)
			j := int(hi)
			if lo >= ac[j] {
				j = int(ai[j])
			}
			dst[i] = dsts[j]
		}
		return true
	}
	for i := range dst {
		v, ok := vw.Sample(r)
		if !ok {
			return false
		}
		dst[i] = v
	}
	return true
}

// sample draws a member uniformly, mirroring group.sample against the
// view's frozen bias column.
func (vg *ViewGroup) sample(r *xrand.RNG, biasRow []uint64, radixBits int) int32 {
	switch vg.Kind {
	case KindOne:
		return vg.One
	case KindSparse, KindRegular:
		return vg.List[r.Intn(int(vg.Count))]
	case KindDense:
		j, v := decodeGID(vg.GID, radixBits)
		d := len(biasRow)
		for {
			i := r.Intn(d)
			if bitutil.Digit(biasRow[i], j, radixBits) == v {
				return int32(i)
			}
		}
	default:
		panic("core: sample from empty view group")
	}
}

// sampleDec mirrors decGroup.sample: bounded rejection over the frozen
// remainder column, then an exact CDF fallback.
func (vw *VertexView) sampleDec(r *xrand.RNG) int32 {
	n := len(vw.DecList)
	if n == 0 {
		panic("core: sample from empty decimal view group")
	}
	for round := 0; round < rejectionCap; round++ {
		idx := vw.DecList[r.Intn(n)]
		if float64(vw.Rem[idx]) > r.Float64() {
			return idx
		}
	}
	x := r.Float64() * vw.DecSum
	acc := 0.0
	for _, idx := range vw.DecList {
		acc += float64(vw.Rem[idx])
		if x < acc {
			return idx
		}
	}
	return vw.DecList[n-1] // numerical tail
}

// Probabilities returns the exact per-adjacency-slot sampling
// probabilities the view encodes (test and verification helper; the
// live-path mirror of Sampler.VertexProbabilities).
func (vw *VertexView) Probabilities() map[int32]float64 {
	out := map[int32]float64{}
	total := vw.Total()
	if total == 0 {
		return out
	}
	for _, g := range vw.Groups {
		j, v := decodeGID(g.GID, vw.RadixBits)
		sub := float64(v) * pow2(vw.RadixBits*j)
		switch g.Kind {
		case KindOne:
			out[g.One] += sub / total
		case KindSparse, KindRegular:
			for _, m := range g.List {
				out[m] += sub / total
			}
		case KindDense:
			for i, b := range vw.Bias {
				if bitutil.Digit(b, j, vw.RadixBits) == v {
					out[int32(i)] += sub / total
				}
			}
		}
	}
	for _, m := range vw.DecList {
		out[m] += float64(vw.Rem[m]) / total
	}
	return out
}
