package core

import (
	"errors"
	"testing"

	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestApplyBatchBasic(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	res, err := s.ApplyBatch([]graph.Update{
		{Op: graph.OpInsert, Src: 2, Dst: 3, Bias: 3},
		{Op: graph.OpDelete, Src: 2, Dst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 1 || res.NotFound != 0 {
		t.Fatalf("result %+v", res)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		4: 0.4, 5: 0.3, 3: 0.3,
	}, 120000)
}

func TestApplyBatchEmpty(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	res, err := s.ApplyBatch(nil)
	if err != nil || res.Inserted+res.Deleted+res.NotFound != 0 {
		t.Fatalf("empty batch: %+v, %v", res, err)
	}
}

func TestApplyBatchNotFound(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	res, err := s.ApplyBatch([]graph.Update{
		{Op: graph.OpDelete, Src: 2, Dst: 7},
		{Op: graph.OpDelete, Src: 2, Dst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NotFound != 1 || res.Deleted != 1 {
		t.Fatalf("result %+v", res)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchZeroBiasRejected(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	before := s.NumEdges()
	_, err := s.ApplyBatch([]graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 3, Bias: 7},
		{Op: graph.OpInsert, Src: 0, Dst: 4, Bias: 0},
	})
	if !errors.Is(err, ErrZeroBias) {
		t.Fatalf("err = %v", err)
	}
	if s.NumEdges() != before {
		t.Error("failed batch partially applied")
	}
}

// TestTwoPhaseDeleteAdversarial exercises the Figure 10(b) scenario the
// paper motivates: victims residing in the tail window that would
// otherwise be used to fill holes.
func TestTwoPhaseDeleteAdversarial(t *testing.T) {
	s, _ := New(32, DefaultConfig())
	// Vertex 0 with 10 neighbors 1..10, biases = dst.
	for i := 1; i <= 10; i++ {
		if err := s.Insert(0, graph.VertexID(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete entry 0 and the entire tail window except one survivor:
	// victims {1, 7, 8, 9, 10} (dsts). N=5, window = slots 5..9
	// (dsts 6..10). Victims in window: 7,8,9,10 → γ=4; survivors {6}
	// fill the single front hole (dst 1's slot).
	var ups []graph.Update
	for _, dst := range []graph.VertexID{1, 7, 8, 9, 10} {
		ups = append(ups, graph.Update{Op: graph.OpDelete, Src: 0, Dst: dst})
	}
	res, err := s.ApplyBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 5 {
		t.Fatalf("deleted %d, want 5", res.Deleted)
	}
	if s.Degree(0) != 5 {
		t.Fatalf("degree %d, want 5", s.Degree(0))
	}
	for _, dst := range []graph.VertexID{2, 3, 4, 5, 6} {
		if !s.HasEdge(0, dst) {
			t.Errorf("surviving edge to %d lost", dst)
		}
	}
	for _, dst := range []graph.VertexID{1, 7, 8, 9, 10} {
		if s.HasEdge(0, dst) {
			t.Errorf("deleted edge to %d still present", dst)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkVertexDistribution(t, s, 0, map[graph.VertexID]float64{
		2: 2.0 / 20, 3: 3.0 / 20, 4: 4.0 / 20, 5: 5.0 / 20, 6: 6.0 / 20,
	}, 100000)
}

func TestTwoPhaseDeleteWholeVertex(t *testing.T) {
	s, _ := New(16, DefaultConfig())
	var ups []graph.Update
	for i := 1; i <= 8; i++ {
		if err := s.Insert(0, graph.VertexID(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
		ups = append(ups, graph.Update{Op: graph.OpDelete, Src: 0, Dst: graph.VertexID(i)})
	}
	if _, err := s.ApplyBatch(ups); err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 0 {
		t.Fatalf("degree %d after full deletion", s.Degree(0))
	}
	if _, ok := s.Sample(0, xrand.New(1)); ok {
		t.Error("sampled from emptied vertex")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchInsertDeleteSameEdge(t *testing.T) {
	// The paper's duplicated-edge case: re-insert a deleted edge within
	// one batch; and delete a just-inserted edge.
	s := runningExample(t, DefaultConfig())
	res, err := s.ApplyBatch([]graph.Update{
		{Op: graph.OpDelete, Src: 2, Dst: 1},
		{Op: graph.OpInsert, Src: 2, Dst: 1, Bias: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Insert-then-delete processing: insert lands first, then the delete
	// must remove the *earlier* (pre-batch, bias 5) instance, leaving
	// bias 9.
	if res.Inserted != 1 || res.Deleted != 1 {
		t.Fatalf("result %+v", res)
	}
	if s.Degree(2) != 3 {
		t.Fatalf("degree %d, want 3", s.Degree(2))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 9.0 / 16, 4: 4.0 / 16, 5: 3.0 / 16,
	}, 120000)
}

func TestBatchMatchesStreaming(t *testing.T) {
	// The same update stream applied via streaming and batching must
	// yield identical per-destination mass everywhere.
	mkGraph := func() *graph.CSR {
		edges := gen.RMAT(200, 2000, gen.DefaultRMAT, 31)
		gen.AssignBiases(edges, 200, gen.BiasConfig{Kind: gen.BiasDegree})
		g, err := graph.FromEdges(200, edges)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := mkGraph()
	w, err := gen.BuildWorkload(g, gen.UpdMixed, 100, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewFromCSR(w.Initial, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewFromCSR(w.Initial, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range w.Updates {
		switch up.Op {
		case graph.OpInsert:
			err = stream.Insert(up.Src, up.Dst, up.Bias)
		case graph.OpDelete:
			err = stream.Delete(up.Src, up.Dst)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range w.Batches() {
		if _, err := batch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := stream.CheckInvariants(); err != nil {
		t.Fatalf("streaming: %v", err)
	}
	if err := batch.CheckInvariants(); err != nil {
		t.Fatalf("batched: %v", err)
	}
	if stream.NumEdges() != batch.NumEdges() {
		t.Fatalf("edges: streaming %d, batched %d", stream.NumEdges(), batch.NumEdges())
	}
	for u := graph.VertexID(0); int(u) < g.NumVertices(); u++ {
		sm := destMass(stream, u)
		bm := destMass(batch, u)
		if len(sm) != len(bm) {
			t.Fatalf("vertex %d: %d vs %d destinations", u, len(sm), len(bm))
		}
		for dst, m := range sm {
			if bm[dst] != m {
				t.Fatalf("vertex %d dst %d: mass %v vs %v", u, dst, m, bm[dst])
			}
		}
	}
}

// destMass sums integer bias mass per destination from the adjacency.
func destMass(s *Sampler, u graph.VertexID) map[graph.VertexID]uint64 {
	out := map[graph.VertexID]uint64{}
	for i := 0; i < s.Degree(u); i++ {
		out[s.adjs.Dst(u, int32(i))] += s.adjs.Bias(u, int32(i))
	}
	return out
}

func TestBatchParallelWorkers(t *testing.T) {
	// Same workload through 1 worker and 8 workers must agree; with
	// -race this also validates the concurrency design.
	edges := gen.RMAT(300, 4000, gen.DefaultRMAT, 55)
	gen.AssignBiases(edges, 300, gen.BiasConfig{Kind: gen.BiasDegree})
	g, err := graph.FromEdges(300, edges)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gen.BuildWorkload(g, gen.UpdMixed, 500, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := DefaultConfig()
	cfg1.Workers = 1
	cfg8 := DefaultConfig()
	cfg8.Workers = 8
	s1, _ := NewFromCSR(w.Initial, cfg1)
	s8, _ := NewFromCSR(w.Initial, cfg8)
	for _, b := range w.Batches() {
		b2 := append([]graph.Update(nil), b...)
		if _, err := s1.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if _, err := s8.ApplyBatch(b2); err != nil {
			t.Fatal(err)
		}
	}
	if err := s8.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s1.NumEdges() != s8.NumEdges() {
		t.Fatalf("edges %d vs %d", s1.NumEdges(), s8.NumEdges())
	}
	for u := graph.VertexID(0); int(u) < 300; u++ {
		m1, m8 := destMass(s1, u), destMass(s8, u)
		for dst, m := range m1 {
			if m8[dst] != m {
				t.Fatalf("vertex %d dst %d mass %v vs %v", u, dst, m, m8[dst])
			}
		}
	}
}

func TestBatchGrowsVertexSpace(t *testing.T) {
	s, _ := New(2, DefaultConfig())
	_, err := s.ApplyBatch([]graph.Update{
		{Op: graph.OpInsert, Src: 9, Dst: 4, Bias: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasEdge(9, 4) {
		t.Error("edge to grown vertex missing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchLargeChurnInvariants(t *testing.T) {
	edges := gen.RMAT(150, 3000, gen.DefaultRMAT, 91)
	gen.AssignBiases(edges, 150, gen.BiasConfig{Kind: gen.BiasPowerLaw, Max: 4096})
	g, err := graph.FromEdges(150, edges)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gen.BuildWorkload(g, gen.UpdMixed, 200, 7, 19)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFromCSR(w.Initial, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.Batches() {
		if _, err := s.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	// After all updates, sampling still matches encoded distribution on
	// the highest-degree vertex.
	best := graph.VertexID(0)
	for u := graph.VertexID(0); int(u) < 150; u++ {
		if s.Degree(u) > s.Degree(best) {
			best = u
		}
	}
	if s.Degree(best) < 5 {
		t.Skip("graph too sparse after churn")
	}
	want := map[graph.VertexID]float64{}
	total := s.TotalBias(best)
	for dst, m := range destMass(s, best) {
		want[dst] = float64(m) / total
	}
	checkVertexDistribution(t, s, best, want, 150000)
}
