package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/bingo-rw/bingo/internal/bitutil"
	"github.com/bingo-rw/bingo/internal/graph"
)

// BatchResult reports the outcome of ApplyBatch.
type BatchResult struct {
	// Inserted and Deleted count applied events.
	Inserted, Deleted int
	// NotFound counts deletions whose edge was not live (they are
	// skipped, mirroring the tolerant semantics of the evaluated
	// systems).
	NotFound int
}

// ApplyBatch ingests a batch of updates using the paper's §5.2 workflow:
// requests are reordered by source vertex (the CPU-side step of Figure
// 10(a)); vertices are processed in parallel by a worker pool (the GPU
// kernel's vertex-per-object parallelism); per vertex the order is
// insert → delete → rebuild, with deletions compacted by the 2-phase
// parallel delete-and-swap and group-type conversions deferred to the
// rebuild step. The inter-group alias table of each touched vertex is
// rebuilt exactly once.
//
// The input slice is reordered in place (stably per source, preserving the
// paper's timestamp semantics). Zero-bias insertions fail validation before
// any mutation.
func (s *Sampler) ApplyBatch(ups []graph.Update) (BatchResult, error) {
	var res BatchResult
	if len(ups) == 0 {
		return res, nil
	}
	// Validate before mutating anything.
	maxV, err := s.ValidateUpdates(ups)
	if err != nil {
		return res, err
	}
	s.ensureVertex(maxV)
	return s.ApplyPerSource(ups, s.cfg.Workers, s.ApplyVertexUpdates), nil
}

// ApplyPerSource is the batched workflow's orchestration, shared with
// external coordinators (internal/concurrent): sort ups stably by source,
// partition into per-source runs, fan the runs out over workers, and sum
// the results. apply receives a per-worker Scratch whose conversion stats
// are flushed once per worker. The updates must already have passed
// ValidateUpdates and the vertex space must cover every referenced ID.
func (s *Sampler) ApplyPerSource(ups []graph.Update, workers int, apply func(u graph.VertexID, ops []graph.Update, sc *Scratch) BatchResult) BatchResult {
	var res BatchResult
	if len(ups) == 0 {
		return res
	}
	graph.SortUpdatesBySrc(ups)

	// Partition into per-vertex runs.
	type run struct{ lo, hi int }
	var runs []run
	lo := 0
	for i := 1; i <= len(ups); i++ {
		if i == len(ups) || ups[i].Src != ups[lo].Src {
			runs = append(runs, run{lo, i})
			lo = i
		}
	}

	if workers > len(runs) {
		workers = len(runs)
	}
	if workers <= 1 {
		sc := NewScratch()
		for _, rn := range runs {
			r := apply(ups[rn.lo].Src, ups[rn.lo:rn.hi], sc)
			res.Inserted += r.Inserted
			res.Deleted += r.Deleted
			res.NotFound += r.NotFound
		}
		s.FlushScratch(sc)
		return res
	}

	runCh := make(chan run, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := BatchResult{}
			sc := NewScratch()
			for rn := range runCh {
				r := apply(ups[rn.lo].Src, ups[rn.lo:rn.hi], sc)
				local.Inserted += r.Inserted
				local.Deleted += r.Deleted
				local.NotFound += r.NotFound
			}
			s.FlushScratch(sc)
			mu.Lock()
			res.Inserted += local.Inserted
			res.Deleted += local.Deleted
			res.NotFound += local.NotFound
			mu.Unlock()
		}()
	}
	for _, rn := range runs {
		runCh <- rn
	}
	close(runCh)
	wg.Wait()
	return res
}

// batchScratch is per-worker reusable state: the staging maps of the
// batched workflow plus the conversion counters. Reuse keeps the per-vertex
// cost allocation-free, which matters because most vertices receive a
// single update per batch.
type batchScratch struct {
	cc      convCounters
	deltas  map[int16]int32
	claimed map[int32]bool
	victims map[int32]bool
	slots   []int32
	ins     []insRec
	surv    []int32
	holes   []int32
}

type insRec struct {
	dst  graph.VertexID
	bias uint64
	rem  float32
}

func newBatchScratch() *batchScratch {
	return &batchScratch{
		deltas:  make(map[int16]int32),
		claimed: make(map[int32]bool),
		victims: make(map[int32]bool),
	}
}

// applyVertexBatch processes one vertex's events: insert → delete →
// rebuild (paper Figure 10(a) steps (i)-(iii)).
func (s *Sampler) applyVertexBatch(u graph.VertexID, ops []graph.Update, sc *batchScratch) BatchResult {
	var res BatchResult
	cc := &sc.cc
	var t0 time.Time
	if s.cfg.Instrument {
		t0 = time.Now()
	}
	vx := &s.vx[u]
	vx.dirty = true

	// Fast path: a single event needs no staging at all — the common
	// case when a batch spreads across many vertices. The streaming
	// mutators already maintain conversions and index sizes, so only the
	// inter-group alias rebuild remains.
	if len(ops) == 1 {
		res = s.applySingleOp(u, &ops[0], cc)
		if s.cfg.Instrument {
			mid := time.Now()
			s.insDelNs.Add(mid.Sub(t0).Nanoseconds())
			t0 = mid
		}
		s.rebuildInter(u)
		if s.cfg.Instrument {
			s.rebuildNs.Add(time.Since(t0).Nanoseconds())
		}
		return res
	}

	b := s.cfg.RadixBits

	// ---- Step (i): insertions -------------------------------------------
	ins := sc.ins[:0]
	nDel := 0
	for i := range ops {
		switch ops[i].Op {
		case graph.OpInsert:
			var ib uint64
			var rem float32
			if s.cfg.FloatBias {
				ib, rem = splitFloatBias(float64(ops[i].Bias)+ops[i].FBias, s.lambda)
			} else {
				ib = ops[i].Bias
			}
			ins = append(ins, insRec{ops[i].Dst, ib, rem})
		case graph.OpDelete:
			nDel++
		}
	}
	sc.ins = ins
	oldD := s.adjs.Degree(u)
	dAfterIns := oldD + len(ins)

	if len(ins) > 0 {
		// Pre-classify touched groups against their post-insertion
		// cardinality (the paper's batched one-element-group rule:
		// "derive whether this group evolves into a sparse/regular/dense
		// group based on all the insertions").
		clear(sc.deltas)
		for _, rec := range ins {
			n := bitutil.NumDigits(rec.bias, b)
			for j := 0; j < n; j++ {
				if v := bitutil.Digit(rec.bias, j, b); v != 0 {
					sc.deltas[gidOf(j, v, b)]++
				}
			}
		}
		biasRow := s.adjs.BiasRow(u)
		for gid, delta := range sc.deltas {
			g := vx.ensureGroup(gid)
			cc.touch(g.kind)
			working := KindRegular
			if s.cfg.Adaptive {
				working = classify(g.count+delta, dAfterIns, s.cfg.AlphaPct, s.cfg.BetaPct)
			}
			if working == KindOne && g.kind == KindEmpty {
				continue // first add turns empty into one-element
			}
			if g.kind == KindEmpty && g.count == 0 {
				// Fresh group: adopt the working representation
				// directly (no members to carry over).
				switch working {
				case KindDense:
					g.kind = KindDense
				case KindSparse:
					g.kind = KindSparse
				case KindRegular:
					g.kind = KindRegular
					g.inv = make([]int32, dAfterIns)
					for k := range g.inv {
						g.inv[k] = -1
					}
				}
				continue
			}
			s.convert(g, working, dAfterIns, biasRow, cc)
		}
		// All regular inverted indices must address the grown row.
		for i := range vx.groups {
			vx.groups[i].growInv(dAfterIns)
		}
		if s.cfg.FloatBias {
			vx.dec.growInv(dAfterIns)
		}
		s.adjs.Grow(u, len(ins))
		for _, rec := range ins {
			idx := s.adjs.Append(u, rec.dst, rec.bias, rec.rem)
			n := bitutil.NumDigits(rec.bias, b)
			for j := 0; j < n; j++ {
				v := bitutil.Digit(rec.bias, j, b)
				if v == 0 {
					continue
				}
				i, ok := vx.findGroup(gidOf(j, v, b))
				if !ok {
					panic("core: batch insert group vanished")
				}
				vx.groups[i].add(idx)
			}
			if s.cfg.FloatBias {
				vx.dec.add(idx, rec.rem)
			}
			res.Inserted++
		}
	}

	// ---- Step (ii): deletions (2-phase parallel delete-and-swap) --------
	if nDel > 0 {
		clear(sc.claimed)
		slots := sc.slots[:0]
		for i := range ops {
			if ops[i].Op != graph.OpDelete {
				continue
			}
			slot := s.resolveDelete(u, ops[i].Dst, oldD, sc.claimed)
			if slot < 0 {
				res.NotFound++
				continue
			}
			sc.claimed[slot] = true
			slots = append(slots, slot)
			res.Deleted++
		}
		sc.slots = slots
		if len(slots) > 0 {
			s.twoPhaseDelete(u, slots, sc)
		}
	}

	// ---- Step (iii): rebuild --------------------------------------------
	if s.cfg.Instrument {
		mid := time.Now()
		s.insDelNs.Add(mid.Sub(t0).Nanoseconds())
		t0 = mid
	}
	s.rebuildVertex(u, cc)
	if s.cfg.Instrument {
		s.rebuildNs.Add(time.Since(t0).Nanoseconds())
	}
	return res
}

// applySingleOp applies one event through the streaming machinery (minus
// the alias rebuild, which the caller's rebuild step performs).
func (s *Sampler) applySingleOp(u graph.VertexID, op *graph.Update, cc *convCounters) BatchResult {
	var res BatchResult
	switch op.Op {
	case graph.OpInsert:
		var ib uint64
		var rem float32
		if s.cfg.FloatBias {
			ib, rem = splitFloatBias(float64(op.Bias)+op.FBias, s.lambda)
		} else {
			ib = op.Bias
		}
		s.insertEdge(u, op.Dst, ib, rem, cc)
		res.Inserted = 1
	case graph.OpDelete:
		idx := s.adjs.Find(u, op.Dst)
		if idx < 0 {
			res.NotFound = 1
			return res
		}
		s.deleteEdge(u, idx, cc)
		res.Deleted = 1
	}
	return res
}

// resolveDelete finds an unclaimed live slot for deleting edge u→dst. To
// honor the paper's "delete the earlier version first" timestamp rule for
// duplicated edges, pre-batch slots (index < oldD) are preferred over
// slots appended by this batch, and lower slots are preferred within each
// class. The fast path (no duplicates, nothing claimed) is a single hash
// probe.
func (s *Sampler) resolveDelete(u, dst graph.VertexID, oldD int, claimed map[int32]bool) int32 {
	slot := s.adjs.Find(u, dst)
	if slot < 0 {
		return -1
	}
	if !claimed[slot] && int(slot) < oldD {
		return slot
	}
	// Slow path: scan the row for the best candidate.
	row := s.adjs.DstRow(u)
	best := int32(-1)
	bestPre := false
	for i, d := range row {
		if d != dst || claimed[int32(i)] {
			continue
		}
		pre := i < oldD
		if best < 0 || (pre && !bestPre) {
			best = int32(i)
			bestPre = pre
			if pre {
				break // lowest pre-batch slot wins
			}
		}
	}
	return best
}

// twoPhaseDelete removes the given adjacency slots using the paper's
// 2-phase parallel delete-and-swap (Figure 10(b)). Let n be the degree and
// N the number of deletions. Phase 1 condemns the victims residing in the
// tail window [n-N, n) — they will be truncated, so no data movement is
// needed (γ of them). Phase 2 moves the window's N-γ guaranteed survivors
// into the N-γ front holes. Group memberships of all victims are removed
// first; moved survivors' group entries are renamed to their new slots.
func (s *Sampler) twoPhaseDelete(u graph.VertexID, slots []int32, sc *batchScratch) {
	cc := &sc.cc
	vx := &s.vx[u]
	b := s.cfg.RadixBits
	n := s.adjs.Degree(u)
	N := len(slots)
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })

	// Remove victims' group memberships and lookup entries while every
	// slot is still addressable.
	for _, slot := range slots {
		bias := s.adjs.Bias(u, slot)
		nd := bitutil.NumDigits(bias, b)
		for j := 0; j < nd; j++ {
			v := bitutil.Digit(bias, j, b)
			if v == 0 {
				continue
			}
			i, ok := vx.findGroup(gidOf(j, v, b))
			if !ok {
				panic("core: batch delete: missing group")
			}
			cc.touch(vx.groups[i].kind)
			vx.groups[i].remove(slot)
		}
		if s.cfg.FloatBias {
			vx.dec.remove(slot, s.adjs.Rem(u, slot))
		}
		s.adjs.Unindex(u, slot)
	}

	// Phase 1: victims inside the tail window need no movement. Identify
	// the window's survivors (ascending) and the front holes (ascending).
	windowStart := int32(n - N)
	clear(sc.victims)
	for _, slot := range slots {
		sc.victims[slot] = true
	}
	survivors, holes := sc.surv[:0], sc.holes[:0]
	for i := windowStart; i < int32(n); i++ {
		if !sc.victims[i] {
			survivors = append(survivors, i)
		}
	}
	for _, slot := range slots {
		if slot < windowStart {
			holes = append(holes, slot)
		}
	}
	sc.surv, sc.holes = survivors, holes
	if len(survivors) != len(holes) {
		panic(fmt.Sprintf("core: two-phase invariant broken: %d survivors, %d holes", len(survivors), len(holes)))
	}

	// Phase 2: fill each hole with a guaranteed survivor.
	for i, hole := range holes {
		sv := survivors[i]
		s.adjs.Move(u, sv, hole)
		bias := s.adjs.Bias(u, hole)
		nd := bitutil.NumDigits(bias, b)
		for j := 0; j < nd; j++ {
			v := bitutil.Digit(bias, j, b)
			if v == 0 {
				continue
			}
			gi, ok := vx.findGroup(gidOf(j, v, b))
			if !ok {
				panic("core: batch delete: survivor group missing")
			}
			vx.groups[gi].rename(sv, hole)
		}
		if s.cfg.FloatBias {
			vx.dec.rename(sv, hole)
		}
	}
	s.adjs.Truncate(u, n-N)
}

// rebuildVertex is step (iii) of the batched workflow: reclassification of
// every group (the paper's group-type transformations, counted for Table
// 4), index shrinking, decimal-group recomputation, and a single
// inter-group alias rebuild.
//
// Classification uses the same hysteresis bands as the streaming path
// (wantConvert) rather than the raw Equation 9 boundary: with exact
// boundaries, a group whose ratio straddles α or β converts on every
// batch — an O(d) cost per batch per boundary group that exact-threshold
// reclassification would re-pay indefinitely. The paper's own measured
// conversion rates (< 0.47%, Table 4) imply an equally stable policy.
func (s *Sampler) rebuildVertex(u graph.VertexID, cc *convCounters) {
	vx := &s.vx[u]
	d := s.adjs.Degree(u)
	biasRow := s.adjs.BiasRow(u)
	for i := range vx.groups {
		g := &vx.groups[i]
		if g.count == 0 {
			continue
		}
		if !s.cfg.Adaptive {
			if g.kind != KindRegular {
				s.convert(g, KindRegular, d, biasRow, cc)
			} else {
				g.shrinkInv(d)
			}
			continue
		}
		if target, ok := wantConvert(g.kind, g.count, d, s.cfg.AlphaPct, s.cfg.BetaPct); ok {
			s.convert(g, target, d, biasRow, cc)
		} else {
			g.shrinkInv(d)
		}
	}
	vx.compactGroups()
	if s.cfg.FloatBias {
		vx.dec.shrinkInv(d)
		vx.dec.recompute(s.adjs.RemRow(u))
	}
	s.rebuildInter(u)
}
