package core

import (
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/bingo-rw/bingo/internal/adj"
	"github.com/bingo-rw/bingo/internal/bitutil"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/sampling"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// vertex is the per-vertex sampling state: the radix groups, the decimal
// group (float mode), and the inter-group alias table (paper Figure 4).
type vertex struct {
	groups []group // non-empty groups, sorted by gid
	// slots maps an alias bucket to the group's index in groups, or -1
	// for the decimal group. It is rebuilt by rebuildInter after every
	// group mutation, so stored indices are never stale.
	slots []int16
	wts   []float64
	inter sampling.AliasTable
	dec   decGroup
	dirty bool // inter table stale; only ever true inside ApplyBatch
}

// findGroup returns the slice position of gid, or the insertion point with
// found == false.
func (vx *vertex) findGroup(gid int16) (int, bool) {
	// Groups are few (≤ K ≈ log2 max bias); a linear scan beats binary
	// search at this size and is branch-predictable.
	for i := range vx.groups {
		if vx.groups[i].gid >= gid {
			return i, vx.groups[i].gid == gid
		}
	}
	return len(vx.groups), false
}

// ensureGroup returns the group for gid, creating an empty one in sorted
// position if needed.
func (vx *vertex) ensureGroup(gid int16) *group {
	i, ok := vx.findGroup(gid)
	if !ok {
		vx.groups = append(vx.groups, group{})
		copy(vx.groups[i+1:], vx.groups[i:])
		vx.groups[i] = group{gid: gid, kind: KindEmpty, one: -1}
	}
	return &vx.groups[i]
}

// compactGroups drops emptied groups.
func (vx *vertex) compactGroups() {
	out := vx.groups[:0]
	for i := range vx.groups {
		if vx.groups[i].count > 0 {
			out = append(out, vx.groups[i])
		}
	}
	vx.groups = out
}

// Sampler is the Bingo engine: the dynamic graph plus the full radix-based
// sampling structure. It is safe for concurrent Sample calls; updates
// require external serialization with respect to sampling (the paper's
// engine likewise orders updates before each walk computation).
type Sampler struct {
	cfg    Config
	lambda float64
	adjs   *adj.Lists
	vx     []vertex

	// cc accumulates group-conversion statistics (Table 4). Batch workers
	// accumulate locally and merge, so only streaming updates touch this
	// directly.
	cc convCounters

	// Phase timers (Config.Instrument): cumulative nanoseconds spent in
	// batched insert/delete versus rebuild, for Figure 13.
	insDelNs, rebuildNs atomic.Int64
}

// PhaseTimes is the Figure 13 batched-update time breakdown.
type PhaseTimes struct {
	InsertDelete, Rebuild time.Duration
}

// PhaseTimes returns cumulative batched-update phase timings (zero unless
// Config.Instrument is set).
func (s *Sampler) PhaseTimes() PhaseTimes {
	return PhaseTimes{
		InsertDelete: time.Duration(s.insDelNs.Load()),
		Rebuild:      time.Duration(s.rebuildNs.Load()),
	}
}

// ResetPhaseTimes zeroes the Figure 13 timers.
func (s *Sampler) ResetPhaseTimes() {
	s.insDelNs.Store(0)
	s.rebuildNs.Store(0)
}

// convCounters tracks group representation transitions (Table 4): conv
// counts conversions from→to; touches counts group visits during updates
// (the denominator of the paper's conversion ratios). Mutators always
// accumulate into a caller-local instance with plain increments (the hot
// path stays atomics-free) and fold it into the sampler's shared counters
// via merge, whose destination adds are atomic — with the concurrent
// wrapper (internal/concurrent), updates on distinct vertices merge in
// parallel.
type convCounters struct {
	conv    [NumKinds][NumKinds]int64
	touches [NumKinds]int64
}

func (c *convCounters) touch(k GroupKind)             { c.touches[k]++ }
func (c *convCounters) conversion(from, to GroupKind) { c.conv[from][to]++ }

// merge atomically folds o into c, skipping zero entries (a streaming op
// touches only a handful of kinds). c may be shared; o must be local to
// the caller.
func (c *convCounters) merge(o *convCounters) {
	for i := range c.conv {
		for j := range c.conv[i] {
			if v := o.conv[i][j]; v != 0 {
				atomic.AddInt64(&c.conv[i][j], v)
			}
		}
		if v := o.touches[i]; v != 0 {
			atomic.AddInt64(&c.touches[i], v)
		}
	}
}

// ConversionStats returns the accumulated conversion matrix and per-kind
// touch counts since construction (or the last ResetConversionStats).
func (s *Sampler) ConversionStats() (conv [NumKinds][NumKinds]int64, touches [NumKinds]int64) {
	for i := range s.cc.conv {
		for j := range s.cc.conv[i] {
			conv[i][j] = atomic.LoadInt64(&s.cc.conv[i][j])
		}
		touches[i] = atomic.LoadInt64(&s.cc.touches[i])
	}
	return conv, touches
}

// ResetConversionStats zeroes the Table 4 counters.
func (s *Sampler) ResetConversionStats() { s.cc = convCounters{} }

// New creates an empty sampler over numVertices vertices.
func New(numVertices int, cfg Config) (*Sampler, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	s := &Sampler{
		cfg:  cfg,
		adjs: adj.New(numVertices, cfg.FloatBias, cfg.IndexThreshold),
		vx:   make([]vertex, numVertices),
	}
	s.lambda = cfg.Lambda
	if cfg.FloatBias && s.lambda == 0 {
		s.lambda = 1024 // no snapshot to calibrate against
	}
	return s, nil
}

// NewFromCSR creates a sampler initialized with a snapshot. In float-bias
// mode the snapshot's integer and fractional bias columns are combined into
// w = Bias + FBias and scaled by λ (auto-calibrated from the snapshot when
// Config.Lambda is zero, targeting W_D/(W_I+W_D) < 1/d as in §4.4).
func NewFromCSR(g *graph.CSR, cfg Config) (*Sampler, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	s := &Sampler{
		cfg:  cfg,
		adjs: adj.New(g.NumVertices(), cfg.FloatBias, cfg.IndexThreshold),
		vx:   make([]vertex, g.NumVertices()),
	}
	s.lambda = cfg.Lambda
	if cfg.FloatBias && s.lambda == 0 {
		maxDeg := 0
		for u := 0; u < g.NumVertices(); u++ {
			if d := g.Degree(graph.VertexID(u)); d > maxDeg {
				maxDeg = d
			}
		}
		s.lambda = float64(bitutil.NextPow2(uint64(maxDeg)))
		if s.lambda < 1024 {
			s.lambda = 1024
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		vid := graph.VertexID(u)
		dsts := g.Neighbors(vid)
		biases := g.Biases(vid)
		fb := g.FBiases(vid)
		s.adjs.Grow(vid, len(dsts))
		for i := range dsts {
			var ib uint64
			var rem float32
			if cfg.FloatBias {
				w := float64(biases[i])
				if fb != nil {
					w += fb[i]
				}
				if err := checkFloatWeight(w, s.lambda); err != nil {
					return nil, fmt.Errorf("edge (%d,%d): %w", u, dsts[i], err)
				}
				ib, rem = splitFloatBias(w, s.lambda)
			} else {
				ib = biases[i]
			}
			if ib == 0 && rem == 0 {
				return nil, fmt.Errorf("%w: edge (%d,%d)", ErrZeroBias, u, dsts[i])
			}
			s.adjs.Append(vid, dsts[i], ib, rem)
		}
		s.bulkBuildVertex(vid)
	}
	return s, nil
}

// bulkBuildVertex constructs a vertex's groups from its adjacency row in
// one pass, classifying each group once (exact Equation 9) — the O(d·K)
// initial construction.
func (s *Sampler) bulkBuildVertex(u graph.VertexID) {
	vx := &s.vx[u]
	biasRow := s.adjs.BiasRow(u)
	d := len(biasRow)
	vx.groups = vx.groups[:0]
	b := s.cfg.RadixBits
	// Count pass.
	counts := map[int16]int32{}
	for _, w := range biasRow {
		n := bitutil.NumDigits(w, b)
		for j := 0; j < n; j++ {
			if v := bitutil.Digit(w, j, b); v != 0 {
				counts[gidOf(j, v, b)]++
			}
		}
	}
	for gid, c := range counts {
		kind := KindRegular
		if s.cfg.Adaptive {
			kind = classify(c, d, s.cfg.AlphaPct, s.cfg.BetaPct)
		}
		g := vx.ensureGroup(gid)
		g.kind = kind
		g.count = c
		g.one = -1
	}
	// Fill pass for representations that carry members.
	for i := range vx.groups {
		g := &vx.groups[i]
		switch g.kind {
		case KindRegular:
			g.list = make([]int32, 0, g.count)
			g.inv = make([]int32, d)
			for k := range g.inv {
				g.inv[k] = -1
			}
		case KindSparse:
			g.list = make([]int32, 0, g.count)
		}
		g.count = 0 // re-accumulated below via add
	}
	for idx := int32(0); idx < int32(d); idx++ {
		w := biasRow[idx]
		n := bitutil.NumDigits(w, b)
		for j := 0; j < n; j++ {
			v := bitutil.Digit(w, j, b)
			if v == 0 {
				continue
			}
			i, _ := vx.findGroup(gidOf(j, v, b))
			g := &vx.groups[i]
			switch g.kind {
			case KindDense:
				g.count++
			case KindOne:
				g.one = idx
				g.count++
			default:
				g.inv0add(idx)
			}
		}
	}
	if s.cfg.FloatBias {
		vx.dec.growInv(d)
		remRow := s.adjs.RemRow(u)
		for idx := int32(0); idx < int32(d); idx++ {
			vx.dec.add(idx, remRow[idx])
		}
	}
	s.rebuildInter(u)
}

// inv0add appends a member during bulk build (list pre-sized, inv already
// allocated for regular groups).
func (g *group) inv0add(idx int32) {
	switch g.kind {
	case KindSparse:
		g.sinv.Add(uint32(idx), g.count)
		g.list = append(g.list, idx)
	case KindRegular:
		g.inv[idx] = g.count
		g.list = append(g.list, idx)
	default:
		panic("core: inv0add on kind without list")
	}
	g.count++
}

// NumVertices returns the vertex-ID space size.
func (s *Sampler) NumVertices() int { return len(s.vx) }

// NumEdges returns the live edge count.
func (s *Sampler) NumEdges() int64 { return s.adjs.NumEdges() }

// Degree returns the out-degree of u.
func (s *Sampler) Degree(u graph.VertexID) int {
	if int(u) >= len(s.vx) {
		return 0
	}
	return s.adjs.Degree(u)
}

// HasEdge reports whether at least one edge u→dst is live (O(1) expected).
func (s *Sampler) HasEdge(u, dst graph.VertexID) bool {
	if int(u) >= len(s.vx) {
		return false
	}
	return s.adjs.HasEdge(u, dst)
}

// Neighbor returns the destination at adjacency slot i of u.
func (s *Sampler) Neighbor(u graph.VertexID, i int32) graph.VertexID {
	return s.adjs.Dst(u, i)
}

// Lambda returns the float-bias amortization factor in use (0 in integer
// mode with no calibration).
func (s *Sampler) Lambda() float64 { return s.lambda }

// Config returns the sampler's effective configuration.
func (s *Sampler) Config() Config { return s.cfg }

// TotalBias returns the total sampling mass at u (scaled mass in float
// mode).
func (s *Sampler) TotalBias(u graph.VertexID) float64 {
	return s.vx[u].inter.Total()
}

func (s *Sampler) ensureVertex(u graph.VertexID) {
	s.adjs.EnsureVertex(u)
	for int(u) >= len(s.vx) {
		s.vx = append(s.vx, vertex{})
	}
}

// Insert adds edge u→dst with an integer bias (streaming path, §4.2:
// append to each radix group, then rebuild the inter-group alias; O(K)).
func (s *Sampler) Insert(u, dst graph.VertexID, bias uint64) error {
	if bias == 0 {
		return fmt.Errorf("%w: insert (%d,%d)", ErrZeroBias, u, dst)
	}
	if s.cfg.FloatBias {
		// Interpret the integer bias as weight w = bias in float mode.
		return s.InsertFloat(u, dst, float64(bias))
	}
	s.ensureVertex(u)
	s.ensureVertex(dst)
	var cc convCounters
	s.insertEdge(u, dst, bias, 0, &cc)
	s.rebuildInter(u)
	s.cc.merge(&cc)
	return nil
}

// InsertFloat adds edge u→dst with a float bias (float mode only).
func (s *Sampler) InsertFloat(u, dst graph.VertexID, w float64) error {
	if !s.cfg.FloatBias {
		return fmt.Errorf("core: InsertFloat on integer-bias sampler")
	}
	if w <= 0 {
		return fmt.Errorf("%w: insert (%d,%d) weight %v", ErrZeroBias, u, dst, w)
	}
	if err := checkFloatWeight(w, s.lambda); err != nil {
		return err
	}
	ib, rem := splitFloatBias(w, s.lambda)
	if ib == 0 && rem == 0 {
		return fmt.Errorf("%w: insert (%d,%d) weight %v underflows λ=%v", ErrZeroBias, u, dst, w, s.lambda)
	}
	s.ensureVertex(u)
	s.ensureVertex(dst)
	var cc convCounters
	s.insertEdge(u, dst, ib, rem, &cc)
	s.rebuildInter(u)
	s.cc.merge(&cc)
	return nil
}

// insertEdge performs the intra-group part of an insertion (paper Figure 5
// step (i): append) without rebuilding the inter-group table.
func (s *Sampler) insertEdge(u, dst graph.VertexID, bias uint64, rem float32, cc *convCounters) {
	idx := s.adjs.Append(u, dst, bias, rem)
	vx := &s.vx[u]
	d := s.adjs.Degree(u)
	// Every regular inverted index (and the decimal one) tracks degree.
	for i := range vx.groups {
		vx.groups[i].growInv(d)
	}
	if s.cfg.FloatBias {
		vx.dec.growInv(d)
		vx.dec.add(idx, rem)
	}
	b := s.cfg.RadixBits
	biasRow := s.adjs.BiasRow(u)
	n := bitutil.NumDigits(bias, b)
	for j := 0; j < n; j++ {
		v := bitutil.Digit(bias, j, b)
		if v == 0 {
			continue
		}
		g := vx.ensureGroup(gidOf(j, v, b))
		cc.touch(g.kind)
		if g.kind == KindOne {
			// Occupied one-element group must grow a representation
			// before accepting a second member.
			target := KindRegular
			if s.cfg.Adaptive {
				target = classify(g.count+1, d, s.cfg.AlphaPct, s.cfg.BetaPct)
				if target == KindOne {
					target = KindSparse
				}
			}
			s.convert(g, target, d, biasRow, cc)
		}
		g.add(idx)
		s.maybeConvertStreaming(g, d, biasRow, cc)
	}
}

// deleteEdge performs the intra-group part of a deletion (paper Figure 6):
// radix-decompose the bias, delete-and-swap in each group, swap-delete the
// adjacency slot, and re-point the moved neighbor's group entries.
// It does not rebuild the inter-group table.
func (s *Sampler) deleteEdge(u graph.VertexID, idx int32, cc *convCounters) {
	vx := &s.vx[u]
	bias := s.adjs.Bias(u, idx)
	rem := s.adjs.Rem(u, idx)
	b := s.cfg.RadixBits
	n := bitutil.NumDigits(bias, b)
	for j := 0; j < n; j++ {
		v := bitutil.Digit(bias, j, b)
		if v == 0 {
			continue
		}
		i, ok := vx.findGroup(gidOf(j, v, b))
		if !ok {
			panic(fmt.Sprintf("core: bias digit (%d,%d) of edge (%d,#%d) has no group", j, v, u, idx))
		}
		cc.touch(vx.groups[i].kind)
		vx.groups[i].remove(idx)
	}
	if s.cfg.FloatBias {
		vx.dec.remove(idx, rem)
	}
	moved := s.adjs.SwapDelete(u, idx)
	if moved >= 0 {
		mbias := s.adjs.Bias(u, idx) // the moved neighbor, now at idx
		mn := bitutil.NumDigits(mbias, b)
		for j := 0; j < mn; j++ {
			v := bitutil.Digit(mbias, j, b)
			if v == 0 {
				continue
			}
			i, ok := vx.findGroup(gidOf(j, v, b))
			if !ok {
				panic(fmt.Sprintf("core: moved neighbor digit (%d,%d) has no group", j, v))
			}
			vx.groups[i].rename(moved, idx)
		}
		if s.cfg.FloatBias {
			vx.dec.rename(moved, idx)
		}
	}
	d := s.adjs.Degree(u)
	biasRow := s.adjs.BiasRow(u)
	for i := range vx.groups {
		vx.groups[i].shrinkInv(d)
		s.maybeConvertStreaming(&vx.groups[i], d, biasRow, cc)
	}
	if s.cfg.FloatBias {
		vx.dec.shrinkInv(d)
	}
	vx.compactGroups()
}

// Delete removes one live instance of edge u→dst (streaming path).
func (s *Sampler) Delete(u, dst graph.VertexID) error {
	if int(u) >= len(s.vx) {
		return fmt.Errorf("%w: vertex %d", ErrVertexRange, u)
	}
	idx := s.adjs.Find(u, dst)
	if idx < 0 {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeNotFound, u, dst)
	}
	var cc convCounters
	s.deleteEdge(u, idx, &cc)
	s.rebuildInter(u)
	s.cc.merge(&cc)
	return nil
}

// convert rebuilds g in the target representation, recording the transition
// for Table 4.
func (s *Sampler) convert(g *group, target GroupKind, d int, biasRow []uint64, cc *convCounters) {
	if g.kind == target {
		return
	}
	cc.conversion(g.kind, target)
	g.convertTo(target, d, biasRow, s.cfg.RadixBits, nil)
}

// maybeConvertStreaming applies the hysteresis conversion policy after a
// streaming update touched g.
func (s *Sampler) maybeConvertStreaming(g *group, d int, biasRow []uint64, cc *convCounters) {
	if g.count == 0 {
		return
	}
	if !s.cfg.Adaptive {
		if g.kind != KindRegular {
			s.convert(g, KindRegular, d, biasRow, cc)
		}
		return
	}
	if target, ok := wantConvert(g.kind, g.count, d, s.cfg.AlphaPct, s.cfg.BetaPct); ok {
		s.convert(g, target, d, biasRow, cc)
	}
}

// rebuildInter rebuilds u's inter-group alias table (paper Figure 5 step
// (ii)). O(number of groups) = O(K).
func (s *Sampler) rebuildInter(u graph.VertexID) {
	vx := &s.vx[u]
	vx.slots = vx.slots[:0]
	vx.wts = vx.wts[:0]
	for i := range vx.groups {
		g := &vx.groups[i]
		if g.count == 0 {
			continue
		}
		vx.slots = append(vx.slots, int16(i))
		vx.wts = append(vx.wts, g.weight(s.cfg.RadixBits))
	}
	if s.cfg.FloatBias && vx.dec.count() > 0 && vx.dec.sum > 0 {
		vx.slots = append(vx.slots, -1)
		vx.wts = append(vx.wts, vx.dec.sum)
	}
	vx.inter.Build(vx.wts)
	vx.dirty = false
}

// Sample draws a neighbor of u with probability bias/Σbias (Theorem 4.1)
// in O(1): stage (i) alias-samples a group, stage (ii) uniform-samples a
// member. The second result is false when u has no sampleable mass.
// Sample is safe for concurrent use by multiple walkers.
func (s *Sampler) Sample(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) {
	if int(u) >= len(s.vx) {
		return 0, false
	}
	vx := &s.vx[u]
	if vx.dirty {
		panic("core: Sample during unfinished batch update")
	}
	if vx.inter.Empty() {
		return 0, false
	}
	// Fast path: a single group needs no inter-group draw.
	slot := 0
	if len(vx.slots) > 1 {
		slot = vx.inter.Sample(r)
	}
	gi := vx.slots[slot]
	var idx int32
	if gi < 0 {
		idx = vx.dec.sample(r, s.adjs.RemRow(u))
	} else {
		idx = vx.groups[gi].sample(r, s.adjs.BiasRow(u), s.cfg.RadixBits)
	}
	return s.adjs.Dst(u, idx), true
}

// SampleSlot is Sample returning the adjacency slot instead of the
// destination, for engines that need the edge's attributes.
func (s *Sampler) SampleSlot(u graph.VertexID, r *xrand.RNG) (int32, bool) {
	if int(u) >= len(s.vx) {
		return -1, false
	}
	vx := &s.vx[u]
	if vx.inter.Empty() {
		return -1, false
	}
	slot := 0
	if len(vx.slots) > 1 {
		slot = vx.inter.Sample(r)
	}
	gi := vx.slots[slot]
	if gi < 0 {
		return vx.dec.sample(r, s.adjs.RemRow(u)), true
	}
	return vx.groups[gi].sample(r, s.adjs.BiasRow(u), s.cfg.RadixBits), true
}

var (
	groupStructSize  = int64(unsafe.Sizeof(group{}))
	vertexStructSize = int64(unsafe.Sizeof(vertex{}))
)

// Footprint returns the total bytes held by the sampler: adjacency,
// group structures, inverted indices, and alias tables. This is the
// quantity reported in the paper's memory columns.
func (s *Sampler) Footprint() int64 {
	total := s.adjs.Footprint()
	total += int64(len(s.vx)) * int64(unsafe.Sizeof(vertex{}))
	for u := range s.vx {
		vx := &s.vx[u]
		total += int64(cap(vx.groups)) * groupStructSize
		for i := range vx.groups {
			total += vx.groups[i].footprint()
		}
		total += int64(cap(vx.slots))*2 + int64(cap(vx.wts))*8
		total += vx.inter.Footprint()
		total += vx.dec.footprint()
	}
	return total
}
