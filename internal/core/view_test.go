package core

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// TestViewMatchesVertexProbabilities checks, for integer and float mode
// over randomized mutation tapes, that a view's encoded distribution is
// exactly the sampler's and that lock-free view draws follow it (1e5-draw
// empirical check on the widest vertex).
func TestViewMatchesVertexProbabilities(t *testing.T) {
	for _, mode := range []struct {
		name  string
		float bool
	}{{"int", false}, {"float", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.FloatBias = mode.float
			s, err := New(64, cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := xrand.New(0xBEEF)
			type pair struct{ u, v graph.VertexID }
			live := map[pair]bool{}
			for i := 0; i < 4000; i++ {
				u := graph.VertexID(r.Intn(64))
				v := graph.VertexID(r.Intn(64))
				p := pair{u, v}
				if live[p] && r.Coin(0.4) {
					if err := s.Delete(u, v); err != nil {
						t.Fatal(err)
					}
					delete(live, p)
					continue
				}
				if live[p] {
					continue
				}
				if mode.float {
					if err := s.InsertFloat(u, v, 0.25+1000*r.Float64()); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := s.Insert(u, v, uint64(1+r.Intn(1<<20))); err != nil {
						t.Fatal(err)
					}
				}
				live[p] = true
			}

			best, bestDeg := graph.VertexID(0), 0
			for u := 0; u < s.NumVertices(); u++ {
				vw := s.ViewOf(graph.VertexID(u))
				want := s.VertexProbabilities(graph.VertexID(u))
				got := vw.Probabilities()
				if len(got) != len(want) {
					t.Fatalf("vertex %d: view has %d sampleable slots, sampler %d", u, len(got), len(want))
				}
				for slot, p := range want {
					if math.Abs(got[slot]-p) > 1e-9 {
						t.Fatalf("vertex %d slot %d: view prob %v, sampler %v", u, slot, got[slot], p)
					}
				}
				if d := s.Degree(graph.VertexID(u)); d > bestDeg {
					best, bestDeg = graph.VertexID(u), d
				}
			}
			if bestDeg < 4 {
				t.Fatalf("tape produced no vertex with degree ≥ 4 (max %d)", bestDeg)
			}

			// Empirical: 1e5 lock-free draws from the widest vertex's view
			// against the exact per-destination probabilities.
			vw := s.ViewOf(best)
			probs := map[graph.VertexID]float64{}
			for slot, p := range s.VertexProbabilities(best) {
				probs[s.Neighbor(best, slot)] += p
			}
			const draws = 100000
			counts := map[graph.VertexID]int{}
			dr := xrand.New(7)
			for i := 0; i < draws; i++ {
				v, ok := vw.Sample(dr)
				if !ok {
					t.Fatalf("view of degree-%d vertex %d reported no mass", bestDeg, best)
				}
				counts[v]++
			}
			for v, c := range counts {
				p, ok := probs[v]
				if !ok {
					t.Fatalf("view sampled %d, not a live neighbor of %d", v, best)
				}
				sigma := math.Sqrt(float64(draws) * p * (1 - p))
				if diff := math.Abs(float64(c) - p*draws); diff > 6*sigma+6 {
					t.Errorf("neighbor %d: %d draws, want %.0f ± %.0f", v, c, p*draws, 6*sigma)
				}
			}
		})
	}
}

// TestViewAliasExact pins the alias fast path's exactness structurally:
// for every vertex on a randomized tape (both bias modes), the probability
// the table implies for each adjacency slot — direct acceptance plus mass
// falling through from other columns' alias pointers, over a uniform
// column pick — must equal the two-stage probabilities to float rounding.
func TestViewAliasExact(t *testing.T) {
	for _, mode := range []struct {
		name  string
		float bool
	}{{"int", false}, {"float", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.FloatBias = mode.float
			s, err := New(48, cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := xrand.New(0xA11A5)
			for i := 0; i < 1500; i++ {
				u := graph.VertexID(r.Intn(48))
				v := graph.VertexID(r.Intn(48))
				if s.HasEdge(u, v) {
					if r.Coin(0.5) {
						if err := s.Delete(u, v); err != nil {
							t.Fatal(err)
						}
					}
					continue
				}
				if mode.float {
					err = s.InsertFloat(u, v, 0.25+500*r.Float64())
				} else {
					err = s.Insert(u, v, uint64(1+r.Intn(1<<18)))
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			for u := 0; u < s.NumVertices(); u++ {
				vw := s.ViewOf(graph.VertexID(u))
				want := vw.Probabilities()
				if vw.Degree() == 0 {
					if vw.AliasCut != nil {
						t.Fatalf("vertex %d: empty view carries an alias table", u)
					}
					continue
				}
				n := vw.Degree()
				if len(vw.AliasCut) != n || len(vw.AliasIdx) != n {
					t.Fatalf("vertex %d: alias table sized %d/%d for degree %d",
						u, len(vw.AliasCut), len(vw.AliasIdx), n)
				}
				implied := make([]float64, n)
				for i := 0; i < n; i++ {
					stay := float64(vw.AliasCut[i]) / (1 << 63) / 2
					implied[i] += stay / float64(n)
					if a := vw.AliasIdx[i]; int(a) != i {
						implied[a] += (1 - stay) / float64(n)
					}
				}
				for i := 0; i < n; i++ {
					if math.Abs(implied[i]-want[int32(i)]) > 1e-9 {
						t.Fatalf("vertex %d slot %d: alias implies %v, exact %v",
							u, i, implied[i], want[int32(i)])
					}
				}
			}
		})
	}
}

// TestViewEmptyAndOutOfRange pins the no-mass contract: views of unknown
// or edgeless vertices sample ok=false instead of panicking.
func TestViewEmptyAndOutOfRange(t *testing.T) {
	s, err := New(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for _, u := range []graph.VertexID{0, 3, 99} {
		vw := s.ViewOf(u)
		if _, ok := vw.Sample(r); ok {
			t.Fatalf("empty vertex %d sampled ok", u)
		}
		if vw.Total() != 0 || vw.Degree() != 0 {
			t.Fatalf("empty vertex %d: total %v degree %d", u, vw.Total(), vw.Degree())
		}
	}
}

// TestViewIsSnapshot pins immutability: mutating the sampler after
// extraction must not change what the view samples.
func TestViewIsSnapshot(t *testing.T) {
	s, err := New(8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 2, 7); err != nil {
		t.Fatal(err)
	}
	vw := s.ViewOf(0)
	if err := s.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 3, 1000); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	seen := map[graph.VertexID]bool{}
	for i := 0; i < 2000; i++ {
		v, ok := vw.Sample(r)
		if !ok {
			t.Fatal("snapshot lost its mass")
		}
		seen[v] = true
	}
	if seen[3] {
		t.Fatal("view sampled an edge inserted after extraction")
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("view no longer samples its frozen edges: %v", seen)
	}
}
