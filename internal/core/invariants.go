package core

import (
	"fmt"
	"math"

	"github.com/bingo-rw/bingo/internal/bitutil"
	"github.com/bingo-rw/bingo/internal/graph"
)

// CheckInvariants verifies the sampler's structural invariants for every
// vertex and returns the first violation. It is exported for the test
// suite and for failure-injection debugging; it runs in O(V + E·K) and is
// not meant for production hot paths.
//
// Checked invariants:
//
//  1. every group's membership equals the set of neighbor indices whose
//     bias has the group's digit (Equations 3/4);
//  2. regular inverted indices are exact inverses of member lists and are
//     sized to the vertex degree;
//  3. sparse hash indices are exact inverses of member lists;
//  4. group kinds are consistent with the adaptive policy (within the
//     streaming hysteresis bands) or all-regular in baseline mode;
//  5. the inter-group alias table covers exactly the non-empty groups and
//     its total equals the vertex's total (scaled) bias mass;
//  6. in float mode, decimal-group membership matches non-zero remainders
//     and the cached sum matches the rem column.
func (s *Sampler) CheckInvariants() error {
	for u := range s.vx {
		if err := s.checkVertex(graph.VertexID(u)); err != nil {
			return fmt.Errorf("vertex %d: %w", u, err)
		}
	}
	return nil
}

func (s *Sampler) checkVertex(u graph.VertexID) error {
	vx := &s.vx[u]
	b := s.cfg.RadixBits
	biasRow := s.adjs.BiasRow(u)
	d := len(biasRow)

	// Recompute expected per-group membership.
	want := map[int16][]int32{}
	for idx := int32(0); idx < int32(d); idx++ {
		w := biasRow[idx]
		n := bitutil.NumDigits(w, b)
		for j := 0; j < n; j++ {
			if v := bitutil.Digit(w, j, b); v != 0 {
				gid := gidOf(j, v, b)
				want[gid] = append(want[gid], idx)
			}
		}
	}
	if len(want) != len(vx.groups) {
		return fmt.Errorf("group count %d, want %d", len(vx.groups), len(want))
	}

	var lastGID int16 = -1
	totalMass := 0.0
	for i := range vx.groups {
		g := &vx.groups[i]
		if g.gid <= lastGID {
			return fmt.Errorf("groups not sorted: gid %d after %d", g.gid, lastGID)
		}
		lastGID = g.gid
		members, ok := want[g.gid]
		if !ok {
			return fmt.Errorf("group %d should not exist", g.gid)
		}
		if g.count != int32(len(members)) {
			return fmt.Errorf("group %d count %d, want %d", g.gid, g.count, len(members))
		}
		if g.count == 0 {
			return fmt.Errorf("group %d empty but present", g.gid)
		}
		totalMass += g.weight(b)

		// Kind consistency.
		if !s.cfg.Adaptive {
			if g.kind != KindRegular {
				return fmt.Errorf("group %d kind %v in baseline mode", g.gid, g.kind)
			}
		} else if g.kind == KindEmpty {
			return fmt.Errorf("group %d has empty kind with count %d", g.gid, g.count)
		}

		// Membership by representation.
		got := g.members(nil, biasRow, b)
		if len(got) != len(members) {
			return fmt.Errorf("group %d members %d, want %d", g.gid, len(got), len(members))
		}
		seen := map[int32]bool{}
		for _, m := range got {
			if m < 0 || int(m) >= d {
				return fmt.Errorf("group %d member %d out of range", g.gid, m)
			}
			if seen[m] {
				return fmt.Errorf("group %d duplicate member %d", g.gid, m)
			}
			seen[m] = true
			if !g.memberOf(biasRow[m], b) {
				return fmt.Errorf("group %d member %d bias %d lacks digit", g.gid, m, biasRow[m])
			}
		}
		switch g.kind {
		case KindRegular:
			if len(g.inv) != d {
				return fmt.Errorf("group %d inv len %d, want %d", g.gid, len(g.inv), d)
			}
			n := int32(0)
			for idx, pos := range g.inv {
				if pos < 0 {
					continue
				}
				n++
				if pos >= g.count || g.list[pos] != int32(idx) {
					return fmt.Errorf("group %d inv[%d]=%d inconsistent", g.gid, idx, pos)
				}
			}
			if n != g.count {
				return fmt.Errorf("group %d inv population %d, want %d", g.gid, n, g.count)
			}
		case KindSparse:
			if g.sinv.Len() != int(g.count) {
				return fmt.Errorf("group %d sinv len %d, want %d", g.gid, g.sinv.Len(), g.count)
			}
			for pos, idx := range g.list {
				if g.sinv.FindAny(uint32(idx)) != int32(pos) {
					return fmt.Errorf("group %d sinv[%d] != %d", g.gid, idx, pos)
				}
			}
		case KindOne:
			if g.count != 1 {
				return fmt.Errorf("group %d one-element with count %d", g.gid, g.count)
			}
		}
	}

	// Decimal group.
	if s.cfg.FloatBias {
		remRow := s.adjs.RemRow(u)
		wantSum := 0.0
		wantMembers := 0
		for idx := int32(0); idx < int32(d); idx++ {
			if remRow[idx] != 0 {
				wantMembers++
				wantSum += float64(remRow[idx])
				if vx.dec.inv[idx] < 0 {
					return fmt.Errorf("decimal member %d missing", idx)
				}
			} else if len(vx.dec.inv) > int(idx) && vx.dec.inv[idx] >= 0 {
				return fmt.Errorf("decimal non-member %d present", idx)
			}
		}
		if int(vx.dec.count()) != wantMembers {
			return fmt.Errorf("decimal count %d, want %d", vx.dec.count(), wantMembers)
		}
		if math.Abs(vx.dec.sum-wantSum) > 1e-3+1e-6*wantSum {
			return fmt.Errorf("decimal sum %v, want %v", vx.dec.sum, wantSum)
		}
		for pos, idx := range vx.dec.list {
			if vx.dec.inv[idx] != int32(pos) {
				return fmt.Errorf("decimal inv[%d] != %d", idx, pos)
			}
		}
		totalMass += vx.dec.sum
	}

	// Inter-group alias table.
	if vx.dirty {
		return fmt.Errorf("dirty outside batch")
	}
	if len(vx.slots) != len(vx.wts) {
		return fmt.Errorf("slots/wts length mismatch")
	}
	if totalMass == 0 {
		if !vx.inter.Empty() {
			return fmt.Errorf("alias non-empty with zero mass")
		}
		return nil
	}
	if math.Abs(vx.inter.Total()-totalMass) > 1e-6*totalMass+1e-9 {
		return fmt.Errorf("alias total %v, want %v", vx.inter.Total(), totalMass)
	}
	// Every slot must reference a live group (or the decimal group).
	for i, gi := range vx.slots {
		if gi < 0 {
			if !s.cfg.FloatBias || vx.dec.count() == 0 {
				return fmt.Errorf("slot %d references empty decimal group", i)
			}
			continue
		}
		if int(gi) >= len(vx.groups) || vx.groups[gi].count == 0 {
			return fmt.Errorf("slot %d references dead group index %d", i, gi)
		}
	}
	return nil
}

// VertexProbabilities returns the exact transition distribution the sampler
// encodes at u, as a map from adjacency slot to probability. Tests compare
// this against Equation 2 and against empirical frequencies.
func (s *Sampler) VertexProbabilities(u graph.VertexID) map[int32]float64 {
	vx := &s.vx[u]
	total := vx.inter.Total()
	out := map[int32]float64{}
	if total == 0 {
		return out
	}
	b := s.cfg.RadixBits
	biasRow := s.adjs.BiasRow(u)
	for i := range vx.groups {
		g := &vx.groups[i]
		j, v := decodeGID(g.gid, b)
		sub := float64(v) * pow2(b*j)
		for _, m := range g.members(nil, biasRow, b) {
			out[m] += sub / total
		}
	}
	if s.cfg.FloatBias {
		remRow := s.adjs.RemRow(u)
		for _, m := range vx.dec.list {
			out[m] += float64(remRow[m]) / total
		}
	}
	return out
}
