package core

import (
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/graph"
)

func TestDynamicAdapterMethods(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if err := s.InsertEdge(2, 3, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates([]graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 5, Bias: 2},
		{Op: graph.OpDelete, Src: 0, Dst: 5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdatesStreaming([]graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 5, Bias: 2},
		{Op: graph.OpDelete, Src: 0, Dst: 5},
		{Op: graph.OpDelete, Src: 0, Dst: 5}, // missing: tolerated
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Config().RadixBits != 1 {
		t.Error("Config accessor wrong")
	}
}

func TestDynamicAdapterFloat(t *testing.T) {
	cfg := floatConfig()
	cfg.Lambda = 16
	s, _ := New(4, cfg)
	if err := s.InsertEdge(0, 1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdatesStreaming([]graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 2, Bias: 0, FBias: 0.25},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseTimesInstrumented(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instrument = true
	s, _ := New(64, cfg)
	var ups []graph.Update
	for i := 0; i < 500; i++ {
		ups = append(ups, graph.Update{Op: graph.OpInsert, Src: graph.VertexID(i % 8), Dst: graph.VertexID(i % 64), Bias: uint64(1 + i%100)})
	}
	if _, err := s.ApplyBatch(ups); err != nil {
		t.Fatal(err)
	}
	ph := s.PhaseTimes()
	if ph.InsertDelete <= 0 || ph.Rebuild <= 0 {
		t.Errorf("phase times not recorded: %+v", ph)
	}
	s.ResetPhaseTimes()
	if got := s.PhaseTimes(); got.InsertDelete != 0 || got.Rebuild != 0 {
		t.Error("reset did not clear timers")
	}
	// Without instrumentation, timers stay zero.
	s2, _ := New(8, DefaultConfig())
	if _, err := s2.ApplyBatch(ups[:50]); err != nil {
		t.Fatal(err)
	}
	if s2.PhaseTimes() != (PhaseTimes{}) {
		t.Error("uninstrumented sampler recorded phases")
	}
	_ = time.Now() // keep time import honest under refactors
}

func TestGroupKindStrings(t *testing.T) {
	want := map[GroupKind]string{
		KindEmpty: "empty", KindDense: "dense", KindOne: "one-element",
		KindSparse: "sparse", KindRegular: "regular",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if GroupKind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

func TestGroupElementRatiosAndSavings(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	ratios := s.GroupElementRatios()
	if len(ratios) == 0 {
		t.Fatal("no ratios")
	}
	for j, r := range ratios {
		if r < 0 || r > 1 {
			t.Errorf("ratio[%d] = %v outside [0,1]", j, r)
		}
	}
	sav := s.AdaptiveSavings()
	var totalBS, totalGA int64
	for _, ks := range sav {
		totalBS += ks.BS
		totalGA += ks.GA
	}
	if totalBS <= 0 || totalGA <= 0 {
		t.Error("savings not populated")
	}
	// Adaptive storage never exceeds the all-regular model for dense and
	// one-element groups (they store strictly less).
	if sav[KindDense].GA > sav[KindDense].BS {
		t.Errorf("dense GA %d > BS %d", sav[KindDense].GA, sav[KindDense].BS)
	}
	if sav[KindOne].GA > sav[KindOne].BS {
		t.Errorf("one-element GA %d > BS %d", sav[KindOne].GA, sav[KindOne].BS)
	}
}

func TestOutOfRangeQueries(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if s.Degree(1000) != 0 {
		t.Error("Degree out of range should be 0")
	}
	if s.HasEdge(1000, 0) {
		t.Error("HasEdge out of range should be false")
	}
}
