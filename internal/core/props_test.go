package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// TestPropertyRandomOpSequences is the main structural fuzzer: random
// streams of streaming inserts/deletes and batches, in every configuration,
// with full invariant checks at every step boundary and an exact
// distribution equivalence check (Theorem 4.1) at the end.
func TestPropertyRandomOpSequences(t *testing.T) {
	configs := map[string]Config{
		"default":  DefaultConfig(),
		"baseline": {RadixBits: 1, Adaptive: false},
		"base4":    {RadixBits: 2, Adaptive: true},
		"base16":   {RadixBits: 4, Adaptive: true},
		"float":    {RadixBits: 1, Adaptive: true, FloatBias: true, Lambda: 64},
		"tightAB":  {RadixBits: 1, Adaptive: true, AlphaPct: 25, BetaPct: 5},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			r := xrand.New(0xfade ^ uint64(len(name)))
			const V = 24
			s, err := New(V, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var pending []graph.Update
			for op := 0; op < 1500; op++ {
				u := graph.VertexID(r.Intn(V))
				switch {
				case r.Float64() < 0.5: // streaming op
					if s.Degree(u) > 0 && r.Float64() < 0.45 {
						dst := s.Neighbor(u, int32(r.Intn(s.Degree(u))))
						if err := s.Delete(u, dst); err != nil {
							t.Fatalf("op %d: %v", op, err)
						}
					} else {
						bias := uint64(1 + r.Intn(4000))
						fb := 0.0
						if cfg.FloatBias {
							fb = r.Float64()
						}
						if cfg.FloatBias {
							if err := s.InsertFloat(u, graph.VertexID(r.Intn(V)), float64(bias)+fb); err != nil {
								t.Fatalf("op %d: %v", op, err)
							}
						} else if err := s.Insert(u, graph.VertexID(r.Intn(V)), bias); err != nil {
							t.Fatalf("op %d: %v", op, err)
						}
					}
				case r.Float64() < 0.8: // queue for batch
					upd := graph.Update{Src: u, Dst: graph.VertexID(r.Intn(V))}
					if s.Degree(u) > 0 && r.Float64() < 0.4 {
						upd.Op = graph.OpDelete
						upd.Dst = s.Neighbor(u, int32(r.Intn(s.Degree(u))))
					} else {
						upd.Op = graph.OpInsert
						upd.Bias = uint64(1 + r.Intn(4000))
						if cfg.FloatBias {
							upd.FBias = r.Float64()
						}
					}
					pending = append(pending, upd)
				default: // flush batch
					if len(pending) > 0 {
						if _, err := s.ApplyBatch(pending); err != nil {
							t.Fatalf("op %d batch: %v", op, err)
						}
						pending = pending[:0]
					}
				}
				if op%150 == 0 {
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if len(pending) > 0 {
				if _, err := s.ApplyBatch(pending); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Theorem 4.1: the encoded distribution must equal Equation 2
			// exactly on every vertex.
			for u := graph.VertexID(0); u < V; u++ {
				if s.Degree(u) == 0 {
					continue
				}
				probs := s.VertexProbabilities(u)
				total := 0.0
				for i := 0; i < s.Degree(u); i++ {
					total += float64(s.adjs.Bias(u, int32(i))) + float64(s.adjs.Rem(u, int32(i)))
				}
				for slot, p := range probs {
					w := float64(s.adjs.Bias(u, slot)) + float64(s.adjs.Rem(u, slot))
					want := w / total
					if math.Abs(p-want) > 1e-6*want+1e-9 {
						t.Fatalf("vertex %d slot %d: p=%v want %v", u, slot, p, want)
					}
				}
			}
		})
	}
}

// TestPropertyClassifyMatchesEquation9 checks the classification function
// against a direct transcription of Equation 9.
func TestPropertyClassifyMatchesEquation9(t *testing.T) {
	f := func(countRaw uint16, dRaw uint16) bool {
		d := int(dRaw%5000) + 1
		count := int32(int(countRaw) % (d + 1))
		got := classify(count, d, 40, 10)
		ratio := float64(count) * 100 / float64(d)
		var want GroupKind
		switch {
		case count == 0:
			want = KindEmpty
		case ratio > 40:
			want = KindDense
		case count == 1:
			want = KindOne
		case ratio < 10:
			want = KindSparse
		default:
			want = KindRegular
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyHysteresisNoThrash verifies the streaming conversion policy
// cannot oscillate: an add followed by a delete (returning to the same
// state) must not perform two conversions.
func TestPropertyHysteresisNoThrash(t *testing.T) {
	s, _ := New(64, DefaultConfig())
	r := xrand.New(77)
	// Build a vertex whose group ratios sit near the α boundary.
	for i := 1; i <= 40; i++ {
		bias := uint64(1)
		if r.Float64() < 0.41 {
			bias = 3
		}
		if err := s.Insert(0, graph.VertexID(i%60), bias); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetConversionStats()
	// Oscillate one edge in and out many times.
	for i := 0; i < 200; i++ {
		if err := s.Insert(0, 61, 2); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(0, 61); err != nil {
			t.Fatal(err)
		}
	}
	conv, _ := s.ConversionStats()
	var total int64
	for i := range conv {
		for j := range conv[i] {
			total += conv[i][j]
		}
	}
	// 400 updates near a boundary must produce far fewer conversions
	// than updates (amortized O(1)); allow a generous margin.
	if total > 40 {
		t.Errorf("%d conversions across 400 boundary-oscillating updates", total)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEmpiricalAfterChurn draws a final empirical sample on a
// randomly churned vertex and chi-square-tests it against the adjacency.
func TestPropertyEmpiricalAfterChurn(t *testing.T) {
	for _, bits := range []int{1, 2} {
		cfg := DefaultConfig()
		cfg.RadixBits = bits
		s, _ := New(40, cfg)
		r := xrand.New(uint64(1000 + bits))
		for op := 0; op < 3000; op++ {
			if s.Degree(3) > 0 && r.Float64() < 0.48 {
				dst := s.Neighbor(3, int32(r.Intn(s.Degree(3))))
				if err := s.Delete(3, dst); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := s.Insert(3, graph.VertexID(r.Intn(40)), uint64(1+r.Intn(2048))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if s.Degree(3) < 3 {
			continue
		}
		want := map[graph.VertexID]float64{}
		total := s.TotalBias(3)
		for i := 0; i < s.Degree(3); i++ {
			want[s.adjs.Dst(3, int32(i))] += float64(s.adjs.Bias(3, int32(i))) / total
		}
		checkVertexDistribution(t, s, 3, want, 150000)
	}
}

// TestGroupConversionRoundTrips converts a group through every
// representation cycle and verifies membership is preserved.
func TestGroupConversionRoundTrips(t *testing.T) {
	const d = 50
	biasRow := make([]uint64, d)
	for i := range biasRow {
		biasRow[i] = uint64(i%7 + 1)
	}
	// Group for bit 1 (gid=1): members are indices with bias bit 1 set
	// (biases 2,3,6,7 mod 7 pattern).
	g := group{gid: 1, kind: KindEmpty, one: -1}
	var want []int32
	for i := int32(0); i < d; i++ {
		if biasRow[i]&2 != 0 {
			want = append(want, i)
		}
	}
	// Start regular.
	g.convertTo(KindRegular, d, biasRow, 1, nil)
	for _, m := range want {
		g.add(m)
	}
	kinds := []GroupKind{KindSparse, KindDense, KindRegular, KindDense, KindSparse, KindRegular}
	for _, k := range kinds {
		g.convertTo(k, d, biasRow, 1, nil)
		got := g.members(nil, biasRow, 1)
		if len(got) != len(want) {
			t.Fatalf("after convert to %v: %d members, want %d", k, len(got), len(want))
		}
		seen := map[int32]bool{}
		for _, m := range got {
			seen[m] = true
		}
		for _, m := range want {
			if !seen[m] {
				t.Fatalf("after convert to %v: member %d lost", k, m)
			}
		}
		if g.count != int32(len(want)) {
			t.Fatalf("after convert to %v: count %d", k, g.count)
		}
	}
}

func TestGroupOneElementConversion(t *testing.T) {
	biasRow := []uint64{4, 1, 1, 1}
	g := group{gid: 2, kind: KindEmpty, one: -1}
	g.add(0) // becomes one-element
	if g.kind != KindOne || g.one != 0 {
		t.Fatalf("kind %v one %d", g.kind, g.one)
	}
	g.convertTo(KindRegular, 4, biasRow, 1, nil)
	if g.inv[0] != 0 || g.list[0] != 0 {
		t.Fatal("one→regular lost the member")
	}
	g.convertTo(KindOne, 4, biasRow, 1, nil)
	if g.one != 0 || g.count != 1 {
		t.Fatal("regular→one lost the member")
	}
}

func TestGroupSampleUniformity(t *testing.T) {
	// Intra-group sampling must be uniform for every representation.
	const d = 40
	biasRow := make([]uint64, d)
	for i := range biasRow {
		if i%2 == 0 {
			biasRow[i] = 1
		} else {
			biasRow[i] = 2
		}
	}
	members := make(map[int32]bool)
	g := group{gid: 0, kind: KindEmpty, one: -1}
	g.convertTo(KindRegular, d, biasRow, 1, nil)
	for i := int32(0); i < d; i += 2 {
		g.add(i)
		members[i] = true
	}
	r := xrand.New(31)
	for _, k := range []GroupKind{KindRegular, KindSparse, KindDense} {
		g.convertTo(k, d, biasRow, 1, nil)
		counts := map[int32]int{}
		const draws = 40000
		for i := 0; i < draws; i++ {
			m := g.sample(r, biasRow, 1)
			if !members[m] {
				t.Fatalf("%v sampled non-member %d", k, m)
			}
			counts[m]++
		}
		want := float64(draws) / float64(len(members))
		for m, c := range counts {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("%v: member %d count %d, want ~%.0f", k, m, c, want)
			}
		}
	}
}

// TestPropertyPow2 cross-checks the exact power-of-two helper against the
// shift-based ground truth.
func TestPropertyPow2(t *testing.T) {
	for e := 0; e < 63; e++ {
		if pow2(e) != float64(uint64(1)<<uint(e)) {
			t.Fatalf("pow2(%d) = %v", e, pow2(e))
		}
	}
	if pow2(64) != math.Ldexp(1, 64) || pow2(120) != math.Ldexp(1, 120) {
		t.Error("large pow2 wrong")
	}
}

func TestGIDRoundTrip(t *testing.T) {
	for _, b := range []int{1, 2, 3, 4, 8} {
		base := 1 << uint(b)
		for j := 0; j < 10; j++ {
			for v := uint64(1); v < uint64(base); v++ {
				gid := gidOf(j, v, b)
				gj, gv := decodeGID(gid, b)
				if gj != j || gv != v {
					t.Fatalf("b=%d: gid(%d,%d)=%d decodes to (%d,%d)", b, j, v, gid, gj, gv)
				}
			}
		}
	}
}
