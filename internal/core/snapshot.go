package core

import (
	"github.com/bingo-rw/bingo/internal/graph"
)

// Snapshot materializes the current graph state as an immutable CSR — one
// discrete snapshot G_t of the paper's dynamic-graph model (Definition
// 2.1). In float mode, weights are exported as integer part Bias plus
// fractional FBias in *unscaled* user units (the λ scaling is undone), so
// NewFromCSR(snapshot, cfg) reconstructs an equivalent sampler.
func (s *Sampler) Snapshot() *graph.CSR {
	n := s.NumVertices()
	csr := &graph.CSR{
		Offsets: make([]int64, n+1),
		Dst:     make([]graph.VertexID, 0, s.NumEdges()),
		Bias:    make([]uint64, 0, s.NumEdges()),
	}
	if s.cfg.FloatBias {
		csr.FBias = make([]float64, 0, s.NumEdges())
	}
	for u := 0; u < n; u++ {
		vid := graph.VertexID(u)
		d := s.adjs.Degree(vid)
		for i := int32(0); i < int32(d); i++ {
			csr.Dst = append(csr.Dst, s.adjs.Dst(vid, i))
			if s.cfg.FloatBias {
				w := (float64(s.adjs.Bias(vid, i)) + float64(s.adjs.Rem(vid, i))) / s.lambda
				ib := uint64(w)
				csr.Bias = append(csr.Bias, ib)
				csr.FBias = append(csr.FBias, w-float64(ib))
			} else {
				csr.Bias = append(csr.Bias, s.adjs.Bias(vid, i))
			}
		}
		csr.Offsets[u+1] = int64(len(csr.Dst))
	}
	return csr
}
