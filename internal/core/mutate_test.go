package core

import (
	"errors"
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestUpdateBias(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	// Rewrite (2,1) from bias 5 to bias 8: groups 2^0/2^2 lose it,
	// group 2^3 gains it.
	if err := s.UpdateBias(2, 1, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Degree(2) != 3 {
		t.Fatalf("degree changed: %d", s.Degree(2))
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 8.0 / 15, 4: 4.0 / 15, 5: 3.0 / 15,
	}, 120000)
}

func TestUpdateBiasSharedDigits(t *testing.T) {
	// 5 (101b) → 7 (111b): only bit 1 changes; bits 0 and 2 stay put.
	s := runningExample(t, DefaultConfig())
	if err := s.UpdateBias(2, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 7.0 / 14, 4: 4.0 / 14, 5: 3.0 / 14,
	}, 100000)
}

func TestUpdateBiasErrors(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if err := s.UpdateBias(2, 9, 5); !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("absent edge: %v", err)
	}
	if err := s.UpdateBias(2, 1, 0); !errors.Is(err, ErrZeroBias) {
		t.Errorf("zero bias: %v", err)
	}
	if err := s.UpdateBias(99, 1, 5); !errors.Is(err, ErrVertexRange) {
		t.Errorf("bad vertex: %v", err)
	}
}

func TestUpdateBiasFloat(t *testing.T) {
	cfg := floatConfig()
	cfg.Lambda = 10
	s := paperFloatExample(t, cfg)
	if err := s.UpdateBiasFloat(2, 4, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 0.554 + 0.1 + 0.320
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 0.554 / total, 4: 0.1 / total, 5: 0.320 / total,
	}, 120000)
	if err := s.UpdateBiasFloat(2, 4, -1); err == nil {
		t.Error("negative weight accepted")
	}
	si, _ := New(4, DefaultConfig())
	if err := si.UpdateBiasFloat(0, 1, 0.5); err == nil {
		t.Error("float update on integer sampler accepted")
	}
}

func TestUpdateBiasRandomized(t *testing.T) {
	s, _ := New(32, DefaultConfig())
	r := xrand.New(41)
	for i := 1; i < 30; i++ {
		if err := s.Insert(0, graph.VertexID(i), uint64(1+r.Intn(1000))); err != nil {
			t.Fatal(err)
		}
	}
	for op := 0; op < 2000; op++ {
		dst := graph.VertexID(1 + r.Intn(29))
		if err := s.UpdateBias(0, dst, uint64(1+r.Intn(4000))); err != nil {
			t.Fatal(err)
		}
		if op%200 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final distribution check against adjacency.
	want := map[graph.VertexID]float64{}
	total := s.TotalBias(0)
	for i := 0; i < s.Degree(0); i++ {
		want[s.adjs.Dst(0, int32(i))] += float64(s.adjs.Bias(0, int32(i))) / total
	}
	checkVertexDistribution(t, s, 0, want, 120000)
}

func TestDeleteVertex(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if err := s.DeleteVertex(2); err != nil {
		t.Fatal(err)
	}
	if s.Degree(2) != 0 {
		t.Fatalf("degree %d after DeleteVertex", s.Degree(2))
	}
	if _, ok := s.Sample(2, xrand.New(1)); ok {
		t.Error("sampled from deleted vertex")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// In-edges remain (documented); vertex 1 still points at 2.
	if !s.HasEdge(1, 2) {
		t.Error("in-edge removed by out-only deletion")
	}
	// The vertex can be repopulated.
	if err := s.Insert(2, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteVertex(999); !errors.Is(err, ErrVertexRange) {
		t.Errorf("bad vertex: %v", err)
	}
}

func TestDeleteVertexEverywhere(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if err := s.DeleteVertexEverywhere(2); err != nil {
		t.Fatal(err)
	}
	if s.Degree(2) != 0 {
		t.Error("out-edges remain")
	}
	for v := graph.VertexID(0); int(v) < s.NumVertices(); v++ {
		if s.HasEdge(v, 2) {
			t.Errorf("in-edge %d→2 remains", v)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteVertexFloat(t *testing.T) {
	cfg := floatConfig()
	cfg.Lambda = 10
	s := paperFloatExample(t, cfg)
	if err := s.DeleteVertex(2); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFloat(2, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
