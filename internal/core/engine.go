package core

import "github.com/bingo-rw/bingo/internal/graph"

// This file adapts Sampler to the walk.Dynamic engine interface, so Bingo
// plugs into the same harness as the baselines. (The interface itself lives
// in internal/walk; the methods here just normalize signatures.)

// InsertEdge adds edge u→dst. In float mode the weight is bias + fbias;
// in integer mode fbias must be zero mass (it is ignored).
func (s *Sampler) InsertEdge(u, dst graph.VertexID, bias uint64, fbias float64) error {
	if s.cfg.FloatBias {
		return s.InsertFloat(u, dst, float64(bias)+fbias)
	}
	return s.Insert(u, dst, bias)
}

// DeleteEdge removes one live instance of u→dst.
func (s *Sampler) DeleteEdge(u, dst graph.VertexID) error {
	return s.Delete(u, dst)
}

// ApplyUpdates ingests a batch via the §5.2 batched path, ignoring
// not-found deletions (the tolerant semantics the evaluation uses).
func (s *Sampler) ApplyUpdates(ups []graph.Update) error {
	_, err := s.ApplyBatch(ups)
	return err
}

// ApplyUpdatesStreaming ingests the same events one by one through the
// streaming path — the "Streaming" series of Figure 12. Not-found
// deletions are skipped.
func (s *Sampler) ApplyUpdatesStreaming(ups []graph.Update) error {
	for _, up := range ups {
		var err error
		switch up.Op {
		case graph.OpInsert:
			err = s.InsertEdge(up.Src, up.Dst, up.Bias, up.FBias)
		case graph.OpDelete:
			err = s.DeleteEdge(up.Src, up.Dst)
			if err != nil {
				err = nil // tolerate missing edges, as ApplyBatch does
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
