package core

import (
	"fmt"

	"github.com/bingo-rw/bingo/internal/bitutil"
	"github.com/bingo-rw/bingo/internal/graph"
)

// This file implements the "other graph updates" of §4.2: "deleting a
// vertex, and updating the edge bias, can be either implemented with
// insertion and/or deletion operations or supported straightforwardly".
// Bias updates are supported straightforwardly — the edge keeps its
// adjacency slot and only its group memberships change, still O(K) — and
// vertex deletion drains the vertex's own row in one pass.

// UpdateBias rewrites the bias of one live instance of edge u→dst.
// Only the groups on which the old and new biases differ are touched.
func (s *Sampler) UpdateBias(u, dst graph.VertexID, newBias uint64) error {
	if s.cfg.FloatBias {
		return s.UpdateBiasFloat(u, dst, float64(newBias))
	}
	if newBias == 0 {
		return fmt.Errorf("%w: update (%d,%d)", ErrZeroBias, u, dst)
	}
	if int(u) >= len(s.vx) {
		return fmt.Errorf("%w: vertex %d", ErrVertexRange, u)
	}
	idx := s.adjs.Find(u, dst)
	if idx < 0 {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeNotFound, u, dst)
	}
	s.rewriteBias(u, idx, newBias, 0)
	return nil
}

// UpdateBiasFloat is UpdateBias for float-mode weights.
func (s *Sampler) UpdateBiasFloat(u, dst graph.VertexID, w float64) error {
	if !s.cfg.FloatBias {
		return fmt.Errorf("core: UpdateBiasFloat on integer-bias sampler")
	}
	if w <= 0 {
		return fmt.Errorf("%w: update (%d,%d) weight %v", ErrZeroBias, u, dst, w)
	}
	if err := checkFloatWeight(w, s.lambda); err != nil {
		return err
	}
	if int(u) >= len(s.vx) {
		return fmt.Errorf("%w: vertex %d", ErrVertexRange, u)
	}
	idx := s.adjs.Find(u, dst)
	if idx < 0 {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeNotFound, u, dst)
	}
	ib, rem := splitFloatBias(w, s.lambda)
	s.rewriteBias(u, idx, ib, rem)
	return nil
}

// rewriteBias swaps the digit-group memberships of slot idx from its old
// bias to newBias, updating only the differing groups, then rebuilds the
// inter-group alias once.
func (s *Sampler) rewriteBias(u graph.VertexID, idx int32, newBias uint64, newRem float32) {
	vx := &s.vx[u]
	var cc convCounters
	b := s.cfg.RadixBits
	oldBias := s.adjs.Bias(u, idx)
	oldRem := s.adjs.Rem(u, idx)
	d := s.adjs.Degree(u)
	biasRow := s.adjs.BiasRow(u)

	maxDigits := bitutil.NumDigits(oldBias, b)
	if n := bitutil.NumDigits(newBias, b); n > maxDigits {
		maxDigits = n
	}
	// Remove memberships the new bias loses. The adjacency bias must
	// still be the old value while dense groups are consulted, so
	// removals happen before the column write.
	for j := 0; j < maxDigits; j++ {
		ov := bitutil.Digit(oldBias, j, b)
		nv := bitutil.Digit(newBias, j, b)
		if ov == nv || ov == 0 {
			continue
		}
		i, ok := vx.findGroup(gidOf(j, ov, b))
		if !ok {
			panic(fmt.Sprintf("core: bias rewrite: missing group (%d,%d)", j, ov))
		}
		cc.touch(vx.groups[i].kind)
		vx.groups[i].remove(idx)
	}
	s.adjs.SetBias(u, idx, newBias, newRem)
	// Add memberships the new bias gains.
	for j := 0; j < maxDigits; j++ {
		ov := bitutil.Digit(oldBias, j, b)
		nv := bitutil.Digit(newBias, j, b)
		if ov == nv || nv == 0 {
			continue
		}
		g := vx.ensureGroup(gidOf(j, nv, b))
		cc.touch(g.kind)
		if g.kind == KindOne {
			target := KindRegular
			if s.cfg.Adaptive {
				target = classify(g.count+1, d, s.cfg.AlphaPct, s.cfg.BetaPct)
				if target == KindOne {
					target = KindSparse
				}
			}
			s.convert(g, target, d, biasRow, &cc)
		}
		g.growInv(d)
		g.add(idx)
	}
	if s.cfg.FloatBias {
		vx.dec.growInv(d)
		if oldRem != 0 {
			vx.dec.remove(idx, oldRem)
		}
		if newRem != 0 {
			vx.dec.add(idx, newRem)
		}
	}
	for i := range vx.groups {
		s.maybeConvertStreaming(&vx.groups[i], d, s.adjs.BiasRow(u), &cc)
	}
	vx.compactGroups()
	s.rebuildInter(u)
	s.cc.merge(&cc)
}

// DeleteVertex removes every out-edge of u in one pass (O(d + K)) and
// leaves the vertex present with degree zero. In-edges pointing at u are
// the callers' to remove (the engine keeps no reverse adjacency, like the
// 1-D-partitioned original); DeleteVertexEverywhere performs the full
// O(V + E) sweep when the caller has no in-edge record.
func (s *Sampler) DeleteVertex(u graph.VertexID) error {
	if int(u) >= len(s.vx) {
		return fmt.Errorf("%w: vertex %d", ErrVertexRange, u)
	}
	vx := &s.vx[u]
	d := s.adjs.Degree(u)
	for i := int32(0); i < int32(d); i++ {
		s.adjs.Unindex(u, i)
	}
	s.adjs.Truncate(u, 0)
	for i := range vx.groups {
		vx.groups[i].releaseStorage()
		vx.groups[i].count = 0
		vx.groups[i].kind = KindEmpty
	}
	vx.groups = vx.groups[:0]
	vx.dec = decGroup{}
	s.rebuildInter(u)
	return nil
}

// DeleteVertexEverywhere removes u's out-edges and scans every other
// vertex for in-edges u←v, deleting them too. O(V + E); intended for
// administrative removal, not hot paths.
func (s *Sampler) DeleteVertexEverywhere(u graph.VertexID) error {
	if err := s.DeleteVertex(u); err != nil {
		return err
	}
	for v := range s.vx {
		vid := graph.VertexID(v)
		if vid == u {
			continue
		}
		for s.adjs.Find(vid, u) >= 0 {
			if err := s.Delete(vid, u); err != nil {
				return err
			}
		}
	}
	return nil
}
