package core

// Targeted tests for the sparse-group representation, which only arises on
// higher-degree vertices (|G| < β%·d with |G| > 1) and therefore deserves
// its own exercises beyond the randomized fuzzers.

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// buildSparseVertex creates vertex 0 with 200 bias-1 edges and 6 bias-2
// edges: the bit-1 group holds 6/206 ≈ 2.9% < β → sparse.
func buildSparseVertex(t *testing.T) (*Sampler, []graph.VertexID) {
	t.Helper()
	s, err := New(300, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		if err := s.Insert(0, graph.VertexID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	heavy := make([]graph.VertexID, 0, 6)
	for i := 201; i <= 206; i++ {
		if err := s.Insert(0, graph.VertexID(i), 2); err != nil {
			t.Fatal(err)
		}
		heavy = append(heavy, graph.VertexID(i))
	}
	return s, heavy
}

func sparseGroupOf(t *testing.T, s *Sampler, u graph.VertexID) *group {
	t.Helper()
	vx := &s.vx[u]
	for i := range vx.groups {
		if vx.groups[i].kind == KindSparse {
			return &vx.groups[i]
		}
	}
	t.Fatal("no sparse group present")
	return nil
}

func TestSparseGroupForms(t *testing.T) {
	s, _ := buildSparseVertex(t)
	g := sparseGroupOf(t, s, 0)
	if g.count != 6 {
		t.Errorf("sparse group count %d, want 6", g.count)
	}
	if g.sinv.Len() != 6 {
		t.Errorf("sparse hash index holds %d, want 6", g.sinv.Len())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Memory claim: the sparse index must be far smaller than a d-sized
	// regular inverted index would be.
	if g.sinv.Footprint() >= int64(s.Degree(0))*4 {
		t.Errorf("sparse index %dB not smaller than regular %dB",
			g.sinv.Footprint(), s.Degree(0)*4)
	}
}

func TestSparseGroupStreamingOps(t *testing.T) {
	s, heavy := buildSparseVertex(t)
	// Delete a sparse-group member (exercises sinv delete-and-swap).
	if err := s.Delete(0, heavy[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete a *light* edge whose adjacency swap moves a heavy edge into
	// its slot (exercises sinv rename). Repeat enough times that a heavy
	// tail element is moved with high probability.
	r := xrand.New(4)
	for k := 0; k < 50; k++ {
		dst := s.Neighbor(0, int32(r.Intn(s.Degree(0))))
		if err := s.Delete(0, dst); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	// Distribution still matches adjacency.
	want := map[graph.VertexID]float64{}
	total := s.TotalBias(0)
	for i := 0; i < s.Degree(0); i++ {
		want[s.adjs.Dst(0, int32(i))] += float64(s.adjs.Bias(0, int32(i))) / total
	}
	checkVertexDistribution(t, s, 0, want, 120000)
}

func TestSparseGroupBatchDeletes(t *testing.T) {
	s, heavy := buildSparseVertex(t)
	var ups []graph.Update
	for _, h := range heavy[:3] {
		ups = append(ups, graph.Update{Op: graph.OpDelete, Src: 0, Dst: h})
	}
	// Plus a slab of light deletions to force two-phase movement around
	// the sparse members.
	for i := 1; i <= 40; i++ {
		ups = append(ups, graph.Update{Op: graph.OpDelete, Src: 0, Dst: graph.VertexID(i)})
	}
	res, err := s.ApplyBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 43 {
		t.Fatalf("deleted %d, want 43", res.Deleted)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, h := range heavy[:3] {
		if s.HasEdge(0, h) {
			t.Errorf("heavy edge %d survived", h)
		}
	}
	for _, h := range heavy[3:] {
		if !s.HasEdge(0, h) {
			t.Errorf("heavy edge %d lost", h)
		}
	}
}

func TestSparseToOneElementCollapse(t *testing.T) {
	s, heavy := buildSparseVertex(t)
	// Remove heavy members until one remains: sparse → one-element.
	for _, h := range heavy[:5] {
		if err := s.Delete(0, h); err != nil {
			t.Fatal(err)
		}
	}
	vx := &s.vx[0]
	foundOne := false
	for i := range vx.groups {
		if vx.groups[i].kind == KindSparse {
			t.Error("sparse group did not collapse")
		}
		if vx.groups[i].kind == KindOne {
			foundOne = true
		}
	}
	if !foundOne {
		t.Error("no one-element group after collapse")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseGrowsToRegular(t *testing.T) {
	s, _ := buildSparseVertex(t)
	// Add heavy edges until the bit-1 ratio exceeds β/hysteresis: the
	// sparse group must convert to regular (or beyond) without loss.
	for i := 230; i < 280; i++ {
		if err := s.Insert(0, graph.VertexID(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	vx := &s.vx[0]
	for i := range vx.groups {
		if vx.groups[i].kind == KindSparse {
			// ratio = 56/256 ≈ 22% — far above β; must have converted.
			t.Errorf("group %d still sparse at high ratio", vx.groups[i].gid)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
