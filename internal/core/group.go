package core

import (
	"fmt"

	"github.com/bingo-rw/bingo/internal/bitutil"
	"github.com/bingo-rw/bingo/internal/ihash"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// group is one radix group of one vertex: the set of neighbor indices whose
// bias has digit value v at digit position j, where the flattened group id
// is gid = j·(B-1) + (v-1) for radix base B = 2^b. Every member contributes
// the identical sub-bias v·B^j, so intra-group sampling is uniform
// (Equation 6) and the group's total weight is count·v·B^j (Equation 4).
//
// The representation varies by kind (paper §5.1):
//
//	dense:   count only; sampling rejects over the raw neighbor list
//	one:     the single member inline
//	sparse:  member list + compact hash inverted index (member → pos)
//	regular: member list + full inverted index (neighbor idx → pos)
type group struct {
	gid   int16
	kind  GroupKind
	count int32
	one   int32     // KindOne member
	list  []int32   // KindSparse / KindRegular members
	inv   []int32   // KindRegular: inv[neighborIdx] = pos, -1 otherwise
	sinv  ihash.Map // KindSparse: member → pos
}

// decodeGID splits a flattened group id into digit position and value.
func decodeGID(gid int16, radixBits int) (j int, v uint64) {
	perPos := int16(1)<<uint(radixBits) - 1
	return int(gid / perPos), uint64(gid%perPos) + 1
}

// gidOf returns the flattened group id for digit position j with value v.
func gidOf(j int, v uint64, radixBits int) int16 {
	perPos := int16(1)<<uint(radixBits) - 1
	return int16(j)*perPos + int16(v) - 1
}

// weight returns the group's total sub-bias mass, count·v·2^(b·j), exactly
// representable in float64 for all biases below 2^53.
func (g *group) weight(radixBits int) float64 {
	j, v := decodeGID(g.gid, radixBits)
	return float64(g.count) * float64(v) * pow2(radixBits*j)
}

func pow2(e int) float64 {
	if e < 63 {
		return float64(uint64(1) << uint(e))
	}
	f := 1.0
	for ; e >= 62; e -= 62 {
		f *= float64(uint64(1) << 62)
	}
	return f * float64(uint64(1)<<uint(e))
}

// memberOf reports whether a bias participates in this group.
func (g *group) memberOf(bias uint64, radixBits int) bool {
	j, v := decodeGID(g.gid, radixBits)
	return bitutil.Digit(bias, j, radixBits) == v
}

// add inserts member idx. The caller must have converted the group to a
// representation that accepts another member (KindOne can hold at most one).
func (g *group) add(idx int32) {
	switch g.kind {
	case KindEmpty:
		g.kind = KindOne
		g.one = idx
	case KindDense:
		// count-only
	case KindOne:
		panic("core: add to full one-element group without conversion")
	case KindSparse:
		g.sinv.Add(uint32(idx), g.count)
		g.list = append(g.list, idx)
	case KindRegular:
		g.inv[idx] = g.count
		g.list = append(g.list, idx)
	}
	g.count++
}

// remove deletes member idx via delete-and-swap (paper §4.2 step iii).
func (g *group) remove(idx int32) {
	switch g.kind {
	case KindDense:
		// count-only
	case KindOne:
		if g.one != idx {
			panic(fmt.Sprintf("core: one-element group %d holds %d, removing %d", g.gid, g.one, idx))
		}
		g.kind = KindEmpty
	case KindSparse:
		pos := g.sinv.FindAny(uint32(idx))
		if pos < 0 {
			panic(fmt.Sprintf("core: member %d missing from sparse group %d", idx, g.gid))
		}
		last := g.count - 1
		tail := g.list[last]
		if pos != last {
			g.list[pos] = tail
			g.sinv.Replace(uint32(tail), last, pos)
		}
		g.sinv.Remove(uint32(idx), pos)
		g.list = g.list[:last]
	case KindRegular:
		pos := g.inv[idx]
		if pos < 0 {
			panic(fmt.Sprintf("core: member %d missing from regular group %d", idx, g.gid))
		}
		last := g.count - 1
		tail := g.list[last]
		if pos != last {
			g.list[pos] = tail
			g.inv[tail] = pos
		}
		g.inv[idx] = -1
		g.list = g.list[:last]
	default:
		panic("core: remove from empty group")
	}
	g.count--
	if g.count == 0 && g.kind != KindEmpty {
		g.releaseStorage()
		g.kind = KindEmpty
	}
}

// rename re-points member old to new after an adjacency swap-delete moved
// the neighbor from slot old to slot new. Membership and position are
// unchanged; only the identity is rewritten.
func (g *group) rename(old, new int32) {
	switch g.kind {
	case KindDense:
		// identity-free
	case KindOne:
		if g.one != old {
			panic(fmt.Sprintf("core: rename %d→%d but one-element group holds %d", old, new, g.one))
		}
		g.one = new
	case KindSparse:
		pos := g.sinv.FindAny(uint32(old))
		if pos < 0 {
			panic(fmt.Sprintf("core: rename of non-member %d in sparse group %d", old, g.gid))
		}
		g.list[pos] = new
		g.sinv.Remove(uint32(old), pos)
		g.sinv.Add(uint32(new), pos)
	case KindRegular:
		pos := g.inv[old]
		if pos < 0 {
			panic(fmt.Sprintf("core: rename of non-member %d in regular group %d", old, g.gid))
		}
		g.list[pos] = new
		g.inv[new] = pos
		g.inv[old] = -1
	default:
		panic("core: rename in empty group")
	}
}

// sample draws a member uniformly (Equation 6). Dense groups reject over
// the raw bias column; the acceptance rate is count/d, which the adaptive
// thresholds keep above α%·hysteresis (paper: "the rejection ratio is below
// (1-α%) = 60%").
func (g *group) sample(r *xrand.RNG, biasRow []uint64, radixBits int) int32 {
	switch g.kind {
	case KindOne:
		return g.one
	case KindSparse, KindRegular:
		return g.list[r.Intn(int(g.count))]
	case KindDense:
		j, v := decodeGID(g.gid, radixBits)
		d := len(biasRow)
		for {
			i := r.Intn(d)
			if bitutil.Digit(biasRow[i], j, radixBits) == v {
				return int32(i)
			}
		}
	default:
		panic("core: sample from empty group")
	}
}

// members appends the group's member set to dst. Dense groups are
// enumerated by scanning the bias column.
func (g *group) members(dst []int32, biasRow []uint64, radixBits int) []int32 {
	switch g.kind {
	case KindEmpty:
	case KindOne:
		dst = append(dst, g.one)
	case KindSparse, KindRegular:
		dst = append(dst, g.list...)
	case KindDense:
		j, v := decodeGID(g.gid, radixBits)
		for i, b := range biasRow {
			if bitutil.Digit(b, j, radixBits) == v {
				dst = append(dst, int32(i))
			}
		}
	}
	return dst
}

// releaseStorage drops representation-specific storage, keeping count.
func (g *group) releaseStorage() {
	g.list = nil
	g.inv = nil
	g.sinv = ihash.Map{}
	g.one = -1
}

// convertTo rebuilds the group in the target representation. d is the
// current vertex degree (regular inverted indices are d-sized); biasRow is
// needed to enumerate members when converting out of dense. scratch is
// reusable member storage owned by the caller.
func (g *group) convertTo(target GroupKind, d int, biasRow []uint64, radixBits int, scratch []int32) []int32 {
	if target == g.kind {
		return scratch
	}
	scratch = g.members(scratch[:0], biasRow, radixBits)
	if int32(len(scratch)) != g.count {
		panic(fmt.Sprintf("core: group %d count %d but %d members", g.gid, g.count, len(scratch)))
	}
	g.releaseStorage()
	g.kind = target
	switch target {
	case KindEmpty:
		if g.count != 0 {
			panic("core: converting populated group to empty")
		}
	case KindDense:
		// count-only
	case KindOne:
		if g.count != 1 {
			panic(fmt.Sprintf("core: converting %d-member group to one-element", g.count))
		}
		g.one = scratch[0]
	case KindSparse:
		g.list = append(g.list, scratch...)
		for pos, idx := range g.list {
			g.sinv.Add(uint32(idx), int32(pos))
		}
	case KindRegular:
		g.list = append(g.list, scratch...)
		g.inv = make([]int32, d)
		for i := range g.inv {
			g.inv[i] = -1
		}
		for pos, idx := range g.list {
			g.inv[idx] = int32(pos)
		}
	}
	return scratch
}

// growInv extends a regular group's inverted index to degree d (new slots
// are non-members). Insertion calls this for every regular group before
// appending the new neighbor index.
func (g *group) growInv(d int) {
	if g.kind != KindRegular {
		return
	}
	for len(g.inv) < d {
		g.inv = append(g.inv, -1)
	}
}

// shrinkInv truncates a regular group's inverted index after the adjacency
// row shrank to degree d. All dropped slots must already be non-members.
func (g *group) shrinkInv(d int) {
	if g.kind != KindRegular || len(g.inv) <= d {
		return
	}
	g.inv = g.inv[:d]
}

// footprint returns the bytes attributable to this group's structures,
// excluding the struct header itself (counted per vertex).
func (g *group) footprint() int64 {
	return int64(cap(g.list))*4 + int64(cap(g.inv))*4 + g.sinv.Footprint()
}
