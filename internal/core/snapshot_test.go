package core

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := runningExample(t, DefaultConfig())
	if err := s.Insert(2, 3, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(2, 1); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.NumEdges() != s.NumEdges() {
		t.Fatalf("snapshot edges %d, engine %d", snap.NumEdges(), s.NumEdges())
	}
	s2, err := NewFromCSR(snap, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Per-destination mass must match between original and round trip.
	for u := graph.VertexID(0); int(u) < s.NumVertices(); u++ {
		a, b := destMass(s, u), destMass(s2, u)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: destination sets differ", u)
		}
		for dst, m := range a {
			if b[dst] != m {
				t.Fatalf("vertex %d dst %d: %d vs %d", u, dst, m, b[dst])
			}
		}
	}
}

func TestSnapshotFloatRoundTrip(t *testing.T) {
	cfg := floatConfig()
	cfg.Lambda = 10
	s := paperFloatExample(t, cfg)
	snap := s.Snapshot()
	if snap.FBias == nil {
		t.Fatal("float snapshot lost fractional column")
	}
	s2, err := NewFromCSR(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Total unscaled weight must round trip to float32 precision.
	want := 0.554 + 0.726 + 0.320
	got := s2.TotalBias(2) / s2.Lambda()
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("round-trip total %v, want %v", got, want)
	}
}

func TestSnapshotAfterHeavyChurn(t *testing.T) {
	s, _ := New(32, DefaultConfig())
	r := xrand.New(50)
	for op := 0; op < 3000; op++ {
		u := graph.VertexID(r.Intn(32))
		if s.Degree(u) > 0 && r.Float64() < 0.45 {
			_ = s.Delete(u, s.Neighbor(u, int32(r.Intn(s.Degree(u)))))
		} else {
			_ = s.Insert(u, graph.VertexID(r.Intn(32)), uint64(1+r.Intn(500)))
		}
	}
	snap := s.Snapshot()
	if snap.NumEdges() != s.NumEdges() {
		t.Fatalf("edges %d vs %d", snap.NumEdges(), s.NumEdges())
	}
	stats := snap.ComputeStats()
	if stats.Vertices != s.NumVertices() {
		t.Error("vertex count mismatch")
	}
}
