package core

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// FuzzSamplerMutate drives random insert/delete/update-bias/sample
// sequences, decoded from the fuzz byte tape, against the full invariant
// checker — in integer and float mode side by side. Any state corruption
// the structural invariants can express (group membership, inverted
// indices, alias totals, decimal group, adaptive-kind policy) becomes a
// crash the fuzzer can minimize. Seed corpus lives under
// testdata/fuzz/FuzzSamplerMutate.
func FuzzSamplerMutate(f *testing.F) {
	f.Add([]byte("\x00\x01\x02\x40\x00\x02\x03\x7f\x02\x01\x02\x00\x04\x01\x00\x00"))
	f.Add([]byte("insert-heavy tape with deletes 0123456789"))
	f.Add([]byte{0, 0, 1, 255, 0, 0, 1, 254, 2, 0, 1, 0, 2, 0, 1, 0, 3, 0, 1, 9})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const nV = 12
		intS, err := New(nV, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		fcfg := DefaultConfig()
		fcfg.FloatBias = true
		fcfg.Lambda = 512
		fltS, err := New(nV, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		r := xrand.New(0xF022)

		ops := 0
		for i := 0; i+3 < len(tape); i += 4 {
			op := tape[i] % 5
			u := graph.VertexID(tape[i+1] % nV)
			v := graph.VertexID(tape[i+2] % nV)
			bias := uint64(tape[i+3]%200) + 1
			w := float64(bias) + float64(tape[i+2])/256
			switch op {
			case 0, 1: // insert (weighted toward growth)
				if err := intS.Insert(u, v, bias); err != nil {
					t.Fatalf("op %d: int insert (%d,%d,%d): %v", i, u, v, bias, err)
				}
				if err := fltS.InsertFloat(u, v, w); err != nil {
					t.Fatalf("op %d: float insert (%d,%d,%v): %v", i, u, v, w, err)
				}
			case 2: // delete (tolerate missing)
				ie := intS.Delete(u, v)
				fe := fltS.Delete(u, v)
				if (ie == nil) != (fe == nil) {
					t.Fatalf("op %d: delete (%d,%d) disagrees: int=%v float=%v", i, u, v, ie, fe)
				}
			case 3: // update bias (tolerate missing)
				intS.UpdateBias(u, v, bias)   //nolint:errcheck
				fltS.UpdateBiasFloat(u, v, w) //nolint:errcheck
			case 4: // sample; result must be a live neighbor
				if got, ok := intS.Sample(u, r); ok && !intS.HasEdge(u, got) {
					t.Fatalf("op %d: int sampled dead edge (%d,%d)", i, u, got)
				}
				if got, ok := fltS.Sample(u, r); ok && !fltS.HasEdge(u, got) {
					t.Fatalf("op %d: float sampled dead edge (%d,%d)", i, u, got)
				}
			}
			ops++
			if ops%16 == 0 {
				if err := intS.CheckInvariants(); err != nil {
					t.Fatalf("op %d: int invariants: %v", i, err)
				}
				if err := fltS.CheckInvariants(); err != nil {
					t.Fatalf("op %d: float invariants: %v", i, err)
				}
			}
		}
		if err := intS.CheckInvariants(); err != nil {
			t.Fatalf("final int invariants: %v", err)
		}
		if err := fltS.CheckInvariants(); err != nil {
			t.Fatalf("final float invariants: %v", err)
		}
		if ii, ff := intS.NumEdges(), fltS.NumEdges(); ii != ff {
			t.Fatalf("edge counts diverged: int %d, float %d", ii, ff)
		}
	})
}
