package core

// Edge-case and failure-injection tests: extreme biases, overflow guards,
// pathological group shapes, and adversarial churn patterns.

import (
	"strings"
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestExtremeBiases(t *testing.T) {
	s, _ := New(8, DefaultConfig())
	// A 2^62 bias forces a 63-group vertex alongside tiny biases.
	if err := s.Insert(0, 1, 1<<62); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 3, (1<<62)-1); err != nil { // 62 set bits
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The giant biases must dominate; dst 2 should essentially never win.
	r := xrand.New(1)
	hits2 := 0
	for i := 0; i < 10000; i++ {
		v, ok := s.Sample(0, r)
		if !ok {
			t.Fatal("no sample")
		}
		if v == 2 {
			hits2++
		}
	}
	if hits2 > 2 {
		t.Errorf("unit-bias edge sampled %d/10000 times against 2^62 biases", hits2)
	}
	// Updates on the wide vertex still work.
	if err := s.Delete(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFloatOverflowGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FloatBias = true
	cfg.Lambda = 1 << 20
	s, _ := New(4, cfg)
	err := s.InsertFloat(0, 1, 1e18)
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("overflowing weight accepted: %v", err)
	}
	// Batch path must reject it too, before mutating.
	_, err = s.ApplyBatch([]graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 1, Bias: 1 << 60, FBias: 0},
	})
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("overflowing batch weight accepted: %v", err)
	}
	if s.NumEdges() != 0 {
		t.Error("failed inserts left edges behind")
	}
	// CSR construction path.
	g, _ := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1, Bias: 1 << 60}})
	if _, err := NewFromCSR(g, cfg); err == nil {
		t.Error("overflowing CSR accepted")
	}
}

func TestSelfLoops(t *testing.T) {
	s, _ := New(3, DefaultConfig())
	if err := s.Insert(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	self := 0
	for i := 0; i < 20000; i++ {
		if v, _ := s.Sample(0, r); v == 0 {
			self++
		}
	}
	if self < 9000 || self > 11000 {
		t.Errorf("self-loop sampled %d/20000, want ≈10000", self)
	}
	if err := s.Delete(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestManyDuplicateEdgesChurn(t *testing.T) {
	// A pathological multigraph: hundreds of parallel edges to the same
	// destination, churned heavily through both paths.
	s, _ := New(4, DefaultConfig())
	for i := 0; i < 300; i++ {
		if err := s.Insert(0, 1, uint64(1+i%7)); err != nil {
			t.Fatal(err)
		}
	}
	var ups []graph.Update
	for i := 0; i < 150; i++ {
		ups = append(ups, graph.Update{Op: graph.OpDelete, Src: 0, Dst: 1})
	}
	res, err := s.ApplyBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 150 || res.NotFound != 0 {
		t.Fatalf("result %+v", res)
	}
	if s.Degree(0) != 150 {
		t.Fatalf("degree %d, want 150", s.Degree(0))
	}
	for i := 0; i < 150; i++ {
		if err := s.Delete(0, 1); err != nil {
			t.Fatalf("streaming delete %d: %v", i, err)
		}
	}
	if s.Degree(0) != 0 || s.HasEdge(0, 1) {
		t.Error("duplicates not fully drained")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchDeleteMoreThanLive(t *testing.T) {
	s, _ := New(4, DefaultConfig())
	for i := 0; i < 5; i++ {
		if err := s.Insert(0, 1, 3); err != nil {
			t.Fatal(err)
		}
	}
	var ups []graph.Update
	for i := 0; i < 9; i++ {
		ups = append(ups, graph.Update{Op: graph.OpDelete, Src: 0, Dst: 1})
	}
	res, err := s.ApplyBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 5 || res.NotFound != 4 {
		t.Fatalf("result %+v", res)
	}
	if s.Degree(0) != 0 {
		t.Error("over-deletion left edges")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAlternatingGrowShrink(t *testing.T) {
	// Degree oscillates across the adaptive thresholds repeatedly; the
	// structure must stay consistent and memory must not grow without
	// bound.
	s, _ := New(64, DefaultConfig())
	r := xrand.New(31)
	var peak int64
	for round := 0; round < 30; round++ {
		for i := 0; i < 200; i++ {
			if err := s.Insert(0, graph.VertexID(1+r.Intn(63)), uint64(1+r.Intn(127))); err != nil {
				t.Fatal(err)
			}
		}
		for s.Degree(0) > 5 {
			dst := s.Neighbor(0, int32(r.Intn(s.Degree(0))))
			if err := s.Delete(0, dst); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if f := s.Footprint(); f > peak {
			peak = f
		}
	}
	// After 30 identical cycles the footprint must have stabilized well
	// below an unbounded-growth trajectory (30 rounds × 200 edges would
	// dwarf this if slices leaked).
	if final := s.Footprint(); final > peak {
		t.Errorf("footprint still growing: final %d > peak %d", final, peak)
	}
}

func TestHubWithUniformPowerOfTwoBias(t *testing.T) {
	// All biases 2^k for one k: exactly one group, kind dense, and the
	// single-group sampling fast path must stay uniform.
	s, _ := New(1030, DefaultConfig())
	for i := 1; i <= 1024; i++ {
		if err := s.Insert(0, graph.VertexID(i), 8); err != nil {
			t.Fatal(err)
		}
	}
	vx := &s.vx[0]
	if len(vx.groups) != 1 || vx.groups[0].kind != KindDense {
		t.Fatalf("groups %d kind %v", len(vx.groups), vx.groups[0].kind)
	}
	r := xrand.New(77)
	counts := make([]int, 1025)
	for i := 0; i < 200000; i++ {
		v, _ := s.Sample(0, r)
		counts[v]++
	}
	for i := 1; i <= 1024; i++ {
		if counts[i] < 100 || counts[i] > 300 {
			t.Fatalf("vertex %d sampled %d times, want ≈195", i, counts[i])
		}
	}
}

func TestRadixBase256(t *testing.T) {
	// The widest supported base: 8 bits per digit.
	cfg := DefaultConfig()
	cfg.RadixBits = 8
	s, err := New(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range []uint64{5, 4, 3, 1000, 70000} {
		if err := s.Insert(0, graph.VertexID(i+1), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 5.0 + 4 + 3 + 70000
	probs := s.VertexProbabilities(0)
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum %v", sum)
	}
	_ = total
}

func TestSplitFloatReconstruction(t *testing.T) {
	r := xrand.New(9)
	for i := 0; i < 10000; i++ {
		lambda := float64(uint64(1) << uint(4+r.Intn(16)))
		w := r.Float64() * 1e6
		if w == 0 {
			continue
		}
		if err := checkFloatWeight(w, lambda); err != nil {
			continue
		}
		ib, rem := splitFloatBias(w, lambda)
		got := (float64(ib) + float64(rem)) / lambda
		if diff := got - w; diff > 1e-6*w+1e-9 || diff < -1e-6*w-1e-9 {
			t.Fatalf("λ=%v w=%v reconstructs to %v", lambda, w, got)
		}
	}
}
