package core

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func floatConfig() Config {
	cfg := DefaultConfig()
	cfg.FloatBias = true
	return cfg
}

// paperFloatExample is Figure 7's vertex 2: edges (2,1,0.554), (2,4,0.726),
// (2,5,0.320), with λ=10 in the paper (we let λ default and only check the
// resulting distribution, which is λ-invariant).
func paperFloatExample(t *testing.T, cfg Config) *Sampler {
	t.Helper()
	s, err := New(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		dst graph.VertexID
		w   float64
	}{{1, 0.554}, {4, 0.726}, {5, 0.320}} {
		if err := s.InsertFloat(2, e.dst, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestFloatDistributionFigure7(t *testing.T) {
	s := paperFloatExample(t, floatConfig())
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 0.554 + 0.726 + 0.320
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 0.554 / total, 4: 0.726 / total, 5: 0.320 / total,
	}, 150000)
}

func TestFloatExplicitLambda10(t *testing.T) {
	// λ=10 exactly as in Figure 7: 0.554→(5, .54), 0.726→(7, .26),
	// 0.320→(3, .20).
	cfg := floatConfig()
	cfg.Lambda = 10
	s := paperFloatExample(t, cfg)
	if s.Lambda() != 10 {
		t.Fatalf("lambda = %v", s.Lambda())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Integer parts should be 5, 7, 3.
	wantI := map[graph.VertexID]uint64{1: 5, 4: 7, 5: 3}
	for i := 0; i < s.Degree(2); i++ {
		dst := s.adjs.Dst(2, int32(i))
		if got := s.adjs.Bias(2, int32(i)); got != wantI[dst] {
			t.Errorf("dst %d integer part %d, want %d", dst, got, wantI[dst])
		}
		rem := s.adjs.Rem(2, int32(i))
		if rem < 0 || rem >= 1 {
			t.Errorf("dst %d remainder %v out of [0,1)", dst, rem)
		}
	}
	// Decimal group must hold all three members (all have remainders).
	if got := s.vx[2].dec.count(); got != 3 {
		t.Errorf("decimal members %d, want 3", got)
	}
	total := 0.554 + 0.726 + 0.320
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 0.554 / total, 4: 0.726 / total, 5: 0.320 / total,
	}, 150000)
}

func TestFloatDeletion(t *testing.T) {
	cfg := floatConfig()
	cfg.Lambda = 10
	s := paperFloatExample(t, cfg)
	if err := s.Delete(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 0.554 + 0.320
	checkVertexDistribution(t, s, 2, map[graph.VertexID]float64{
		1: 0.554 / total, 5: 0.320 / total,
	}, 120000)
}

func TestFloatAutoLambdaFromCSR(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Bias: 0, FBias: 0.5},
		{Src: 0, Dst: 2, Bias: 1, FBias: 0.25},
		{Src: 0, Dst: 3, Bias: 2, FBias: 0},
	}
	g, err := graph.FromEdges(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFromCSR(g, floatConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Lambda() < 1024 {
		t.Errorf("auto lambda %v below floor", s.Lambda())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 0.5 + 1.25 + 2.0
	checkVertexDistribution(t, s, 0, map[graph.VertexID]float64{
		1: 0.5 / total, 2: 1.25 / total, 3: 2.0 / total,
	}, 150000)
}

func TestFloatDecimalOnlyEdges(t *testing.T) {
	// Weights below 1/λ have zero integer part: all mass in the decimal
	// group, which must still sample correctly.
	cfg := floatConfig()
	cfg.Lambda = 16
	s, _ := New(8, cfg)
	ws := map[graph.VertexID]float64{1: 0.01, 2: 0.02, 3: 0.03}
	for dst, w := range ws {
		if err := s.InsertFloat(0, dst, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkVertexDistribution(t, s, 0, map[graph.VertexID]float64{
		1: 1.0 / 6, 2: 2.0 / 6, 3: 3.0 / 6,
	}, 150000)
}

func TestFloatMixedMagnitudes(t *testing.T) {
	// Large integer parts alongside tiny fractional-only edges.
	cfg := floatConfig()
	cfg.Lambda = 64
	s, _ := New(8, cfg)
	ws := map[graph.VertexID]float64{1: 100.7, 2: 0.004, 3: 55.25, 4: 1.0}
	total := 0.0
	for dst, w := range ws {
		if err := s.InsertFloat(0, dst, w); err != nil {
			t.Fatal(err)
		}
		total += w
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := map[graph.VertexID]float64{}
	for dst, w := range ws {
		want[dst] = w / total
	}
	checkVertexDistribution(t, s, 0, want, 200000)
}

func TestFloatBatch(t *testing.T) {
	cfg := floatConfig()
	cfg.Lambda = 32
	s, _ := New(16, cfg)
	ups := []graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 1, Bias: 2, FBias: 0.5},
		{Op: graph.OpInsert, Src: 0, Dst: 2, Bias: 0, FBias: 0.75},
		{Op: graph.OpInsert, Src: 0, Dst: 3, Bias: 5, FBias: 0.0},
	}
	if _, err := s.ApplyBatch(ups); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 2.5 + 0.75 + 5.0
	checkVertexDistribution(t, s, 0, map[graph.VertexID]float64{
		1: 2.5 / total, 2: 0.75 / total, 3: 5.0 / total,
	}, 150000)
	// Delete the decimal-only edge in a batch.
	if _, err := s.ApplyBatch([]graph.Update{{Op: graph.OpDelete, Src: 0, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total = 2.5 + 5.0
	checkVertexDistribution(t, s, 0, map[graph.VertexID]float64{
		1: 2.5 / total, 3: 5.0 / total,
	}, 120000)
}

func TestFloatChurnKeepsSumAccurate(t *testing.T) {
	// Heavy insert/delete churn must not let the decimal sum drift
	// (batch rebuild recomputes it).
	cfg := floatConfig()
	cfg.Lambda = 16
	s, _ := New(64, cfg)
	r := xrand.New(5)
	var live []graph.VertexID
	for round := 0; round < 60; round++ {
		var ups []graph.Update
		for i := 0; i < 20; i++ {
			if len(live) == 0 || r.Float64() < 0.6 {
				dst := graph.VertexID(1 + r.Intn(63))
				w := r.Float64()*3 + 0.001
				ib, fb := uint64(w), w-float64(uint64(w))
				ups = append(ups, graph.Update{Op: graph.OpInsert, Src: 0, Dst: dst, Bias: ib, FBias: fb})
				live = append(live, dst)
			} else {
				i := r.Intn(len(live))
				ups = append(ups, graph.Update{Op: graph.OpDelete, Src: 0, Dst: live[i]})
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		if _, err := s.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// NotFound deletions are possible (duplicate dst collapse), so just
	// validate structural health plus distribution on vertex 0.
	if s.Degree(0) > 0 {
		want := map[graph.VertexID]float64{}
		total := 0.0
		for i := 0; i < s.Degree(0); i++ {
			w := float64(s.adjs.Bias(0, int32(i))) + float64(s.adjs.Rem(0, int32(i)))
			want[s.adjs.Dst(0, int32(i))] += w
			total += w
		}
		for dst := range want {
			want[dst] /= total
		}
		checkVertexDistribution(t, s, 0, want, 150000)
	}
}

func TestSplitFloatBias(t *testing.T) {
	ip, rem := splitFloatBias(0.554, 10)
	if ip != 5 || math.Abs(float64(rem)-0.54) > 1e-6 {
		t.Errorf("split(0.554, 10) = %d, %v", ip, rem)
	}
	ip, rem = splitFloatBias(3.0, 2)
	if ip != 6 || rem != 0 {
		t.Errorf("split(3.0, 2) = %d, %v", ip, rem)
	}
	ip, rem = splitFloatBias(0.001, 16)
	if ip != 0 || rem <= 0 {
		t.Errorf("split(0.001, 16) = %d, %v", ip, rem)
	}
}

func TestDecimalGroupFallbackScan(t *testing.T) {
	// Force pathological rejection behavior: many members with near-zero
	// remainders plus one dominant one. The capped rejection must fall
	// back to the exact scan and still produce the right distribution.
	dg := &decGroup{}
	rem := make([]float32, 101)
	dg.growInv(101)
	for i := int32(0); i < 100; i++ {
		rem[i] = 1e-4
		dg.add(i, rem[i])
	}
	rem[100] = 0.9
	dg.add(100, rem[100])
	r := xrand.New(9)
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if dg.sample(r, rem) == 100 {
			hits++
		}
	}
	wantP := 0.9 / (0.9 + 100*1e-4)
	got := float64(hits) / draws
	if math.Abs(got-wantP) > 0.02 {
		t.Errorf("dominant member frequency %v, want %v", got, wantP)
	}
}
