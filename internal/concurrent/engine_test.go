package concurrent_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// The wrapper must plug into every harness the sequential engines do.
var (
	_ walk.Engine     = (*concurrent.Engine)(nil)
	_ walk.Dynamic    = (*concurrent.Engine)(nil)
	_ walk.LiveEngine = (*concurrent.Engine)(nil)
)

func newEngine(t *testing.T, numVertices int, ccfg core.Config, cfg concurrent.Config) *concurrent.Engine {
	t.Helper()
	e, err := concurrent.New(numVertices, ccfg, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestBasicOpsVisible(t *testing.T) {
	e := newEngine(t, 8, core.DefaultConfig(), concurrent.Config{})
	if err := e.Insert(0, 1, 3); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := e.Insert(0, 2, 1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if !e.HasEdge(0, 1) || !e.HasEdge(0, 2) {
		t.Fatalf("inserted edges not visible")
	}
	if d := e.Degree(0); d != 2 {
		t.Fatalf("Degree(0) = %d, want 2", d)
	}
	if n := e.NumEdges(); n != 2 {
		t.Fatalf("NumEdges = %d, want 2", n)
	}
	r := xrand.New(7)
	counts := map[graph.VertexID]int{}
	for i := 0; i < 4000; i++ {
		v, ok := e.Sample(0, r)
		if !ok {
			t.Fatalf("Sample failed")
		}
		counts[v]++
	}
	// Bias 3:1 — crude band check (±5σ of Binomial(4000, 0.75)).
	if c := counts[1]; c < 2850 || c > 3140 {
		t.Fatalf("bias-3 destination sampled %d/4000, want ≈3000", c)
	}
	if err := e.Delete(0, 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if e.HasEdge(0, 1) {
		t.Fatalf("deleted edge still visible")
	}
	if err := e.UpdateBias(0, 2, 9); err != nil {
		t.Fatalf("UpdateBias: %v", err)
	}
	e.Quiesce(func(s *core.Sampler) {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

func TestSampleSeq(t *testing.T) {
	e := newEngine(t, 4, core.DefaultConfig(), concurrent.Config{})
	if err := e.Insert(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	buf := make([]graph.VertexID, 16)
	n := e.SampleSeq(0, buf, xrand.New(1))
	if n != 16 {
		t.Fatalf("SampleSeq drew %d, want 16", n)
	}
	for _, v := range buf {
		if v != 1 {
			t.Fatalf("SampleSeq drew %d, want 1", v)
		}
	}
	if n := e.SampleSeq(2, buf, xrand.New(1)); n != 0 {
		t.Fatalf("SampleSeq on empty vertex drew %d, want 0", n)
	}
}

func TestEpochProtocol(t *testing.T) {
	e := newEngine(t, 8, core.DefaultConfig(), concurrent.Config{Stripes: 4})
	ep := e.Epoch(3)
	if ep&1 != 0 {
		t.Fatalf("idle epoch %d is odd", ep)
	}
	if !e.Validate(3, ep) {
		t.Fatalf("Validate failed with no mutation")
	}
	if err := e.Insert(3, 4, 2); err != nil {
		t.Fatal(err)
	}
	if e.Validate(3, ep) {
		t.Fatalf("Validate passed across a mutation of the stripe")
	}
	ep2 := e.Epoch(3)
	if ep2&1 != 0 || ep2 == ep {
		t.Fatalf("post-mutation epoch %d (was %d): want even and advanced", ep2, ep)
	}
}

// TestVertexSpaceGrowth exercises the stop-the-world growth path while
// readers hammer existing vertices.
func TestVertexSpaceGrowth(t *testing.T) {
	e := newEngine(t, 2, core.DefaultConfig(), concurrent.Config{Stripes: 8})
	if err := e.Insert(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Sample(0, r)
				e.Degree(1)
			}
		}(uint64(w))
	}
	for i := 2; i < 300; i++ {
		if err := e.Insert(graph.VertexID(i), graph.VertexID(i-1), uint64(i%7+1)); err != nil {
			t.Fatalf("growth insert %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := e.NumVertices(); n != 300 {
		t.Fatalf("NumVertices = %d, want 300", n)
	}
	e.Quiesce(func(s *core.Sampler) {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants after growth: %v", err)
		}
	})
}

func TestWalkFromRunsUnderMutation(t *testing.T) {
	e := newEngine(t, 64, core.DefaultConfig(), concurrent.Config{Stripes: 2, MaxStepRetries: 3})
	// Ring so walks never dead-end.
	for i := 0; i < 64; i++ {
		if err := e.Insert(graph.VertexID(i), graph.VertexID((i+1)%64), 1); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn extra edges on a few vertices: epochs keep moving
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := graph.VertexID(i % 64)
			if err := e.Insert(u, graph.VertexID((i+2)%64), 2); err != nil {
				t.Errorf("churn insert: %v", err)
				return
			}
			if err := e.Delete(u, graph.VertexID((i+2)%64)); err != nil {
				t.Errorf("churn delete: %v", err)
				return
			}
		}
	}()
	r := xrand.New(11)
	totalRetries := 0
	for q := 0; q < 200; q++ {
		path, retries := e.WalkFrom(graph.VertexID(q%64), 40, r, nil)
		totalRetries += retries
		if len(path) != 41 {
			t.Fatalf("walk %d length %d, want 41 (ring has no dead ends)", q, len(path))
		}
		for i := 1; i < len(path); i++ {
			// Every hop must be a ring successor or a churn edge (+2).
			d := (int(path[i]) - int(path[i-1]) + 64) % 64
			if d != 1 && d != 2 {
				t.Fatalf("walk %d hop %d: %d→%d is not an edge", q, i, path[i-1], path[i])
			}
		}
	}
	close(stop)
	wg.Wait()
	t.Logf("epoch retries across 200 walks: %d", totalRetries)
}

func TestApplyBatchMatchesSequential(t *testing.T) {
	ups := []graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 1, Bias: 5},
		{Op: graph.OpInsert, Src: 0, Dst: 2, Bias: 3},
		{Op: graph.OpInsert, Src: 1, Dst: 2, Bias: 7},
		{Op: graph.OpDelete, Src: 0, Dst: 1},
		{Op: graph.OpDelete, Src: 3, Dst: 0}, // not found
	}
	e := newEngine(t, 4, core.DefaultConfig(), concurrent.Config{})
	res, err := e.ApplyBatch(append([]graph.Update(nil), ups...))
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if res.Inserted != 3 || res.Deleted != 1 || res.NotFound != 1 {
		t.Fatalf("BatchResult = %+v, want {3 1 1}", res)
	}
	seq, err := core.New(4, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.ApplyBatch(append([]graph.Update(nil), ups...)); err != nil {
		t.Fatal(err)
	}
	if got, want := e.NumEdges(), seq.NumEdges(); got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	e.Quiesce(func(s *core.Sampler) {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

func TestApplyBatchValidation(t *testing.T) {
	e := newEngine(t, 4, core.DefaultConfig(), concurrent.Config{})
	_, err := e.ApplyBatch([]graph.Update{{Op: graph.OpInsert, Src: 0, Dst: 1, Bias: 0}})
	if err == nil {
		t.Fatalf("zero-bias batch accepted")
	}
	if n := e.NumEdges(); n != 0 {
		t.Fatalf("failed batch mutated the graph: %d edges", n)
	}
}

// TestDeleteDoesNotGrowVertexSpace: a garbage Src in a delete (or bias
// update) must fail fast, not stop the world to allocate millions of empty
// vertex rows.
func TestDeleteDoesNotGrowVertexSpace(t *testing.T) {
	e := newEngine(t, 4, core.DefaultConfig(), concurrent.Config{})
	if err := e.Delete(50_000_000, 2); !errors.Is(err, core.ErrVertexRange) {
		t.Fatalf("Delete on unseen vertex: err = %v, want ErrVertexRange", err)
	}
	if err := e.UpdateBias(50_000_000, 2, 7); !errors.Is(err, core.ErrVertexRange) {
		t.Fatalf("UpdateBias on unseen vertex: err = %v, want ErrVertexRange", err)
	}
	if n := e.NumVertices(); n != 4 {
		t.Fatalf("vertex space grew to %d on a failed delete, want 4", n)
	}
	// ApplyStream tolerates the same garbage delete without growing.
	if err := e.ApplyStream([]graph.Update{{Op: graph.OpDelete, Src: 50_000_000, Dst: 2}}); err != nil {
		t.Fatalf("ApplyStream: %v", err)
	}
	if n := e.NumVertices(); n != 4 {
		t.Fatalf("vertex space grew to %d via ApplyStream delete, want 4", n)
	}
}

// TestInvalidInsertDoesNotGrowVertexSpace: a zero-bias (or otherwise
// invalid) insert naming a huge vertex ID must be rejected before the
// stop-the-world growth path runs.
func TestInvalidInsertDoesNotGrowVertexSpace(t *testing.T) {
	e := newEngine(t, 4, core.DefaultConfig(), concurrent.Config{})
	if err := e.Insert(50_000_000, 0, 0); err == nil {
		t.Fatalf("zero-bias insert accepted")
	}
	if err := e.InsertEdge(50_000_000, 0, 0, 0); err == nil {
		t.Fatalf("zero-bias InsertEdge accepted")
	}
	if n := e.NumVertices(); n != 4 {
		t.Fatalf("vertex space grew to %d on a rejected insert, want 4", n)
	}

	fcfg := core.DefaultConfig()
	fcfg.FloatBias = true
	fcfg.Lambda = 1024
	fe := newEngine(t, 4, fcfg, concurrent.Config{})
	if err := fe.InsertFloat(50_000_000, 0, math.NaN()); err == nil {
		t.Fatalf("NaN-weight insert accepted")
	}
	if err := fe.InsertFloat(50_000_000, 0, -1); err == nil {
		t.Fatalf("negative-weight insert accepted")
	}
	if n := fe.NumVertices(); n != 4 {
		t.Fatalf("float vertex space grew to %d on a rejected insert, want 4", n)
	}
}

// Underflow float weights must be rejected by validation, before growth.
func TestUnderflowInsertDoesNotGrowVertexSpace(t *testing.T) {
	fcfg := core.DefaultConfig()
	fcfg.FloatBias = true
	fcfg.Lambda = 1024
	fe := newEngine(t, 4, fcfg, concurrent.Config{})
	if err := fe.InsertFloat(50_000_000, 0, 1e-300); err == nil {
		t.Fatalf("λ-underflow insert accepted")
	}
	if n := fe.NumVertices(); n != 4 {
		t.Fatalf("vertex space grew to %d on an underflow insert, want 4", n)
	}
}
