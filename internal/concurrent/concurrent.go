// Package concurrent layers walk-while-ingest concurrency control on top of
// core.Sampler: the Engine wrapper lets any number of walker goroutines
// sample while writer goroutines insert, delete, and batch-apply updates —
// the production serving scenario of a live graph (Wharf's snapshot-style
// walk/ingest overlap, KnightKing's concurrent walker fleet).
//
// # Locking model
//
// Vertices are hashed onto a fixed array of lock stripes (default
// GOMAXPROCS×8, rounded up to a power of two). Every operation on vertex u
// acquires stripe(u): readers (Sample, SampleSeq, Degree, HasEdge) take the
// stripe's RWMutex in read mode, mutators (Insert, Delete, UpdateBias,
// ApplyBatch) in write mode. Because an update to u's row touches only u's
// row — the invariant internal/core's own batch parallelism relies on, plus
// atomic global counters — operations on vertices in distinct stripes never
// contend, and readers of the same stripe share it.
//
// The one piece of genuinely global mutable state is the vertex-ID space
// itself (the samplers' top-level slices grow when an update references an
// unseen vertex). Growth is a stop-the-world event: the grower acquires
// every stripe in ascending order, grows, and releases. Operations hold at
// most one stripe at a time, so this cannot deadlock.
//
// # Epoch protocol
//
// Each stripe carries a seqlock-style epoch counter: a writer increments it
// to odd after acquiring the stripe and back to even before releasing.
// Every individual read is already linearizable via the stripe lock; the
// epochs exist for *cross-call* consistency. A walker that reads the epoch,
// performs a step, and revalidates knows whether the stripe mutated inside
// its step window — Step retries the draw in that case (bounded by
// MaxStepRetries), so a multi-call step sequence (e.g. a sample followed by
// a HasEdge probe against the same vertex) can be made effectively
// atomic-or-retried instead of observing two different graph versions.
//
// # View versions
//
// Cached views validate against a separate, finer-grained counter: a
// per-*vertex* seqlock version (plus a global generation that advances on
// any stop-the-world event). Stripe epochs answer "did anything on this
// stripe move inside my step window" — the right question for a
// microsecond-scale step. A cached hub view lives for thousands of draws,
// and hashing it onto a stripe epoch would let every write to every vertex
// sharing the stripe kill it. Per-vertex versions mean an ingest batch
// invalidates exactly the views of rows it rewrote — the property that
// keeps hub caches alive under sustained non-hub ingest.
package concurrent

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// DefaultStripesPerProc scales the default stripe count with GOMAXPROCS.
const DefaultStripesPerProc = 8

// DefaultMaxStepRetries bounds epoch-validation retries per walk step.
const DefaultMaxStepRetries = 4

// Config parameterizes the wrapper. The zero value selects all defaults.
type Config struct {
	// Stripes is the lock-stripe count, rounded up to a power of two.
	// Zero selects GOMAXPROCS × DefaultStripesPerProc.
	Stripes int
	// MaxStepRetries bounds how often Step re-draws when the stripe's
	// epoch advanced inside the step window. Zero selects
	// DefaultMaxStepRetries. After the bound the (still linearizable)
	// locked sample is accepted.
	MaxStepRetries int
	// Workers bounds ApplyBatch fan-out; zero defers to the sampler's
	// core.Config.Workers.
	Workers int
}

func (c Config) normalized() Config {
	if c.Stripes <= 0 {
		c.Stripes = runtime.GOMAXPROCS(0) * DefaultStripesPerProc
	}
	n := 1
	for n < c.Stripes {
		n <<= 1
	}
	c.Stripes = n
	if c.MaxStepRetries <= 0 {
		c.MaxStepRetries = DefaultMaxStepRetries
	}
	return c
}

// stripe is one lock unit, padded to its own cache line so that stripe
// metadata of busy neighbors does not false-share.
type stripe struct {
	mu    sync.RWMutex
	epoch atomic.Uint64
	_     [64 - 32]byte
}

// viewVersions is the per-vertex view-version table: ver[u] is u's seqlock
// counter (odd exactly while u's row is being rewritten), gen the global
// generation. The table is swapped wholesale — new header, gen+1 — under a
// stop-the-world acquisition (growth, Quiesce), which conservatively
// invalidates every outstanding view; per-vertex bumps happen in place
// under the vertex's stripe write lock. A view's stamp packs both halves
// into its Epoch field as gen<<32 | ver.
//
// shared[u] is the engine-wide extraction-dedup slot: the last view
// extracted of u, returned verbatim to every extractor whose stamp check
// still passes. Views are immutable snapshots, so handing the same
// object to every walker is safe — and essential: without the slot, k
// concurrent walkers each extract a private O(degree) copy of every hub
// (k× the alias builds, k× the cache footprint), and on machines where
// the copies outgrow a cache level the dense kernel pays DRAM for table
// rows the sparse kernel reads from the one shared CSR. A slot holding a
// stale view (stamp mismatch) is simply overwritten by the next
// extractor; on generation swaps the slice is reused, so at most one
// retired view per vertex lingers until then.
type viewVersions struct {
	gen    uint32
	ver    []atomic.Uint32
	shared []atomic.Pointer[core.VertexView]
}

// Engine is a concurrency-safe facade over a core.Sampler. All methods are
// safe for arbitrary concurrent use (each goroutine needs its own RNG).
// The wrapped sampler must not be used directly while the Engine is live
// except through Quiesce.
type Engine struct {
	s       *core.Sampler
	stripes []stripe
	mask    uint32
	retries int
	workers int
	vv      atomic.Pointer[viewVersions]
}

// Wrap takes ownership of an existing sampler.
func Wrap(s *core.Sampler, cfg Config) *Engine {
	cfg = cfg.normalized()
	workers := cfg.Workers
	if workers <= 0 {
		workers = s.Config().Workers
	}
	e := &Engine{
		s:       s,
		stripes: make([]stripe, cfg.Stripes),
		mask:    uint32(cfg.Stripes - 1),
		retries: cfg.MaxStepRetries,
		workers: workers,
	}
	e.vv.Store(&viewVersions{
		ver:    make([]atomic.Uint32, s.NumVertices()),
		shared: make([]atomic.Pointer[core.VertexView], s.NumVertices()),
	})
	return e
}

// New creates an empty sampler over numVertices vertices and wraps it.
func New(numVertices int, ccfg core.Config, cfg Config) (*Engine, error) {
	s, err := core.New(numVertices, ccfg)
	if err != nil {
		return nil, err
	}
	return Wrap(s, cfg), nil
}

// stripeOf hashes u onto its stripe. The multiplicative mix spreads
// contiguous vertex IDs (the common ID assignment) across stripes.
func (e *Engine) stripeOf(u graph.VertexID) *stripe {
	h := uint32(u) * 2654435761 // Knuth's golden-ratio multiplier
	return &e.stripes[(h^(h>>16))&e.mask]
}

// Stripes returns the stripe count.
func (e *Engine) Stripes() int { return len(e.stripes) }

// Config returns the wrapped sampler's configuration (immutable).
func (e *Engine) Config() core.Config { return e.s.Config() }

// lockAll acquires every stripe in ascending order and marks every epoch
// busy — the stop-the-world path used for vertex-space growth and Quiesce.
func (e *Engine) lockAll() {
	for i := range e.stripes {
		e.stripes[i].mu.Lock()
		e.stripes[i].epoch.Add(1)
	}
}

func (e *Engine) unlockAll() {
	// Stop-the-world mutations may have touched anything (growth, Quiesce
	// callbacks, range extraction), so retire the whole view generation:
	// every outstanding view stamp fails its gen check. The version slice
	// is reused when the vertex space did not grow — the counters stay
	// valid, only the generation moves.
	old := e.vv.Load()
	nv := &viewVersions{gen: old.gen + 1, ver: old.ver, shared: old.shared}
	if n := e.s.NumVertices(); n > len(old.ver) {
		nv.ver = make([]atomic.Uint32, n)
		nv.shared = make([]atomic.Pointer[core.VertexView], n)
	}
	e.vv.Store(nv)
	for i := range e.stripes {
		e.stripes[i].epoch.Add(1)
		e.stripes[i].mu.Unlock()
	}
}

// sharedView returns the engine-wide view of u at stamp ep, extracting
// and publishing a fresh snapshot only when the dedup slot holds none.
// Call under u's stripe read lock with ep = viewStamp(u): the lock pins
// the stamp, so a slot hit is exactly the state a fresh extraction would
// snapshot, and concurrent extractors racing the store publish
// interchangeable snapshots of the same version. Vertices beyond the
// table (extracted mid-growth under an old header) fall back to a
// private copy.
func (e *Engine) sharedView(u graph.VertexID, ep uint64) *core.VertexView {
	vv := e.vv.Load()
	if int(u) >= len(vv.shared) {
		vw := e.s.ViewOf(u)
		vw.Epoch = ep
		return &vw
	}
	slot := &vv.shared[u]
	if vw := slot.Load(); vw != nil && vw.Epoch == ep {
		return vw
	}
	vw := e.s.ViewOf(u)
	vw.Epoch = ep
	slot.Store(&vw)
	return &vw
}

// viewStamp packs u's current view version for stamping into an extracted
// view. Call under u's stripe read lock: per-vertex bumps happen under the
// stripe write lock and generation swaps under every write lock, so the
// loaded pair is consistent and the version half is even.
func (e *Engine) viewStamp(u graph.VertexID) uint64 {
	vv := e.vv.Load()
	s := uint64(vv.gen) << 32
	if int(u) < len(vv.ver) {
		s |= uint64(vv.ver[u].Load())
	}
	return s
}

// bumpView advances u's view version by one. Writers call it (under u's
// stripe write lock) immediately before and after rewriting u's row, so
// the version is odd exactly during the rewrite and any view extracted
// before it fails validation after.
func (e *Engine) bumpView(u graph.VertexID) {
	vv := e.vv.Load()
	if int(u) < len(vv.ver) {
		vv.ver[u].Add(1)
	}
}

// ---------------------------------------------------------------------------
// Readers

// Sample draws a neighbor of u with probability bias/Σbias. It is the
// walk.Engine sampling entry point; calls on vertices in distinct stripes
// proceed without contention.
func (e *Engine) Sample(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) {
	st := e.stripeOf(u)
	st.mu.RLock()
	v, ok := e.s.Sample(u, r)
	st.mu.RUnlock()
	return v, ok
}

// SampleSeq draws up to len(dst) independent samples from u under a single
// stripe acquisition, amortizing the lock over the sequence. It returns the
// number of samples drawn (0 when u has no sampleable mass). All samples
// observe the same graph version.
func (e *Engine) SampleSeq(u graph.VertexID, dst []graph.VertexID, r *xrand.RNG) int {
	st := e.stripeOf(u)
	st.mu.RLock()
	n := 0
	for n < len(dst) {
		v, ok := e.s.Sample(u, r)
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	st.mu.RUnlock()
	return n
}

// SampleBatch draws one sample from u per slot under a single stripe
// acquisition — slot i drawn with rs[i] — so a frontier of k co-located
// walkers pays one lock/epoch round instead of k. Slot i's draw consumes
// rs[i]'s stream exactly as a standalone Sample(u, rs[i]) would, which is
// what keeps batched stepping draw-for-draw compatible with per-walker
// stepping. Returns false when u has no sampleable mass (no stream is
// consumed then). len(dst) must be at least len(rs).
func (e *Engine) SampleBatch(u graph.VertexID, rs []*xrand.RNG, dst []graph.VertexID) bool {
	st := e.stripeOf(u)
	st.mu.RLock()
	ok := true
	for i, r := range rs {
		v, sampled := e.s.Sample(u, r)
		if !sampled {
			ok = false
			break
		}
		dst[i] = v
	}
	st.mu.RUnlock()
	return ok
}

// SampleBatchOrView is the batch form of SampleOrView, the frontier
// kernel's cache-fill path: one stripe acquisition that, when u's degree
// is at least minDegree (a hub by the caller's threshold), extracts a
// versioned view and draws the whole batch from it outside the lock —
// the caller caches the view and later batches draw lock-free. Otherwise
// every slot is drawn under the single lock, as SampleBatch does.
// minDegree <= 0 never extracts.
func (e *Engine) SampleBatchOrView(u graph.VertexID, minDegree int, rs []*xrand.RNG, dst []graph.VertexID) (bool, *core.VertexView) {
	st := e.stripeOf(u)
	st.mu.RLock()
	if minDegree > 0 && e.s.Degree(u) >= minDegree {
		vw := e.sharedView(u, e.viewStamp(u))
		st.mu.RUnlock()
		ok := vw.SampleBatch(rs, dst)
		return ok, vw
	}
	ok := true
	for i, r := range rs {
		v, sampled := e.s.Sample(u, r)
		if !sampled {
			ok = false
			break
		}
		dst[i] = v
	}
	st.mu.RUnlock()
	return ok, nil
}

// Degree returns u's out-degree.
func (e *Engine) Degree(u graph.VertexID) int {
	st := e.stripeOf(u)
	st.mu.RLock()
	d := e.s.Degree(u)
	st.mu.RUnlock()
	return d
}

// HasEdge reports whether at least one edge u→dst is live.
func (e *Engine) HasEdge(u, dst graph.VertexID) bool {
	st := e.stripeOf(u)
	st.mu.RLock()
	ok := e.s.HasEdge(u, dst)
	st.mu.RUnlock()
	return ok
}

// NumVertices returns the vertex-ID space size. Holding any stripe excludes
// space growth (growth takes every stripe), so a single read lock suffices.
func (e *Engine) NumVertices() int {
	st := &e.stripes[0]
	st.mu.RLock()
	n := e.s.NumVertices()
	st.mu.RUnlock()
	return n
}

// NumEdges returns the live edge count (maintained atomically; no lock).
func (e *Engine) NumEdges() int64 { return e.s.NumEdges() }

// Footprint returns the sampler's memory footprint. It walks every row and
// therefore quiesces the engine.
func (e *Engine) Footprint() int64 {
	var b int64
	e.Quiesce(func(s *core.Sampler) { b = s.Footprint() })
	return b
}

// ---------------------------------------------------------------------------
// Epoch protocol

// Epoch returns the current epoch of u's stripe. Even values are stable;
// odd values mean a writer currently holds the stripe.
func (e *Engine) Epoch(u graph.VertexID) uint64 {
	return e.stripeOf(u).epoch.Load()
}

// Validate reports whether u's stripe is stable and has not mutated since
// epoch was observed.
func (e *Engine) Validate(u graph.VertexID, epoch uint64) bool {
	return epoch&1 == 0 && e.stripeOf(u).epoch.Load() == epoch
}

// ViewOf extracts a versioned immutable view of u's sampling state: the
// core snapshot stamped with u's own view version (generation plus
// per-vertex seqlock counter) at extraction. The view samples lock-free
// with the engine's exact probabilities for as long as ValidateView holds;
// afterwards it must be dropped and re-extracted. Extraction costs
// O(degree) — callers cache views of hot (hub) vertices, where the copy
// amortizes over many lock-free draws.
func (e *Engine) ViewOf(u graph.VertexID) *core.VertexView {
	st := e.stripeOf(u)
	st.mu.RLock()
	vw := e.sharedView(u, e.viewStamp(u))
	st.mu.RUnlock()
	return vw
}

// ValidateView reports whether vw still reflects its vertex's current
// state: the generation it was extracted under is still live (no
// stop-the-world event since) and the vertex's own row has not been
// rewritten. Writes to *other* vertices — same stripe or not — do not
// invalidate it; that is what lets cached hub views survive sustained
// ingest that never touches the hubs' out-rows.
func (e *Engine) ValidateView(vw *core.VertexView) bool {
	vv := e.vv.Load()
	if uint32(vw.Epoch>>32) != vv.gen {
		return false
	}
	want := uint32(vw.Epoch)
	if want&1 != 0 {
		return false
	}
	if int(vw.Vertex) >= len(vv.ver) {
		return want == 0
	}
	return vv.ver[vw.Vertex].Load() == want
}

// SampleOrView is the cache-fill read path: one stripe acquisition that
// draws a sample and, when u's degree is at least minDegree (a hub by the
// caller's threshold), also extracts a versioned view for the caller to
// cache — the sample is then drawn from the view itself, outside the
// lock. minDegree <= 0 never extracts.
func (e *Engine) SampleOrView(u graph.VertexID, minDegree int, r *xrand.RNG) (graph.VertexID, bool, *core.VertexView) {
	st := e.stripeOf(u)
	st.mu.RLock()
	if minDegree > 0 && e.s.Degree(u) >= minDegree {
		vw := e.sharedView(u, e.viewStamp(u))
		st.mu.RUnlock()
		v, ok := vw.Sample(r)
		return v, ok, vw
	}
	v, ok := e.s.Sample(u, r)
	st.mu.RUnlock()
	return v, ok, nil
}

// Step draws one walk step from cur with epoch validation. The locked
// sample is already linearizable on its own; what the validate-and-retry
// adds is *freshness* — a step accepted on a clean epoch window reflects
// the graph version current across the whole window, and a walker
// composing Step with other per-stripe reads (HasEdge, Degree) under the
// same epoch gets cross-call consistency it can check with Validate. If
// the stripe mutated inside the window the draw is retried; after
// MaxStepRetries the locked sample is accepted. retried reports how many
// re-draws occurred (telemetry for the differential harness).
func (e *Engine) Step(cur graph.VertexID, r *xrand.RNG) (next graph.VertexID, ok bool, retried int) {
	st := e.stripeOf(cur)
	for try := 0; ; try++ {
		e0 := st.epoch.Load()
		st.mu.RLock()
		v, sampled := e.s.Sample(cur, r)
		st.mu.RUnlock()
		if e0&1 == 0 && st.epoch.Load() == e0 {
			return v, sampled, try
		}
		if try >= e.retries {
			return v, sampled, try
		}
	}
}

// WalkFrom performs a first-order walk of up to length steps from start,
// appending visited vertices (including start) to buf and returning it plus
// the total number of epoch retries along the way. Each step is drawn with
// Step's validate-and-retry protocol, so every hop individually reflects a
// stable graph version even while writers interleave.
func (e *Engine) WalkFrom(start graph.VertexID, length int, r *xrand.RNG, buf []graph.VertexID) ([]graph.VertexID, int) {
	buf = append(buf[:0], start)
	cur := start
	retries := 0
	for hop := 0; hop < length; hop++ {
		next, ok, retried := e.Step(cur, r)
		retries += retried
		if !ok {
			break
		}
		cur = next
		buf = append(buf, cur)
	}
	return buf, retries
}

// ---------------------------------------------------------------------------
// Writers

// write runs fn with stripe(u) held in write mode and the epoch marked
// busy. need is the smallest vertex-space size fn requires, or 0 when fn
// must never grow the space (deletes and bias updates fail fast on unseen
// vertices instead — growing stop-the-world for an edge that cannot exist
// would let one garbage ID stall every walker and inflate memory). When
// the space is too small for a growing op, the mutation instead runs under
// a stop-the-world acquisition so the growth of the sampler's top-level
// slices cannot race with readers on other stripes.
func (e *Engine) write(u graph.VertexID, need int, fn func() error) error {
	st := e.stripeOf(u)
	st.mu.Lock()
	if e.s.NumVertices() >= need {
		st.epoch.Add(1)
		e.bumpView(u)
		err := fn()
		e.bumpView(u)
		st.epoch.Add(1)
		st.mu.Unlock()
		return err
	}
	st.mu.Unlock()
	e.lockAll()
	e.s.EnsureVertexSpace(need)
	err := fn()
	e.unlockAll()
	return err
}

func maxNeed(u, dst graph.VertexID) int {
	if dst > u {
		u = dst
	}
	return int(u) + 1
}

// validateInsert rejects an insertion's bias before any lock or growth —
// a garbage insert with a huge vertex ID must not trigger stop-the-world
// space growth only to fail inside the sampler afterwards. ValidateUpdates
// reads only immutable sampler state, so no lock is needed.
func (e *Engine) validateInsert(u, dst graph.VertexID, bias uint64, fbias float64) error {
	up := [1]graph.Update{{Op: graph.OpInsert, Src: u, Dst: dst, Bias: bias, FBias: fbias}}
	_, err := e.s.ValidateUpdates(up[:])
	return err
}

// Insert adds edge u→dst with an integer bias (streaming path, O(K)).
func (e *Engine) Insert(u, dst graph.VertexID, bias uint64) error {
	if err := e.validateInsert(u, dst, bias, 0); err != nil {
		return err
	}
	return e.write(u, maxNeed(u, dst), func() error { return e.s.Insert(u, dst, bias) })
}

// InsertFloat adds edge u→dst with a float weight (float mode only).
func (e *Engine) InsertFloat(u, dst graph.VertexID, w float64) error {
	if !e.s.Config().FloatBias {
		// Fails fast inside the sampler; no growth for a doomed insert.
		return e.write(u, 0, func() error { return e.s.InsertFloat(u, dst, w) })
	}
	if err := e.validateInsert(u, dst, 0, w); err != nil {
		return err
	}
	return e.write(u, maxNeed(u, dst), func() error { return e.s.InsertFloat(u, dst, w) })
}

// InsertEdge adapts Insert/InsertFloat to the walk.Dynamic signature.
func (e *Engine) InsertEdge(u, dst graph.VertexID, bias uint64, fbias float64) error {
	if err := e.validateInsert(u, dst, bias, fbias); err != nil {
		return err
	}
	return e.write(u, maxNeed(u, dst), func() error { return e.s.InsertEdge(u, dst, bias, fbias) })
}

// Delete removes one live instance of edge u→dst (streaming path, O(K)).
// An unseen u fails with core.ErrVertexRange without growing the space.
func (e *Engine) Delete(u, dst graph.VertexID) error {
	return e.write(u, 0, func() error { return e.s.Delete(u, dst) })
}

// DeleteEdge is Delete under the walk.Dynamic signature.
func (e *Engine) DeleteEdge(u, dst graph.VertexID) error { return e.Delete(u, dst) }

// UpdateBias rewrites the bias of one live instance of edge u→dst (O(K)).
// An unseen u fails with core.ErrVertexRange without growing the space.
func (e *Engine) UpdateBias(u, dst graph.VertexID, bias uint64) error {
	return e.write(u, 0, func() error { return e.s.UpdateBias(u, dst, bias) })
}

// UpdateBiasFloat is UpdateBias for float-mode weights.
func (e *Engine) UpdateBiasFloat(u, dst graph.VertexID, w float64) error {
	return e.write(u, 0, func() error { return e.s.UpdateBiasFloat(u, dst, w) })
}

// ensureSpace grows the vertex-ID space to n under a stop-the-world
// acquisition, or returns immediately when it already suffices.
func (e *Engine) ensureSpace(n int) {
	st := &e.stripes[0]
	st.mu.RLock()
	enough := e.s.NumVertices() >= n
	st.mu.RUnlock()
	if enough {
		return
	}
	e.lockAll()
	e.s.EnsureVertexSpace(n)
	e.unlockAll()
}

// ApplyBatch ingests a batch through the §5.2 per-vertex workflow while
// walkers keep running: updates are validated, then the shared
// core.ApplyPerSource orchestration (stable source reorder, per-vertex
// runs, worker fan-out) applies each run with only the stripe of the
// vertex it touches held. Concurrent Sample calls on untouched stripes are
// never blocked; samples on a touched vertex serialize with that vertex's
// application, observing either the pre- or post-batch row, never a torn
// one.
func (e *Engine) ApplyBatch(ups []graph.Update) (core.BatchResult, error) {
	if len(ups) == 0 {
		return core.BatchResult{}, nil
	}
	maxV, err := e.s.ValidateUpdates(ups)
	if err != nil {
		return core.BatchResult{}, err
	}
	e.ensureSpace(int(maxV) + 1)
	res := e.s.ApplyPerSource(ups, e.workers, func(u graph.VertexID, ops []graph.Update, sc *core.Scratch) core.BatchResult {
		st := e.stripeOf(u)
		st.mu.Lock()
		st.epoch.Add(1)
		e.bumpView(u)
		r := e.s.ApplyVertexUpdates(u, ops, sc)
		e.bumpView(u)
		st.epoch.Add(1)
		st.mu.Unlock()
		return r
	})
	return res, nil
}

// ApplyUpdates adapts ApplyBatch to the walk.Dynamic signature (tolerant
// deletions, result discarded).
func (e *Engine) ApplyUpdates(ups []graph.Update) error {
	_, err := e.ApplyBatch(ups)
	return err
}

// ApplyStream ingests updates one at a time through the streaming path,
// preserving the slice's order. Deletions of missing edges are skipped, as
// in core.ApplyUpdatesStreaming.
func (e *Engine) ApplyStream(ups []graph.Update) error {
	for i := range ups {
		up := &ups[i]
		var err error
		switch up.Op {
		case graph.OpInsert:
			err = e.InsertEdge(up.Src, up.Dst, up.Bias, up.FBias)
		case graph.OpDelete:
			e.Delete(up.Src, up.Dst) //nolint:errcheck // tolerant semantics
		default:
			err = fmt.Errorf("concurrent: unknown op %v", up.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Quiescence

// Quiesce stops the world — every stripe write-locked, epochs marked — and
// runs fn against the raw sampler. Use it for snapshots, invariant checks,
// and any whole-graph read; fn may also mutate (walkers validating across
// the quiescent period will observe the epoch change and retry).
func (e *Engine) Quiesce(fn func(s *core.Sampler)) {
	e.lockAll()
	fn(e.s)
	e.unlockAll()
}

// ExtractRange atomically removes every out-edge of the vertices in
// [lo, hi) and returns insert updates that reconstruct exactly the
// removed rows (per-source adjacency order and weights preserved; float
// weights in unscaled user units). The whole extraction runs under one
// stop-the-world acquisition, so no walker or writer ever observes a
// half-extracted range, and every stripe's epoch advances — cached views
// of the range invalidate like any other write.
//
// This is the donor half of shard-ownership migration: the returned rows
// travel to the recipient shard as a fabric.MigrateBlock and are
// installed there with a plain ApplyUpdates. In-edges pointing *into*
// the range from other vertices are untouched — 1-D ownership partitions
// rows by source, so a block's out-rows are the entirety of what its
// owner holds.
// The bounds are uint64 because the top ownership block of the uint32
// ID space ends at 2³² — inexpressible as a graph.VertexID.
func (e *Engine) ExtractRange(lo, hi uint64) ([]graph.Update, error) {
	if hi < lo {
		return nil, fmt.Errorf("concurrent: ExtractRange [%d, %d)", lo, hi)
	}
	var rows []graph.Update
	var err error
	e.Quiesce(func(s *core.Sampler) {
		top := hi
		if n := uint64(s.NumVertices()); top > n {
			top = n
		}
		var row []graph.Update
		for u64 := lo; u64 < top; u64++ {
			u := graph.VertexID(u64)
			row = s.AppendRowUpdates(u, row[:0])
			if len(row) == 0 {
				continue
			}
			// Delete-then-append keeps the invariant the migration
			// transport depends on even under a mid-range failure: the
			// returned rows are exactly the rows no longer present here
			// (never both shipped and retained).
			if derr := s.DeleteVertex(u); derr != nil {
				if err == nil {
					err = fmt.Errorf("concurrent: extracting vertex %d: %w", u, derr)
				}
				continue
			}
			rows = append(rows, row...)
		}
	})
	return rows, err
}

// SnapshotRange returns insert updates reconstructing every row in
// [lo, hi) without removing anything — the copy counterpart of
// ExtractRange. It backs replica priming: a rejoined shard is fed a
// quiescent snapshot of each of its group blocks from a live holder,
// which keeps serving the block throughout. The single stop-the-world
// acquisition makes the snapshot a consistent cut: it reflects exactly
// the updates the donor consumed before the copy offer's position in its
// ingest stream, none after.
func (e *Engine) SnapshotRange(lo, hi uint64) ([]graph.Update, error) {
	if hi < lo {
		return nil, fmt.Errorf("concurrent: SnapshotRange [%d, %d)", lo, hi)
	}
	var rows []graph.Update
	e.Quiesce(func(s *core.Sampler) {
		top := hi
		if n := uint64(s.NumVertices()); top > n {
			top = n
		}
		var row []graph.Update
		for u64 := lo; u64 < top; u64++ {
			row = s.AppendRowUpdates(graph.VertexID(u64), row[:0])
			rows = append(rows, row...)
		}
	})
	return rows, nil
}

// DumpEdges returns a quiescent flattening of the live edge multiset —
// the walk.EdgeDumper capability the shard fabric's dump barrier uses to
// read a remote shard's state back for verification.
func (e *Engine) DumpEdges() []graph.Edge {
	var out []graph.Edge
	e.Quiesce(func(s *core.Sampler) {
		g := s.Snapshot()
		for u := 0; u < g.NumVertices(); u++ {
			vid := graph.VertexID(u)
			dsts := g.Neighbors(vid)
			if len(dsts) == 0 {
				continue
			}
			biases := g.Biases(vid)
			fb := g.FBiases(vid)
			for i := range dsts {
				ed := graph.Edge{Src: vid, Dst: dsts[i], Bias: biases[i]}
				if fb != nil {
					ed.FBias = fb[i]
				}
				out = append(out, ed)
			}
		}
	})
	return out
}
