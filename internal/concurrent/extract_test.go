package concurrent_test

import (
	"sort"
	"testing"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

type xEdge struct {
	src, dst graph.VertexID
	bias     uint64
	fbias    float64
}

func dumpSorted(e *concurrent.Engine) []xEdge {
	var out []xEdge
	for _, ed := range e.DumpEdges() {
		out = append(out, xEdge{ed.Src, ed.Dst, ed.Bias, ed.FBias})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.bias != b.bias {
			return a.bias < b.bias
		}
		return a.fbias < b.fbias
	})
	return out
}

// TestExtractRangeRoundTrip pins the migration transport invariant: an
// extracted range's rows, installed into a second engine, reproduce the
// exact edge multiset — and the donor no longer holds any of them. This
// is what makes donor + recipient dumps union to the pre-migration
// multiset, the property the rebalancing differential harness asserts
// end to end.
func TestExtractRangeRoundTrip(t *testing.T) {
	for _, mode := range []string{"int", "float"} {
		t.Run(mode, func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.FloatBias = mode == "float"
			donor, err := concurrent.New(256, cfg, concurrent.Config{})
			if err != nil {
				t.Fatal(err)
			}
			r := xrand.New(0xE0)
			var ups []graph.Update
			for i := 0; i < 3000; i++ {
				up := graph.Update{
					Op:  graph.OpInsert,
					Src: graph.VertexID(r.Intn(256)),
					Dst: graph.VertexID(r.Intn(256)),
				}
				if cfg.FloatBias {
					up.Bias = uint64(1 + r.Intn(50))
					up.FBias = float64(r.Intn(4)) * 0.25
				} else {
					up.Bias = uint64(1 + r.Intn(1000))
				}
				ups = append(ups, up)
			}
			if err := donor.ApplyUpdates(ups); err != nil {
				t.Fatal(err)
			}
			before := dumpSorted(donor)
			edgesBefore := donor.NumEdges()

			const lo, hi = 64, 128
			rows, err := donor.ExtractRange(lo, hi)
			if err != nil {
				t.Fatalf("ExtractRange: %v", err)
			}
			// The donor holds nothing in the range anymore, and its edge
			// counter reconciles.
			for v := graph.VertexID(lo); v < hi; v++ {
				if d := donor.Degree(v); d != 0 {
					t.Fatalf("vertex %d degree %d after extraction", v, d)
				}
			}
			if donor.NumEdges()+int64(len(rows)) != edgesBefore {
				t.Fatalf("edge accounting: %d live + %d extracted != %d before",
					donor.NumEdges(), len(rows), edgesBefore)
			}
			// Extraction preserves per-source order within the batch; the
			// recipient installs through the ordinary batched path.
			recipient, err := concurrent.New(16, cfg, concurrent.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := recipient.ApplyUpdates(rows); err != nil {
				t.Fatalf("install: %v", err)
			}
			union := append(dumpSorted(donor), dumpSorted(recipient)...)
			sort.Slice(union, func(i, j int) bool {
				a, b := union[i], union[j]
				if a.src != b.src {
					return a.src < b.src
				}
				if a.dst != b.dst {
					return a.dst < b.dst
				}
				if a.bias != b.bias {
					return a.bias < b.bias
				}
				return a.fbias < b.fbias
			})
			if len(union) != len(before) {
				t.Fatalf("union %d edges, want %d", len(union), len(before))
			}
			for i := range union {
				if union[i] != before[i] {
					t.Fatalf("edge %d diverges: %+v vs %+v", i, union[i], before[i])
				}
			}
			for name, eng := range map[string]*concurrent.Engine{"donor": donor, "recipient": recipient} {
				var ierr error
				eng.Quiesce(func(s *core.Sampler) { ierr = s.CheckInvariants() })
				if ierr != nil {
					t.Fatalf("%s invariants: %v", name, ierr)
				}
			}
			// Sampling at a migrated vertex reproduces the pre-extraction
			// distribution (spot-check: the neighbor sets match exactly,
			// probabilities are pinned by the invariant checks above).
			for v := graph.VertexID(lo); v < hi; v++ {
				wantDeg := 0
				for _, e := range before {
					if e.src == v {
						wantDeg++
					}
				}
				if got := recipient.Degree(v); got != wantDeg {
					t.Fatalf("vertex %d degree %d on recipient, want %d", v, got, wantDeg)
				}
			}
		})
	}
}

// TestExtractRangeConcurrent runs extraction while walkers sample and
// writers mutate *outside* the range — extraction is stop-the-world, so
// the only acceptable outcomes are fully-before or fully-after views.
func TestExtractRangeConcurrent(t *testing.T) {
	cfg := core.DefaultConfig()
	e, err := concurrent.New(128, cfg, concurrent.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(0xC0)
	var ups []graph.Update
	for i := 0; i < 2000; i++ {
		ups = append(ups, graph.Update{
			Op: graph.OpInsert, Src: graph.VertexID(r.Intn(128)), Dst: graph.VertexID(r.Intn(128)),
			Bias: uint64(1 + r.Intn(100)),
		})
	}
	if err := e.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		wr := xrand.New(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Mutate only vertices outside [32, 64).
			src := graph.VertexID(64 + wr.Intn(64))
			_ = e.Insert(src, graph.VertexID(wr.Intn(128)), uint64(1+wr.Intn(10)))
			wk := xrand.New(2)
			e.WalkFrom(graph.VertexID(wr.Intn(128)), 8, wk, nil)
		}
	}()
	for i := 0; i < 20; i++ {
		rows, err := e.ExtractRange(32, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyUpdates(rows); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	var ierr error
	e.Quiesce(func(s *core.Sampler) { ierr = s.CheckInvariants() })
	if ierr != nil {
		t.Fatal(ierr)
	}
}
