package concurrent

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func newViewTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(16, core.DefaultConfig(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for dst := graph.VertexID(1); dst <= 8; dst++ {
		if err := e.Insert(0, dst, uint64(dst)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestViewEpochValidation pins the invalidation contract: a freshly
// extracted view validates, and every mutation class on the vertex's
// stripe — Insert, Delete, UpdateBias, ApplyBatch — invalidates it.
func TestViewEpochValidation(t *testing.T) {
	mutate := map[string]func(e *Engine) error{
		"insert": func(e *Engine) error { return e.Insert(0, 9, 3) },
		"delete": func(e *Engine) error { return e.Delete(0, 1) },
		"update": func(e *Engine) error { return e.UpdateBias(0, 2, 77) },
		"batch": func(e *Engine) error {
			_, err := e.ApplyBatch([]graph.Update{{Op: graph.OpInsert, Src: 0, Dst: 10, Bias: 4}})
			return err
		},
	}
	for name, fn := range mutate {
		t.Run(name, func(t *testing.T) {
			e := newViewTestEngine(t)
			vw := e.ViewOf(0)
			if vw.Epoch&1 != 0 {
				t.Fatalf("extracted view carries a busy epoch %d", vw.Epoch)
			}
			if !e.ValidateView(vw) {
				t.Fatal("fresh view does not validate")
			}
			if err := fn(e); err != nil {
				t.Fatal(err)
			}
			if e.ValidateView(vw) {
				t.Fatal("view still validates after a mutation on its stripe")
			}
		})
	}
}

// TestViewSurvivesUnrelatedWrites pins the per-vertex grain of view
// validation: writes to other vertices — wherever they hash — must NOT
// invalidate a cached view, while a stop-the-world event (growth,
// Quiesce) retires every view via the generation. This is the property
// that keeps hub caches alive under sustained non-hub ingest.
func TestViewSurvivesUnrelatedWrites(t *testing.T) {
	e := newViewTestEngine(t)
	vw := e.ViewOf(0)
	if !e.ValidateView(vw) {
		t.Fatal("fresh view does not validate")
	}
	// Hammer every other in-space vertex with all three write classes.
	for u := graph.VertexID(1); u < 16; u++ {
		if err := e.Insert(u, (u+1)%16, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.UpdateBias(1, 2, 9); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyBatch([]graph.Update{{Op: graph.OpInsert, Src: 7, Dst: 3, Bias: 2}}); err != nil {
		t.Fatal(err)
	}
	if !e.ValidateView(vw) {
		t.Fatal("writes to unrelated vertices invalidated a cached view")
	}
	// A stop-the-world event retires the generation: everything drops.
	e.Quiesce(func(*core.Sampler) {})
	if e.ValidateView(vw) {
		t.Fatal("view survived a stop-the-world generation bump")
	}
	// Growth (insert referencing an out-of-space vertex) likewise.
	vw2 := e.ViewOf(0)
	if !e.ValidateView(vw2) {
		t.Fatal("re-extracted view does not validate")
	}
	if err := e.Insert(20, 21, 1); err != nil {
		t.Fatal(err)
	}
	if e.ValidateView(vw2) {
		t.Fatal("view survived vertex-space growth")
	}
}

// TestSampleOrView checks the single-acquisition cache-fill path: below
// the degree threshold it behaves as a plain sample; at or above it the
// returned view is stamped, validates, and samples the same distribution.
func TestSampleOrView(t *testing.T) {
	e := newViewTestEngine(t)
	r := xrand.New(5)

	if _, ok, vw := e.SampleOrView(0, 100, r); !ok || vw != nil {
		t.Fatalf("degree 8 below threshold 100: ok=%v view=%v", ok, vw)
	}
	if _, ok, vw := e.SampleOrView(0, 0, r); !ok || vw != nil {
		t.Fatalf("minDegree 0 must never extract: ok=%v view=%v", ok, vw)
	}
	v, ok, vw := e.SampleOrView(0, 4, r)
	if !ok || vw == nil {
		t.Fatalf("degree 8 at threshold 4: ok=%v view=%v", ok, vw)
	}
	if v == 0 || v > 8 {
		t.Fatalf("sampled %d, not a neighbor", v)
	}
	if vw.Vertex != 0 || vw.Degree() != 8 {
		t.Fatalf("view %+v does not describe vertex 0", vw)
	}
	if !e.ValidateView(vw) {
		t.Fatal("fresh SampleOrView view does not validate")
	}

	// Edgeless vertex: no sample, no view.
	if _, ok, vw := e.SampleOrView(15, 1, r); ok || vw != nil {
		t.Fatalf("edgeless vertex: ok=%v view=%v", ok, vw)
	}
}

// TestViewConcurrentSampling hammers view extraction, validation, and
// lock-free sampling against a writer (run under -race to make the point).
func TestViewConcurrentSampling(t *testing.T) {
	e := newViewTestEngine(t)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			dst := graph.VertexID(9 + i%4)
			if err := e.Insert(0, dst, 2); err != nil {
				t.Error(err)
				return
			}
			if err := e.Delete(0, dst); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		r := xrand.New(uint64(w) + 1)
		for i := 0; i < 2000; i++ {
			vw := e.ViewOf(0)
			if !e.ValidateView(vw) {
				continue // writer got in between; view discarded
			}
			if _, ok := vw.Sample(r); !ok {
				t.Fatal("validated view of a populated vertex has no mass")
			}
		}
	}
	close(stop)
	<-done
}

// TestSharedViewDedup pins the extraction-dedup contract: repeated
// extractions of an unchanged vertex return the same immutable view
// object (concurrent walkers share one O(degree) snapshot instead of
// copying it per caller), and any write to the vertex retires the slot
// so the next extraction publishes a fresh snapshot.
func TestSharedViewDedup(t *testing.T) {
	e := newViewTestEngine(t)
	vw := e.ViewOf(0)
	if again := e.ViewOf(0); again != vw {
		t.Fatal("second extraction of an unchanged vertex did not dedup")
	}
	r := xrand.New(1)
	if _, ok, cached := e.SampleOrView(0, 2, r); !ok || cached != vw {
		t.Fatal("SampleOrView did not return the shared view")
	}
	rs := []*xrand.RNG{xrand.New(2), xrand.New(3)}
	dst := make([]graph.VertexID, 2)
	if ok, cached := e.SampleBatchOrView(0, 2, rs, dst); !ok || cached != vw {
		t.Fatal("SampleBatchOrView did not return the shared view")
	}
	if err := e.Insert(0, 9, 5); err != nil {
		t.Fatal(err)
	}
	fresh := e.ViewOf(0)
	if fresh == vw {
		t.Fatal("extraction after a write returned the retired view")
	}
	if !e.ValidateView(fresh) || e.ValidateView(vw) {
		t.Fatal("validation does not separate fresh from retired view")
	}
	if fresh.Degree() != vw.Degree()+1 {
		t.Fatalf("fresh view degree %d, want %d", fresh.Degree(), vw.Degree()+1)
	}
}
