// The race-hardened differential harness of the walk-while-ingest engine:
// writer goroutines replay a random update tape while walker goroutines
// sample, and afterwards the concurrent engine must be *equivalent* to a
// sequential core.Sampler replay of the same tape — identical live edge
// sets and a sampling distribution the chi-square test cannot tell apart.
//
// Equivalence holds because the harness partitions the tape by source
// vertex (each source's events stay with one writer, in tape order): the
// engine guarantees per-vertex linearizability and updates on distinct
// sources commute, so any interleaving of the writers reaches the
// sequential replay's final state. Run with -race; the locking protocol is
// the thing under test.
package concurrent_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	diffVertices = 1200
	diffTapeLen  = 12000 // ≥ 10k per the harness contract
	diffWriters  = 4
	diffWalkers  = 4
	diffSamples  = 120000 // ≥ 1e5 chi-square draws
)

type pairKey struct{ src, dst graph.VertexID }

// buildTape generates a random update tape in which every (src,dst) pair
// has at most one live instance at any point (so a deletion is unambiguous
// and batched/streaming/concurrent replays agree edge-for-edge), plus a
// sprinkle of not-found deletions to exercise the tolerant path.
func buildTape(n, numVertices int, floatMode bool, seed uint64) []graph.Update {
	r := xrand.New(seed)
	live := make([]pairKey, 0, n)
	liveAt := make(map[pairKey]int, n)
	tape := make([]graph.Update, 0, n)
	for len(tape) < n {
		roll := r.Float64()
		switch {
		case roll < 0.25 && len(live) > 8:
			// Delete a live pair.
			i := r.Intn(len(live))
			p := live[i]
			last := len(live) - 1
			live[i] = live[last]
			liveAt[live[i]] = i
			live = live[:last]
			delete(liveAt, p)
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
		case roll < 0.30:
			// Not-found delete: a pair that is not live right now.
			p := pairKey{graph.VertexID(r.Intn(numVertices)), graph.VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
		default:
			p := pairKey{graph.VertexID(r.Intn(numVertices)), graph.VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			up := graph.Update{Op: graph.OpInsert, Src: p.src, Dst: p.dst, Bias: uint64(1 + r.Intn(1000))}
			if floatMode {
				up.FBias = r.Float64() * 0.999
			}
			liveAt[p] = len(live)
			live = append(live, p)
			tape = append(tape, up)
		}
	}
	return tape
}

// partitionBySource splits the tape into writer sub-tapes, keeping all
// events of one source with one writer in tape order.
func partitionBySource(tape []graph.Update, writers int) [][]graph.Update {
	parts := make([][]graph.Update, writers)
	for _, up := range tape {
		w := int(up.Src) % writers
		parts[w] = append(parts[w], up)
	}
	return parts
}

type flatEdge struct {
	src, dst graph.VertexID
	bias     uint64
	fbias    float64
}

// edgeSet flattens a snapshot into a canonically sorted edge multiset.
func edgeSet(g *graph.CSR) []flatEdge {
	out := make([]flatEdge, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		vid := graph.VertexID(u)
		dsts := g.Neighbors(vid)
		biases := g.Biases(vid)
		fb := g.FBiases(vid)
		for i := range dsts {
			e := flatEdge{src: vid, dst: dsts[i], bias: biases[i]}
			if fb != nil {
				e.fbias = fb[i]
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.bias < b.bias
	})
	return out
}

// replaySequential builds the ground-truth sampler: the whole tape, one
// goroutine, streaming path.
func replaySequential(t *testing.T, tape []graph.Update, ccfg core.Config) *core.Sampler {
	t.Helper()
	seq, err := core.New(diffVertices, ccfg)
	if err != nil {
		t.Fatalf("sequential sampler: %v", err)
	}
	if err := seq.ApplyUpdatesStreaming(append([]graph.Update(nil), tape...)); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	return seq
}

// runWalkersWhile runs walker goroutines that keep walking until writers
// signal completion — but each completes at least minWalksPerWalker walks
// so read/write overlap is guaranteed even when the writers finish first.
func runWalkersWhile(t *testing.T, e *concurrent.Engine, done <-chan struct{}) (walks, retries int64) {
	t.Helper()
	const minWalksPerWalker = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < diffWalkers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			var buf []graph.VertexID
			var localWalks, localRetries int64
			for {
				if localWalks >= minWalksPerWalker {
					select {
					case <-done:
						mu.Lock()
						walks += localWalks
						retries += localRetries
						mu.Unlock()
						return
					default:
					}
				}
				start := graph.VertexID(r.Intn(diffVertices))
				var n int
				buf, n = e.WalkFrom(start, 32, r, buf)
				localRetries += int64(n)
				localWalks++
				// Exercise the read surface beyond Sample.
				if len(buf) > 1 {
					e.HasEdge(buf[0], buf[1])
					e.Degree(buf[len(buf)-1])
				}
			}
		}(0xFACE + uint64(w))
	}
	wg.Wait()
	return walks, retries
}

// compareDistributions chi-squares empirical frequencies from the
// concurrent engine against the sequential sampler's exact probabilities on
// the highest-degree vertices.
func compareDistributions(t *testing.T, e *concurrent.Engine, seq *core.Sampler) {
	t.Helper()
	type cand struct {
		u graph.VertexID
		d int
	}
	var cands []cand
	for u := 0; u < diffVertices; u++ {
		if d := seq.Degree(graph.VertexID(u)); d >= 4 {
			cands = append(cands, cand{graph.VertexID(u), d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
	if len(cands) > 8 {
		cands = cands[:8]
	}
	if len(cands) == 0 {
		t.Fatalf("no test vertices with degree ≥ 4 — tape generator broken")
	}
	perVertex := diffSamples / len(cands)
	r := xrand.New(0xC41)
	for _, c := range cands {
		// Exact distribution by destination (pairs are unique, so a
		// destination identifies an edge).
		slotProbs := seq.VertexProbabilities(c.u)
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range slotProbs {
			probByDst[seq.Neighbor(c.u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		for i := 0; i < perVertex; i++ {
			v, ok := e.Sample(c.u, r)
			if !ok {
				t.Fatalf("vertex %d: concurrent Sample failed with degree %d", c.u, c.d)
			}
			slot, ok := index[v]
			if !ok {
				t.Fatalf("vertex %d: sampled %d, not a live neighbor", c.u, v)
			}
			observed[slot]++
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("vertex %d: chi-square: %v", c.u, err)
		}
		if p < 1e-4 {
			t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — concurrent distribution diverges from sequential replay", c.u, c.d, stat, p)
		}
	}
}

// runDifferential is the harness body, parameterized by bias mode and by
// how writers apply their sub-tapes.
func runDifferential(t *testing.T, ccfg core.Config, apply func(e *concurrent.Engine, part []graph.Update) error) {
	t.Helper()
	tape := buildTape(diffTapeLen, diffVertices, ccfg.FloatBias, 0xB1260)
	e, err := concurrent.New(diffVertices, ccfg, concurrent.Config{})
	if err != nil {
		t.Fatalf("concurrent engine: %v", err)
	}

	parts := partitionBySource(tape, diffWriters)
	done := make(chan struct{})
	var writerWg sync.WaitGroup
	errCh := make(chan error, diffWriters)
	for w := 0; w < diffWriters; w++ {
		writerWg.Add(1)
		go func(part []graph.Update) {
			defer writerWg.Done()
			if err := apply(e, part); err != nil {
				errCh <- err
			}
		}(parts[w])
	}
	walkDone := make(chan struct{})
	var walks, retries int64
	go func() {
		walks, retries = runWalkersWhile(t, e, done)
		close(walkDone)
	}()
	writerWg.Wait()
	close(done)
	<-walkDone
	close(errCh)
	for err := range errCh {
		t.Fatalf("writer: %v", err)
	}
	t.Logf("replayed %d updates under %d writers while %d walkers completed %d walks (%d epoch retries)",
		len(tape), diffWriters, diffWalkers, walks, retries)
	if walks < int64(diffWalkers) {
		t.Fatalf("walker overlap too thin: %d walks", walks)
	}

	seq := replaySequential(t, tape, ccfg)

	var snap *graph.CSR
	e.Quiesce(func(s *core.Sampler) {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("concurrent engine invariants: %v", err)
		}
		snap = s.Snapshot()
	})
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential replay invariants: %v", err)
	}

	got, want := edgeSet(snap), edgeSet(seq.Snapshot())
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	compareDistributions(t, e, seq)
}

// TestDifferentialWalkWhileIngest replays the tape through the streaming
// write path (Insert/Delete) under full walker load, in both bias modes.
func TestDifferentialWalkWhileIngest(t *testing.T) {
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"integer", core.DefaultConfig()},
		{"float", func() core.Config {
			c := core.DefaultConfig()
			c.FloatBias = true
			c.Lambda = 1024
			return c
		}()},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			runDifferential(t, m.cfg, func(e *concurrent.Engine, part []graph.Update) error {
				return e.ApplyStream(part)
			})
		})
	}
}

// TestDifferentialBatchedIngest replays each writer's sub-tape in chunked
// ApplyBatch calls — the path a production feed would use — and must reach
// the same state as the sequential streaming replay.
func TestDifferentialBatchedIngest(t *testing.T) {
	runDifferential(t, core.DefaultConfig(), func(e *concurrent.Engine, part []graph.Update) error {
		const chunk = 64
		for lo := 0; lo < len(part); lo += chunk {
			hi := lo + chunk
			if hi > len(part) {
				hi = len(part)
			}
			if _, err := e.ApplyBatch(part[lo:hi]); err != nil {
				return fmt.Errorf("chunk [%d,%d): %w", lo, hi, err)
			}
		}
		return nil
	})
}
