package ihash

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestAddFind(t *testing.T) {
	var m Map
	if m.FindAny(5) != -1 {
		t.Error("empty map found a key")
	}
	m.Add(5, 10)
	m.Add(7, 20)
	if got := m.FindAny(5); got != 10 {
		t.Errorf("FindAny(5) = %d, want 10", got)
	}
	if got := m.FindAny(7); got != 20 {
		t.Errorf("FindAny(7) = %d, want 20", got)
	}
	if m.FindAny(6) != -1 {
		t.Error("found absent key")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestDuplicateKeys(t *testing.T) {
	var m Map
	m.Add(1, 100)
	m.Add(1, 101)
	m.Add(1, 102)
	if m.CountKey(1) != 3 {
		t.Errorf("CountKey = %d, want 3", m.CountKey(1))
	}
	if !m.Remove(1, 101) {
		t.Error("Remove of existing dup failed")
	}
	if m.CountKey(1) != 2 {
		t.Errorf("after remove CountKey = %d, want 2", m.CountKey(1))
	}
	if m.Remove(1, 101) {
		t.Error("Remove of already-removed entry succeeded")
	}
	got := m.FindAny(1)
	if got != 100 && got != 102 {
		t.Errorf("FindAny returned removed value %d", got)
	}
}

func TestRemoveMaintainsChains(t *testing.T) {
	// Insert many colliding keys, remove from the middle of the chain,
	// verify the tail remains reachable.
	var m Map
	for i := int32(0); i < 50; i++ {
		m.Add(uint32(i%5), i) // heavy duplication → long probe chains
	}
	for i := int32(0); i < 50; i += 2 {
		if !m.Remove(uint32(i%5), i) {
			t.Fatalf("failed to remove (%d,%d)", i%5, i)
		}
	}
	for i := int32(1); i < 50; i += 2 {
		found := false
		m.Range(func(k uint32, v int32) bool {
			if k == uint32(i%5) && v == i {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Errorf("entry (%d,%d) lost after unrelated removals", i%5, i)
		}
	}
}

func TestReplace(t *testing.T) {
	var m Map
	m.Add(3, 7)
	if !m.Replace(3, 7, 9) {
		t.Fatal("Replace failed")
	}
	if got := m.FindAny(3); got != 9 {
		t.Errorf("after replace FindAny = %d, want 9", got)
	}
	if m.Replace(3, 7, 11) {
		t.Error("Replace of stale value succeeded")
	}
	if m.Replace(4, 9, 11) {
		t.Error("Replace of absent key succeeded")
	}
}

func TestGrowth(t *testing.T) {
	var m Map
	const n = 10000
	for i := int32(0); i < n; i++ {
		m.Add(uint32(i), i*2)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := int32(0); i < n; i++ {
		if got := m.FindAny(uint32(i)); got != i*2 {
			t.Fatalf("FindAny(%d) = %d, want %d", i, got, i*2)
		}
	}
	if m.Cap() > 4*n {
		t.Errorf("capacity %d unreasonably large for %d entries", m.Cap(), n)
	}
}

func TestTombstoneCompaction(t *testing.T) {
	var m Map
	// Churn: add and remove repeatedly; capacity must stay bounded.
	for round := 0; round < 50; round++ {
		for i := int32(0); i < 100; i++ {
			m.Add(uint32(i), i)
		}
		for i := int32(0); i < 100; i++ {
			if !m.Remove(uint32(i), i) {
				t.Fatalf("round %d: remove %d failed", round, i)
			}
		}
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after full churn, want 0", m.Len())
	}
	if m.Cap() > 1024 {
		t.Errorf("capacity %d grew without bound under churn", m.Cap())
	}
}

func TestReset(t *testing.T) {
	var m Map
	m.Add(1, 1)
	m.Add(2, 2)
	m.Reset()
	if m.Len() != 0 || m.FindAny(1) != -1 {
		t.Error("Reset left entries behind")
	}
	m.Add(3, 3)
	if m.FindAny(3) != 3 {
		t.Error("map unusable after Reset")
	}
}

func TestFootprint(t *testing.T) {
	var m Map
	if m.Footprint() != 0 {
		t.Error("zero map has non-zero footprint")
	}
	m.Add(1, 1)
	if m.Footprint() != int64(m.Cap())*8 {
		t.Errorf("footprint %d != cap*8 = %d", m.Footprint(), m.Cap()*8)
	}
}

func TestZeroKeyAndValue(t *testing.T) {
	var m Map
	m.Add(0, 0)
	if got := m.FindAny(0); got != 0 {
		t.Errorf("FindAny(0) = %d, want 0", got)
	}
	if !m.Remove(0, 0) {
		t.Error("Remove(0,0) failed")
	}
	if m.Contains(0) {
		t.Error("Contains(0) after removal")
	}
}

// TestAgainstReferenceModel drives the map with a random op sequence and
// compares against a map[uint32]map[int32]bool reference.
func TestAgainstReferenceModel(t *testing.T) {
	r := xrand.New(99)
	var m Map
	ref := map[uint32]map[int32]bool{}
	refAdd := func(k uint32, v int32) {
		if ref[k] == nil {
			ref[k] = map[int32]bool{}
		}
		ref[k][v] = true
	}
	refDel := func(k uint32, v int32) bool {
		if ref[k] != nil && ref[k][v] {
			delete(ref[k], v)
			return true
		}
		return false
	}
	live := make([][2]int32, 0, 1024) // (key, val) pairs believed live
	for op := 0; op < 20000; op++ {
		switch {
		case len(live) == 0 || r.Float64() < 0.55:
			k := uint32(r.Intn(64))
			v := int32(op)
			m.Add(k, v)
			refAdd(k, v)
			live = append(live, [2]int32{int32(k), v})
		default:
			i := r.Intn(len(live))
			k, v := uint32(live[i][0]), live[i][1]
			got := m.Remove(k, v)
			want := refDel(k, v)
			if got != want {
				t.Fatalf("op %d: Remove(%d,%d) = %v, ref %v", op, k, v, got, want)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%512 == 0 {
			n := 0
			for _, vs := range ref {
				n += len(vs)
			}
			if m.Len() != n {
				t.Fatalf("op %d: Len = %d, ref %d", op, m.Len(), n)
			}
			for k, vs := range ref {
				if len(vs) != m.CountKey(k) {
					t.Fatalf("op %d: CountKey(%d) = %d, ref %d", op, k, m.CountKey(k), len(vs))
				}
			}
		}
	}
}

func BenchmarkAddFindRemove(b *testing.B) {
	var m Map
	for i := 0; i < b.N; i++ {
		k := uint32(i & 0xffff)
		m.Add(k, int32(i&0x7fffffff))
		m.FindAny(k)
		m.Remove(k, int32(i&0x7fffffff))
	}
}
