// Package ihash implements a compact open-addressing multimap from uint32
// keys to int32 values, specialized for the dynamic-graph engines in this
// repository.
//
// Every engine needs to answer "at which slot of vertex u's adjacency row
// does destination v live?" in O(1): Bingo's deletion path (paper §4.2)
// assumes the edge can be located in constant time, and node2vec's
// second-order rejection test needs O(1) edge-existence checks. A Go
// map[uint32][]int32 would cost ~50+ bytes per edge; this table costs 12
// bytes per slot at a bounded load factor and supports duplicate keys
// (multigraph edges), which the paper's batched-update semantics require
// ("we allow duplicated insertions of the same edge").
//
// Deletion uses tombstones so probe chains stay intact; the table rehashes
// when live+dead slots exceed the load limit, which also garbage-collects
// tombstones. All operations are amortized O(1).
package ihash

const (
	empty     int32 = -1
	tombstone int32 = -2

	minSlots = 8
	// maxLoad is the numerator of the load-factor limit (denominator 8):
	// the table grows/rehashes when (live+dead)*8 >= slots*6, i.e. 75%.
	maxLoadNum = 6
	maxLoadDen = 8
)

// Map is an open-addressing multimap from uint32 to non-negative int32.
// The zero value is an empty map ready for use.
type Map struct {
	keys []uint32
	vals []int32 // >= 0 live, empty, or tombstone
	live int
	dead int
}

// hash mixes a 32-bit key (Fibonacci hashing followed by an xorshift).
func hash(k uint32) uint32 {
	h := k * 2654435761
	h ^= h >> 16
	return h
}

// Len returns the number of live entries.
func (m *Map) Len() int { return m.live }

// Cap returns the current number of slots (0 for the zero value).
func (m *Map) Cap() int { return len(m.vals) }

// Footprint returns the memory consumed by the table in bytes.
func (m *Map) Footprint() int64 {
	return int64(len(m.keys))*4 + int64(len(m.vals))*4
}

// Reset drops all entries but keeps the allocated slots.
func (m *Map) Reset() {
	for i := range m.vals {
		m.vals[i] = empty
	}
	m.live, m.dead = 0, 0
}

func (m *Map) grow(atLeast int) {
	want := minSlots
	for want*maxLoadNum/maxLoadDen <= atLeast {
		want <<= 1
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint32, want)
	m.vals = make([]int32, want)
	for i := range m.vals {
		m.vals[i] = empty
	}
	m.live, m.dead = 0, 0
	for i, v := range oldVals {
		if v >= 0 {
			m.Add(oldKeys[i], v)
		}
	}
}

// Add inserts a (key, val) entry. val must be non-negative. Duplicate keys
// are permitted; each Add creates an independent entry.
func (m *Map) Add(key uint32, val int32) {
	if val < 0 {
		panic("ihash: negative value")
	}
	if (m.live+m.dead+1)*maxLoadDen >= len(m.vals)*maxLoadNum {
		m.grow(m.live + 1)
	}
	mask := uint32(len(m.vals) - 1)
	i := hash(key) & mask
	for m.vals[i] >= 0 {
		i = (i + 1) & mask
	}
	if m.vals[i] == tombstone {
		m.dead--
	}
	m.keys[i] = key
	m.vals[i] = val
	m.live++
}

// FindAny returns the value of some live entry with the given key, or -1 if
// none exists. With duplicate keys the choice among them is unspecified but
// deterministic for a given table state.
func (m *Map) FindAny(key uint32) int32 {
	if m.live == 0 {
		return -1
	}
	mask := uint32(len(m.vals) - 1)
	i := hash(key) & mask
	for {
		v := m.vals[i]
		if v == empty {
			return -1
		}
		if v >= 0 && m.keys[i] == key {
			return v
		}
		i = (i + 1) & mask
	}
}

// Contains reports whether any live entry has the given key.
func (m *Map) Contains(key uint32) bool { return m.FindAny(key) >= 0 }

// Remove deletes the entry (key, val) and reports whether it was present.
func (m *Map) Remove(key uint32, val int32) bool {
	if m.live == 0 {
		return false
	}
	mask := uint32(len(m.vals) - 1)
	i := hash(key) & mask
	for {
		v := m.vals[i]
		if v == empty {
			return false
		}
		if v == val && m.keys[i] == key {
			m.vals[i] = tombstone
			m.live--
			m.dead++
			// Rehash when tombstones dominate, to keep probes short.
			if m.dead*2 > len(m.vals) {
				m.grow(m.live)
			}
			return true
		}
		i = (i + 1) & mask
	}
}

// Replace rewrites the value of entry (key, old) to new and reports whether
// the entry was found. It is used when a swap-delete moves a neighbor to a
// different slot of the adjacency row.
func (m *Map) Replace(key uint32, old, new int32) bool {
	if new < 0 {
		panic("ihash: negative replacement value")
	}
	if m.live == 0 {
		return false
	}
	mask := uint32(len(m.vals) - 1)
	i := hash(key) & mask
	for {
		v := m.vals[i]
		if v == empty {
			return false
		}
		if v == old && m.keys[i] == key {
			m.vals[i] = new
			return true
		}
		i = (i + 1) & mask
	}
}

// CountKey returns the number of live entries with the given key (the edge
// multiplicity of dst in a multigraph row).
func (m *Map) CountKey(key uint32) int {
	if m.live == 0 {
		return 0
	}
	mask := uint32(len(m.vals) - 1)
	i := hash(key) & mask
	n := 0
	for {
		v := m.vals[i]
		if v == empty {
			return n
		}
		if v >= 0 && m.keys[i] == key {
			n++
		}
		i = (i + 1) & mask
	}
}

// Range calls fn for every live entry until fn returns false. Iteration
// order is unspecified.
func (m *Map) Range(fn func(key uint32, val int32) bool) {
	for i, v := range m.vals {
		if v >= 0 && !fn(m.keys[i], v) {
			return
		}
	}
}
