package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical draws out of 1000", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Seed(7)
	if got := r.Uint64(); got != first {
		t.Errorf("Seed did not reset stream: got %d want %d", got, first)
	}
}

func TestSplitIndependence(t *testing.T) {
	master := New(1)
	s0 := master.Split(0)
	s1 := master.Split(1)
	// Same split index from an untouched master must be reproducible.
	master2 := New(1)
	s0b := master2.Split(0)
	for i := 0; i < 100; i++ {
		if s0.Uint64() != s0b.Uint64() {
			t.Fatal("Split(0) not reproducible")
		}
	}
	// Different split indices should not track each other.
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == master.Split(2).Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams correlated: %d/1000 identical", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish check without the stats package (it depends on us):
	// counts of a small modulus should be near-uniform.
	r := New(11)
	const n, draws = 10, 200000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %f far from 0.5", mean)
	}
}

func TestCoin(t *testing.T) {
	r := New(9)
	const draws = 100000
	heads := 0
	for i := 0; i < draws; i++ {
		if r.Coin(0.25) {
			heads++
		}
	}
	p := float64(heads) / draws
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Coin(0.25) frequency %f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	dst := make([]int, 100)
	r.Perm(dst)
	seen := make([]bool, 100)
	for _, v := range dst {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestShuffleFairnessSmoke(t *testing.T) {
	// Position 0 of a 3-element shuffle should hold each element ~1/3 of
	// the time.
	r := New(17)
	var firstCounts [3]int
	for i := 0; i < 30000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		firstCounts[a[0]]++
	}
	for i, c := range firstCounts {
		if math.Abs(float64(c)-10000) > 500 {
			t.Errorf("element %d first %d times, want ~10000", i, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %f", variance)
	}
}

func TestZeroStateRecovery(t *testing.T) {
	// A pathological seed must not produce an absorbing all-zero state.
	var r RNG
	r.Seed(0)
	zero := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero > 2 {
		t.Errorf("seed 0 produced %d zero outputs in 100", zero)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Intn(1000003)
	}
	_ = sink
}
