// Package xrand supplies the deterministic, allocation-free random number
// generator used by every sampler and walker in the engine.
//
// Random walks are embarrassingly parallel but extremely RNG-hungry: one
// 80-step biased walk performs hundreds of RNG draws. The engine therefore
// gives each walker (and each batch worker) its own generator so that no
// locking is needed and every experiment is reproducible from a single seed.
//
// The generator is xoshiro256++ seeded through splitmix64, the combination
// recommended by its authors for exactly this use case. It is not
// cryptographically secure, matching the paper's Monte Carlo setting.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256++ pseudo-random generator. The zero value is invalid;
// construct with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// only for seeding, per the xoshiro authors' guidance.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds give independent
// streams; the same seed always gives the same stream.
func New(seed uint64) *RNG {
	var r RNG
	r.Seed(seed)
	return &r
}

// Seed resets the generator to the deterministic state derived from seed.
func (r *RNG) Seed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	if r.s0|r.s1|r.s2|r.s3 == 0 { // all-zero state is absorbing
		r.s0 = 1
	}
}

// Split derives an independent child generator. It is used to give each
// walker its own stream: Split(i) from a master RNG seeded with the
// experiment seed yields stream i.
func (r *RNG) Split(i uint64) *RNG {
	var c RNG
	r.SplitInto(i, &c)
	return &c
}

// SplitInto derives child stream i into dst — Split without the
// allocation, for stepping loops that seat walker streams in pooled
// generator slots. SplitInto(i, dst) leaves dst in exactly the state
// Split(i) would return.
func (r *RNG) SplitInto(i uint64, dst *RNG) {
	x := r.s0 ^ bits.RotateLeft64(r.s2, 17) ^ (i+1)*0x9e3779b97f4a7c15
	dst.Seed(splitmix64(&x))
}

// State is the full serializable generator state. It exists so a walker's
// RNG stream can cross a process boundary (the shard fabric hands walker
// state, not generator pointers, between shards) and resume exactly where
// it left off: FromState(r.State()) continues r's stream draw-for-draw.
type State struct {
	S0, S1, S2, S3 uint64
}

// State captures the generator's current state.
func (r *RNG) State() State { return State{r.s0, r.s1, r.s2, r.s3} }

// FromState reconstructs a generator from a captured state. The all-zero
// state (never produced by a valid generator, but representable on the
// wire) is mapped to the state New(0) would produce rather than the
// absorbing zero state.
func FromState(st State) *RNG {
	r := &RNG{}
	r.SetState(st)
	return r
}

// SetState rehydrates r in place from a captured state, continuing the
// captured stream draw-for-draw. It is FromState without the allocation:
// hot stepping loops keep a pool of generator values and re-seat each
// arriving walker's serialized stream into one of them. The all-zero wire
// state maps to New(0)'s state, exactly as in FromState.
func (r *RNG) SetState(st State) {
	if st.S0|st.S1|st.S2|st.S3 == 0 {
		r.Seed(0)
		return
	}
	r.s0, r.s1, r.s2, r.s3 = st.S0, st.S1, st.S2, st.S3
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	res := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return res
}

// Uint32 returns 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which avoids division
// on the fast path.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire's method: multiply a 64-bit random by n and keep the high
	// word, rejecting the small biased region of the low word.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1.0p-53
}

// Coin returns true with probability p.
func (r *RNG) Coin(p float64) bool { return r.Float64() < p }

// Perm fills dst with a uniform random permutation of [0, len(dst)) using
// Fisher-Yates.
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Shuffle performs an in-place Fisher-Yates shuffle of n elements using
// the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the polar Box-Muller transform. Used by the
// Gaussian bias generator (Figure 9 / 15(c) workloads).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
