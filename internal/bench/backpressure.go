package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/chaos"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
)

// Backpressure is the credited-ingest scenario: a two-shard session
// where one shard applies updates slowly (a per-element delay injected
// at the fabric), fed as fast as the client can push. With the credit
// window disabled the feed returns immediately and the slow shard's
// ingest queue absorbs the entire tape — the routed-but-unapplied
// backlog is unbounded, which is the memory blowup the credits were
// built to prevent. With a window, Feed blocks once the backlog hits
// the window, so the backlog stays bounded at exactly the configured
// size while end-to-end time is unchanged (the slow shard is the
// bottleneck either way). The sweep reports both halves of that trade:
// feed-side latency and the peak routed-but-unapplied backlog. Emits
// BENCH_backpressure.json.

// BackpressureSeries is one measured credit-window cell.
type BackpressureSeries struct {
	// Window is the credit window in ingest elements; -1 means credits
	// disabled (the pre-credit fabric's behavior).
	Window         int     `json:"window"`
	Updates        int64   `json:"updates"`
	FeedSec        float64 `json:"feed_sec"`  // wall time until the last Feed returned
	TotalSec       float64 `json:"total_sec"` // wall time through Sync (backlog drained)
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	MaxOutstanding int64   `json:"max_outstanding"` // peak routed-but-unapplied backlog
	StalledSec     float64 `json:"stalled_sec"`     // total time Feed spent blocked on credits
}

// BackpressureReport is the BENCH_backpressure.json document.
type BackpressureReport struct {
	Scenario       string               `json:"scenario"`
	Shards         int                  `json:"shards"`
	TotalUpdates   int                  `json:"total_updates"`
	SlowShardDelay string               `json:"slow_shard_delay"`
	GOMAXPROCS     int                  `json:"gomaxprocs"`
	Series         []BackpressureSeries `json:"series"`
}

const (
	backpressureShards = 2
	backpressureVerts  = 4096
	backpressureTotal  = 24_000
	backpressureChunk  = 128
	// backpressureDelay is the injected apply cost per routed sub-batch
	// on the slow shard — ~10x the feeder's cost per chunk, so an
	// unpaced feed runs the whole tape ahead of the slow shard.
	backpressureDelay = time.Millisecond
)

func runBackpressure(o *Options) error {
	rep := BackpressureReport{
		Scenario:       "Backpressure",
		Shards:         backpressureShards,
		TotalUpdates:   backpressureTotal,
		SlowShardDelay: backpressureDelay.String(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}

	tbl := newTable(o.Out)
	tbl.row("window", "feed s", "total s", "updates/s", "max outstanding", "stalled s")
	for _, window := range []int{-1, 1024, 4096, walk.DefaultCreditWindow} {
		ser, err := backpressureCell(o, window)
		if err != nil {
			return fmt.Errorf("window %d: %w", window, err)
		}
		rep.Series = append(rep.Series, ser)
		label := fmt.Sprintf("%d", ser.Window)
		if ser.Window < 0 {
			label = "off"
		}
		tbl.row(
			label,
			fmt.Sprintf("%.2f", ser.FeedSec),
			fmt.Sprintf("%.2f", ser.TotalSec),
			fmt.Sprintf("%.0f", ser.UpdatesPerSec),
			fmt.Sprintf("%d", ser.MaxOutstanding),
			fmt.Sprintf("%.2f", ser.StalledSec),
		)
	}
	tbl.flush()

	if o.BackpressureJSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.BackpressureJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.BackpressureJSONPath)
	}
	return nil
}

// backpressureCell runs one window setting over a fresh chaos fabric:
// shard 1 gets the per-element ingest delay, shard 0 applies at full
// speed, and the tape alternates sources so both see half the load.
func backpressureCell(o *Options, window int) (BackpressureSeries, error) {
	fab := chaos.New(backpressureShards)
	fab.SetFault(1, chaos.Fault{Delay: backpressureDelay}, chaos.Fault{})

	plan := walk.NewShardPlan(backpressureVerts, backpressureShards)
	nodeDone := make([]chan struct{}, backpressureShards)
	for i := 0; i < backpressureShards; i++ {
		s, err := core.New(backpressureVerts, core.DefaultConfig())
		if err != nil {
			return BackpressureSeries{}, err
		}
		done := make(chan struct{})
		nodeDone[i] = done
		go func(shard int, e walk.LiveEngine) {
			defer close(done)
			walk.RunShardNode(e, plan, shard, fab.ShardPort(shard), 1, fabric.CacheSpec{}, walk.KernelAuto) //nolint:errcheck // session errors surface via svc
		}(i, concurrent.Wrap(s, concurrent.Config{}))
	}
	svc, err := walk.NewRemoteService(fab.CoordPort(), plan, backpressureVerts, walk.ShardedLiveConfig{
		WalkLength: 4,
		Seed:       o.Seed,
		// A shallow feed queue keeps the run-ahead bound at the credit
		// window itself: once the router stalls on credits the queue
		// fills and Feed blocks, which is the end-to-end path a real
		// ingest client sits on.
		QueueDepth:   16,
		CreditWindow: window,
	})
	if err != nil {
		return BackpressureSeries{}, err
	}

	start := time.Now()
	for lo := 0; lo < backpressureTotal; lo += backpressureChunk {
		n := backpressureChunk
		if lo+n > backpressureTotal {
			n = backpressureTotal - lo
		}
		ups := make([]graph.Update, n)
		for i := range ups {
			k := lo + i
			ups[i] = graph.Update{
				Op:   graph.OpInsert,
				Src:  graph.VertexID(k % backpressureVerts),
				Dst:  graph.VertexID((k + 1) % backpressureVerts),
				Bias: uint64(1 + k%100),
			}
		}
		if err := svc.Feed(ups); err != nil {
			return BackpressureSeries{}, fmt.Errorf("feed: %w", err)
		}
	}
	feedSec := time.Since(start).Seconds()
	if err := svc.Sync(); err != nil {
		return BackpressureSeries{}, fmt.Errorf("sync: %w", err)
	}
	totalSec := time.Since(start).Seconds()
	st := svc.Stats()
	if err := svc.Close(); err != nil {
		return BackpressureSeries{}, fmt.Errorf("close: %w", err)
	}
	for _, d := range nodeDone {
		<-d
	}
	if st.Dropped > 0 {
		return BackpressureSeries{}, fmt.Errorf("%d feed batches dropped", st.Dropped)
	}

	return BackpressureSeries{
		Window:         window,
		Updates:        st.Updates,
		FeedSec:        feedSec,
		TotalSec:       totalSec,
		UpdatesPerSec:  float64(st.Updates) / totalSec,
		MaxOutstanding: st.Backpressure.MaxOutstanding,
		StalledSec:     st.Backpressure.Stalled.Seconds(),
	}, nil
}
