package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// CoordScale is the query-tier scale-out scenario: one write-coordinator
// owns a fixed 4-shard set while 1/2/4 read-coordinators attach to it
// and serve a fixed client fleet, on both the in-process and loopback
// TCP fabrics. The workload is tenant-partitioned hub traffic — a graph
// of disjoint communities, each striped across every shard, with the
// fleet routed to readers by community (the standard front-end sharding
// a query tier does) — so each reader's hub-view working set shrinks as
// readers are added. The measured scaling mechanism is therefore the
// one the reader tier actually provides: aggregate hub-view cache
// capacity and front-end parallelism. One reader thrashes a view cache
// sized below the full working set and keeps launching walkers into the
// shard set; four readers hold their partitions resident and serve
// whole walks locally, so aggregate walks/s rises with reader count at
// fixed shard count. Emits BENCH_coordscale.json for diffing runs.

// CoordScaleSeries is one measured (transport, readers) grid cell.
type CoordScaleSeries struct {
	Transport    string  `json:"transport"`
	Readers      int     `json:"readers"`
	Walks        int64   `json:"walks"`
	Steps        int64   `json:"steps"`
	LocalHits    int64   `json:"local_hits"` // hops served from reader view caches
	Launches     int64   `json:"launches"`   // walker launches into the shard set
	ViewRequests int64   `json:"view_requests"`
	CachedViews  int     `json:"cached_views"` // summed post-window cache population
	ElapsedSec   float64 `json:"elapsed_sec"`
	WalksPerSec  float64 `json:"walks_per_sec"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	LocalHitRate float64 `json:"local_hit_rate"` // local_hits/steps
}

// CoordScaleReport is the BENCH_coordscale.json document.
type CoordScaleReport struct {
	Scenario     string             `json:"scenario"`
	Workload     string             `json:"workload"`
	Vertices     int                `json:"vertices"`
	Edges        int64              `json:"edges"`
	Shards       int                `json:"shards"`
	Clients      int                `json:"clients"`
	WalkLength   int                `json:"walk_length"`
	ViewCapacity int                `json:"view_capacity"` // per-reader hub-view cache size
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Series       []CoordScaleSeries `json:"series"`
}

// The coordscale grid and workload geometry.
var coordReaderSweep = []int{1, 2, 4}

const (
	// coordShards is the fixed shard count the reader sweep runs over.
	coordShards = 4
	// coordCommunities × coordCommSize is the vertex space: disjoint
	// "tenant" communities, each striped across all shards (member j of
	// community c is vertex c + j*coordCommunities, so every intra-
	// community hop is a cross-shard hop when shard-served).
	coordCommunities = 64
	coordCommSize    = 16
	// coordViewCap sizes each reader's hub-view cache below the full
	// working set (64×16 = 1024 vertices) but above a 4-way partition of
	// it (256): one reader thrashes, four hold their partitions resident.
	coordViewCap = 320
	// coordClients is the fixed client fleet split across the readers.
	coordClients = 8
	// coordWarmPerClient is each client's pre-window cache-warming quota.
	coordWarmPerClient = 256
	// coordWindow is the minimum measurement window per cell (same
	// rationale as shardedMinWindow, much wider because the reader cells
	// compare steady states whose gap must clear both scheduler noise
	// and the FIFO view-cache's churn-order variance).
	coordWindow = time.Second
	// coordQuota is the per-client walk quota inside the window.
	coordQuota = 64
)

// coordGraph builds the tenant-community graph: each community is a hub
// star plus a member ring (hub→members, member→hub, member→next member),
// with no cross-community edges, so a walk's visited set is exactly its
// start community and a reader fronting a community partition has a
// closed working set.
func coordGraph() (*graph.CSR, error) {
	n := coordCommunities * coordCommSize
	vid := func(c, j int) graph.VertexID { return graph.VertexID(c + j*coordCommunities) }
	var edges []graph.Edge
	for c := 0; c < coordCommunities; c++ {
		hub := vid(c, 0)
		for j := 1; j < coordCommSize; j++ {
			m := vid(c, j)
			nxt := j + 1
			if nxt >= coordCommSize {
				nxt = 1
			}
			edges = append(edges,
				graph.Edge{Src: hub, Dst: m, Bias: 1},
				graph.Edge{Src: m, Dst: hub, Bias: 1},
				graph.Edge{Src: m, Dst: vid(c, nxt), Bias: 1},
			)
		}
	}
	return graph.FromEdges(n, edges)
}

// coordCell is one running (transport, readers) deployment: the write
// service plus R attached readers and a teardown.
type coordCell struct {
	readers []*walk.ReaderService
	close   func()
}

// coordSpec is the session cache spec: MinDegree 1 makes every connected
// vertex view-servable (the community members a walk must cross are
// degree 2), and the reader-side RemoteSize/RequestAfter give each
// reader a coordViewCap-entry cache filled on first crossing.
func coordSpec() fabric.CacheSpec {
	return fabric.CacheSpec{MinDegree: 1, RemoteSize: coordViewCap, RequestAfter: 1}
}

// newCoordCell deploys the shard set, write session, and R readers on
// the chosen transport.
func newCoordCell(o *Options, g *graph.CSR, transport string, readers int) (*coordCell, error) {
	spec := coordSpec()
	rcfg := walk.ReaderConfig{WalkLength: o.WalkLength, Seed: o.Seed ^ 0xead, Cache: spec}
	cfg := walk.ShardedLiveConfig{WalkersPerShard: 2, WalkLength: o.WalkLength, Seed: o.Seed, Cache: spec}
	plan := walk.NewShardPlan(g.NumVertices(), coordShards)
	switch transport {
	case "inproc":
		engines, err := walk.BootstrapShards(g, plan, func() (walk.LiveEngine, error) {
			s, err := core.New(g.NumVertices(), o.bingoConfig())
			if err != nil {
				return nil, err
			}
			return concurrent.Wrap(s, concurrent.Config{}), nil
		})
		if err != nil {
			return nil, err
		}
		svc, err := walk.NewShardedLiveService(engines, plan, cfg)
		if err != nil {
			return nil, err
		}
		cell := &coordCell{}
		for i := 0; i < readers; i++ {
			rd, err := svc.AttachReader(rcfg)
			if err != nil {
				svc.Close()
				return nil, err
			}
			cell.readers = append(cell.readers, rd)
		}
		cell.close = func() {
			for _, rd := range cell.readers {
				rd.Close()
			}
			svc.Close()
		}
		return cell, nil
	case "tcp":
		listeners := make([]*tcpgob.Listener, coordShards)
		addrs := make([]string, coordShards)
		for i := 0; i < coordShards; i++ {
			l, err := tcpgob.Listen("127.0.0.1:0", i, coordShards)
			if err != nil {
				return nil, err
			}
			listeners[i] = l
			addrs[i] = l.Addr().String()
		}
		for i := 0; i < coordShards; i++ {
			go func(i int) {
				defer listeners[i].Close()
				sc, hello, err := listeners[i].Accept()
				if err != nil {
					return
				}
				s, err := core.New(hello.NumVertices, o.bingoConfig())
				if err != nil {
					sc.Close()
					return
				}
				e := concurrent.Wrap(s, concurrent.Config{})
				nodePlan := walk.ShardPlan{Shards: hello.Shards, RangeSize: hello.RangeSize}
				walk.RunShardNode(e, nodePlan, i, sc, 2, hello.Cache, walk.KernelAuto)
			}(i)
		}
		port, err := tcpgob.Dial(addrs, fabric.Hello{
			RangeSize:   plan.RangeSize,
			NumVertices: g.NumVertices(),
			Cache:       spec,
		})
		if err != nil {
			return nil, err
		}
		svc, err := walk.NewRemoteService(port, plan, g.NumVertices(), cfg)
		if err != nil {
			return nil, err
		}
		if err := svc.Bootstrap(g); err != nil {
			svc.Close()
			return nil, err
		}
		cell := &coordCell{}
		for i := 0; i < readers; i++ {
			rp, err := tcpgob.DialReader(addrs, fabric.Hello{})
			if err != nil {
				cell.teardown(svc.Close)
				return nil, err
			}
			rd, err := walk.NewRemoteReader(rp, rcfg)
			if err != nil {
				cell.teardown(svc.Close)
				return nil, err
			}
			cell.readers = append(cell.readers, rd)
		}
		cell.close = func() { cell.teardown(svc.Close) }
		return cell, nil
	default:
		return nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
}

func (c *coordCell) teardown(write func() error) {
	for _, rd := range c.readers {
		rd.Close()
	}
	write()
}

// coordStarts returns reader r's start set under an R-way community
// partition: the hubs of communities c with c % R == r.
func coordStarts(r, readers int) []graph.VertexID {
	var starts []graph.VertexID
	for c := r; c < coordCommunities; c += readers {
		starts = append(starts, graph.VertexID(c))
	}
	return starts
}

// coordPick draws a start index with the hot-tenant skew (density
// concentrated on the low indices, ~cube-law): the hot communities stay
// resident in a reader's view cache while the cold tail churns it, so
// the cache hit rate — and with it aggregate walks/s — grades with the
// per-reader partition size instead of cliffing at exact residency.
func coordPick(r *xrand.RNG, n int) int {
	u := r.Float64()
	i := int(float64(n) * u * u * u * u)
	if i >= n {
		i = n - 1
	}
	return i
}

// coordCellRun measures one (transport, readers) point: warm each
// reader's view cache with its own partition traffic, then run the fixed
// client fleet (client i is wired to reader i%R, drawing starts from
// that reader's partition) for at least coordWindow and report the
// aggregate.
func coordCellRun(o *Options, g *graph.CSR, transport string, readers int) (CoordScaleSeries, error) {
	cell, err := newCoordCell(o, g, transport, readers)
	if err != nil {
		return CoordScaleSeries{}, err
	}
	defer cell.close()

	runFleet := func(measure bool) (int64, time.Duration, error) {
		start := time.Now()
		var walks atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		for i := 0; i < coordClients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rd := cell.readers[i%readers]
				starts := coordStarts(i%readers, readers)
				r := xrand.New(o.Seed ^ (uint64(i)*0x9e37 + uint64(len(cell.readers))))
				for q := 0; ; q++ {
					if measure {
						if q >= coordQuota && time.Since(start) >= coordWindow {
							return
						}
					} else if q >= coordWarmPerClient {
						return
					}
					if _, err := rd.Query(starts[coordPick(r, len(starts))], o.WalkLength); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					walks.Add(1)
				}
			}(i)
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return 0, 0, err
		}
		return walks.Load(), time.Since(start), nil
	}

	// Warm outside the window: fill each reader's view cache to its
	// steady state (full partitions at high reader counts, thrash at low
	// ones) so the measured cells compare steady states, not ramps.
	if _, _, err := runFleet(false); err != nil {
		return CoordScaleSeries{}, fmt.Errorf("warmup: %w", err)
	}
	base := make([]walk.ReaderStats, readers)
	for i, rd := range cell.readers {
		base[i] = rd.Stats()
	}
	walks, elapsed, err := runFleet(true)
	if err != nil {
		return CoordScaleSeries{}, err
	}
	ser := CoordScaleSeries{
		Transport:  transport,
		Readers:    readers,
		Walks:      walks,
		ElapsedSec: elapsed.Seconds(),
	}
	for i, rd := range cell.readers {
		st := rd.Stats()
		ser.Steps += st.Steps - base[i].Steps
		ser.LocalHits += st.LocalHits - base[i].LocalHits
		ser.Launches += st.Launches - base[i].Launches
		ser.ViewRequests += st.ViewRequests - base[i].ViewRequests
		ser.CachedViews += st.CachedViews
	}
	ser.WalksPerSec = float64(walks) / elapsed.Seconds()
	ser.StepsPerSec = float64(ser.Steps) / elapsed.Seconds()
	if ser.Steps > 0 {
		ser.LocalHitRate = float64(ser.LocalHits) / float64(ser.Steps)
	}
	return ser, nil
}

func runCoordScale(o *Options) error {
	g, err := coordGraph()
	if err != nil {
		return err
	}
	rep := CoordScaleReport{
		Scenario:     "CoordScale",
		Workload:     "tenant-communities",
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		Shards:       coordShards,
		Clients:      coordClients,
		WalkLength:   o.WalkLength,
		ViewCapacity: coordViewCap,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
	}
	tbl := newTable(o.Out)
	tbl.row("transport", "readers", "walks/s", "steps/s", "hit rate", "launches", "cached views")
	for _, transport := range o.Transports {
		for _, readers := range coordReaderSweep {
			ser, err := coordCellRun(o, g, transport, readers)
			if err != nil {
				return fmt.Errorf("%s readers=%d: %w", transport, readers, err)
			}
			rep.Series = append(rep.Series, ser)
			tbl.row(
				ser.Transport,
				fmt.Sprintf("%d", ser.Readers),
				fmt.Sprintf("%.0f", ser.WalksPerSec),
				fmt.Sprintf("%.0f", ser.StepsPerSec),
				fmt.Sprintf("%.3f", ser.LocalHitRate),
				fmt.Sprintf("%d", ser.Launches),
				fmt.Sprintf("%d", ser.CachedViews),
			)
		}
	}
	tbl.flush()

	if o.CoordScaleJSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.CoordScaleJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.CoordScaleJSONPath)
	}
	return nil
}
