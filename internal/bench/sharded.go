package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ShardedThroughput is the partitioned serving scenario: a client fleet
// queries a sharded live service — N per-shard engines, ingest router,
// cross-shard walker transfer, hub-view caches — while a feeder paces
// update batches to a target share of total operations. The grid sweeps
// shard count × update load × *transport* × *cache* × *workload*:
// `inproc` runs the shards over the in-process fabric (the
// ShardedLiveService channels), `tcp` runs the identical node and
// coordinator logic over loopback TCP (the tcpgob fabric RemoteService
// and the shard daemons speak), so the inproc→tcp delta is the measured
// cost of crossing the wire; cache `on`/`off` toggles the two hub-view
// cache layers, so the off→on delta is the measured value of serving
// hub hops lock-free and without hand-offs; workload `uniform` starts
// walks anywhere, `hubskew` starts them on the highest-degree vertices
// (the hub-revisit-heavy serving pattern the cache targets). Emits
// BENCH_sharded.json for diffing runs.

// ShardedSeries is one measured (workload, transport, cache, kernel,
// procs, shards, load) grid cell.
type ShardedSeries struct {
	Workload        string  `json:"workload"` // uniform | hubskew
	Transport       string  `json:"transport"`
	Cache           string  `json:"cache"`  // on | off
	Kernel          string  `json:"kernel"` // sparse | dense | auto
	Procs           int     `json:"procs"`  // GOMAXPROCS inside the cell
	Shards          int     `json:"shards"`
	UpdateLoadPct   float64 `json:"update_load_pct"` // nominal target share
	Walks           int64   `json:"walks"`
	Steps           int64   `json:"steps"`
	Updates         int64   `json:"updates"`
	Transfers       int64   `json:"transfers"`
	Local           int64   `json:"local"`
	LocalHits       int64   `json:"local_hits"`  // crew-cache lock-free hops
	RemoteHits      int64   `json:"remote_hits"` // hand-offs absorbed by remote views
	LocalStale      int64   `json:"local_stale"`
	ViewRequests    int64   `json:"view_requests"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	WalksPerSec     float64 `json:"walks_per_sec"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	TransferRatio   float64 `json:"transfer_ratio"`    // hand-offs per sampled hop: transfers/steps
	LocalHitRate    float64 `json:"local_hit_rate"`    // local_hits/steps
	AchievedLoadPct float64 `json:"achieved_load_pct"` // updates/(updates+steps)
}

// ShardedReport is the BENCH_sharded.json document.
type ShardedReport struct {
	Scenario   string          `json:"scenario"`
	Dataset    string          `json:"dataset"`
	Vertices   int             `json:"vertices"`
	Edges      int64           `json:"edges"`
	Clients    int             `json:"clients"`
	WalkLength int             `json:"walk_length"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Series     []ShardedSeries `json:"series"`
}

// shardedShards and the load vectors span the measured grid (transports
// and cache modes come from Options). The hub-skewed workload measures
// hop throughput under hub revisits, so it sweeps the lighter loads
// only.
var (
	shardedShards      = []int{1, 2, 4, 8}
	shardedLoads       = []float64{0, 0.10, 0.50}
	shardedHubLoads    = []float64{0, 0.10}
	shardedWorkloads   = []string{"uniform", "hubskew"}
	shardedHubFraction = 0.01 // top-degree share forming the hub start set
)

// shardedKernelShards is the shard count the focused kernel × procs
// sweep runs at (a mid-grid point with real cross-shard traffic).
const shardedKernelShards = 4

// shardedMinWindow is the minimum measurement window: clients keep
// issuing walks past their quota until it elapses, so the pacer's
// 100 µs sleep cycle always gets to feed (the old ~3 ms windows ended
// before the first batch landed, recording updates: 0 at every load).
const shardedMinWindow = 250 * time.Millisecond

func runSharded(o *Options) error {
	abbr := o.Datasets[0]
	_, g, err := o.dataset(abbr)
	if err != nil {
		return err
	}
	w, err := o.workload(abbr, g, gen.UpdMixed, 4096)
	if err != nil {
		return err
	}

	// Honor the Workers contract every runner documents ("0 = 1"). The
	// client fleet size is held constant across the shard sweep so the
	// comparison isolates the serving topology, and the per-shard crews
	// split the same worker budget.
	clients := o.Workers
	totalWalks := o.MaxWalkers
	if totalWalks < clients {
		totalWalks = clients
	}
	walksPer := totalWalks / clients

	rep := ShardedReport{
		Scenario:   "ShardedThroughput",
		Dataset:    abbr,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Clients:    clients,
		WalkLength: o.WalkLength,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	hubs := hubStarts(g)
	tbl := newTable(o.Out)
	tbl.row("workload", "transport", "cache", "kernel", "procs", "shards", "update load", "walks/s", "steps/s", "updates/s", "transfer ratio", "hit rate", "achieved load")
	emit := func(ser ShardedSeries) {
		rep.Series = append(rep.Series, ser)
		tbl.row(
			ser.Workload,
			ser.Transport,
			ser.Cache,
			ser.Kernel,
			fmt.Sprintf("%d", ser.Procs),
			fmt.Sprintf("%d", ser.Shards),
			fmt.Sprintf("%.0f%%", ser.UpdateLoadPct),
			fmt.Sprintf("%.0f", ser.WalksPerSec),
			fmt.Sprintf("%.0f", ser.StepsPerSec),
			fmt.Sprintf("%.0f", ser.UpdatesPerSec),
			fmt.Sprintf("%.3f", ser.TransferRatio),
			fmt.Sprintf("%.3f", ser.LocalHitRate),
			fmt.Sprintf("%.1f%%", ser.AchievedLoadPct),
		)
	}
	hostProcs := runtime.GOMAXPROCS(0)
	for _, workload := range shardedWorkloads {
		loads := shardedLoads
		var starts []graph.VertexID
		if workload == "hubskew" {
			loads = shardedHubLoads
			starts = hubs
		}
		for _, transport := range o.Transports {
			for _, cacheMode := range o.CacheModes {
				for _, shards := range shardedShards {
					for _, load := range loads {
						ser, err := shardedCell(o, g, w, workload, transport, cacheMode, walk.KernelAuto, hostProcs, shards, load, clients, walksPer, starts)
						if err != nil {
							return fmt.Errorf("%s %s cache=%s shards=%d load=%.0f%%: %w", workload, transport, cacheMode, shards, load*100, err)
						}
						emit(ser)
					}
				}
			}
		}
	}
	// The focused kernel sweep: kernel × procs on the cell where frontier
	// batching has co-location to exploit — hub-skewed starts, in-process
	// fabric, pure walk load. Sparse runs caches off (the per-walker
	// locked baseline), dense/auto run them on.
	for _, kernelName := range o.KernelModes {
		kernel, err := walk.ParseKernelMode(kernelName)
		if err != nil {
			return err
		}
		cacheMode := "on"
		if kernel == walk.KernelSparse {
			cacheMode = "off"
		}
		for _, procs := range o.Procs {
			ser, err := shardedCell(o, g, w, "hubskew", "inproc", cacheMode, kernel, procs, shardedKernelShards, 0, clients, walksPer, hubs)
			if err != nil {
				return fmt.Errorf("kernel sweep %s procs=%d: %w", kernelName, procs, err)
			}
			emit(ser)
		}
	}
	tbl.flush()

	if o.ShardedJSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.ShardedJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.ShardedJSONPath)
	}
	return nil
}

// shardedService is what a cell measures: both *walk.ShardedLiveService
// (inproc fabric) and *walk.RemoteService (tcp fabric) satisfy it.
type shardedService interface {
	Query(start graph.VertexID, length int) ([]graph.VertexID, error)
	Feed(ups []graph.Update) error
	Sync() error
	Stats() walk.ShardedLiveStats
	Close() error
}

// hubStarts returns the top-degree hub set (at least 8 vertices, at most
// the top shardedHubFraction) the hub-skewed workload starts walks on.
func hubStarts(g *graph.CSR) []graph.VertexID {
	n := g.NumVertices()
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return g.Degree(ids[i]) > g.Degree(ids[j]) })
	k := int(float64(n) * shardedHubFraction)
	if k < 8 {
		k = 8
	}
	if k > n {
		k = n
	}
	return ids[:k]
}

// newShardedService builds a bootstrapped serving runtime for one cell on
// the chosen transport. For tcp, the shard nodes run in-process but
// behind real loopback sockets — the same frames, handshake, and
// per-peer streams `bingowalk -shard-serve` daemons speak — so the cell
// isolates wire cost without fork/exec noise.
func newShardedService(o *Options, g *graph.CSR, transport string, cache fabric.CacheSpec, kernel walk.KernelMode, shards, crew int) (shardedService, error) {
	cfg := walk.ShardedLiveConfig{WalkersPerShard: crew, WalkLength: o.WalkLength, Seed: o.Seed, Cache: cache, Kernel: kernel}
	return newShardedServiceWithConfig(o, g, transport, cache, shards, crew, cfg)
}

// newShardedServiceWithConfig is newShardedService with the full service
// config exposed (the rebalance scenario passes a Rebalance policy; the
// cache spec still travels separately because the tcp transport ships it
// in the session Hello).
func newShardedServiceWithConfig(o *Options, g *graph.CSR, transport string, cache fabric.CacheSpec, shards, crew int, cfg walk.ShardedLiveConfig) (shardedService, error) {
	plan := walk.NewShardPlan(g.NumVertices(), shards)
	newEngine := func(numVertices int) (walk.LiveEngine, error) {
		s, err := core.New(numVertices, o.bingoConfig())
		if err != nil {
			return nil, err
		}
		return concurrent.Wrap(s, concurrent.Config{}), nil
	}
	switch transport {
	case "inproc":
		engines, err := walk.BootstrapShards(g, plan, func() (walk.LiveEngine, error) {
			return newEngine(g.NumVertices())
		})
		if err != nil {
			return nil, err
		}
		return walk.NewShardedLiveService(engines, plan, cfg)
	case "tcp":
		listeners := make([]*tcpgob.Listener, shards)
		addrs := make([]string, shards)
		for i := 0; i < shards; i++ {
			l, err := tcpgob.Listen("127.0.0.1:0", i, shards)
			if err != nil {
				return nil, err
			}
			listeners[i] = l
			addrs[i] = l.Addr().String()
		}
		for i := 0; i < shards; i++ {
			go func(i int) {
				defer listeners[i].Close()
				sc, hello, err := listeners[i].Accept()
				if err != nil {
					return
				}
				e, err := newEngine(hello.NumVertices)
				if err != nil {
					sc.Close()
					return
				}
				nodePlan := walk.ShardPlan{
					Shards: hello.Shards, RangeSize: hello.RangeSize,
					Epoch: hello.PlanEpoch, Overlay: hello.Overlay,
				}
				kern, _ := walk.ParseKernelMode(hello.Kernel)
				walk.RunShardNode(e, nodePlan, i, sc, crew, hello.Cache, kern)
			}(i)
		}
		port, err := tcpgob.Dial(addrs, fabric.Hello{
			RangeSize:   plan.RangeSize,
			NumVertices: g.NumVertices(),
			FloatBias:   o.bingoConfig().FloatBias,
			Cache:       cache,
			Kernel:      cfg.Kernel.String(),
		})
		if err != nil {
			return nil, err
		}
		svc, err := walk.NewRemoteService(port, plan, g.NumVertices(), cfg)
		if err != nil {
			return nil, err
		}
		if err := svc.Bootstrap(g); err != nil {
			svc.Close()
			return nil, err
		}
		return svc, nil
	default:
		return nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
}

// shardedCell measures one (workload, transport, cache, kernel, procs,
// shards, load) point on fresh engines (the feeder mutates the graph,
// so cells must not share state). starts restricts walk starts (nil =
// whole space); procs pins GOMAXPROCS for the cell's duration.
func shardedCell(o *Options, g *graph.CSR, w *gen.Workload, workload, transport, cacheMode string, kernel walk.KernelMode, procs, shards int, load float64, clients, walksPer int, starts []graph.VertexID) (ShardedSeries, error) {
	crew := clients / shards
	if crew < 1 {
		crew = 1
	}
	prevProcs := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prevProcs)
	cache := fabric.CacheSpec{Off: cacheMode == "off"}
	svc, err := newShardedService(o, g, transport, cache, kernel, shards, crew)
	if err != nil {
		return ShardedSeries{}, err
	}

	// Prime the feed path before the clock starts: the first batch lands
	// and syncs outside the window, so the pacer never starts cold, and
	// its updates are excluded from the measured tallies below.
	next := 0
	if load > 0 {
		hi := 256
		if hi > len(w.Updates) {
			hi = len(w.Updates)
		}
		if err := svc.Feed(append([]graph.Update(nil), w.Updates[:hi]...)); err != nil {
			return ShardedSeries{}, fmt.Errorf("prime: %w", err)
		}
		if err := svc.Sync(); err != nil {
			return ShardedSeries{}, fmt.Errorf("prime: %w", err)
		}
		next = hi
	}
	// The pre-window baseline: bootstrap (tcp transport) plus the primed
	// batch. Measured updates are deltas against it.
	baseUpdates := svc.Stats().Updates

	done := make(chan struct{})
	var fed atomic.Int64 // updates accepted by the pacer inside the window
	var feeder sync.WaitGroup
	if load > 0 {
		feeder.Add(1)
		go func() {
			defer feeder.Done()
			ratio := load / (1 - load) // updates per walk step
			for {
				select {
				case <-done:
					return
				default:
				}
				// Pace against the service's live step counter and the
				// pacer's own accepted count (service-side Updates lag a
				// Sync on the tcp transport, so they cannot pace).
				budget := int64(ratio*float64(svc.Stats().Steps)) - fed.Load()
				if budget < 256 {
					// Sleep rather than spin: a hot pacer would steal a core
					// from the shard crews inside the measured window.
					time.Sleep(100 * time.Microsecond)
					continue
				}
				hi := next + 256
				if hi > len(w.Updates) {
					hi = len(w.Updates)
				}
				batch := append([]graph.Update(nil), w.Updates[next:hi]...)
				if err := svc.Feed(batch); err != nil {
					return // Close raced the pacer; Err is checked below
				}
				fed.Add(int64(len(batch)))
				next = hi
				if next >= len(w.Updates) {
					next = 0 // cycle the tape; re-deletes are tolerated
				}
			}
		}()
	}

	// Clients issue their walk quota, then keep walking until the minimum
	// window has elapsed — short cells otherwise end before the pacer's
	// first sleep cycle and record a dishonest zero load.
	start := time.Now()
	var walks atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(o.Seed ^ seed)
			for q := 0; ; q++ {
				if q >= walksPer && time.Since(start) >= shardedMinWindow {
					return
				}
				var st graph.VertexID
				if len(starts) > 0 {
					st = starts[r.Intn(len(starts))]
				} else {
					st = graph.VertexID(r.Intn(g.NumVertices()))
				}
				if _, err := svc.Query(st, o.WalkLength); err != nil {
					return
				}
				walks.Add(1)
			}
		}(uint64(c) + 1)
	}
	wg.Wait()
	close(done)
	feeder.Wait()
	// Sync before snapshotting: batches accepted inside the window are
	// fully applied, so the achieved load is honest, and the drain time
	// is charged to the window that caused it.
	if err := svc.Sync(); err != nil {
		return ShardedSeries{}, fmt.Errorf("ingest: %w", err)
	}
	elapsed := time.Since(start)
	st := svc.Stats()
	if err := svc.Close(); err != nil {
		return ShardedSeries{}, fmt.Errorf("ingest: %w", err)
	}
	if st.Dropped > 0 {
		return ShardedSeries{}, fmt.Errorf("%d feed batches dropped", st.Dropped)
	}

	updates := st.Updates - baseUpdates
	achieved := 0.0
	if st.Steps+updates > 0 {
		achieved = float64(updates) / float64(st.Steps+updates)
	}
	hitRate := 0.0
	if st.Steps > 0 {
		hitRate = float64(st.Cache.LocalHits) / float64(st.Steps)
	}
	return ShardedSeries{
		Workload:        workload,
		Transport:       transport,
		Cache:           cacheMode,
		Kernel:          kernel.String(),
		Procs:           procs,
		Shards:          shards,
		UpdateLoadPct:   load * 100,
		Walks:           walks.Load(),
		Steps:           st.Steps,
		Updates:         updates,
		Transfers:       st.Transfers,
		Local:           st.Local,
		LocalHits:       st.Cache.LocalHits,
		RemoteHits:      st.Cache.RemoteHits,
		LocalStale:      st.Cache.LocalStale,
		ViewRequests:    st.Cache.ViewRequests,
		ElapsedSec:      elapsed.Seconds(),
		WalksPerSec:     float64(walks.Load()) / elapsed.Seconds(),
		StepsPerSec:     float64(st.Steps) / elapsed.Seconds(),
		UpdatesPerSec:   float64(updates) / elapsed.Seconds(),
		TransferRatio:   st.TransferRatio(),
		LocalHitRate:    hitRate,
		AchievedLoadPct: achieved * 100,
	}, nil
}
