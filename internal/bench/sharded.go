package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ShardedThroughput is the partitioned serving scenario: a client fleet
// queries a ShardedLiveService — N per-shard engines, ingest router,
// cross-shard walker transfer — while a feeder paces update batches to a
// target share of total operations. Sweeping shard count × update load
// measures what the multi-lock-domain topology buys (and what the walker
// transfers cost) relative to the single-engine `concurrent` scenario,
// and emits BENCH_sharded.json so successive runs can be diffed.

// ShardedSeries is one measured (shards, load) grid cell.
type ShardedSeries struct {
	Shards          int     `json:"shards"`
	UpdateLoadPct   float64 `json:"update_load_pct"` // nominal target share
	Walks           int64   `json:"walks"`
	Steps           int64   `json:"steps"`
	Updates         int64   `json:"updates"`
	Transfers       int64   `json:"transfers"`
	Local           int64   `json:"local"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	WalksPerSec     float64 `json:"walks_per_sec"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	TransferRatio   float64 `json:"transfer_ratio"`    // transfers/(transfers+local)
	AchievedLoadPct float64 `json:"achieved_load_pct"` // updates/(updates+steps)
}

// ShardedReport is the BENCH_sharded.json document.
type ShardedReport struct {
	Scenario   string          `json:"scenario"`
	Dataset    string          `json:"dataset"`
	Vertices   int             `json:"vertices"`
	Edges      int64           `json:"edges"`
	Clients    int             `json:"clients"`
	WalkLength int             `json:"walk_length"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Series     []ShardedSeries `json:"series"`
}

// shardedShards and shardedLoads span the measured grid.
var (
	shardedShards = []int{1, 2, 4, 8}
	shardedLoads  = []float64{0, 0.10, 0.50}
)

func runSharded(o *Options) error {
	abbr := o.Datasets[0]
	_, g, err := o.dataset(abbr)
	if err != nil {
		return err
	}
	w, err := o.workload(abbr, g, gen.UpdMixed, 4096)
	if err != nil {
		return err
	}

	// Honor the Workers contract every runner documents ("0 = 1"). The
	// client fleet size is held constant across the shard sweep so the
	// comparison isolates the serving topology, and the per-shard crews
	// split the same worker budget.
	clients := o.Workers
	totalWalks := o.MaxWalkers
	if totalWalks < clients {
		totalWalks = clients
	}
	walksPer := totalWalks / clients

	rep := ShardedReport{
		Scenario:   "ShardedThroughput",
		Dataset:    abbr,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Clients:    clients,
		WalkLength: o.WalkLength,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	tbl := newTable(o.Out)
	tbl.row("shards", "update load", "walks/s", "steps/s", "updates/s", "transfer ratio", "achieved load")
	for _, shards := range shardedShards {
		for _, load := range shardedLoads {
			ser, err := shardedCell(o, g, w, shards, load, clients, walksPer)
			if err != nil {
				return fmt.Errorf("shards=%d load=%.0f%%: %w", shards, load*100, err)
			}
			rep.Series = append(rep.Series, ser)
			tbl.row(
				fmt.Sprintf("%d", ser.Shards),
				fmt.Sprintf("%.0f%%", ser.UpdateLoadPct),
				fmt.Sprintf("%.0f", ser.WalksPerSec),
				fmt.Sprintf("%.0f", ser.StepsPerSec),
				fmt.Sprintf("%.0f", ser.UpdatesPerSec),
				fmt.Sprintf("%.3f", ser.TransferRatio),
				fmt.Sprintf("%.1f%%", ser.AchievedLoadPct),
			)
		}
	}
	tbl.flush()

	if o.ShardedJSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.ShardedJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.ShardedJSONPath)
	}
	return nil
}

// shardedCell measures one (shards, load) point on fresh engines (the
// feeder mutates the graph, so cells must not share state).
func shardedCell(o *Options, g *graph.CSR, w *gen.Workload, shards int, load float64, clients, walksPer int) (ShardedSeries, error) {
	plan := walk.NewShardPlan(g.NumVertices(), shards)
	engines, err := walk.BootstrapShards(g, plan, func() (walk.LiveEngine, error) {
		s, err := core.New(g.NumVertices(), o.bingoConfig())
		if err != nil {
			return nil, err
		}
		return concurrent.Wrap(s, concurrent.Config{}), nil
	})
	if err != nil {
		return ShardedSeries{}, err
	}
	crew := clients / shards
	if crew < 1 {
		crew = 1
	}
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: crew,
		WalkLength:      o.WalkLength,
		Seed:            o.Seed,
	})
	if err != nil {
		return ShardedSeries{}, err
	}

	done := make(chan struct{})
	var feeder sync.WaitGroup
	if load > 0 {
		feeder.Add(1)
		go func() {
			defer feeder.Done()
			ratio := load / (1 - load) // updates per walk step
			next := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				st := svc.Stats()
				budget := int64(ratio*float64(st.Steps)) - st.Updates
				if budget < 256 {
					// Sleep rather than spin: a hot pacer would steal a core
					// from the shard crews inside the measured window.
					time.Sleep(100 * time.Microsecond)
					continue
				}
				hi := next + 256
				if hi > len(w.Updates) {
					hi = len(w.Updates)
				}
				batch := append([]graph.Update(nil), w.Updates[next:hi]...)
				if err := svc.Feed(batch); err != nil {
					return // Close raced the pacer; Err is checked below
				}
				next = hi
				if next >= len(w.Updates) {
					next = 0 // cycle the tape; re-deletes are tolerated
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(o.Seed ^ seed)
			for q := 0; q < walksPer; q++ {
				st := graph.VertexID(r.Intn(g.NumVertices()))
				if _, err := svc.Query(st, o.WalkLength); err != nil {
					return
				}
			}
		}(uint64(c) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Snapshot counters at the same instant as elapsed: updates landing
	// after the window would inflate updates/s and the achieved load.
	st := svc.Stats()
	close(done)
	feeder.Wait()
	if err := svc.Close(); err != nil {
		return ShardedSeries{}, fmt.Errorf("ingest: %w", err)
	}
	if st.Dropped > 0 {
		return ShardedSeries{}, fmt.Errorf("%d feed batches dropped", st.Dropped)
	}

	achieved := 0.0
	if st.Steps+st.Updates > 0 {
		achieved = float64(st.Updates) / float64(st.Steps+st.Updates)
	}
	return ShardedSeries{
		Shards:          shards,
		UpdateLoadPct:   load * 100,
		Walks:           st.Queries,
		Steps:           st.Steps,
		Updates:         st.Updates,
		Transfers:       st.Transfers,
		Local:           st.Local,
		ElapsedSec:      elapsed.Seconds(),
		WalksPerSec:     float64(st.Queries) / elapsed.Seconds(),
		StepsPerSec:     float64(st.Steps) / elapsed.Seconds(),
		UpdatesPerSec:   float64(st.Updates) / elapsed.Seconds(),
		TransferRatio:   st.TransferRatio(),
		AchievedLoadPct: achieved * 100,
	}, nil
}
