package bench

import (
	"fmt"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/walk"
)

// runAblation probes the design choices DESIGN.md calls out:
//
//   - radix base 2^b (supplement §9.2): larger bases shrink the group count
//     K (cheaper updates) but coarsen groups;
//   - the Equation 9 thresholds α/β: trading dense-group rejection cost
//     against regular-group memory;
//   - adaptive vs baseline representation as a sanity anchor.
func runAblation(o *Options) error {
	abbr := o.Datasets[0]
	d, g, err := o.dataset(abbr)
	if err != nil {
		return err
	}
	w, err := o.workload(abbr, g, gen.UpdMixed, o.batchSize(d))
	if err != nil {
		return err
	}
	wcfg := o.walkConfig(g.NumVertices())

	type variant struct {
		name string
		cfg  core.Config
	}
	mk := func(name string, mut func(*core.Config)) variant {
		cfg := o.bingoConfig()
		mut(&cfg)
		return variant{name, cfg}
	}
	variants := []variant{
		mk("base2 α40 β10 (paper)", func(c *core.Config) {}),
		mk("base4", func(c *core.Config) { c.RadixBits = 2 }),
		mk("base16", func(c *core.Config) { c.RadixBits = 4 }),
		mk("α25 β5", func(c *core.Config) { c.AlphaPct, c.BetaPct = 25, 5 }),
		mk("α60 β20", func(c *core.Config) { c.AlphaPct, c.BetaPct = 60, 20 }),
		mk("no adaptation (BS)", func(c *core.Config) { c.Adaptive = false }),
		mk("linear edge lookup", func(c *core.Config) { c.IndexThreshold = 1 << 30 }),
		mk("always-hashed lookup", func(c *core.Config) { c.IndexThreshold = 1 }),
	}

	t := newTable(o.Out)
	t.row("variant", "update time(s)", "sampling time(s)", "memory(GB)", "groups/vertex")
	for _, v := range variants {
		o.logf("ablation %s", v.name)
		s, err := core.NewFromCSR(w.Initial, v.cfg)
		if err != nil {
			return err
		}
		upd := timed(func() {
			for _, b := range w.Batches() {
				if err := s.ApplyUpdates(b); err != nil {
					panic(err)
				}
			}
		})
		smp := timed(func() { walk.SimpleSampling(s, wcfg) })
		gs := s.CollectGroupStats()
		var groups int64
		for _, n := range gs.Groups {
			groups += n
		}
		perVertex := float64(groups) / float64(s.NumVertices())
		t.row(v.name, secs(upd), secs(smp), gb(s.Footprint()), fmt.Sprintf("%.2f", perVertex))
	}
	t.flush()
	return nil
}
