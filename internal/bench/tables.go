package bench

import (
	"fmt"
	"time"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/sampling"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// runTable1 measures the per-operation cost of Bingo versus the three
// classical samplers on a single hub vertex, the empirical counterpart of
// the paper's Table 1 complexity comparison. Bingo's insert/delete stay
// flat as the degree grows (O(K)); alias and ITS update costs grow with d;
// sampling is O(1) for Bingo and alias, O(log d) for ITS, and
// distribution-dependent for rejection.
func runTable1(o *Options) error {
	degrees := []int{1 << 10, 1 << 13, 1 << 16}
	t := newTable(o.Out)
	t.row("method", "degree", "ns/insert", "ns/delete", "ns/sample", "memory(MB)")
	r := xrand.New(o.Seed)
	for _, d := range degrees {
		biases := make([]uint64, d)
		for i := range biases {
			biases[i] = 1 + r.Uint64n(1<<16)
		}
		weights := make([]float64, d)
		for i, b := range biases {
			weights[i] = float64(b)
		}

		// Bingo: a hub vertex with degree d.
		s, err := core.New(d+2, o.bingoConfig())
		if err != nil {
			return err
		}
		hub := graph.VertexID(d + 1)
		for i, b := range biases {
			if err := s.Insert(hub, graph.VertexID(i), b); err != nil {
				return err
			}
		}
		const ops = 2000
		insNs := timed(func() {
			for i := 0; i < ops; i++ {
				_ = s.Insert(hub, graph.VertexID(i%d), biases[i%d])
			}
		}).Nanoseconds() / ops
		delNs := timed(func() {
			for i := 0; i < ops; i++ {
				_ = s.Delete(hub, graph.VertexID(i%d))
			}
		}).Nanoseconds() / ops
		rr := xrand.New(1)
		smpNs := perOp(func(n int) {
			for i := 0; i < n; i++ {
				s.Sample(hub, rr)
			}
		})
		t.row("Bingo", fmt.Sprint(d), fmt.Sprint(insNs), fmt.Sprint(delNs), fmt.Sprint(smpNs), mb(s.Footprint()))

		// Alias method: any update rebuilds the whole table.
		var alias sampling.AliasTable
		alias.Build(weights)
		aliasIns := perOpN(200, func(n int) {
			for i := 0; i < n; i++ {
				alias.Build(weights) // O(d) rebuild per update
			}
		})
		aliasSmp := perOp(func(n int) {
			for i := 0; i < n; i++ {
				alias.Sample(rr)
			}
		})
		t.row("Alias", fmt.Sprint(d), fmt.Sprint(aliasIns), fmt.Sprint(aliasIns), fmt.Sprint(aliasSmp), mb(alias.Footprint()))

		// ITS: O(1) append insert, O(d) delete (rebuild), O(log d) sample.
		var its sampling.Prefix
		its.Build(weights)
		itsDel := perOpN(200, func(n int) {
			for i := 0; i < n; i++ {
				its.Build(weights)
			}
		})
		itsSmp := perOp(func(n int) {
			for i := 0; i < n; i++ {
				its.Sample(rr)
			}
		})
		t.row("ITS", fmt.Sprint(d), "~1", fmt.Sprint(itsDel), fmt.Sprint(itsSmp), mb(its.Footprint()))

		// Rejection: O(1) updates, distribution-dependent sampling.
		rej := sampling.NewRejection(weights)
		rejIns := perOp(func(n int) {
			for i := 0; i < n; i++ {
				rej.Append(weights[i%d])
				rej.SwapDelete(rej.N() - 1)
			}
		})
		rejSmp := perOp(func(n int) {
			for i := 0; i < n; i++ {
				rej.Sample(rr)
			}
		})
		t.row("Rejection", fmt.Sprint(d), fmt.Sprint(rejIns), fmt.Sprint(rejIns), fmt.Sprint(rejSmp), mb(rej.Footprint()))
	}
	t.flush()
	return nil
}

// perOp times fn(n) for a calibrated n and returns ns/op.
func perOp(fn func(n int)) int64 { return perOpN(20000, fn) }

func perOpN(n int, fn func(n int)) int64 {
	d := timed(func() { fn(n) })
	return d.Nanoseconds() / int64(n)
}

// runTable2 prints generated dataset statistics next to the paper's
// Table 2 values.
func runTable2(o *Options) error {
	t := newTable(o.Out)
	t.row("dataset", "abbr", "scale", "paperV", "paperE", "genV", "genE", "avgDeg", "maxDeg")
	for _, abbr := range o.Datasets {
		d, g, err := o.dataset(abbr)
		if err != nil {
			return err
		}
		st := g.ComputeStats()
		t.row(d.Name, d.Abbr, fmt.Sprintf("%.4f", o.effScale(d)),
			fmt.Sprint(d.PaperV), fmt.Sprint(d.PaperE),
			fmt.Sprint(st.Vertices), fmt.Sprint(st.Edges),
			fmt.Sprintf("%.1f", st.AvgDegree), fmt.Sprint(st.MaxDegree))
	}
	t.flush()
	return nil
}

// runTable3 is the headline comparison: {apps} × {update kinds} ×
// {datasets} × {systems}, each cell running Rounds rounds of (ingest one
// batch, run the application), reporting total runtime and final memory.
func runTable3(o *Options) error {
	kinds := []gen.UpdateKind{gen.UpdInsertion, gen.UpdDeletion, gen.UpdMixed}
	apps := map[string]walk.App{
		"DeepWalk": walk.AppDeepWalk, "node2vec": walk.AppNode2Vec, "PPR": walk.AppPPR,
	}
	t := newTable(o.Out)
	header := []string{"app", "updates", "system"}
	for _, abbr := range o.Datasets {
		header = append(header, abbr+" time(s)", abbr+" mem(GB)")
	}
	header = append(header, "avg speedup vs Bingo")
	t.row(header...)

	type cell struct {
		dur time.Duration
		mem int64
		ok  bool
	}
	for _, appName := range o.Apps {
		app, known := apps[appName]
		if !known {
			return fmt.Errorf("bench: unknown app %q", appName)
		}
		for _, kind := range kinds {
			results := map[string][]cell{}
			for _, abbr := range o.Datasets {
				d, g, err := o.dataset(abbr)
				if err != nil {
					return err
				}
				w, err := o.workload(abbr, g, kind, o.batchSize(d))
				if err != nil {
					return err
				}
				wcfg := o.walkConfig(w.Initial.NumVertices())
				for _, system := range o.Systems {
					o.logf("table3 %s/%s/%s/%s", appName, kind, abbr, system)
					e, err := o.newEngine(system, w.Initial)
					if err != nil {
						return err
					}
					dur := timed(func() {
						for _, b := range w.Batches() {
							if err := e.ApplyUpdates(b); err != nil {
								panic(err)
							}
							walk.Run(app, e, wcfg)
						}
					})
					results[system] = append(results[system], cell{dur, e.Footprint(), true})
				}
			}
			// Emit one row per system, plus the average speedup.
			bingo := results["Bingo"]
			for _, system := range o.Systems {
				row := []string{appName, kind.String(), system}
				var speedup float64
				var n int
				for i, c := range results[system] {
					row = append(row, secs(c.dur), gb(c.mem))
					if system != "Bingo" && len(bingo) > i && bingo[i].dur > 0 {
						speedup += c.dur.Seconds() / bingo[i].dur.Seconds()
						n++
					}
				}
				if system == "Bingo" {
					row = append(row, "-")
				} else if n > 0 {
					row = append(row, fmt.Sprintf("%.2f", speedup/float64(n)))
				}
				t.row(row...)
			}
			t.flush()
		}
	}
	return nil
}

// runTable4 reports the group-type conversion ratio matrix on LJ under
// mixed updates: conversions(from→to) / touches(from), the quantity the
// paper bounds at 0.47%.
func runTable4(o *Options) error {
	d, g, err := o.dataset("LJ")
	if err != nil {
		return err
	}
	w, err := o.workload("LJ", g, gen.UpdMixed, o.batchSize(d))
	if err != nil {
		return err
	}
	s, err := core.NewFromCSR(w.Initial, o.bingoConfig())
	if err != nil {
		return err
	}
	s.ResetConversionStats()
	for _, b := range w.Batches() {
		if _, err := s.ApplyBatch(b); err != nil {
			return err
		}
	}
	conv, touches := s.ConversionStats()
	names := map[core.GroupKind]string{
		core.KindDense: "Dense", core.KindRegular: "Regular",
		core.KindSparse: "Sparse", core.KindOne: "One element",
	}
	order := []core.GroupKind{core.KindDense, core.KindRegular, core.KindSparse, core.KindOne}
	t := newTable(o.Out)
	t.row("from \\ to", "Dense", "Regular", "Sparse", "One element", "touches")
	for _, from := range order {
		row := []string{names[from]}
		for _, to := range order {
			if from == to {
				row = append(row, "—")
				continue
			}
			ratio := 0.0
			if touches[from] > 0 {
				ratio = float64(conv[from][to]) * 100 / float64(touches[from])
			}
			row = append(row, fmt.Sprintf("%.3f%%", ratio))
		}
		row = append(row, fmt.Sprint(touches[from]))
		t.row(row...)
	}
	t.flush()
	return nil
}
