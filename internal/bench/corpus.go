package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// CorpusMaintenance is the standing-walk-corpus scenario: a corpus of
// K walks per vertex rides a 4-shard live service while a feeder
// streams a hub-churn tape — deletes and reinserts of hub out-edges,
// the worst case for walk validity because hub vertices sit on a large
// share of all standing walks — and a client fleet draws corpus
// slices. The measured quantities are the incremental-maintenance
// economics: resample amplification (suffix steps actually resampled
// per step a full per-update recompute of every affected walk would
// have sampled — the <1 headroom is the scenario's point), refresh lag
// (touch-to-repair latency ceiling), and the serving split under the
// bounded-staleness contract. Emits BENCH_corpus.json for diffing
// runs.

// CorpusSeries is one measured (transport, load) grid cell.
type CorpusSeries struct {
	Transport         string  `json:"transport"`
	Shards            int     `json:"shards"`
	ChurnEvents       int64   `json:"churn_events"`
	Refreshes         int64   `json:"refreshes"`
	Resamples         int64   `json:"resamples"`
	ResampledSteps    int64   `json:"resampled_steps"`
	FullWalkSteps     int64   `json:"full_walk_equivalent_steps"`
	Amplification     float64 `json:"amplification"` // resampled/full-walk-equivalent
	Speedup           float64 `json:"speedup_vs_full_recompute"`
	MaxRefreshLagMs   int64   `json:"max_refresh_lag_ms"`
	Queries           int64   `json:"queries"`
	CorpusServed      int64   `json:"corpus_served"`
	StaleServed       int64   `json:"stale_served"`
	Fallbacks         int64   `json:"fallbacks"`
	ElapsedSec        float64 `json:"elapsed_sec"`
	QueriesPerSec     float64 `json:"queries_per_sec"`
	ChurnPerSec       float64 `json:"churn_per_sec"`
	ResampStepsPerSec float64 `json:"resampled_steps_per_sec"`
}

// CorpusReport is the BENCH_corpus.json document.
type CorpusReport struct {
	Scenario       string         `json:"scenario"`
	Dataset        string         `json:"dataset"`
	Vertices       int            `json:"vertices"`
	Edges          int64          `json:"edges"`
	Shards         int            `json:"shards"`
	WalksPerVertex int            `json:"walks_per_vertex"`
	WalkLength     int            `json:"walk_length"`
	Clients        int            `json:"clients"`
	GOMAXPROCS     int            `json:"gomaxprocs"`
	Series         []CorpusSeries `json:"series"`
}

// corpusShards is the scenario's fixed shard count (the acceptance
// geometry: hub churn crosses shard boundaries, so maintenance exercises
// the fabric, not just one engine).
const corpusShards = 4

// corpusWalksPerVertex is K for the measured corpus.
const corpusWalksPerVertex = 2

// hubChurnTape builds a delete/reinsert churn stream over the hub
// vertices' existing out-edges: event 2i deletes a hub edge, event 2i+1
// restores it. Every event lands on a vertex that a large share of
// standing walks pass through — maximum per-event walk invalidation,
// minimum net graph drift (the graph keeps its shape, so the corpus
// keeps resampling rather than decaying into dead ends).
func hubChurnTape(g *graph.CSR, hubs []graph.VertexID, n int, seed uint64) []graph.Update {
	r := xrand.New(seed ^ 0xc0b9)
	ups := make([]graph.Update, 0, n)
	for len(ups) < n {
		h := hubs[r.Intn(len(hubs))]
		deg := g.Degree(h)
		if deg == 0 {
			continue
		}
		i := r.Intn(deg)
		dst := g.Neighbors(h)[i]
		bias := g.Biases(h)[i]
		ups = append(ups,
			graph.Update{Op: graph.OpDelete, Src: h, Dst: dst},
			graph.Update{Op: graph.OpInsert, Src: h, Dst: dst, Bias: bias},
		)
	}
	return ups[:n]
}

func runCorpus(o *Options) error {
	abbr := o.Datasets[0]
	d, g, err := o.dataset(abbr)
	if err != nil {
		return err
	}
	events := o.batchSize(d) * 4
	hubs := hubStarts(g)
	tape := hubChurnTape(g, hubs, events, o.Seed)

	clients := o.Workers
	rep := CorpusReport{
		Scenario:       "CorpusMaintenance",
		Dataset:        abbr,
		Vertices:       g.NumVertices(),
		Edges:          g.NumEdges(),
		Shards:         corpusShards,
		WalksPerVertex: corpusWalksPerVertex,
		WalkLength:     o.WalkLength,
		Clients:        clients,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}

	tbl := newTable(o.Out)
	tbl.row("transport", "shards", "churn", "resamples", "resampled steps", "full-walk steps", "amplification", "speedup", "max lag ms", "queries/s", "fallbacks")
	for _, transport := range o.Transports {
		ser, err := corpusCell(o, g, transport, clients, hubs, tape)
		if err != nil {
			return fmt.Errorf("%s: %w", transport, err)
		}
		rep.Series = append(rep.Series, ser)
		tbl.row(
			ser.Transport,
			fmt.Sprintf("%d", ser.Shards),
			fmt.Sprintf("%d", ser.ChurnEvents),
			fmt.Sprintf("%d", ser.Resamples),
			fmt.Sprintf("%d", ser.ResampledSteps),
			fmt.Sprintf("%d", ser.FullWalkSteps),
			fmt.Sprintf("%.4f", ser.Amplification),
			fmt.Sprintf("%.0fx", ser.Speedup),
			fmt.Sprintf("%d", ser.MaxRefreshLagMs),
			fmt.Sprintf("%.0f", ser.QueriesPerSec),
			fmt.Sprintf("%d", ser.Fallbacks),
		)
	}
	tbl.flush()

	if o.CorpusJSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.CorpusJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.CorpusJSONPath)
	}
	return nil
}

// corpusCell measures one transport on fresh engines: grow the corpus,
// stream the full churn tape while clients draw hub walks, drain with a
// final Sync so the tallies cover every event, then snapshot.
func corpusCell(o *Options, g *graph.CSR, transport string, clients int, hubs []graph.VertexID, tape []graph.Update) (CorpusSeries, error) {
	crew := clients / corpusShards
	if crew < 1 {
		crew = 1
	}
	cache := fabric.CacheSpec{}
	cfg := walk.ShardedLiveConfig{WalkersPerShard: crew, WalkLength: o.WalkLength, Seed: o.Seed, Cache: cache, Kernel: walk.KernelAuto}
	svc, err := newShardedServiceWithConfig(o, g, transport, cache, corpusShards, crew, cfg)
	if err != nil {
		return CorpusSeries{}, err
	}
	backend, ok := svc.(walk.CorpusBackend)
	if !ok {
		svc.Close()
		return CorpusSeries{}, fmt.Errorf("bench: %T does not back a corpus", svc)
	}
	corpus, err := walk.NewShardedCorpusService(backend, g.NumVertices(), walk.CorpusConfig{
		WalksPerVertex: corpusWalksPerVertex,
		WalkLength:     o.WalkLength,
		Seed:           o.Seed,
	})
	if err != nil {
		svc.Close()
		return CorpusSeries{}, err
	}

	start := time.Now()
	var feeder sync.WaitGroup
	feeder.Add(1)
	var feedErr atomic.Value
	go func() {
		defer feeder.Done()
		for lo := 0; lo < len(tape); lo += 256 {
			hi := lo + 256
			if hi > len(tape) {
				hi = len(tape)
			}
			if err := corpus.Feed(append([]graph.Update(nil), tape[lo:hi]...)); err != nil {
				feedErr.Store(err)
				return
			}
		}
	}()

	// Clients draw hub-started corpus slices for as long as the churn
	// streams (plus the minimum window so short tapes still measure a
	// real serving mix).
	done := make(chan struct{})
	go func() { feeder.Wait(); close(done) }()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(o.Seed ^ seed)
			for {
				select {
				case <-done:
					if time.Since(start) >= shardedMinWindow {
						return
					}
				default:
				}
				if _, err := corpus.Query(hubs[r.Intn(len(hubs))], o.WalkLength); err != nil {
					return
				}
			}
		}(uint64(c) + 1)
	}
	wg.Wait()
	feeder.Wait()
	if err, _ := feedErr.Load().(error); err != nil {
		corpus.Close()
		return CorpusSeries{}, fmt.Errorf("feed: %w", err)
	}
	// Final drain: every churn event refreshed into the corpus before the
	// tallies are read, so amplification covers the whole tape.
	if err := corpus.Sync(); err != nil {
		corpus.Close()
		return CorpusSeries{}, fmt.Errorf("sync: %w", err)
	}
	elapsed := time.Since(start)
	cs := corpus.Stats()
	if err := corpus.Close(); err != nil {
		return CorpusSeries{}, fmt.Errorf("close: %w", err)
	}

	amp := 0.0
	speedup := 0.0
	if cs.FullWalkSteps > 0 {
		amp = float64(cs.ResampledSteps) / float64(cs.FullWalkSteps)
	}
	if cs.ResampledSteps > 0 {
		speedup = float64(cs.FullWalkSteps) / float64(cs.ResampledSteps)
	}
	return CorpusSeries{
		Transport:         transport,
		Shards:            corpusShards,
		ChurnEvents:       int64(len(tape)),
		Refreshes:         cs.Refreshes,
		Resamples:         cs.Resamples,
		ResampledSteps:    cs.ResampledSteps,
		FullWalkSteps:     cs.FullWalkSteps,
		Amplification:     amp,
		Speedup:           speedup,
		MaxRefreshLagMs:   cs.RefreshLagMs,
		Queries:           cs.Queries,
		CorpusServed:      cs.CorpusServed,
		StaleServed:       cs.StaleServed,
		Fallbacks:         cs.Fallbacks,
		ElapsedSec:        elapsed.Seconds(),
		QueriesPerSec:     float64(cs.Queries) / elapsed.Seconds(),
		ChurnPerSec:       float64(len(tape)) / elapsed.Seconds(),
		ResampStepsPerSec: float64(cs.ResampledSteps) / elapsed.Seconds(),
	}, nil
}
