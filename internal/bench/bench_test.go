package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyOptions runs every experiment at smoke-test scale: two small
// datasets, tiny batches, few walkers.
func tinyOptions(buf *bytes.Buffer) Options {
	o := DefaultOptions(buf)
	o.Scale = 0.001
	o.MaxEdges = 30_000
	o.BatchSize = 500
	o.Rounds = 2
	o.WalkLength = 10
	o.MaxWalkers = 200
	o.MinWindow = 20 * time.Millisecond
	o.Datasets = []string{"AM", "GO"}
	return o
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", tinyOptions(&buf)); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRequiresOut(t *testing.T) {
	o := Options{}
	if err := Run("table2", o); err == nil {
		t.Error("nil Out accepted")
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	if len(exps) != len(registry) {
		t.Fatalf("%d experiments listed, registry has %d", len(exps), len(registry))
	}
	joined := strings.Join(exps, "\n")
	for _, want := range []string{"table1", "table3", "fig9", "fig16", "ablation"} {
		if !strings.Contains(joined, want) {
			t.Errorf("experiment %s missing from list", want)
		}
	}
}

// TestEveryExperimentRuns smoke-tests each runner end to end and checks
// the output contains the expected headers.
func TestEveryExperimentRuns(t *testing.T) {
	wantHeader := map[string]string{
		"table1":     "ns/sample",
		"table2":     "avgDeg",
		"table3":     "avg speedup vs Bingo",
		"table4":     "from \\ to",
		"fig9":       "Power-law",
		"fig11":      "saving×",
		"fig12":      "updates/s batched",
		"fig13":      "rebuild(s)",
		"fig14":      "float time(s)",
		"fig15a":     "RebuildITS time(s)",
		"fig15b":     "walk length",
		"fig15c":     "dense-group %",
		"fig16":      "FlowWalker_R(s)",
		"ablation":   "groups/vertex",
		"concurrent": "walks/s",
	}
	for _, r := range registry {
		r := r
		t.Run(r.name, func(t *testing.T) {
			var buf bytes.Buffer
			o := tinyOptions(&buf)
			if r.name == "table3" {
				// Keep the grid tiny: one app, two systems.
				o.Apps = []string{"DeepWalk"}
				o.Systems = []string{"Bingo", "FlowWalker"}
				o.Datasets = []string{"AM"}
			}
			if err := Run(r.name, o); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if want := wantHeader[r.name]; want != "" && !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
			if len(out) < 50 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func TestEffScaleCapsLargeDatasets(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Scale = 1.0
	o.MaxEdges = 10_000
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	_, g, err := o.dataset("TW")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() > 10_000 {
		t.Errorf("edge cap ignored: %d edges", g.NumEdges())
	}
}

func TestWalkersCapAndCoverage(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	starts := o.walkers(100000)
	if len(starts) != o.MaxWalkers {
		t.Errorf("walkers %d, want %d", len(starts), o.MaxWalkers)
	}
	for _, s := range starts {
		if int(s) >= 100000 {
			t.Fatalf("start %d out of range", s)
		}
	}
	small := o.walkers(50)
	if len(small) != 50 {
		t.Errorf("small-graph walkers %d, want 50", len(small))
	}
}

func TestConcurrentScenarioWritesJSON(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Datasets = []string{"AM"}
	// Shrink the kernel × procs grid to keep the smoke run fast; the
	// full default grid is exercised by the committed artifacts.
	o.KernelModes = []string{"sparse", "dense"}
	o.Procs = []int{1}
	o.JSONPath = filepath.Join(t.TempDir(), "BENCH_concurrent.json")
	if err := Run("concurrent", o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.JSONPath)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	var rep ConcurrentReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report unparseable: %v", err)
	}
	wantSeries := len(o.KernelModes) * len(o.Procs) * (len(concurrentLoads) + len(concurrentHubLoads))
	if rep.Scenario != "ConcurrentThroughput" || len(rep.Series) != wantSeries {
		t.Fatalf("report %+v: want scenario ConcurrentThroughput with %d series", rep, wantSeries)
	}
	for i, ser := range rep.Series {
		if ser.Walks <= 0 || ser.StepsPerSec <= 0 {
			t.Errorf("series %d has no walk throughput: %+v", i, ser)
		}
	}
	if rep.Series[0].Updates != 0 {
		t.Errorf("0%% load applied %d updates", rep.Series[0].Updates)
	}
}
