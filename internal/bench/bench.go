// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation (§6), each printing the same rows/series the paper
// reports. cmd/bingobench is the CLI front end; bench_test.go at the module
// root exposes testing.B entry points.
//
// Scaling: datasets are generated at Options.Scale of the paper's sizes
// (Table 2), additionally capped at Options.MaxEdges edges, and BATCHSIZE
// scales identically (the paper uses 100 K at full size). Absolute numbers
// therefore differ from the paper's A100 cluster; the *shape* of each
// result — who wins, by what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/bingo-rw/bingo/internal/baseline"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Options configure a harness run.
type Options struct {
	// Scale multiplies the paper's dataset sizes (default 0.01).
	Scale float64
	// MaxEdges caps any generated dataset (default 2,000,000), further
	// reducing the effective scale of the largest graphs.
	MaxEdges int64
	// BatchSize is the per-round update count; 0 derives the paper's
	// 100 K scaled by the effective scale (minimum 1,000).
	BatchSize int
	// Rounds is the number of update+walk rounds (paper: 10).
	Rounds int
	// WalkLength is the walk length (paper: 80).
	WalkLength int
	// MaxWalkers caps walkers per round (paper uses one per vertex; the
	// cap keeps single-machine runs tractable). 0 means 5,000.
	MaxWalkers int
	// Workers bounds engine/walk parallelism (0 = 1).
	Workers int
	// Seed drives all generators.
	Seed uint64
	// Datasets filters by abbreviation (nil = all five).
	Datasets []string
	// Systems filters Table 3 systems (nil = all four).
	Systems []string
	// Apps filters Table 3 applications (nil = all three).
	Apps []string
	// Out receives the report (required).
	Out io.Writer
	// JSONPath, when non-empty, is where the concurrent scenario writes
	// its machine-readable BENCH_concurrent.json report.
	JSONPath string
	// ShardedJSONPath, when non-empty, is where the sharded scenario
	// writes its machine-readable BENCH_sharded.json report.
	ShardedJSONPath string
	// RebalanceJSONPath, when non-empty, is where the rebalance scenario
	// writes its machine-readable BENCH_rebalance.json report.
	RebalanceJSONPath string
	// BackpressureJSONPath, when non-empty, is where the backpressure
	// scenario writes its machine-readable BENCH_backpressure.json
	// report.
	BackpressureJSONPath string
	// CorpusJSONPath, when non-empty, is where the corpus scenario
	// writes its machine-readable BENCH_corpus.json report.
	CorpusJSONPath string
	// CoordScaleJSONPath, when non-empty, is where the coordscale
	// scenario writes its machine-readable BENCH_coordscale.json report.
	CoordScaleJSONPath string
	// Transports filters the sharded scenario's transport dimension:
	// "inproc" (in-process fabric) and/or "tcp" (loopback tcpgob fabric).
	// Nil means both.
	Transports []string
	// CacheModes filters the sharded scenario's hub-cache dimension:
	// "on" and/or "off". Nil means both.
	CacheModes []string
	// KernelModes filters the stepping-kernel dimension of the concurrent
	// and sharded scenarios: "sparse", "dense", and/or "auto". Nil means
	// all three.
	KernelModes []string
	// Procs sweeps GOMAXPROCS for the kernel dimension of the concurrent
	// and sharded scenarios (default [1, 4]).
	Procs []int
	// MinWindow is the minimum measurement window per concurrent cell
	// (default 1s; smoke tests shrink it). Sub-second windows on a shared
	// vCPU swing ±35–50% run to run from scheduler interference alone —
	// wider than the kernel effects the sweep exists to resolve — so
	// committed artifacts must come from full-length windows.
	MinWindow time.Duration
	// Verbose adds progress lines.
	Verbose bool

	// Generated graphs and workloads are deterministic in (Seed, Scale),
	// so runs cache them across experiments and grid cells.
	graphCache map[string]*graph.CSR
	wlCache    map[string]*gen.Workload
}

// DefaultOptions returns the standard scaled-down configuration.
func DefaultOptions(out io.Writer) Options {
	return Options{
		Scale:      0.01,
		MaxEdges:   2_000_000,
		Rounds:     10,
		WalkLength: 80,
		MaxWalkers: 5000,
		Seed:       42,
		Out:        out,
	}
}

func (o *Options) normalize() error {
	if o.Out == nil {
		return fmt.Errorf("bench: Options.Out is required")
	}
	if o.Scale <= 0 {
		o.Scale = 0.01
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 2_000_000
	}
	if o.Rounds <= 0 {
		o.Rounds = 10
	}
	if o.WalkLength <= 0 {
		o.WalkLength = 80
	}
	if o.MaxWalkers <= 0 {
		o.MaxWalkers = 5000
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MinWindow <= 0 {
		o.MinWindow = time.Second
	}
	if len(o.Datasets) == 0 {
		for _, d := range gen.Datasets {
			o.Datasets = append(o.Datasets, d.Abbr)
		}
	}
	if len(o.Systems) == 0 {
		o.Systems = []string{"Bingo", "KnightKing", "RebuildITS", "FlowWalker"}
	}
	if len(o.Apps) == 0 {
		o.Apps = []string{"DeepWalk", "node2vec", "PPR"}
	}
	if len(o.Transports) == 0 {
		o.Transports = []string{"inproc", "tcp"}
	}
	for _, tr := range o.Transports {
		if tr != "inproc" && tr != "tcp" {
			return fmt.Errorf("bench: unknown transport %q (want inproc or tcp)", tr)
		}
	}
	if len(o.CacheModes) == 0 {
		o.CacheModes = []string{"on", "off"}
	}
	for _, m := range o.CacheModes {
		if m != "on" && m != "off" {
			return fmt.Errorf("bench: unknown cache mode %q (want on or off)", m)
		}
	}
	if len(o.KernelModes) == 0 {
		o.KernelModes = []string{"sparse", "dense", "auto"}
	}
	for _, m := range o.KernelModes {
		if _, err := walk.ParseKernelMode(m); err != nil {
			return err
		}
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 4}
	}
	for _, p := range o.Procs {
		if p < 1 {
			return fmt.Errorf("bench: GOMAXPROCS sweep value %d < 1", p)
		}
	}
	if o.graphCache == nil {
		o.graphCache = map[string]*graph.CSR{}
	}
	if o.wlCache == nil {
		o.wlCache = map[string]*gen.Workload{}
	}
	return nil
}

// effScale returns the dataset's effective scale under the edge cap.
func (o *Options) effScale(d gen.Dataset) float64 {
	s := o.Scale
	if int64(float64(d.PaperE)*s) > o.MaxEdges {
		s = float64(o.MaxEdges) / float64(d.PaperE)
	}
	return s
}

// batchSize returns the effective per-round batch size for a dataset.
func (o *Options) batchSize(d gen.Dataset) int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	bs := int(100_000 * o.effScale(d))
	if bs < 1000 {
		bs = 1000
	}
	return bs
}

// dataset generates (or recalls) a dataset at the effective scale with
// default biases.
func (o *Options) dataset(abbr string) (gen.Dataset, *graph.CSR, error) {
	d, err := gen.DatasetByAbbr(abbr)
	if err != nil {
		return d, nil, err
	}
	if g, ok := o.graphCache[abbr]; ok {
		return d, g, nil
	}
	o.logf("generating %s at scale %.4f", abbr, o.effScale(d))
	g, err := d.Generate(o.effScale(d), o.Seed)
	if err == nil {
		o.graphCache[abbr] = g
	}
	return d, g, err
}

// workload builds (or recalls) the §6.1 update workload for a dataset.
// Sharing is safe: batch application reorders updates only stably per
// source, which leaves every batch's semantics unchanged.
func (o *Options) workload(abbr string, g *graph.CSR, kind gen.UpdateKind, batchSize int) (*gen.Workload, error) {
	key := fmt.Sprintf("%s/%v/%d/%d", abbr, kind, batchSize, o.Rounds)
	if w, ok := o.wlCache[key]; ok {
		return w, nil
	}
	w, err := gen.BuildWorkload(g, kind, batchSize, o.Rounds, o.Seed)
	if err == nil {
		o.wlCache[key] = w
	}
	return w, err
}

// walkers returns the capped start set for a graph.
func (o *Options) walkers(numVertices int) []graph.VertexID {
	n := numVertices
	if n > o.MaxWalkers {
		n = o.MaxWalkers
	}
	starts := make([]graph.VertexID, n)
	stride := numVertices / n
	if stride == 0 {
		stride = 1
	}
	for i := range starts {
		starts[i] = graph.VertexID(i * stride % numVertices)
	}
	return starts
}

// degreeWeightedStarts draws n start vertices with probability proportional
// to out-degree — the stationary-ish vertex mix long walks actually sample
// from, used by experiments that isolate per-sample cost.
func degreeWeightedStarts(g *graph.CSR, n int, seed uint64) []graph.VertexID {
	r := xrand.New(seed ^ 0xdeb)
	total := uint64(g.NumEdges())
	if total == 0 {
		return nil
	}
	starts := make([]graph.VertexID, n)
	for i := range starts {
		// Pick the vertex owning the x-th edge endpoint via binary
		// search on the CSR offsets.
		x := int64(r.Uint64n(total))
		lo, hi := 0, g.NumVertices()
		for lo < hi {
			mid := (lo + hi) / 2
			if g.Offsets[mid+1] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		starts[i] = graph.VertexID(lo)
	}
	return starts
}

func (o *Options) walkConfig(numVertices int) walk.Config {
	return walk.Config{
		Length:  o.WalkLength,
		Starts:  o.walkers(numVertices),
		Workers: o.Workers,
		Seed:    o.Seed ^ 0xa11ce,
	}
}

// bingoConfig returns the default Bingo configuration for the harness.
func (o *Options) bingoConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Workers = o.Workers
	return cfg
}

// newEngine constructs a system under test by name.
func (o *Options) newEngine(system string, g *graph.CSR) (walk.Dynamic, error) {
	switch system {
	case "Bingo":
		return core.NewFromCSR(g, o.bingoConfig())
	case "KnightKing":
		return baseline.NewKnightKing(g), nil
	case "RebuildITS":
		return baseline.NewRebuildITS(g), nil
	case "FlowWalker":
		return baseline.NewFlowWalker(g), nil
	default:
		return nil, fmt.Errorf("bench: unknown system %q", system)
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Verbose {
		fmt.Fprintf(o.Out, "# "+format+"\n", args...)
	}
}

// timed runs fn and returns its wall-clock duration.
func timed(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// gb formats bytes as gigabytes with paper-style precision.
func gb(b int64) string { return fmt.Sprintf("%.3f", float64(b)/1e9) }

// mb formats bytes as megabytes.
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/1e6) }

// secs formats a duration in seconds with paper-style precision.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// table is a tiny aligned-output helper.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// runner is an experiment entry point.
type runner struct {
	name, desc string
	fn         func(*Options) error
}

var registry = []runner{
	{"table1", "complexity microbenchmark: Bingo vs alias/ITS/rejection per-operation cost", runTable1},
	{"table2", "generated dataset statistics vs the paper's Table 2", runTable2},
	{"table3", "Bingo vs SOTA: runtime and memory across apps, update kinds, datasets", runTable3},
	{"table4", "group-type conversion ratios on LJ under mixed updates", runTable4},
	{"fig9", "group element ratio per bit position for three bias distributions", runFig9},
	{"fig11", "adaptive group representation memory impact (BS vs GA)", runFig11},
	{"fig12", "streaming vs batched update throughput", runFig12},
	{"fig13", "time breakdown: BS vs GA (insert/delete, rebuild, sampling)", runFig13},
	{"fig14", "integer vs floating-point bias time and memory", runFig14},
	{"fig15a", "batch size sweep: Bingo vs RebuildITS", runFig15a},
	{"fig15b", "walk length sweep: Bingo vs RebuildITS", runFig15b},
	{"fig15c", "bias distribution impact on time and memory", runFig15c},
	{"fig16", "piecewise breakdown: updates and sampling vs FlowWalker", runFig16},
	{"ablation", "design ablations: radix base, α/β thresholds, lookup index", runAblation},
	{"concurrent", "walk-while-ingest throughput at 0/10/50% update load (BENCH_concurrent.json)", runConcurrent},
	{"sharded", "sharded live serving: walks/s and transfer ratio at 0/10/50% load × 1/2/4/8 shards × inproc/tcp transports (BENCH_sharded.json)", runSharded},
	{"rebalance", "heat-aware rebalancing: hottest shard's step share under hub-skewed growth, rebalance on/off × inproc/tcp (BENCH_rebalance.json)", runRebalance},
	{"backpressure", "credited ingest: feed latency vs routed-but-unapplied backlog against a slow shard, credit window off/1k/4k/16k (BENCH_backpressure.json)", runBackpressure},
	{"corpus", "standing walk corpus: resample amplification, refresh lag, and serving split under hub-churn, inproc/tcp at 4 shards (BENCH_corpus.json)", runCorpus},
	{"coordscale", "query-tier scale-out: aggregate walks/s at 1/2/4 read-coordinators over one 4-shard set, inproc/tcp (BENCH_coordscale.json)", runCoordScale},
}

// Experiments lists available experiment names with descriptions.
func Experiments() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = fmt.Sprintf("%-8s %s", r.name, r.desc)
	}
	return out
}

// Run executes the named experiments: a single name, a comma-separated
// list run in the given order, or "all" for every registered runner.
func Run(name string, o Options) error {
	if err := o.normalize(); err != nil {
		return err
	}
	if name == "all" {
		for _, r := range registry {
			fmt.Fprintf(o.Out, "\n==== %s: %s ====\n", r.name, r.desc)
			if err := r.fn(&o); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
		}
		return nil
	}
	var run []runner
	for _, want := range strings.Split(name, ",") {
		want = strings.TrimSpace(want)
		found := false
		for _, r := range registry {
			if r.name == want {
				run = append(run, r)
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(registry))
			for i, r := range registry {
				names[i] = r.name
			}
			sort.Strings(names)
			return fmt.Errorf("bench: unknown experiment %q (have %v)", want, names)
		}
	}
	for _, r := range run {
		fmt.Fprintf(o.Out, "==== %s: %s ====\n", r.name, r.desc)
		if err := r.fn(&o); err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
	}
	return nil
}
