package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/rebalance"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// RebalanceSkew is the heat-aware rebalancing scenario: the graph is
// grown *entirely* from a hub-skewed tape — every source lands on the
// blocks one shard owns under the base plan, and most destinations stay
// there, so walks dwell where they start — while a client fleet hammers
// those hot vertices. This is the pathological serving pattern
// block-cyclic ownership cannot fix: with the rebalancer off, nearly
// every step is served by the one shard that owns the hot blocks; with
// it on, the coordinator's heat cycles migrate those blocks toward idle
// shards live, and the hottest shard's step share shrinks toward the
// fair share 1/N. The grid sweeps rebalance off/on × inproc/tcp. Emits
// BENCH_rebalance.json.

// RebalanceSeries is one measured (transport, rebalance) cell.
type RebalanceSeries struct {
	Transport    string  `json:"transport"`
	Rebalance    string  `json:"rebalance"` // on | off
	Shards       int     `json:"shards"`
	Walks        int64   `json:"walks"`
	Steps        int64   `json:"steps"`
	Updates      int64   `json:"updates"`
	Transfers    int64   `json:"transfers"`
	Migrations   int64   `json:"migrations"`
	MovedEdges   int64   `json:"moved_edges"`
	PlanEpoch    uint64  `json:"plan_epoch"`
	ShardSteps   []int64 `json:"shard_steps"`
	HottestShare float64 `json:"hottest_share"` // max(ShardSteps)/Steps
	// LateHottestShare is the hottest share over the window's second
	// half only (steps after the midpoint snapshot): migrations need
	// heat cycles to fire, so the session-cumulative share understates
	// the rebalanced steady state.
	LateHottestShare float64 `json:"late_hottest_share"`
	FairShare        float64 `json:"fair_share"` // 1/shards
	ElapsedSec       float64 `json:"elapsed_sec"`
	WalksPerSec      float64 `json:"walks_per_sec"`
	StepsPerSec      float64 `json:"steps_per_sec"`
}

// RebalanceReport is the BENCH_rebalance.json document.
type RebalanceReport struct {
	Scenario   string            `json:"scenario"`
	Dataset    string            `json:"dataset"`
	Vertices   int               `json:"vertices"`
	Edges      int64             `json:"edges"`
	Clients    int               `json:"clients"`
	WalkLength int               `json:"walk_length"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Series     []RebalanceSeries `json:"series"`
}

const (
	rebalanceShards = 4
	// rebalanceWindow is long enough for several heat cycles on either
	// fabric; clients keep walking until it elapses.
	rebalanceWindow = 2 * time.Second
	rebalanceCycle  = 100 * time.Millisecond
)

func runRebalance(o *Options) error {
	abbr := o.Datasets[0]
	_, g, err := o.dataset(abbr)
	if err != nil {
		return err
	}
	// The dataset sizes the vertex space; the graph itself is grown from
	// the skew tape so the heat actually concentrates (a natural graph's
	// spread-out adjacency would diffuse the walks off the hot blocks).
	v0 := g.NumVertices()
	clients := o.Workers
	basePlan := walk.NewShardPlan(v0, rebalanceShards)
	tape := hubSkewGrowthTape(v0, basePlan, 60_000, o.Seed)
	prefeed := len(tape) / 2
	starts := hotStarts(tape[:prefeed], 1024)
	rep := RebalanceReport{
		Scenario:   "RebalanceSkew",
		Dataset:    abbr,
		Vertices:   v0,
		Edges:      int64(prefeed),
		Clients:    clients,
		WalkLength: o.WalkLength,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	tbl := newTable(o.Out)
	tbl.row("transport", "rebalance", "walks/s", "steps/s", "migrations", "hottest share", "late share", "fair")
	for _, transport := range o.Transports {
		for _, mode := range []string{"off", "on"} {
			ser, err := rebalanceCell(o, v0, transport, mode, clients, starts, tape, prefeed)
			if err != nil {
				return fmt.Errorf("%s rebalance=%s: %w", transport, mode, err)
			}
			rep.Series = append(rep.Series, ser)
			tbl.row(
				ser.Transport,
				ser.Rebalance,
				fmt.Sprintf("%.0f", ser.WalksPerSec),
				fmt.Sprintf("%.0f", ser.StepsPerSec),
				fmt.Sprintf("%d", ser.Migrations),
				fmt.Sprintf("%.3f", ser.HottestShare),
				fmt.Sprintf("%.3f", ser.LateHottestShare),
				fmt.Sprintf("%.3f", ser.FairShare),
			)
		}
	}
	tbl.flush()

	if o.RebalanceJSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.RebalanceJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.RebalanceJSONPath)
	}
	return nil
}

// hotStarts collects the distinct sources of the pre-fed tape prefix —
// vertices guaranteed to hold out-edges, all on the hot blocks.
func hotStarts(prefix []graph.Update, limit int) []graph.VertexID {
	seen := map[graph.VertexID]bool{}
	var out []graph.VertexID
	for _, up := range prefix {
		if !seen[up.Src] {
			seen[up.Src] = true
			out = append(out, up.Src)
			if len(out) >= limit {
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hubSkewGrowthTape builds the whole graph as a feed: inserts whose
// sources all land on shard 0's blocks — some beyond the initial space,
// so ownership blocks are minted under load — and whose destinations
// mostly stay there (walks starting hot remain hot; a cold destination
// is usually a dead end, so walks rarely heat other shards on their
// own).
func hubSkewGrowthTape(v0 int, plan walk.ShardPlan, n int, seed uint64) []graph.Update {
	r := xrand.New(seed)
	growTo := v0 + v0/4
	hot := func(space int) graph.VertexID {
		for {
			v := graph.VertexID(r.Intn(space))
			if plan.Owner(v) == 0 {
				return v
			}
		}
	}
	ups := make([]graph.Update, 0, n)
	for i := 0; i < n; i++ {
		src := hot(growTo)
		var dst graph.VertexID
		if r.Coin(0.7) {
			dst = hot(growTo)
		} else {
			dst = graph.VertexID(r.Intn(growTo))
		}
		ups = append(ups, graph.Update{Op: graph.OpInsert, Src: src, Dst: dst, Bias: uint64(1 + r.Intn(100))})
	}
	return ups
}

func rebalanceCell(o *Options, v0 int, transport, mode string, clients int, starts []graph.VertexID, tape []graph.Update, prefeed int) (RebalanceSeries, error) {
	reb := rebalance.Options{
		On:               mode == "on",
		Interval:         rebalanceCycle,
		Imbalance:        1.2,
		MinCycleSteps:    256,
		MaxMovesPerCycle: 2,
	}
	crew := clients / rebalanceShards
	if crew < 1 {
		crew = 1
	}
	svc, err := newRebalanceService(o, v0, transport, reb, crew)
	if err != nil {
		return RebalanceSeries{}, err
	}
	// Pre-feed half the tape and sync before the clock: the measured
	// window serves an already-skewed graph while the rest streams in.
	for lo := 0; lo < prefeed; lo += 4096 {
		hi := lo + 4096
		if hi > prefeed {
			hi = prefeed
		}
		if err := svc.Feed(append([]graph.Update(nil), tape[lo:hi]...)); err != nil {
			return RebalanceSeries{}, fmt.Errorf("prefeed: %w", err)
		}
	}
	if err := svc.Sync(); err != nil {
		return RebalanceSeries{}, fmt.Errorf("prefeed: %w", err)
	}

	done := make(chan struct{})
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		next := prefeed
		for {
			select {
			case <-done:
				return
			default:
			}
			hi := next + 512
			if hi > len(tape) {
				hi = len(tape)
			}
			if err := svc.Feed(append([]graph.Update(nil), tape[next:hi]...)); err != nil {
				return
			}
			next = hi
			if next >= len(tape) {
				next = 0 // cycle: re-inserts thicken the hub rows further
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	start := time.Now()
	var walks atomic.Int64
	// Mid-window snapshot for the late share: taken by the first client
	// to cross the midpoint.
	var midOnce sync.Once
	var midSteps []int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(o.Seed ^ seed)
			for time.Since(start) < rebalanceWindow {
				if time.Since(start) > rebalanceWindow/2 {
					midOnce.Do(func() {
						// Sync first: the tcp transport's ShardSteps refresh
						// only on barriers, and with the rebalancer off (no
						// heat barriers) the midpoint would otherwise read
						// the stale pre-window tallies.
						if err := svc.Sync(); err != nil {
							return
						}
						st := svc.Stats()
						midSteps = append([]int64(nil), st.ShardSteps...)
					})
				}
				st := starts[r.Intn(len(starts))]
				if _, err := svc.Query(st, o.WalkLength); err != nil {
					return
				}
				walks.Add(1)
			}
		}(uint64(c) + 1)
	}
	wg.Wait()
	close(done)
	feeder.Wait()
	if err := svc.Sync(); err != nil {
		return RebalanceSeries{}, fmt.Errorf("ingest: %w", err)
	}
	elapsed := time.Since(start)
	st := svc.Stats()
	if err := svc.Close(); err != nil {
		return RebalanceSeries{}, fmt.Errorf("close: %w", err)
	}
	if st.Dropped > 0 {
		return RebalanceSeries{}, fmt.Errorf("%d feed batches dropped", st.Dropped)
	}

	share := func(steps []int64) float64 {
		var tot, max int64
		for _, s := range steps {
			tot += s
			if s > max {
				max = s
			}
		}
		if tot == 0 {
			return 0
		}
		return float64(max) / float64(tot)
	}
	late := st.ShardSteps
	if len(midSteps) == len(st.ShardSteps) {
		late = make([]int64, len(st.ShardSteps))
		for i := range late {
			late[i] = st.ShardSteps[i] - midSteps[i]
		}
	}
	return RebalanceSeries{
		Transport:        transport,
		Rebalance:        mode,
		Shards:           rebalanceShards,
		Walks:            walks.Load(),
		Steps:            st.Steps,
		Updates:          st.Updates,
		Transfers:        st.Transfers,
		Migrations:       st.Rebalance.Migrations,
		MovedEdges:       st.Rebalance.MovedEdges,
		PlanEpoch:        st.Rebalance.PlanEpoch,
		ShardSteps:       st.ShardSteps,
		HottestShare:     share(st.ShardSteps),
		LateHottestShare: share(late),
		FairShare:        1.0 / float64(rebalanceShards),
		ElapsedSec:       elapsed.Seconds(),
		WalksPerSec:      float64(walks.Load()) / elapsed.Seconds(),
		StepsPerSec:      float64(st.Steps) / elapsed.Seconds(),
	}, nil
}

// rebalanceService narrows the serving surface the cell needs; both
// fabrics' services satisfy it.
type rebalanceService interface {
	Query(start graph.VertexID, length int) ([]graph.VertexID, error)
	Feed(ups []graph.Update) error
	Sync() error
	Stats() walk.ShardedLiveStats
	Close() error
}

// newRebalanceService builds an empty 4-shard serving runtime with the
// given rebalancer policy on the chosen transport (see newShardedService
// for the transport shapes; this adds the Rebalance config both fabrics'
// coordinators understand). The graph arrives entirely through the feed.
func newRebalanceService(o *Options, v0 int, transport string, reb rebalance.Options, crew int) (rebalanceService, error) {
	cfg := walk.ShardedLiveConfig{WalkersPerShard: crew, WalkLength: o.WalkLength, Seed: o.Seed, Rebalance: reb}
	empty := &graph.CSR{Offsets: make([]int64, v0+1)}
	svc, err := newShardedServiceWithConfig(o, empty, transport, fabric.CacheSpec{}, rebalanceShards, crew, cfg)
	if err != nil {
		return nil, err
	}
	return svc, nil
}
