package bench

import (
	"fmt"
	"time"

	"github.com/bingo-rw/bingo/internal/baseline"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
)

// biasedDataset generates a dataset with an explicit bias distribution.
func (o *Options) biasedDataset(abbr string, kind gen.BiasKind, float bool) (gen.Dataset, *graph.CSR, error) {
	d, err := gen.DatasetByAbbr(abbr)
	if err != nil {
		return d, nil, err
	}
	g, err := d.GenerateBias(o.effScale(d), o.Seed, gen.BiasConfig{
		Kind: kind, Max: 1024, Seed: o.Seed, Float: float,
	})
	return d, g, err
}

// runFig9 reports the average per-vertex group element ratio |G_j|/d for
// each bit position j under uniform, Gaussian, and power-law biases —
// Figure 9's three series. Uniform biases fill low positions near 50%;
// power-law biases concentrate elements in fewer positions.
func runFig9(o *Options) error {
	abbr := o.Datasets[0]
	kinds := []gen.BiasKind{gen.BiasUniform, gen.BiasGauss, gen.BiasPowerLaw}
	series := make([][]float64, len(kinds))
	maxLen := 0
	for i, k := range kinds {
		_, g, err := o.biasedDataset(abbr, k, false)
		if err != nil {
			return err
		}
		s, err := core.NewFromCSR(g, o.bingoConfig())
		if err != nil {
			return err
		}
		series[i] = s.GroupElementRatios()
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	if maxLen > 10 {
		maxLen = 10 // the paper plots positions 0..9
	}
	t := newTable(o.Out)
	t.row("group index", "Uniform", "Gauss", "Power-law")
	for j := 0; j < maxLen; j++ {
		row := []string{fmt.Sprint(j)}
		for i := range kinds {
			v := 0.0
			if j < len(series[i]) {
				v = series[i][j]
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.row(row...)
	}
	t.flush()
	return nil
}

// runFig11 compares the baseline all-regular representation (BS) with the
// group-adaptive one (GA): overall memory per dataset, the per-kind
// savings panels, and the group-kind ratio panel.
func runFig11(o *Options) error {
	t := newTable(o.Out)
	t.row("dataset", "BS total(GB)", "GA total(GB)", "saving×",
		"dense BS/GA(MB)", "one BS/GA(MB)", "sparse BS/GA(MB)",
		"dense%", "regular%", "sparse%", "one%")
	for _, abbr := range o.Datasets {
		_, g, err := o.dataset(abbr)
		if err != nil {
			return err
		}
		bsCfg := o.bingoConfig()
		bsCfg.Adaptive = false
		bs, err := core.NewFromCSR(g, bsCfg)
		if err != nil {
			return err
		}
		bsTotal := bs.Footprint()
		bs = nil // release before building GA

		ga, err := core.NewFromCSR(g, o.bingoConfig())
		if err != nil {
			return err
		}
		gaTotal := ga.Footprint()
		sav := ga.AdaptiveSavings()
		gs := ga.CollectGroupStats()
		var groups int64
		for _, n := range gs.Groups {
			groups += n
		}
		pct := func(k core.GroupKind) string {
			if groups == 0 {
				return "0"
			}
			return fmt.Sprintf("%.1f", float64(gs.Groups[k])*100/float64(groups))
		}
		pair := func(k core.GroupKind) string {
			return mb(sav[k].BS) + "/" + mb(sav[k].GA)
		}
		t.row(abbr, gb(bsTotal), gb(gaTotal),
			fmt.Sprintf("%.1f", float64(bsTotal)/float64(gaTotal)),
			pair(core.KindDense), pair(core.KindOne), pair(core.KindSparse),
			pct(core.KindDense), pct(core.KindRegular), pct(core.KindSparse), pct(core.KindOne))
	}
	t.flush()
	return nil
}

// runFig12 measures streaming versus batched ingestion throughput for the
// three update situations.
func runFig12(o *Options) error {
	t := newTable(o.Out)
	t.row("dataset", "updates", "updates/s streaming", "updates/s batched", "speedup")
	for _, abbr := range o.Datasets {
		d, g, err := o.dataset(abbr)
		if err != nil {
			return err
		}
		for _, kind := range []gen.UpdateKind{gen.UpdInsertion, gen.UpdDeletion, gen.UpdMixed} {
			w, err := o.workload(abbr, g, kind, o.batchSize(d))
			if err != nil {
				return err
			}
			total := len(w.Updates)
			sEng, err := core.NewFromCSR(w.Initial, o.bingoConfig())
			if err != nil {
				return err
			}
			streamDur := timed(func() {
				if err := sEng.ApplyUpdatesStreaming(w.Updates); err != nil {
					panic(err)
				}
			})
			sEng = nil
			bEng, err := core.NewFromCSR(w.Initial, o.bingoConfig())
			if err != nil {
				return err
			}
			batchDur := timed(func() {
				for _, b := range w.Batches() {
					if _, err := bEng.ApplyBatch(b); err != nil {
						panic(err)
					}
				}
			})
			st := float64(total) / streamDur.Seconds()
			bt := float64(total) / batchDur.Seconds()
			t.row(abbr, kind.String(),
				fmt.Sprintf("%.0f", st), fmt.Sprintf("%.0f", bt),
				fmt.Sprintf("%.1f", bt/st))
		}
	}
	t.flush()
	return nil
}

// runFig13 reports the batched-update time breakdown (insert/delete vs
// rebuild) plus sampling time, for BS and GA.
func runFig13(o *Options) error {
	t := newTable(o.Out)
	t.row("dataset", "mode", "insert/delete(s)", "rebuild(s)", "sampling(s)", "total(s)")
	for _, abbr := range o.Datasets {
		d, g, err := o.dataset(abbr)
		if err != nil {
			return err
		}
		w, err := o.workload(abbr, g, gen.UpdMixed, o.batchSize(d))
		if err != nil {
			return err
		}
		for _, mode := range []string{"BS", "GA"} {
			cfg := o.bingoConfig()
			cfg.Instrument = true
			cfg.Adaptive = mode == "GA"
			s, err := core.NewFromCSR(w.Initial, cfg)
			if err != nil {
				return err
			}
			s.ResetPhaseTimes()
			for _, b := range w.Batches() {
				if _, err := s.ApplyBatch(b); err != nil {
					return err
				}
			}
			ph := s.PhaseTimes()
			wcfg := o.walkConfig(w.Initial.NumVertices())
			sampDur := timed(func() {
				walk.SimpleSampling(s, wcfg)
			})
			total := ph.InsertDelete + ph.Rebuild + sampDur
			t.row(abbr, mode, secs(ph.InsertDelete), secs(ph.Rebuild), secs(sampDur), secs(total))
		}
	}
	t.flush()
	return nil
}

// runFig14 compares integer biases with float biases (integer + U[0,1),
// the paper's fair-comparison construction) on time and memory.
func runFig14(o *Options) error {
	t := newTable(o.Out)
	t.row("dataset", "int time(s)", "float time(s)", "ratio", "int mem(GB)", "float mem(GB)", "ratio")
	for _, abbr := range o.Datasets {
		d, gInt, err := o.dataset(abbr)
		if err != nil {
			return err
		}
		_, gFloat, err := o.biasedDataset(abbr, gen.BiasDegree, true)
		if err != nil {
			return err
		}
		run := func(g *graph.CSR, float bool) (time.Duration, int64, error) {
			cfg := o.bingoConfig()
			cfg.FloatBias = float
			s, err := core.NewFromCSR(g, cfg)
			if err != nil {
				return 0, 0, err
			}
			// The float workload must carry the float graph's FBias
			// values, so it cannot share the integer-run cache entry.
			w, err := gen.BuildWorkload(g, gen.UpdMixed, o.batchSize(d), o.Rounds, o.Seed)
			if err != nil {
				return 0, 0, err
			}
			wcfg := o.walkConfig(g.NumVertices())
			dur := timed(func() {
				for _, b := range w.Batches() {
					if err := s.ApplyUpdates(b); err != nil {
						panic(err)
					}
					walk.DeepWalk(s, wcfg)
				}
			})
			return dur, s.Footprint(), nil
		}
		intDur, intMem, err := run(gInt, false)
		if err != nil {
			return err
		}
		fDur, fMem, err := run(gFloat, true)
		if err != nil {
			return err
		}
		t.row(abbr, secs(intDur), secs(fDur),
			fmt.Sprintf("%.2f", fDur.Seconds()/intDur.Seconds()),
			gb(intMem), gb(fMem),
			fmt.Sprintf("%.2f", float64(fMem)/float64(intMem)))
	}
	t.flush()
	return nil
}

// runFig15a sweeps the update batch size for a fixed total update volume
// (the paper: 1 M updates on LJ at batch sizes 10 K–100 K), comparing Bingo
// with the rebuild-per-round RebuildITS.
func runFig15a(o *Options) error {
	d, g, err := o.dataset("LJ")
	if err != nil {
		return err
	}
	base := o.batchSize(d)
	w, err := gen.BuildWorkload(g, gen.UpdMixed, base, o.Rounds, o.Seed)
	if err != nil {
		return err
	}
	t := newTable(o.Out)
	t.row("batch size", "Bingo time(s)", "RebuildITS time(s)", "speedup")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		bsz := int(float64(w.BatchSize) * frac)
		if bsz < 1 {
			bsz = 1
		}
		run := func(system string) (time.Duration, error) {
			e, err := o.newEngine(system, w.Initial)
			if err != nil {
				return 0, err
			}
			wcfg := o.walkConfig(w.Initial.NumVertices())
			// Cap walk cost per round so ingestion dominates the sweep
			// the way the paper's GPU walk phase does.
			if len(wcfg.Starts) > 1000 {
				wcfg.Starts = wcfg.Starts[:1000]
			}
			return timed(func() {
				for lo := 0; lo < len(w.Updates); lo += bsz {
					hi := lo + bsz
					if hi > len(w.Updates) {
						hi = len(w.Updates)
					}
					if err := e.ApplyUpdates(w.Updates[lo:hi]); err != nil {
						panic(err)
					}
					walk.DeepWalk(e, wcfg)
				}
			}), nil
		}
		bingoDur, err := run("Bingo")
		if err != nil {
			return err
		}
		itsDur, err := run("RebuildITS")
		if err != nil {
			return err
		}
		t.row(fmt.Sprint(bsz), secs(bingoDur), secs(itsDur),
			fmt.Sprintf("%.2f", itsDur.Seconds()/bingoDur.Seconds()))
	}
	t.flush()
	return nil
}

// runFig15b sweeps the walk length (paper: 20–100), comparing Bingo with
// RebuildITS on one update round plus the walk.
func runFig15b(o *Options) error {
	d, g, err := o.dataset("LJ")
	if err != nil {
		return err
	}
	w, err := gen.BuildWorkload(g, gen.UpdMixed, o.batchSize(d), 1, o.Seed)
	if err != nil {
		return err
	}
	bingo, err := o.newEngine("Bingo", w.Initial)
	if err != nil {
		return err
	}
	its := baseline.NewRebuildITS(w.Initial)
	if err := bingo.ApplyUpdates(w.Updates); err != nil {
		return err
	}
	if err := its.ApplyUpdates(append([]graph.Update(nil), w.Updates...)); err != nil {
		return err
	}
	t := newTable(o.Out)
	t.row("walk length", "Bingo time(s)", "RebuildITS time(s)", "gap(s)")
	for _, l := range []int{20, 40, 60, 80, 100} {
		wcfg := o.walkConfig(w.Initial.NumVertices())
		wcfg.Length = l
		bd := timed(func() { walk.DeepWalk(bingo, wcfg) })
		id := timed(func() { walk.DeepWalk(its, wcfg) })
		t.row(fmt.Sprint(l), secs(bd), secs(id), secs(id-bd))
	}
	t.flush()
	return nil
}

// runFig15c measures Bingo's time and memory under the three bias
// distributions (paper: uniform is cheapest — more dense groups, lower
// rejection).
func runFig15c(o *Options) error {
	abbr := "LJ"
	t := newTable(o.Out)
	t.row("distribution", "time(s)", "memory(GB)", "dense-group %")
	for _, kind := range []gen.BiasKind{gen.BiasUniform, gen.BiasGauss, gen.BiasPowerLaw} {
		d, g, err := o.biasedDataset(abbr, kind, false)
		if err != nil {
			return err
		}
		s, err := core.NewFromCSR(g, o.bingoConfig())
		if err != nil {
			return err
		}
		w, err := o.workload(abbr, g, gen.UpdMixed, o.batchSize(d))
		if err != nil {
			return err
		}
		wcfg := o.walkConfig(g.NumVertices())
		dur := timed(func() {
			for _, b := range w.Batches() {
				if err := s.ApplyUpdates(b); err != nil {
					panic(err)
				}
				walk.DeepWalk(s, wcfg)
			}
		})
		gs := s.CollectGroupStats()
		var groups int64
		for _, n := range gs.Groups {
			groups += n
		}
		densePct := 0.0
		if groups > 0 {
			densePct = float64(gs.Groups[core.KindDense]) * 100 / float64(groups)
		}
		t.row(kind.String(), secs(dur), gb(s.Footprint()), fmt.Sprintf("%.1f", densePct))
	}
	t.flush()
	return nil
}

// runFig16 is the piecewise breakdown: bulk insertions vs deletions vs
// sampling, Bingo against FlowWalker — extended with the rebuild-based
// systems' update columns (KnightKing_R, RebuildITS_R), which isolate the
// O(E)-reconstruction-per-round cost that Bingo's O(K) updates remove;
// this is where the paper's incremental-maintenance claim shows on equal
// hardware.
func runFig16(o *Options) error {
	t := newTable(o.Out)
	t.row("dataset", "ops", "Bingo_I(s)", "Bingo_D(s)", "FlowWalker_R(s)", "KnightKing_R(s)", "RebuildITS_R(s)", "Bingo smp(s)", "FlowWalker smp(s)", "smp speedup")
	for _, abbr := range o.Datasets {
		d, g, err := o.dataset(abbr)
		if err != nil {
			return err
		}
		nOps := o.batchSize(d) * o.Rounds
		ins, err := gen.BuildWorkload(g, gen.UpdInsertion, o.batchSize(d), o.Rounds, o.Seed)
		if err != nil {
			return err
		}
		del, err := gen.BuildWorkload(g, gen.UpdDeletion, o.batchSize(d), o.Rounds, o.Seed)
		if err != nil {
			return err
		}

		bi, err := core.NewFromCSR(ins.Initial, o.bingoConfig())
		if err != nil {
			return err
		}
		insDur := timed(func() {
			for _, b := range ins.Batches() {
				if _, err := bi.ApplyBatch(b); err != nil {
					panic(err)
				}
			}
		})
		bd, err := core.NewFromCSR(del.Initial, o.bingoConfig())
		if err != nil {
			return err
		}
		delDur := timed(func() {
			for _, b := range del.Batches() {
				if _, err := bd.ApplyBatch(b); err != nil {
					panic(err)
				}
			}
		})
		applyAll := func(e walk.Dynamic) time.Duration {
			return timed(func() {
				for _, b := range ins.Batches() {
					if err := e.ApplyUpdates(b); err != nil {
						panic(err)
					}
				}
				for _, b := range del.Batches() {
					if err := e.ApplyUpdates(b); err != nil {
						panic(err)
					}
				}
			})
		}
		fw := baseline.NewFlowWalker(ins.Initial)
		fwDur := applyAll(fw)
		kkDur := applyAll(baseline.NewKnightKing(ins.Initial))
		itsDur := applyAll(baseline.NewRebuildITS(ins.Initial))

		// Sampling: nOps one-hop samples from *degree-weighted* starts —
		// the vertex mix real walks visit (walkers concentrate on hubs),
		// which is where FlowWalker's O(d) reservoir pays its price.
		// Uniform starts would be dominated by low-degree vertices and
		// hide the effect the paper measures on its walk workloads.
		wcfg := o.walkConfig(ins.Initial.NumVertices())
		wcfg.Starts = degreeWeightedStarts(ins.Initial, len(wcfg.Starts), o.Seed)
		wcfg.Length = nOps / len(wcfg.Starts)
		if wcfg.Length < 1 {
			wcfg.Length = 1
		}
		bs := timed(func() { walk.SimpleSampling(bi, wcfg) })
		fs := timed(func() { walk.SimpleSampling(fw, wcfg) })
		t.row(abbr, fmt.Sprint(nOps), secs(insDur), secs(delDur), secs(fwDur),
			secs(kkDur), secs(itsDur),
			secs(bs), secs(fs), fmt.Sprintf("%.1f", fs.Seconds()/bs.Seconds()))
	}
	t.flush()
	return nil
}
