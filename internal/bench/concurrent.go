package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ConcurrentThroughput is the walk-while-ingest scenario: bulk walk
// rounds run over the concurrent engine through the shared stepping
// kernel while a feeder applies update batches paced to a target share
// of total operations. The grid sweeps *workload* × *kernel* × *procs*
// × update load: workload `uniform` starts walks everywhere, `hubskew`
// starts them on the highest-degree vertices (the frontier-co-location
// pattern dense stepping targets); kernel `sparse` is the per-walker
// locked baseline (hub caches off — byte-for-byte the pre-kernel
// loop), `dense`/`auto` batch co-located walkers and serve hubs from
// epoch-validated views; procs pins GOMAXPROCS for the cell, so the
// 1-vs-4 rows measure how each kernel scales (or timeshares) cores.
// Emits BENCH_concurrent.json for diffing runs.

// ConcurrentSeries is one measured (workload, kernel, procs, load)
// grid cell.
type ConcurrentSeries struct {
	Workload        string  `json:"workload"`        // uniform | hubskew
	Kernel          string  `json:"kernel"`          // sparse | dense | auto
	Procs           int     `json:"procs"`           // GOMAXPROCS inside the cell
	UpdateLoadPct   float64 `json:"update_load_pct"` // nominal target share
	Walks           int64   `json:"walks"`
	Steps           int64   `json:"steps"`
	Updates         int64   `json:"updates"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	WalksPerSec     float64 `json:"walks_per_sec"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	AchievedLoadPct float64 `json:"achieved_load_pct"` // updates/(updates+steps)
}

// ObsOverheadRow prices the observability layer on the hottest cell:
// the same (hubskew, auto, max-procs, 0%% load) point measured with the
// metrics registry recording and with the obs.SetEnabled kill switch
// off. The acceptance budget is <2%% steps/s overhead.
type ObsOverheadRow struct {
	Workload       string  `json:"workload"`
	Kernel         string  `json:"kernel"`
	Procs          int     `json:"procs"`
	StepsPerSecOn  float64 `json:"steps_per_sec_metrics_on"`
	StepsPerSecOff float64 `json:"steps_per_sec_metrics_off"`
	OverheadPct    float64 `json:"overhead_pct"` // (off-on)/off; negative = noise
}

// ConcurrentReport is the BENCH_concurrent.json document.
type ConcurrentReport struct {
	Scenario    string             `json:"scenario"`
	Dataset     string             `json:"dataset"`
	Vertices    int                `json:"vertices"`
	Edges       int64              `json:"edges"`
	Walkers     int                `json:"walkers"` // walks per kernel round
	WalkLength  int                `json:"walk_length"`
	GOMAXPROCS  int                `json:"gomaxprocs"` // host setting outside the cells
	Stripes     int                `json:"stripes"`
	Series      []ConcurrentSeries `json:"series"`
	ObsOverhead *ObsOverheadRow    `json:"obs_overhead,omitempty"`
}

// concurrentLoads are the nominal update shares the uniform workload
// sweeps. The hub-skewed workload adds a 90% row: at that ratio the
// pacer's budget is never met, so the feed runs flat out and every
// kernel faces the same saturating writer — the walk-while-ingest
// stress point where lock convoys, not draw cost, set walk throughput
// (the achieved-load column reports the share actually reached).
var (
	concurrentLoads    = []float64{0, 0.10, 0.50}
	concurrentHubLoads = []float64{0, 0.10, 0.90}
)

// The hub-skew topology: concurrentHubCount hubs receive 7 of every 8
// edges, so a kernelBatch-sized frontier parks ~batch/hubs walkers per
// hub every round.
const (
	concurrentHubCount = 32
	concurrentHubDeg   = 8
)

// feedBatch is the ingest batch size the dispatcher ships to the
// appliers. Bulk-sized batches are what make the load sweep
// discriminating on lock behavior: a 4096-update batch holds each
// touched stripe's write lock long enough to span scheduler quanta, so
// locked samplers genuinely park behind the writer, while view-cached
// kernels keep drawing on vertices the batch never rewrote.
const feedBatch = 4096

// hubGraph builds the hub-dominated stand-in the hub-skew cells walk:
// every vertex (hubs included) has deg out-edges, 7/8 of them into the
// hub set, so walks re-land on hubs nearly every hop regardless of where
// they started. The remaining tail edge is log-skewed rather than
// uniform — P(dst = d) ∝ ln(verts/d) — matching how heavy-tailed graphs
// actually wire their non-hub endpoints: popularity decays continuously
// below the hubs instead of falling off a cliff into a uniform cold
// tail. (A uniform tail would turn every eighth hop into a DRAM miss on
// an arbitrary row, measuring memory latency rather than the sampling
// path the kernel sweep exists to compare.)
func hubGraph(verts, hubs, deg int, seed uint64) (*graph.CSR, error) {
	r := xrand.New(seed ^ 0x4b06)
	edges := make([]graph.Edge, 0, verts*deg)
	for v := 0; v < verts; v++ {
		for j := 0; j < deg; j++ {
			dst := graph.VertexID(r.Intn(hubs))
			if j%8 == 7 {
				dst = graph.VertexID(r.Intn(1 + r.Intn(verts)))
			}
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: dst, Bias: uint64(1 + r.Intn(16))})
		}
	}
	return graph.FromEdges(verts, edges)
}

func runConcurrent(o *Options) error {
	abbr := o.Datasets[0]
	_, g, err := o.dataset(abbr)
	if err != nil {
		return err
	}
	w, err := o.workload(abbr, g, gen.UpdMixed, 4096)
	if err != nil {
		return err
	}

	uniform := o.walkers(g.NumVertices())

	// The hub-skew workload runs on a hub-dominated topology — nearly
	// every edge lands on one of a few dozen hubs, so the frontier
	// re-concentrates every hop (the "thousands of walkers on the same
	// hub" regime dense stepping exists for) — with its own update tape.
	hubG, err := hubGraph(g.NumVertices(), concurrentHubCount, concurrentHubDeg, o.Seed)
	if err != nil {
		return err
	}
	wHub, err := gen.BuildWorkload(hubG, gen.UpdMixed, 4096, o.Rounds, o.Seed)
	if err != nil {
		return err
	}
	skewed := make([]graph.VertexID, len(uniform))
	for i := range skewed {
		skewed[i] = graph.VertexID(i % concurrentHubCount)
	}

	rep := ConcurrentReport{
		Scenario:   "ConcurrentThroughput",
		Dataset:    abbr,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Walkers:    len(uniform),
		WalkLength: o.WalkLength,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	tbl := newTable(o.Out)
	tbl.row("workload", "kernel", "procs", "update load", "walks/s", "steps/s", "updates/s", "achieved load")
	for _, workload := range []string{"uniform", "hubskew"} {
		loads, starts, cellG, cellW := concurrentLoads, uniform, g, w
		if workload == "hubskew" {
			loads, starts, cellG, cellW = concurrentHubLoads, skewed, hubG, wHub
		}
		for _, kernelName := range o.KernelModes {
			for _, procs := range o.Procs {
				for _, load := range loads {
					ser, stripes, err := concurrentCell(o, cellG, cellW, workload, kernelName, procs, load, starts)
					if err != nil {
						return fmt.Errorf("%s kernel=%s procs=%d load=%.0f%%: %w", workload, kernelName, procs, load*100, err)
					}
					rep.Stripes = stripes
					rep.Series = append(rep.Series, ser)
					tbl.row(
						ser.Workload,
						ser.Kernel,
						fmt.Sprintf("%d", ser.Procs),
						fmt.Sprintf("%.0f%%", ser.UpdateLoadPct),
						fmt.Sprintf("%.0f", ser.WalksPerSec),
						fmt.Sprintf("%.0f", ser.StepsPerSec),
						fmt.Sprintf("%.0f", ser.UpdatesPerSec),
						fmt.Sprintf("%.1f%%", ser.AchievedLoadPct),
					)
				}
			}
		}
	}
	tbl.flush()

	obsRow, err := concurrentObsDelta(o, hubG, wHub, skewed)
	if err != nil {
		return fmt.Errorf("obs delta: %w", err)
	}
	rep.ObsOverhead = obsRow
	fmt.Fprintf(o.Out, "obs overhead (%s/%s, %d procs): %.0f steps/s metrics-on vs %.0f metrics-off (%+.2f%%)\n",
		obsRow.Workload, obsRow.Kernel, obsRow.Procs, obsRow.StepsPerSecOn, obsRow.StepsPerSecOff, obsRow.OverheadPct)

	if o.JSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	return nil
}

// concurrentObsDelta measures the metrics-on vs metrics-off steps/s
// delta on the hub-skewed auto-kernel cell at zero update load — the
// densest stepping regime, so per-round instrument cost is maximally
// visible while feeder scheduling noise is excluded. Best-of-2 per
// setting damps scheduler jitter; the kill switch is restored to on
// regardless of outcome.
func concurrentObsDelta(o *Options, g *graph.CSR, w *gen.Workload, starts []graph.VertexID) (*ObsOverheadRow, error) {
	procs := o.Procs[len(o.Procs)-1]
	defer obs.SetEnabled(true)
	best := func(on bool) (float64, error) {
		obs.SetEnabled(on)
		var b float64
		for i := 0; i < 2; i++ {
			ser, _, err := concurrentCell(o, g, w, "hubskew", "auto", procs, 0, starts)
			if err != nil {
				return 0, err
			}
			if ser.StepsPerSec > b {
				b = ser.StepsPerSec
			}
		}
		return b, nil
	}
	off, err := best(false)
	if err != nil {
		return nil, err
	}
	on, err := best(true)
	if err != nil {
		return nil, err
	}
	row := &ObsOverheadRow{Workload: "hubskew", Kernel: "auto", Procs: procs, StepsPerSecOn: on, StepsPerSecOff: off}
	if off > 0 {
		row.OverheadPct = (off - on) / off * 100
	}
	return row, nil
}

// concurrentCell measures one (workload, kernel, procs, load) point on a
// fresh engine (the feeder mutates the graph, so cells must not share
// state). Sparse cells run with hub caches off — the pre-kernel locked
// baseline — while dense/auto cells enable them, so the sparse→dense
// delta prices the whole frontier-batched path: amortized locking plus
// lock-free view draws.
func concurrentCell(o *Options, g *graph.CSR, w *gen.Workload, workload, kernelName string, procs int, load float64, starts []graph.VertexID) (ConcurrentSeries, int, error) {
	kernel, err := walk.ParseKernelMode(kernelName)
	if err != nil {
		return ConcurrentSeries{}, 0, err
	}
	s, err := core.NewFromCSR(g, o.bingoConfig())
	if err != nil {
		return ConcurrentSeries{}, 0, err
	}
	e := concurrent.Wrap(s, concurrent.Config{})

	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	cfg := walk.Config{
		Length:  o.WalkLength,
		Starts:  starts,
		Workers: procs,
		Kernel:  kernel,
	}
	if kernel != walk.KernelSparse {
		cfg.Cache = &fabric.CacheSpec{}
	}

	// Prime the feed path before the clock starts: the first batch
	// applies outside the window (and outside the measured counters),
	// so the pacer never starts cold.
	next := 0
	if load > 0 {
		hi := feedBatch
		if hi > len(w.Updates) {
			hi = len(w.Updates)
		}
		if _, err := e.ApplyBatch(append([]graph.Update(nil), w.Updates[:hi]...)); err != nil {
			return ConcurrentSeries{}, 0, fmt.Errorf("prime: %w", err)
		}
		next = hi
	}

	var stepsDone, updatesDone atomic.Int64
	done := make(chan struct{})
	var feedErr error
	var feedMu sync.Mutex
	var feeder sync.WaitGroup
	if load > 0 {
		// The feed side gets procs applier goroutines: a lone applier
		// competing with procs walk workers for CPU and stripe write
		// locks starves far below the target share (readers re-acquire
		// faster than one writer can queue), which would let fast-reading
		// cells silently escape their update load. A dispatcher paces the
		// tape against steps walked and the appliers apply concurrently
		// (stripe locks make that safe; cross-batch reorder only turns
		// some deletes into counted no-ops).
		batches := make(chan []graph.Update, procs)
		for a := 0; a < procs; a++ {
			feeder.Add(1)
			go func() {
				defer feeder.Done()
				for batch := range batches {
					if _, err := e.ApplyBatch(batch); err != nil {
						feedMu.Lock()
						if feedErr == nil {
							feedErr = err
						}
						feedMu.Unlock()
						return
					}
					updatesDone.Add(int64(len(batch)))
				}
			}()
		}
		feeder.Add(1)
		go func() {
			defer feeder.Done()
			defer close(batches)
			ratio := load / (1 - load) // updates per walk step
			var dispatched int64
			for {
				select {
				case <-done:
					return
				default:
				}
				budget := int64(ratio*float64(stepsDone.Load())) - dispatched
				if budget < feedBatch {
					// Sleep rather than spin: a hot pacer would steal a
					// core from the walk rounds inside the measured
					// window and distort the load sweep.
					time.Sleep(100 * time.Microsecond)
					continue
				}
				// Dispatch the whole accrued budget before sleeping
				// again: a woken goroutine may not run again for
				// milliseconds when the walk workers saturate the cores.
				for budget >= feedBatch {
					hi := next + feedBatch
					if hi > len(w.Updates) {
						hi = len(w.Updates)
					}
					batch := append([]graph.Update(nil), w.Updates[next:hi]...)
					select {
					case batches <- batch:
					case <-done:
						return
					}
					dispatched += int64(len(batch))
					budget -= int64(len(batch))
					next = hi
					if next >= len(w.Updates) {
						next = 0 // cycle the tape; re-deletes are tolerated
					}
				}
			}
		}()
	}

	// Rounds run until the walk quota is met AND the minimum window has
	// elapsed — short cells otherwise end before the pacer's first sleep
	// cycle and record a dishonest zero load.
	start := time.Now()
	var walks int64
	for round := 0; ; round++ {
		if walks >= int64(o.MaxWalkers) && time.Since(start) >= o.MinWindow {
			break
		}
		cfg.Seed = o.Seed ^ 0xa11ce ^ uint64(round)*0x9e3779b9
		res := walk.DeepWalk(e, cfg)
		stepsDone.Add(res.Steps)
		walks += int64(res.Walkers)
	}
	close(done)
	// The feeder applies synchronously, so once it stops every counted
	// update has landed; charging its last mid-flight batch to the
	// window keeps updates/s and achieved load honest.
	feeder.Wait()
	elapsed := time.Since(start)
	steps := stepsDone.Load()
	updates := updatesDone.Load()
	if feedErr != nil {
		return ConcurrentSeries{}, 0, fmt.Errorf("feeder: %w", feedErr)
	}

	achieved := 0.0
	if steps+updates > 0 {
		achieved = float64(updates) / float64(steps+updates)
	}
	return ConcurrentSeries{
		Workload:        workload,
		Kernel:          kernel.String(),
		Procs:           procs,
		UpdateLoadPct:   load * 100,
		Walks:           walks,
		Steps:           steps,
		Updates:         updates,
		ElapsedSec:      elapsed.Seconds(),
		WalksPerSec:     float64(walks) / elapsed.Seconds(),
		StepsPerSec:     float64(steps) / elapsed.Seconds(),
		UpdatesPerSec:   float64(updates) / elapsed.Seconds(),
		AchievedLoadPct: achieved * 100,
	}, e.Stripes(), nil
}
