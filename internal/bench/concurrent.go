package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ConcurrentThroughput is the walk-while-ingest scenario: a walker fleet
// runs fixed-length walks over the concurrent engine while a feeder applies
// update batches paced to a target share of total operations. It seeds the
// perf trajectory of the serving path the same way the table/figure runners
// seed the paper reproductions, and emits machine-readable JSON
// (Options.JSONPath, cmd/bingobench -json) so successive runs can be
// diffed.

// ConcurrentSeries is one measured load point.
type ConcurrentSeries struct {
	UpdateLoadPct   float64 `json:"update_load_pct"` // nominal target share
	Walks           int64   `json:"walks"`
	Steps           int64   `json:"steps"`
	Updates         int64   `json:"updates"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	WalksPerSec     float64 `json:"walks_per_sec"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	AchievedLoadPct float64 `json:"achieved_load_pct"` // updates/(updates+steps)
}

// ConcurrentReport is the BENCH_concurrent.json document.
type ConcurrentReport struct {
	Scenario   string             `json:"scenario"`
	Dataset    string             `json:"dataset"`
	Vertices   int                `json:"vertices"`
	Edges      int64              `json:"edges"`
	Walkers    int                `json:"walkers"`
	WalkLength int                `json:"walk_length"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Stripes    int                `json:"stripes"`
	Series     []ConcurrentSeries `json:"series"`
}

// concurrentLoads are the nominal update shares the scenario sweeps.
var concurrentLoads = []float64{0, 0.10, 0.50}

// concurrentMinWindow is the minimum measurement window: walkers keep
// walking past their quota until it elapses, so the pacer's 100 µs sleep
// cycle always gets to feed (the old ~3 ms windows at smoke scale ended
// before the first batch landed, recording updates: 0 at every load).
const concurrentMinWindow = 250 * time.Millisecond

func runConcurrent(o *Options) error {
	abbr := o.Datasets[0]
	_, g, err := o.dataset(abbr)
	if err != nil {
		return err
	}
	w, err := o.workload(abbr, g, gen.UpdMixed, 4096)
	if err != nil {
		return err
	}

	// Honor the Workers contract every runner documents ("0 = 1"): an
	// explicit -workers 1 means a single-walker baseline, not GOMAXPROCS.
	walkers := o.Workers
	totalWalks := o.MaxWalkers
	if totalWalks < walkers {
		totalWalks = walkers
	}
	walksPer := totalWalks / walkers

	rep := ConcurrentReport{
		Scenario:   "ConcurrentThroughput",
		Dataset:    abbr,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Walkers:    walkers,
		WalkLength: o.WalkLength,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	tbl := newTable(o.Out)
	tbl.row("update load", "walks/s", "steps/s", "updates/s", "achieved load")
	for _, load := range concurrentLoads {
		// A fresh engine per load point: the feeder mutates the graph.
		s, err := core.NewFromCSR(g, o.bingoConfig())
		if err != nil {
			return err
		}
		e := concurrent.Wrap(s, concurrent.Config{})
		rep.Stripes = e.Stripes()

		// Prime the feed path before the clock starts: the first batch
		// applies outside the window (and outside the measured counters),
		// so the pacer never starts cold.
		next := 0
		if load > 0 {
			hi := 256
			if hi > len(w.Updates) {
				hi = len(w.Updates)
			}
			if _, err := e.ApplyBatch(append([]graph.Update(nil), w.Updates[:hi]...)); err != nil {
				return fmt.Errorf("prime at load %.0f%%: %w", load*100, err)
			}
			next = hi
		}

		var stepsDone, updatesDone atomic.Int64
		done := make(chan struct{})
		var feedErr error
		var feeder sync.WaitGroup
		if load > 0 {
			feeder.Add(1)
			go func() {
				defer feeder.Done()
				ratio := load / (1 - load) // updates per walk step
				for {
					select {
					case <-done:
						return
					default:
					}
					budget := int64(ratio*float64(stepsDone.Load())) - updatesDone.Load()
					if budget < 256 {
						// Sleep rather than spin: a hot pacer would steal a
						// core from the walker fleet inside the measured
						// window and distort the load sweep.
						time.Sleep(100 * time.Microsecond)
						continue
					}
					hi := next + 256
					if hi > len(w.Updates) {
						hi = len(w.Updates)
					}
					batch := append([]graph.Update(nil), w.Updates[next:hi]...)
					if _, err := e.ApplyBatch(batch); err != nil {
						feedErr = err
						return
					}
					updatesDone.Add(int64(len(batch)))
					next = hi
					if next >= len(w.Updates) {
						next = 0 // cycle the tape; re-deletes are tolerated
					}
				}
			}()
		}

		// Walkers issue their quota, then keep walking until the minimum
		// window has elapsed — short cells otherwise end before the pacer's
		// first sleep cycle and record a dishonest zero load.
		start := time.Now()
		var walksDone atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < walkers; wi++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := xrand.New(o.Seed ^ seed)
				var buf []graph.VertexID
				for q := 0; ; q++ {
					if q >= walksPer && time.Since(start) >= concurrentMinWindow {
						return
					}
					start := graph.VertexID(r.Intn(g.NumVertices()))
					buf, _ = e.WalkFrom(start, o.WalkLength, r, buf)
					// Publish per walk: the feeder paces itself off this.
					stepsDone.Add(int64(len(buf) - 1))
					walksDone.Add(1)
				}
			}(uint64(wi) + 1)
		}
		wg.Wait()
		close(done)
		// The feeder applies synchronously, so once it stops every counted
		// update has landed; charging its last mid-flight batch to the
		// window keeps updates/s and achieved load honest.
		feeder.Wait()
		elapsed := time.Since(start)
		steps := stepsDone.Load()
		updates := updatesDone.Load()
		if feedErr != nil {
			return fmt.Errorf("feeder at load %.0f%%: %w", load*100, feedErr)
		}

		walks := walksDone.Load()
		achieved := 0.0
		if steps+updates > 0 {
			achieved = float64(updates) / float64(steps+updates)
		}
		ser := ConcurrentSeries{
			UpdateLoadPct:   load * 100,
			Walks:           walks,
			Steps:           steps,
			Updates:         updates,
			ElapsedSec:      elapsed.Seconds(),
			WalksPerSec:     float64(walks) / elapsed.Seconds(),
			StepsPerSec:     float64(steps) / elapsed.Seconds(),
			UpdatesPerSec:   float64(updates) / elapsed.Seconds(),
			AchievedLoadPct: achieved * 100,
		}
		rep.Series = append(rep.Series, ser)
		tbl.row(
			fmt.Sprintf("%.0f%%", ser.UpdateLoadPct),
			fmt.Sprintf("%.0f", ser.WalksPerSec),
			fmt.Sprintf("%.0f", ser.StepsPerSec),
			fmt.Sprintf("%.0f", ser.UpdatesPerSec),
			fmt.Sprintf("%.1f%%", ser.AchievedLoadPct),
		)
	}
	tbl.flush()

	if o.JSONPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	return nil
}
