// The failover extension of the sharded differential harness: a
// replicated session (every ownership block on two of three shards)
// ingests a growth tape while one shard is killed mid-stream and later
// restarted with an empty engine. The coordinator must promote the
// victim's replica, re-route walkers, re-prime the restarted shard from
// live snapshots — and the surviving state must still match a sequential
// replay edge-for-edge. Run with -race; the chaos fabric is built so
// this file can exercise the failover protocol without spawning OS
// processes (the root-package fault test covers real kill -9 daemons).
package walk_test

import (
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/chaos"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	fvVerts0   = 300 // initial ring the session bootstraps
	fvVertsMax = 600 // tape references IDs up to here (growth-inducing)
	fvTapeLen  = 6000
	fvShards   = 3
	fvReplicas = 2
	fvVictim   = 1
)

// runChaosNode hosts one shard node over the chaos fabric with a fresh
// engine, the way a `-shard-serve` daemon would; the returned channel
// closes when the node's loops have exited (after a kill or session
// end).
func runChaosNode(t *testing.T, plan walk.ShardPlan, shard int, port fabric.ShardPort) chan struct{} {
	t.Helper()
	s, err := core.New(fvVerts0, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := concurrent.Wrap(s, concurrent.Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := walk.RunShardNode(e, plan, shard, port, 2, fabric.CacheSpec{}, walk.KernelAuto); err != nil {
			t.Logf("shard %d node exited: %v", shard, err)
		}
	}()
	return done
}

// TestFailoverKillRestartDifferential kills shard 1 after a third of the
// tape, streams the middle third against the promoted replicas, restarts
// the shard with an empty engine, waits for the rejoin to re-prime it,
// streams the rest — and then requires the dumped edge multiset to equal
// the sequential replay, with zero dropped batches and no caller-visible
// error at any point.
func TestFailoverKillRestartDifferential(t *testing.T) {
	tape := buildGrowthTape(fvTapeLen, fvVertsMax, 0xFA11)

	ring := make([]graph.Edge, fvVerts0)
	for i := range ring {
		ring[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % fvVerts0), Bias: 1}
	}
	boot, err := graph.FromEdges(fvVerts0, ring)
	if err != nil {
		t.Fatal(err)
	}

	plan := walk.NewShardPlan(fvVerts0, fvShards)
	plan.Replicas = fvReplicas
	fab := chaos.New(fvShards)
	nodeDone := make([]chan struct{}, fvShards)
	for i := 0; i < fvShards; i++ {
		nodeDone[i] = runChaosNode(t, plan, i, fab.ShardPort(i))
	}
	svc, err := walk.NewRemoteService(fab.CoordPort(), plan, fvVerts0, walk.ShardedLiveConfig{
		WalkLength: 8,
		Seed:       0xFA11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Bootstrap(boot); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	// Query walkers cross shards (and the failover) for the whole run;
	// under replication every query must still complete successfully.
	qdone := make(chan struct{})
	var walkers sync.WaitGroup
	for q := 0; q < 2; q++ {
		walkers.Add(1)
		go func(seed uint64) {
			defer walkers.Done()
			r := xrand.New(seed)
			for n := 0; ; n++ {
				if n >= 16 {
					select {
					case <-qdone:
						return
					default:
					}
				}
				start := graph.VertexID(r.Intn(fvVertsMax))
				path, err := svc.Query(start, 8)
				if err != nil {
					t.Errorf("Query during failover: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
			}
		}(0xFACE + uint64(q))
	}

	feed := func(part []graph.Update) {
		const chunk = 64
		for lo := 0; lo < len(part); lo += chunk {
			hi := lo + chunk
			if hi > len(part) {
				hi = len(part)
			}
			if err := svc.Feed(part[lo:hi]); err != nil {
				t.Fatalf("Feed: %v", err)
			}
		}
	}

	third := len(tape) / 3
	feed(tape[:third])
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync before kill: %v", err)
	}

	// Kill -9: the victim's streams end mid-session, its engine state is
	// gone, and the feed keeps flowing against the promoted replicas.
	fab.Kill(fvVictim)
	select {
	case <-nodeDone[fvVictim]:
	case <-time.After(20 * time.Second):
		t.Fatal("killed shard node did not exit")
	}
	feed(tape[third : 2*third])

	// Restart with an empty engine; the coordinator must re-prime every
	// block the victim holds from a live replica before unmasking it.
	port, err := fab.Restart(fvVictim)
	if err != nil {
		t.Fatal(err)
	}
	nodeDone[fvVictim] = runChaosNode(t, plan, fvVictim, port)
	deadline := time.Now().Add(30 * time.Second)
	for svc.Stats().Failover.Rejoins == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rejoin did not complete; failover tallies %+v", svc.Stats().Failover)
		}
		time.Sleep(10 * time.Millisecond)
	}

	feed(tape[2*third:])
	close(qdone)
	walkers.Wait()
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync after rejoin: %v", err)
	}
	st := svc.Stats()
	t.Logf("failover tallies %+v, backpressure %+v", st.Failover, st.Backpressure)
	if st.Failover.Deaths == 0 || st.Failover.Rejoins == 0 {
		t.Fatalf("failover tallies %+v: want at least one death and one completed rejoin", st.Failover)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d sub-batches across the failover", st.Dropped)
	}

	// Ownership-filtered dumps are an exact partition whether or not the
	// victim is back in rotation; the union must equal the sequential
	// replay of ring + tape.
	shardEdges, err := svc.DumpEdges()
	if err != nil {
		t.Fatalf("DumpEdges: %v", err)
	}
	seq, err := core.New(fvVertsMax, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seqUps := make([]graph.Update, 0, fvVerts0+fvTapeLen)
	for _, e := range ring {
		seqUps = append(seqUps, graph.Update{Op: graph.OpInsert, Src: e.Src, Dst: e.Dst, Bias: e.Bias})
	}
	seqUps = append(seqUps, tape...)
	if err := seq.ApplyUpdatesStreaming(seqUps); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	var got []sdEdge
	for _, es := range shardEdges {
		for _, e := range es {
			got = append(got, sdEdge{src: e.Src, dst: e.Dst, bias: e.Bias})
		}
	}
	want := appendEdges(nil, seq.Snapshot())
	sortEdges(got)
	sortEdges(want)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, d := range nodeDone {
		select {
		case <-d:
		case <-time.After(20 * time.Second):
			t.Fatalf("shard %d node did not exit after Close", i)
		}
	}
}
