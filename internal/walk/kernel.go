package walk

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Kernel round instrumentation, resolved once at init. One histogram
// observation and two counter adds per *round* (up to kernelBatch steps),
// so the per-step overhead is amortized to nothing; the timestamp pair is
// gated on obs.On so the kill switch removes even the clock reads.
var (
	kernelRounds  = obs.C("bingo_kernel_rounds_total")
	kernelSteps   = obs.C("bingo_kernel_steps_total")
	kernelRoundNs = obs.H("bingo_kernel_round_seconds")
)

// This file is the shared stepping kernel every serving loop in the
// package runs on: the LiveService pool, the Sharded demo workers, the
// shardNode crews, and bulk DeepWalk. It replaces the three near-duplicate
// per-walker loops those layers used to carry.
//
// The kernel steps a *frontier* — a SoA batch of in-flight walkers — one
// hop per round. Walkers parked on the same vertex form a run, and a run
// is stepped through one batch draw: one stripe lock/epoch validation (or
// one cache probe and view validation) amortized over every walker in the
// run, instead of the full per-hop machinery once per walker. Runs too
// small to amortize anything take the sparse per-walker path, which is
// byte-for-byte the pre-kernel behavior — the classic Ligra-style
// sparse/dense switch, by frontier density rather than by |frontier|/|E|.
//
// Draw-for-draw discipline: every slot draws from its own RNG stream in
// both modes, and the locked batch path consumes each stream exactly as a
// per-walker locked sample would, so sparse and dense stepping produce
// identical walks whenever draws go through the engine lock. Only the
// view path (hub cache hits) consumes streams differently — exactly as
// the per-walker view cache already did — so dense mode is
// distributionally exact rather than path-identical once hub views serve
// hops, and the differential gates test it that way (chi-square).

// KernelMode selects how the stepping kernel advances a frontier.
type KernelMode uint8

const (
	// KernelAuto switches between sparse and dense stepping by frontier
	// density: runs of at least denseMinRun co-located walkers batch,
	// everything else steps per-walker. The zero value, so every config
	// that predates the kernel gets the adaptive behavior.
	KernelAuto KernelMode = iota
	// KernelSparse forces per-walker stepping — the exact pre-kernel
	// behavior, used as the differential baseline.
	KernelSparse
	// KernelDense forces batch draws for every run, even singletons.
	KernelDense
)

func (m KernelMode) String() string {
	switch m {
	case KernelAuto:
		return "auto"
	case KernelSparse:
		return "sparse"
	case KernelDense:
		return "dense"
	default:
		return fmt.Sprintf("KernelMode(%d)", uint8(m))
	}
}

// ParseKernelMode parses "sparse", "dense", or "auto" (empty = auto; the
// wire and CLI default).
func ParseKernelMode(s string) (KernelMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return KernelAuto, nil
	case "sparse":
		return KernelSparse, nil
	case "dense":
		return KernelDense, nil
	default:
		return KernelAuto, fmt.Errorf("walk: unknown kernel mode %q (want sparse, dense, or auto)", s)
	}
}

// BatchSampler is the optional Engine capability dense stepping requires:
// draw one sample per walker from a single vertex under one lock/epoch
// round, and the view-extracting variant the hub caches batch-fill
// through. concurrent.Engine implements it; engines without it step
// sparse regardless of the configured mode.
type BatchSampler interface {
	// SampleBatch draws one sample from u per slot (slot i with rs[i])
	// under a single lock acquisition. false means u has no sampleable
	// mass. len(dst) must be at least len(rs).
	SampleBatch(u graph.VertexID, rs []*xrand.RNG, dst []graph.VertexID) bool
	// SampleBatchOrView additionally extracts a versioned view for the
	// caller to cache when u's degree reaches minDegree, drawing the
	// batch from the view outside the lock.
	SampleBatchOrView(u graph.VertexID, minDegree int, rs []*xrand.RNG, dst []graph.VertexID) (bool, *core.VertexView)
}

const (
	// denseMinRun is the auto-mode density threshold: runs of at least
	// this many co-located walkers batch their draws. Below it the
	// per-run bookkeeping (gather/scatter through the run scratch) costs
	// about as much as the lock round it would amortize away.
	denseMinRun = 4
	// denseMinBatch is the auto-mode frontier floor: frontiers smaller
	// than this skip grouping entirely — sorting a handful of slots
	// cannot pay for itself.
	denseMinBatch = 8
	// kernelBatch is the frontier capacity batch consumers default to:
	// large enough that hub runs reach batchable size under skew (a
	// 32-hub frontier seats ~32 walkers per hub per round, amortizing
	// the per-run cache probe and validation), small enough that the
	// SoA scratch stays cache-resident.
	kernelBatch = 1024
)

// frontier is the SoA walker-state batch a kernel steps. Slots [0, n)
// are live; cur and rng are the kernel's inputs, next and ok its
// outputs. Consumers keep any per-walker payload (hop counts, fabric
// walkers, visit tallies) in their own parallel slices and compact them
// alongside. Frontiers are pooled: the grouping index, gather scratch,
// and backing RNG values are reused across rounds and batches, so a
// steady-state stepping loop allocates nothing.
type frontier struct {
	n    int
	cur  []graph.VertexID
	rng  []*xrand.RNG
	next []graph.VertexID
	ok   []bool

	idx    []int32          // grouping order, runs contiguous in first-appearance order
	runEnd []int32          // exclusive end offsets of runs within idx
	grs    []*xrand.RNG     // gathered per-run RNG scratch
	gdst   []graph.VertexID // gathered per-run draw scratch

	// Run-grouping scratch: a generation-stamped open-addressing table
	// maps vertex → run, slotRun tags each slot with its run, and runCur
	// holds the placement cursors, so grouping is two O(n) passes with no
	// sorting and no clearing between rounds.
	slotRun []int32
	runCur  []int32
	htKey   []graph.VertexID
	htRun   []int32
	htGen   []uint32
	gen     uint32

	// rngBack is the pooled generator backing store for consumers whose
	// walkers arrive with serialized RNG state (the fabric crews):
	// seatRNG re-seats a wire state into slot i's value in place, so no
	// generator is allocated per walker.
	rngBack []xrand.RNG
}

var frontierPool = sync.Pool{New: func() any { return new(frontier) }}

// getFrontier returns a pooled frontier with capacity for n slots.
func getFrontier(n int) *frontier {
	f := frontierPool.Get().(*frontier)
	f.grow(n)
	f.n = 0
	return f
}

// putFrontier returns f to the pool. Callers must not retain f.
func putFrontier(f *frontier) {
	for i := range f.rng {
		f.rng[i] = nil // drop generator refs so pooled memory pins nothing
	}
	frontierPool.Put(f)
}

func (f *frontier) grow(n int) {
	if cap(f.cur) >= n && len(f.htKey) >= 2*n {
		f.cur = f.cur[:n]
		f.rng = f.rng[:n]
		f.next = f.next[:n]
		f.ok = f.ok[:n]
		f.grs = f.grs[:0]
		f.gdst = f.gdst[:n]
		f.rngBack = f.rngBack[:n]
		f.slotRun = f.slotRun[:n]
		return
	}
	f.cur = make([]graph.VertexID, n)
	f.rng = make([]*xrand.RNG, n)
	f.next = make([]graph.VertexID, n)
	f.ok = make([]bool, n)
	f.idx = make([]int32, 0, n)
	f.runEnd = make([]int32, 0, n)
	f.grs = make([]*xrand.RNG, 0, n)
	f.gdst = make([]graph.VertexID, n)
	f.rngBack = make([]xrand.RNG, n)
	f.slotRun = make([]int32, n)
	f.runCur = make([]int32, 0, n)
	sz := 4
	for sz < 2*n {
		sz <<= 1
	}
	f.htKey = make([]graph.VertexID, sz)
	f.htRun = make([]int32, sz)
	f.htGen = make([]uint32, sz)
	f.gen = 0
}

// groupRuns groups the live slots by current vertex into f.idx: runs are
// contiguous, ordered by each vertex's first appearance, and slots within
// a run keep increasing slot order — deterministic for a given frontier,
// with no comparison sort. The hash pass tags each slot with its run and
// counts run sizes; a prefix sum turns the counts into run ends and a
// reverse placement pass emits the slots (filling each run from its end
// in descending slot order preserves ascending order within the run)
// without the dependent loads a chained emit would pay. f.runEnd holds
// the exclusive end offset of each run.
func (f *frontier) groupRuns() {
	n := f.n
	mask := uint32(len(f.htKey) - 1)
	f.gen++
	if f.gen == 0 { // generation wrap: stale stamps could alias
		for i := range f.htGen {
			f.htGen[i] = 0
		}
		f.gen = 1
	}
	runEnd := f.runEnd[:0]
	slotRun := f.slotRun[:n]
	for i := 0; i < n; i++ {
		v := f.cur[i]
		h := uint32((uint64(v) * 0x9e3779b97f4a7c15) >> 40)
		for h &= mask; ; h = (h + 1) & mask {
			if f.htGen[h] != f.gen {
				f.htGen[h] = f.gen
				f.htKey[h] = v
				r := int32(len(runEnd))
				f.htRun[h] = r
				runEnd = append(runEnd, 1)
				slotRun[i] = r
				break
			}
			if f.htKey[h] == v {
				r := f.htRun[h]
				runEnd[r]++
				slotRun[i] = r
				break
			}
		}
	}
	sum := int32(0)
	for r := range runEnd {
		sum += runEnd[r]
		runEnd[r] = sum
	}
	cur := append(f.runCur[:0], runEnd...)
	idx := f.idx[:n]
	for i := n - 1; i >= 0; i-- {
		r := slotRun[i]
		cur[r]--
		idx[cur[r]] = int32(i)
	}
	f.idx = idx
	f.runEnd = runEnd
	f.runCur = cur
}

// slotRNG returns slot i's pooled generator, wiring one up on first use.
// Slot generators follow their slots through swaps, so a slot freed by
// compaction hands its generator to the walker that reuses the slot —
// the steady-state loop never allocates one.
func (f *frontier) slotRNG(i int) *xrand.RNG {
	r := f.rng[i]
	if r == nil {
		r = &f.rngBack[i]
		f.rng[i] = r
	}
	return r
}

// seatRNG re-seats a serialized stream into slot i's pooled generator.
// The returned pointer stays valid until the frontier is released.
func (f *frontier) seatRNG(i int, st xrand.State) *xrand.RNG {
	r := f.slotRNG(i)
	r.SetState(st)
	return r
}

// swap exchanges slots i and j (the consumer-side compaction primitive;
// consumers swap their payload slices in lockstep).
func (f *frontier) swap(i, j int) {
	f.cur[i], f.cur[j] = f.cur[j], f.cur[i]
	f.rng[i], f.rng[j] = f.rng[j], f.rng[i]
	f.next[i], f.next[j] = f.next[j], f.next[i]
	f.ok[i], f.ok[j] = f.ok[j], f.ok[i]
}

// stepKernel is the shared stepping kernel. One kernel belongs to one
// goroutine (it owns a private view cache, like the loops it replaced);
// the engine and views it draws from are the concurrency-safe layers
// below.
type stepKernel struct {
	e    Engine
	ve   ViewSampler  // nil: engine without views, or cache off
	be   BatchSampler // nil: engine without batch draws → always sparse
	vc   *viewCache   // nil: cache off
	mode KernelMode
}

// newStepKernel builds a kernel over e. The cache spec has the usual
// fabric semantics (zero value = hub caches on with defaults, Off
// disables); mode selects sparse/dense/auto stepping. Engines without
// BatchSampler step sparse whatever the mode says.
func newStepKernel(e Engine, mode KernelMode, cache fabric.CacheSpec) *stepKernel {
	k := &stepKernel{e: e, mode: mode}
	if !cache.Off {
		if ve, ok := e.(ViewSampler); ok {
			k.ve = ve
			k.vc = newViewCache(cache.Size, cache.MinDegree)
		}
	}
	if be, ok := e.(BatchSampler); ok {
		k.be = be
	}
	return k
}

// step draws one hop for a single walker — the sparse path, identical to
// the pre-kernel loops: through the goroutine's hub-view cache when one
// is configured, through the engine's locked sample otherwise.
func (k *stepKernel) step(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) {
	return k.vc.sample(k.ve, k.e, u, r)
}

// walkOne walks a single walker to completion (the query-serving shape:
// one independent path, no co-location to exploit), reusing buf.
func (k *stepKernel) walkOne(start graph.VertexID, length int, r *xrand.RNG, buf []graph.VertexID) []graph.VertexID {
	buf = append(buf[:0], start)
	cur := start
	for hop := 0; hop < length; hop++ {
		next, ok := k.step(cur, r)
		if !ok {
			break
		}
		cur = next
		buf = append(buf, cur)
	}
	return buf
}

// walkPathBy is the first-order walk primitive: walk up to length steps
// from start through the given sampling function, reusing buf.
func walkPathBy(sample func(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool), start graph.VertexID, length int, r *xrand.RNG, buf []graph.VertexID) []graph.VertexID {
	buf = append(buf[:0], start)
	cur := start
	for hop := 0; hop < length; hop++ {
		next, ok := sample(cur, r)
		if !ok {
			break
		}
		cur = next
		buf = append(buf, cur)
	}
	return buf
}

// walkPath is walkPathBy over an engine's locked Sample.
func walkPath(e Engine, start graph.VertexID, length int, r *xrand.RNG, buf []graph.VertexID) []graph.VertexID {
	return walkPathBy(e.Sample, start, length, r, buf)
}

// stepBatch advances every live slot of f one hop: next[i], ok[i] :=
// one draw from cur[i] with rng[i]. Sparse mode (or an engine without
// batch draws) steps each slot independently. Otherwise slots are
// grouped into per-vertex runs (see groupRuns — deterministic, no sort)
// and each run of co-located walkers is stepped through one batch draw;
// in auto mode only runs of at least denseMinRun batch, and frontiers
// below denseMinBatch skip grouping entirely. With hub caches off every
// slot draws from its own stream in every mode, so grouping order never
// changes any walker's draws (the lockstep contract); cached-view hits
// draw the whole run from the lead slot's stream, where the contract is
// distributional exactness.
func (k *stepKernel) stepBatch(f *frontier) {
	if !obs.On() {
		k.stepBatchImpl(f)
		return
	}
	t0 := time.Now()
	k.stepBatchImpl(f)
	kernelRoundNs.ObserveSince(t0)
	kernelRounds.Inc()
	kernelSteps.Add(int64(f.n))
}

func (k *stepKernel) stepBatchImpl(f *frontier) {
	n := f.n
	if k.mode == KernelSparse || k.be == nil ||
		(k.mode == KernelAuto && n < denseMinBatch) {
		for i := 0; i < n; i++ {
			f.next[i], f.ok[i] = k.step(f.cur[i], f.rng[i])
		}
		return
	}
	f.groupRuns()
	lo := int32(0)
	for _, hi := range f.runEnd {
		run := f.idx[lo:hi]
		if k.mode == KernelAuto && len(run) < denseMinRun {
			for _, s := range run {
				f.next[s], f.ok[s] = k.step(f.cur[s], f.rng[s])
			}
		} else {
			k.stepRun(f.cur[run[0]], run, f)
		}
		lo = hi
	}
}

// stepRun draws one hop for every walker of a co-located run through a
// single batch draw and scatters the drawn next-hops back. A cache hit
// draws the run from the lead slot's stream without touching the other
// slots' generators; only the miss path gathers the per-slot RNGs for
// the engine's locked batch.
func (k *stepKernel) stepRun(u graph.VertexID, run []int32, f *frontier) {
	dst := f.gdst[:len(run)]
	var ok bool
	if vw := k.vc.hitView(k.ve, u, len(run)); vw != nil {
		ok = vw.SampleBatchOne(f.rng[run[0]], dst)
	} else {
		rs := f.grs[:0]
		for _, s := range run {
			rs = append(rs, f.rng[s])
		}
		f.grs = rs[:0]
		ok = k.vc.fillBatch(k.ve, k.be, u, rs, dst)
	}
	for i, s := range run {
		f.next[s] = dst[i]
		f.ok[s] = ok
	}
}

// flushCacheStats drains the kernel's private cache counters into the
// caller's accumulators (no-op without a cache).
func (k *stepKernel) flushCacheStats(hits, stale *int64) {
	if k.vc == nil {
		return
	}
	*hits += k.vc.hits
	*stale += k.vc.stale
	k.vc.hits, k.vc.stale = 0, 0
}
