package walk

import (
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ViewSampler is the optional LiveEngine capability the hub caches are
// built on: versioned per-vertex view extraction with epoch validation
// (concurrent.Engine implements it). Engines without it simply run every
// hop through the locked Sample path, exactly as before the cache
// existed.
type ViewSampler interface {
	// ViewOf extracts a versioned immutable view of u's sampling state.
	ViewOf(u graph.VertexID) *core.VertexView
	// ValidateView reports whether a view still reflects its vertex's
	// current state (stable epoch, no mutation since extraction).
	ValidateView(vw *core.VertexView) bool
	// SampleOrView draws one sample under a single lock acquisition and,
	// when u's degree is at least minDegree, also extracts a view for
	// the caller to cache.
	SampleOrView(u graph.VertexID, minDegree int, r *xrand.RNG) (graph.VertexID, bool, *core.VertexView)
}

// Hub-cache defaults, shared by the in-process services and the daemons
// (which receive a fabric.CacheSpec in their session Hello and resolve
// zeros against these).
const (
	// DefaultHubCacheSize is each crew walker's local view-LRU capacity.
	DefaultHubCacheSize = 256
	// DefaultHubMinDegree is the hub admission threshold: vertices below
	// this degree are sampled through the lock (the view copy would cost
	// more than it saves).
	DefaultHubMinDegree = 8
	// DefaultRemoteViewSize is the per-node remote-view cache capacity.
	DefaultRemoteViewSize = 512
	// DefaultViewRequestAfter is how many hand-offs a node observes
	// toward one non-owned vertex before it requests the owner's view.
	DefaultViewRequestAfter = 2
)

// viewCache is one walker's LRU of hot vertices' views. It is owned by a
// single goroutine (one per crew walker / pool walker), so it needs no
// locking; the views themselves are immutable and validated by epoch on
// every use. Eviction is exact LRU over an intrusive doubly-linked list
// threaded through a fixed slot array.
//
// Admission is churn-aware: a vertex whose cached views keep going stale
// before serving churnYoungHits lock-free hops (a writer rewrites it
// faster than walkers revisit it) earns strikes, and each strike doubles
// the number of cacheable extractions skipped before its next admission.
// Under hub-targeted write churn the O(degree) view copies otherwise
// cost more than the lock acquisitions they save; long-lived views clear
// their vertex's strikes and keep full admission.
type viewCache struct {
	minDeg     int
	slots      []viewSlot
	index      map[graph.VertexID]int
	free       []int
	head, tail int // most- / least-recently-used slot, -1 when empty

	// churn is the per-vertex admission back-off state.
	churn map[graph.VertexID]churnMark

	// ghost is the second-touch admission filter: the last capacity
	// missed vertices, as a set plus FIFO ring. A miss extracts a view
	// only on its second appearance within the window — one-shot
	// visitors (a diffuse walk frontier touching hub-sized vertices it
	// will never revisit) flow through the locked path instead of
	// churning the LRU with O(degree) view copies.
	ghost   map[graph.VertexID]struct{}
	ghostQ  []graph.VertexID
	ghostAt int

	// hits/stale are flushed into shared counters by the owner (misses
	// are derivable: every non-hit hop is a miss or an uncached sample).
	hits, stale int64
}

// churnMark is one vertex's admission back-off: strikes count young
// deaths, skipped counts extractions declined since the last admission.
type churnMark struct {
	strikes uint8
	skipped uint16
}

type viewSlot struct {
	v          graph.VertexID
	vw         *core.VertexView
	uses       int64 // lock-free hops this view served
	prev, next int
}

// newViewCache returns a cache with the given capacity and hub-degree
// threshold (zeros select the defaults). A nil cache is a valid
// "disabled" cache for every method.
func newViewCache(capacity, minDegree int) *viewCache {
	if capacity <= 0 {
		capacity = DefaultHubCacheSize
	}
	if minDegree <= 0 {
		minDegree = DefaultHubMinDegree
	}
	return &viewCache{
		minDeg: minDegree,
		slots:  make([]viewSlot, 0, capacity),
		index:  make(map[graph.VertexID]int, capacity),
		churn:  map[graph.VertexID]churnMark{},
		ghost:  make(map[graph.VertexID]struct{}, capacity),
		ghostQ: make([]graph.VertexID, 0, capacity),
		head:   -1,
		tail:   -1,
	}
}

// secondTouch reports whether a missed vertex has earned extraction (it
// already missed within the ghost window, so it is being revisited);
// otherwise it records the miss in the window.
func (c *viewCache) secondTouch(u graph.VertexID) bool {
	if _, ok := c.ghost[u]; ok {
		delete(c.ghost, u)
		return true
	}
	if len(c.ghostQ) < cap(c.ghostQ) {
		c.ghostQ = append(c.ghostQ, u)
	} else {
		delete(c.ghost, c.ghostQ[c.ghostAt])
		c.ghostQ[c.ghostAt] = u
		c.ghostAt = (c.ghostAt + 1) % len(c.ghostQ)
	}
	c.ghost[u] = struct{}{}
	return false
}

// admit reports whether a fresh view of u may enter the cache, charging
// one skipped extraction against u's back-off when not.
func (c *viewCache) admit(u graph.VertexID) bool {
	m, ok := c.churn[u]
	if !ok || m.strikes == 0 {
		return true
	}
	m.skipped++
	if m.skipped < 1<<m.strikes {
		c.churn[u] = m
		return false
	}
	m.skipped = 0
	c.churn[u] = m
	return true
}

// noteStale records a view of u dropped on epoch mismatch: a view that
// died before serving its keep earns a strike, a long-lived one clears
// the slate.
func (c *viewCache) noteStale(u graph.VertexID, uses int64) {
	if uses >= churnYoungHits {
		delete(c.churn, u)
		return
	}
	if len(c.churn) >= 4096 {
		c.churn = map[graph.VertexID]churnMark{}
	}
	m := c.churn[u]
	if m.strikes < churnMaxStrikes {
		m.strikes++
	}
	m.skipped = 0
	c.churn[u] = m
}

// get returns u's cached view (moving it to the front) or nil.
func (c *viewCache) get(u graph.VertexID) *core.VertexView {
	i, ok := c.index[u]
	if !ok {
		return nil
	}
	c.moveFront(i)
	return c.slots[i].vw
}

// put inserts or refreshes u's view, evicting the LRU slot when full.
func (c *viewCache) put(u graph.VertexID, vw *core.VertexView) {
	if i, ok := c.index[u]; ok {
		c.slots[i].vw = vw
		c.slots[i].uses = 0
		c.moveFront(i)
		return
	}
	var i int
	switch {
	case len(c.free) > 0:
		i = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case len(c.slots) < cap(c.slots):
		c.slots = append(c.slots, viewSlot{})
		i = len(c.slots) - 1
	default:
		i = c.tail
		c.unlink(i)
		delete(c.index, c.slots[i].v)
	}
	c.slots[i] = viewSlot{v: u, vw: vw, prev: -1, next: c.head}
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
	c.index[u] = i
}

// drop removes u (a stale view); its slot returns to the free list.
func (c *viewCache) drop(u graph.VertexID) {
	i, ok := c.index[u]
	if !ok {
		return
	}
	c.unlink(i)
	delete(c.index, u)
	c.slots[i].vw = nil
	c.free = append(c.free, i)
}

func (c *viewCache) unlink(i int) {
	s := &c.slots[i]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

func (c *viewCache) moveFront(i int) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.slots[i].next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// sample draws one step at u through the cache: a cached, still-valid
// view samples lock-free; a stale view is dropped and the locked path
// refills the slot when u is hub-sized. A nil receiver (cache disabled,
// or engine without views) is the plain locked sample.
func (c *viewCache) sample(ve ViewSampler, e Engine, u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) {
	if c == nil || ve == nil {
		return e.Sample(u, r)
	}
	if i, ok := c.index[u]; ok {
		if vw := c.slots[i].vw; ve.ValidateView(vw) {
			c.hits++
			c.slots[i].uses++
			c.moveFront(i)
			return vw.Sample(r)
		}
		c.noteStale(u, c.slots[i].uses)
		c.drop(u)
		c.stale++
	}
	md := 0
	if c.secondTouch(u) {
		md = c.minDeg
	}
	v, ok, vw := ve.SampleOrView(u, md, r)
	if vw != nil && c.admit(u) {
		c.put(u, vw)
	}
	return v, ok
}

// hitView probes the cache for a still-valid view of u, charging the
// run's draws to the hit counters (a stale view is dropped and counted,
// exactly as the fill path expects to find it gone). A nil receiver (or
// engine without views) never hits; the caller then goes through
// fillBatch without having paid any per-slot work.
func (c *viewCache) hitView(ve ViewSampler, u graph.VertexID, draws int) *core.VertexView {
	if c == nil || ve == nil {
		return nil
	}
	i, ok := c.index[u]
	if !ok {
		return nil
	}
	if vw := c.slots[i].vw; ve.ValidateView(vw) {
		c.hits += int64(draws)
		c.slots[i].uses += int64(draws)
		c.moveFront(i)
		return vw
	}
	c.noteStale(u, c.slots[i].uses)
	c.drop(u)
	c.stale++
	return nil
}

// fillBatch is the dense-mode miss path: one draw per slot for a whole
// run of walkers parked on u through the engine's batch cache-fill
// entry, under churn-aware admission, exactly mirroring the sparse
// path's policy. A nil receiver (cache disabled, or engine without
// views) is the plain locked batch, which consumes per-slot streams —
// that is the lockstep path. Callers probe hitView first: a cached
// valid view serves the entire run lock-free from the run's lead stream
// (view draws are distributional by contract, and one stream keeps the
// generator state resident across the run instead of fetching a
// scattered state line per slot — it also spares the miss path's RNG
// gather entirely).
func (c *viewCache) fillBatch(ve ViewSampler, be BatchSampler, u graph.VertexID, rs []*xrand.RNG, dst []graph.VertexID) bool {
	if c == nil || ve == nil {
		return be.SampleBatch(u, rs, dst)
	}
	// A run of co-located walkers is itself the revisit evidence the
	// ghost filter exists to find, so batchable runs extract on first
	// touch; singleton runs go through the second-touch window like the
	// sparse path.
	md := 0
	if len(rs) >= denseMinRun || c.secondTouch(u) {
		md = c.minDeg
	}
	ok, vw := be.SampleBatchOrView(u, md, rs, dst)
	if vw != nil && c.admit(u) {
		c.put(u, vw)
	}
	return ok
}
