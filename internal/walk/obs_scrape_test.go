// Concurrent-scrape race test: HTTP scrapers hammer /metrics, /statusz,
// and /eventz while a sharded service walks and ingests a hub-skewed
// growth tape. Every instrument the hot paths touch is read concurrently
// by the exposition path, so `make race` (which covers this package)
// proves the lock-cheap registry design actually is data-race-free —
// not just quiet in practice.
package walk_test

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func TestMetricsScrapeUnderLoad(t *testing.T) {
	srv, err := obs.Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("obs.Serve: %v", err)
	}
	defer srv.Close()
	obs.RegisterStatus("scrape_test", func() any { return map[string]int{"ok": 1} })
	defer obs.UnregisterStatus("scrape_test")

	const n = 750 // rbVertsMax: the hub-skew tape's growth space
	svc, _ := ringShardService(t, n, 3, walk.ShardedLiveConfig{WalkersPerShard: 2, WalkLength: 12, Seed: 0x5c4a})
	defer svc.Close()
	tape := buildHubSkewTape(4000, 0x5c4a)

	stop := make(chan struct{})
	var scrapers, load sync.WaitGroup

	// Scrapers: all three endpoints, continuously until the load is done.
	for _, ep := range []string{"/metrics", "/statusz", "/eventz?n=64"} {
		scrapers.Add(1)
		go func(url string) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + srv.Addr() + url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("read %s: %v", url, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(ep)
	}

	// Load: a feeder streams the growth tape while query clients walk.
	load.Add(1)
	go func() {
		defer load.Done()
		for lo := 0; lo < len(tape); lo += 64 {
			hi := lo + 64
			if hi > len(tape) {
				hi = len(tape)
			}
			if err := svc.Feed(tape[lo:hi]); err != nil {
				t.Errorf("Feed: %v", err)
				return
			}
		}
	}()
	for c := 0; c < 2; c++ {
		load.Add(1)
		go func(seed uint64) {
			defer load.Done()
			r := xrand.New(seed)
			for q := 0; q < 400; q++ {
				if _, err := svc.Query(graph.VertexID(r.Intn(n)), 12); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
			}
		}(0xbeef + uint64(c))
	}

	// Scrapers run for the load's whole lifetime, so every hot-path
	// instrument is read while it is being written.
	loadDone := make(chan struct{})
	go func() { defer close(loadDone); load.Wait() }()
	select {
	case <-loadDone:
	case <-time.After(120 * time.Second):
		t.Fatal("load did not finish")
	}
	close(stop)
	scrapers.Wait()

	// The scrape view must show the load it raced against.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("final GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"bingo_kernel_steps_total", "bingo_query_seconds", "bingo_ingest_updates_total"} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
}
