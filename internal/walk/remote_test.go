package walk_test

import (
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
)

// TestRemoteServiceSessionDeath pins the dead-session contract: when a
// shard daemon dies mid-session (its connection drops without a
// shutdown), the whole single-session fabric is over — in-flight and
// *subsequent* Sync/Query/Close calls must fail promptly instead of
// blocking forever on acks and retires that will never arrive.
func TestRemoteServiceSessionDeath(t *testing.T) {
	const shards = 2
	listeners := make([]*tcpgob.Listener, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		l, err := tcpgob.Listen("127.0.0.1:0", i, shards)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	// Shard 1 is a healthy node; shard 0 accepts the session and then
	// "crashes" (closes everything without serving).
	go func() {
		sc, hello, err := listeners[1].Accept()
		if err != nil {
			return
		}
		s, err := core.New(hello.NumVertices, core.DefaultConfig())
		if err != nil {
			return
		}
		e := concurrent.Wrap(s, concurrent.Config{})
		plan := walk.ShardPlan{Shards: hello.Shards, RangeSize: hello.RangeSize}
		walk.RunShardNode(e, plan, 1, sc, 1, fabric.CacheSpec{}, walk.KernelAuto)
	}()
	go func() {
		sc, _, err := listeners[0].Accept()
		if err != nil {
			return
		}
		sc.Close()
	}()

	const verts = 64
	plan := walk.NewShardPlan(verts, shards)
	port, err := tcpgob.Dial(addrs, fabric.Hello{RangeSize: plan.RangeSize, NumVertices: verts})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := walk.NewRemoteService(port, plan, verts, walk.ShardedLiveConfig{WalkLength: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Everything below must complete well inside the test timeout: the
	// dead shard never acks the bootstrap barrier, so only the
	// death-propagation path can unblock these calls.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Feed([]graph.Update{{Op: graph.OpInsert, Src: 1, Dst: 2, Bias: 1}}); err != nil {
			t.Logf("Feed after death: %v", err)
		}
		if err := svc.Sync(); err == nil {
			t.Error("Sync on a dead session returned nil")
		}
		if _, err := svc.Query(1, 4); err == nil {
			t.Error("Query on a dead session returned nil error")
		}
		if err := svc.Close(); err == nil {
			t.Error("Close on a dead session returned nil")
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("dead session left callers blocked")
	}
}
