package walk

import (
	"fmt"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// benchHubs is the hub count of the benchmark topology; a kernelBatch
// frontier parks kernelBatch/benchHubs walkers per hub every round.
const benchHubs = 32

// benchHubEngine builds the hub-dominated engine the dense mode targets:
// every vertex has eight out-edges, seven into the hub set, so a frontier
// re-concentrates on the hubs every hop and never dead-ends.
func benchHubEngine(tb testing.TB, verts int) *concurrent.Engine {
	tb.Helper()
	r := xrand.New(0xbe7c4)
	edges := make([]graph.Edge, 0, verts*8)
	for v := 0; v < verts; v++ {
		for j := 0; j < 8; j++ {
			dst := graph.VertexID(r.Intn(benchHubs))
			if j == 7 {
				dst = graph.VertexID(r.Intn(verts))
			}
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: dst, Bias: uint64(1 + r.Intn(16))})
		}
	}
	g, err := graph.FromEdges(verts, edges)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := core.NewFromCSR(g, core.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return concurrent.Wrap(s, concurrent.Config{})
}

// benchFrontier seats a full hub-parked frontier with per-slot streams.
func benchFrontier(f *frontier) {
	for i := 0; i < kernelBatch; i++ {
		f.cur[i] = graph.VertexID(i % benchHubs)
		f.rng[i] = xrand.New(uint64(i) + 1)
	}
	f.n = kernelBatch
}

// stepAndAdvance runs one kernel round and walks the frontier forward
// (re-parking any dead-ended slot on its home hub, which the hub topology
// never actually produces).
func stepAndAdvance(k *stepKernel, f *frontier) {
	k.stepBatch(f)
	for i := 0; i < f.n; i++ {
		if f.ok[i] {
			f.cur[i] = f.next[i]
		} else {
			f.cur[i] = graph.VertexID(i % benchHubs)
		}
	}
}

// BenchmarkKernelStep measures the steady-state cost of one frontier
// round (kernelBatch steps) per kernel mode × cache setting on the
// hub-concentrated frontier. allocs/op is the satellite budget the alloc
// test pins: steady-state stepping must not allocate.
func BenchmarkKernelStep(b *testing.B) {
	e := benchHubEngine(b, 4096)
	defer obs.SetEnabled(true)
	for _, mode := range []KernelMode{KernelSparse, KernelDense, KernelAuto} {
		for _, cache := range []string{"off", "on"} {
			for _, obsS := range []string{"on", "off"} {
				b.Run(fmt.Sprintf("mode=%s/cache=%s/obs=%s", mode, cache, obsS), func(b *testing.B) {
					obs.SetEnabled(obsS == "on")
					k := newStepKernel(e, mode, fabric.CacheSpec{Off: cache == "off"})
					f := getFrontier(kernelBatch)
					defer putFrontier(f)
					benchFrontier(f)
					for w := 0; w < 64; w++ {
						stepAndAdvance(k, f)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						stepAndAdvance(k, f)
					}
					b.ReportMetric(float64(b.N)*kernelBatch/b.Elapsed().Seconds(), "steps/s")
				})
			}
		}
	}
}

// TestKernelObsOverheadBudget pins the tentpole's hot-path cost bound:
// a metrics-on stepping round must stay within 2%% of the metrics-off
// round. One round is kernelBatch steps, so the per-round instrument
// cost (two counter adds, one clock read, one histogram observe) is
// amortized across the batch; the budget is measured best-of-5 attempts
// because wall-clock ratios on a shared machine are noisy — a genuine
// regression fails every attempt, scheduler jitter does not.
func TestKernelObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	e := benchHubEngine(t, 2048)
	defer obs.SetEnabled(true)
	run := func(on bool) time.Duration {
		obs.SetEnabled(on)
		k := newStepKernel(e, KernelAuto, fabric.CacheSpec{})
		f := getFrontier(kernelBatch)
		defer putFrontier(f)
		benchFrontier(f)
		for w := 0; w < 64; w++ {
			stepAndAdvance(k, f)
		}
		t0 := time.Now()
		for i := 0; i < 400; i++ {
			stepAndAdvance(k, f)
		}
		return time.Since(t0)
	}
	const budget = 1.02
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		off := run(false)
		on := run(true)
		ratio := float64(on) / float64(off)
		if attempt == 0 || ratio < best {
			best = ratio
		}
		if best <= budget {
			t.Logf("attempt %d: metrics-on/off round ratio %.4f (within %.0f%% budget)", attempt, best, (budget-1)*100)
			return
		}
	}
	t.Errorf("metrics-on stepping round is %.1f%% slower than metrics-off across 5 attempts (budget 2%%)", (best-1)*100)
}

// TestKernelStepAllocBudget pins the satellite's allocs-per-step budget:
// after warmup (caches filled, scratch grown), a stepping round over the
// resident hot set allocates nothing in any mode — the budget of 0.5
// allocs per 256-step round tolerates only stray background noise, not
// per-step or per-run allocation regressions. The frontier re-parks on
// the hubs each round: a wandering frontier pays amortized O(degree)
// view extraction when it lands on cold hub-sized vertices, which is
// cache-fill cost, not stepping cost (the benchmark reports it).
func TestKernelStepAllocBudget(t *testing.T) {
	obs.SetEnabled(true) // the budget must hold with the metrics layer recording
	e := benchHubEngine(t, 2048)
	for _, mode := range []KernelMode{KernelSparse, KernelDense, KernelAuto} {
		for _, off := range []bool{true, false} {
			k := newStepKernel(e, mode, fabric.CacheSpec{Off: off})
			f := getFrontier(kernelBatch)
			benchFrontier(f)
			for w := 0; w < 64; w++ {
				stepAndAdvance(k, f)
			}
			avg := testing.AllocsPerRun(200, func() {
				for i := 0; i < f.n; i++ {
					f.cur[i] = graph.VertexID(i % benchHubs)
				}
				k.stepBatch(f)
			})
			if avg > 0.5 {
				t.Errorf("mode=%s cache-off=%v: %.2f allocs per %d-step round, want 0",
					mode, off, avg, kernelBatch)
			}
			putFrontier(f)
		}
	}
}
