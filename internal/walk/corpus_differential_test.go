// The standing-walk-corpus differential harness: a corpus maintained
// under the hub-churn tape (delete/reinsert and bias-rewrite storms on
// the vertices most standing walks pass through) must, once the feed
// quiesces and the final refresh drains, be indistinguishable from
// fresh walks on the final graph — a ≥120k-draw chi-square of the
// corpus's hub transitions against a sequential replay's exact
// probabilities, on the in-process fabric AND over loopback tcpgob.
// Plus the coalescing/credit regression: hub-targeted churn must
// collapse into per-walk resamples (not one per event × walk) and the
// touch queue must stay inside its credit window. Run with -race; the
// refresh loop racing feeders and queries is the thing under test.
package walk_test

import (
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	cdChurn    = 8000 // hub-skewed growth+churn events streamed through the corpus
	cdWalksK   = 4    // corpus walks per vertex
	cdLength   = 80   // standing walk length
	cdWriters  = 4
	cdMinDraws = 120000 // chi-square floor across all hub transitions
)

// newCorpusBackend builds an empty sharded serving runtime on the chosen
// transport for the corpus to ride: the in-process fabric, or loopback
// tcpgob shard nodes speaking the daemon protocol.
func newCorpusBackend(t *testing.T, transport string) walk.CorpusBackend {
	t.Helper()
	plan := walk.NewShardPlan(hcVerts, hcShards)
	cfg := walk.ShardedLiveConfig{WalkersPerShard: 2, WalkLength: cdLength, Seed: 0x0FF1CE}
	switch transport {
	case "inproc":
		engines, _ := newShardEngines(t, plan, hcVerts)
		svc, err := walk.NewShardedLiveService(engines, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	case "tcpgob":
		addrs := make([]string, hcShards)
		for i := 0; i < hcShards; i++ {
			l, err := tcpgob.Listen("127.0.0.1:0", i, hcShards)
			if err != nil {
				t.Fatal(err)
			}
			addrs[i] = l.Addr().String()
			go func(i int, l *tcpgob.Listener) {
				defer l.Close()
				sc, hello, err := l.Accept()
				if err != nil {
					return
				}
				e, err := concurrent.New(hello.NumVertices, core.DefaultConfig(), concurrent.Config{})
				if err != nil {
					sc.Close()
					return
				}
				nodePlan := walk.ShardPlan{Shards: hello.Shards, RangeSize: hello.RangeSize}
				walk.RunShardNode(e, nodePlan, i, sc, 2, hello.Cache, walk.KernelAuto)
			}(i, l)
		}
		port, err := tcpgob.Dial(addrs, fabric.Hello{RangeSize: plan.RangeSize, NumVertices: hcVerts})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := walk.NewRemoteService(port, plan, hcVerts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	default:
		t.Fatalf("unknown transport %q", transport)
		return nil
	}
}

func TestCorpusDifferentialInproc(t *testing.T) { testCorpusDifferential(t, "inproc") }
func TestCorpusDifferentialTCP(t *testing.T)    { testCorpusDifferential(t, "tcpgob") }

func testCorpusDifferential(t *testing.T, transport string) {
	build, churn := buildHubTape(0xBE7A, cdChurn)
	tape := append(append([]graph.Update(nil), build...), churn...)
	hubs := hcHubIDs()

	backend := newCorpusBackend(t, transport)
	// Phase A — build: land the hub topology before the corpus grows, so
	// the standing walks start on the real graph.
	if err := backend.Feed(append([]graph.Update(nil), build...)); err != nil {
		t.Fatal(err)
	}
	if err := backend.Sync(); err != nil {
		t.Fatalf("Sync after build: %v", err)
	}
	corpus, err := walk.NewShardedCorpusService(backend, hcVerts, walk.CorpusConfig{
		WalksPerVertex: cdWalksK,
		WalkLength:     cdLength,
		Seed:           0xC0DE,
		// A wide coalescing window: the whole churn burst should collapse
		// into few resample cycles (this is also what keeps the tcp
		// variant's regrow round-trips affordable under -race).
		RefreshInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase B — churn through the corpus feed, partitioned by source so
	// per-source order holds, with corpus readers hammering the hubs
	// concurrently (served slices race the refresh loop's installs; -race
	// watches).
	parts := make([][]graph.Update, cdWriters)
	for _, up := range churn {
		w := int(up.Src) % cdWriters
		parts[w] = append(parts[w], up)
	}
	done := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < cdWriters; w++ {
		writers.Add(1)
		go func(part []graph.Update) {
			defer writers.Done()
			const chunk = 64
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := corpus.Feed(part[lo:hi]); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
		}(parts[w])
	}
	var readers sync.WaitGroup
	for q := 0; q < 4; q++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			r := xrand.New(seed)
			n := 0
			for {
				if n >= 64 {
					select {
					case <-done:
						return
					default:
					}
				}
				start := hubs[r.Intn(len(hubs))]
				path, err := corpus.Query(start, cdLength)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
				n++
			}
		}(0xD00D + uint64(q))
	}
	writers.Wait()
	close(done)
	readers.Wait()

	// Phase C — quiesce: the final refresh must incorporate every event,
	// with the applied-stamp evidence agreeing with the fed watermark.
	if err := corpus.Sync(); err != nil {
		t.Fatalf("Sync after churn: %v", err)
	}
	cs := corpus.Stats()
	if cs.CorpusWatermark != cs.FedEvents {
		t.Fatalf("corpus watermark %d has not caught the fed watermark %d after Sync", cs.CorpusWatermark, cs.FedEvents)
	}
	if cs.FedEvents != int64(len(churn)) {
		t.Fatalf("fed watermark %d, want %d churn events", cs.FedEvents, len(churn))
	}
	if cs.AppliedStamp != int64(len(tape)) {
		t.Fatalf("backend applied stamp %d, want %d (build + churn)", cs.AppliedStamp, len(tape))
	}
	if cs.Resamples == 0 || cs.ResampledSteps == 0 {
		t.Fatalf("hub churn triggered no resampling (stats %+v) — the index or touch path is dead", cs)
	}
	if cs.Pending != 0 {
		t.Fatalf("%d touch events still outstanding after Sync", cs.Pending)
	}

	// The fallback rung stays live: a query beyond the standing length
	// must be served fresh through the backend.
	if path, err := corpus.Query(hubs[0], cdLength+5); err != nil || len(path) == 0 {
		t.Fatalf("over-length fallback query: path %v, err %v", path, err)
	}
	if corpus.Stats().Fallbacks == 0 {
		t.Fatal("over-length query did not take the fresh-walk fallback")
	}

	// Phase D — extract the quiescent corpus: K slices per vertex (the
	// rotation cycles through all K standing walks) and tally every
	// transition out of a hub. After the final drain every corpus step is
	// a draw from the final graph: any vertex whose out-distribution
	// changed was touched, and a touch truncates every walk at its
	// earliest visit and regrows the suffix — so hub transitions are
	// i.i.d. conditional draws a chi-square can test against the replay's
	// exact probabilities (the distribution fresh walks sample from).
	isHub := map[graph.VertexID]bool{}
	for _, h := range hubs {
		isHub[h] = true
	}
	served := cs.CorpusServed
	observedBy := map[graph.VertexID]map[graph.VertexID]int64{}
	for _, h := range hubs {
		observedBy[h] = map[graph.VertexID]int64{}
	}
	var draws int64
	for v := 0; v < hcVerts; v++ {
		for k := 0; k < cdWalksK; k++ {
			path, err := corpus.Query(graph.VertexID(v), cdLength)
			if err != nil {
				t.Fatalf("extract %d/%d: %v", v, k, err)
			}
			if len(path) == 0 || path[0] != graph.VertexID(v) {
				t.Fatalf("extract %d/%d: path %v", v, k, path)
			}
			for i := 0; i+1 < len(path); i++ {
				if isHub[path[i]] {
					observedBy[path[i]][path[i+1]]++
					draws++
				}
			}
		}
	}
	cs = corpus.Stats()
	if got := cs.CorpusServed - served; got != int64(hcVerts*cdWalksK) {
		t.Fatalf("extraction was served %d corpus slices, want %d — quiescent queries fell back", got, hcVerts*cdWalksK)
	}
	if draws < cdMinDraws {
		t.Fatalf("only %d hub-transition draws in the corpus, want >= %d", draws, cdMinDraws)
	}

	// Sequential ground truth: the whole tape replayed in order.
	seq, err := core.New(hcVerts, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ApplyUpdatesStreaming(append([]graph.Update(nil), tape...)); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	for _, u := range hubs {
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range seq.VertexProbabilities(u) {
			probByDst[seq.Neighbor(u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		probs := make([]float64, 0, len(dsts))
		observed := make([]int64, 0, len(dsts))
		var seen int64
		for d, n := range observedBy[u] {
			if _, live := probByDst[d]; !live {
				t.Fatalf("hub %d: corpus steps to %d, not a live neighbor of the final graph", u, d)
			}
			seen += n
		}
		for d, p := range probByDst {
			probs = append(probs, p)
			observed = append(observed, observedBy[u][d])
		}
		if seen < 1000 {
			t.Fatalf("hub %d: only %d corpus transitions — the funnel topology is broken", u, seen)
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("hub %d: chi-square: %v", u, err)
		}
		if p < 1e-4 {
			t.Errorf("hub %d: chi-square stat %.2f p=%.2e over %d draws — maintained corpus diverges from fresh walks on the final graph", u, stat, p, seen)
		}
	}
	t.Logf("%s: %d hub draws, %d resamples (%d steps vs %d full-walk-equivalent, amplification %.4f), %d refreshes, max lag %dms",
		transport, draws, cs.Resamples, cs.ResampledSteps, cs.FullWalkSteps, cs.Amplification(), cs.Refreshes, cs.RefreshLagMs)

	if err := corpus.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Feed after Close surfaces closure (ErrLiveClosed from the local
	// queue, or the backend's own session-closed error on tcpgob).
	if err := corpus.Feed([]graph.Update{{Op: graph.OpInsert, Src: 1, Dst: 2, Bias: 1}}); err == nil {
		t.Fatal("Feed after Close returned nil")
	}
}

// TestCorpusCoalescingCredit is the satellite regression: delete/reinsert
// hub churn must coalesce — each dirty walk resampled once per refresh
// from its minimum dirty position, however many events landed — and the
// touch queue must honor its credit window, including the oversized-batch
// admission rule, instead of growing without bound.
func TestCorpusCoalescingCredit(t *testing.T) {
	const (
		verts  = 96
		hub    = 7
		events = 2000
		window = 64
	)
	e, err := concurrent.New(verts, core.DefaultConfig(), concurrent.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A funnel: every vertex points at the hub and one ring neighbor; the
	// hub fans back out. Built on the engine before the corpus grows.
	var build []graph.Update
	for v := 0; v < verts; v++ {
		if v != hub {
			build = append(build, graph.Update{Op: graph.OpInsert, Src: graph.VertexID(v), Dst: hub, Bias: 3})
		}
		build = append(build, graph.Update{Op: graph.OpInsert, Src: graph.VertexID(v), Dst: graph.VertexID((v + 1) % verts), Bias: 1})
	}
	if err := e.ApplyUpdates(build); err != nil {
		t.Fatal(err)
	}
	corpus, err := walk.NewCorpusService(e, walk.CorpusConfig{
		WalksPerVertex:  2,
		WalkLength:      16,
		Seed:            11,
		CreditWindow:    window,
		RefreshInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer corpus.Close()

	// Hub-targeted delete/reinsert churn, every event on the same source:
	// the touch map holds ONE entry however many events accumulate.
	for i := 0; i < events/2; i++ {
		batch := []graph.Update{
			{Op: graph.OpDelete, Src: hub, Dst: graph.VertexID((hub + 1) % verts)},
			{Op: graph.OpInsert, Src: hub, Dst: graph.VertexID((hub + 1) % verts), Bias: 1},
		}
		if err := corpus.Feed(batch); err != nil {
			t.Fatalf("Feed %d: %v", i, err)
		}
	}
	if err := corpus.Sync(); err != nil {
		t.Fatal(err)
	}
	cs := corpus.Stats()
	if cs.Pending != 0 {
		t.Fatalf("%d outstanding touch events after Sync", cs.Pending)
	}
	if cs.MaxOutstanding > window {
		t.Fatalf("max outstanding %d exceeded the credit window %d — backpressure is not capping the queue", cs.MaxOutstanding, window)
	}
	// Coalescing: the un-coalesced cost is one resample per event per
	// walk visiting the hub (~ events × walks). The walkID dedupe bounds
	// resamples by refreshes × walks, and the event coalescing keeps
	// refreshes a small fraction of events.
	if cs.Resamples > cs.Refreshes*cs.Walks {
		t.Fatalf("%d resamples over %d refreshes × %d walks — per-walk dedupe is not coalescing", cs.Resamples, cs.Refreshes, cs.Walks)
	}
	naive := int64(events) * cs.Walks
	if cs.Resamples*10 >= naive {
		t.Fatalf("%d resamples vs %d naive per-event resamples — coalescing is not amortizing hub churn", cs.Resamples, naive)
	}
	if cs.FullWalkSteps <= cs.ResampledSteps {
		t.Fatalf("resampled %d steps vs full-walk-equivalent %d — amplification >= 1 under hub churn", cs.ResampledSteps, cs.FullWalkSteps)
	}

	// Oversized-batch admission: a batch wider than the whole window must
	// be admitted once the queue drains (the router's waitCredits rule),
	// not deadlock Feed forever.
	big := make([]graph.Update, window*3)
	for i := range big {
		big[i] = graph.Update{Op: graph.OpInsert, Src: hub, Dst: graph.VertexID(i % verts), Bias: 1}
	}
	errc := make(chan error, 1)
	go func() { errc <- corpus.Feed(big) }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("oversized Feed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oversized batch deadlocked against the credit window")
	}
	if err := corpus.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := corpus.Stats().MaxOutstanding; got < int64(len(big)) {
		t.Fatalf("max outstanding %d did not record the admitted oversized batch (%d)", got, len(big))
	}
}
