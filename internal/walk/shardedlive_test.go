package walk_test

import (
	"sync"
	"testing"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
)

// newShardEngines builds empty concurrent engines for a plan, each sized
// to the initial vertex space (they grow independently under the feed).
func newShardEngines(t *testing.T, plan walk.ShardPlan, numVertices int) ([]walk.LiveEngine, []*concurrent.Engine) {
	t.Helper()
	engines := make([]walk.LiveEngine, plan.Shards)
	raw := make([]*concurrent.Engine, plan.Shards)
	for i := range engines {
		e, err := concurrent.New(numVertices, core.DefaultConfig(), concurrent.Config{})
		if err != nil {
			t.Fatalf("shard %d engine: %v", i, err)
		}
		engines[i] = e
		raw[i] = e
	}
	return engines, raw
}

// ringShardService builds a sharded live service over the directed ring
// 0→1→…→n-1→0, bootstrapped the production way: partition the snapshot
// CSR, feed each shard its own batch.
func ringShardService(t *testing.T, n, shards int, cfg walk.ShardedLiveConfig) (*walk.ShardedLiveService, []*concurrent.Engine) {
	t.Helper()
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n), Bias: 1}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	plan := walk.NewShardPlan(n, shards)
	engines, err := walk.BootstrapShards(g, plan, func() (walk.LiveEngine, error) {
		return concurrent.New(n, core.DefaultConfig(), concurrent.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]*concurrent.Engine, len(engines))
	for i, e := range engines {
		raw[i] = e.(*concurrent.Engine)
	}
	svc, err := walk.NewShardedLiveService(engines, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, raw
}

// TestShardedLiveServiceQueryFeedClose drives the full service lifecycle:
// deterministic ring queries across shard boundaries, routed feed with a
// Sync barrier, stats, and post-Close semantics.
func TestShardedLiveServiceQueryFeedClose(t *testing.T) {
	const n = 64
	svc, _ := ringShardService(t, n, 4, walk.ShardedLiveConfig{WalkersPerShard: 2, WalkLength: 8, Seed: 5})

	// A ring walk is deterministic: Query(start, L) = start..start+L mod n.
	for _, start := range []graph.VertexID{0, 15, 16, 63} {
		path, err := svc.Query(start, 20)
		if err != nil {
			t.Fatalf("Query(%d): %v", start, err)
		}
		if len(path) != 21 {
			t.Fatalf("Query(%d): path length %d, want 21", start, len(path))
		}
		for i, v := range path {
			if want := graph.VertexID((int(start) + i) % n); v != want {
				t.Fatalf("Query(%d): path[%d] = %d, want %d", start, i, v, want)
			}
		}
	}
	// Default length comes from the config.
	if path, err := svc.Query(3, 0); err != nil || len(path) != 9 {
		t.Fatalf("Query default length: path %d, err %v; want 9, nil", len(path), err)
	}

	st := svc.Stats()
	if st.Queries != 5 || st.Steps != 4*20+8 {
		t.Fatalf("stats %+v, want 5 queries / %d steps", st, 4*20+8)
	}
	// rangeSize 16: a 20-hop walk from 0 crosses at hops landing on 16, 32
	// — wait: from 0, 20 hops reach 20: crossing at 16 only... measured
	// globally instead: every boundary crossing except final hops.
	if st.Transfers == 0 {
		t.Fatal("20-hop ring walks across rangeSize-16 shards must transfer")
	}
	// Every sampled hop is served either by the owning engine or by a
	// cached remote view; transfers count hand-off events separately.
	if st.Local+st.Cache.RemoteHits != st.Steps {
		t.Fatalf("local(%d)+remote(%d) != steps(%d)", st.Local, st.Cache.RemoteHits, st.Steps)
	}

	// Feed a batch touching several shards, Sync, and observe it.
	batch := []graph.Update{
		{Op: graph.OpInsert, Src: 2, Dst: 40, Bias: 1000000},
		{Op: graph.OpInsert, Src: 20, Dst: 50, Bias: 1000000},
		{Op: graph.OpInsert, Src: 40, Dst: 60, Bias: 1000000},
	}
	if err := svc.Feed(batch); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st = svc.Stats()
	if st.Batches != 1 || st.Updates != 3 || st.Dropped != 0 {
		t.Fatalf("ingest stats %+v, want 1 batch / 3 updates / 0 dropped", st)
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := svc.Query(0, 4); err != walk.ErrLiveClosed {
		t.Fatalf("Query after Close: %v, want ErrLiveClosed", err)
	}
	if err := svc.Feed(nil); err != walk.ErrLiveClosed {
		t.Fatalf("Feed after Close: %v, want ErrLiveClosed", err)
	}
	if err := svc.Sync(); err != walk.ErrLiveClosed {
		t.Fatalf("Sync after Close: %v, want ErrLiveClosed", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestShardedLiveServiceDropped mirrors the LiveService dropped-batch
// contract through the router: the failing sub-batch is dropped on its
// shard, the rest of the same Feed batch still applies elsewhere.
func TestShardedLiveServiceDropped(t *testing.T) {
	svc, raw := ringShardService(t, 32, 4, walk.ShardedLiveConfig{WalkersPerShard: 1})
	// Src 0 → shard 0 (bad, zero bias); Src 16 → shard 2 (good).
	if err := svc.Feed([]graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 5, Bias: 0},
		{Op: graph.OpInsert, Src: 16, Dst: 5, Bias: 9},
	}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if err := svc.Sync(); err == nil {
		t.Fatal("Sync returned nil, want the zero-bias ingest error")
	}
	st := svc.Stats()
	if st.Dropped != 1 || st.Updates != 1 {
		t.Fatalf("stats %+v, want Dropped 1 / Updates 1", st)
	}
	if !raw[2].HasEdge(16, 5) {
		t.Fatal("good sub-batch on another shard was not applied")
	}
	if raw[0].HasEdge(0, 5) {
		t.Fatal("dropped sub-batch leaked into its shard")
	}
	if err := svc.Close(); err == nil {
		t.Fatal("Close must report the first ingest error")
	}
}

// TestShardedLiveBulkDeepWalk runs the bulk kernel through the sharded
// runtime on the deterministic ring while a feed keeps ingesting.
func TestShardedLiveBulkDeepWalk(t *testing.T) {
	const n = 64
	svc, _ := ringShardService(t, n, 4, walk.ShardedLiveConfig{WalkersPerShard: 2})
	defer svc.Close()

	var feeders sync.WaitGroup
	feeders.Add(1)
	go func() {
		defer feeders.Done()
		for i := 0; i < 20; i++ {
			u := graph.VertexID(i % n)
			_ = svc.Feed([]graph.Update{
				{Op: graph.OpInsert, Src: u, Dst: graph.VertexID((i + 9) % n), Bias: 1},
				{Op: graph.OpDelete, Src: u, Dst: graph.VertexID((i + 9) % n)},
			})
		}
	}()
	res, ts, err := svc.DeepWalk(walk.Config{Length: 24, Seed: 7, CountVisits: true})
	feeders.Wait()
	if err != nil {
		t.Fatalf("DeepWalk: %v", err)
	}
	if res.Walkers != n || res.Steps != int64(n*24) {
		t.Fatalf("bulk result %d walkers / %d steps, want %d / %d", res.Walkers, res.Steps, n, n*24)
	}
	if ts.Transfers == 0 {
		t.Fatal("24-hop ring walks across 4 shards must transfer")
	}
	if ts.Local+ts.Remote != res.Steps {
		t.Fatalf("local(%d)+remote(%d) != steps(%d)", ts.Local, ts.Remote, res.Steps)
	}
	var visits int64
	for _, c := range res.Visits {
		visits += c
	}
	if visits != int64(n*25) { // starts + hops (ring edges stay intact mid-feed)
		t.Fatalf("total visits %d, want %d", visits, n*25)
	}
}

// TestShardedOwnerGrowthMidWalk is the owner-overflow regression on the
// demo kernel: a Sharded wrapper over a live concurrent engine must
// survive the vertex space growing underneath it mid-walk. Before the
// block-cyclic fix, the first walker to step onto a grown vertex computed
// an owner ≥ shards and panicked on the inbox index.
func TestShardedOwnerGrowthMidWalk(t *testing.T) {
	const n0 = 64
	e, err := concurrent.New(n0, core.DefaultConfig(), concurrent.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n0; i++ {
		if err := e.Insert(graph.VertexID(i), graph.VertexID((i+1)%n0), 1); err != nil {
			t.Fatal(err)
		}
	}
	sh := walk.NewSharded(e, 4) // geometry frozen at 64 vertices

	done := make(chan struct{})
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		defer close(done) // also on error paths, or the walk loop spins forever
		// Grow the space past 4× the construction-time size and wire the
		// grown region into the ring so walkers actually reach it.
		for big := graph.VertexID(n0); big < 40*n0; big += 16 {
			if err := e.Insert(big%n0, big, 1_000_000); err != nil {
				t.Errorf("growth insert: %v", err)
				return
			}
			if err := e.Insert(big, (big+1)%n0, 1); err != nil {
				t.Errorf("growth insert: %v", err)
				return
			}
		}
	}()

	for round := 0; ; round++ {
		res, _ := sh.DeepWalk(walk.Config{Length: 16, Seed: uint64(round), CountVisits: true})
		if res.Steps == 0 {
			t.Fatal("walks made no progress")
		}
		select {
		case <-done:
			feeder.Wait()
			// One final pass over the fully grown graph.
			res, stats := sh.DeepWalk(walk.Config{Length: 16, Seed: 99, CountVisits: true})
			if res.Steps == 0 || stats.Transfers == 0 {
				t.Fatalf("post-growth walk: %d steps, %d transfers", res.Steps, stats.Transfers)
			}
			if e.NumVertices() <= n0 {
				t.Fatal("engine never grew — regression test is vacuous")
			}
			return
		default:
		}
	}
}
