//go:build race

package walk_test

// raceDetectorEnabled reports whether this test binary was built with
// -race. The differential harnesses scale their draw budgets down under
// the detector: every query is a serial round trip through the fabric,
// and race instrumentation multiplies its cost enough that full-size
// sample counts blow the package timeout on small CI machines.
const raceDetectorEnabled = true
