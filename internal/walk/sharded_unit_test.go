package walk

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// TestShardPlanOwnerTotal pins the block-cyclic ownership contract: inside
// the derived space it matches the classic contiguous split, and beyond it
// — the live-growth regime that used to panic — it stays in range and
// balanced.
func TestShardPlanOwnerTotal(t *testing.T) {
	p := NewShardPlan(64, 4)
	if p.RangeSize != 16 || p.Shards != 4 {
		t.Fatalf("plan = %+v, want RangeSize 16, Shards 4", p)
	}
	for v := 0; v < 64; v++ {
		if got, want := p.Owner(graph.VertexID(v)), v/16; got != want {
			t.Fatalf("Owner(%d) = %d, want contiguous %d", v, got, want)
		}
	}
	// Beyond the derived space: total, in range, block-cyclic.
	counts := make([]int, 4)
	for v := 64; v < 64+16*40; v++ {
		o := p.Owner(graph.VertexID(v))
		if o < 0 || o >= 4 {
			t.Fatalf("Owner(%d) = %d out of range", v, o)
		}
		counts[o]++
	}
	for i, c := range counts {
		if c != 160 {
			t.Fatalf("shard %d owns %d of the overflow block, want 160 (balanced wrap)", i, c)
		}
	}
	if o := p.Owner(math.MaxUint32); o < 0 || o >= 4 {
		t.Fatalf("Owner(MaxUint32) = %d out of range", o)
	}
	// Degenerate plans never divide by zero.
	if p := NewShardPlan(0, 3); p.RangeSize != 1 {
		t.Fatalf("empty-space plan RangeSize = %d, want 1", p.RangeSize)
	}
	if p := NewShardPlan(10, 0); p.Shards != 1 {
		t.Fatalf("zero-shard plan Shards = %d, want 1", p.Shards)
	}
}

// ringGraph builds the directed cycle 0→1→…→n-1→0 (every vertex degree 1,
// so walks are fully deterministic).
func ringGraph(t *testing.T, n int) *core.Sampler {
	t.Helper()
	s, err := core.New(n, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Insert(graph.VertexID(i), graph.VertexID((i+1)%n), 1); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestShardedDeepWalkTransfersPinned pins TransferStats.Transfers on a
// deterministic topology: a 10-ring split in two (0–4 / 5–9), walked from
// vertex 0. A finished walker must retire locally — before the fix, a walk
// whose final hop crossed the boundary was still forwarded, inflating
// Transfers and paying a pointless queue hop.
func TestShardedDeepWalkTransfersPinned(t *testing.T) {
	s := ringGraph(t, 10)
	sh := NewSharded(s, 2)

	cases := []struct {
		length                  int
		transfers, local, steps int64
	}{
		// 10 hops from 0 visit 1..9,0: crossing into shard 1 at hop 5
		// transfers; the hop-10 crossing back to vertex 0 is the final hop
		// and retires locally.
		{length: 10, transfers: 1, local: 9, steps: 10},
		// 12 hops: both crossings (hop 5 and hop 10) mid-walk transfer.
		{length: 12, transfers: 2, local: 10, steps: 12},
		// 5 hops: the single crossing is the final hop — zero transfers.
		{length: 5, transfers: 0, local: 5, steps: 5},
	}
	for _, tc := range cases {
		res, stats := sh.DeepWalk(Config{Length: tc.length, Starts: []graph.VertexID{0}, Seed: 3})
		if res.Steps != tc.steps {
			t.Errorf("length %d: steps = %d, want %d", tc.length, res.Steps, tc.steps)
		}
		if stats.Transfers != tc.transfers || stats.Local != tc.local {
			t.Errorf("length %d: transfers/local = %d/%d, want %d/%d",
				tc.length, stats.Transfers, stats.Local, tc.transfers, tc.local)
		}
	}
}

// grownEngine models a live engine whose vertex space grew after the
// Sharded wrapper was constructed: it reports the stale pre-growth size but
// walks lead well beyond it. Sampling walks the fixed chain u→u+stride.
type grownEngine struct {
	reported int // stale NumVertices
	limit    int // walks dead-end here
	stride   int
}

func (g grownEngine) Sample(u graph.VertexID, _ *xrand.RNG) (graph.VertexID, bool) {
	next := int(u) + g.stride
	if next >= g.limit {
		return 0, false
	}
	return graph.VertexID(next), true
}
func (g grownEngine) Degree(u graph.VertexID) int {
	if int(u)+g.stride >= g.limit {
		return 0
	}
	return 1
}
func (g grownEngine) HasEdge(u, dst graph.VertexID) bool {
	return int(dst) == int(u)+g.stride && int(dst) < g.limit
}
func (g grownEngine) NumVertices() int { return g.reported }

// TestShardedVisitsBeyondInitialSpace covers the frozen-size family of
// bugs end to end: the visits tally and the owner computation must both
// survive walks onto vertices beyond the engine size the wrapper saw at
// construction (index-out-of-range panics before the fix).
func TestShardedVisitsBeyondInitialSpace(t *testing.T) {
	e := grownEngine{reported: 8, limit: 200, stride: 7}
	sh := NewSharded(e, 4) // rangeSize 2: vertices ≥ 8 used to owner-overflow
	res, stats := sh.DeepWalk(Config{
		Length:      40,
		Starts:      []graph.VertexID{0, 1, 2, 3},
		Seed:        11,
		CountVisits: true,
	})
	// Each walk 0..3 + 7k dead-ends just below 200: 28 hops from 0/1/2/3.
	wantSteps := int64(4 * 28)
	if res.Steps != wantSteps {
		t.Fatalf("steps = %d, want %d", res.Steps, wantSteps)
	}
	if stats.Transfers == 0 {
		t.Fatal("stride-7 chains over rangeSize-2 shards must transfer")
	}
	if len(res.Visits) < 198 {
		t.Fatalf("visits tally stopped at %d entries, want growth past 197", len(res.Visits))
	}
	// The tally must hold exactly the visited chains: v ≡ start (mod 7).
	for v, c := range res.Visits {
		want := int64(0)
		if v%7 <= 3 && v < 200 {
			want = 1
		}
		if c != want {
			t.Fatalf("visits[%d] = %d, want %d", v, c, want)
		}
	}
}
