package walk

import (
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// shardNode hosts one shard's engine behind a fabric port: a crew of
// walker goroutines drains the walker stream (advance while on owned
// vertices, forward on boundary crossings, retire to the coordinator),
// and a single ingester drains the ordered ingest stream (apply batches,
// acknowledge barriers). The same node logic runs inside the in-process
// ShardedLiveService and inside a `bingowalk -shard-serve` daemon — the
// fabric is the only thing that changes.
type shardNode struct {
	e     LiveEngine
	plan  ShardPlan
	shard int
	port  fabric.ShardPort

	loops sync.WaitGroup // crews + ingester
	done  sync.WaitGroup // loops + the port-close watcher

	steps, transfers, local atomic.Int64
	updates, dropped        atomic.Int64

	errMu sync.Mutex
	err   error
}

// EdgeDumper is the optional LiveEngine capability behind the fabric's
// dump barrier: a consistent flattening of the engine's live edge
// multiset. concurrent.Engine implements it; engines that don't simply
// answer dump barriers without edges.
type EdgeDumper interface {
	DumpEdges() []graph.Edge
}

// startShardNode spawns the node's crew and ingester. When both have
// exited (the coordinator closed the session and the queues drained), the
// node closes its port — the shard-done signal the coordinator's event
// stream waits for.
func startShardNode(e LiveEngine, plan ShardPlan, shard int, port fabric.ShardPort, crew int) *shardNode {
	if crew < 1 {
		crew = 1
	}
	n := &shardNode{e: e, plan: plan, shard: shard, port: port}
	n.loops.Add(crew + 1)
	for i := 0; i < crew; i++ {
		go n.crewLoop()
	}
	go n.ingestLoop()
	n.done.Add(1)
	go func() {
		defer n.done.Done()
		n.loops.Wait()
		n.port.Close()
	}()
	return n
}

// wait blocks until the node has fully wound down (port closed).
func (n *shardNode) wait() { n.done.Wait() }

func (n *shardNode) setErr(err error) {
	n.errMu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.errMu.Unlock()
}

func (n *shardNode) firstErr() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.err
}

// crewLoop is one walker of the shard's crew. A popped walker is advanced
// while it stays on owned vertices; its RNG stream is materialized from
// the carried state and re-serialized before the walker leaves this
// address space (forward or retire), so the stream continues draw-for-draw
// wherever the walker lands next.
func (n *shardNode) crewLoop() {
	defer n.loops.Done()
	for {
		wk, ok := n.port.NextWalker()
		if !ok {
			return
		}
		r := xrand.FromState(wk.Rng)
		var segSteps, segTransfers, segLocal int64
		forwarded := false
		for wk.Left > 0 {
			next, sampled := n.e.Sample(wk.Cur, r)
			if !sampled {
				break
			}
			segSteps++
			wk.Steps++
			wk.Left--
			wk.Cur = next
			if wk.Record {
				wk.Path = append(wk.Path, next)
			}
			// Forward only walkers with hops left — a finished walker
			// retires wherever its last hop landed.
			if owner := n.plan.Owner(next); owner != n.shard && wk.Left > 0 {
				segTransfers++
				wk.Transfers++
				wk.Rng = r.State()
				if err := n.port.ForwardWalker(owner, wk); err != nil {
					// The peer stream is gone (single-session fabric, no
					// reconnects): retire the walker as failed so the
					// coordinator unblocks its caller with an error
					// instead of passing off a truncated walk.
					n.setErr(err)
					wk.Failed = true
					break
				}
				forwarded = true
				break
			}
			segLocal++
			wk.Local++
		}
		n.steps.Add(segSteps)
		n.transfers.Add(segTransfers)
		n.local.Add(segLocal)
		if forwarded {
			continue
		}
		wk.Rng = r.State()
		if err := n.port.Retire(wk); err != nil {
			n.setErr(err)
		}
	}
}

// ingestLoop applies the shard's routed sub-batches in arrival order and
// acknowledges barriers with the node's cumulative tallies (the ack is
// what makes distributed ingest progress observable at the coordinator).
func (n *shardNode) ingestLoop() {
	defer n.loops.Done()
	for {
		in, ok := n.port.NextIngest()
		if !ok {
			return
		}
		if in.IsBarrier() {
			a := &fabric.Ack{
				Shard:    n.shard,
				Seq:      in.Barrier,
				Updates:  n.updates.Load(),
				Dropped:  n.dropped.Load(),
				Vertices: n.e.NumVertices(),
			}
			if err := n.firstErr(); err != nil {
				a.Err = err.Error()
			}
			if in.Dump {
				if d, ok := n.e.(EdgeDumper); ok {
					a.Edges = d.DumpEdges()
				}
			}
			if err := n.port.Ack(a); err != nil {
				n.setErr(err)
			}
			continue
		}
		if err := n.e.ApplyUpdates(in.Ups); err != nil {
			n.dropped.Add(1)
			n.setErr(err)
			continue
		}
		n.updates.Add(int64(len(in.Ups)))
	}
}

// ShardNodeStats summarizes one hosted shard's activity (daemon telemetry).
type ShardNodeStats struct {
	Steps, Transfers, Local int64
	Updates, Dropped        int64
	Vertices                int
	Edges                   int64
}

// RunShardNode hosts engine e as shard `shard` of plan behind the given
// fabric port: crew walker goroutines plus one ingester, exactly the
// node half of ShardedLiveService. It blocks until the coordinator ends
// the session (or the fabric fails), then reports the node's tallies and
// the first ingest error. This is the body of `bingowalk -shard-serve`.
func RunShardNode(e LiveEngine, plan ShardPlan, shard int, port fabric.ShardPort, crew int) (ShardNodeStats, error) {
	n := startShardNode(e, plan, shard, port, crew)
	n.wait()
	st := ShardNodeStats{
		Steps:     n.steps.Load(),
		Transfers: n.transfers.Load(),
		Local:     n.local.Load(),
		Updates:   n.updates.Load(),
		Dropped:   n.dropped.Load(),
		Vertices:  e.NumVertices(),
	}
	if ne, ok := e.(interface{ NumEdges() int64 }); ok {
		st.Edges = ne.NumEdges()
	}
	return st, n.firstErr()
}
