package walk

import (
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// shardNode hosts one shard's engine behind a fabric port: a crew of
// walker goroutines drains the walker stream (advance while on owned
// vertices, forward on boundary crossings, retire to the coordinator), a
// single ingester drains the ordered ingest stream (apply batches,
// acknowledge barriers), and a view loop serves the fabric-side hub
// cache (answer peers' view requests, install their replies). The same
// node logic runs inside the in-process ShardedLiveService and inside a
// `bingowalk -shard-serve` daemon — the fabric is the only thing that
// changes.
//
// Hub caches. When the engine supports versioned views (ViewSampler —
// concurrent.Engine does) and the cache is not switched off, hops are
// served through two layers:
//
//   - each crew walker keeps a private LRU of owned hub vertices' views
//     and samples lock-free, revalidating by stripe epoch on every hop
//     and falling back to the locked path on mismatch;
//   - the node keeps a shared cache of *peer-owned* hub views, filled by
//     asynchronous ViewRequest/ViewReply traffic after repeated
//     hand-offs toward the same vertex, and invalidated by the
//     coordinator's routed-update watermarks piggybacked on the ingest
//     stream. A hop at a cached non-owned hub is served locally instead
//     of costing a walker hand-off.
type shardNode struct {
	e     LiveEngine
	plan  ShardPlan
	shard int
	port  fabric.ShardPort

	// ve is the engine's view capability; nil disables both cache
	// layers (plain locked sampling, the pre-cache behavior).
	ve    ViewSampler
	cache fabric.CacheSpec
	rv    *remoteViews // nil when caching is off

	loops sync.WaitGroup // crews + ingester + view loop
	done  sync.WaitGroup // loops + the port-close watcher

	steps, transfers, local, remote atomic.Int64
	updates, dropped                atomic.Int64
	// consumed counts update events consumed from the ingest stream —
	// applied *or* dropped — i.e. this node's position in the stream the
	// coordinator's routed ledger counts. View Applied stamps use it
	// rather than `updates`: a dropped sub-batch advances the stream
	// without applying, and stamping applied-only would leave the node
	// forever short of the ledger, permanently failing every peer's
	// install check and silently disabling this shard's hub views.
	consumed atomic.Int64

	localHits, localStale  atomic.Int64
	remoteStaleN, viewReqs atomic.Int64
	viewsServed            atomic.Int64

	errMu sync.Mutex
	err   error
}

// EdgeDumper is the optional LiveEngine capability behind the fabric's
// dump barrier: a consistent flattening of the engine's live edge
// multiset. concurrent.Engine implements it; engines that don't simply
// answer dump barriers without edges.
type EdgeDumper interface {
	DumpEdges() []graph.Edge
}

// startShardNode spawns the node's crew, ingester, and view loop. When
// all have exited (the coordinator closed the session and the queues
// drained), the node closes its port — the shard-done signal the
// coordinator's event stream waits for.
func startShardNode(e LiveEngine, plan ShardPlan, shard int, port fabric.ShardPort, crew int, cache fabric.CacheSpec) *shardNode {
	if crew < 1 {
		crew = 1
	}
	n := &shardNode{e: e, plan: plan, shard: shard, port: port, cache: cache}
	if !cache.Off {
		if ve, ok := e.(ViewSampler); ok {
			n.ve = ve
			n.rv = newRemoteViews(plan.Shards, cache.RemoteSize, cache.RequestAfter)
		}
	}
	n.loops.Add(crew + 2)
	for i := 0; i < crew; i++ {
		go n.crewLoop()
	}
	go n.ingestLoop()
	go n.viewLoop()
	n.done.Add(1)
	go func() {
		defer n.done.Done()
		n.loops.Wait()
		n.port.Close()
	}()
	return n
}

// wait blocks until the node has fully wound down (port closed).
func (n *shardNode) wait() { n.done.Wait() }

func (n *shardNode) setErr(err error) {
	n.errMu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.errMu.Unlock()
}

func (n *shardNode) firstErr() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.err
}

// cacheTallies snapshots the node's hub-cache counters.
func (n *shardNode) cacheTallies() fabric.CacheTallies {
	return fabric.CacheTallies{
		LocalHits:    n.localHits.Load(),
		LocalStale:   n.localStale.Load(),
		RemoteHits:   n.remote.Load(),
		RemoteStale:  n.remoteStaleN.Load(),
		ViewRequests: n.viewReqs.Load(),
		ViewsServed:  n.viewsServed.Load(),
	}
}

// crewLoop is one walker of the shard's crew. A popped walker is
// advanced while it stays on vertices this node can serve — owned
// vertices through the engine (via the crew's private hub-view LRU when
// possible), non-owned vertices through the node's remote-view cache —
// and handed to the owner the moment it lands on a non-owned vertex the
// node holds no valid view of. The walker's RNG stream is materialized
// from the carried state and re-serialized before the walker leaves this
// address space (forward or retire), so the stream continues
// draw-for-draw wherever the walker lands next.
func (n *shardNode) crewLoop() {
	defer n.loops.Done()
	var vc *viewCache
	if n.ve != nil {
		vc = newViewCache(n.cache.Size, n.cache.MinDegree)
	}
	for {
		wk, ok := n.port.NextWalker()
		if !ok {
			return
		}
		r := xrand.FromState(wk.Rng)
		var seg struct{ steps, transfers, local, remote int64 }
		forwarded := false
		for wk.Left > 0 {
			var next graph.VertexID
			var sampled bool
			if owner := n.plan.Owner(wk.Cur); owner == n.shard {
				next, sampled = vc.sample(n.ve, n.e, wk.Cur, r)
				if sampled {
					seg.local++
					wk.Local++
				}
			} else if vw, stale := n.remoteView(wk.Cur); vw != nil {
				// A non-owned vertex served from a peer's shipped view:
				// the hop that used to cost a hand-off.
				next, sampled = vw.Sample(r)
				if sampled {
					seg.remote++
					wk.Remote++
				}
			} else {
				if stale {
					n.remoteStaleN.Add(1)
				}
				n.maybeRequestView(wk.Cur, owner)
				seg.transfers++
				wk.Transfers++
				wk.Rng = r.State()
				if err := n.port.ForwardWalker(owner, wk); err != nil {
					// The peer stream is gone (single-session fabric, no
					// reconnects): retire the walker as failed so the
					// coordinator unblocks its caller with an error
					// instead of passing off a truncated walk.
					n.setErr(err)
					wk.Failed = true
					break
				}
				forwarded = true
				break
			}
			if !sampled {
				break
			}
			seg.steps++
			wk.Steps++
			wk.Left--
			wk.Cur = next
			if wk.Record {
				wk.Path = append(wk.Path, next)
			}
		}
		n.steps.Add(seg.steps)
		n.transfers.Add(seg.transfers)
		n.local.Add(seg.local)
		n.remote.Add(seg.remote)
		if vc != nil {
			n.localHits.Add(vc.hits)
			n.localStale.Add(vc.stale)
			vc.hits, vc.stale = 0, 0
		}
		if forwarded {
			continue
		}
		wk.Rng = r.State()
		if err := n.port.Retire(wk); err != nil {
			n.setErr(err)
		}
	}
}

// remoteView returns a valid cached view of non-owned vertex u, if any.
func (n *shardNode) remoteView(u graph.VertexID) (vw *core.VertexView, stale bool) {
	if n.rv == nil {
		return nil, false
	}
	return n.rv.get(u)
}

// maybeRequestView fires an asynchronous view request for a non-owned
// vertex that keeps costing hand-offs. Best-effort: a failed request is
// dropped (the hand-off path still works) and the in-flight marker
// cleared so a later crossing can retry.
func (n *shardNode) maybeRequestView(u graph.VertexID, owner int) {
	if n.rv == nil || !n.rv.noteCrossing(u) {
		return
	}
	n.viewReqs.Add(1)
	if err := n.port.RequestView(owner, &fabric.ViewRequest{From: n.shard, Vertex: u}); err != nil {
		n.rv.clearInflight(u)
	}
}

// ingestLoop applies the shard's routed sub-batches in arrival order and
// acknowledges barriers with the node's cumulative tallies (the ack is
// what makes distributed ingest progress observable at the coordinator).
// Every ingest element also carries the coordinator's routed-update
// watermarks, which invalidate remote views that may predate in-flight
// updates.
func (n *shardNode) ingestLoop() {
	defer n.loops.Done()
	for {
		in, ok := n.port.NextIngest()
		if !ok {
			return
		}
		if n.rv != nil && len(in.Watermarks) > 0 {
			n.rv.advance(in.Watermarks)
		}
		if in.IsBarrier() {
			a := &fabric.Ack{
				Shard:    n.shard,
				Seq:      in.Barrier,
				Updates:  n.updates.Load(),
				Dropped:  n.dropped.Load(),
				Vertices: n.e.NumVertices(),
				Cache:    n.cacheTallies(),
			}
			if err := n.firstErr(); err != nil {
				a.Err = err.Error()
			}
			if in.Dump {
				if d, ok := n.e.(EdgeDumper); ok {
					a.Edges = d.DumpEdges()
				}
			}
			if err := n.port.Ack(a); err != nil {
				n.setErr(err)
			}
			continue
		}
		if err := n.e.ApplyUpdates(in.Ups); err != nil {
			n.dropped.Add(1)
			n.setErr(err)
			n.consumed.Add(int64(len(in.Ups)))
			continue
		}
		n.updates.Add(int64(len(in.Ups)))
		n.consumed.Add(int64(len(in.Ups)))
	}
}

// viewLoop drains the node's view stream: it answers peers' requests
// with versioned views of owned hubs and installs peers' replies into
// the remote cache.
func (n *shardNode) viewLoop() {
	defer n.loops.Done()
	minDeg := n.cache.MinDegree
	if minDeg <= 0 {
		minDeg = DefaultHubMinDegree
	}
	for {
		m, ok := n.port.NextView()
		if !ok {
			return
		}
		switch {
		case m.Req != nil:
			rq := m.Req
			rp := &fabric.ViewReply{From: n.shard, Vertex: rq.Vertex}
			// Degree-gate before extracting: a non-hub reply must not pay
			// the O(degree) view copy it would immediately discard.
			if n.ve != nil && n.e.Degree(rq.Vertex) >= minDeg {
				// The Applied stamp (ingest-stream position consumed) is
				// read before extraction: the view can only be newer than
				// its stamp claims, so watermark validation errs toward
				// dropping, never toward serving stale state.
				applied := n.consumed.Load()
				vw := n.ve.ViewOf(rq.Vertex)
				if vw.Degree() >= minDeg {
					rp.Hub = true
					rp.Applied = applied
					rp.View = *vw
				}
			}
			n.viewsServed.Add(1)
			if err := n.port.ReplyView(rq.From, rp); err != nil {
				// Best-effort: the requester's in-flight marker clears on
				// its next watermark advance or stays conservative.
				continue
			}
		case m.Rep != nil:
			if n.rv != nil {
				n.rv.install(m.Rep)
			}
		}
	}
}

// ShardNodeStats summarizes one hosted shard's activity (daemon telemetry).
type ShardNodeStats struct {
	Steps, Transfers, Local int64
	Updates, Dropped        int64
	Vertices                int
	Edges                   int64
	Cache                   fabric.CacheTallies
}

// RunShardNode hosts engine e as shard `shard` of plan behind the given
// fabric port: crew walker goroutines plus one ingester and one view
// server, exactly the node half of ShardedLiveService. The cache spec
// configures the hub-view caches (zero value = defaults, on; it only
// takes effect when e implements ViewSampler). It blocks until the
// coordinator ends the session (or the fabric fails), then reports the
// node's tallies and the first ingest error. This is the body of
// `bingowalk -shard-serve`.
func RunShardNode(e LiveEngine, plan ShardPlan, shard int, port fabric.ShardPort, crew int, cache fabric.CacheSpec) (ShardNodeStats, error) {
	n := startShardNode(e, plan, shard, port, crew, cache)
	n.wait()
	st := ShardNodeStats{
		Steps:     n.steps.Load(),
		Transfers: n.transfers.Load(),
		Local:     n.local.Load(),
		Updates:   n.updates.Load(),
		Dropped:   n.dropped.Load(),
		Vertices:  e.NumVertices(),
		Cache:     n.cacheTallies(),
	}
	if ne, ok := e.(interface{ NumEdges() int64 }); ok {
		st.Edges = ne.NumEdges()
	}
	return st, n.firstErr()
}
