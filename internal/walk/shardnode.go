package walk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
)

// shardNode hosts one shard's engine behind a fabric port: a crew of
// walker goroutines drains the walker stream (advance while on owned
// vertices, forward on boundary crossings, retire to the coordinator), a
// single ingester drains the ordered ingest stream (apply batches,
// acknowledge barriers), and a view loop serves the fabric-side hub
// cache (answer peers' view requests, install their replies). The same
// node logic runs inside the in-process ShardedLiveService and inside a
// `bingowalk -shard-serve` daemon — the fabric is the only thing that
// changes.
//
// Hub caches. When the engine supports versioned views (ViewSampler —
// concurrent.Engine does) and the cache is not switched off, hops are
// served through two layers:
//
//   - each crew walker keeps a private LRU of owned hub vertices' views
//     and samples lock-free, revalidating by stripe epoch on every hop
//     and falling back to the locked path on mismatch;
//   - the node keeps a shared cache of *peer-owned* hub views, filled by
//     asynchronous ViewRequest/ViewReply traffic after repeated
//     hand-offs toward the same vertex, and invalidated by the
//     coordinator's routed-update watermarks piggybacked on the ingest
//     stream. A hop at a cached non-owned hub is served locally instead
//     of costing a walker hand-off.
//
// Ownership migration. The node is also one endpoint of the rebalancer's
// migration protocol (see DESIGN.md, "Heat-aware rebalancing"): its
// ownership plan is an atomic pointer the ingester swaps on MigrateOffer
// (donor: flip, then extract and ship the block) and MigrateCommit
// (recipient: wait for the block, install, then flip; bystander: just
// flip), while crews reload it every hop — a walker that lands on a moved
// vertex is re-routed to whatever owner the node's current plan names,
// never lost. Crews additionally tally sampled hops per ownership block,
// and heat barriers read the tally back to the coordinator.
type shardNode struct {
	e     LiveEngine
	planv atomic.Pointer[ShardPlan]
	shard int
	port  fabric.ShardPort

	// ve is the engine's view capability; nil disables both cache
	// layers (plain locked sampling, the pre-cache behavior).
	ve     ViewSampler
	cache  fabric.CacheSpec
	kernel KernelMode
	rv     *remoteViews // nil when caching is off

	loops sync.WaitGroup // crews + ingester + view loop
	done  sync.WaitGroup // loops + the port-close watcher

	steps, transfers, local, remote atomic.Int64
	updates, dropped                atomic.Int64
	// consumed counts update events consumed from the ingest stream —
	// applied *or* dropped — i.e. this node's position in the stream the
	// coordinator's routed ledger counts. View Applied stamps use it
	// rather than `updates`: a dropped sub-batch advances the stream
	// without applying, and stamping applied-only would leave the node
	// forever short of the ledger, permanently failing every peer's
	// install check and silently disabling this shard's hub views.
	consumed atomic.Int64

	localHits, localStale  atomic.Int64
	remoteStaleN, viewReqs atomic.Int64
	viewsServed            atomic.Int64

	// credited counts ingest-stream elements' update events toward the
	// coordinator's credit window: routed update events (applied or
	// dropped) plus bootstrap rows. Distinct from `consumed` (stream
	// position for view stamps — excludes boot rows) and from `updates`
	// (applied only): credits measure *queue drain*, which is exactly
	// what flow control needs, nothing else.
	credited atomic.Int64

	// migratedIn counts edges installed from migration blocks (kept out
	// of `updates`/`consumed`: installs are not routed-update events, and
	// inflating `consumed` would let hub views stamped after an install
	// survive watermarks covering routed updates they do not contain).
	migratedIn atomic.Int64

	// procWide marks a node that owns its whole process (a
	// `bingowalk -shard-serve` daemon): its barrier-ack metrics sample
	// then includes the process registry (fabric frame counters, kernel
	// histograms) on top of the node tallies. In-process nodes share one
	// registry with the coordinator and every sibling shard, so they ship
	// only their own tallies — per-shard labels stay meaningful.
	procWide bool

	// stash holds migration blocks that arrived ahead of the commit the
	// ingester is currently blocked on, keyed by (block, epoch). Replica
	// priming copies blocks from *several* donors concurrently, and their
	// peer streams interleave arbitrarily on the single block mailbox —
	// the ingester processes commits in its own FIFO order and parks
	// early arrivals here. Ingester-only; no lock.
	stash map[blockKey]*fabric.MigrateBlock

	// heatMu guards blockSteps, the node's cumulative sampled-hop tally
	// per ownership block (crews flush per-segment run counts into it;
	// heat barriers read it back to the coordinator).
	heatMu     sync.Mutex
	blockSteps map[uint64]int64

	errMu sync.Mutex
	err   error
}

// planNow returns the node's current ownership plan.
func (n *shardNode) planNow() ShardPlan { return *n.planv.Load() }

// setPlan installs a new ownership plan.
func (n *shardNode) setPlan(p ShardPlan) { n.planv.Store(&p) }

// bumpBlockSteps folds a crew's per-block hop run into the heat tally.
func (n *shardNode) bumpBlockSteps(block uint64, steps int64) {
	if steps == 0 {
		return
	}
	n.heatMu.Lock()
	n.blockSteps[block] += steps
	n.heatMu.Unlock()
}

// RangeExtractor is the optional LiveEngine capability live rebalancing
// requires on donors: atomically remove a vertex range's rows and return
// updates that reconstruct them (concurrent.Engine implements it). The
// serving runtimes refuse to enable rebalancing over engines without it.
type RangeExtractor interface {
	// ExtractRange takes uint64 bounds: the top ownership block of the
	// uint32 ID space ends at 2^32, which a graph.VertexID cannot hold.
	ExtractRange(lo, hi uint64) ([]graph.Update, error)
}

// RangeSnapshotter is the optional LiveEngine capability replica priming
// requires on copy donors: a consistent read of a vertex range's rows
// that leaves the donor serving them (concurrent.Engine implements it).
type RangeSnapshotter interface {
	SnapshotRange(lo, hi uint64) ([]graph.Update, error)
}

// blockKey identifies one in-flight migration or copy block.
type blockKey struct {
	block uint64
	epoch uint64
}

// EdgeDumper is the optional LiveEngine capability behind the fabric's
// dump barrier: a consistent flattening of the engine's live edge
// multiset. concurrent.Engine implements it; engines that don't simply
// answer dump barriers without edges.
type EdgeDumper interface {
	DumpEdges() []graph.Edge
}

// startShardNode spawns the node's crew, ingester, and view loop. When
// all have exited (the coordinator closed the session and the queues
// drained), the node closes its port — the shard-done signal the
// coordinator's event stream waits for.
func startShardNode(e LiveEngine, plan ShardPlan, shard int, port fabric.ShardPort, crew int, cache fabric.CacheSpec, kernel KernelMode, procWide bool) *shardNode {
	if crew < 1 {
		crew = 1
	}
	n := &shardNode{e: e, shard: shard, port: port, cache: cache, kernel: kernel, procWide: procWide, blockSteps: map[uint64]int64{}, stash: map[blockKey]*fabric.MigrateBlock{}}
	n.setPlan(plan)
	if !cache.Off {
		if ve, ok := e.(ViewSampler); ok {
			n.ve = ve
			n.rv = newRemoteViews(plan.Shards, cache.RemoteSize, cache.RequestAfter)
			// Replies are validated against the *current* owner: after a
			// migration, a straggler reply from the old owner must not
			// install a view the new owner's updates would never
			// invalidate.
			n.rv.ownerOf = func(v graph.VertexID) int { return n.planNow().Owner(v) }
		}
	}
	n.loops.Add(crew + 2)
	for i := 0; i < crew; i++ {
		go n.crewLoop()
	}
	go n.ingestLoop()
	go n.viewLoop()
	n.done.Add(1)
	go func() {
		defer n.done.Done()
		n.loops.Wait()
		n.port.Close()
	}()
	return n
}

// wait blocks until the node has fully wound down (port closed).
func (n *shardNode) wait() { n.done.Wait() }

func (n *shardNode) setErr(err error) {
	n.errMu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.errMu.Unlock()
}

func (n *shardNode) firstErr() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.err
}

// cacheTallies snapshots the node's hub-cache counters.
func (n *shardNode) cacheTallies() fabric.CacheTallies {
	return fabric.CacheTallies{
		LocalHits:    n.localHits.Load(),
		LocalStale:   n.localStale.Load(),
		RemoteHits:   n.remote.Load(),
		RemoteStale:  n.remoteStaleN.Load(),
		ViewRequests: n.viewReqs.Load(),
		ViewsServed:  n.viewsServed.Load(),
	}
}

// crewLoop is one walker crew of the shard, stepping a frontier batch of
// in-flight walkers through the shared kernel. Each round advances every
// live walker at most one hop: walkers on owned vertices step through the
// kernel (co-located walkers share one lock/epoch round, the crew's
// private hub-view LRU serves hot vertices lock-free), walkers on
// non-owned vertices sample from the node's remote-view cache when a
// valid view is held, and walkers on non-owned vertices without a view
// are handed to their owner. A walker's RNG stream is re-seated from the
// carried state into a pooled generator slot on arrival and re-serialized
// before the walker leaves this address space (forward or retire), so the
// stream continues draw-for-draw wherever the walker lands next.
func (n *shardNode) crewLoop() {
	defer n.loops.Done()
	k := newStepKernel(n.e, n.kernel, n.cache)
	f := getFrontier(kernelBatch)
	defer putFrontier(f)
	wks := make([]*fabric.Walker, kernelBatch)
	drop := make([]bool, kernelBatch)
	in := make([]*fabric.Walker, 0, kernelBatch)
	retire := make([]*fabric.Walker, 0, kernelBatch)
	heat := map[uint64]int64{}
	for {
		batch, ok := n.port.NextWalkers(in[:0], kernelBatch)
		if !ok {
			return
		}
		in = batch[:0]
		live := 0
		for _, wk := range batch {
			if wk.Left <= 0 {
				if err := n.port.Retire(wk); err != nil {
					n.setErr(err)
				}
				continue
			}
			wks[live] = wk
			f.cur[live] = wk.Cur
			f.seatRNG(live, wk.Rng)
			live++
		}
		// Step the batch to completion before popping more walkers; each
		// round advances every live walker at most one hop.
		for live > 0 {
			var seg struct{ steps, transfers, local, remote int64 }
			retire = retire[:0]
			// Reload the plan every round (= every hop): the ingester
			// swaps it when a block migrates, and the stale-window cost is
			// only an extra hand-off (the receiving owner re-routes).
			plan := n.planNow()
			// Partition walkers on owned vertices to the front — the
			// kernel's slice of the frontier.
			m := 0
			for i := 0; i < live; i++ {
				if plan.Owner(wks[i].Cur) == n.shard {
					if i != m {
						f.swap(i, m)
						wks[i], wks[m] = wks[m], wks[i]
					}
					m++
				}
			}
			f.n = m
			k.stepBatch(f)
			for i := 0; i < m; i++ {
				wk := wks[i]
				drop[i] = false
				if !f.ok[i] {
					if n.planNow().Owner(wk.Cur) != n.shard {
						// Not a dead end — the block migrated out between
						// the ownership check and the sample (extraction
						// emptied the row). Keep the walker live: the next
						// round forwards it to the new owner, which holds
						// the rows.
						continue
					}
					wk.Rng = f.rng[i].State()
					retire = append(retire, wk)
					drop[i] = true
					continue
				}
				seg.local++
				wk.Local++
				heat[plan.BlockOf(wk.Cur)]++
				seg.steps++
				wk.Steps++
				wk.Left--
				wk.Cur = f.next[i]
				f.cur[i] = f.next[i]
				if wk.Record {
					wk.Path = append(wk.Path, wk.Cur)
				}
				if wk.Left == 0 {
					wk.Rng = f.rng[i].State()
					retire = append(retire, wk)
					drop[i] = true
				}
			}
			for i := m; i < live; i++ {
				wk := wks[i]
				drop[i] = false
				r := f.rng[i]
				if vw, stale := n.remoteView(wk.Cur); vw != nil {
					// A non-owned vertex served from a peer's shipped
					// view: the hop that used to cost a hand-off.
					next, sampled := vw.Sample(r)
					if !sampled {
						wk.Rng = r.State()
						retire = append(retire, wk)
						drop[i] = true
						continue
					}
					seg.remote++
					wk.Remote++
					heat[plan.BlockOf(wk.Cur)]++
					seg.steps++
					wk.Steps++
					wk.Left--
					wk.Cur = next
					f.cur[i] = next
					if wk.Record {
						wk.Path = append(wk.Path, next)
					}
					if wk.Left == 0 {
						wk.Rng = r.State()
						retire = append(retire, wk)
						drop[i] = true
					}
				} else {
					owner := plan.Owner(wk.Cur)
					if stale {
						n.remoteStaleN.Add(1)
					}
					n.maybeRequestView(wk.Cur, owner)
					seg.transfers++
					wk.Transfers++
					wk.Rng = r.State()
					if err := n.port.ForwardWalker(owner, wk); err != nil {
						// The peer stream is gone. Retire the walker as
						// failed; without replication the coordinator
						// unblocks its caller with an error instead of
						// passing off a truncated walk. Under replication
						// a dead peer is survivable — the coordinator
						// re-routes the failed walker to a live replica,
						// so the error is not this node's to record.
						if n.planNow().Replicas <= 1 {
							n.setErr(err)
						}
						wk.Failed = true
						retire = append(retire, wk)
					}
					drop[i] = true
				}
			}
			// Compact dropped slots out of the frontier.
			for i := 0; i < live; {
				if !drop[i] {
					i++
					continue
				}
				live--
				f.swap(i, live)
				wks[i], wks[live] = wks[live], wks[i]
				drop[i], drop[live] = drop[live], drop[i]
			}
			// Flush the round's tallies before retiring its walkers: a
			// retired walker's steps must already be visible in the node
			// counters when the coordinator observes the retirement.
			for b, s := range heat {
				n.bumpBlockSteps(b, s)
				delete(heat, b)
			}
			n.steps.Add(seg.steps)
			n.transfers.Add(seg.transfers)
			n.local.Add(seg.local)
			n.remote.Add(seg.remote)
			var hits, stale int64
			k.flushCacheStats(&hits, &stale)
			if hits != 0 {
				n.localHits.Add(hits)
			}
			if stale != 0 {
				n.localStale.Add(stale)
			}
			for _, wk := range retire {
				if err := n.port.Retire(wk); err != nil {
					n.setErr(err)
				}
			}
		}
	}
}

// remoteView returns a valid cached view of non-owned vertex u, if any.
func (n *shardNode) remoteView(u graph.VertexID) (vw *core.VertexView, stale bool) {
	if n.rv == nil {
		return nil, false
	}
	return n.rv.get(u)
}

// maybeRequestView fires an asynchronous view request for a non-owned
// vertex that keeps costing hand-offs. Best-effort: a failed request is
// dropped (the hand-off path still works) and the in-flight marker
// cleared so a later crossing can retry.
func (n *shardNode) maybeRequestView(u graph.VertexID, owner int) {
	if n.rv == nil || !n.rv.noteCrossing(u) {
		return
	}
	n.viewReqs.Add(1)
	if err := n.port.RequestView(owner, &fabric.ViewRequest{From: n.shard, Vertex: u}); err != nil {
		n.rv.clearInflight(u)
	}
}

// obsSample flattens the node's tallies for the barrier ack — the wire
// leg of fleet-wide /metrics. Daemon nodes append their whole process
// registry (fabric frames, kernel rounds); in-process nodes stop at the
// node tallies so the shared registry is not duplicated per shard.
func (n *shardNode) obsSample() obs.Sample {
	if !obs.On() {
		return obs.Sample{}
	}
	s := obs.Sample{Counters: []obs.KV{
		{Key: "bingo_node_steps_total", Val: n.steps.Load()},
		{Key: "bingo_node_transfers_total", Val: n.transfers.Load()},
		{Key: "bingo_node_local_steps_total", Val: n.local.Load()},
		{Key: "bingo_node_remote_steps_total", Val: n.remote.Load()},
		{Key: "bingo_node_updates_total", Val: n.updates.Load()},
		{Key: "bingo_node_dropped_batches_total", Val: n.dropped.Load()},
		{Key: "bingo_node_migrated_edges_total", Val: n.migratedIn.Load()},
		{Key: "bingo_node_cache_local_hits_total", Val: n.localHits.Load()},
		{Key: "bingo_node_cache_local_stale_total", Val: n.localStale.Load()},
		{Key: "bingo_node_cache_remote_stale_total", Val: n.remoteStaleN.Load()},
		{Key: "bingo_node_view_requests_total", Val: n.viewReqs.Load()},
		{Key: "bingo_node_views_served_total", Val: n.viewsServed.Load()},
	}}
	if n.procWide {
		s.Counters = append(s.Counters, obs.Default.Sample().Counters...)
	}
	return s
}

// ingestLoop applies the shard's routed sub-batches in arrival order and
// acknowledges barriers with the node's cumulative tallies (the ack is
// what makes distributed ingest progress observable at the coordinator).
// Every ingest element also carries the coordinator's routed-update
// watermarks, which invalidate remote views that may predate in-flight
// updates. Consumed update events (and bootstrap rows) are credited back
// to the coordinator after every element — the drain signal its credit
// window blocks Feed on. Control elements (barriers, offers, commits,
// liveness flips, plan snapshots) are free: they are coordinator-paced
// and bounding them would deadlock the very recovery paths that run
// while the window is full.
func (n *shardNode) ingestLoop() {
	defer n.loops.Done()
	for {
		in, ok := n.port.NextIngest()
		if !ok {
			return
		}
		if n.rv != nil && len(in.Watermarks) > 0 {
			n.rv.advance(in.Watermarks)
		}
		if in.Plan != nil {
			n.installPlanState(in.Plan)
			continue
		}
		if in.Down.Epoch != 0 {
			n.handleDown(&in.Down)
			continue
		}
		if in.Offer.Epoch != 0 {
			n.handleOffer(&in.Offer)
			continue
		}
		if in.Commit.Epoch != 0 {
			n.handleCommit(&in.Commit)
			continue
		}
		if in.IsBarrier() {
			a := &fabric.Ack{
				Shard:    n.shard,
				Seq:      in.Barrier,
				Updates:  n.updates.Load(),
				Dropped:  n.dropped.Load(),
				Vertices: n.e.NumVertices(),
				Steps:    n.steps.Load(),
				Cache:    n.cacheTallies(),
				Obs:      n.obsSample(),
			}
			if err := n.firstErr(); err != nil {
				a.Err = err.Error()
			}
			if in.Dump {
				if d, ok := n.e.(EdgeDumper); ok {
					a.Edges = d.DumpEdges()
					if plan := n.planNow(); plan.Replicas > 1 {
						// Under replication every row lives on every live
						// group member; dump only the edges this shard
						// *owns* under the barrier-point plan so the
						// coordinator's concatenation stays an exact
						// partition. Liveness flips ride the same FIFO
						// streams as barrier tokens, so every shard filters
						// against the same dead-mask here.
						kept := a.Edges[:0]
						for _, ed := range a.Edges {
							if plan.Owner(ed.Src) == n.shard {
								kept = append(kept, ed)
							}
						}
						a.Edges = kept
					}
				}
			}
			if in.Heat {
				a.Heat = n.heatReport()
			}
			if err := n.port.Ack(a); err != nil {
				n.setErr(err)
			}
			continue
		}
		if len(in.Ups) > 0 {
			if err := n.e.ApplyUpdates(in.Ups); err != nil {
				n.dropped.Add(1)
				n.setErr(err)
				if !in.Boot {
					n.consumed.Add(int64(len(in.Ups)))
				}
			} else if !in.Boot {
				// Bootstrap rows bypass updates/consumed: they are not feed
				// events, and inflating the stream position would corrupt
				// hub-view watermark stamps (see the field comments). They
				// still consume queue space, so they are credited below.
				n.updates.Add(int64(len(in.Ups)))
				n.consumed.Add(int64(len(in.Ups)))
			}
			n.credited.Add(int64(len(in.Ups)))
			// Best-effort: credits are cumulative, so a dropped send is
			// repaired by the next one; a dead link is the coordinator's
			// EvShardDown to handle, not ours.
			_ = n.port.Credit(&fabric.Credit{Shard: n.shard, Credited: n.credited.Load()})
		}
	}
}

// installPlanState adopts the coordinator's plan snapshot — the first
// element on a rejoined daemon's ingest stream, catching it up on every
// overlay flip and liveness flip it missed while down. Geometry fields
// come from the node's own plan (the snapshot carries none).
func (n *shardNode) installPlanState(ps *fabric.PlanState) {
	plan := n.planNow()
	if plan.Epoch >= ps.Epoch {
		return
	}
	plan.Epoch = ps.Epoch
	plan.DeadMask = ps.DeadMask
	plan.Overlay = nil
	if len(ps.Overlay) > 0 {
		plan.Overlay = make(map[uint64]int, len(ps.Overlay))
		for b, o := range ps.Overlay {
			plan.Overlay[b] = o
		}
	}
	n.setPlan(plan)
	if n.rv != nil {
		n.rv.dropAll()
	}
}

// handleDown applies a shard-liveness flip (Up=false: death, Up=true:
// failback). Its position in the FIFO ingest stream is what makes the
// dead-mask consistent across the fleet at barrier points. Epoch-guarded
// like every plan mutation; a replay is a no-op.
func (n *shardNode) handleDown(sd *fabric.ShardDown) {
	plan := n.planNow()
	if plan.Epoch >= sd.Epoch {
		return
	}
	var next ShardPlan
	var err error
	if sd.Up {
		next, err = plan.WithUp(sd.Shard, sd.Epoch)
	} else {
		next, err = plan.WithDown(sd.Shard, sd.Epoch)
	}
	if err != nil {
		n.setErr(err)
		return
	}
	n.setPlan(next)
	if n.rv != nil {
		// A liveness flip re-chains ownership of whole block families;
		// cached views stamped under the old chain are all suspect.
		n.rv.dropAll()
	}
}

// handleOffer is the donor half of a block migration. Its position in
// the ingest stream is the linearization point: every routed update
// published to this shard before the offer has already been applied (the
// single ingester runs them in order), so the extracted rows are exactly
// the block's state as of the router's flip. The plan flips *before*
// extraction — from the store on, crews forward the block's walkers to
// the recipient, and a crew that raced the flip and sampled an emptied
// row re-dispatches on the dead-end recheck instead of retiring short.
func (n *shardNode) handleOffer(of *fabric.MigrateOffer) {
	if of.Copy {
		n.handleCopyOffer(of)
		return
	}
	plan := n.planNow()
	if plan.Epoch >= of.Epoch {
		return // replayed offer; the flip already happened
	}
	next, err := plan.WithOverlay(of.Block, of.To, of.Epoch)
	if err != nil {
		n.setErr(err)
		return
	}
	ex, ok := n.e.(RangeExtractor)
	if !ok {
		// The serving runtimes refuse to start a rebalancer over engines
		// without extraction, so this is a protocol violation; keep the
		// rows (no flip) but complete the handshake so the recipient's
		// ingest stream is not wedged waiting for a block.
		n.setErr(fmt.Errorf("walk: shard %d engine cannot extract rows; migration of block %d refused", n.shard, of.Block))
		n.sendBlock(of, n.consumed.Load(), nil)
		return
	}
	wm := n.consumed.Load()
	n.setPlan(next)
	lo, hi := plan.BlockRange(of.Block)
	rows, err := ex.ExtractRange(lo, hi)
	if err != nil {
		n.setErr(err)
	}
	n.sendBlock(of, wm, rows)
}

// handleCopyOffer is the donor half of replica priming: snapshot the
// block's rows and ship them to the rejoining shard *without* giving
// anything up — no plan flip, the donor keeps serving the block. The
// FIFO position is still the linearization point: the snapshot reflects
// exactly the routed updates published to this donor before the offer,
// and the coordinator starts fanning the routed stream out to the
// recipient at the same instant it sends the offer, so snapshot + direct
// stream covers every update with no loss and no duplication. Copy
// epochs live in their own number space (they never touch plan.Epoch),
// so no epoch guard applies.
func (n *shardNode) handleCopyOffer(of *fabric.MigrateOffer) {
	sn, ok := n.e.(RangeSnapshotter)
	if !ok {
		n.setErr(fmt.Errorf("walk: shard %d engine cannot snapshot rows; copy of block %d refused", n.shard, of.Block))
		n.sendBlock(of, n.consumed.Load(), nil)
		return
	}
	wm := n.consumed.Load()
	lo, hi := n.planNow().BlockRange(of.Block)
	rows, err := sn.SnapshotRange(lo, hi)
	if err != nil {
		n.setErr(err)
	}
	n.sendBlock(of, wm, rows)
}

func (n *shardNode) sendBlock(of *fabric.MigrateOffer, wm int64, rows []graph.Update) {
	mb := &fabric.MigrateBlock{Block: of.Block, From: n.shard, Epoch: of.Epoch, Watermark: wm, Rows: rows}
	if err := n.port.SendBlock(of.To, mb); err != nil {
		if of.Copy || n.planNow().Replicas > 1 {
			// The recipient died again mid-priming (or a replicated
			// session's peer stream hiccuped): the coordinator sees its
			// own EvShardDown and re-runs the rejoin; poisoning the donor
			// would turn one flaky rejoiner into a session failure.
			return
		}
		n.setErr(err)
	}
}

// handleCommit installs a block migration's ownership flip. The
// recipient blocks its ingest stream on the donor's MigrateBlock first —
// routed updates for the moved block are queued *behind* this commit
// (the router flips before publishing it), so they apply onto installed
// rows and per-source order holds across the flip. Everyone drops cached
// remote views of the moved block: their Applied stamps name the donor's
// update stream, which the new owner's updates would never invalidate.
func (n *shardNode) handleCommit(cm *fabric.MigrateCommit) {
	if cm.Copy {
		// Copy commits install only — no plan flips anywhere (the donor
		// keeps the block; liveness is restored later by a ShardDown
		// Up-flip once every copy landed), and only the recipient acts.
		if cm.To == n.shard {
			n.installCopy(cm)
		}
		return
	}
	if cm.To == n.shard {
		n.installBlock(cm)
	} else if plan := n.planNow(); plan.Epoch < cm.Epoch {
		// Bystander (or the donor replaying a commit it already applied
		// at the offer): flip to the announced ownership.
		next, err := plan.WithOverlay(cm.Block, cm.To, cm.Epoch)
		if err != nil {
			n.setErr(err)
		} else {
			n.setPlan(next)
		}
	}
	if n.rv != nil {
		n.rv.dropBlock(n.planNow().RangeSize, cm.Block)
	}
}

// installBlock is the recipient half: wait for the donor's rows, install
// them, then flip the plan (in that order — crews must not find the block
// owned here before its rows exist; until the flip they keep forwarding
// its walkers toward the donor, which bounces them back post-offer, a
// bounded hand-off loop that ends at the flip below).
func (n *shardNode) installBlock(cm *fabric.MigrateCommit) {
	done := &fabric.MigrateDone{Shard: n.shard, Block: cm.Block, Epoch: cm.Epoch}
	mb, ok := n.takeBlock(cm.Block, cm.Epoch)
	switch {
	case !ok:
		// Session ended mid-migration; the coordinator's death handling
		// owns the fallout.
		n.setErr(ErrFabricDown)
		return
	case mb.Watermark < cm.MinWatermark:
		// The donor extracted before applying every update the router
		// counted toward it at the offer — the FIFO ordering the whole
		// protocol rests on did not hold.
		done.Err = fmt.Sprintf("walk: block %d shipped at donor watermark %d below commit minimum %d",
			cm.Block, mb.Watermark, cm.MinWatermark)
	default:
		if len(mb.Rows) > 0 {
			// Installs bypass the routed-update counters on purpose: they
			// are not feed events, and inflating `consumed` would corrupt
			// the hub views' watermark stamps (see the field comments).
			if err := n.e.ApplyUpdates(mb.Rows); err != nil {
				done.Err = err.Error()
			} else {
				n.migratedIn.Add(int64(len(mb.Rows)))
				done.Edges = int64(len(mb.Rows))
			}
		}
	}
	if done.Err != "" {
		n.setErr(errors.New(done.Err))
	}
	// The plan flips even when the install failed: the coordinator and
	// the donor have already flipped (router before commit, donor at the
	// offer), so refusing here would leave donor and recipient pointing
	// at each other and turn the documented bounded walker bounce into a
	// livelock. A failed install is a recorded data error (Err above,
	// surfaced through the MigrateDone and the session Err) on a block
	// that now serves whatever rows landed — never a hang.
	if plan := n.planNow(); plan.Epoch < cm.Epoch {
		next, err := plan.WithOverlay(cm.Block, cm.To, cm.Epoch)
		if err != nil {
			n.setErr(err)
		} else {
			n.setPlan(next)
		}
	}
	if err := n.port.Migrated(done); err != nil {
		n.setErr(err)
	}
}

// takeBlock returns the block payload matching (block, epoch), blocking
// on the block mailbox until it arrives. Rebalancing ships one block at
// a time per recipient, but replica priming copies from *several* donors
// whose peer streams interleave arbitrarily — payloads for commits the
// ingester has not reached yet are parked in the stash, and a commit
// whose payload already arrived is served from it without touching the
// mailbox. Copy epochs and plan epochs live in disjoint number spaces,
// so the (block, epoch) key never collides across the two protocols.
func (n *shardNode) takeBlock(block, epoch uint64) (*fabric.MigrateBlock, bool) {
	key := blockKey{block, epoch}
	if mb, ok := n.stash[key]; ok {
		delete(n.stash, key)
		return mb, true
	}
	for {
		mb, ok := n.port.NextBlock()
		if !ok {
			return nil, false
		}
		if mb.Block == block && mb.Epoch == epoch {
			return mb, true
		}
		n.stash[blockKey{mb.Block, mb.Epoch}] = mb
	}
}

// installCopy is the recipient half of replica priming: wait for the
// donor's snapshot and install it. No plan flips (the coordinator
// restores this shard's liveness with an Up-flip after every block
// landed), no walker-bounce concerns (nothing routes walkers here while
// the shard is still masked dead). Routed updates for the block queue
// behind this commit on the FIFO stream and apply onto the installed
// rows, exactly like a migration install.
func (n *shardNode) installCopy(cm *fabric.MigrateCommit) {
	done := &fabric.MigrateDone{Shard: n.shard, Block: cm.Block, Epoch: cm.Epoch, Copy: true}
	mb, ok := n.takeBlock(cm.Block, cm.Epoch)
	switch {
	case !ok:
		n.setErr(ErrFabricDown)
		return
	case mb.Watermark < cm.MinWatermark:
		done.Err = fmt.Sprintf("walk: copied block %d shipped at donor watermark %d below commit minimum %d",
			cm.Block, mb.Watermark, cm.MinWatermark)
	default:
		// Wipe the range first: a link that bounced without losing the
		// process re-primes onto an engine that still holds the block's
		// rows, and applying the snapshot on top would duplicate every
		// edge. The wipe makes copy installs idempotent; on a freshly
		// restarted daemon it extracts nothing.
		if ex, ok := n.e.(RangeExtractor); ok {
			lo, hi := n.planNow().BlockRange(cm.Block)
			if _, err := ex.ExtractRange(lo, hi); err != nil {
				done.Err = err.Error()
			}
		}
		if done.Err == "" && len(mb.Rows) > 0 {
			// Same counter discipline as migration installs: snapshot rows
			// are not feed events (see installBlock).
			if err := n.e.ApplyUpdates(mb.Rows); err != nil {
				done.Err = err.Error()
			} else {
				n.migratedIn.Add(int64(len(mb.Rows)))
				done.Edges = int64(len(mb.Rows))
			}
		}
	}
	if done.Err != "" {
		n.setErr(errors.New(done.Err))
	}
	if err := n.port.Migrated(done); err != nil {
		n.setErr(err)
	}
}

// heatReport snapshots the node's per-block heat: cumulative sampled
// hops from the crews' tallies, plus the live degree mass of every block
// whose rows this engine holds (an O(V) degree scan — heat barriers are
// rebalancer-paced, not per-request). Blocks with neither steps nor
// edges are omitted.
func (n *shardNode) heatReport() []fabric.BlockHeat {
	plan := n.planNow()
	agg := map[uint64]fabric.BlockHeat{}
	n.heatMu.Lock()
	for b, s := range n.blockSteps {
		agg[b] = fabric.BlockHeat{Block: b, Steps: s}
	}
	n.heatMu.Unlock()
	nv := n.e.NumVertices()
	for v := 0; v < nv; v++ {
		d := n.e.Degree(graph.VertexID(v))
		if d == 0 {
			continue
		}
		b := plan.BlockOf(graph.VertexID(v))
		e := agg[b]
		e.Block = b
		e.Edges += int64(d)
		agg[b] = e
	}
	out := make([]fabric.BlockHeat, 0, len(agg))
	for _, e := range agg {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// viewLoop drains the node's view stream: it answers peers' requests
// with versioned views of owned hubs and installs peers' replies into
// the remote cache.
func (n *shardNode) viewLoop() {
	defer n.loops.Done()
	minDeg := n.cache.MinDegree
	if minDeg <= 0 {
		minDeg = DefaultHubMinDegree
	}
	for {
		m, ok := n.port.NextView()
		if !ok {
			return
		}
		switch {
		case m.Req != nil:
			rq := m.Req
			// Origin is echoed so the transport can route a reader's
			// reply back to the reader that asked (0 = peer shard).
			rp := &fabric.ViewReply{From: n.shard, Vertex: rq.Vertex, Origin: rq.Origin}
			// Degree-gate before extracting: a non-hub reply must not pay
			// the O(degree) view copy it would immediately discard.
			if n.ve != nil && n.e.Degree(rq.Vertex) >= minDeg {
				// The Applied stamp (ingest-stream position consumed) is
				// read before extraction: the view can only be newer than
				// its stamp claims, so watermark validation errs toward
				// dropping, never toward serving stale state.
				applied := n.consumed.Load()
				vw := n.ve.ViewOf(rq.Vertex)
				if vw.Degree() >= minDeg {
					rp.Hub = true
					rp.Applied = applied
					rp.View = *vw
				}
			}
			n.viewsServed.Add(1)
			if err := n.port.ReplyView(rq.From, rp); err != nil {
				// Best-effort: the requester's in-flight marker clears on
				// its next watermark advance or stays conservative.
				continue
			}
		case m.Rep != nil:
			if n.rv != nil {
				n.rv.install(m.Rep)
			}
		}
	}
}

// ShardNodeStats summarizes one hosted shard's activity (daemon telemetry).
type ShardNodeStats struct {
	Steps, Transfers, Local int64
	Updates, Dropped        int64
	// MigratedEdges counts edges this node installed from ownership
	// blocks migrated onto it.
	MigratedEdges int64
	Vertices      int
	Edges         int64
	Cache         fabric.CacheTallies
}

// RunShardNode hosts engine e as shard `shard` of plan behind the given
// fabric port: crew walker goroutines plus one ingester and one view
// server, exactly the node half of ShardedLiveService. The cache spec
// configures the hub-view caches (zero value = defaults, on; it only
// takes effect when e implements ViewSampler); kernel selects the crews'
// stepping mode (zero value = auto). It blocks until the coordinator
// ends the session (or the fabric fails), then reports the node's
// tallies and the first ingest error. This is the body of
// `bingowalk -shard-serve`.
func RunShardNode(e LiveEngine, plan ShardPlan, shard int, port fabric.ShardPort, crew int, cache fabric.CacheSpec, kernel KernelMode) (ShardNodeStats, error) {
	n := startShardNode(e, plan, shard, port, crew, cache, kernel, true)
	n.wait()
	st := ShardNodeStats{
		Steps:         n.steps.Load(),
		Transfers:     n.transfers.Load(),
		Local:         n.local.Load(),
		Updates:       n.updates.Load(),
		Dropped:       n.dropped.Load(),
		MigratedEdges: n.migratedIn.Load(),
		Vertices:      e.NumVertices(),
		Cache:         n.cacheTallies(),
	}
	if ne, ok := e.(interface{ NumEdges() int64 }); ok {
		st.Edges = ne.NumEdges()
	}
	return st, n.firstErr()
}
