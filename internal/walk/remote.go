package walk

import (
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
)

// RemoteService drives a sharded serving session whose shard nodes live
// behind a fabric the coordinator cannot see into — in practice N
// `bingowalk -shard-serve` daemons reached over the tcpgob fabric. It is
// the exact coordinator ShardedLiveService runs in-process; only the port
// differs. One machine's lock domains become N processes' address spaces,
// and the API stays Query/Feed/Sync/DeepWalk.
//
// Because the shards are remote, ingest-side counters (Updates, Dropped)
// and the grown vertex space are observed through barrier acks: they are
// exact as of the last Sync (every ack carries cumulative tallies), not
// continuously live the way the in-process service's are.
//
// Backpressure: beyond the coordinator's feed queue, a per-shard credit
// window bounds the update events in flight toward each daemon (routed
// but not yet applied — the daemons credit consumed events back on the
// event stream). A feeder that outruns the daemons' apply rate blocks in
// Feed instead of growing daemon memory; ShardedLiveConfig.CreditWindow
// sizes the window.
type RemoteService struct {
	coord *coordinator
	verts int // construction-time vertex space (acks can only widen it)
}

// NewRemoteService starts a coordinator over the given fabric port.
// numVertices is the construction-time vertex space (the daemons size
// their engines from the same session Hello); the plan must match the
// geometry announced to the daemons. The service takes ownership of the
// port: Close ends the session.
func NewRemoteService(port fabric.CoordPort, plan ShardPlan, numVertices int, cfg ShardedLiveConfig) (*RemoteService, error) {
	cfg = cfg.withDefaults(plan.Shards)
	if err := validateReplication(plan, cfg); err != nil {
		return nil, err
	}
	s := &RemoteService{
		coord: newCoordinator(port, plan, cfg),
		verts: numVertices,
	}
	s.coord.noteVerts(int64(numVertices))
	return s, nil
}

// Shards returns the partition count.
func (s *RemoteService) Shards() int { return s.coord.plan.Shards }

// Plan returns the construction-time partition geometry.
func (s *RemoteService) Plan() ShardPlan { return s.coord.plan }

// LivePlan returns the live ownership plan (rebalancing overlay
// included).
func (s *RemoteService) LivePlan() ShardPlan { return s.coord.planNow() }

// NumVertices returns the widest vertex space observed across the shard
// daemons (exact as of the last Sync; at least the construction-time
// space).
func (s *RemoteService) NumVertices() int {
	n := s.verts
	s.coord.mu.Lock()
	for _, a := range s.coord.acks {
		if a.Vertices > n {
			n = a.Vertices
		}
	}
	s.coord.mu.Unlock()
	return n
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) across the shard daemons and returns the visited
// path, start included.
func (s *RemoteService) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	return s.coord.Query(start, length)
}

// Feed enqueues a batch for routed ingestion across the daemons
// (backpressure via the feed queue; ErrLiveClosed after Close).
func (s *RemoteService) Feed(ups []graph.Update) error {
	return s.coord.Feed(ups)
}

// bootstrapChunk bounds one bootstrap batch (updates per feed element):
// large enough to amortize framing, small enough that the credit window
// still paces the stream.
const bootstrapChunk = 1 << 16

// Bootstrap ships a snapshot to the daemons through the fabric itself:
// each holder's rows travel as dedicated snapshot (Boot) batches —
// fanned to every replica, credit-paced, but excluded from the routed
// ledger and the daemons' update tallies, so a bootstrapped session's
// Updates counter reflects feed events alone. A confirming barrier makes
// the call return only once every daemon holds exactly the rows it must.
// Shared by Engine.ServeRemote, the CLI -connect path, and the bench tcp
// transport so bootstrap semantics cannot drift between them.
func (s *RemoteService) Bootstrap(g *graph.CSR) error {
	s.coord.noteVerts(int64(g.NumVertices()))
	// Partition with replication stripped: each row must reach the router
	// exactly once — the router's boot path itself fans every update out
	// to all of its block's holders (PartitionCSR would otherwise
	// duplicate the rows a second time).
	base := s.coord.plan
	base.Replicas = 1
	for _, part := range base.PartitionCSR(g) {
		for len(part) > 0 {
			n := len(part)
			if n > bootstrapChunk {
				n = bootstrapChunk
			}
			if err := s.coord.feedBoot(part[:n]); err != nil {
				return err
			}
			part = part[n:]
		}
	}
	return s.Sync()
}

// Sync blocks until every feed batch accepted before the call has been
// applied (or dropped) on its daemons, then reports the first ingest
// error observed anywhere. It also refreshes the ack-carried tallies
// Stats and NumVertices read.
func (s *RemoteService) Sync() error { return s.coord.Sync() }

// AppliedStamp is the sum of the daemons' cumulative applied-update
// stamps from the latest barrier acks — the watermark evidence the
// standing-walk corpus's bounded-staleness check reads. Exact as of the
// last Sync.
func (s *RemoteService) AppliedStamp() int64 { return s.coord.appliedStamp() }

// DeepWalk runs a bulk first-order walk across the shard daemons while
// the feed keeps ingesting.
func (s *RemoteService) DeepWalk(cfg Config) (Result, TransferStats, error) {
	return s.coord.DeepWalk(cfg, s.NumVertices())
}

// DumpEdges reads back every daemon's live edge multiset (indexed by
// shard), consistent with all feed batches accepted before the call —
// the verification path the loopback differential harness uses to match
// a distributed session against a sequential replay edge-for-edge.
func (s *RemoteService) DumpEdges() ([][]graph.Edge, error) {
	return s.coord.DumpEdges()
}

// Stats snapshots the service counters. Walk-side counters accumulate as
// walkers retire; Updates and Dropped are exact as of the last Sync.
func (s *RemoteService) Stats() ShardedLiveStats {
	st := ShardedLiveStats{
		Queries:    s.coord.queries.Load(),
		Steps:      s.coord.steps.Load(),
		Batches:    s.coord.batches.Load(),
		Transfers:  s.coord.transfers.Load(),
		Local:      s.coord.local.Load(),
		ShardSteps: make([]int64, s.coord.plan.Shards),
	}
	s.coord.mu.Lock()
	for i, a := range s.coord.acks {
		st.Updates += a.Updates
		st.Dropped += a.Dropped
		st.ShardSteps[i] = a.Steps
		st.Cache.Add(a.Cache)
	}
	s.coord.mu.Unlock()
	st.Rebalance = s.coord.rebalanceTallies()
	st.Failover = s.coord.failoverTallies()
	st.Backpressure.Window = s.coord.window
	st.Backpressure.MaxOutstanding, st.Backpressure.Stalled = s.coord.backpressureTallies()
	return st
}

// NewRemoteReader attaches a read-coordinator over an already-dialed
// read port (in practice tcpgob.DialReader against the same daemons a
// RemoteService write session drives). The write session may live in a
// different process entirely; the reader learns its geometry, plan, and
// watermarks from the broadcast stream alone.
func NewRemoteReader(port fabric.ReadPort, cfg ReaderConfig) (*ReaderService, error) {
	return NewReaderService(port, cfg)
}

// Err returns the first error observed through barrier acks (nil if
// none).
func (s *RemoteService) Err() error { return s.coord.Err() }

// Close drains the feed, waits for in-flight walkers, ends the session
// (the daemons drain, report, and exit), and returns the first observed
// error. Idempotent.
func (s *RemoteService) Close() error { return s.coord.Close() }
