package walk

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Corpus-maintenance instrumentation: refresh cycle count and duration,
// plus the truncate/regrow volume each cycle repairs. Refreshes are
// interval-coalesced, so the record rate is bounded by the config, not
// the feed.
var (
	corpusRefreshes      = obs.C("bingo_corpus_refreshes_total")
	corpusRefreshNs      = obs.H("bingo_corpus_refresh_seconds")
	corpusResamples      = obs.C("bingo_corpus_resamples_total")
	corpusResampledSteps = obs.C("bingo_corpus_resampled_steps_total")
)

// This file is the standing walk corpus: instead of re-walking from
// scratch per query, the service maintains K walks × L steps per vertex
// continuously valid under the update feed and serves queries as corpus
// slices. The Wharf insight (PAPERS.md) is that an edge update only
// invalidates the *suffixes* of walks that passed through the updated
// vertex, so repair is incremental:
//
//   - An inverted walk index maps visited vertex → (walkID, position)
//     postings, packed walkID<<16|pos and bucketed by the vertex's owner
//     shard, so "which walks does this update dirty, and where" is one
//     map probe.
//   - The ingest path coalesces: Feed records each applied update's
//     source vertex in a deduped touch map (hub churn collapses to one
//     entry per hub however many events land), and a credit window
//     bounds the outstanding (fed but not yet refreshed) events the
//     same way the coordinator's router credits bound daemon queues —
//     Feed blocks instead of the queue growing without bound.
//   - A refresh loop drains the touch map: resolve touches through the
//     index to each dirty walk's *earliest* stale position, truncate
//     there, and regrow every suffix together — one bulk frontier
//     through the dense stepping kernel (unsharded), or a fan-out of
//     walker queries through the sharded runtime, whose crews batch
//     frontiers themselves.
//   - Queries carry a bounded-staleness guarantee: the corpus watermark
//     (fed events fully incorporated) must trail the query watermark
//     (fed events at query time) by at most the configured bound,
//     otherwise the query falls back to a fresh walk. On the sharded
//     backend the watermark only advances after a barrier whose acks'
//     cumulative applied-update stamps (fabric.Ack.Updates) confirm the
//     fed events applied — staleness is enforced by applied evidence,
//     not by wishful accounting.
//
// The amortization telemetry rides fabric.CorpusTallies: ResampledSteps
// (hops actually regrown) over FullWalkSteps (the per-update full
// recompute counterfactual) is the resample amplification the bench
// gates on.

// CorpusBackend is the sharded serving runtime a sharded corpus
// maintains its walks over. *ShardedLiveService and *RemoteService both
// satisfy it: the corpus feeds updates through it, regrows suffixes as
// walker queries, and reads its applied-update stamps for the
// bounded-staleness check.
type CorpusBackend interface {
	Query(start graph.VertexID, length int) ([]graph.VertexID, error)
	Feed(ups []graph.Update) error
	Sync() error
	AppliedStamp() int64
	Plan() ShardPlan
	Stats() ShardedLiveStats
	Close() error
}

// CorpusConfig parameterizes a CorpusService.
type CorpusConfig struct {
	// WalksPerVertex is K, the standing walks kept per vertex (default 2).
	WalksPerVertex int
	// WalkLength is L, each standing walk's step budget (default 80).
	// L must fit the index's 16-bit position field (L <= 65535).
	WalkLength int
	// Seed makes the regrow RNG streams reproducible.
	Seed uint64
	// StalenessBound is the maximum fed-but-unincorporated update events
	// a corpus-served query may lag the feed by; beyond it the query
	// falls back to a fresh walk. 0 selects the default (4096); negative
	// disables the fallback (always serve the corpus).
	StalenessBound int64
	// RefreshInterval is the coalescing window: after the first touch
	// wakes the refresh loop, it waits this long before draining so a
	// churn burst collapses into one resample cycle (default 2ms).
	RefreshInterval time.Duration
	// RefreshWorkers is the sharded regrow fan-out — concurrent walker
	// queries per refresh (default GOMAXPROCS). Unsharded corpora regrow
	// on the refresh goroutine's own frontier and ignore it.
	RefreshWorkers int
	// CreditWindow bounds the outstanding (fed but not yet refreshed)
	// touch events before Feed blocks — the corpus-side analogue of the
	// router's per-shard ingest credits. 0 selects DefaultCreditWindow;
	// negative disables the cap.
	CreditWindow int
	// Cache configures the unsharded regrow kernel's hub-view cache
	// (fabric semantics: zero value = on with defaults, Off disables).
	Cache fabric.CacheSpec
	// Kernel selects the unsharded regrow kernel's stepping mode. The
	// zero value selects *dense* — a regrow batch is a bulk frontier,
	// exactly what dense stepping amortizes — not auto; set sparse only
	// for differential baselines.
	Kernel KernelMode
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.WalksPerVertex <= 0 {
		c.WalksPerVertex = 2
	}
	if c.WalkLength <= 0 {
		c.WalkLength = 80
	}
	if c.StalenessBound == 0 {
		c.StalenessBound = 4096
	}
	if c.RefreshInterval == 0 {
		c.RefreshInterval = 2 * time.Millisecond
	}
	if c.RefreshWorkers <= 0 {
		c.RefreshWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CreditWindow == 0 {
		c.CreditWindow = DefaultCreditWindow
	}
	if c.Kernel == KernelAuto {
		c.Kernel = KernelDense
	}
	return c
}

// CorpusServiceStats snapshots a corpus service's counters.
type CorpusServiceStats struct {
	// Queries counts Query calls; CorpusServed those answered from the
	// standing corpus; StaleServed the corpus-served subset that lagged
	// the feed (but within the bound); Fallbacks those served as fresh
	// walks because the bound was blown, the start vertex has no corpus,
	// or the requested length exceeds the standing length.
	Queries, CorpusServed, StaleServed, Fallbacks int64
	// Refreshes counts completed refresh cycles; Resamples walks
	// truncated and regrown; ResampledSteps the suffix hops sampled
	// doing it; FullWalkSteps the per-update full-recompute
	// counterfactual those hops replaced.
	Refreshes, Resamples, ResampledSteps, FullWalkSteps int64
	// RefreshLagMs is the maximum observed touch-to-refresh latency.
	RefreshLagMs int64
	// MaxOutstanding is the peak credit-gated outstanding touch-event
	// count; Pending the outstanding count right now.
	MaxOutstanding, Pending int64
	// Walks is the corpus size (K × vertices).
	Walks int64
	// FedEvents is the query watermark source (update events accepted);
	// CorpusWatermark the fed events fully incorporated in the corpus;
	// AppliedStamp the backend's summed ack stamps at the last refresh
	// (sharded backends only — the bounded-staleness evidence).
	FedEvents, CorpusWatermark, AppliedStamp int64
}

// Amplification is ResampledSteps per counterfactual full-recompute step
// — below 1 the incremental corpus is cheaper than re-walking, and the
// bench gates on < 0.2 (≥ 5× cheaper).
func (s CorpusServiceStats) Amplification() float64 {
	if s.FullWalkSteps == 0 {
		return 0
	}
	return float64(s.ResampledSteps) / float64(s.FullWalkSteps)
}

// corpusJob is one dirty walk's regrow order: the prefix [0..pos] is
// kept, and up to grow steps are resampled from cur (= the walk's vertex
// at pos).
type corpusJob struct {
	walk int
	pos  int
	cur  graph.VertexID
	grow int
}

// CorpusService maintains the standing corpus. One instance serves
// queries from the corpus, coalesces feed touches, and repairs dirty
// suffixes on its refresh goroutine; it fronts either a single live
// engine (NewCorpusService) or a sharded serving runtime
// (NewShardedCorpusService).
type CorpusService struct {
	cfg  CorpusConfig
	plan ShardPlan
	numV int

	// Exactly one backend is set: local+kern for the unsharded service
	// (the corpus owns ingestion and regrows on its own dense frontier),
	// svc for the sharded one (feed, regrow queries, and the
	// applied-stamp evidence all go through the sharded runtime).
	local LiveEngine
	kern  *stepKernel
	svc   CorpusBackend

	master *xrand.RNG
	rngSeq uint64        // regrow stream counter (refresh goroutine only)
	qseq   atomic.Uint64 // fallback fresh-walk stream counter

	stride int // L+1 vertices per walk slot

	// mu guards the corpus proper: the flattened walks, their live
	// lengths, the inverted index buckets, and the serving rotation.
	mu      sync.Mutex
	walks   []graph.VertexID
	wlen    []int32
	buckets []map[graph.VertexID][]uint64
	rot     []uint32

	// tmu guards the coalescing touch queue and its credit gate.
	tmu     sync.Mutex
	tcond   *sync.Cond
	touches map[graph.VertexID]int64
	pending int64 // outstanding (enqueued − drained) touch events
	maxOut  int64
	oldest  time.Time
	closed  bool

	kick       chan struct{}
	refreshReq chan chan error
	stop       chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup

	fed      atomic.Int64 // update events accepted (query watermark)
	corpusWM atomic.Int64 // fed events fully incorporated
	applied  atomic.Int64 // backend ack stamp at last refresh

	errMu      sync.Mutex
	refreshErr error

	queries, corpusServed, staleServed, fallbacks atomic.Int64
	resamples, resampledSteps, fullWalkSteps      atomic.Int64
	refreshes, lagMs                              atomic.Int64
}

// NewCorpusService builds the standing corpus over a single live engine
// and starts the refresh loop. The corpus owns ingestion: Feed applies
// each batch to the engine itself (so fed == applied trivially), then
// coalesces the touches. The engine must be safe for concurrent
// sampling and updating (e.g. concurrent.Engine).
func NewCorpusService(e LiveEngine, cfg CorpusConfig) (*CorpusService, error) {
	numV := e.NumVertices()
	c, err := newCorpus(cfg, NewShardPlan(numV, 1), numV)
	if err != nil {
		return nil, err
	}
	c.local = e
	c.kern = newStepKernel(e, c.cfg.Kernel, c.cfg.Cache)
	if err := c.build(); err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.refreshLoop()
	return c, nil
}

// NewShardedCorpusService builds the standing corpus over a sharded
// serving runtime (in-process ShardedLiveService or remote
// RemoteService) and starts the refresh loop. The corpus takes ownership
// of the backend: Feed forwards to it, suffix regrows run as walker
// queries through it, refreshes barrier it (Sync) so the corpus
// watermark only advances on applied-stamp evidence, and Close closes
// it. numVertices is the vertex space to maintain walks for (vertices
// grown past it by the feed are served as fresh walks).
func NewShardedCorpusService(svc CorpusBackend, numVertices int, cfg CorpusConfig) (*CorpusService, error) {
	c, err := newCorpus(cfg, svc.Plan(), numVertices)
	if err != nil {
		return nil, err
	}
	c.svc = svc
	if err := c.build(); err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.refreshLoop()
	return c, nil
}

func newCorpus(cfg CorpusConfig, plan ShardPlan, numV int) (*CorpusService, error) {
	cfg = cfg.withDefaults()
	if numV <= 0 {
		return nil, fmt.Errorf("walk: corpus needs a non-empty vertex space, got %d", numV)
	}
	if cfg.WalkLength > 0xffff {
		return nil, fmt.Errorf("walk: corpus walk length %d exceeds the index's 16-bit position field (max %d)", cfg.WalkLength, 0xffff)
	}
	c := &CorpusService{
		cfg:        cfg,
		plan:       plan,
		numV:       numV,
		master:     xrand.New(cfg.Seed),
		stride:     cfg.WalkLength + 1,
		touches:    make(map[graph.VertexID]int64),
		kick:       make(chan struct{}, 1),
		refreshReq: make(chan chan error),
		stop:       make(chan struct{}),
	}
	c.tcond = sync.NewCond(&c.tmu)
	nWalks := numV * cfg.WalksPerVertex
	c.walks = make([]graph.VertexID, nWalks*c.stride)
	c.wlen = make([]int32, nWalks)
	c.rot = make([]uint32, numV)
	c.buckets = make([]map[graph.VertexID][]uint64, plan.Shards)
	for i := range c.buckets {
		c.buckets[i] = make(map[graph.VertexID][]uint64)
	}
	return c, nil
}

// build grows the initial corpus: every walk seated on its start vertex,
// then one bulk regrow of all suffixes. Construction steps are not
// maintenance, so they stay out of the resample tallies.
func (c *CorpusService) build() error {
	K := c.cfg.WalksPerVertex
	jobs := make([]corpusJob, 0, c.numV*K)
	for v := 0; v < c.numV; v++ {
		for k := 0; k < K; k++ {
			w := v*K + k
			c.walks[w*c.stride] = graph.VertexID(v)
			c.wlen[w] = 1
			c.addPosting(graph.VertexID(v), pack(w, 0))
			jobs = append(jobs, corpusJob{walk: w, pos: 0, cur: graph.VertexID(v), grow: c.cfg.WalkLength})
		}
	}
	sufs, err := c.regrow(jobs)
	c.install(jobs, sufs)
	return err
}

// pack encodes a posting: walkID in the high bits, position in the low
// 16 (positions never exceed L, validated at construction).
func pack(walkID, pos int) uint64 { return uint64(walkID)<<16 | uint64(pos) }

func (c *CorpusService) addPosting(v graph.VertexID, p uint64) {
	b := c.buckets[c.plan.Owner(v)]
	b[v] = append(b[v], p)
}

func (c *CorpusService) removePosting(v graph.VertexID, p uint64) {
	b := c.buckets[c.plan.Owner(v)]
	posts := b[v]
	for i, q := range posts {
		if q == p {
			posts[i] = posts[len(posts)-1]
			posts = posts[:len(posts)-1]
			break
		}
	}
	if len(posts) == 0 {
		delete(b, v)
	} else {
		b[v] = posts
	}
}

// indexEnd is the last indexed position of walk w: a position is indexed
// iff a (re)sampled step can leave it — every position short of the step
// budget, including a dead end's final vertex (an insert there must wake
// the walk), but not a full-length walk's terminal vertex.
func (c *CorpusService) indexEnd(w int) int {
	return min(int(c.wlen[w])-1, c.cfg.WalkLength-1)
}

// Feed applies a batch through the backend, coalesces its touches into
// the resample queue under the credit gate, and advances the fed
// watermark — in that order, so any event counted by a query watermark
// already has its touch queued for the refresh that will cover it. It
// blocks while the outstanding touch-event window is full (the
// credited-backpressure cap) and returns ErrLiveClosed after Close. The
// batch slice is owned by the service once accepted.
func (c *CorpusService) Feed(ups []graph.Update) error {
	if len(ups) == 0 {
		return nil
	}
	if c.svc != nil {
		if err := c.svc.Feed(ups); err != nil {
			return err
		}
	} else {
		if err := c.local.ApplyUpdates(ups); err != nil {
			return err
		}
	}
	n := int64(len(ups))
	c.tmu.Lock()
	if c.cfg.CreditWindow > 0 {
		// Same admission rule as the router's waitCredits: a batch wider
		// than the whole window is admitted once the queue is empty —
		// otherwise it could never proceed.
		for !c.closed && c.pending > 0 && c.pending+n > int64(c.cfg.CreditWindow) {
			c.tcond.Wait()
		}
	}
	if c.closed {
		c.tmu.Unlock()
		return ErrLiveClosed
	}
	if len(c.touches) == 0 {
		c.oldest = time.Now()
	}
	for i := range ups {
		c.touches[ups[i].Src]++
	}
	c.pending += n
	if c.pending > c.maxOut {
		c.maxOut = c.pending
	}
	c.tmu.Unlock()
	c.fed.Add(n)
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return nil
}

// Query returns a walk of up to length steps from start. Inside the
// staleness bound it is a corpus slice (round-robin over the vertex's K
// standing walks); a blown bound, a vertex outside the maintained space,
// or a length beyond the standing budget falls back to a fresh walk.
func (c *CorpusService) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	select {
	case <-c.stop:
		return nil, ErrLiveClosed
	default:
	}
	if length <= 0 {
		length = c.cfg.WalkLength
	}
	c.queries.Add(1)
	qWM := c.fed.Load()
	cWM := c.corpusWM.Load()
	lag := qWM - cWM
	if int(start) >= c.numV || length > c.cfg.WalkLength ||
		(c.cfg.StalenessBound >= 0 && lag > c.cfg.StalenessBound) {
		c.fallbacks.Add(1)
		return c.freshWalk(start, length)
	}
	K := c.cfg.WalksPerVertex
	c.mu.Lock()
	k := int(c.rot[start]) % K
	c.rot[start]++
	w := int(start)*K + k
	base := w * c.stride
	n := int(c.wlen[w])
	if n > length+1 {
		n = length + 1
	}
	path := make([]graph.VertexID, n)
	copy(path, c.walks[base:base+n])
	c.mu.Unlock()
	c.corpusServed.Add(1)
	if lag > 0 {
		c.staleServed.Add(1)
	}
	return path, nil
}

// freshWalk serves a query the corpus cannot: a walker query through the
// sharded backend, or a locked per-hop walk on the local engine.
func (c *CorpusService) freshWalk(start graph.VertexID, length int) ([]graph.VertexID, error) {
	if c.svc != nil {
		return c.svc.Query(start, length)
	}
	r := xrand.New(c.cfg.Seed).Split(^c.qseq.Add(1))
	return walkPath(c.local, start, length, r, nil), nil
}

// Sync forces a refresh cycle — drain the touch queue, barrier the
// backend, regrow every dirty suffix — and blocks until the corpus
// watermark has caught up with every Feed accepted before the call.
func (c *CorpusService) Sync() error {
	reply := make(chan error, 1)
	select {
	case c.refreshReq <- reply:
		return <-reply
	case <-c.stop:
		return ErrLiveClosed
	}
}

func (c *CorpusService) refreshLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			// Final drain: the corpus a test or differential reads after
			// Close reflects every accepted Feed.
			if err := c.runRefresh(); err != nil {
				c.setErr(err)
			}
			return
		case reply := <-c.refreshReq:
			err := c.runRefresh()
			if err != nil {
				c.setErr(err)
			}
			reply <- err
		case <-c.kick:
			// The coalescing window: let a churn burst pile into the touch
			// map so one resample cycle covers it all.
			if d := c.cfg.RefreshInterval; d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-c.stop:
					t.Stop()
					if err := c.runRefresh(); err != nil {
						c.setErr(err)
					}
					return
				}
			}
			if err := c.runRefresh(); err != nil {
				c.setErr(err)
			}
		}
	}
}

// runRefresh executes one refresh cycle. Watermark discipline: the fed
// watermark is read first, then the touch map is stolen, and only then
// does the backend barrier run. The steal MUST precede the barrier: a
// touch is recorded only after its batch was handed to the backend, so
// every stolen touch's updates were routed before the barrier started
// and the regrow below samples a graph that includes them. (Barrier
// first would open a window — a Feed landing between the barrier and
// the drain gets its touch consumed while its updates still sit in a
// shard queue, and the stale regrown suffix is never repaired; the
// full-package differential caught exactly that.) Touches recorded
// after the steal simply wait for the next cycle, and the corpus
// watermark advances to the pre-steal fed value only after the dirty
// suffixes are regrown.
func (c *CorpusService) runRefresh() error {
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	fedWM := c.fed.Load()
	c.tmu.Lock()
	t := c.touches
	var drained int64
	for _, n := range t {
		drained += n
	}
	c.touches = make(map[graph.VertexID]int64)
	oldest := c.oldest
	c.oldest = time.Time{}
	c.pending -= drained
	c.tcond.Broadcast()
	c.tmu.Unlock()

	if c.svc != nil {
		if err := c.svc.Sync(); err != nil {
			return err
		}
		c.applied.Store(c.svc.AppliedStamp())
	}
	var err error
	if len(t) > 0 {
		err = c.resampleTouched(t)
	}
	if err == nil {
		c.corpusWM.Store(fedWM)
	}
	c.refreshes.Add(1)
	corpusRefreshes.Inc()
	if !t0.IsZero() {
		corpusRefreshNs.ObserveSince(t0)
		obs.Log.Record(obs.EvCorpusRefresh, -1,
			fmt.Sprintf("%d touches drained, %v", drained, time.Since(t0).Round(time.Microsecond)))
	}
	if !oldest.IsZero() {
		if lag := time.Since(oldest).Milliseconds(); lag > c.lagMs.Load() {
			c.lagMs.Store(lag)
		}
	}
	return err
}

// resampleTouched repairs the corpus after a drained touch set: resolve
// each touched vertex's postings to per-walk minimum dirty positions
// (the walkID-level coalescing dedupe — a walk dirtied at ten positions
// by ten events regrows once, from the earliest), truncate, regrow all
// suffixes as one batch, and reinstall walks and postings.
func (c *CorpusService) resampleTouched(t map[graph.VertexID]int64) error {
	L := c.cfg.WalkLength
	c.mu.Lock()
	dirty := make(map[int]int)
	var full int64
	distinct := make(map[int]struct{})
	for v, events := range t {
		posts := c.buckets[c.plan.Owner(v)][v]
		if len(posts) == 0 {
			continue
		}
		clear(distinct)
		for _, p := range posts {
			w := int(p >> 16)
			pos := int(p & 0xffff)
			distinct[w] = struct{}{}
			if old, ok := dirty[w]; !ok || pos < old {
				dirty[w] = pos
			}
		}
		// The counterfactual: a full per-update recompute re-walks every
		// walk that visited v at full length, once per applied event.
		full += events * int64(len(distinct)) * int64(L)
	}
	jobs := make([]corpusJob, 0, len(dirty))
	for w, pos := range dirty {
		base := w * c.stride
		for q := pos + 1; q <= c.indexEnd(w); q++ {
			c.removePosting(c.walks[base+q], pack(w, q))
		}
		c.wlen[w] = int32(pos + 1)
		jobs = append(jobs, corpusJob{walk: w, pos: pos, cur: c.walks[base+pos], grow: L - pos})
	}
	c.mu.Unlock()

	sufs, err := c.regrow(jobs)
	steps := c.install(jobs, sufs)
	c.resamples.Add(int64(len(jobs)))
	c.resampledSteps.Add(steps)
	c.fullWalkSteps.Add(full)
	corpusResamples.Add(int64(len(jobs)))
	corpusResampledSteps.Add(steps)
	return err
}

// regrow samples every job's suffix: through the dense frontier kernel
// on the local engine, or as concurrent walker queries through the
// sharded backend (whose shard crews batch frontiers themselves). A
// failed sharded query leaves its suffix empty — the walk stays
// truncated, index-consistent, and is repaired on its next touch.
func (c *CorpusService) regrow(jobs []corpusJob) ([][]graph.VertexID, error) {
	sufs := make([][]graph.VertexID, len(jobs))
	if len(jobs) == 0 {
		return sufs, nil
	}
	if c.svc == nil {
		c.regrowLocal(jobs, sufs)
		return sufs, nil
	}
	workers := min(c.cfg.RefreshWorkers, len(jobs))
	var next atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				path, err := c.svc.Query(jobs[i].cur, jobs[i].grow)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				sufs[i] = path[1:]
			}
		}()
	}
	wg.Wait()
	return sufs, firstErr
}

// regrowLocal drives all suffixes as one batched frontier through the
// stepping kernel (dense by default): refill free slots from the job
// list, step the whole frontier one hop, append the drawn hops to their
// suffixes, and swap-compact retired walks — the deepWalkChunk loop
// shape, with suffix buffers as the per-slot payload.
func (c *CorpusService) regrowLocal(jobs []corpusJob, sufs [][]graph.VertexID) {
	capSlots := min(len(jobs), kernelBatch)
	f := getFrontier(capSlots)
	defer putFrontier(f)
	ji := make([]int, capSlots)  // frontier slot → job index
	rem := make([]int, capSlots) // steps left per slot
	next, n := 0, 0
	for next < len(jobs) || n > 0 {
		for n < capSlots && next < len(jobs) {
			f.cur[n] = jobs[next].cur
			c.master.SplitInto(c.rngSeq, f.slotRNG(n))
			c.rngSeq++
			ji[n] = next
			rem[n] = jobs[next].grow
			next++
			n++
		}
		f.n = n
		c.kern.stepBatch(f)
		for i := 0; i < n; {
			if f.ok[i] {
				j := ji[i]
				sufs[j] = append(sufs[j], f.next[i])
				f.cur[i] = f.next[i]
				rem[i]--
			}
			if !f.ok[i] || rem[i] == 0 {
				n--
				f.swap(i, n)
				ji[i], ji[n] = ji[n], ji[i]
				rem[i], rem[n] = rem[n], rem[i]
			} else {
				i++
			}
		}
	}
}

// install writes the regrown suffixes back into the corpus and the
// index, returning the suffix steps installed.
func (c *CorpusService) install(jobs []corpusJob, sufs [][]graph.VertexID) int64 {
	L := c.cfg.WalkLength
	var steps int64
	c.mu.Lock()
	for i := range jobs {
		j := jobs[i]
		base := j.walk * c.stride
		n := j.pos
		for _, v := range sufs[i] {
			n++
			c.walks[base+n] = v
			if n <= L-1 {
				c.addPosting(v, pack(j.walk, n))
			}
		}
		c.wlen[j.walk] = int32(n + 1)
		steps += int64(len(sufs[i]))
	}
	c.mu.Unlock()
	return steps
}

// Tallies snapshots the maintenance counters in the fabric's shared
// vocabulary.
func (c *CorpusService) Tallies() fabric.CorpusTallies {
	return fabric.CorpusTallies{
		Resamples:      c.resamples.Load(),
		ResampledSteps: c.resampledSteps.Load(),
		FullWalkSteps:  c.fullWalkSteps.Load(),
		RefreshLagMs:   c.lagMs.Load(),
		StaleServed:    c.staleServed.Load(),
		Fallbacks:      c.fallbacks.Load(),
	}
}

// Stats snapshots the corpus service counters.
func (c *CorpusService) Stats() CorpusServiceStats {
	c.tmu.Lock()
	pending, maxOut := c.pending, c.maxOut
	c.tmu.Unlock()
	return CorpusServiceStats{
		Queries:         c.queries.Load(),
		CorpusServed:    c.corpusServed.Load(),
		StaleServed:     c.staleServed.Load(),
		Fallbacks:       c.fallbacks.Load(),
		Refreshes:       c.refreshes.Load(),
		Resamples:       c.resamples.Load(),
		ResampledSteps:  c.resampledSteps.Load(),
		FullWalkSteps:   c.fullWalkSteps.Load(),
		RefreshLagMs:    c.lagMs.Load(),
		MaxOutstanding:  maxOut,
		Pending:         pending,
		Walks:           int64(len(c.wlen)),
		FedEvents:       c.fed.Load(),
		CorpusWatermark: c.corpusWM.Load(),
		AppliedStamp:    c.applied.Load(),
	}
}

// ShardedStats returns the sharded backend's service stats with the
// corpus tallies riding in the Corpus field — the ShardedLiveStats
// surface the CLI and benches print (zero-backed for unsharded corpora).
func (c *CorpusService) ShardedStats() ShardedLiveStats {
	var st ShardedLiveStats
	if c.svc != nil {
		st = c.svc.Stats()
	}
	st.Corpus = c.Tallies()
	return st
}

// Err returns the first refresh error observed (nil if none).
func (c *CorpusService) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.refreshErr
}

func (c *CorpusService) setErr(err error) {
	if err == nil {
		return
	}
	c.errMu.Lock()
	if c.refreshErr == nil {
		c.refreshErr = err
	}
	c.errMu.Unlock()
}

// Close drains the touch queue through a final refresh, stops the
// refresh loop, closes the backend (sharded), and returns the first
// refresh error. Idempotent; Query, Feed, and Sync fail with
// ErrLiveClosed afterwards.
func (c *CorpusService) Close() error {
	c.closeOnce.Do(func() {
		c.tmu.Lock()
		c.closed = true
		c.tcond.Broadcast()
		c.tmu.Unlock()
		close(c.stop)
	})
	c.wg.Wait()
	if c.svc != nil {
		c.setErr(c.svc.Close())
	}
	return c.Err()
}
