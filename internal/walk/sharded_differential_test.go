// The sharded extension of the PR-1 differential harness: writer
// goroutines feed a growth-inducing update tape through the sharded live
// service while query walkers traverse shard boundaries, and afterwards
// the union of the shard engines must be *equivalent* to a sequential
// core.Sampler replay of the same tape — identical live edge multiset and
// a sampling distribution the chi-square test cannot tell apart.
//
// Equivalence holds for the same reason as the unsharded harness — the
// tape is partitioned by source vertex, per-vertex operations are
// linearizable, and operations on distinct sources commute — plus one new
// ingredient: the router keeps all of a source's updates on one shard
// queue in feed order, so sharding adds no new interleavings per source.
// The tape deliberately references vertices far beyond the initial space,
// exercising block-cyclic ownership and independent shard growth under
// live traffic. Run with -race; the routing and transfer protocol is the
// thing under test.
package walk_test

import (
	"sort"
	"sync"
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	sdVerts0   = 600  // initial vertex space the plan is derived from
	sdVertsMax = 1200 // tape references IDs up to here (growth-inducing)
	sdTapeLen  = 8000
	sdWriters  = 4
	sdShards   = 4
	sdSamples  = 120000 // ≥ 1e5 chi-square draws
)

type sdPair struct{ src, dst graph.VertexID }

// buildGrowthTape generates a random update tape over [0, numVertices) in
// which every (src,dst) pair has at most one live instance at any point
// (so deletions are unambiguous and any valid replay agrees edge-for-edge),
// plus a sprinkle of not-found deletions for the tolerant path. With
// numVertices beyond the initial space, inserts double as growth events.
func buildGrowthTape(n, numVertices int, seed uint64) []graph.Update {
	r := xrand.New(seed)
	live := make([]sdPair, 0, n)
	liveAt := make(map[sdPair]int, n)
	tape := make([]graph.Update, 0, n)
	for len(tape) < n {
		roll := r.Float64()
		switch {
		case roll < 0.25 && len(live) > 8:
			i := r.Intn(len(live))
			p := live[i]
			last := len(live) - 1
			live[i] = live[last]
			liveAt[live[i]] = i
			live = live[:last]
			delete(liveAt, p)
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
		case roll < 0.30:
			p := sdPair{graph.VertexID(r.Intn(numVertices)), graph.VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
		default:
			p := sdPair{graph.VertexID(r.Intn(numVertices)), graph.VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			liveAt[p] = len(live)
			live = append(live, p)
			tape = append(tape, graph.Update{Op: graph.OpInsert, Src: p.src, Dst: p.dst, Bias: uint64(1 + r.Intn(1000))})
		}
	}
	return tape
}

type sdEdge struct {
	src, dst graph.VertexID
	bias     uint64
}

// appendEdges flattens a snapshot into out.
func appendEdges(out []sdEdge, g *graph.CSR) []sdEdge {
	for u := 0; u < g.NumVertices(); u++ {
		vid := graph.VertexID(u)
		dsts := g.Neighbors(vid)
		biases := g.Biases(vid)
		for i := range dsts {
			out = append(out, sdEdge{src: vid, dst: dsts[i], bias: biases[i]})
		}
	}
	return out
}

func sortEdges(es []sdEdge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.bias < b.bias
	})
}

// TestShardedLiveDifferential is the acceptance harness: ≥4 shards × ≥4
// writers over a growth-inducing tape with concurrent cross-shard query
// walkers, then edge-multiset equality and ≥1e5-draw chi-square agreement
// against a sequential replay.
func TestShardedLiveDifferential(t *testing.T) {
	tape := buildGrowthTape(sdTapeLen, sdVertsMax, 0x5AD0)

	plan := walk.NewShardPlan(sdVerts0, sdShards)
	engines, raw := newShardEngines(t, plan, sdVerts0)
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: 2,
		WalkLength:      16,
		Seed:            0xFEED,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Partition the tape by source: each source's events stay with one
	// writer, in tape order — the harness contract under which any writer
	// interleaving is equivalent to the sequential replay.
	parts := make([][]graph.Update, sdWriters)
	for _, up := range tape {
		w := int(up.Src) % sdWriters
		parts[w] = append(parts[w], up)
	}

	done := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < sdWriters; w++ {
		writers.Add(1)
		go func(part []graph.Update) {
			defer writers.Done()
			const chunk = 64
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := svc.Feed(part[lo:hi]); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
		}(parts[w])
	}

	// Query walkers keep crossing shard boundaries while the tape lands,
	// starting anywhere in the post-growth ID space.
	var walkers sync.WaitGroup
	var queries int64
	var qmu sync.Mutex
	for q := 0; q < 4; q++ {
		walkers.Add(1)
		go func(seed uint64) {
			defer walkers.Done()
			r := xrand.New(seed)
			local := int64(0)
			for {
				if local >= 64 {
					select {
					case <-done:
						qmu.Lock()
						queries += local
						qmu.Unlock()
						return
					default:
					}
				}
				start := graph.VertexID(r.Intn(sdVertsMax))
				path, err := svc.Query(start, 16)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
				local++
			}
		}(0xFACE + uint64(q))
	}
	writers.Wait()
	close(done)
	walkers.Wait()
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync after feed: %v", err)
	}
	st := svc.Stats()
	t.Logf("replayed %d updates under %d writers / %d shards while %d walkers served %d queries (%d transfers, ratio %.3f)",
		st.Updates, sdWriters, sdShards, 4, queries, st.Transfers, st.TransferRatio())
	if st.Updates != int64(len(tape)) || st.Dropped != 0 {
		t.Fatalf("ingest stats %+v, want %d updates, 0 dropped", st, len(tape))
	}
	if st.Transfers == 0 {
		t.Fatal("no cross-shard transfers — the partition topology was not exercised")
	}

	// Sequential ground truth: the whole tape, one goroutine, streaming
	// path, over a space pre-sized to the tape's maximum.
	seq, err := core.New(sdVertsMax, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ApplyUpdatesStreaming(append([]graph.Update(nil), tape...)); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}

	// Chi-square the live service's sampling distribution against the
	// replay's exact probabilities on the highest-degree vertices. Draws
	// go through the full serving path: Query(u, 1) routes to the owner
	// shard and samples one hop.
	type cand struct {
		u graph.VertexID
		d int
	}
	var cands []cand
	for u := 0; u < sdVertsMax; u++ {
		if d := seq.Degree(graph.VertexID(u)); d >= 4 {
			cands = append(cands, cand{graph.VertexID(u), d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
	if len(cands) > 8 {
		cands = cands[:8]
	}
	if len(cands) == 0 {
		t.Fatal("no test vertices with degree ≥ 4 — tape generator broken")
	}
	perVertex := sdSamples / len(cands)
	for _, c := range cands {
		slotProbs := seq.VertexProbabilities(c.u)
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range slotProbs {
			probByDst[seq.Neighbor(c.u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		for i := 0; i < perVertex; i++ {
			path, err := svc.Query(c.u, 1)
			if err != nil {
				t.Fatalf("vertex %d: Query: %v", c.u, err)
			}
			if len(path) != 2 {
				t.Fatalf("vertex %d: degree %d but draw %d returned path %v", c.u, c.d, i, path)
			}
			slot, ok := index[path[1]]
			if !ok {
				t.Fatalf("vertex %d: sampled %d, not a live neighbor", c.u, path[1])
			}
			observed[slot]++
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("vertex %d: chi-square: %v", c.u, err)
		}
		if p < 1e-4 {
			t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — sharded distribution diverges from sequential replay", c.u, c.d, stat, p)
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Edge-multiset equality: the union of the shard engines vs the
	// sequential replay, and every shard's invariants hold after growth.
	var got []sdEdge
	grew := false
	for i, e := range raw {
		if e.NumVertices() > sdVerts0 {
			grew = true
		}
		e.Quiesce(func(s *core.Sampler) {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("shard %d invariants: %v", i, err)
			}
			got = appendEdges(got, s.Snapshot())
		})
	}
	if !grew {
		t.Fatal("no shard engine grew beyond the initial space — tape not growth-inducing")
	}
	want := appendEdges(nil, seq.Snapshot())
	sortEdges(got)
	sortEdges(want)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
