package walk_test

import (
	"sync"
	"testing"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
)

func newLiveEngine(t *testing.T, numVertices int) *concurrent.Engine {
	t.Helper()
	e, err := concurrent.New(numVertices, core.DefaultConfig(), concurrent.Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	// Ring plus chords so every vertex always has an out-edge.
	for i := 0; i < numVertices; i++ {
		u := graph.VertexID(i)
		if err := e.Insert(u, graph.VertexID((i+1)%numVertices), 2); err != nil {
			t.Fatal(err)
		}
		if err := e.Insert(u, graph.VertexID((i+7)%numVertices), 1); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestLiveServiceQueryWhileFeeding(t *testing.T) {
	const nV = 256
	e := newLiveEngine(t, nV)
	svc := walk.NewLiveService(e, walk.LiveConfig{Walkers: 4, WalkLength: 24, Seed: 9})

	var feeders sync.WaitGroup
	feeders.Add(1)
	go func() {
		defer feeders.Done()
		for round := 0; round < 40; round++ {
			batch := make([]graph.Update, 0, 16)
			for i := 0; i < 8; i++ {
				u := graph.VertexID((round*8 + i) % nV)
				d := graph.VertexID((round*8 + i + 3) % nV)
				batch = append(batch,
					graph.Update{Op: graph.OpInsert, Src: u, Dst: d, Bias: 3},
					graph.Update{Op: graph.OpDelete, Src: u, Dst: d})
			}
			if err := svc.Feed(batch); err != nil {
				t.Errorf("Feed: %v", err)
				return
			}
		}
	}()

	var queriers sync.WaitGroup
	const queriesPer = 50
	for q := 0; q < 4; q++ {
		queriers.Add(1)
		go func(q int) {
			defer queriers.Done()
			for i := 0; i < queriesPer; i++ {
				start := graph.VertexID((q*queriesPer + i) % nV)
				path, err := svc.Query(start, 0)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
				if len(path) != 25 { // start + WalkLength hops; no dead ends
					t.Errorf("path length %d, want 25", len(path))
					return
				}
			}
		}(q)
	}
	queriers.Wait()
	feeders.Wait()

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := svc.Stats()
	if st.Queries != 4*queriesPer {
		t.Fatalf("Queries = %d, want %d", st.Queries, 4*queriesPer)
	}
	if st.Batches != 40 || st.Updates != 40*16 {
		t.Fatalf("ingest stats %+v, want 40 batches / %d updates", st, 40*16)
	}
	if st.Steps != st.Queries*24 {
		t.Fatalf("Steps = %d, want %d", st.Steps, st.Queries*24)
	}

	// Post-close semantics.
	if _, err := svc.Query(0, 4); err != walk.ErrLiveClosed {
		t.Fatalf("Query after Close: %v, want ErrLiveClosed", err)
	}
	if err := svc.Feed(nil); err != walk.ErrLiveClosed {
		t.Fatalf("Feed after Close: %v, want ErrLiveClosed", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The feed was fully applied: every (u,u+3,3) pair was deleted again.
	e.Quiesce(func(s *core.Sampler) {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if n := s.NumEdges(); n != int64(2*nV) {
			t.Fatalf("NumEdges = %d, want %d (churn must cancel out)", n, 2*nV)
		}
	})
}

func TestLiveServiceBulkKernels(t *testing.T) {
	e := newLiveEngine(t, 128)
	svc := walk.NewLiveService(e, walk.LiveConfig{Walkers: 2, Seed: 3})
	defer svc.Close()

	res := svc.Bulk(walk.AppDeepWalk, walk.Config{Length: 10, Workers: 2, Seed: 5})
	if res.Walkers != 128 || res.Steps != 128*10 {
		t.Fatalf("Bulk DeepWalk: %d walkers / %d steps, want 128 / 1280", res.Walkers, res.Steps)
	}
	sh := svc.NewSharded(4)
	shRes, _ := sh.DeepWalk(walk.Config{Length: 10, Seed: 5})
	if shRes.Steps != 128*10 {
		t.Fatalf("Sharded DeepWalk steps %d, want 1280", shRes.Steps)
	}
}

func TestLiveServiceIngestError(t *testing.T) {
	e := newLiveEngine(t, 16)
	svc := walk.NewLiveService(e, walk.LiveConfig{Walkers: 1})
	if err := svc.Feed([]graph.Update{{Op: graph.OpInsert, Src: 0, Dst: 1, Bias: 0}}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if err := svc.Close(); err == nil {
		t.Fatalf("Close returned nil, want the zero-bias ingest error")
	}
}

// TestLiveServiceDroppedBatches pins the failed-batch accounting: a batch
// that fails validation is dropped whole and counted, the FIRST error is
// what Err and Close report, and later good batches still apply — one
// malformed batch must not silently void the rest of the feed.
func TestLiveServiceDroppedBatches(t *testing.T) {
	e := newLiveEngine(t, 16)
	svc := walk.NewLiveService(e, walk.LiveConfig{Walkers: 1})

	good := func(src, dst graph.VertexID) []graph.Update {
		return []graph.Update{{Op: graph.OpInsert, Src: src, Dst: dst, Bias: 5}}
	}
	feeds := [][]graph.Update{
		good(0, 9),
		{{Op: graph.OpInsert, Src: 1, Dst: 2, Bias: 0}},                                                 // zero bias: dropped (first error)
		{{Op: graph.OpInsert, Src: 2, Dst: 3, Bias: 0}, {Op: graph.OpInsert, Src: 3, Dst: 12, Bias: 7}}, // dropped whole
		good(4, 12),
	}
	for _, b := range feeds {
		if err := svc.Feed(b); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	err := svc.Close()
	if err == nil {
		t.Fatal("Close returned nil, want first ingest error")
	}
	if got := svc.Err(); got != err {
		t.Fatalf("Err() = %v, Close = %v — first-error semantics broken", got, err)
	}

	st := svc.Stats()
	if st.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", st.Dropped)
	}
	if st.Batches != 2 || st.Updates != 2 {
		t.Fatalf("Batches/Updates = %d/%d, want 2/2 (good batches must survive a bad one)", st.Batches, st.Updates)
	}
	// The good batches applied; nothing from the dropped ones leaked in.
	if !e.HasEdge(0, 9) || !e.HasEdge(4, 12) {
		t.Fatal("good batches after the failure were not applied")
	}
	if e.HasEdge(3, 12) {
		t.Fatal("an update from a dropped batch leaked into the engine")
	}
}
