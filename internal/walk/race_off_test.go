//go:build !race

package walk_test

// raceDetectorEnabled reports whether this test binary was built with
// -race. See race_on_test.go.
const raceDetectorEnabled = false
