// Event-journal ordering tests: the control-plane protocol guarantees
// (offer before flip before commit; death before promotion before
// rejoin) must be visible in the journal in exactly that order, since
// the journal is what an operator reads to reconstruct an incident.
// Internal package: the migration script drives the coordinator's
// rebalance.Controller face directly.
package walk

import (
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/chaos"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/rebalance"
)

// obsRingCSR builds the directed ring 0→1→…→n-1→0.
func obsRingCSR(t *testing.T, n int) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n), Bias: 1}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// firstIndexByKind returns the position of the first event of each kind
// in evs (-1 when absent), optionally filtered to one shard (-2 = any).
func firstIndexByKind(evs []obs.Event, kind string, shard int) int {
	for i, e := range evs {
		if e.Kind == kind && (shard == -2 || e.Shard == shard) {
			return i
		}
	}
	return -1
}

// TestJournalMigrationOrdering scripts one live block migration and
// requires the journal to show offer → plan flip → commit, in that
// order — the same order the fabric messages were published in.
func TestJournalMigrationOrdering(t *testing.T) {
	const n = 96
	g := obsRingCSR(t, n)
	plan := NewShardPlan(n, 3)
	engines, err := BootstrapShards(g, plan, func() (LiveEngine, error) {
		return concurrent.New(n, core.DefaultConfig(), concurrent.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewShardedLiveService(engines, plan, ShardedLiveConfig{WalkersPerShard: 1, WalkLength: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	seq0 := obs.Log.Seq()
	if err := svc.coord.Migrate(rebalance.Move{Block: 0, From: 0, To: 2}); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	evs := obs.Log.Since(seq0)
	offer := firstIndexByKind(evs, obs.EvMigrationOffer, -2)
	flip := firstIndexByKind(evs, obs.EvPlanFlip, -2)
	commit := firstIndexByKind(evs, obs.EvMigrationCommit, -2)
	if offer < 0 || flip < 0 || commit < 0 {
		t.Fatalf("journal missing migration events (offer=%d flip=%d commit=%d): %+v", offer, flip, commit, evs)
	}
	if !(offer < flip && flip < commit) {
		t.Fatalf("migration events out of order (offer=%d flip=%d commit=%d): %+v", offer, flip, commit, evs)
	}
	// The moved block must actually answer from its new owner.
	if got := svc.coord.planNow().BlockOwner(0); got != 2 {
		t.Fatalf("block 0 owner after migration: %d, want 2", got)
	}
}

// TestJournalFailoverOrdering kills a replicated shard over the chaos
// fabric, restarts it, and requires the journal to narrate the incident
// in protocol order: the death is masked first, the replica promotion is
// implied by the same flip, and the rejoin lands only after re-priming.
func TestJournalFailoverOrdering(t *testing.T) {
	const (
		n      = 120
		shards = 3
		victim = 1
	)
	g := obsRingCSR(t, n)
	plan := NewShardPlan(n, shards)
	plan.Replicas = 2
	fab := chaos.New(shards)
	nodeDone := make([]chan struct{}, shards)
	runNode := func(i int, port fabric.ShardPort) chan struct{} {
		s, err := core.New(n, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := RunShardNode(concurrent.Wrap(s, concurrent.Config{}), plan, i, port, 1, fabric.CacheSpec{}, KernelAuto); err != nil {
				t.Logf("shard %d node exited: %v", i, err)
			}
		}()
		return done
	}
	for i := 0; i < shards; i++ {
		nodeDone[i] = runNode(i, fab.ShardPort(i))
	}
	svc, err := NewRemoteService(fab.CoordPort(), plan, n, ShardedLiveConfig{WalkLength: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Bootstrap(g); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	seq0 := obs.Log.Seq()
	fab.Kill(victim)
	select {
	case <-nodeDone[victim]:
	case <-time.After(20 * time.Second):
		t.Fatal("killed shard node did not exit")
	}
	deadline := time.Now().Add(30 * time.Second)
	for svc.Stats().Failover.Deaths == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("death never observed; tallies %+v", svc.Stats().Failover)
		}
		time.Sleep(5 * time.Millisecond)
	}
	port, err := fab.Restart(victim)
	if err != nil {
		t.Fatal(err)
	}
	nodeDone[victim] = runNode(victim, port)
	for svc.Stats().Failover.Rejoins == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rejoin did not complete; tallies %+v", svc.Stats().Failover)
		}
		time.Sleep(5 * time.Millisecond)
	}

	evs := obs.Log.Since(seq0)
	death := firstIndexByKind(evs, obs.EvShardDeath, victim)
	promote := firstIndexByKind(evs, obs.EvShardPromote, victim)
	rejoin := firstIndexByKind(evs, obs.EvShardRejoin, victim)
	if death < 0 || promote < 0 || rejoin < 0 {
		t.Fatalf("journal missing failover events (death=%d promote=%d rejoin=%d): %+v", death, promote, rejoin, evs)
	}
	if !(death < promote && promote < rejoin) {
		t.Fatalf("failover events out of order (death=%d promote=%d rejoin=%d): %+v", death, promote, rejoin, evs)
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, d := range nodeDone {
		select {
		case <-d:
		case <-time.After(20 * time.Second):
			t.Fatalf("shard %d node did not exit after Close", i)
		}
	}
}
