// The hub-cache invalidation extension of the sharded differential
// harness: a hub-heavy topology whose hottest vertices take a sustained
// stream of bias rewrites and deletions through the live feed while
// query walkers hammer exactly those hubs with the hub caches *enabled*
// (the default). Both cache layers must be demonstrably in play — local
// lock-free hits, epoch-invalidated local views, fabric view traffic —
// and the served state must still match a sequential replay
// edge-for-edge, with a chi-square test unable to tell the served
// sampling distribution from the replay's exact probabilities. Run with
// -race; cache invalidation racing the feed is the thing under test.
package walk_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	hcVerts   = 600
	hcShards  = 4
	hcHubs    = 8
	hcChurn   = 6000 // bias rewrites / delete+reinsert cycles on hub edges
	hcWriters = 4
	hcSamples = 120000 // ≥ 1e5 chi-square draws through the serving path
)

// hcHubIDs spreads the hubs across the block-cyclic ownership ranges so
// hub traffic exercises every shard and every cross-shard pairing.
func hcHubIDs() []graph.VertexID {
	hubs := make([]graph.VertexID, hcHubs)
	for i := range hubs {
		hubs[i] = graph.VertexID(i*(hcVerts/hcHubs) + 5)
	}
	return hubs
}

// buildHubTape returns the build tape (wire every vertex to hubs, hubs
// to each other) and an nChurn-event churn tape: repeated bias rewrites
// (delete + reinsert with a fresh bias — the feed's bias-update idiom)
// and delete/reinsert cycles concentrated on the hub edges. Every
// (src,dst) pair has at most one live instance at any point, so any
// valid replay agrees edge-for-edge.
func buildHubTape(seed uint64, nChurn int) (build, churn []graph.Update) {
	r := xrand.New(seed)
	hubs := hcHubIDs()
	isHub := map[graph.VertexID]bool{}
	for _, h := range hubs {
		isHub[h] = true
	}
	var tape []graph.Update
	type pair struct{ src, dst graph.VertexID }
	live := map[pair]uint64{} // live hub-out edges → current bias
	ins := func(s, d graph.VertexID, b uint64) {
		tape = append(tape, graph.Update{Op: graph.OpInsert, Src: s, Dst: d, Bias: b})
	}
	// Build: every vertex points at two distinct hubs (walks funnel into
	// hubs from anywhere), every hub at every other hub (walks then
	// bounce hub-to-hub across shards) plus a few spokes.
	for v := 0; v < hcVerts; v++ {
		vid := graph.VertexID(v)
		if isHub[vid] {
			continue
		}
		a := hubs[r.Intn(len(hubs))]
		b := hubs[r.Intn(len(hubs))]
		for b == a {
			b = hubs[r.Intn(len(hubs))]
		}
		ins(vid, a, uint64(1+r.Intn(1000)))
		ins(vid, b, uint64(1+r.Intn(1000)))
	}
	for _, h := range hubs {
		for _, g := range hubs {
			if g == h {
				continue
			}
			bias := uint64(1 + r.Intn(1000))
			ins(h, g, bias)
			live[pair{h, g}] = bias
		}
		for k := 0; k < 4; k++ {
			d := graph.VertexID(r.Intn(hcVerts))
			p := pair{h, d}
			if _, ok := live[p]; ok || isHub[d] || d == h {
				continue
			}
			bias := uint64(1 + r.Intn(1000))
			ins(h, d, bias)
			live[p] = bias
		}
	}
	build = tape
	tape = nil
	// Churn: hammer the hottest vertices' out-edges.
	keys := make([]pair, 0, len(live))
	for p := range live {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	gone := map[pair]bool{}
	for n := 0; n < nChurn; n++ {
		p := keys[r.Intn(len(keys))]
		switch {
		case gone[p]:
			// Resurrect a deleted hub edge.
			bias := uint64(1 + r.Intn(1000))
			ins(p.src, p.dst, bias)
			live[p] = bias
			delete(gone, p)
		case r.Coin(0.2):
			// Plain deletion; a later draw may resurrect it.
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
			gone[p] = true
		default:
			// Bias rewrite: delete + reinsert with a fresh bias, adjacent
			// and same-source, so per-source feed order preserves it.
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
			bias := live[p] + uint64(1+r.Intn(1000))
			ins(p.src, p.dst, bias)
			live[p] = bias
		}
	}
	return build, tape
}

func TestHubChurnCacheDifferential(t *testing.T) {
	build, churn := buildHubTape(0xC0FFEE, hcChurn)
	tape := append(append([]graph.Update(nil), build...), churn...)
	hubs := hcHubIDs()

	plan := walk.NewShardPlan(hcVerts, hcShards)
	engines, raw := newShardEngines(t, plan, hcVerts)
	// Cache explicitly on with a low admission threshold and an eager
	// request policy, so every layer engages at this scale.
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: 2,
		WalkLength:      16,
		Seed:            0x0FF1CE,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase A — build: land the hub topology and make it visible.
	if err := svc.Feed(append([]graph.Update(nil), build...)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync after build: %v", err)
	}

	// Phase B — warm: hub queries fill every crew's view LRU on a
	// stable graph, so the churn that follows *must* invalidate cached
	// views (the deterministic seed of the LocalStale assertion below).
	warmR := xrand.New(0xEA7)
	for i := 0; i < 400; i++ {
		if _, err := svc.Query(hubs[warmR.Intn(len(hubs))], 16); err != nil {
			t.Fatalf("warm query: %v", err)
		}
	}
	if st := svc.Stats(); st.Cache.LocalHits == 0 {
		t.Fatal("warm phase produced no cache hits — the crew cache is not in play")
	}

	// Phase C — churn, partitioned by source, each source's events with
	// one writer in tape order (the differential-equivalence contract),
	// with walkers hammering the hubs concurrently.
	parts := make([][]graph.Update, hcWriters)
	for _, up := range churn {
		w := int(up.Src) % hcWriters
		parts[w] = append(parts[w], up)
	}
	done := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < hcWriters; w++ {
		writers.Add(1)
		go func(part []graph.Update) {
			defer writers.Done()
			const chunk = 32
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := svc.Feed(part[lo:hi]); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
		}(parts[w])
	}

	// Walkers start on the hubs under churn: every hop at a hub runs
	// through the view caches while the writers invalidate them.
	var walkers sync.WaitGroup
	for q := 0; q < 4; q++ {
		walkers.Add(1)
		go func(seed uint64) {
			defer walkers.Done()
			r := xrand.New(seed)
			n := 0
			for {
				if n >= 64 {
					select {
					case <-done:
						return
					default:
					}
				}
				start := hubs[r.Intn(len(hubs))]
				path, err := svc.Query(start, 16)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
				n++
			}
		}(0xD00D + uint64(q))
	}
	writers.Wait()
	close(done)
	walkers.Wait()
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync after churn: %v", err)
	}
	st := svc.Stats()
	if st.Updates != int64(len(tape)) || st.Dropped != 0 {
		t.Fatalf("ingest stats %+v, want %d updates, 0 dropped", st, len(tape))
	}

	// Post-churn hub walks on a now-stable graph: remote views survive
	// their watermark checks, so the fabric-side cache must show hits.
	// The fill path is asynchronous (crossings → request → owner's view
	// loop → install), and on a loaded single-core machine the view
	// loops can trail the query stream — so drive rounds until hits
	// appear instead of assuming a fixed warm-up is enough.
	r := xrand.New(0xAB)
	for round := 0; round < 60; round++ {
		for i := 0; i < 500; i++ {
			if _, err := svc.Query(hubs[r.Intn(len(hubs))], 16); err != nil {
				t.Fatalf("post-churn query: %v", err)
			}
		}
		if svc.Stats().Cache.RemoteHits > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond) // let the view loops drain
	}
	st = svc.Stats()
	t.Logf("cache under churn: %d local hits (%d stale), %d remote-view hops (%d stale), %d view requests / %d served, %d transfers (ratio %.3f)",
		st.Cache.LocalHits, st.Cache.LocalStale, st.Cache.RemoteHits, st.Cache.RemoteStale,
		st.Cache.ViewRequests, st.Cache.ViewsServed, st.Transfers, st.TransferRatio())
	if st.Cache.LocalHits == 0 {
		t.Error("hub churn exercised no local cache hits — the crew cache is not in play")
	}
	if st.Cache.LocalStale == 0 {
		t.Error("sustained hub churn invalidated no cached views — epoch validation is not in play")
	}
	if st.Cache.ViewRequests == 0 || st.Cache.ViewsServed == 0 {
		t.Errorf("no fabric view traffic (req %d, served %d) — the remote cache protocol is not in play",
			st.Cache.ViewRequests, st.Cache.ViewsServed)
	}
	if st.Cache.RemoteHits == 0 {
		t.Error("no hub hops served from remote views on a post-churn stable graph")
	}

	// Sequential ground truth and chi-square through the serving path.
	seq, err := core.New(hcVerts, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ApplyUpdatesStreaming(append([]graph.Update(nil), tape...)); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	perVertex := hcSamples / len(hubs)
	for _, u := range hubs {
		if seq.Degree(u) < 4 {
			t.Fatalf("hub %d ended with degree %d — tape generator broken", u, seq.Degree(u))
		}
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range seq.VertexProbabilities(u) {
			probByDst[seq.Neighbor(u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		for i := 0; i < perVertex; i++ {
			path, err := svc.Query(u, 1)
			if err != nil {
				t.Fatalf("hub %d: Query: %v", u, err)
			}
			if len(path) != 2 {
				t.Fatalf("hub %d: draw %d returned path %v", u, i, path)
			}
			slot, ok := index[path[1]]
			if !ok {
				t.Fatalf("hub %d: sampled %d, not a live neighbor", u, path[1])
			}
			observed[slot]++
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("hub %d: chi-square: %v", u, err)
		}
		if p < 1e-4 {
			t.Errorf("hub %d: chi-square stat %.2f p=%.2e — cached serving distribution diverges from sequential replay", u, stat, p)
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Edge-multiset equality: the union of the shard engines vs the
	// sequential replay, plus per-shard invariants after the churn.
	var got []sdEdge
	for i, e := range raw {
		e.Quiesce(func(s *core.Sampler) {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("shard %d invariants: %v", i, err)
			}
			got = appendEdges(got, s.Snapshot())
		})
	}
	want := appendEdges(nil, seq.Snapshot())
	sortEdges(got)
	sortEdges(want)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
