// White-box property test for the corpus's inverted walk index: after
// any sequence of random insert/delete feed cycles — each one driving
// truncate-at-earliest-stale-position and suffix regrow through the
// refresh loop — the per-owner posting buckets must EXACTLY equal a
// brute-force rescan of the walk array. The index is the thing that
// turns an update into the minimal dirty-walk set; a single stale or
// missing posting silently corrupts the corpus forever, so this checks
// multiset equality, not containment.
package walk

import (
	"fmt"
	"sort"
	"testing"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// scanIndex rebuilds the posting buckets from scratch by walking the
// corpus arrays under c.mu — the ground truth the incremental index must
// match: every live walk position up to indexEnd posts (walkID, pos)
// under its vertex's owner bucket.
func scanIndex(c *CorpusService) []map[graph.VertexID][]uint64 {
	want := make([]map[graph.VertexID][]uint64, len(c.buckets))
	for i := range want {
		want[i] = map[graph.VertexID][]uint64{}
	}
	for w := 0; w < len(c.wlen); w++ {
		base := w * c.stride
		for pos := 0; pos <= c.indexEnd(w); pos++ {
			v := c.walks[base+pos]
			o := c.plan.Owner(v)
			want[o][v] = append(want[o][v], pack(w, pos))
		}
	}
	return want
}

// diffIndex compares live buckets against the brute-force scan as
// per-vertex posting multisets and reports the first divergence.
func diffIndex(got, want []map[graph.VertexID][]uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("bucket count %d, want %d", len(got), len(want))
	}
	for o := range want {
		for v, wp := range want[o] {
			gp := got[o][v]
			if err := samePostings(gp, wp); err != nil {
				return fmt.Errorf("owner %d vertex %d: %v", o, v, err)
			}
		}
		for v, gp := range got[o] {
			if len(gp) == 0 {
				return fmt.Errorf("owner %d vertex %d: empty posting list left in the index", o, v)
			}
			if _, ok := want[o][v]; !ok {
				return fmt.Errorf("owner %d vertex %d: %d stale postings for a vertex no walk visits", o, v, len(gp))
			}
		}
	}
	return nil
}

func samePostings(got, want []uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d postings, want %d", len(got), len(want))
	}
	g := append([]uint64(nil), got...)
	w := append([]uint64(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("posting %d: walk %d pos %d, want walk %d pos %d",
				i, g[i]>>16, g[i]&0xffff, w[i]>>16, w[i]&0xffff)
		}
	}
	return nil
}

func checkIndex(t *testing.T, c *CorpusService, round string) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := diffIndex(c.buckets, scanIndex(c)); err != nil {
		t.Fatalf("%s: inverted index diverges from brute-force scan: %v", round, err)
	}
}

// corpusIndexDriver runs random insert/delete cycles against a corpus
// (deletes drawn only from the live-edge set so every op lands), Syncs
// so the refresh loop truncates and regrows, and cross-checks the index
// after every cycle.
func corpusIndexDriver(t *testing.T, c *CorpusService, verts, rounds int, seed uint64) {
	type edge struct{ src, dst graph.VertexID }
	r := xrand.New(seed)
	live := map[edge]bool{}
	var keys []edge
	rebuild := func() {
		keys = keys[:0]
		for e := range live {
			keys = append(keys, e)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i].src < keys[j].src || (keys[i].src == keys[j].src && keys[i].dst < keys[j].dst)
		})
	}
	for round := 0; round < rounds; round++ {
		rebuild()
		var batch []graph.Update
		for i := 0; i < 40; i++ {
			if len(keys) > 0 && r.Intn(3) == 0 {
				// Delete a live edge (and drop it from the model).
				k := keys[r.Intn(len(keys))]
				if !live[k] {
					continue
				}
				delete(live, k)
				batch = append(batch, graph.Update{Op: graph.OpDelete, Src: k.src, Dst: k.dst})
				rebuild()
				continue
			}
			e := edge{graph.VertexID(r.Intn(verts)), graph.VertexID(r.Intn(verts))}
			if live[e] {
				continue
			}
			live[e] = true
			batch = append(batch, graph.Update{Op: graph.OpInsert, Src: e.src, Dst: e.dst, Bias: uint64(1 + r.Intn(9))})
			rebuild()
		}
		if err := c.Feed(batch); err != nil {
			t.Fatalf("round %d: Feed: %v", round, err)
		}
		if err := c.Sync(); err != nil {
			t.Fatalf("round %d: Sync: %v", round, err)
		}
		checkIndex(t, c, fmt.Sprintf("round %d", round))
	}
	cs := c.Stats()
	if cs.Resamples == 0 {
		t.Fatal("driver produced zero resamples — the property was never exercised")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	checkIndex(t, c, "after close")
}

func TestCorpusIndexMatchesBruteForceLocal(t *testing.T) {
	const verts = 64
	e, err := concurrent.New(verts, core.DefaultConfig(), concurrent.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Start from an empty graph: every walk begins as a seated dead end,
	// so early inserts exercise the dead-end-tail wakeup postings too.
	c, err := NewCorpusService(e, CorpusConfig{WalksPerVertex: 3, WalkLength: 12, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	checkIndex(t, c, "initial build")
	corpusIndexDriver(t, c, verts, 30, 0x1D1D)
}

// TestCorpusIndexMatchesBruteForceSharded runs the same property over a
// sharded backend, where the buckets are keyed by a real multi-shard
// ownership plan and regrow goes through backend queries.
func TestCorpusIndexMatchesBruteForceSharded(t *testing.T) {
	const (
		verts  = 64
		shards = 4
	)
	plan := NewShardPlan(verts, shards)
	engines := make([]LiveEngine, shards)
	for i := range engines {
		e, err := concurrent.New(verts, core.DefaultConfig(), concurrent.Config{})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	svc, err := NewShardedLiveService(engines, plan, ShardedLiveConfig{WalkersPerShard: 1, WalkLength: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewShardedCorpusService(svc, verts, CorpusConfig{WalksPerVertex: 2, WalkLength: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkIndex(t, c, "initial build")
	if got := len(c.buckets); got != shards {
		t.Fatalf("%d posting buckets, want one per shard (%d)", got, shards)
	}
	corpusIndexDriver(t, c, verts, 20, 0x5EED)
}
