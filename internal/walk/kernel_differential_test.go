package walk

// The kernel's own differential gates, sitting below the service-level
// harnesses (sharded, hub-churn, rebalance, failover):
//
//  1. Lockstep: with hub caches off, every draw goes through the engine
//     lock and consumes its slot's stream exactly as a per-walker locked
//     sample would, so sparse, dense, and auto stepping must produce
//     *identical* walks — edge for edge, across interleaved update
//     batches. This is the "sparse draw-for-draw identical" contract.
//
//  2. Distribution: with hub caches on, dense runs draw from
//     epoch-validated views outside the lock, consuming streams
//     differently — the contract weakens to distributional exactness,
//     and a ≥120k-draw chi-square against the view's own exact
//     probabilities must not tell the difference.
//
//  3. Churn: the same chi-square gate while a writer rewrites the hubs
//     mid-batch, invalidating cached views between (and during) rounds.
//     Run with -race; the stale-view handling is the thing under test.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const kdSamples = 120000 // ≥ 1.2e5 chi-square draws

// kdAdvance moves the frontier to its drawn next hops, re-parking
// dead-ended slots on their home hub (deterministic, mode-independent).
func kdAdvance(f *frontier) {
	for i := 0; i < f.n; i++ {
		if f.ok[i] {
			f.cur[i] = f.next[i]
		} else {
			f.cur[i] = graph.VertexID(i % benchHubs)
		}
	}
}

// TestKernelModesLockstep steps sparse, dense, and auto kernels (caches
// off) over one shared engine from identical frontier states, with update
// batches landing between rounds, and requires bit-identical walks.
func TestKernelModesLockstep(t *testing.T) {
	e := benchHubEngine(t, 2048)
	modes := []KernelMode{KernelSparse, KernelDense, KernelAuto}
	kernels := make([]*stepKernel, len(modes))
	fronts := make([]*frontier, len(modes))
	for m, mode := range modes {
		kernels[m] = newStepKernel(e, mode, fabric.CacheSpec{Off: true})
		f := getFrontier(kernelBatch)
		defer putFrontier(f)
		benchFrontier(f) // same seeds in every frontier
		fronts[m] = f
	}

	upd := xrand.New(0x10c5)
	for round := 0; round < 200; round++ {
		if round%20 == 10 {
			// Rewrite some hub rows mid-walk: both modes read the same
			// post-batch state, so lockstep must survive mutation.
			batch := make([]graph.Update, 0, 32)
			for i := 0; i < 32; i++ {
				batch = append(batch, graph.Update{
					Op:   graph.OpInsert,
					Src:  graph.VertexID(upd.Intn(benchHubs)),
					Dst:  graph.VertexID(2048 + upd.Intn(64)),
					Bias: uint64(1 + upd.Intn(1000)),
				})
			}
			if _, err := e.ApplyBatch(batch); err != nil {
				t.Fatalf("round %d: ApplyBatch: %v", round, err)
			}
		}
		for m := range kernels {
			kernels[m].stepBatch(fronts[m])
		}
		base := fronts[0]
		for m := 1; m < len(kernels); m++ {
			f := fronts[m]
			for i := 0; i < kernelBatch; i++ {
				// next is unspecified when ok is false (dead end).
				if f.ok[i] != base.ok[i] || (f.ok[i] && f.next[i] != base.next[i]) {
					t.Fatalf("round %d slot %d: %s drew (%d,%v), sparse drew (%d,%v) from %d",
						round, i, modes[m], f.next[i], f.ok[i], base.next[i], base.ok[i], base.cur[i])
				}
			}
		}
		for m := range fronts {
			kdAdvance(fronts[m])
		}
	}
}

// kdChiSquare draws kdSamples batched hops at u through k (every slot
// parked on u each round) and chi-squares the observed destinations
// against the engine's exact per-destination probabilities.
func kdChiSquare(t *testing.T, e interface {
	Engine
	ViewSampler
}, k *stepKernel, f *frontier, u graph.VertexID) {
	t.Helper()
	vw := e.ViewOf(u)
	probByDst := map[graph.VertexID]float64{}
	for slot, p := range vw.Probabilities() {
		probByDst[vw.Dsts[slot]] += p
	}
	index := map[graph.VertexID]int{}
	probs := make([]float64, 0, len(probByDst))
	for d, p := range probByDst {
		index[d] = len(probs)
		probs = append(probs, p)
	}
	observed := make([]int64, len(probs))
	for drawn := 0; drawn < kdSamples; {
		for i := 0; i < f.n; i++ {
			f.cur[i] = u
		}
		k.stepBatch(f)
		for i := 0; i < f.n; i++ {
			if !f.ok[i] {
				t.Fatalf("draw %d slot %d: no sample from hub %d", drawn, i, u)
			}
			j, live := index[f.next[i]]
			if !live {
				t.Fatalf("draw %d slot %d: sampled %d, not a live neighbor of %d", drawn, i, f.next[i], u)
			}
			observed[j]++
			drawn++
		}
	}
	stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
	if err != nil {
		t.Fatalf("hub %d: chi-square: %v", u, err)
	}
	if p < 1e-4 {
		t.Errorf("hub %d: chi-square stat %.2f p=%.2e — dense view draws diverge from the exact distribution", u, stat, p)
	}
}

// TestKernelDenseViewChiSquare gates the dense-with-views path on a quiet
// graph: every draw at the hub is served by the cached view after the
// first round, and 120k draws must match the view's exact probabilities.
func TestKernelDenseViewChiSquare(t *testing.T) {
	e := benchHubEngine(t, 2048)
	k := newStepKernel(e, KernelDense, fabric.CacheSpec{})
	f := getFrontier(kernelBatch)
	defer putFrontier(f)
	benchFrontier(f)
	kdChiSquare(t, e, k, f, graph.VertexID(3))
	var hits, stale int64
	k.flushCacheStats(&hits, &stale)
	if hits == 0 {
		t.Error("no cache hits across 120k hub draws — the view path is not in play")
	}
}

// TestKernelDenseHubChurnMidBatch runs the dense kernel against a writer
// that keeps rewriting the hub rows, so cached views go stale between and
// during rounds (run with -race: concurrent extraction, validation, and
// invalidation is the thing under test). After the churn stops, the
// refreshed views must still pass the 120k-draw chi-square gate.
func TestKernelDenseHubChurnMidBatch(t *testing.T) {
	const verts = 2048
	e := benchHubEngine(t, verts)
	k := newStepKernel(e, KernelDense, fabric.CacheSpec{})
	f := getFrontier(kernelBatch)
	defer putFrontier(f)
	benchFrontier(f)

	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		r := xrand.New(0xc4012 ^ 0xbeef)
		for it := 0; ; it++ {
			select {
			case <-done:
				return
			default:
			}
			// Insert a fresh edge on every hub and delete the one
			// inserted 32 iterations ago: hub rows churn constantly but
			// never lose their original mass, and (src,dst) pairs are
			// unique at any instant, so replay order cannot matter.
			batch := make([]graph.Update, 0, 2*benchHubs)
			for h := 0; h < benchHubs; h++ {
				batch = append(batch, graph.Update{
					Op: graph.OpInsert, Src: graph.VertexID(h),
					Dst: graph.VertexID(verts + (it % 64)), Bias: uint64(1 + r.Intn(1000)),
				})
				if it >= 32 {
					batch = append(batch, graph.Update{
						Op: graph.OpDelete, Src: graph.VertexID(h),
						Dst: graph.VertexID(verts + ((it - 32) % 64)),
					})
				}
			}
			if _, err := e.ApplyBatch(batch); err != nil {
				t.Errorf("churn writer: %v", err)
				return
			}
			// Pace the churn so views live a few rounds between deaths —
			// an unthrottled writer invalidates every view every round
			// and the admission back-off (correctly) stops caching.
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Step through the churn: hub-parked rounds keep probing, validating,
	// and refilling views while the writer invalidates them. On a
	// single-core box the whole loop fits under the async-preemption
	// window, so yield each round to let the writer's timer fire —
	// otherwise it never runs mid-loop and nothing goes stale.
	for round := 0; round < 400; round++ {
		for i := 0; i < f.n; i++ {
			f.cur[i] = graph.VertexID(i % benchHubs)
		}
		k.stepBatch(f)
		runtime.Gosched()
	}
	close(done)
	writer.Wait()

	// The concurrent phase above is scheduler-timing-dependent (on a
	// single-core box the writer may run between every round or almost
	// never), so it only has to survive the race detector; the hit/stale
	// accounting is asserted deterministically here. A quiet stretch
	// clears the admission back-off the churn earned (worst skip window
	// is 1<<churnMaxStrikes extractions) and accumulates hits; one
	// synchronous batch then bumps every hub's version, so the next
	// round must find every cached view stale.
	var hits, stale int64
	k.flushCacheStats(&hits, &stale)
	for round := 0; round < 2<<churnMaxStrikes; round++ {
		for i := 0; i < f.n; i++ {
			f.cur[i] = graph.VertexID(i % benchHubs)
		}
		k.stepBatch(f)
	}
	hits, stale = 0, 0
	k.flushCacheStats(&hits, &stale)
	if hits == 0 {
		t.Error("quiet hub rounds exercised no view hits — the cache is not in play")
	}
	batch := make([]graph.Update, benchHubs)
	for h := 0; h < benchHubs; h++ {
		batch[h] = graph.Update{
			Op: graph.OpInsert, Src: graph.VertexID(h),
			Dst: graph.VertexID(verts + 64), Bias: 7,
		}
	}
	if _, err := e.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.n; i++ {
		f.cur[i] = graph.VertexID(i % benchHubs)
	}
	k.stepBatch(f)
	hits, stale = 0, 0
	k.flushCacheStats(&hits, &stale)
	if stale == 0 {
		t.Error("hub rewrite invalidated no cached views — epoch validation is not in play")
	}

	// Quiescent gate: the final writer batch bumped the stripe epochs, so
	// the first post-churn round drops every stale view and refills from
	// the settled graph; the distribution must be exact again.
	kdChiSquare(t, e, k, f, graph.VertexID(5))
}
