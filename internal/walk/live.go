package walk

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// LiveService instrumentation: end-to-end query latency (enqueue to
// reply, so queueing shows up in the tail) and the ingest tallies,
// labeled by serving tier so the sharded paths can reuse the families.
var (
	liveQueryNs       = obs.H("bingo_query_seconds", "svc", "live")
	liveIngestBatches = obs.C("bingo_ingest_batches_total", "svc", "live")
	liveIngestUpdates = obs.C("bingo_ingest_updates_total", "svc", "live")
	liveIngestDropped = obs.C("bingo_ingest_dropped_total", "svc", "live")
)

// LiveEngine is the contract LiveService requires: a sampling engine whose
// Sample/Degree/HasEdge are safe concurrently with ApplyUpdates (e.g.
// internal/concurrent.Engine). A plain core.Sampler does NOT satisfy the
// safety requirement even though it satisfies the method set.
type LiveEngine interface {
	Engine
	// ApplyUpdates ingests a batch concurrently with sampling.
	ApplyUpdates(ups []graph.Update) error
}

// ErrLiveClosed is returned by Query and Feed after Close.
var ErrLiveClosed = errors.New("walk: live service closed")

// LiveConfig parameterizes a LiveService.
type LiveConfig struct {
	// Walkers is the walker-pool size (default GOMAXPROCS).
	Walkers int
	// QueueDepth is the buffer depth of the query and feed queues
	// (default 256). A full feed queue applies backpressure: Feed blocks.
	QueueDepth int
	// WalkLength is the default walk length for Query calls that pass
	// length <= 0 (default 80).
	WalkLength int
	// Seed makes the walker RNG streams reproducible.
	Seed uint64
	// Cache configures the pool walkers' hub-view LRUs (zero value =
	// enabled with defaults; Off disables; remote fields are unused in
	// the unsharded service). Takes effect only when the engine supports
	// versioned views (concurrent.Engine does).
	Cache fabric.CacheSpec
	// Kernel selects the stepping-kernel mode (zero value = auto).
	// Queries are single independent walks, so the pool always steps
	// them sparse; the mode is forwarded to bulk kernels run through
	// Bulk, where dense frontiers apply.
	Kernel KernelMode
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.Walkers <= 0 {
		c.Walkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.WalkLength <= 0 {
		c.WalkLength = 80
	}
	return c
}

// LiveStats is a snapshot of service counters.
type LiveStats struct {
	// Queries is the number of walk queries served.
	Queries int64
	// Steps is the total walk steps taken across queries.
	Steps int64
	// Batches and Updates count ingested feed batches and their events.
	Batches, Updates int64
	// Dropped counts feed batches whose application failed. The batch is
	// skipped whole (validation rejects it before any update applies), the
	// first such error is retained for Err, and ingestion continues —
	// one malformed batch must not silently void the rest of the feed.
	Dropped int64
	// CacheHits counts walk steps served lock-free from a walker's
	// hub-view cache; CacheStale counts cached views dropped on epoch
	// mismatch (a writer touched the vertex's stripe since extraction).
	CacheHits, CacheStale int64
}

type liveReq struct {
	start  graph.VertexID
	length int
	reply  chan []graph.VertexID
}

// LiveService serves walk queries from a walker pool while a streaming
// update feed mutates the graph — walks and ingestion genuinely overlap,
// which is exactly what the underlying concurrent engine exists for. The
// service is the CPU analogue of the paper's serving setting: walkers are
// the request handlers, the feed is the event stream.
//
//	svc := walk.NewLiveService(eng, walk.LiveConfig{Walkers: 8})
//	go func() { svc.Feed(batch) }()
//	path, err := svc.Query(start, 80)
//	...
//	err = svc.Close()
//
// Queries are served by the pool (reusing the per-walker RNG-stream
// discipline of runParallel); bulk kernels over the live engine remain
// available through Bulk, and a Sharded topology through NewSharded.
type LiveService struct {
	e   LiveEngine
	cfg LiveConfig

	reqs chan liveReq
	feed chan []graph.Update

	// sendMu serializes senders against Close: Feed/Query hold it in read
	// mode across their channel send, Close takes it in write mode before
	// closing the channels, so a send can never hit a closed channel.
	sendMu sync.RWMutex
	closed bool

	walkers   sync.WaitGroup
	ingestRun sync.WaitGroup

	errMu     sync.Mutex
	ingestErr error

	queries, steps, batches, updates, dropped atomic.Int64
	cacheHits, cacheStale                     atomic.Int64
}

// NewLiveService starts the walker pool and the ingest loop.
func NewLiveService(e LiveEngine, cfg LiveConfig) *LiveService {
	cfg = cfg.withDefaults()
	ls := &LiveService{
		e:    e,
		cfg:  cfg,
		reqs: make(chan liveReq, cfg.QueueDepth),
		feed: make(chan []graph.Update, cfg.QueueDepth),
	}
	master := xrand.New(cfg.Seed)
	for i := 0; i < cfg.Walkers; i++ {
		r := master.Split(uint64(i))
		ls.walkers.Add(1)
		go ls.walkLoop(r)
	}
	ls.ingestRun.Add(1)
	go ls.ingestLoop()
	return ls
}

// walkLoop serves queries until the request channel closes; pending queued
// requests are drained first, so every accepted Query gets its reply.
// Each pool walker keeps a private hub-view LRU: hops at hot vertices are
// sampled lock-free from epoch-validated views, with the engine's locked
// path as the fallback (and the only path for engines without views).
func (ls *LiveService) walkLoop(r *xrand.RNG) {
	defer ls.walkers.Done()
	k := newStepKernel(ls.e, ls.cfg.Kernel, ls.cfg.Cache)
	var buf []graph.VertexID
	for req := range ls.reqs {
		buf = k.walkOne(req.start, req.length, r, buf)
		path := make([]graph.VertexID, len(buf))
		copy(path, buf)
		ls.queries.Add(1)
		ls.steps.Add(int64(len(path) - 1))
		var hits, stale int64
		k.flushCacheStats(&hits, &stale)
		if hits != 0 {
			ls.cacheHits.Add(hits)
		}
		if stale != 0 {
			ls.cacheStale.Add(stale)
		}
		req.reply <- path
	}
}

// ingestLoop applies feed batches in arrival order (a single ingester keeps
// the feed sequentially consistent: per-source effects land in Feed order).
func (ls *LiveService) ingestLoop() {
	defer ls.ingestRun.Done()
	for b := range ls.feed {
		if err := ls.e.ApplyUpdates(b); err != nil {
			ls.dropped.Add(1)
			liveIngestDropped.Inc()
			ls.errMu.Lock()
			if ls.ingestErr == nil {
				ls.ingestErr = err
			}
			ls.errMu.Unlock()
			continue
		}
		ls.batches.Add(1)
		ls.updates.Add(int64(len(b)))
		liveIngestBatches.Inc()
		liveIngestUpdates.Add(int64(len(b)))
	}
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) and returns the visited path, start included. It
// blocks until a pool walker serves it.
func (ls *LiveService) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	if length <= 0 {
		length = ls.cfg.WalkLength
	}
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	req := liveReq{start: start, length: length, reply: make(chan []graph.VertexID, 1)}
	ls.sendMu.RLock()
	if ls.closed {
		ls.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	ls.reqs <- req
	ls.sendMu.RUnlock()
	path := <-req.reply
	if !t0.IsZero() {
		liveQueryNs.ObserveSince(t0)
	}
	return path, nil
}

// Feed enqueues a batch for ingestion. It blocks when the feed queue is
// full (backpressure) and returns ErrLiveClosed after Close. The batch
// slice is owned by the service once accepted.
func (ls *LiveService) Feed(ups []graph.Update) error {
	ls.sendMu.RLock()
	defer ls.sendMu.RUnlock()
	if ls.closed {
		return ErrLiveClosed
	}
	ls.feed <- ups
	return nil
}

// Bulk runs a whole walk kernel over the live engine through the standard
// parallel runner — a full DeepWalk/PPR/node2vec computation proceeding
// concurrently with the feed. The service's kernel mode applies unless
// the bulk config names its own.
func (ls *LiveService) Bulk(app App, cfg Config) Result {
	if cfg.Kernel == KernelAuto {
		cfg.Kernel = ls.cfg.Kernel
	}
	return Run(app, ls.e, cfg)
}

// NewSharded wraps the live engine in a shards-way 1-D partition (the
// supplement §9.1 topology) that can likewise run while the feed ingests.
func (ls *LiveService) NewSharded(shards int) *Sharded {
	return NewSharded(ls.e, shards)
}

// Stats returns a snapshot of the service counters.
func (ls *LiveService) Stats() LiveStats {
	return LiveStats{
		Queries:    ls.queries.Load(),
		Steps:      ls.steps.Load(),
		Batches:    ls.batches.Load(),
		Updates:    ls.updates.Load(),
		Dropped:    ls.dropped.Load(),
		CacheHits:  ls.cacheHits.Load(),
		CacheStale: ls.cacheStale.Load(),
	}
}

// Err returns the first ingest error observed (nil if none).
func (ls *LiveService) Err() error {
	ls.errMu.Lock()
	defer ls.errMu.Unlock()
	return ls.ingestErr
}

// Close drains both queues — queued feeds are applied, queued queries are
// answered — stops the pool and the ingester, and returns the first ingest
// error. Close is idempotent; Query and Feed fail with ErrLiveClosed
// afterwards.
func (ls *LiveService) Close() error {
	ls.sendMu.Lock()
	if !ls.closed {
		ls.closed = true
		close(ls.feed)
		close(ls.reqs)
	}
	ls.sendMu.Unlock()
	ls.ingestRun.Wait()
	ls.walkers.Wait()
	return ls.Err()
}
