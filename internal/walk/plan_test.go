package walk

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// TestShardPlanOverlayTotality pins the plan-v2 contract: ownership must
// stay total over the entire vertex-ID space under any overlay, exactly
// as the base block-cyclic map is — the PR-2 "owner index past the shard
// array" bug class must be unreachable no matter how blocks have been
// rebalanced or how far the live feed has grown the space.
func TestShardPlanOverlayTotality(t *testing.T) {
	plan := NewShardPlan(600, 4)
	var err error
	// Pile up overlays, including blocks far beyond the derived space
	// (growth can mint them) and a block moved twice.
	moves := []struct {
		block uint64
		to    int
	}{{0, 3}, {1, 2}, {7, 0}, {1 << 20, 1}, {0, 1}}
	epoch := uint64(0)
	for _, m := range moves {
		epoch++
		plan, err = plan.WithOverlay(m.block, m.to, epoch)
		if err != nil {
			t.Fatalf("WithOverlay(%d → %d): %v", m.block, m.to, err)
		}
	}
	if plan.Epoch != epoch {
		t.Fatalf("epoch %d, want %d", plan.Epoch, epoch)
	}

	r := xrand.New(7)
	probes := []graph.VertexID{0, 1, 599, 600, 601, 1<<31 - 1, 1 << 31, 4_000_000_000, ^graph.VertexID(0)}
	for i := 0; i < 20000; i++ {
		probes = append(probes, graph.VertexID(r.Uint64()))
	}
	for _, v := range probes {
		o := plan.Owner(v)
		if o < 0 || o >= plan.Shards {
			t.Fatalf("Owner(%d) = %d, out of range for %d shards", v, o, plan.Shards)
		}
		if plan.BlockOwner(plan.BlockOf(v)) != o {
			t.Fatalf("BlockOwner disagrees with Owner at %d", v)
		}
	}
	// The explicit moves landed.
	if got := plan.Owner(0); got != 1 {
		t.Fatalf("block 0 owner %d, want 1 (last move wins)", got)
	}
	lo, _ := plan.BlockRange(1 << 20)
	if got := plan.Owner(graph.VertexID(lo)); got != 1 {
		t.Fatalf("beyond-space block owner %d, want 1", got)
	}

	// The top block of the uint32 space must not wrap: its range covers
	// the topmost vertex IDs (hi = 2^32 is representable only as uint64).
	topV := ^graph.VertexID(0)
	topBlock := plan.BlockOf(topV)
	tlo, thi := plan.BlockRange(topBlock)
	if thi <= tlo {
		t.Fatalf("top block range wrapped: [%d, %d)", tlo, thi)
	}
	if uint64(topV) < tlo || uint64(topV) >= thi {
		t.Fatalf("top vertex %d outside its own block range [%d, %d)", topV, tlo, thi)
	}
}

// TestShardPlanOverlayValidation pins WithOverlay's guard rails: an
// overlay entry is the one mechanism that could break totality, so
// out-of-range owners and non-monotonic epochs must be impossible to
// install, and moving a block back home must erase its entry rather
// than pin a redundant one.
func TestShardPlanOverlayValidation(t *testing.T) {
	plan := NewShardPlan(100, 4)
	if _, err := plan.WithOverlay(2, 4, 1); err == nil {
		t.Fatal("owner == Shards accepted")
	}
	if _, err := plan.WithOverlay(2, -1, 1); err == nil {
		t.Fatal("negative owner accepted")
	}
	p1, err := plan.WithOverlay(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.WithOverlay(5, 1, 1); err == nil {
		t.Fatal("stale epoch accepted")
	}
	// The original value is untouched (plans are immutable values).
	if plan.Epoch != 0 || plan.Overlay != nil {
		t.Fatalf("receiver mutated: %+v", plan)
	}
	// Moving block 2 home again (base owner 2) erases the entry.
	p2, err := p1.WithOverlay(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Overlay != nil {
		t.Fatalf("home move left overlay %v", p2.Overlay)
	}
	if p2.Owner(graph.VertexID(2*p2.RangeSize)) != 2 {
		t.Fatal("home move did not restore base ownership")
	}
}

// TestVisitCounterGrowthWithOverlay replays the PR-2 regression shape
// through the overlay path: a walker tallying visits at vertices the
// live feed minted (beyond every pre-sized structure) while the plan
// carries an overlay must neither panic nor misroute.
func TestVisitCounterGrowthWithOverlay(t *testing.T) {
	plan := NewShardPlan(64, 4)
	plan, err := plan.WithOverlay(plan.BlockOf(1000), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	vc := newVisitCounter(64)
	for _, v := range []graph.VertexID{0, 63, 64, 999, 1000, 5000} {
		if o := plan.Owner(v); o < 0 || o >= plan.Shards {
			t.Fatalf("Owner(%d) out of range: %d", v, o)
		}
		vc.bump(v)
	}
	counts := vc.snapshot()
	if counts[5000] != 1 || counts[1000] != 1 {
		t.Fatal("grown visit tallies lost")
	}
}

// TestHelloOverlayGobRoundTrip pins the wire form of plan v2: a session
// Hello carrying a rebalanced plan's overlay must gob round-trip intact
// (the tcpgob fabric ships Hello as a frame, and a daemon reconstructs
// its plan from it).
func TestHelloOverlayGobRoundTrip(t *testing.T) {
	plan := NewShardPlan(600, 4)
	var err error
	for i, mv := range []struct {
		b  uint64
		to int
	}{{0, 3}, {9, 1}, {1 << 40, 2}} {
		plan, err = plan.WithOverlay(mv.b, mv.to, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
	}
	h := fabric.Hello{
		Shards: 4, Shard: 2,
		RangeSize:   plan.RangeSize,
		NumVertices: 600,
		PlanEpoch:   plan.Epoch,
		Overlay:     plan.Overlay,
		Session:     42,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&h); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got fabric.Hello
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.PlanEpoch != plan.Epoch || len(got.Overlay) != len(plan.Overlay) {
		t.Fatalf("overlay lost: %+v", got)
	}
	rebuilt := ShardPlan{Shards: got.Shards, RangeSize: got.RangeSize, Epoch: got.PlanEpoch, Overlay: got.Overlay}
	for b, want := range plan.Overlay {
		if rebuilt.BlockOwner(b) != want {
			t.Fatalf("block %d owner %d after round-trip, want %d", b, rebuilt.BlockOwner(b), want)
		}
	}
	// A vertex far past the space still resolves in range.
	if o := rebuilt.Owner(4_000_000_000); o < 0 || o >= rebuilt.Shards {
		t.Fatalf("round-tripped plan lost totality: owner %d", o)
	}
}
