package walk

// Long-run validation against an exact oracle: on a strongly connected
// weighted graph, the visit frequencies of long biased walks converge to
// the stationary distribution π of the transition matrix P (π = πP),
// which we compute independently by power iteration. This checks the whole
// stack — bias factorization, group adaptation, alias tables, walker
// scheduling — against linear algebra rather than against itself.

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// stationary computes π with π = πP by power iteration over the exact
// transition probabilities of the engine's adjacency.
func stationary(t *testing.T, s *core.Sampler, n int) []float64 {
	t.Helper()
	// Build P rows from the sampler's encoded distributions.
	rows := make([]map[int32]float64, n)
	dsts := make([][]graph.VertexID, n)
	for u := 0; u < n; u++ {
		rows[u] = s.VertexProbabilities(graph.VertexID(u))
		dsts[u] = make([]graph.VertexID, 0, len(rows[u]))
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < 2000; iter++ {
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			for slot, p := range rows[u] {
				next[s.Neighbor(graph.VertexID(u), slot)] += pi[u] * p
			}
		}
		diff := 0.0
		for i := range pi {
			diff += math.Abs(next[i] - pi[i])
		}
		copy(pi, next)
		if diff < 1e-12 {
			break
		}
	}
	return pi
}

func TestDeepWalkConvergesToStationary(t *testing.T) {
	// A strongly connected biased graph: ring + random chords, weights
	// 1..16 (so the radix structure has real multi-bit groups).
	const n = 24
	s, err := core.New(n, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(12)
	for u := 0; u < n; u++ {
		if err := s.Insert(graph.VertexID(u), graph.VertexID((u+1)%n), uint64(1+r.Intn(16))); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			v := graph.VertexID(r.Intn(n))
			if int(v) != u {
				if err := s.Insert(graph.VertexID(u), v, uint64(1+r.Intn(16))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	pi := stationary(t, s, n)

	// One long walk per vertex; pool visit counts.
	res := DeepWalk(s, Config{Length: 30000, Seed: 77, CountVisits: true})
	var total int64
	for _, c := range res.Visits {
		total += c
	}
	maxErr := 0.0
	for v := 0; v < n; v++ {
		emp := float64(res.Visits[v]) / float64(total)
		if e := math.Abs(emp - pi[v]); e > maxErr {
			maxErr = e
		}
	}
	// With ~720k pooled steps, per-state error should be well under 1%.
	if maxErr > 0.01 {
		t.Errorf("max |empirical - stationary| = %v", maxErr)
	}

	// Repeat after dynamic churn: delete and reinsert chords, then
	// convergence must hold for the *new* chain.
	for u := 0; u < n; u += 2 {
		for s.Degree(graph.VertexID(u)) > 1 {
			dst := s.Neighbor(graph.VertexID(u), 1)
			if err := s.Delete(graph.VertexID(u), dst); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Insert(graph.VertexID(u), graph.VertexID((u+n/2)%n), uint64(1+r.Intn(32))); err != nil {
			t.Fatal(err)
		}
	}
	pi2 := stationary(t, s, n)
	res2 := DeepWalk(s, Config{Length: 30000, Seed: 99, CountVisits: true})
	total = 0
	for _, c := range res2.Visits {
		total += c
	}
	maxErr = 0
	for v := 0; v < n; v++ {
		emp := float64(res2.Visits[v]) / float64(total)
		if e := math.Abs(emp - pi2[v]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.01 {
		t.Errorf("post-churn max |empirical - stationary| = %v", maxErr)
	}
}
