package walk

import (
	"fmt"
	"runtime"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/inproc"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/rebalance"
)

// ShardedLiveService is the multi-lock-domain serving runtime: N per-shard
// live engines, each owning the vertices of one ShardPlan slot, behind a
// single Query/Feed front. Where LiveService puts every walker and the
// ingest loop into one engine's lock domain, the sharded service gives each
// shard its own engine, its own walker crew, and its own ingester —
// writers on shard A never contend with walkers on shard B.
//
// The execution model is the supplement §9.1 topology made live:
//
//   - Walkers, not sampling structures, move. A query walk starts on the
//     shard owning its start vertex, advances while it remains on owned
//     vertices, and is handed to the owning shard the moment it crosses a
//     partition boundary ("transferring walkers has the light burden of
//     communication").
//   - Feed batches pass through a single router that splits them by
//     Owner(Src) and publishes the pieces on per-shard ingest streams. One
//     router plus one ingester per shard keeps per-source order: all of a
//     source's updates land on one stream, in feed order.
//   - Ownership is total over the vertex-ID space (ShardPlan is
//     block-cyclic), so engines growing their vertex space under the feed
//     never produce an out-of-range owner. A walker stepping onto a vertex
//     the owner's engine has not yet sized simply observes it edgeless —
//     the same dead-end the unsharded engine reports before the inserting
//     batch lands.
//
// Since the shard-fabric extraction, the service is literally a
// coordinator plus N shard nodes wired over the in-process fabric
// (internal/fabric/inproc): all cross-shard communication — walker
// hand-offs, routed update publishes, barriers, retires — flows through
// fabric ports, and the identical coordinator/node logic runs across
// processes over the TCP fabric (RemoteService, `bingowalk -shard-serve`).
// Walker delivery is unbounded and retires never block, so circular
// forwarding between shards cannot deadlock. Close drains the feed, waits
// for in-flight walkers, and stops the crews.
type ShardedLiveService struct {
	engines []LiveEngine
	nodes   []*shardNode
	coord   *coordinator
	fab     *inproc.Fabric // retained so read-coordinators can attach
	plan    ShardPlan
	cfg     ShardedLiveConfig
}

// ShardedLiveConfig parameterizes a ShardedLiveService.
type ShardedLiveConfig struct {
	// WalkersPerShard is each shard's walker-crew size (default
	// max(1, GOMAXPROCS / shards)).
	WalkersPerShard int
	// QueueDepth is the buffer depth of the feed and per-shard ingest
	// queues (default 256). A full feed queue applies backpressure.
	QueueDepth int
	// WalkLength is the default walk length for Query calls that pass
	// length <= 0 (default 80).
	WalkLength int
	// Seed makes the per-query RNG streams reproducible.
	Seed uint64
	// Cache configures the hub-view caches of every shard node (zero
	// value = enabled with defaults; Cache.Off disables). It takes
	// effect only when the shard engines support versioned views
	// (concurrent.Engine does).
	Cache fabric.CacheSpec
	// Kernel selects the shard crews' stepping-kernel mode (zero value =
	// auto): sparse per-walker stepping, dense batch draws, or the
	// density-adaptive switch.
	Kernel KernelMode
	// Rebalance configures the heat-aware shard rebalancer (off unless
	// Rebalance.On). It requires engines with row extraction
	// (concurrent.Engine); the in-process service validates this at
	// construction.
	Rebalance rebalance.Options
	// CreditWindow bounds the per-shard in-flight (routed but not yet
	// applied) update events. The router stalls — and Feed with it —
	// while a shard's outstanding window is full, turning the daemons'
	// apply rate into end-to-end backpressure instead of unbounded
	// daemon-side queue growth. 0 selects the default (16384); negative
	// disables the window (the pre-credit behavior).
	CreditWindow int
}

// DefaultCreditWindow is the per-shard credit window when the config
// leaves CreditWindow zero.
const DefaultCreditWindow = 16384

func (c ShardedLiveConfig) withDefaults(shards int) ShardedLiveConfig {
	if c.WalkersPerShard <= 0 {
		c.WalkersPerShard = runtime.GOMAXPROCS(0) / shards
		if c.WalkersPerShard < 1 {
			c.WalkersPerShard = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.WalkLength <= 0 {
		c.WalkLength = 80
	}
	if c.CreditWindow == 0 {
		c.CreditWindow = DefaultCreditWindow
	}
	return c
}

// ShardedLiveStats snapshots the service counters. Steps, Transfers, and
// Local cover query and bulk walks alike; Batches counts routed feed
// batches, Updates successfully applied events, Dropped failed sub-batches
// (a feed batch splits into at most one sub-batch per shard). Cache
// reports the hub-view cache layers: Cache.RemoteHits are steps at
// non-owned vertices served from a peer's shipped view instead of a
// walker hand-off.
type ShardedLiveStats struct {
	Queries, Steps            int64
	Batches, Updates, Dropped int64
	Transfers, Local          int64
	Cache                     fabric.CacheTallies
	// ShardSteps is the per-shard split of Steps (indexed by shard) — the
	// load-share view the rebalancer acts on. In-process services read it
	// live; remote services as of the last Sync.
	ShardSteps []int64
	// Corpus tallies the standing-walk-corpus maintenance riding on this
	// service, when one is attached (see CorpusService.ShardedStats; the
	// raw service leaves it zero).
	Corpus fabric.CorpusTallies
	// Rebalance tallies the heat-aware rebalancer's activity.
	Rebalance RebalanceTallies
	// Failover tallies replica-failover activity (replicated sessions).
	Failover FailoverTallies
	// Backpressure reports the credit window's activity.
	Backpressure BackpressureTallies
}

// FailoverTallies reports a replicated session's failover activity.
type FailoverTallies struct {
	// Deaths counts shard-link death events; Reroutes walkers re-routed
	// to a replica after a forward hit a dead link; Relaunches walker
	// clones relaunched because their originals may have been lost inside
	// a dead daemon.
	Deaths, Reroutes, Relaunches int64
	// Rejoins counts completed rejoin/failback cycles; CopiedBlocks the
	// snapshot blocks shipped while re-priming rejoined shards.
	Rejoins, CopiedBlocks int64
}

// BackpressureTallies reports the credit window's observed pressure.
type BackpressureTallies struct {
	// Window is the configured per-shard credit window (0 = disabled).
	Window int64
	// MaxOutstanding is the largest admitted per-shard in-flight event
	// count; Stalled is the total time the router spent blocked waiting
	// for credits (the time Feed callers were held back).
	MaxOutstanding int64
	Stalled        time.Duration
}

// RebalanceTallies reports the rebalancer's cumulative activity.
type RebalanceTallies struct {
	// Migrations counts completed block migrations; MovedEdges the edges
	// they shipped.
	Migrations, MovedEdges int64
	// PlanEpoch is the live plan's overlay version (0 = never
	// rebalanced).
	PlanEpoch uint64
}

// TransferRatio is walker hand-offs per sampled hop — the share of walk
// progress that cost a cross-shard transfer. Every hop is served either
// by the owning engine (Local) or by a cached remote view
// (Cache.RemoteHits), so Steps = Local + RemoteHits and hand-offs the
// remote cache absorbed pull the ratio down.
func (s ShardedLiveStats) TransferRatio() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.Transfers) / float64(s.Steps)
}

// validateReplication rejects plan/config combinations replication
// cannot support: the rebalancing overlay (its redundancy-erasure
// conflicts with replica groups — the two are mutually exclusive) and
// shard counts beyond the 64-bit dead-mask.
func validateReplication(plan ShardPlan, cfg ShardedLiveConfig) error {
	if plan.Replicas <= 1 {
		return nil
	}
	if cfg.Rebalance.On {
		return fmt.Errorf("walk: replication (factor %d) and heat rebalancing are mutually exclusive", plan.Replicas)
	}
	if plan.Shards > 64 {
		return fmt.Errorf("walk: replication supports at most 64 shards (dead-mask width), got %d", plan.Shards)
	}
	return nil
}

// NewShardedLiveService starts the shard crews, the ingest router, and one
// ingester per shard, wired over the in-process shard fabric. engines[i]
// must already hold exactly the rows of the vertices plan assigns to shard
// i (see ShardPlan.PartitionCSR) and be safe for concurrent sampling and
// updating (e.g. concurrent.Engine). The service takes ownership of the
// engines.
func NewShardedLiveService(engines []LiveEngine, plan ShardPlan, cfg ShardedLiveConfig) (*ShardedLiveService, error) {
	if len(engines) == 0 || len(engines) != plan.Shards {
		return nil, fmt.Errorf("walk: %d shard engines for a %d-shard plan", len(engines), plan.Shards)
	}
	cfg = cfg.withDefaults(plan.Shards)
	if cfg.Rebalance.On {
		for i, e := range engines {
			if _, ok := e.(RangeExtractor); !ok {
				return nil, fmt.Errorf("walk: rebalancing needs row extraction, which shard %d's engine (%T) lacks", i, e)
			}
		}
	}
	if err := validateReplication(plan, cfg); err != nil {
		return nil, err
	}
	if plan.Replicas > 1 {
		for i, e := range engines {
			if _, ok := e.(RangeSnapshotter); !ok {
				return nil, fmt.Errorf("walk: replication needs row snapshots, which shard %d's engine (%T) lacks", i, e)
			}
		}
	}
	fab := inproc.New(plan.Shards, cfg.QueueDepth)
	s := &ShardedLiveService{
		engines: engines,
		nodes:   make([]*shardNode, plan.Shards),
		fab:     fab,
		plan:    plan,
		cfg:     cfg,
	}
	for i := range engines {
		s.nodes[i] = startShardNode(engines[i], plan, i, fab.ShardPort(i), cfg.WalkersPerShard, cfg.Cache, cfg.Kernel, false)
	}
	s.coord = newCoordinator(fab.CoordPort(), plan, cfg)
	s.coord.noteVerts(int64(s.NumVertices()))
	return s, nil
}

// Shards returns the partition count.
func (s *ShardedLiveService) Shards() int { return s.plan.Shards }

// Plan returns the partition geometry.
func (s *ShardedLiveService) Plan() ShardPlan { return s.plan }

// NumVertices returns the widest vertex space across the shard engines —
// the service-level ID space (shards grow independently under the feed).
func (s *ShardedLiveService) NumVertices() int {
	n := 0
	for _, e := range s.engines {
		if v := e.NumVertices(); v > n {
			n = v
		}
	}
	return n
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) and returns the visited path, start included. The
// walk begins on the shard owning start and follows the walker-transfer
// topology across shards; it blocks until the walker retires.
func (s *ShardedLiveService) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	return s.coord.Query(start, length)
}

// Feed enqueues a batch for routed ingestion. It blocks when the feed
// queue is full (backpressure) and returns ErrLiveClosed after Close. The
// batch slice is owned by the service once accepted. Per-source ordering
// across Feed calls is preserved shard-side as long as the caller submits
// each source's updates in order (the LiveService contract, unchanged).
func (s *ShardedLiveService) Feed(ups []graph.Update) error {
	return s.coord.Feed(ups)
}

// Sync blocks until every feed batch accepted before the call has been
// applied (or dropped) on its shards, then reports the first ingest error.
// It is the barrier between "fed" and "visible to walkers".
func (s *ShardedLiveService) Sync() error {
	bw, err := s.coord.barrier(false, false)
	if err != nil {
		return err
	}
	if bw.err != nil {
		return bw.err
	}
	return s.Err()
}

// DeepWalk runs a bulk first-order walk through the sharded runtime while
// the feed keeps ingesting: every start becomes a transferable walker with
// its own RNG stream. It returns the run's own result and transfer stats
// (service counters accumulate them too).
func (s *ShardedLiveService) DeepWalk(cfg Config) (Result, TransferStats, error) {
	return s.coord.DeepWalk(cfg, s.NumVertices())
}

// Stats returns a snapshot of the service counters. Walk-side counters
// (Steps, Transfers, Local) are read live from the shard nodes; Queries
// and Batches from the coordinator.
func (s *ShardedLiveService) Stats() ShardedLiveStats {
	st := ShardedLiveStats{
		Queries:    s.coord.queries.Load(),
		Batches:    s.coord.batches.Load(),
		ShardSteps: make([]int64, len(s.nodes)),
	}
	for i, n := range s.nodes {
		st.ShardSteps[i] = n.steps.Load()
		st.Steps += st.ShardSteps[i]
		st.Transfers += n.transfers.Load()
		st.Local += n.local.Load()
		st.Updates += n.updates.Load()
		st.Dropped += n.dropped.Load()
		st.Cache.Add(n.cacheTallies())
	}
	st.Rebalance = s.coord.rebalanceTallies()
	st.Failover = s.coord.failoverTallies()
	st.Backpressure.Window = s.coord.window
	st.Backpressure.MaxOutstanding, st.Backpressure.Stalled = s.coord.backpressureTallies()
	return st
}

// Plan returns the live ownership plan (overlay included); the Plan
// method above returns the construction-time geometry.
func (s *ShardedLiveService) LivePlan() ShardPlan { return s.coord.planNow() }

// AppliedStamp is the sum of the shards' cumulative applied-update
// stamps from the latest barrier acks — the watermark evidence the
// standing-walk corpus's bounded-staleness check reads. Exact as of the
// last Sync.
func (s *ShardedLiveService) AppliedStamp() int64 { return s.coord.appliedStamp() }

// AttachReader attaches a read-coordinator to this service's shard set
// over the in-process fabric: the returned ReaderService serves Query
// and DeepWalk against the same shard engines while this service (the
// write session) keeps exclusive ownership of ingest, credit flow, and
// rebalancing. Any number of readers may attach; each detaches
// independently with Close, and all fail over to ErrFabricDown when the
// write session closes.
func (s *ShardedLiveService) AttachReader(cfg ReaderConfig) (*ReaderService, error) {
	if cfg.WalkLength <= 0 {
		cfg.WalkLength = s.cfg.WalkLength
	}
	return NewReaderService(s.fab.AttachReader(), cfg)
}

// Err returns the first ingest error observed (nil if none).
func (s *ShardedLiveService) Err() error {
	for _, n := range s.nodes {
		if err := n.firstErr(); err != nil {
			return err
		}
	}
	return s.coord.Err()
}

// Close drains the feed (queued batches are applied), waits for every
// in-flight walker to retire, stops the crews and ingesters, and returns
// the first ingest error. Close is idempotent; Query, Feed, Sync, and
// DeepWalk fail with ErrLiveClosed afterwards.
func (s *ShardedLiveService) Close() error {
	s.coord.Close()
	for _, n := range s.nodes {
		n.wait()
	}
	return s.Err()
}
