package walk

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ShardedLiveService is the multi-lock-domain serving runtime: N per-shard
// live engines, each owning the vertices of one ShardPlan slot, behind a
// single Query/Feed front. Where LiveService puts every walker and the
// ingest loop into one engine's lock domain, the sharded service gives each
// shard its own engine, its own walker crew, and its own ingester —
// writers on shard A never contend with walkers on shard B.
//
// The execution model is the supplement §9.1 topology made live:
//
//   - Walkers, not sampling structures, move. A query walk starts on the
//     shard owning its start vertex, advances while it remains on owned
//     vertices, and is handed to the owning shard's inbox the moment it
//     crosses a partition boundary ("transferring walkers has the light
//     burden of communication").
//   - Feed batches pass through a single router that splits them by
//     Owner(Src) and enqueues the pieces on per-shard ingest queues. One
//     router plus one ingester per shard keeps per-source order: all of a
//     source's updates land on one queue, in feed order.
//   - Ownership is total over the vertex-ID space (ShardPlan is
//     block-cyclic), so engines growing their vertex space under the feed
//     never produce an out-of-range owner. A walker stepping onto a vertex
//     the owner's engine has not yet sized simply observes it edgeless —
//     the same dead-end the unsharded engine reports before the inserting
//     batch lands.
//
// Inboxes are unbounded and replies are buffered, so circular forwarding
// between shards cannot deadlock. Close drains the feed, waits for
// in-flight walkers, and stops the crews.
type ShardedLiveService struct {
	engines []LiveEngine
	plan    ShardPlan
	cfg     ShardedLiveConfig

	feed    chan shardBatch
	ingests []chan shardBatch
	inboxes []*inbox[*liveWalker]

	master *xrand.RNG // Split-only after construction (reads, no state advance)
	seq    atomic.Uint64

	// sendMu serializes Query/Feed/Sync senders against Close, exactly as
	// in LiveService: senders hold it in read mode across their enqueue.
	sendMu sync.RWMutex
	closed bool

	pending sync.WaitGroup // in-flight walkers (queries and bulk)
	crews   sync.WaitGroup // shard walker goroutines
	routing sync.WaitGroup // router + per-shard ingesters

	errMu     sync.Mutex
	ingestErr error

	queries, steps, batches, updates, dropped atomic.Int64
	transfers, local                          atomic.Int64
}

// ShardedLiveConfig parameterizes a ShardedLiveService.
type ShardedLiveConfig struct {
	// WalkersPerShard is each shard's walker-crew size (default
	// max(1, GOMAXPROCS / shards)).
	WalkersPerShard int
	// QueueDepth is the buffer depth of the feed and per-shard ingest
	// queues (default 256). A full feed queue applies backpressure.
	QueueDepth int
	// WalkLength is the default walk length for Query calls that pass
	// length <= 0 (default 80).
	WalkLength int
	// Seed makes the per-query RNG streams reproducible.
	Seed uint64
}

func (c ShardedLiveConfig) withDefaults(shards int) ShardedLiveConfig {
	if c.WalkersPerShard <= 0 {
		c.WalkersPerShard = runtime.GOMAXPROCS(0) / shards
		if c.WalkersPerShard < 1 {
			c.WalkersPerShard = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.WalkLength <= 0 {
		c.WalkLength = 80
	}
	return c
}

// ShardedLiveStats snapshots the service counters. Steps, Transfers, and
// Local cover query and bulk walks alike; Batches counts routed feed
// batches, Updates successfully applied events, Dropped failed sub-batches
// (a feed batch splits into at most one sub-batch per shard).
type ShardedLiveStats struct {
	Queries, Steps            int64
	Batches, Updates, Dropped int64
	Transfers, Local          int64
}

// TransferRatio is the share of walk steps that crossed a shard boundary.
func (s ShardedLiveStats) TransferRatio() float64 {
	if s.Transfers+s.Local == 0 {
		return 0
	}
	return float64(s.Transfers) / float64(s.Transfers+s.Local)
}

// shardBatch is a routed feed element: a sub-batch of updates, or a sync
// barrier (ups nil, ack non-nil) that every ingester acknowledges.
type shardBatch struct {
	ups []graph.Update
	ack *sync.WaitGroup
}

// liveWalker is the walk state handed between shard crews. Exactly one
// crew owns it at a time; the inbox hand-off publishes it to the next.
type liveWalker struct {
	cur  graph.VertexID
	left int // hops remaining
	r    *xrand.RNG

	path  []graph.VertexID      // accumulated visits (queries)
	reply chan []graph.VertexID // non-nil for queries
	bulk  *bulkRun              // non-nil for bulk walks
	steps int64                 // hops taken so far (bulk accounting)
}

// bulkRun aggregates one DeepWalk invocation across its walkers.
type bulkRun struct {
	steps, transfers, local atomic.Int64
	visits                  *visitCounter
	wg                      sync.WaitGroup
}

// NewShardedLiveService starts the shard crews, the ingest router, and one
// ingester per shard. engines[i] must already hold exactly the rows of the
// vertices plan assigns to shard i (see ShardPlan.PartitionCSR) and be
// safe for concurrent sampling and updating (e.g. concurrent.Engine).
// The service takes ownership of the engines.
func NewShardedLiveService(engines []LiveEngine, plan ShardPlan, cfg ShardedLiveConfig) (*ShardedLiveService, error) {
	if len(engines) == 0 || len(engines) != plan.Shards {
		return nil, fmt.Errorf("walk: %d shard engines for a %d-shard plan", len(engines), plan.Shards)
	}
	cfg = cfg.withDefaults(plan.Shards)
	s := &ShardedLiveService{
		engines: engines,
		plan:    plan,
		cfg:     cfg,
		feed:    make(chan shardBatch, cfg.QueueDepth),
		ingests: make([]chan shardBatch, plan.Shards),
		inboxes: make([]*inbox[*liveWalker], plan.Shards),
		master:  xrand.New(cfg.Seed),
	}
	for i := 0; i < plan.Shards; i++ {
		s.ingests[i] = make(chan shardBatch, cfg.QueueDepth)
		s.inboxes[i] = newInbox[*liveWalker]()
		for w := 0; w < cfg.WalkersPerShard; w++ {
			s.crews.Add(1)
			go s.crewLoop(i)
		}
		s.routing.Add(1)
		go s.ingestLoop(i)
	}
	s.routing.Add(1)
	go s.routerLoop()
	return s, nil
}

// Shards returns the partition count.
func (s *ShardedLiveService) Shards() int { return s.plan.Shards }

// Plan returns the partition geometry.
func (s *ShardedLiveService) Plan() ShardPlan { return s.plan }

// NumVertices returns the widest vertex space across the shard engines —
// the service-level ID space (shards grow independently under the feed).
func (s *ShardedLiveService) NumVertices() int {
	n := 0
	for _, e := range s.engines {
		if v := e.NumVertices(); v > n {
			n = v
		}
	}
	return n
}

// crewLoop is one walker of a shard's crew: it pops walkers from the
// shard's inbox, advances them while they stay on owned vertices, and
// forwards them on boundary crossings.
func (s *ShardedLiveService) crewLoop(shard int) {
	defer s.crews.Done()
	e := s.engines[shard]
	for {
		wk, ok := s.inboxes[shard].pop()
		if !ok {
			return
		}
		var segSteps, segTransfers, segLocal int64
		forwarded := false
		for wk.left > 0 {
			next, sampled := e.Sample(wk.cur, wk.r)
			if !sampled {
				break
			}
			segSteps++
			wk.steps++
			wk.left--
			wk.cur = next
			if wk.path != nil {
				wk.path = append(wk.path, next)
			}
			if wk.bulk != nil && wk.bulk.visits != nil {
				wk.bulk.visits.bump(next)
			}
			// Forward only walkers with hops left — a finished walker
			// retires wherever its last hop landed.
			if owner := s.plan.Owner(next); owner != shard && wk.left > 0 {
				segTransfers++
				if wk.bulk != nil {
					wk.bulk.transfers.Add(1)
				}
				s.inboxes[owner].push(wk)
				forwarded = true
				break
			}
			segLocal++
			if wk.bulk != nil {
				wk.bulk.local.Add(1)
			}
		}
		s.steps.Add(segSteps)
		s.transfers.Add(segTransfers)
		s.local.Add(segLocal)
		if forwarded {
			continue
		}
		if wk.reply != nil {
			s.queries.Add(1)
			wk.reply <- wk.path
		}
		if wk.bulk != nil {
			wk.bulk.steps.Add(wk.steps)
			wk.bulk.wg.Done()
		}
		s.pending.Done()
	}
}

// routerLoop splits each feed batch by owner shard, preserving per-source
// order (single router, FIFO per-shard queues, one ingester each).
func (s *ShardedLiveService) routerLoop() {
	defer s.routing.Done()
	for b := range s.feed {
		if b.ack != nil {
			for i := range s.ingests {
				s.ingests[i] <- b
			}
			continue
		}
		s.batches.Add(1)
		parts := make([][]graph.Update, s.plan.Shards)
		for _, up := range b.ups {
			o := s.plan.Owner(up.Src)
			parts[o] = append(parts[o], up)
		}
		for i, p := range parts {
			if len(p) > 0 {
				s.ingests[i] <- shardBatch{ups: p}
			}
		}
	}
	for i := range s.ingests {
		close(s.ingests[i])
	}
}

// ingestLoop applies one shard's routed sub-batches in arrival order.
func (s *ShardedLiveService) ingestLoop(shard int) {
	defer s.routing.Done()
	e := s.engines[shard]
	for b := range s.ingests[shard] {
		if b.ack != nil {
			b.ack.Done()
			continue
		}
		if err := e.ApplyUpdates(b.ups); err != nil {
			s.dropped.Add(1)
			s.errMu.Lock()
			if s.ingestErr == nil {
				s.ingestErr = err
			}
			s.errMu.Unlock()
			continue
		}
		s.updates.Add(int64(len(b.ups)))
	}
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) and returns the visited path, start included. The
// walk begins on the shard owning start and follows the walker-transfer
// topology across shards; it blocks until the walker retires.
func (s *ShardedLiveService) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	if length <= 0 {
		length = s.cfg.WalkLength
	}
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	path := make([]graph.VertexID, 1, length+1)
	path[0] = start
	wk := &liveWalker{
		cur:   start,
		left:  length,
		r:     s.master.Split(s.seq.Add(1)),
		path:  path,
		reply: make(chan []graph.VertexID, 1),
	}
	s.pending.Add(1)
	s.inboxes[s.plan.Owner(start)].push(wk)
	s.sendMu.RUnlock()
	return <-wk.reply, nil
}

// Feed enqueues a batch for routed ingestion. It blocks when the feed
// queue is full (backpressure) and returns ErrLiveClosed after Close. The
// batch slice is owned by the service once accepted. Per-source ordering
// across Feed calls is preserved shard-side as long as the caller submits
// each source's updates in order (the LiveService contract, unchanged).
func (s *ShardedLiveService) Feed(ups []graph.Update) error {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return ErrLiveClosed
	}
	s.feed <- shardBatch{ups: ups}
	return nil
}

// Sync blocks until every feed batch accepted before the call has been
// applied (or dropped) on its shards, then reports the first ingest error.
// It is the barrier between "fed" and "visible to walkers".
func (s *ShardedLiveService) Sync() error {
	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		return ErrLiveClosed
	}
	var ack sync.WaitGroup
	ack.Add(s.plan.Shards)
	s.feed <- shardBatch{ack: &ack}
	s.sendMu.RUnlock()
	ack.Wait()
	return s.Err()
}

// DeepWalk runs a bulk first-order walk through the sharded runtime while
// the feed keeps ingesting: every start becomes a transferable walker with
// its own RNG stream. It returns the run's own result and transfer stats
// (service counters accumulate them too).
func (s *ShardedLiveService) DeepWalk(cfg Config) (Result, TransferStats, error) {
	cfg = cfg.withDefaults(s.NumVertices())
	starts := cfg.Starts
	if starts == nil {
		n := s.NumVertices()
		starts = make([]graph.VertexID, n)
		for i := range starts {
			starts[i] = graph.VertexID(i)
		}
	}
	run := &bulkRun{}
	if cfg.CountVisits {
		run.visits = newVisitCounter(s.NumVertices())
	}
	bulkMaster := xrand.New(cfg.Seed)

	s.sendMu.RLock()
	if s.closed {
		s.sendMu.RUnlock()
		return Result{}, TransferStats{}, ErrLiveClosed
	}
	run.wg.Add(len(starts))
	s.pending.Add(len(starts))
	for i, st := range starts {
		if run.visits != nil {
			run.visits.bump(st)
		}
		s.inboxes[s.plan.Owner(st)].push(&liveWalker{
			cur:  st,
			left: cfg.Length,
			r:    bulkMaster.Split(uint64(i)),
			bulk: run,
		})
	}
	s.sendMu.RUnlock()
	run.wg.Wait()

	res := Result{Walkers: len(starts), Steps: run.steps.Load()}
	if run.visits != nil {
		res.Visits = run.visits.snapshot()
	}
	return res, TransferStats{Transfers: run.transfers.Load(), Local: run.local.Load()}, nil
}

// Stats returns a snapshot of the service counters.
func (s *ShardedLiveService) Stats() ShardedLiveStats {
	return ShardedLiveStats{
		Queries:   s.queries.Load(),
		Steps:     s.steps.Load(),
		Batches:   s.batches.Load(),
		Updates:   s.updates.Load(),
		Dropped:   s.dropped.Load(),
		Transfers: s.transfers.Load(),
		Local:     s.local.Load(),
	}
}

// Err returns the first ingest error observed (nil if none).
func (s *ShardedLiveService) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.ingestErr
}

// Close drains the feed (queued batches are applied), waits for every
// in-flight walker to retire, stops the crews and ingesters, and returns
// the first ingest error. Close is idempotent; Query, Feed, Sync, and
// DeepWalk fail with ErrLiveClosed afterwards.
func (s *ShardedLiveService) Close() error {
	s.sendMu.Lock()
	first := !s.closed
	if first {
		s.closed = true
		close(s.feed)
	}
	s.sendMu.Unlock()
	if first {
		s.routing.Wait() // router + ingesters drained
		s.pending.Wait() // every accepted walker retired
		for _, b := range s.inboxes {
			b.close()
		}
	}
	s.crews.Wait()
	return s.Err()
}
