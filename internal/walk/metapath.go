package walk

import (
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// MetaPath implements metapath-guided second-order walks (paper §7.3 lists
// Metapath with node2vec among the second-order algorithms handled by the
// KnightKing rejection approach the engine adopts): the walker follows a
// cyclic label pattern over vertex types, e.g. author→paper→venue→paper→
// author in a bibliographic graph.
//
// At hop i the walker at a pattern[i mod n]-labeled vertex must move to a
// neighbor labeled pattern[(i+1) mod n]. The transition is sampled by
// rejection against the static biased distribution: draw a candidate,
// accept iff its label matches (a binary acceptance factor). After
// metaPathRejectionCap consecutive misses the remaining matching mass is
// treated as negligible and the walk ends — the bounded-rejection analogue
// of a dead end.
const metaPathRejectionCap = 64

// Labeling assigns each vertex a type label.
type Labeling func(graph.VertexID) uint8

// MetaPath runs metapath walks from every configured start whose label
// matches pattern[0]; walkers on mismatched starts end immediately with
// zero steps. pattern must be non-empty.
func MetaPath(e Engine, labels Labeling, pattern []uint8, cfg Config) Result {
	if len(pattern) == 0 {
		panic("walk: empty metapath pattern")
	}
	cfg = cfg.withDefaults(e.NumVertices())
	return runParallel(e, cfg, func(start graph.VertexID, r *xrand.RNG, visits []int64) int64 {
		if labels(start) != pattern[0] {
			return 0
		}
		cur := start
		bump(visits, cur)
		var steps int64
		for hop := 0; hop < cfg.Length; hop++ {
			want := pattern[(hop+1)%len(pattern)]
			var next graph.VertexID
			found := false
			for round := 0; round < metaPathRejectionCap; round++ {
				v, ok := e.Sample(cur, r)
				if !ok {
					return steps
				}
				if labels(v) == want {
					next = v
					found = true
					break
				}
			}
			if !found {
				return steps
			}
			steps++
			cur = next
			bump(visits, cur)
		}
		return steps
	})
}
