package walk

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ShardPlan fixes the 1-D partition geometry of a sharded run: vertices
// are assigned to shards in contiguous blocks of RangeSize, block-cyclic.
// For the vertex space the plan was derived from, block-cyclic assignment
// coincides with the classic contiguous split (vertex v in range
// [i·RangeSize, (i+1)·RangeSize) belongs to shard i); beyond it the blocks
// wrap around, so ownership is *total* over the entire uint32 ID space.
//
// Totality is the load-bearing property under live growth: a dynamic
// engine grows its vertex space whenever an update references an unseen
// ID, and a walker can step onto such a vertex mid-walk. A plan frozen to
// "owner = v / RangeSize" would then yield an owner index ≥ Shards and
// index out of range; the block-cyclic wrap instead distributes every
// future vertex across the existing shards in balanced blocks, without
// ever reassigning a vertex the plan already placed.
//
// Plan v2 layers a versioned *ownership overlay* on the block-cyclic
// base: Overlay maps individual block indices to owners the rebalancer
// chose, and Epoch counts the flips. The base map stays total over the
// whole ID space — an overlay can only redirect a block to another
// existing shard (WithOverlay enforces the range), never un-own one — so
// totality survives any overlay combined with any amount of growth.
// Plans are immutable values: WithOverlay returns a new plan with a
// fresh map, so a plan captured by a walker crew or a wire frame never
// mutates underneath its reader; versioned consumers swap whole plans
// and compare Epoch.
type ShardPlan struct {
	// Shards is the partition count (≥ 1).
	Shards int
	// RangeSize is the contiguous block length (≥ 1).
	RangeSize int
	// Epoch versions the ownership overlay: 0 is the pure block-cyclic
	// base plan, each committed migration increments it.
	Epoch uint64
	// Overlay maps block indices to owners that differ from the
	// block-cyclic base (nil = no rebalancing has happened). Treated as
	// immutable: never written after the plan value is constructed.
	Overlay map[uint64]int
	// Replicas is the block replication factor (plan v3). 0 and 1 both
	// mean "no replication". With Replicas = R > 1, block b is held by
	// the R consecutive shards starting at its base owner — the replica
	// group group(b) = {(b%Shards + k) % Shards : k < R} — and every
	// routed update for b is published to every live group member, so
	// followers replay the identical per-source stream the primary does.
	// Replication composes with the dead-mask, not with the rebalancing
	// overlay: a replicated plan keeps Overlay nil (the service layer
	// enforces the exclusion).
	Replicas int
	// DeadMask is the liveness bit-set (bit i = shard i presumed dead),
	// versioned by Epoch like the overlay. Ownership chains through it:
	// a dead base owner's blocks are served by the first live member of
	// each block's replica group. The uint64 width caps replicated plans
	// at 64 shards — ample for the process-per-shard topology and the
	// cheapest value-semantics representation (plans stay copyable
	// immutable values).
	DeadMask uint64
}

// NewShardPlan derives the partition geometry for a vertex space of
// numVertices split shards ways.
func NewShardPlan(numVertices, shards int) ShardPlan {
	if shards < 1 {
		shards = 1
	}
	rangeSize := (numVertices + shards - 1) / shards
	if rangeSize == 0 {
		rangeSize = 1
	}
	return ShardPlan{Shards: shards, RangeSize: rangeSize}
}

// Owner returns the shard owning vertex v. It is defined for every
// possible vertex ID, including IDs beyond the space the plan was derived
// from (see the type comment), under any overlay and any dead-mask: with
// replication, a dead base owner's block chains to the first live member
// of its replica group, and a fully-dead group falls back to the base
// owner (the caller is about to fail anyway; totality is preserved).
func (p ShardPlan) Owner(v graph.VertexID) int {
	b := uint64(v) / uint64(p.RangeSize)
	if p.Overlay != nil {
		if o, ok := p.Overlay[b]; ok {
			return o
		}
	}
	base := int(b % uint64(p.Shards))
	if p.DeadMask == 0 || !p.dead(base) {
		return base
	}
	r := p.Replicas
	if r < 1 {
		r = 1
	}
	for k := 1; k < r; k++ {
		if s := (base + k) % p.Shards; !p.dead(s) {
			return s
		}
	}
	return base
}

// dead reports whether shard s is masked dead.
func (p ShardPlan) dead(s int) bool {
	return s < 64 && p.DeadMask&(1<<uint(s)) != 0
}

// Alive reports whether shard s is currently considered live.
func (p ShardPlan) Alive(s int) bool { return !p.dead(s) }

// InGroup reports whether shard s is in block b's replica group — the
// Replicas consecutive shards starting at the block's base owner. With
// no replication the group is just the base owner. The rebalancing
// overlay never applies to replicated plans (mutually exclusive), so the
// group is computed on the block-cyclic base alone.
func (p ShardPlan) InGroup(b uint64, s int) bool {
	r := p.Replicas
	if r < 1 {
		r = 1
	}
	base := int(b % uint64(p.Shards))
	return (s-base+p.Shards)%p.Shards < r
}

// GroupMembers returns block b's replica group in priority order (base
// owner first). The slice is freshly allocated.
func (p ShardPlan) GroupMembers(b uint64) []int {
	r := p.Replicas
	if r < 1 {
		r = 1
	}
	if r > p.Shards {
		r = p.Shards
	}
	base := int(b % uint64(p.Shards))
	g := make([]int, r)
	for k := range g {
		g[k] = (base + k) % p.Shards
	}
	return g
}

// WithDown returns a new plan with shard s marked dead at the given
// epoch. Ownership of s's base blocks chains to their next live replica
// the instant the plan is installed; no overlay entries are written (the
// mask is the failover mechanism precisely because WithOverlay's
// redundancy-erasure makes overlay entries unusable for "temporarily
// elsewhere" semantics).
func (p ShardPlan) WithDown(s int, epoch uint64) (ShardPlan, error) {
	if s < 0 || s >= p.Shards || s >= 64 {
		return p, fmt.Errorf("walk: dead-mask shard %d out of range for %d shards", s, p.Shards)
	}
	if epoch <= p.Epoch {
		return p, fmt.Errorf("walk: dead-mask epoch %d not beyond current %d", epoch, p.Epoch)
	}
	next := p
	next.Epoch = epoch
	next.DeadMask |= 1 << uint(s)
	return next, nil
}

// WithUp returns a new plan with shard s marked live again at the given
// epoch — the failback flip after a rejoined shard's replica blocks have
// been re-primed.
func (p ShardPlan) WithUp(s int, epoch uint64) (ShardPlan, error) {
	if s < 0 || s >= p.Shards || s >= 64 {
		return p, fmt.Errorf("walk: dead-mask shard %d out of range for %d shards", s, p.Shards)
	}
	if epoch <= p.Epoch {
		return p, fmt.Errorf("walk: dead-mask epoch %d not beyond current %d", epoch, p.Epoch)
	}
	next := p
	next.Epoch = epoch
	next.DeadMask &^= 1 << uint(s)
	return next, nil
}

// BlockOf returns the ownership-block index of vertex v.
func (p ShardPlan) BlockOf(v graph.VertexID) uint64 {
	return uint64(v) / uint64(p.RangeSize)
}

// BlockRange returns the vertex-ID range [lo, hi) block b covers. The
// bounds are uint64 on purpose: the top block of the uint32 ID space has
// hi = 2³², which a graph.VertexID cannot represent — truncating it
// would make the topmost vertices (IDs near 2³²−1, first-class citizens
// since the PR-2 overflow fix) unreachable by migration and view
// invalidation.
func (p ShardPlan) BlockRange(b uint64) (lo, hi uint64) {
	lo = b * uint64(p.RangeSize)
	return lo, lo + uint64(p.RangeSize)
}

// BlockOwner returns the shard owning block b under the current overlay
// and dead-mask (the block-index form of Owner).
func (p ShardPlan) BlockOwner(b uint64) int {
	if p.Overlay != nil {
		if o, ok := p.Overlay[b]; ok {
			return o
		}
	}
	base := int(b % uint64(p.Shards))
	if p.DeadMask == 0 || !p.dead(base) {
		return base
	}
	r := p.Replicas
	if r < 1 {
		r = 1
	}
	for k := 1; k < r; k++ {
		if s := (base + k) % p.Shards; !p.dead(s) {
			return s
		}
	}
	return base
}

// WithOverlay returns a new plan in which block b is owned by shard `to`,
// at the given epoch. The receiver is unchanged (plans are immutable
// values); the overlay map is copied. An owner outside [0, Shards) or a
// non-monotonic epoch is rejected — overlay entries must never be able to
// break ownership totality (the PR-2 out-of-range bug class).
func (p ShardPlan) WithOverlay(b uint64, to int, epoch uint64) (ShardPlan, error) {
	if to < 0 || to >= p.Shards {
		return p, fmt.Errorf("walk: overlay owner %d out of range for %d shards", to, p.Shards)
	}
	if epoch <= p.Epoch {
		return p, fmt.Errorf("walk: overlay epoch %d not beyond current %d", epoch, p.Epoch)
	}
	over := make(map[uint64]int, len(p.Overlay)+1)
	for k, v := range p.Overlay {
		over[k] = v
	}
	if to == int(b%uint64(p.Shards)) {
		// Moving a block home again erases its entry; the base map is
		// authoritative wherever the overlay is silent.
		delete(over, b)
	} else {
		over[b] = to
	}
	if len(over) == 0 {
		over = nil
	}
	next := p
	next.Epoch = epoch
	next.Overlay = over
	return next, nil
}

// PartitionCSR splits a snapshot's edges into per-shard insert batches:
// edge u→dst lands in the batch of Owner(u), preserving the snapshot's
// per-source adjacency order. Feeding batch i into shard i's engine
// reconstructs exactly the rows that shard owns — the bootstrap step of a
// sharded live service. Under replication every member of the source's
// replica group receives the row, so followers start from the same state
// the primary does.
func (p ShardPlan) PartitionCSR(g *graph.CSR) [][]graph.Update {
	parts := make([][]graph.Update, p.Shards)
	for u := 0; u < g.NumVertices(); u++ {
		vid := graph.VertexID(u)
		dsts := g.Neighbors(vid)
		if len(dsts) == 0 {
			continue
		}
		biases := g.Biases(vid)
		fb := g.FBiases(vid)
		holders := p.holdersOf(vid)
		for i := range dsts {
			up := graph.Update{Op: graph.OpInsert, Src: vid, Dst: dsts[i], Bias: biases[i]}
			if fb != nil {
				up.FBias = fb[i]
			}
			for _, s := range holders {
				parts[s] = append(parts[s], up)
			}
		}
	}
	return parts
}

// holdersOf returns every shard that must hold vertex v's row: the
// replica group under replication, otherwise just the owner.
func (p ShardPlan) holdersOf(v graph.VertexID) []int {
	if p.Replicas > 1 {
		return p.GroupMembers(p.BlockOf(v))
	}
	return []int{p.Owner(v)}
}

// BootstrapShards builds the per-shard engine set of a sharded live
// service from a snapshot: newEngine constructs one empty live engine
// (that is where config choices live), and each engine is fed exactly the
// rows plan assigns to its shard. Shared by Engine.ServeSharded, the CLI,
// and the bench runner so bootstrap semantics cannot drift between them.
func BootstrapShards(g *graph.CSR, plan ShardPlan, newEngine func() (LiveEngine, error)) ([]LiveEngine, error) {
	engines := make([]LiveEngine, plan.Shards)
	for i, part := range plan.PartitionCSR(g) {
		e, err := newEngine()
		if err != nil {
			return nil, err
		}
		if len(part) > 0 {
			if err := e.ApplyUpdates(part); err != nil {
				return nil, fmt.Errorf("walk: bootstrapping shard %d: %w", i, err)
			}
		}
		engines[i] = e
	}
	return engines, nil
}

// visitCounter is a growable atomic visit tally. Fixed-size visit slices
// belong to the same frozen-size family of bugs as the old frozen
// ownership: a live engine can grow the vertex space mid-walk, and the
// next step may land on a vertex past the slice's end. In-range bumps
// share the read lock and stay one atomic add; an out-of-range bump
// upgrades to the write lock and grows the tally first.
type visitCounter struct {
	mu     sync.RWMutex
	counts []int64
}

func newVisitCounter(n int) *visitCounter {
	return &visitCounter{counts: make([]int64, n)}
}

func (c *visitCounter) bump(v graph.VertexID) {
	c.mu.RLock()
	if int(v) < len(c.counts) {
		atomic.AddInt64(&c.counts[v], 1)
		c.mu.RUnlock()
		return
	}
	c.mu.RUnlock()
	c.mu.Lock()
	for int(v) >= len(c.counts) {
		grown := len(c.counts) * 2
		if grown <= int(v) {
			grown = int(v) + 1
		}
		c.counts = append(c.counts, make([]int64, grown-len(c.counts))...)
	}
	c.counts[v]++
	c.mu.Unlock()
}

// snapshot returns the tally; the counter must no longer be bumped.
func (c *visitCounter) snapshot() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Sharded reproduces the multi-GPU architecture of supplement §9.1:
// vertices are 1-D partitioned into contiguous ranges, each owned by a
// shard worker, and *walkers* are transferred between shards rather than
// sampling structures ("the cost of transferring the sampling data
// structure might be larger than recalculating it while transferring
// walkers has the light burden of communication").
//
// Each shard worker drains its inbox, advances each walker while it remains
// on locally-owned vertices, and forwards it to the owning shard as soon as
// it crosses a partition boundary — the queue hand-off standing in for the
// paper's peer-to-peer GPU transfer. Inboxes are unbounded so that
// circular forwarding between shards can never deadlock.
type Sharded struct {
	e    Engine
	plan ShardPlan
}

// NewSharded wraps an engine in a shards-way 1-D partition.
func NewSharded(e Engine, shards int) *Sharded {
	return &Sharded{e: e, plan: NewShardPlan(e.NumVertices(), shards)}
}

// Owner returns the shard owning vertex v (total over the ID space, so
// safe for vertices added after construction).
func (s *Sharded) Owner(v graph.VertexID) int { return s.plan.Owner(v) }

// Shards returns the partition count.
func (s *Sharded) Shards() int { return s.plan.Shards }

// Plan returns the partition geometry.
func (s *Sharded) Plan() ShardPlan { return s.plan }

// walker is the state transferred between shards.
type walker struct {
	id   uint64
	cur  graph.VertexID
	hops int
}

// TransferStats reports the communication volume of a sharded run.
type TransferStats struct {
	// Transfers counts walker hand-offs between shards.
	Transfers int64
	// Local counts steps that did not cause a hand-off: steps staying
	// within the owning shard, plus a walk's final hop even when it
	// crossed a boundary (a finished walker retires where it is).
	Local int64
	// Remote counts steps at non-owned vertices served from a cached
	// hub view — hops that would have been hand-offs without the
	// fabric-side cache.
	Remote int64
}

// inbox is an unbounded MPMC walker queue, shared by the Sharded demo
// kernel (element: walker value) and the ShardedLiveService crews
// (element: *liveWalker). Unboundedness is what makes the shard topology
// deadlock-free: a forward never blocks the sender.
type inbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

func newInbox[T any]() *inbox[T] {
	b := &inbox[T]{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox[T]) push(w T) {
	b.mu.Lock()
	b.items = append(b.items, w)
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *inbox[T]) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// pop blocks until an item is available or the inbox is closed; queued
// items are drained before the closure is observed.
func (b *inbox[T]) pop() (T, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.items) == 0 {
		var zero T
		return zero, false
	}
	w := b.items[0]
	b.items = b.items[1:]
	return w, true
}

// popUpTo blocks until at least one item is available (or the inbox is
// closed), then appends up to max queued items to dst — the batch-drain
// form a frontier-stepping worker fills its batch with.
func (b *inbox[T]) popUpTo(dst []T, max int) ([]T, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.items) == 0 {
		return dst, false
	}
	n := len(b.items)
	if n > max {
		n = max
	}
	dst = append(dst, b.items[:n]...)
	b.items = b.items[n:]
	return dst, true
}

// tryPopUpTo is popUpTo without the blocking: it drains whatever is
// queued, up to max, and never waits (a worker topping up a live batch
// must not stall on an empty queue while it holds steppable walkers).
func (b *inbox[T]) tryPopUpTo(dst []T, max int) []T {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.items)
	if n > max {
		n = max
	}
	dst = append(dst, b.items[:n]...)
	b.items = b.items[n:]
	return dst
}

// DeepWalk runs fixed-length first-order walks through the sharded
// runtime. The sampled distribution is identical to the single-engine
// DeepWalk; only the execution topology differs. Workers step their
// inbox's walkers through the shared frontier kernel: a batch is drained
// per queue round, co-located walkers draw in per-vertex batches
// (Config.Kernel selects sparse/dense/auto), and walkers crossing a
// partition boundary are forwarded to their owner as before.
func (s *Sharded) DeepWalk(cfg Config) (Result, TransferStats) {
	cfg = cfg.withDefaults(s.e.NumVertices())
	starts := startsOf(s.e, cfg)
	var vc *visitCounter
	if cfg.CountVisits {
		vc = newVisitCounter(s.e.NumVertices())
	}
	master := xrand.New(cfg.Seed)
	rngs := make([]*xrand.RNG, len(starts))
	for i := range starts {
		rngs[i] = master.Split(uint64(i))
	}

	inboxes := make([]*inbox[walker], s.plan.Shards)
	for i := range inboxes {
		inboxes[i] = newInbox[walker]()
	}
	var stats TransferStats
	var steps int64
	var mu sync.Mutex
	var pending sync.WaitGroup // one count per live walker
	var wg sync.WaitGroup      // shard workers

	for shard := 0; shard < s.plan.Shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			k := newStepKernel(s.e, cfg.Kernel, fabric.CacheSpec{Off: true})
			f := getFrontier(kernelBatch)
			defer putFrontier(f)
			wks := make([]walker, kernelBatch)
			var drain []walker
			var localSteps, localTransfers, localStay int64
			n := 0
			for {
				// Refill: block only when no walker is steppable, top up
				// opportunistically otherwise so frontiers stay dense.
				var ok bool
				if n == 0 {
					drain, ok = inboxes[shard].popUpTo(drain[:0], kernelBatch)
					if !ok {
						break
					}
				} else if n < kernelBatch {
					drain = inboxes[shard].tryPopUpTo(drain[:0], kernelBatch-n)
				} else {
					drain = drain[:0]
				}
				for _, wk := range drain {
					wks[n] = wk
					f.cur[n] = wk.cur
					f.rng[n] = rngs[wk.id]
					n++
				}
				f.n = n
				k.stepBatch(f)
				for i := 0; i < n; {
					if !f.ok[i] { // dead end: the walker retires here
						pending.Done()
						n--
						f.swap(i, n)
						wks[i], wks[n] = wks[n], wks[i]
						continue
					}
					localSteps++
					wks[i].hops++
					next := f.next[i]
					wks[i].cur = next
					f.cur[i] = next
					if vc != nil {
						vc.bump(next)
					}
					// Forward only walkers with hops left: a walker whose
					// final hop crossed the boundary has nothing to do on
					// the other side, so it retires here instead of paying
					// a pointless transfer plus queue round trip.
					if owner := s.Owner(next); owner != shard && wks[i].hops < cfg.Length {
						localTransfers++
						inboxes[owner].push(wks[i])
						n--
						f.swap(i, n)
						wks[i], wks[n] = wks[n], wks[i]
						continue
					}
					localStay++
					if wks[i].hops >= cfg.Length {
						pending.Done()
						n--
						f.swap(i, n)
						wks[i], wks[n] = wks[n], wks[i]
						continue
					}
					i++
				}
			}
			mu.Lock()
			steps += localSteps
			stats.Transfers += localTransfers
			stats.Local += localStay
			mu.Unlock()
		}(shard)
	}

	pending.Add(len(starts))
	for i, st := range starts {
		if vc != nil {
			vc.bump(st)
		}
		inboxes[s.Owner(st)].push(walker{id: uint64(i), cur: st})
	}
	pending.Wait()
	for _, b := range inboxes {
		b.close()
	}
	wg.Wait()
	res := Result{Walkers: len(starts), Steps: steps}
	if vc != nil {
		res.Visits = vc.snapshot()
	}
	return res, stats
}
