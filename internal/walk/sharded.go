package walk

import (
	"sync"

	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Sharded reproduces the multi-GPU architecture of supplement §9.1:
// vertices are 1-D partitioned into contiguous ranges, each owned by a
// shard worker, and *walkers* are transferred between shards rather than
// sampling structures ("the cost of transferring the sampling data
// structure might be larger than recalculating it while transferring
// walkers has the light burden of communication").
//
// Each shard worker drains its inbox, advances each walker while it remains
// on locally-owned vertices, and forwards it to the owning shard as soon as
// it crosses a partition boundary — the queue hand-off standing in for the
// paper's peer-to-peer GPU transfer. Inboxes are unbounded so that
// circular forwarding between shards can never deadlock.
type Sharded struct {
	e         Engine
	shards    int
	rangeSize int // owner(v) = v / rangeSize
}

// NewSharded wraps an engine in a shards-way 1-D partition.
func NewSharded(e Engine, shards int) *Sharded {
	if shards < 1 {
		shards = 1
	}
	n := e.NumVertices()
	rangeSize := (n + shards - 1) / shards
	if rangeSize == 0 {
		rangeSize = 1
	}
	return &Sharded{e: e, shards: shards, rangeSize: rangeSize}
}

// Owner returns the shard owning vertex v.
func (s *Sharded) Owner(v graph.VertexID) int { return int(v) / s.rangeSize }

// Shards returns the partition count.
func (s *Sharded) Shards() int { return s.shards }

// walker is the state transferred between shards.
type walker struct {
	id   uint64
	cur  graph.VertexID
	hops int
}

// TransferStats reports the communication volume of a sharded run.
type TransferStats struct {
	// Transfers counts walker hand-offs between shards.
	Transfers int64
	// Local counts steps that stayed within the owning shard.
	Local int64
}

// inbox is an unbounded MPSC queue of walkers. Unboundedness is what makes
// the shard topology deadlock-free: a forward never blocks the sender.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []walker
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) push(w walker) {
	b.mu.Lock()
	b.items = append(b.items, w)
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *inbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// pop blocks until an item is available or the inbox is closed.
func (b *inbox) pop() (walker, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.items) == 0 {
		return walker{}, false
	}
	w := b.items[0]
	b.items = b.items[1:]
	return w, true
}

// DeepWalk runs fixed-length first-order walks through the sharded
// runtime. The sampled distribution is identical to the single-engine
// DeepWalk; only the execution topology differs.
func (s *Sharded) DeepWalk(cfg Config) (Result, TransferStats) {
	cfg = cfg.withDefaults(s.e.NumVertices())
	starts := startsOf(s.e, cfg)
	var visits []int64
	if cfg.CountVisits {
		visits = make([]int64, s.e.NumVertices())
	}
	master := xrand.New(cfg.Seed)
	rngs := make([]*xrand.RNG, len(starts))
	for i := range starts {
		rngs[i] = master.Split(uint64(i))
	}

	inboxes := make([]*inbox, s.shards)
	for i := range inboxes {
		inboxes[i] = newInbox()
	}
	var stats TransferStats
	var steps int64
	var mu sync.Mutex
	var pending sync.WaitGroup // one count per live walker
	var wg sync.WaitGroup      // shard workers

	for shard := 0; shard < s.shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var localSteps, localTransfers, localStay int64
			for {
				wk, ok := inboxes[shard].pop()
				if !ok {
					break
				}
				r := rngs[wk.id]
				finished := true
				for wk.hops < cfg.Length {
					next, sampled := s.e.Sample(wk.cur, r)
					if !sampled {
						break
					}
					localSteps++
					wk.hops++
					wk.cur = next
					bump(visits, next)
					if owner := s.Owner(next); owner != shard {
						localTransfers++
						inboxes[owner].push(wk)
						finished = false
						break
					}
					localStay++
				}
				if finished {
					pending.Done()
				}
			}
			mu.Lock()
			steps += localSteps
			stats.Transfers += localTransfers
			stats.Local += localStay
			mu.Unlock()
		}(shard)
	}

	pending.Add(len(starts))
	for i, st := range starts {
		bump(visits, st)
		inboxes[s.Owner(st)].push(walker{id: uint64(i), cur: st})
	}
	pending.Wait()
	for _, b := range inboxes {
		b.close()
	}
	wg.Wait()
	return Result{Walkers: len(starts), Steps: steps, Visits: visits}, stats
}
