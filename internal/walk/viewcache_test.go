package walk

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
)

func vcView(u graph.VertexID) *core.VertexView { return &core.VertexView{Vertex: u} }

func testReply(v graph.VertexID, from int, applied int64, hub bool) *fabric.ViewReply {
	return &fabric.ViewReply{From: from, Vertex: v, Hub: hub, Applied: applied, View: core.VertexView{Vertex: v}}
}

// TestViewCacheLRU pins the cache's exact-LRU behavior: recency-ordered
// eviction at capacity, refresh-on-get, and slot reuse after drops.
func TestViewCacheLRU(t *testing.T) {
	c := newViewCache(3, 1)
	for u := graph.VertexID(1); u <= 3; u++ {
		c.put(u, vcView(u))
	}
	if c.get(1) == nil { // 1 becomes most recent
		t.Fatal("vertex 1 missing")
	}
	c.put(4, vcView(4)) // evicts 2, the LRU
	if c.get(2) != nil {
		t.Fatal("LRU vertex 2 survived eviction")
	}
	for _, u := range []graph.VertexID{1, 3, 4} {
		if vw := c.get(u); vw == nil || vw.Vertex != u {
			t.Fatalf("vertex %d missing or wrong after eviction: %+v", u, vw)
		}
	}

	// Dropping frees a slot that the next put reuses without eviction.
	c.drop(3)
	if c.get(3) != nil {
		t.Fatal("dropped vertex 3 still cached")
	}
	c.put(5, vcView(5))
	for _, u := range []graph.VertexID{1, 4, 5} {
		if c.get(u) == nil {
			t.Fatalf("vertex %d lost after drop/reuse", u)
		}
	}
	if len(c.index) != 3 {
		t.Fatalf("index holds %d entries at capacity 3", len(c.index))
	}

	// Repeated drops must not corrupt the free list.
	c.drop(1)
	c.drop(1)
	c.drop(4)
	c.put(6, vcView(6))
	c.put(7, vcView(7))
	for _, u := range []graph.VertexID{5, 6, 7} {
		if c.get(u) == nil {
			t.Fatalf("vertex %d missing after drop-heavy sequence", u)
		}
	}

	// Refreshing an existing key replaces in place.
	fresh := vcView(7)
	fresh.Epoch = 42
	c.put(7, fresh)
	if vw := c.get(7); vw == nil || vw.Epoch != 42 {
		t.Fatalf("refresh did not replace the cached view: %+v", c.get(7))
	}
	if len(c.slots) > 3 {
		t.Fatalf("cache grew past its capacity: %d slots", len(c.slots))
	}
}

// TestRemoteViewsWatermarks pins the fabric-side cache's invalidation
// rule: a view from shard o survives exactly while its Applied stamp
// covers the latest watermark for o; installs of already-stale replies
// are rejected; the not-a-hub negative cache resets on advance.
func TestRemoteViewsWatermarks(t *testing.T) {
	rv := newRemoteViews(2, 4, 2)

	// Request policy: second crossing triggers, in-flight dedupes.
	if rv.noteCrossing(9) {
		t.Fatal("first crossing requested a view (RequestAfter=2)")
	}
	if !rv.noteCrossing(9) {
		t.Fatal("second crossing did not request a view")
	}
	if rv.noteCrossing(9) {
		t.Fatal("in-flight request did not dedupe")
	}

	if !rv.install(testReply(9, 1, 10, true)) {
		t.Fatal("fresh reply rejected")
	}
	if vw, stale := rv.get(9); vw == nil || stale {
		t.Fatalf("installed view not served: vw=%v stale=%v", vw, stale)
	}

	// Watermark advance for shard 1 past the stamp kills the view.
	rv.advance([]int64{0, 11})
	if vw, _ := rv.get(9); vw != nil {
		t.Fatal("view survived a watermark past its Applied stamp")
	}

	// A reply staler than the known watermark is rejected on install,
	// and a not-a-hub reply never installs.
	rv.advance([]int64{0, 11}) // clears the notHub set too
	if rv.install(testReply(9, 1, 5, true)) {
		t.Fatal("stale reply survived install-time watermark check")
	}
	if !rv.install(testReply(9, 1, 11, true)) {
		t.Fatal("current reply rejected")
	}
	if vw, _ := rv.get(9); vw == nil {
		t.Fatal("current view not served")
	}
	// Watermarks never regress.
	rv.advance([]int64{0, 3})
	if vw, _ := rv.get(9); vw == nil {
		t.Fatal("a stale (lower) watermark vector invalidated a current view")
	}
}
