package walk

import (
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
)

// remoteViews is a shard node's cache of peer-owned hub views — the
// fabric-side cache layer that lets a crew serve a hop at a vertex this
// shard does not own instead of handing the walker off.
//
// Consistency is watermark-based: the coordinator piggybacks its
// per-shard routed-update ledger on every ingest element, and a cached
// view from shard o is served only while its Applied stamp (the owner's
// cumulative applied-update count at extraction) is at least the latest
// watermark this node has seen for o. Routed counts run ahead of applied
// counts, so the check only ever drops views early — after a Sync
// barrier (whose token carries the final ledger and precedes the ack
// that completes the Sync), every surviving view reflects all updates
// the barrier covers. Between barriers a view can trail in-flight ingest
// by at most the watermark propagation delay, the same freshness class
// as a walker hand-off racing the feed.
//
// Two extra rules guard rebalancing: a reply is installed only when its
// sender is the vertex's *current* owner (ownerOf — a straggler reply
// from a block's old donor would otherwise install a view the new
// owner's updates never invalidate), and dropBlock purges everything
// cached for a block the moment its ownership commit arrives.
//
// Churn-aware admission: a vertex whose views keep dying young — pruned
// by a watermark before serving churnYoungHits hops — earns strikes, and
// each strike doubles the hand-off count required before this node
// requests its view again. Under hub-targeted write churn the
// fetch/invalidate cycle otherwise costs more than the hand-offs it
// saves (the measured −41% regression); the exponential back-off caps
// that spend at a vanishing fraction while long-lived views (which clear
// strikes on every durable stint) keep the full benefit.
type remoteViews struct {
	capacity int
	reqAfter int

	// ownerOf resolves a vertex's current owner (set by the shard node;
	// nil skips the ownership check — unit tests and static plans).
	ownerOf func(graph.VertexID) int

	mu        sync.RWMutex
	views     map[graph.VertexID]*remoteEntry
	order     []orderKey // FIFO eviction order (install sequence)
	seq       uint64     // install sequence counter
	wm        []int64    // latest per-shard routed-update watermark
	crossings map[graph.VertexID]int
	inflight  map[graph.VertexID]bool
	notHub    map[graph.VertexID]bool
	strikes   map[graph.VertexID]uint8 // churn strikes (admission back-off)
}

type remoteEntry struct {
	vw      *core.VertexView
	from    int
	applied int64
	seq     uint64
	hits    atomic.Int64 // hops served (bumped under the read lock)
}

// orderKey names one install in the eviction queue. The sequence number
// disambiguates re-installs: an entry pruned (watermarks) or dropped
// (stale get) and installed again gets a fresh key, so popping a stale
// key never evicts the fresh view and dead keys are skipped cheaply.
type orderKey struct {
	v   graph.VertexID
	seq uint64
}

// Churn-admission constants.
const (
	// churnYoungHits is the served-hop count below which an invalidated
	// view counts as having died young (the fetch did not pay for
	// itself).
	churnYoungHits = 8
	// churnMaxStrikes caps the admission back-off exponent: at most
	// reqAfter << churnMaxStrikes crossings before re-requesting.
	churnMaxStrikes = 6
)

func newRemoteViews(shards, capacity, reqAfter int) *remoteViews {
	if capacity <= 0 {
		capacity = DefaultRemoteViewSize
	}
	if reqAfter <= 0 {
		reqAfter = DefaultViewRequestAfter
	}
	return &remoteViews{
		capacity:  capacity,
		reqAfter:  reqAfter,
		views:     map[graph.VertexID]*remoteEntry{},
		wm:        make([]int64, shards),
		crossings: map[graph.VertexID]int{},
		inflight:  map[graph.VertexID]bool{},
		notHub:    map[graph.VertexID]bool{},
		strikes:   map[graph.VertexID]uint8{},
	}
}

// get returns u's cached view if it is still valid under the current
// watermarks; stale reports a cached-but-invalidated entry (pruned).
func (rv *remoteViews) get(u graph.VertexID) (vw *core.VertexView, stale bool) {
	rv.mu.RLock()
	e, ok := rv.views[u]
	valid := ok && e.applied >= rv.wm[e.from]
	if valid {
		vw = e.vw
		e.hits.Add(1)
	}
	rv.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if !valid {
		rv.mu.Lock()
		if e2, ok2 := rv.views[u]; ok2 && e2.applied < rv.wm[e2.from] {
			rv.noteDeath(u, e2)
			delete(rv.views, u)
		}
		rv.mu.Unlock()
		return nil, true
	}
	return vw, false
}

// noteDeath records one invalidation for the churn back-off (mu held).
// Views that died young earn a strike; views that served their keep
// clear the slate.
func (rv *remoteViews) noteDeath(u graph.VertexID, e *remoteEntry) {
	if e.hits.Load() < churnYoungHits {
		if len(rv.strikes) >= 8192 {
			rv.strikes = map[graph.VertexID]uint8{}
		}
		if rv.strikes[u] < churnMaxStrikes {
			rv.strikes[u]++
		}
	} else {
		delete(rv.strikes, u)
	}
}

// noteCrossing records one walker hand-off toward non-owned vertex u and
// reports whether the node should request u's view from its owner now.
// A vertex with churn strikes needs exponentially more crossings.
func (rv *remoteViews) noteCrossing(u graph.VertexID) bool {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.notHub[u] || rv.inflight[u] {
		return false
	}
	if _, cached := rv.views[u]; cached {
		return false
	}
	rv.crossings[u]++
	if rv.crossings[u] < rv.reqAfter<<rv.strikes[u] {
		return false
	}
	delete(rv.crossings, u)
	if len(rv.crossings) > 8192 {
		// Unbounded cold-tail growth guard; counts restart, which only
		// delays requests.
		rv.crossings = map[graph.VertexID]int{}
	}
	rv.inflight[u] = true
	return true
}

// install stores a peer's reply. It returns false when the reply was
// rejected (not a hub, already stale under the current watermarks, or
// sent by a shard that no longer owns the vertex).
func (rv *remoteViews) install(rp *fabric.ViewReply) bool {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	delete(rv.inflight, rp.Vertex)
	if rv.ownerOf != nil && rv.ownerOf(rp.Vertex) != rp.From {
		// A straggler from a rebalanced block's previous owner — checked
		// before the Hub branch on purpose: a post-extraction donor
		// answers Hub=false (its rows are gone), and recording that in
		// the negative cache would suppress requests toward the *new*
		// owner until the cache's wholesale reset.
		return false
	}
	if !rp.Hub {
		if len(rv.notHub) >= 8192 {
			// The sub-hub tail dominates scale-free graphs and a
			// query-only session never advances watermarks (the other
			// clearing path), so the negative cache needs its own bound;
			// clearing merely re-allows requests.
			rv.notHub = map[graph.VertexID]bool{}
		}
		rv.notHub[rp.Vertex] = true
		return false
	}
	if rp.Applied < rv.wm[rp.From] {
		return false
	}
	if _, ok := rv.views[rp.Vertex]; !ok {
		for len(rv.views) >= rv.capacity && len(rv.order) > 0 {
			victim := rv.order[0]
			rv.order = rv.order[1:]
			if cur, live := rv.views[victim.v]; live && cur.seq == victim.seq {
				delete(rv.views, victim.v)
			} // else: a dead key (pruned or re-installed since), skip
		}
	}
	rv.seq++
	vw := rp.View
	rv.views[rp.Vertex] = &remoteEntry{vw: &vw, from: rp.From, applied: rp.Applied, seq: rv.seq}
	rv.order = append(rv.order, orderKey{rp.Vertex, rv.seq})
	return true
}

// clearInflight drops u's in-flight request marker (request send
// failed; a later crossing may retry).
func (rv *remoteViews) clearInflight(u graph.VertexID) {
	rv.mu.Lock()
	delete(rv.inflight, u)
	rv.mu.Unlock()
}

// dropBlock purges everything cached for ownership block b (views,
// crossing counts, in-flight markers, negative entries): the block just
// changed owners, so every stamp and judgment predating the flip is
// void. Migration is not churn — strikes are left alone.
func (rv *remoteViews) dropBlock(rangeSize int, b uint64) {
	// uint64 bounds: the top block's hi is 2^32, beyond graph.VertexID.
	lo := b * uint64(rangeSize)
	hi := lo + uint64(rangeSize)
	in := func(v graph.VertexID) bool { return uint64(v) >= lo && uint64(v) < hi }
	rv.mu.Lock()
	defer rv.mu.Unlock()
	for u := range rv.views {
		if in(u) {
			delete(rv.views, u)
		}
	}
	live := rv.order[:0]
	for _, k := range rv.order {
		if cur, ok := rv.views[k.v]; ok && cur.seq == k.seq {
			live = append(live, k)
		}
	}
	rv.order = live
	for u := range rv.crossings {
		if in(u) {
			delete(rv.crossings, u)
		}
	}
	for u := range rv.inflight {
		if in(u) {
			delete(rv.inflight, u)
		}
	}
	for u := range rv.notHub {
		if in(u) {
			delete(rv.notHub, u)
		}
	}
}

// dropAll purges the entire cache — views, crossing counts, in-flight
// markers, negative entries. A shard-liveness flip re-chains ownership of
// whole block families at once (everything the dead shard based, or
// everything a rejoined shard reclaims), so per-block surgery would have
// to walk every block anyway; wholesale reset is the simple conservative
// move. Strikes are kept: failover is not hub churn.
func (rv *remoteViews) dropAll() {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	rv.views = map[graph.VertexID]*remoteEntry{}
	rv.order = nil
	rv.crossings = map[graph.VertexID]int{}
	rv.inflight = map[graph.VertexID]bool{}
	rv.notHub = map[graph.VertexID]bool{}
}

// advance folds a piggybacked watermark vector in, pruning every view
// the new ledger invalidates, and clears the not-a-hub negative cache
// (growth can promote a vertex to hub status).
func (rv *remoteViews) advance(wms []int64) {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	changed := false
	for i := 0; i < len(wms) && i < len(rv.wm); i++ {
		if wms[i] > rv.wm[i] {
			rv.wm[i] = wms[i]
			changed = true
		}
	}
	if !changed {
		return
	}
	for u, e := range rv.views {
		if e.applied < rv.wm[e.from] {
			rv.noteDeath(u, e)
			delete(rv.views, u)
		}
	}
	// Compact the eviction queue to the keys still naming live installs
	// — pruning otherwise grows it without bound under churn.
	live := rv.order[:0]
	for _, k := range rv.order {
		if cur, ok := rv.views[k.v]; ok && cur.seq == k.seq {
			live = append(live, k)
		}
	}
	rv.order = live
	if len(rv.notHub) > 0 {
		rv.notHub = map[graph.VertexID]bool{}
	}
	// A new watermark epoch also re-opens requests: an in-flight marker
	// whose reply was lost must not exclude its vertex forever.
	if len(rv.inflight) > 0 {
		rv.inflight = map[graph.VertexID]bool{}
	}
}
