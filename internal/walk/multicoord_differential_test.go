// The multi-coordinator extension of the rebalance differential harness:
// read-coordinators attach to the running shard set and serve queries
// *while* the write-coordinator feeds a hub-skewed growth tape and the
// heat-aware rebalancer migrates the hot blocks live. Afterwards the
// distributed state must still match a sequential replay edge-for-edge,
// and the sampling distribution served *through a reader* — hops from
// its broadcast-validated hub-view cache and shard-launched remainders
// alike — must be one a 120k-draw chi-square cannot tell from the
// replay's exact probabilities.
//
// The reader-specific consistency claims under test: the broadcast
// stream keeps a reader's plan epoch, overlay, and watermark vector
// valid across migrations (launches toward moved blocks re-route, cached
// views of moved blocks drop at the flip), bounded staleness holds
// (WaitApplied past the writer's post-Sync stamp means the reader serves
// nothing older), and a reader's death is invisible to the write session
// and its sibling readers. Run with -race on both fabrics.
package walk_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// mcService extends the harness surface with the applied stamp the
// readers' bounded-staleness check is anchored to.
type mcService interface {
	rbService
	AppliedStamp() int64
}

// runMultiCoordDifferential drives the hub-skewed growth tape through
// the write service while every reader serves a concurrent query storm,
// waits for a migration to commit mid-tape, syncs, verifies bounded
// staleness through each reader, and chi-squares the served sampling
// distribution drawn through the readers (round-robin) against the
// sequential replay.
func runMultiCoordDifferential(t *testing.T, svc mcService, readers []*walk.ReaderService, tape []graph.Update) {
	t.Helper()

	parts := make([][]graph.Update, rbWriters)
	for _, up := range tape {
		w := int(up.Src) % rbWriters
		parts[w] = append(parts[w], up)
	}
	var writers sync.WaitGroup
	for w := 0; w < rbWriters; w++ {
		writers.Add(1)
		go func(part []graph.Update) {
			defer writers.Done()
			const chunk = 64
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := svc.Feed(part[lo:hi]); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
		}(parts[w])
	}

	// Every reader serves a hot-block query storm while the tape lands
	// and the plan flips under it.
	done := make(chan struct{})
	var storms sync.WaitGroup
	for ri, rd := range readers {
		storms.Add(1)
		go func(ri int, rd *walk.ReaderService) {
			defer storms.Done()
			r := xrand.New(0xBEAD + uint64(ri))
			for i := 0; ; i++ {
				if i%64 == 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				start := graph.VertexID(r.Intn(rbVertsMax))
				if r.Coin(0.85) {
					start = rbHotVertex(r)
				}
				path, err := rd.Query(start, 16)
				if err != nil {
					t.Errorf("reader %d: Query: %v", ri, err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("reader %d: path %v does not begin at %d", ri, path, start)
					return
				}
			}
		}(ri, rd)
	}
	writers.Wait()

	// Keep write-side heat flowing until a migration commits mid-serving.
	deadline := time.Now().Add(60 * time.Second)
	r := xrand.New(0x4EA8)
	for svc.Stats().Rebalance.Migrations == 0 {
		if time.Now().After(deadline) {
			close(done)
			storms.Wait()
			t.Fatalf("no migration fired under hub-skewed load: stats %+v, shard steps %v",
				svc.Stats().Rebalance, svc.Stats().ShardSteps)
		}
		if _, err := svc.Query(rbHotVertex(r), 16); err != nil {
			t.Fatalf("Query while waiting for migration: %v", err)
		}
	}
	close(done)
	storms.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync after feed: %v", err)
	}

	st := svc.Stats()
	livePlan := svc.LivePlan()
	t.Logf("replayed %d updates with %d readers attached; %d migrations (plan epoch %d), shard steps %v",
		st.Updates, len(readers), st.Rebalance.Migrations, st.Rebalance.PlanEpoch, st.ShardSteps)
	if st.Updates != int64(len(tape)) || st.Dropped != 0 {
		t.Fatalf("ingest stats %+v, want %d updates, 0 dropped", st, len(tape))
	}
	if st.Rebalance.Migrations == 0 || len(livePlan.Overlay) == 0 {
		t.Fatalf("rebalancer idle: %+v", st.Rebalance)
	}

	// Bounded staleness: the write side's post-Sync stamp covers the
	// whole tape; each reader must reach it (the barrier-completion
	// broadcast carries it) and report the migrated plan epoch.
	stamp := svc.AppliedStamp()
	for ri, rd := range readers {
		if err := rd.WaitApplied(stamp); err != nil {
			t.Fatalf("reader %d: WaitApplied(%d): %v", ri, stamp, err)
		}
		waitFor := time.Now().Add(10 * time.Second)
		for rd.Stats().PlanEpoch != livePlan.Epoch && time.Now().Before(waitFor) {
			time.Sleep(5 * time.Millisecond)
		}
		rst := rd.Stats()
		if rst.Applied < stamp {
			t.Fatalf("reader %d: applied stamp %d < write stamp %d", ri, rst.Applied, stamp)
		}
		if rst.PlanEpoch != livePlan.Epoch {
			t.Fatalf("reader %d: plan epoch %d, write session at %d", ri, rst.PlanEpoch, livePlan.Epoch)
		}
		if rst.Queries == 0 || rst.Broadcasts == 0 {
			t.Fatalf("reader %d served nothing: %+v", ri, rst)
		}
	}

	// Chi-square the distribution served through the readers against the
	// sequential replay on the highest-degree vertices (hub-skew puts
	// them on migrated blocks, so draws cross the moved ownership and
	// exercise reader-cached views of the new owner's state).
	seq := rbSequentialReplay(t, tape)
	type cand struct {
		u graph.VertexID
		d int
	}
	var cands []cand
	for u := 0; u < rbVertsMax; u++ {
		if d := seq.Degree(graph.VertexID(u)); d >= 4 {
			cands = append(cands, cand{graph.VertexID(u), d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
	if len(cands) > 8 {
		cands = cands[:8]
	}
	if len(cands) == 0 {
		t.Fatal("no test vertices with degree ≥ 4 — tape generator broken")
	}
	samples := rbSamples
	if raceDetectorEnabled {
		samples = rbSamplesRace
	}
	perVertex := samples / len(cands)
	for _, c := range cands {
		slotProbs := seq.VertexProbabilities(c.u)
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range slotProbs {
			probByDst[seq.Neighbor(c.u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		for i := 0; i < perVertex; i++ {
			path, err := readers[i%len(readers)].Query(c.u, 1)
			if err != nil {
				t.Fatalf("vertex %d: reader Query: %v", c.u, err)
			}
			if len(path) != 2 {
				t.Fatalf("vertex %d: degree %d but draw %d returned path %v", c.u, c.d, i, path)
			}
			slot, ok := index[path[1]]
			if !ok {
				t.Fatalf("vertex %d: sampled %d, not a live neighbor", c.u, path[1])
			}
			observed[slot]++
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("vertex %d: chi-square: %v", c.u, err)
		}
		if p < 1e-4 {
			t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — reader-served distribution diverges from sequential replay",
				c.u, c.d, stat, p)
		}
	}
}

// TestMultiCoordDifferentialInproc runs the harness on the in-process
// fabric: two readers attached to a ShardedLiveService.
func TestMultiCoordDifferentialInproc(t *testing.T) {
	tape := buildHubSkewTape(rbTapeLen, 0x5EED)
	plan := walk.NewShardPlan(rbVerts0, rbShards)
	engines, raw := newShardEngines(t, plan, rbVerts0)
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: 2,
		WalkLength:      16,
		Seed:            0xFEED,
		Rebalance:       rbRebalanceOptions(15*time.Millisecond, 128),
	})
	if err != nil {
		t.Fatal(err)
	}
	var readers []*walk.ReaderService
	for i := 0; i < 2; i++ {
		rd, err := svc.AttachReader(walk.ReaderConfig{WalkLength: 16, Seed: 0xAB + uint64(i)})
		if err != nil {
			t.Fatalf("AttachReader %d: %v", i, err)
		}
		readers = append(readers, rd)
	}
	runMultiCoordDifferential(t, svc, readers, tape)
	for _, rd := range readers {
		if err := rd.Close(); err != nil {
			t.Fatalf("reader Close: %v", err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var got []sdEdge
	for i, e := range raw {
		e.Quiesce(func(s *core.Sampler) {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("shard %d invariants: %v", i, err)
			}
			got = appendEdges(got, s.Snapshot())
		})
	}
	rbAssertEdgeEquality(t, got, tape)
}

// TestMultiCoordDifferentialTCP runs the harness over the tcpgob fabric:
// the shard nodes live behind real loopback sockets, the write session
// dials them, and two readers attach with DialReader — separate
// sessions, nonce-fenced, retires and view replies routed by origin.
func TestMultiCoordDifferentialTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback daemons and a reader chi-square in -short mode")
	}
	tape := buildHubSkewTape(rbTapeLen, 0x5EED)
	plan := walk.NewShardPlan(rbVerts0, rbShards)

	listeners := make([]*tcpgob.Listener, rbShards)
	addrs := make([]string, rbShards)
	for i := 0; i < rbShards; i++ {
		l, err := tcpgob.Listen("127.0.0.1:0", i, rbShards)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	var nodes sync.WaitGroup
	for i := 0; i < rbShards; i++ {
		nodes.Add(1)
		go func(i int) {
			defer nodes.Done()
			defer listeners[i].Close()
			sc, hello, err := listeners[i].Accept()
			if err != nil {
				return
			}
			s, err := core.New(hello.NumVertices, core.DefaultConfig())
			if err != nil {
				sc.Close()
				return
			}
			e := concurrent.Wrap(s, concurrent.Config{})
			nodePlan := walk.ShardPlan{
				Shards: hello.Shards, RangeSize: hello.RangeSize,
				Epoch: hello.PlanEpoch, Overlay: hello.Overlay,
			}
			if _, err := walk.RunShardNode(e, nodePlan, i, sc, 2, hello.Cache, walk.KernelAuto); err != nil {
				t.Errorf("shard %d: %v", i, err)
			}
		}(i)
	}
	port, err := tcpgob.Dial(addrs, fabric.Hello{
		RangeSize:   plan.RangeSize,
		NumVertices: rbVerts0,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := walk.NewRemoteService(port, plan, rbVerts0, walk.ShardedLiveConfig{
		WalkLength: 16,
		Seed:       0xFEED,
		Rebalance:  rbRebalanceOptions(250*time.Millisecond, 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	var readers []*walk.ReaderService
	for i := 0; i < 2; i++ {
		rp, err := tcpgob.DialReader(addrs, fabric.Hello{})
		if err != nil {
			t.Fatalf("DialReader %d: %v", i, err)
		}
		rd, err := walk.NewRemoteReader(rp, walk.ReaderConfig{WalkLength: 16, Seed: 0xAB + uint64(i)})
		if err != nil {
			t.Fatalf("NewRemoteReader %d: %v", i, err)
		}
		readers = append(readers, rd)
	}
	runMultiCoordDifferential(t, svc, readers, tape)

	perShard, err := svc.DumpEdges()
	if err != nil {
		t.Fatalf("DumpEdges: %v", err)
	}
	var got []sdEdge
	for _, edges := range perShard {
		for _, ed := range edges {
			got = append(got, sdEdge{src: ed.Src, dst: ed.Dst, bias: ed.Bias})
		}
	}
	for _, rd := range readers {
		if err := rd.Close(); err != nil {
			t.Fatalf("reader Close: %v", err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	nodes.Wait()
	rbAssertEdgeEquality(t, got, tape)
}

// TestReaderCrashIsolation kills one reader in the middle of its query
// storm and requires the write session, the shards, and the sibling
// reader to keep serving as if nothing happened.
func TestReaderCrashIsolation(t *testing.T) {
	tape := buildHubSkewTape(4000, 0xDEAD)
	plan := walk.NewShardPlan(rbVerts0, rbShards)
	engines, _ := newShardEngines(t, plan, rbVerts0)
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: 2,
		WalkLength:      16,
		Seed:            0xFEED,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var readers []*walk.ReaderService
	for i := 0; i < 2; i++ {
		rd, err := svc.AttachReader(walk.ReaderConfig{WalkLength: 16, Seed: 0xCC + uint64(i)})
		if err != nil {
			t.Fatalf("AttachReader %d: %v", i, err)
		}
		readers = append(readers, rd)
	}

	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		const chunk = 64
		for lo := 0; lo < len(tape); lo += chunk {
			hi := lo + chunk
			if hi > len(tape) {
				hi = len(tape)
			}
			if err := svc.Feed(tape[lo:hi]); err != nil {
				t.Errorf("Feed: %v", err)
				return
			}
		}
	}()

	// Both readers storm; reader 0 is killed mid-flight. Its own queries
	// may fail with ErrFabricDown — nobody else's may fail at all.
	done := make(chan struct{})
	var storms sync.WaitGroup
	for ri, rd := range readers {
		storms.Add(1)
		go func(ri int, rd *walk.ReaderService) {
			defer storms.Done()
			r := xrand.New(0xF00 + uint64(ri))
			for i := 0; ; i++ {
				if i%32 == 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				if _, err := rd.Query(rbHotVertex(r), 16); err != nil {
					if ri == 0 {
						return // the killed reader's in-flight queries fail by design
					}
					t.Errorf("surviving reader: Query: %v", err)
					return
				}
			}
		}(ri, rd)
	}
	time.Sleep(20 * time.Millisecond)
	if err := readers[0].Close(); err != nil {
		t.Fatalf("closing reader 0: %v", err)
	}
	writers.Wait()
	time.Sleep(20 * time.Millisecond)
	close(done)
	storms.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync after reader crash: %v", err)
	}
	r := xrand.New(0xAF7E)
	for i := 0; i < 64; i++ {
		if _, err := svc.Query(rbHotVertex(r), 16); err != nil {
			t.Fatalf("write session Query after reader crash: %v", err)
		}
		if _, err := readers[1].Query(rbHotVertex(r), 16); err != nil {
			t.Fatalf("surviving reader Query after reader crash: %v", err)
		}
	}
	st := svc.Stats()
	if st.Updates != int64(len(tape)) || st.Dropped != 0 {
		t.Fatalf("ingest disturbed by reader crash: %+v, want %d updates", st, len(tape))
	}
	if rst := readers[1].Stats(); rst.Queries == 0 {
		t.Fatalf("surviving reader served nothing: %+v", rst)
	}
	if err := readers[1].Close(); err != nil {
		t.Fatalf("reader 1 Close: %v", err)
	}
}

// TestPlanEpochBroadcastInvalidation pins the migration-vs-reader-cache
// story: a reader caches hub views, a migration commits while it holds
// them, and the plan-epoch broadcast must flip the reader's plan and
// drop every cached view — after which its serving reflects the moved
// ownership. Write-side heat (queries, no feed) drives the migration so
// the watermark-advance pruning path cannot mask the epoch-flip drop.
func TestPlanEpochBroadcastInvalidation(t *testing.T) {
	tape := buildHubSkewTape(4000, 0xE90C)
	plan := walk.NewShardPlan(rbVerts0, rbShards)
	engines, _ := newShardEngines(t, plan, rbVerts0)
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: 2,
		WalkLength:      16,
		Seed:            0xFEED,
		// The per-cycle step floor sits between the paced phase-1
		// warm-up (~120 steps per 15ms cycle) and phase 2's deliberate
		// long-walk storm (thousands per cycle even under -race), so
		// the migration fires only after the cached-view snapshot.
		Rebalance: rbRebalanceOptions(15*time.Millisecond, 512),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rd, err := svc.AttachReader(walk.ReaderConfig{WalkLength: 16, Seed: 0xCAFE})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	// Phase 1: land the skewed graph, then let the reader pull hub views
	// into its cache (crossing-counted requests, so repeated hot-vertex
	// queries are needed before the first install).
	if err := svc.Feed(tape); err != nil {
		t.Fatal(err)
	}
	if err := svc.Sync(); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(0x90BE)
	deadline := time.Now().Add(30 * time.Second)
	for rd.Stats().CachedViews == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reader never cached a hub view: %+v", rd.Stats())
		}
		if _, err := rd.Query(rbHotVertex(r), 16); err != nil {
			t.Fatalf("warm Query: %v", err)
		}
		// Pace the warm-up so its steps stay under the rebalancer's
		// per-cycle floor — the migration must not fire before the
		// cached-view snapshot below.
		time.Sleep(2 * time.Millisecond)
	}
	// Drain in-flight view replies so the cached count is quiescent.
	time.Sleep(100 * time.Millisecond)
	cached0 := rd.Stats().CachedViews
	epoch0 := rd.Stats().PlanEpoch
	if mig := svc.Stats().Rebalance.Migrations; mig != 0 {
		t.Fatalf("rebalancer fired during warm-up (%d migrations) — raise the cycle-step floor", mig)
	}
	if cached0 == 0 {
		t.Fatal("cached views drained to zero before the migration")
	}

	// Phase 2: write-side queries alone heat the hot shard until a
	// migration commits. No feed — the watermark vector is frozen, so
	// only the epoch flip can clear the reader's cache.
	deadline = time.Now().Add(60 * time.Second)
	for svc.Stats().Rebalance.Migrations == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no migration fired under query heat: %+v, shard steps %v",
				svc.Stats().Rebalance, svc.Stats().ShardSteps)
		}
		if _, err := svc.Query(rbHotVertex(r), 64); err != nil {
			t.Fatalf("heat Query: %v", err)
		}
	}
	livePlan := svc.LivePlan()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rst := rd.Stats()
		if rst.PlanFlips > 0 && rst.CachedViews == 0 && rst.PlanEpoch == livePlan.Epoch {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rst := rd.Stats()
	if rst.PlanFlips == 0 || rst.PlanEpoch == epoch0 {
		t.Fatalf("reader never saw the plan-epoch broadcast: %+v, write session at epoch %d", rst, livePlan.Epoch)
	}
	if rst.CachedViews != 0 {
		t.Fatalf("epoch flip left %d cached views standing (had %d before)", rst.CachedViews, cached0)
	}

	// The reader now serves against the moved ownership: draws from the
	// hottest (migrated) vertices must land on live neighbors only.
	seq := rbSequentialReplay(t, tape)
	var hot graph.VertexID
	best := -1
	for u := 0; u < rbVertsMax; u++ {
		if d := seq.Degree(graph.VertexID(u)); d > best {
			if _, moved := livePlan.Overlay[livePlan.BlockOf(graph.VertexID(u))]; moved {
				hot, best = graph.VertexID(u), d
			}
		}
	}
	if best < 1 {
		t.Skip("no connected vertex on a migrated block")
	}
	liveDst := map[graph.VertexID]bool{}
	for slot := range seq.VertexProbabilities(hot) {
		liveDst[seq.Neighbor(hot, slot)] = true
	}
	seen := map[graph.VertexID]bool{}
	for i := 0; i < 2000; i++ {
		path, err := rd.Query(hot, 1)
		if err != nil {
			t.Fatalf("post-migration Query: %v", err)
		}
		if len(path) != 2 || !liveDst[path[1]] {
			t.Fatalf("post-migration draw %d from moved vertex %d: path %v not a live edge", i, hot, path)
		}
		seen[path[1]] = true
	}
	if best >= 2 && len(seen) < 2 {
		t.Fatalf("2000 draws from degree-%d vertex %d hit only %v — sampling collapsed after the flip", best, hot, seen)
	}
}
