package walk

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
)

// buildEngine makes a Bingo engine over a small random graph.
func buildEngine(t *testing.T, v int, e int64, seed uint64) *core.Sampler {
	t.Helper()
	edges := gen.RMAT(v, e, gen.DefaultRMAT, seed)
	gen.AssignBiases(edges, v, gen.BiasConfig{Kind: gen.BiasDegree})
	g, err := graph.FromEdges(v, edges)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewFromCSR(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// lineGraph builds 0→1→2→…→n-1 (no out-edge at the end).
func lineGraph(t *testing.T, n int) *core.Sampler {
	t.Helper()
	s, err := core.New(n, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if err := s.Insert(graph.VertexID(i), graph.VertexID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestDeepWalkLengthAndDeadEnd(t *testing.T) {
	s := lineGraph(t, 10)
	res := DeepWalk(s, Config{Length: 80, Starts: []graph.VertexID{0}, Seed: 1})
	// The walk must stop at the dead end after 9 steps.
	if res.Steps != 9 {
		t.Errorf("steps = %d, want 9", res.Steps)
	}
	res = DeepWalk(s, Config{Length: 4, Starts: []graph.VertexID{0}, Seed: 1})
	if res.Steps != 4 {
		t.Errorf("steps = %d, want 4 (length cap)", res.Steps)
	}
	if res.Walkers != 1 {
		t.Errorf("walkers = %d", res.Walkers)
	}
}

func TestDeepWalkVisits(t *testing.T) {
	s := lineGraph(t, 5)
	res := DeepWalk(s, Config{Length: 80, Starts: []graph.VertexID{0}, Seed: 1, CountVisits: true})
	for v := 0; v < 5; v++ {
		if res.Visits[v] != 1 {
			t.Errorf("visits[%d] = %d, want 1", v, res.Visits[v])
		}
	}
}

func TestDeepWalkDefaultStartsAllVertices(t *testing.T) {
	s := buildEngine(t, 50, 400, 3)
	res := DeepWalk(s, Config{Length: 5, Seed: 2})
	if res.Walkers != 50 {
		t.Errorf("walkers = %d, want 50", res.Walkers)
	}
}

func TestDeepWalkDeterministicAcrossWorkers(t *testing.T) {
	s := buildEngine(t, 100, 1000, 5)
	r1 := DeepWalk(s, Config{Length: 20, Seed: 9, Workers: 1, CountVisits: true})
	r4 := DeepWalk(s, Config{Length: 20, Seed: 9, Workers: 4, CountVisits: true})
	if r1.Steps != r4.Steps {
		t.Fatalf("steps %d vs %d across worker counts", r1.Steps, r4.Steps)
	}
	for v := range r1.Visits {
		if r1.Visits[v] != r4.Visits[v] {
			t.Fatalf("visits[%d] %d vs %d", v, r1.Visits[v], r4.Visits[v])
		}
	}
}

func TestPPRGeometricLength(t *testing.T) {
	// On a self-loop graph walks never dead-end; expected walk length is
	// 1/TermProb - 1 ≈ 79 with the default 1/80.
	s, err := core.New(1, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	starts := make([]graph.VertexID, 3000)
	res := PPR(s, Config{Starts: starts, Seed: 11})
	mean := float64(res.Steps) / float64(res.Walkers)
	if math.Abs(mean-79) > 4 {
		t.Errorf("mean PPR length %v, want ≈79", mean)
	}
}

func TestPPRVisitsConcentrateNearSource(t *testing.T) {
	// Star graph: source 0 connects to 1..10, each leaf returns to 0.
	s, _ := core.New(11, core.DefaultConfig())
	for i := 1; i <= 10; i++ {
		if err := s.Insert(0, graph.VertexID(i), 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(graph.VertexID(i), 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	starts := make([]graph.VertexID, 2000) // all from vertex 0
	res := PPR(s, Config{Starts: starts, Seed: 13, CountVisits: true})
	// Vertex 0 should hold about half the visit mass (alternating walk).
	var total int64
	for _, c := range res.Visits {
		total += c
	}
	frac := float64(res.Visits[0]) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("source visit fraction %v, want ≈0.5", frac)
	}
}

func TestNode2VecPQLimits(t *testing.T) {
	// Triangle 0-1-2 plus a pendant 1-3: from 1 after arriving 0→1,
	// candidates are 0 (dist 0), 2 (dist 1, triangle), 3 (dist 2).
	s, _ := core.New(4, core.DefaultConfig())
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}, {1, 3}, {3, 1}} {
		if err := s.Insert(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	count := func(p, q float64) (back, tri, out int) {
		// Two-hop walks from 0: count the second hop's choice when the
		// first hop lands on 1.
		starts := make([]graph.VertexID, 60000)
		res := Node2Vec(s, Config{Length: 2, Starts: starts, Seed: 7, P: p, Q: q, CountVisits: true})
		_ = res
		// Visits can't separate hops; instead run manual two-hop logic
		// is overkill — use visit counts of 3 (only reachable via the
		// pendant) as the exploration proxy.
		return int(res.Visits[0]), int(res.Visits[2]), int(res.Visits[3])
	}
	_, _, outLowQ := count(1, 0.25) // low q encourages exploration
	_, _, outHighQ := count(1, 8)   // high q suppresses it
	if outLowQ <= outHighQ {
		t.Errorf("pendant visits: lowQ %d should exceed highQ %d", outLowQ, outHighQ)
	}
	backLowP, _, _ := count(0.1, 1) // low p encourages backtracking
	backHighP, _, _ := count(8, 1)
	if backLowP <= backHighP {
		t.Errorf("backtrack visits: lowP %d should exceed highP %d", backLowP, backHighP)
	}
}

func TestNode2VecDeadEnd(t *testing.T) {
	s := lineGraph(t, 3) // 0→1→2, 2 is a dead end
	res := Node2Vec(s, Config{Length: 80, Starts: []graph.VertexID{0}, Seed: 1})
	if res.Steps != 2 {
		t.Errorf("steps = %d, want 2", res.Steps)
	}
}

func TestSimpleSampling(t *testing.T) {
	s := buildEngine(t, 30, 300, 21)
	starts := []graph.VertexID{}
	for u := 0; u < 30; u++ {
		if s.Degree(graph.VertexID(u)) > 0 {
			starts = append(starts, graph.VertexID(u))
		}
	}
	res := SimpleSampling(s, Config{Length: 100, Starts: starts, Seed: 3})
	if res.Steps != int64(100*len(starts)) {
		t.Errorf("steps = %d, want %d", res.Steps, 100*len(starts))
	}
}

func TestRunDispatch(t *testing.T) {
	s := buildEngine(t, 20, 100, 9)
	for _, app := range []App{AppDeepWalk, AppNode2Vec, AppPPR, AppSimple} {
		res := Run(app, s, Config{Length: 5, Seed: 1})
		if res.Walkers != 20 {
			t.Errorf("%v: walkers = %d", app, res.Walkers)
		}
	}
	if AppDeepWalk.String() != "DeepWalk" || AppPPR.String() != "PPR" {
		t.Error("App strings wrong")
	}
}

func TestShardedMatchesUnsharded(t *testing.T) {
	s := buildEngine(t, 200, 3000, 33)
	plain := DeepWalk(s, Config{Length: 30, Seed: 5, CountVisits: true})
	for _, shards := range []int{1, 2, 4, 7} {
		sh := NewSharded(s, shards)
		res, stats := sh.DeepWalk(Config{Length: 30, Seed: 5, CountVisits: true})
		if res.Steps != plain.Steps {
			t.Fatalf("shards=%d: steps %d vs %d", shards, res.Steps, plain.Steps)
		}
		for v := range plain.Visits {
			if res.Visits[v] != plain.Visits[v] {
				t.Fatalf("shards=%d: visits[%d] %d vs %d", shards, v, res.Visits[v], plain.Visits[v])
			}
		}
		if shards > 1 && stats.Transfers == 0 {
			t.Errorf("shards=%d: no walker transfers on a random graph", shards)
		}
		if shards == 1 && stats.Transfers != 0 {
			t.Error("single shard should never transfer")
		}
	}
}

func TestShardedOwner(t *testing.T) {
	s := buildEngine(t, 100, 500, 41)
	sh := NewSharded(s, 4)
	if sh.Shards() != 4 {
		t.Fatal("shards wrong")
	}
	seen := map[int]bool{}
	for v := 0; v < 100; v++ {
		o := sh.Owner(graph.VertexID(v))
		if o < 0 || o >= 4 {
			t.Fatalf("owner(%d) = %d", v, o)
		}
		seen[o] = true
	}
	if len(seen) != 4 {
		t.Errorf("only %d shards own vertices", len(seen))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(10)
	if c.Length != 80 || c.TermProb != 1.0/80 || c.P != 0.5 || c.Q != 2 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestDeepWalkPathsEmission(t *testing.T) {
	s := lineGraph(t, 4) // 0→1→2→3
	var paths [][]graph.VertexID
	res := DeepWalkPaths(s, Config{Length: 10, Seed: 1}, func(p []graph.VertexID) {
		paths = append(paths, append([]graph.VertexID(nil), p...))
	})
	if len(paths) != 4 || res.Walkers != 4 {
		t.Fatalf("paths %d, walkers %d", len(paths), res.Walkers)
	}
	// Walk from 0 follows the whole line; from 3 stays put.
	if len(paths[0]) != 4 || paths[0][3] != 3 {
		t.Errorf("path from 0 = %v", paths[0])
	}
	if len(paths[3]) != 1 || paths[3][0] != 3 {
		t.Errorf("path from 3 = %v", paths[3])
	}
	if res.Steps != 3+2+1+0 {
		t.Errorf("steps = %d, want 6", res.Steps)
	}
}

func TestAppStringUnknown(t *testing.T) {
	if App(42).String() != "App(42)" {
		t.Error("unknown app string wrong")
	}
	if AppNode2Vec.String() != "node2vec" || AppSimple.String() != "simple" {
		t.Error("app strings wrong")
	}
}
