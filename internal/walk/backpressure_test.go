// Regression test for the ingest credit window: a shard that applies
// updates slowly must push back through Feed, keeping the routed-but-
// unapplied backlog bounded by the window instead of growing the shard's
// ingest queue without limit (the failure mode the credits replaced).
package walk_test

import (
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/chaos"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
)

func TestCreditWindowBoundsSlowShard(t *testing.T) {
	const (
		verts  = 64
		window = 256
		chunk  = 64
		total  = 4096
	)
	fab := chaos.New(1)
	// Every ingest element toward the lone shard crawls: ~2ms apiece is
	// slow enough that an unpaced feeder would pile up the whole tape.
	fab.SetFault(0, chaos.Fault{Delay: 2 * time.Millisecond}, chaos.Fault{})

	plan := walk.NewShardPlan(verts, 1)
	s, err := core.New(verts, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nodeDone := make(chan struct{})
	go func() {
		defer close(nodeDone)
		walk.RunShardNode(concurrent.Wrap(s, concurrent.Config{}), plan, 0, fab.ShardPort(0), 1, fabric.CacheSpec{}, walk.KernelAuto)
	}()
	svc, err := walk.NewRemoteService(fab.CoordPort(), plan, verts, walk.ShardedLiveConfig{
		WalkLength:   4,
		CreditWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}

	for lo := 0; lo < total; lo += chunk {
		ups := make([]graph.Update, chunk)
		for i := range ups {
			ups[i] = graph.Update{Op: graph.OpInsert, Src: graph.VertexID((lo + i) % verts), Dst: graph.VertexID((lo + i + 1) % verts), Bias: uint64(lo + i + 1)}
		}
		if err := svc.Feed(ups); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := svc.Stats()
	t.Logf("backpressure %+v over %d updates", st.Backpressure, total)
	if st.Backpressure.Window != window {
		t.Fatalf("window %d, want %d", st.Backpressure.Window, window)
	}
	if st.Backpressure.MaxOutstanding > window {
		t.Fatalf("max outstanding %d exceeds the %d-event credit window — Feed is not blocking",
			st.Backpressure.MaxOutstanding, window)
	}
	if st.Backpressure.MaxOutstanding == 0 {
		t.Fatal("max outstanding 0 — the window was never exercised")
	}
	if st.Backpressure.Stalled == 0 {
		t.Fatal("feed never stalled against a shard 60x slower than the feeder — credits are not flowing")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-nodeDone:
	case <-time.After(20 * time.Second):
		t.Fatal("shard node did not exit after Close")
	}
}
