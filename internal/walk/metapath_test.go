package walk

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// tripartite builds an author(0-9) / paper(10-29) / venue(30-34) graph.
func tripartite(t *testing.T) (*core.Sampler, Labeling) {
	t.Helper()
	s, err := core.New(35, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(8)
	// author ↔ paper
	for a := 0; a < 10; a++ {
		for k := 0; k < 4; k++ {
			p := graph.VertexID(10 + r.Intn(20))
			if err := s.Insert(graph.VertexID(a), p, 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert(p, graph.VertexID(a), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	// paper ↔ venue
	for p := 10; p < 30; p++ {
		v := graph.VertexID(30 + r.Intn(5))
		if err := s.Insert(graph.VertexID(p), v, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(v, graph.VertexID(p), 1); err != nil {
			t.Fatal(err)
		}
	}
	labels := func(v graph.VertexID) uint8 {
		switch {
		case v < 10:
			return 0 // author
		case v < 30:
			return 1 // paper
		default:
			return 2 // venue
		}
	}
	return s, labels
}

func TestMetaPathFollowsPattern(t *testing.T) {
	s, labels := tripartite(t)
	// A-P-V-P cycle starting from authors.
	pattern := []uint8{0, 1, 2, 1}
	starts := make([]graph.VertexID, 0, 10)
	for a := 0; a < 10; a++ {
		starts = append(starts, graph.VertexID(a))
	}
	res := MetaPath(s, labels, pattern, Config{Length: 12, Starts: starts, Seed: 4, CountVisits: true})
	if res.Steps == 0 {
		t.Fatal("no steps taken")
	}
	// Walk visits must respect label proportions: venues are only visited
	// at pattern positions ≡ 2 (1 in 4), papers at 2 of 4 positions.
	var authors, papers, venues int64
	for v, c := range res.Visits {
		switch labels(graph.VertexID(v)) {
		case 0:
			authors += c
		case 1:
			papers += c
		case 2:
			venues += c
		}
	}
	if papers == 0 || venues == 0 || authors == 0 {
		t.Fatalf("visits missing a type: a=%d p=%d v=%d", authors, papers, venues)
	}
	if papers < venues {
		t.Errorf("papers (%d) should outnumber venues (%d) in an APVP walk", papers, venues)
	}
}

func TestMetaPathRejectsWrongStart(t *testing.T) {
	s, labels := tripartite(t)
	// Starting from a venue with an author-first pattern yields no steps.
	res := MetaPath(s, labels, []uint8{0, 1}, Config{Length: 5, Starts: []graph.VertexID{30}, Seed: 1})
	if res.Steps != 0 {
		t.Errorf("mismatched start walked %d steps", res.Steps)
	}
}

func TestMetaPathUnreachableLabel(t *testing.T) {
	s, labels := tripartite(t)
	// Authors have no venue neighbors: pattern A→V stalls immediately.
	res := MetaPath(s, labels, []uint8{0, 2}, Config{Length: 5, Starts: []graph.VertexID{0}, Seed: 1})
	if res.Steps != 0 {
		t.Errorf("impossible pattern walked %d steps", res.Steps)
	}
}

func TestMetaPathEmptyPatternPanics(t *testing.T) {
	s, labels := tripartite(t)
	defer func() {
		if recover() == nil {
			t.Error("empty pattern did not panic")
		}
	}()
	MetaPath(s, labels, nil, Config{Length: 5})
}

func TestMetaPathStrictAlternation(t *testing.T) {
	// Deterministic check on a bipartite 2-cycle: labels must alternate
	// exactly along every step.
	s, err := core.New(2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	labels := func(v graph.VertexID) uint8 { return uint8(v) }
	res := MetaPath(s, labels, []uint8{0, 1}, Config{Length: 9, Starts: []graph.VertexID{0}, Seed: 2})
	if res.Steps != 9 {
		t.Errorf("steps = %d, want 9 (strict alternation possible)", res.Steps)
	}
}
