package walk

// Cross-engine integration tests: every system under test implements the
// same Engine interface and encodes the same transition distributions, so
// long-run walk statistics must agree across engines — a strong end-to-end
// equivalence check of Bingo against the three baselines, through dynamic
// updates.

import (
	"math"
	"testing"

	"github.com/bingo-rw/bingo/internal/baseline"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
)

func engines(t *testing.T, g *graph.CSR) map[string]Dynamic {
	t.Helper()
	s, err := core.NewFromCSR(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Dynamic{
		"Bingo":      s,
		"KnightKing": baseline.NewKnightKing(g),
		"RebuildITS": baseline.NewRebuildITS(g),
		"FlowWalker": baseline.NewFlowWalker(g),
	}
}

// totalVariation computes TV distance between two visit distributions.
func totalVariation(a, b []int64) float64 {
	var na, nb int64
	for i := range a {
		na += a[i]
		nb += b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	tv := 0.0
	for i := range a {
		tv += math.Abs(float64(a[i])/float64(na) - float64(b[i])/float64(nb))
	}
	return tv / 2
}

// TestCrossEngineVisitDistributions runs the same walk workload on all four
// engines after the same dynamic updates; per-vertex visit distributions
// must be statistically indistinguishable.
func TestCrossEngineVisitDistributions(t *testing.T) {
	edges := gen.RMAT(400, 6000, gen.DefaultRMAT, 17)
	gen.AssignBiases(edges, 400, gen.BiasConfig{Kind: gen.BiasDegree})
	g, err := graph.FromEdges(400, edges)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gen.BuildWorkload(g, gen.UpdMixed, 300, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	es := engines(t, w.Initial)
	for name, e := range es {
		for _, b := range w.Batches() {
			if err := e.ApplyUpdates(b); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	// Heavy DeepWalk from a fixed start set; different seeds per engine
	// (we compare distributions, not paths).
	starts := make([]graph.VertexID, 8000)
	for i := range starts {
		starts[i] = graph.VertexID(i % 400)
	}
	visits := map[string][]int64{}
	seed := uint64(100)
	for name, e := range es {
		seed++
		res := DeepWalk(e, Config{Length: 40, Starts: starts, Seed: seed, CountVisits: true})
		if res.Steps == 0 {
			t.Fatalf("%s: no steps", name)
		}
		visits[name] = res.Visits
	}
	ref := visits["Bingo"]
	for name, v := range visits {
		if name == "Bingo" {
			continue
		}
		tv := totalVariation(ref, v)
		if tv > 0.02 {
			t.Errorf("%s: total variation vs Bingo = %.4f (> 0.02)", name, tv)
		}
	}
}

// TestCrossEnginePPR compares PPR visit mass across engines on a smaller
// graph with chi-square.
func TestCrossEnginePPR(t *testing.T) {
	edges := gen.RMAT(100, 1200, gen.DefaultRMAT, 23)
	gen.AssignBiases(edges, 100, gen.BiasConfig{Kind: gen.BiasUniform, Max: 64})
	g, err := graph.FromEdges(100, edges)
	if err != nil {
		t.Fatal(err)
	}
	es := engines(t, g)
	starts := make([]graph.VertexID, 20000)
	for i := range starts {
		starts[i] = 1
	}
	bingoRes := PPR(es["Bingo"], Config{Starts: starts, Seed: 9, CountVisits: true})
	var total int64
	for _, c := range bingoRes.Visits {
		total += c
	}
	probs := make([]float64, len(bingoRes.Visits))
	for i, c := range bingoRes.Visits {
		probs[i] = float64(c) / float64(total)
	}
	for _, name := range []string{"KnightKing", "FlowWalker"} {
		res := PPR(es[name], Config{Starts: starts, Seed: 10, CountVisits: true})
		_, p, err := stats.ChiSquareGOF(res.Visits, probs, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p < 1e-6 {
			t.Errorf("%s PPR distribution diverges from Bingo: p = %g", name, p)
		}
	}
}

// TestDynamicConvergenceToNewDistribution verifies that after edges are
// rewired, walk statistics reflect the *new* graph, not the old one — the
// paper's core motivation (§1's fraud-detection staleness).
func TestDynamicConvergenceToNewDistribution(t *testing.T) {
	s, err := core.New(4, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 0 → {1 (heavy), 2 (light)}.
	if err := s.Insert(0, 1, 99); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	starts := make([]graph.VertexID, 20000)
	res := SimpleSampling(s, Config{Length: 1, Starts: starts, Seed: 3, CountVisits: true})
	if res.Visits[1] < res.Visits[2]*20 {
		t.Fatalf("pre-update skew missing: %v", res.Visits[:3])
	}
	// Rewire: flip the weights via delete+insert.
	if err := s.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(0, 2, 99); err != nil {
		t.Fatal(err)
	}
	res = SimpleSampling(s, Config{Length: 1, Starts: starts, Seed: 4, CountVisits: true})
	if res.Visits[2] < res.Visits[1]*20 {
		t.Errorf("post-update distribution stale: %v", res.Visits[:3])
	}
}
