package walk

import (
	"errors"
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/rebalance"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ErrFabricDown is returned by coordinator-side calls whose shard fabric
// session ended before the reply arrived (a daemon died or the transport
// failed — the fabric is single-session, so the service is over).
var ErrFabricDown = errors.New("walk: shard fabric session ended")

// coordinator is the front half of a sharded serving runtime over any
// shard fabric: it launches walkers (queries and bulk runs), routes feed
// batches by owner shard, pushes sync barriers, and consumes the event
// stream (retires and acks) to complete them. ShardedLiveService runs it
// over the in-process fabric; RemoteService runs the identical logic over
// a wire fabric — the coordinator cannot tell the difference, which is
// the point of the extraction.
type coordinator struct {
	port fabric.CoordPort
	// plan is the construction-time geometry (Shards and RangeSize never
	// change); planv is the live ownership plan the rebalancer's
	// committed migrations re-point. Routing, walker launches, and the
	// rebalancer all resolve owners through planNow.
	plan  ShardPlan
	planv atomic.Pointer[ShardPlan]
	cfg   ShardedLiveConfig

	feed   chan coordMsg
	master *xrand.RNG // Split-only after construction (reads, no state advance)
	idSeq  atomic.Uint64
	barSeq atomic.Uint64

	// ledger is the per-shard routed-update count (touched only by the
	// router goroutine). A copy rides on every published ingest element
	// as the watermark vector the shards' remote-view caches validate
	// against: a view of a shard-o vertex extracted before routed update
	// k to shard o must not survive a watermark that includes k.
	ledger []int64

	// sendMu serializes Query/Feed/Sync/DeepWalk senders against Close,
	// exactly as in LiveService: senders hold it in read mode across
	// their enqueue.
	sendMu sync.RWMutex
	closed bool

	pending sync.WaitGroup // in-flight walkers (queries and bulk)
	routing sync.WaitGroup // router loop
	evloop  sync.WaitGroup // event loop

	// mu guards the pending-completion tables the event loop resolves,
	// and the dead flag that fences new registrations once it has exited.
	mu      sync.Mutex
	dead    bool // event stream ended; nothing will ever complete again
	replies map[uint64]chan []graph.VertexID
	bulks   map[uint64]*bulkRun
	syncs   map[uint64]*barrierWait
	migs    map[uint64]chan *fabric.MigrateDone // in-flight migrations by epoch
	acks    []fabric.Ack                        // latest ack per shard (cumulative tallies)

	// rebStop/rebWg manage the rebalancer watch loop when cfg.Rebalance
	// is on. Close stops the loop and waits for its in-flight migration
	// *before* closing the port — the only migration source is quiescent
	// by the time the block stream tears down, so a clean Close can never
	// strand an extracted block in flight.
	rebStop chan struct{}
	rebWg   sync.WaitGroup

	queries, steps, batches, transfers, local, remote atomic.Int64
	migrations, movedEdges                            atomic.Int64

	errMu sync.Mutex
	err   error
}

// coordMsg is one element of the coordinator's feed queue: an update
// batch to route, or a barrier to push (the shared queue is what orders
// barriers after every batch accepted before them).
type coordMsg struct {
	ups []graph.Update
	bar *barrierWait
	mig *migOp
}

// migOp is one block migration routed through the feed queue, so its
// offer and commit publishes are ordered against every batch accepted
// before it.
type migOp struct {
	block    uint64
	from, to int
	epoch    uint64
}

// barrierWait tracks one barrier's acknowledgements.
type barrierWait struct {
	seq       uint64
	dump      bool
	heat      bool
	remaining int
	err       error
	edges     [][]graph.Edge       // per shard, dump barriers only
	blocks    [][]fabric.BlockHeat // per shard, heat barriers only
	steps     []int64              // per shard, heat barriers only
	done      chan struct{}
}

// bulkRun aggregates one DeepWalk invocation across its walkers.
type bulkRun struct {
	steps, transfers, local, remote atomic.Int64
	visits                          *visitCounter
	wg                              sync.WaitGroup
}

func newCoordinator(port fabric.CoordPort, plan ShardPlan, cfg ShardedLiveConfig) *coordinator {
	c := &coordinator{
		port:    port,
		plan:    plan,
		cfg:     cfg,
		feed:    make(chan coordMsg, cfg.QueueDepth),
		master:  xrand.New(cfg.Seed),
		replies: map[uint64]chan []graph.VertexID{},
		bulks:   map[uint64]*bulkRun{},
		syncs:   map[uint64]*barrierWait{},
		migs:    map[uint64]chan *fabric.MigrateDone{},
		acks:    make([]fabric.Ack, plan.Shards),
		ledger:  make([]int64, plan.Shards),
	}
	c.planv.Store(&plan)
	c.routing.Add(1)
	go c.routerLoop()
	c.evloop.Add(1)
	go c.eventLoop()
	if cfg.Rebalance.On && plan.Shards > 1 {
		c.rebStop = make(chan struct{})
		c.rebWg.Add(1)
		go func() {
			defer c.rebWg.Done()
			rebalance.Run(c, cfg.Rebalance, c.rebStop, nil)
		}()
	}
	return c
}

// planNow returns the live ownership plan.
func (c *coordinator) planNow() ShardPlan { return *c.planv.Load() }

func (c *coordinator) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Err returns the first error the coordinator observed through acks (nil
// if none). The in-process service prefers its nodes' own records; the
// remote service has only this.
func (c *coordinator) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// routerLoop splits each feed batch by owner shard, preserving per-source
// order (single router, FIFO per-shard publish streams), and forwards
// barriers to every shard ordered after the batches before them. Every
// published element carries the routed-update ledger as of *after* the
// whole batch was accounted, so a shard learns about updates in flight
// to its peers no later than it learns about its own.
func (c *coordinator) routerLoop() {
	defer c.routing.Done()
	for m := range c.feed {
		if m.bar != nil {
			if err := c.port.PublishBarrier(fabric.Ingest{Barrier: m.bar.seq, Dump: m.bar.dump, Heat: m.bar.heat, Watermarks: c.ledgerCopy()}); err != nil {
				c.setErr(err)
			}
			continue
		}
		if m.mig != nil {
			c.routeMigration(m.mig)
			continue
		}
		c.batches.Add(1)
		plan := c.planNow()
		parts := make([][]graph.Update, plan.Shards)
		for _, up := range m.ups {
			o := plan.Owner(up.Src)
			parts[o] = append(parts[o], up)
		}
		for i, p := range parts {
			c.ledger[i] += int64(len(p))
		}
		for i, p := range parts {
			if len(p) > 0 {
				if err := c.port.PublishUpdates(i, fabric.Ingest{Ups: p, Watermarks: c.ledgerCopy()}); err != nil {
					c.setErr(err)
				}
			}
		}
	}
}

// ledgerCopy snapshots the routed-update ledger for one wire message.
func (c *coordinator) ledgerCopy() []int64 {
	return append([]int64(nil), c.ledger...)
}

// routeMigration publishes one migration's fabric messages from inside
// the router loop, which is what gives the protocol its ordering
// guarantees: the offer lands on the donor's FIFO stream *after* every
// batch routed to it so far (so the extracted rows contain them), the
// routing flip happens before any later batch is split (so updates for
// the moved block queue behind the recipient's commit), and the commit
// lands on every shard's stream after the flip (so the recipient
// installs the rows before applying those updates).
func (c *coordinator) routeMigration(mg *migOp) {
	// Validate the flip before anything is published: once the offer is
	// on the donor's stream the commit MUST follow (the recipient's
	// ingester will block on the shipped rows), so a plan the overlay
	// rejects has to fail the migration here, wedging nothing.
	cur := c.planNow()
	next, err := cur.WithOverlay(mg.block, mg.to, mg.epoch)
	if err != nil {
		c.setErr(err)
		c.onMigrated(&fabric.MigrateDone{Block: mg.block, Epoch: mg.epoch, Err: err.Error()})
		return
	}
	if err := c.port.PublishUpdates(mg.from, fabric.Ingest{
		Offer:      fabric.MigrateOffer{Block: mg.block, To: mg.to, Epoch: mg.epoch},
		Watermarks: c.ledgerCopy(),
	}); err != nil {
		c.setErr(err)
	}
	c.planv.Store(&next)
	cm := fabric.MigrateCommit{Block: mg.block, From: mg.from, To: mg.to, Epoch: mg.epoch, MinWatermark: c.ledger[mg.from]}
	for i := 0; i < c.plan.Shards; i++ {
		if err := c.port.PublishUpdates(i, fabric.Ingest{Commit: cm, Watermarks: c.ledgerCopy()}); err != nil {
			c.setErr(err)
		}
	}
}

// eventLoop consumes retires and acks until the fabric's event stream
// ends, then fails whatever is still pending (a clean Close leaves
// nothing pending; a dead session must not leave callers blocked).
func (c *coordinator) eventLoop() {
	defer c.evloop.Done()
	for {
		ev, ok := c.port.NextEvent()
		if !ok {
			break
		}
		switch ev.Kind {
		case fabric.EvRetire:
			c.onRetire(ev.Walker)
		case fabric.EvAck:
			c.onAck(ev.Ack)
		case fabric.EvMigrated:
			c.onMigrated(ev.Done)
		}
	}
	c.failPending()
}

func (c *coordinator) onRetire(w *fabric.Walker) {
	c.steps.Add(w.Steps)
	c.transfers.Add(w.Transfers)
	c.local.Add(w.Local)
	c.remote.Add(w.Remote)
	if w.Failed {
		c.setErr(ErrFabricDown)
	}
	c.mu.Lock()
	if reply, ok := c.replies[w.ID]; ok {
		delete(c.replies, w.ID)
		c.mu.Unlock()
		c.queries.Add(1)
		if w.Failed {
			reply <- nil // Query maps a nil path to ErrFabricDown
		} else {
			reply <- w.Path
		}
		c.pending.Done()
		return
	}
	run, ok := c.bulks[w.ID]
	if ok {
		delete(c.bulks, w.ID)
	}
	c.mu.Unlock()
	if ok {
		run.steps.Add(w.Steps)
		run.transfers.Add(w.Transfers)
		run.local.Add(w.Local)
		run.remote.Add(w.Remote)
		if run.visits != nil {
			for _, v := range w.Path {
				run.visits.bump(v)
			}
		}
		run.wg.Done()
		c.pending.Done()
	}
}

func (c *coordinator) onAck(a *fabric.Ack) {
	if a.Err != "" {
		c.setErr(errors.New(a.Err))
	}
	c.mu.Lock()
	if a.Shard >= 0 && a.Shard < len(c.acks) {
		// Cache the scalar tallies only: a dump barrier's edge snapshot
		// and a heat barrier's block report (already handed to their
		// barrierWait below) must not stay live in the session-long
		// table.
		cached := *a
		cached.Edges = nil
		cached.Heat = nil
		c.acks[a.Shard] = cached
	}
	bw := c.syncs[a.Seq]
	if bw != nil {
		if a.Err != "" && bw.err == nil {
			bw.err = errors.New(a.Err)
		}
		if bw.edges != nil && a.Shard >= 0 && a.Shard < len(bw.edges) {
			bw.edges[a.Shard] = a.Edges
		}
		if bw.blocks != nil && a.Shard >= 0 && a.Shard < len(bw.blocks) {
			bw.blocks[a.Shard] = a.Heat
			bw.steps[a.Shard] = a.Steps
		}
		bw.remaining--
		if bw.remaining <= 0 {
			delete(c.syncs, a.Seq)
			close(bw.done)
		}
	}
	c.mu.Unlock()
}

// onMigrated resolves the in-flight migration the report names.
func (c *coordinator) onMigrated(d *fabric.MigrateDone) {
	c.mu.Lock()
	ch := c.migs[d.Epoch]
	delete(c.migs, d.Epoch)
	c.mu.Unlock()
	if ch != nil {
		ch <- d
	}
}

// failPending unblocks every caller still waiting when the event stream
// dies: queries get a nil path (their Query call maps it to
// ErrFabricDown), bulk runs and barriers complete with the error. It
// also marks the coordinator dead under the same lock registrations take,
// so no later caller can register into a table nothing will ever resolve.
func (c *coordinator) failPending() {
	c.mu.Lock()
	c.dead = true
	replies := c.replies
	bulks := c.bulks
	syncs := c.syncs
	migs := c.migs
	c.replies = map[uint64]chan []graph.VertexID{}
	c.bulks = map[uint64]*bulkRun{}
	c.syncs = map[uint64]*barrierWait{}
	c.migs = map[uint64]chan *fabric.MigrateDone{}
	c.mu.Unlock()
	for _, ch := range migs {
		ch <- nil // Migrate maps nil to ErrFabricDown
	}
	for _, ch := range replies {
		ch <- nil
		c.pending.Done()
	}
	for _, run := range bulks {
		run.wg.Done()
		c.pending.Done()
	}
	for _, bw := range syncs {
		if bw.err == nil {
			bw.err = ErrFabricDown
		}
		close(bw.done)
	}
	if len(replies)+len(bulks)+len(syncs)+len(migs) > 0 {
		c.setErr(ErrFabricDown)
	}
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) and returns the visited path, start included. The
// walk begins on the shard owning start and follows the walker-transfer
// topology; the call blocks until the walker retires.
func (c *coordinator) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	if length <= 0 {
		length = c.cfg.WalkLength
	}
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	id := c.idSeq.Add(1)
	path := make([]graph.VertexID, 1, length+1)
	path[0] = start
	wk := &fabric.Walker{
		ID:     id,
		Cur:    start,
		Left:   length,
		Rng:    c.master.Split(id).State(),
		Record: true,
		Path:   path,
	}
	reply := make(chan []graph.VertexID, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, ErrFabricDown
	}
	// pending.Add must happen before the registration is visible: the
	// matching Done comes from the event loop (retire or failPending),
	// which may run the instant the lock is released.
	c.pending.Add(1)
	c.replies[id] = reply
	c.mu.Unlock()
	if err := c.port.LaunchWalker(c.planNow().Owner(start), wk); err != nil {
		c.mu.Lock()
		if _, still := c.replies[id]; still {
			delete(c.replies, id)
			c.pending.Done()
		}
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, err
	}
	c.sendMu.RUnlock()
	p := <-reply
	if p == nil {
		return nil, ErrFabricDown
	}
	return p, nil
}

// Feed enqueues a batch for routed ingestion. It blocks when the feed
// queue is full (backpressure) and returns ErrLiveClosed after Close. The
// batch slice is owned by the coordinator once accepted; per-source order
// across Feed calls is preserved shard-side (the LiveService contract).
func (c *coordinator) Feed(ups []graph.Update) error {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	if c.closed {
		return ErrLiveClosed
	}
	c.feed <- coordMsg{ups: ups}
	return nil
}

// barrier pushes a sync (optionally dump or heat) barrier through the
// feed queue and blocks until every shard acknowledged it.
func (c *coordinator) barrier(dump, heat bool) (*barrierWait, error) {
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	bw := &barrierWait{
		seq:       c.barSeq.Add(1),
		dump:      dump,
		heat:      heat,
		remaining: c.plan.Shards,
		done:      make(chan struct{}),
	}
	if dump {
		bw.edges = make([][]graph.Edge, c.plan.Shards)
	}
	if heat {
		bw.blocks = make([][]fabric.BlockHeat, c.plan.Shards)
		bw.steps = make([]int64, c.plan.Shards)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, ErrFabricDown
	}
	c.syncs[bw.seq] = bw
	c.mu.Unlock()
	c.feed <- coordMsg{bar: bw}
	c.sendMu.RUnlock()
	<-bw.done
	return bw, nil
}

// Sync blocks until every feed batch accepted before the call has been
// applied (or dropped) on its shards, then reports the first ingest
// error observed anywhere.
func (c *coordinator) Sync() error {
	bw, err := c.barrier(false, false)
	if err != nil {
		return err
	}
	if bw.err != nil {
		return bw.err
	}
	return c.Err()
}

// DumpEdges drives a dump barrier: it returns every shard's live edge
// multiset as of a point after all previously accepted feed batches
// (the read-back path distributed verification is built on).
func (c *coordinator) DumpEdges() ([][]graph.Edge, error) {
	bw, err := c.barrier(true, false)
	if err != nil {
		return nil, err
	}
	return bw.edges, bw.err
}

// DeepWalk runs a bulk first-order walk through the sharded runtime while
// the feed keeps ingesting: every start becomes a transferable walker
// with its own RNG stream. numVertices is the caller's view of the
// current vertex space (default start set and visit-tally sizing).
//
// Visit counting rides on walker paths: a CountVisits run makes every
// walker record its hops and the coordinator folds them into the tally at
// retire, which is what lets the identical protocol cross a process
// boundary (shards share no counter). The cost is O(len(starts) × Length)
// transient path memory across in-flight walkers — bound the start set
// for visit-counting runs over very large graphs.
func (c *coordinator) DeepWalk(cfg Config, numVertices int) (Result, TransferStats, error) {
	cfg = cfg.withDefaults(numVertices)
	starts := cfg.Starts
	if starts == nil {
		starts = make([]graph.VertexID, numVertices)
		for i := range starts {
			starts[i] = graph.VertexID(i)
		}
	}
	run := &bulkRun{}
	if cfg.CountVisits {
		run.visits = newVisitCounter(numVertices)
	}
	bulkMaster := xrand.New(cfg.Seed)

	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return Result{}, TransferStats{}, ErrLiveClosed
	}
	// Register every walker before launching any: a retire must never
	// find its run missing. The Adds precede the registrations for the
	// same reason as in Query: failPending may Done them the instant the
	// lock drops.
	ids := make([]uint64, len(starts))
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return Result{}, TransferStats{}, ErrFabricDown
	}
	run.wg.Add(len(starts))
	c.pending.Add(len(starts))
	for i := range starts {
		ids[i] = c.idSeq.Add(1)
		c.bulks[ids[i]] = run
	}
	c.mu.Unlock()
	for i, st := range starts {
		if run.visits != nil {
			run.visits.bump(st)
		}
		wk := &fabric.Walker{
			ID:     ids[i],
			Cur:    st,
			Left:   cfg.Length,
			Rng:    bulkMaster.Split(uint64(i)).State(),
			Record: cfg.CountVisits,
		}
		if err := c.port.LaunchWalker(c.planNow().Owner(st), wk); err != nil {
			c.setErr(err)
			c.mu.Lock()
			if _, still := c.bulks[ids[i]]; still {
				delete(c.bulks, ids[i])
				run.wg.Done()
				c.pending.Done()
			}
			c.mu.Unlock()
		}
	}
	c.sendMu.RUnlock()
	run.wg.Wait()

	res := Result{Walkers: len(starts), Steps: run.steps.Load()}
	if run.visits != nil {
		res.Visits = run.visits.snapshot()
	}
	return res, TransferStats{Transfers: run.transfers.Load(), Local: run.local.Load(), Remote: run.remote.Load()}, nil
}

// Close drains the feed (queued batches are routed and applied), stops
// the rebalancer (waiting out its in-flight migration, so no extracted
// block is ever stranded by the teardown), waits for every in-flight
// walker to retire, ends the fabric session, and waits for the event
// stream to wind down. Idempotent.
func (c *coordinator) Close() error {
	c.sendMu.Lock()
	first := !c.closed
	if first {
		c.closed = true
		close(c.feed)
	}
	c.sendMu.Unlock()
	if first {
		if c.rebStop != nil {
			close(c.rebStop)
			c.rebWg.Wait() // in-flight migration completes via the event loop
		}
		c.routing.Wait() // every accepted batch published
		c.pending.Wait() // every accepted walker retired
		c.port.Close()
	}
	c.evloop.Wait()
	return c.Err()
}

// rebalanceTallies snapshots the rebalancer's activity counters.
func (c *coordinator) rebalanceTallies() RebalanceTallies {
	return RebalanceTallies{
		Migrations: c.migrations.Load(),
		MovedEdges: c.movedEdges.Load(),
		PlanEpoch:  c.planNow().Epoch,
	}
}

// ---------------------------------------------------------------------------
// rebalance.Controller — the mechanism half of the heat-aware rebalancer.

// Shards returns the partition count.
func (c *coordinator) Shards() int { return c.plan.Shards }

// BlockOwner resolves a block's owner under the live plan.
func (c *coordinator) BlockOwner(b uint64) int { return c.planNow().BlockOwner(b) }

// Heat drives a heat barrier and returns every shard's report: the
// node's cumulative step count plus its per-block step/degree samples,
// consistent with all feed batches accepted before the call.
func (c *coordinator) Heat() ([]rebalance.ShardHeat, error) {
	bw, err := c.barrier(false, true)
	if err != nil {
		return nil, err
	}
	if bw.err != nil {
		return nil, bw.err
	}
	out := make([]rebalance.ShardHeat, c.plan.Shards)
	for i := range out {
		out[i] = rebalance.ShardHeat{Shard: i, Steps: bw.steps[i]}
		blocks := make([]rebalance.BlockSample, 0, len(bw.blocks[i]))
		for _, b := range bw.blocks[i] {
			blocks = append(blocks, rebalance.BlockSample{Block: b.Block, Steps: b.Steps, Edges: b.Edges})
		}
		out[i].Blocks = blocks
	}
	return out, nil
}

// Migrate executes one live block migration end to end: it routes the
// offer/commit pair through the feed queue (ordering against accepted
// batches) and blocks until the recipient reports the block installed.
// Serialized by construction — the rebalancer watch loop is the only
// caller, and it migrates one block at a time, which is what keeps the
// donor-waits-for-nobody / recipient-waits-for-one-donor protocol
// trivially deadlock-free.
func (c *coordinator) Migrate(m rebalance.Move) error {
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return ErrLiveClosed
	}
	cur := c.planNow()
	from := cur.BlockOwner(m.Block)
	if from == m.To || m.To < 0 || m.To >= c.plan.Shards {
		c.sendMu.RUnlock()
		return nil
	}
	epoch := cur.Epoch + 1
	ch := make(chan *fabric.MigrateDone, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return ErrFabricDown
	}
	c.migs[epoch] = ch
	c.mu.Unlock()
	c.feed <- coordMsg{mig: &migOp{block: m.Block, from: from, to: m.To, epoch: epoch}}
	c.sendMu.RUnlock()
	d := <-ch
	if d == nil {
		return ErrFabricDown
	}
	if d.Err != "" {
		err := errors.New(d.Err)
		c.setErr(err)
		return err
	}
	c.migrations.Add(1)
	c.movedEdges.Add(d.Edges)
	return nil
}
