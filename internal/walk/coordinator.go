package walk

import (
	"errors"
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// ErrFabricDown is returned by coordinator-side calls whose shard fabric
// session ended before the reply arrived (a daemon died or the transport
// failed — the fabric is single-session, so the service is over).
var ErrFabricDown = errors.New("walk: shard fabric session ended")

// coordinator is the front half of a sharded serving runtime over any
// shard fabric: it launches walkers (queries and bulk runs), routes feed
// batches by owner shard, pushes sync barriers, and consumes the event
// stream (retires and acks) to complete them. ShardedLiveService runs it
// over the in-process fabric; RemoteService runs the identical logic over
// a wire fabric — the coordinator cannot tell the difference, which is
// the point of the extraction.
type coordinator struct {
	port fabric.CoordPort
	plan ShardPlan
	cfg  ShardedLiveConfig

	feed   chan coordMsg
	master *xrand.RNG // Split-only after construction (reads, no state advance)
	idSeq  atomic.Uint64
	barSeq atomic.Uint64

	// ledger is the per-shard routed-update count (touched only by the
	// router goroutine). A copy rides on every published ingest element
	// as the watermark vector the shards' remote-view caches validate
	// against: a view of a shard-o vertex extracted before routed update
	// k to shard o must not survive a watermark that includes k.
	ledger []int64

	// sendMu serializes Query/Feed/Sync/DeepWalk senders against Close,
	// exactly as in LiveService: senders hold it in read mode across
	// their enqueue.
	sendMu sync.RWMutex
	closed bool

	pending sync.WaitGroup // in-flight walkers (queries and bulk)
	routing sync.WaitGroup // router loop
	evloop  sync.WaitGroup // event loop

	// mu guards the pending-completion tables the event loop resolves,
	// and the dead flag that fences new registrations once it has exited.
	mu      sync.Mutex
	dead    bool // event stream ended; nothing will ever complete again
	replies map[uint64]chan []graph.VertexID
	bulks   map[uint64]*bulkRun
	syncs   map[uint64]*barrierWait
	acks    []fabric.Ack // latest ack per shard (cumulative tallies)

	queries, steps, batches, transfers, local, remote atomic.Int64

	errMu sync.Mutex
	err   error
}

// coordMsg is one element of the coordinator's feed queue: an update
// batch to route, or a barrier to push (the shared queue is what orders
// barriers after every batch accepted before them).
type coordMsg struct {
	ups []graph.Update
	bar *barrierWait
}

// barrierWait tracks one barrier's acknowledgements.
type barrierWait struct {
	seq       uint64
	dump      bool
	remaining int
	err       error
	edges     [][]graph.Edge // per shard, dump barriers only
	done      chan struct{}
}

// bulkRun aggregates one DeepWalk invocation across its walkers.
type bulkRun struct {
	steps, transfers, local, remote atomic.Int64
	visits                          *visitCounter
	wg                              sync.WaitGroup
}

func newCoordinator(port fabric.CoordPort, plan ShardPlan, cfg ShardedLiveConfig) *coordinator {
	c := &coordinator{
		port:    port,
		plan:    plan,
		cfg:     cfg,
		feed:    make(chan coordMsg, cfg.QueueDepth),
		master:  xrand.New(cfg.Seed),
		replies: map[uint64]chan []graph.VertexID{},
		bulks:   map[uint64]*bulkRun{},
		syncs:   map[uint64]*barrierWait{},
		acks:    make([]fabric.Ack, plan.Shards),
		ledger:  make([]int64, plan.Shards),
	}
	c.routing.Add(1)
	go c.routerLoop()
	c.evloop.Add(1)
	go c.eventLoop()
	return c
}

func (c *coordinator) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Err returns the first error the coordinator observed through acks (nil
// if none). The in-process service prefers its nodes' own records; the
// remote service has only this.
func (c *coordinator) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// routerLoop splits each feed batch by owner shard, preserving per-source
// order (single router, FIFO per-shard publish streams), and forwards
// barriers to every shard ordered after the batches before them. Every
// published element carries the routed-update ledger as of *after* the
// whole batch was accounted, so a shard learns about updates in flight
// to its peers no later than it learns about its own.
func (c *coordinator) routerLoop() {
	defer c.routing.Done()
	for m := range c.feed {
		if m.bar != nil {
			if err := c.port.PublishBarrier(fabric.Ingest{Barrier: m.bar.seq, Dump: m.bar.dump, Watermarks: c.ledgerCopy()}); err != nil {
				c.setErr(err)
			}
			continue
		}
		c.batches.Add(1)
		parts := make([][]graph.Update, c.plan.Shards)
		for _, up := range m.ups {
			o := c.plan.Owner(up.Src)
			parts[o] = append(parts[o], up)
		}
		for i, p := range parts {
			c.ledger[i] += int64(len(p))
		}
		for i, p := range parts {
			if len(p) > 0 {
				if err := c.port.PublishUpdates(i, fabric.Ingest{Ups: p, Watermarks: c.ledgerCopy()}); err != nil {
					c.setErr(err)
				}
			}
		}
	}
}

// ledgerCopy snapshots the routed-update ledger for one wire message.
func (c *coordinator) ledgerCopy() []int64 {
	return append([]int64(nil), c.ledger...)
}

// eventLoop consumes retires and acks until the fabric's event stream
// ends, then fails whatever is still pending (a clean Close leaves
// nothing pending; a dead session must not leave callers blocked).
func (c *coordinator) eventLoop() {
	defer c.evloop.Done()
	for {
		ev, ok := c.port.NextEvent()
		if !ok {
			break
		}
		switch ev.Kind {
		case fabric.EvRetire:
			c.onRetire(ev.Walker)
		case fabric.EvAck:
			c.onAck(ev.Ack)
		}
	}
	c.failPending()
}

func (c *coordinator) onRetire(w *fabric.Walker) {
	c.steps.Add(w.Steps)
	c.transfers.Add(w.Transfers)
	c.local.Add(w.Local)
	c.remote.Add(w.Remote)
	if w.Failed {
		c.setErr(ErrFabricDown)
	}
	c.mu.Lock()
	if reply, ok := c.replies[w.ID]; ok {
		delete(c.replies, w.ID)
		c.mu.Unlock()
		c.queries.Add(1)
		if w.Failed {
			reply <- nil // Query maps a nil path to ErrFabricDown
		} else {
			reply <- w.Path
		}
		c.pending.Done()
		return
	}
	run, ok := c.bulks[w.ID]
	if ok {
		delete(c.bulks, w.ID)
	}
	c.mu.Unlock()
	if ok {
		run.steps.Add(w.Steps)
		run.transfers.Add(w.Transfers)
		run.local.Add(w.Local)
		run.remote.Add(w.Remote)
		if run.visits != nil {
			for _, v := range w.Path {
				run.visits.bump(v)
			}
		}
		run.wg.Done()
		c.pending.Done()
	}
}

func (c *coordinator) onAck(a *fabric.Ack) {
	if a.Err != "" {
		c.setErr(errors.New(a.Err))
	}
	c.mu.Lock()
	if a.Shard >= 0 && a.Shard < len(c.acks) {
		// Cache the scalar tallies only: a dump barrier's edge snapshot
		// (already handed to its barrierWait below) must not stay live in
		// the session-long table.
		cached := *a
		cached.Edges = nil
		c.acks[a.Shard] = cached
	}
	bw := c.syncs[a.Seq]
	if bw != nil {
		if a.Err != "" && bw.err == nil {
			bw.err = errors.New(a.Err)
		}
		if bw.edges != nil && a.Shard >= 0 && a.Shard < len(bw.edges) {
			bw.edges[a.Shard] = a.Edges
		}
		bw.remaining--
		if bw.remaining <= 0 {
			delete(c.syncs, a.Seq)
			close(bw.done)
		}
	}
	c.mu.Unlock()
}

// failPending unblocks every caller still waiting when the event stream
// dies: queries get a nil path (their Query call maps it to
// ErrFabricDown), bulk runs and barriers complete with the error. It
// also marks the coordinator dead under the same lock registrations take,
// so no later caller can register into a table nothing will ever resolve.
func (c *coordinator) failPending() {
	c.mu.Lock()
	c.dead = true
	replies := c.replies
	bulks := c.bulks
	syncs := c.syncs
	c.replies = map[uint64]chan []graph.VertexID{}
	c.bulks = map[uint64]*bulkRun{}
	c.syncs = map[uint64]*barrierWait{}
	c.mu.Unlock()
	for _, ch := range replies {
		ch <- nil
		c.pending.Done()
	}
	for _, run := range bulks {
		run.wg.Done()
		c.pending.Done()
	}
	for _, bw := range syncs {
		if bw.err == nil {
			bw.err = ErrFabricDown
		}
		close(bw.done)
	}
	if len(replies)+len(bulks)+len(syncs) > 0 {
		c.setErr(ErrFabricDown)
	}
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) and returns the visited path, start included. The
// walk begins on the shard owning start and follows the walker-transfer
// topology; the call blocks until the walker retires.
func (c *coordinator) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	if length <= 0 {
		length = c.cfg.WalkLength
	}
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	id := c.idSeq.Add(1)
	path := make([]graph.VertexID, 1, length+1)
	path[0] = start
	wk := &fabric.Walker{
		ID:     id,
		Cur:    start,
		Left:   length,
		Rng:    c.master.Split(id).State(),
		Record: true,
		Path:   path,
	}
	reply := make(chan []graph.VertexID, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, ErrFabricDown
	}
	// pending.Add must happen before the registration is visible: the
	// matching Done comes from the event loop (retire or failPending),
	// which may run the instant the lock is released.
	c.pending.Add(1)
	c.replies[id] = reply
	c.mu.Unlock()
	if err := c.port.LaunchWalker(c.plan.Owner(start), wk); err != nil {
		c.mu.Lock()
		if _, still := c.replies[id]; still {
			delete(c.replies, id)
			c.pending.Done()
		}
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, err
	}
	c.sendMu.RUnlock()
	p := <-reply
	if p == nil {
		return nil, ErrFabricDown
	}
	return p, nil
}

// Feed enqueues a batch for routed ingestion. It blocks when the feed
// queue is full (backpressure) and returns ErrLiveClosed after Close. The
// batch slice is owned by the coordinator once accepted; per-source order
// across Feed calls is preserved shard-side (the LiveService contract).
func (c *coordinator) Feed(ups []graph.Update) error {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	if c.closed {
		return ErrLiveClosed
	}
	c.feed <- coordMsg{ups: ups}
	return nil
}

// barrier pushes a sync (optionally dump) barrier through the feed queue
// and blocks until every shard acknowledged it.
func (c *coordinator) barrier(dump bool) (*barrierWait, error) {
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	bw := &barrierWait{
		seq:       c.barSeq.Add(1),
		dump:      dump,
		remaining: c.plan.Shards,
		done:      make(chan struct{}),
	}
	if dump {
		bw.edges = make([][]graph.Edge, c.plan.Shards)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, ErrFabricDown
	}
	c.syncs[bw.seq] = bw
	c.mu.Unlock()
	c.feed <- coordMsg{bar: bw}
	c.sendMu.RUnlock()
	<-bw.done
	return bw, nil
}

// Sync blocks until every feed batch accepted before the call has been
// applied (or dropped) on its shards, then reports the first ingest
// error observed anywhere.
func (c *coordinator) Sync() error {
	bw, err := c.barrier(false)
	if err != nil {
		return err
	}
	if bw.err != nil {
		return bw.err
	}
	return c.Err()
}

// DumpEdges drives a dump barrier: it returns every shard's live edge
// multiset as of a point after all previously accepted feed batches
// (the read-back path distributed verification is built on).
func (c *coordinator) DumpEdges() ([][]graph.Edge, error) {
	bw, err := c.barrier(true)
	if err != nil {
		return nil, err
	}
	return bw.edges, bw.err
}

// DeepWalk runs a bulk first-order walk through the sharded runtime while
// the feed keeps ingesting: every start becomes a transferable walker
// with its own RNG stream. numVertices is the caller's view of the
// current vertex space (default start set and visit-tally sizing).
//
// Visit counting rides on walker paths: a CountVisits run makes every
// walker record its hops and the coordinator folds them into the tally at
// retire, which is what lets the identical protocol cross a process
// boundary (shards share no counter). The cost is O(len(starts) × Length)
// transient path memory across in-flight walkers — bound the start set
// for visit-counting runs over very large graphs.
func (c *coordinator) DeepWalk(cfg Config, numVertices int) (Result, TransferStats, error) {
	cfg = cfg.withDefaults(numVertices)
	starts := cfg.Starts
	if starts == nil {
		starts = make([]graph.VertexID, numVertices)
		for i := range starts {
			starts[i] = graph.VertexID(i)
		}
	}
	run := &bulkRun{}
	if cfg.CountVisits {
		run.visits = newVisitCounter(numVertices)
	}
	bulkMaster := xrand.New(cfg.Seed)

	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return Result{}, TransferStats{}, ErrLiveClosed
	}
	// Register every walker before launching any: a retire must never
	// find its run missing. The Adds precede the registrations for the
	// same reason as in Query: failPending may Done them the instant the
	// lock drops.
	ids := make([]uint64, len(starts))
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return Result{}, TransferStats{}, ErrFabricDown
	}
	run.wg.Add(len(starts))
	c.pending.Add(len(starts))
	for i := range starts {
		ids[i] = c.idSeq.Add(1)
		c.bulks[ids[i]] = run
	}
	c.mu.Unlock()
	for i, st := range starts {
		if run.visits != nil {
			run.visits.bump(st)
		}
		wk := &fabric.Walker{
			ID:     ids[i],
			Cur:    st,
			Left:   cfg.Length,
			Rng:    bulkMaster.Split(uint64(i)).State(),
			Record: cfg.CountVisits,
		}
		if err := c.port.LaunchWalker(c.plan.Owner(st), wk); err != nil {
			c.setErr(err)
			c.mu.Lock()
			if _, still := c.bulks[ids[i]]; still {
				delete(c.bulks, ids[i])
				run.wg.Done()
				c.pending.Done()
			}
			c.mu.Unlock()
		}
	}
	c.sendMu.RUnlock()
	run.wg.Wait()

	res := Result{Walkers: len(starts), Steps: run.steps.Load()}
	if run.visits != nil {
		res.Visits = run.visits.snapshot()
	}
	return res, TransferStats{Transfers: run.transfers.Load(), Local: run.local.Load(), Remote: run.remote.Load()}, nil
}

// Close drains the feed (queued batches are routed and applied), waits
// for every in-flight walker to retire, ends the fabric session, and
// waits for the event stream to wind down. Idempotent.
func (c *coordinator) Close() error {
	c.sendMu.Lock()
	first := !c.closed
	if first {
		c.closed = true
		close(c.feed)
	}
	c.sendMu.Unlock()
	if first {
		c.routing.Wait() // every accepted batch published
		c.pending.Wait() // every accepted walker retired
		c.port.Close()
	}
	c.evloop.Wait()
	return c.Err()
}
